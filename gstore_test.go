package gstore_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	gstore "github.com/gwu-systems/gstore"
	"github.com/gwu-systems/gstore/internal/graph"
)

func TestEndToEnd(t *testing.T) {
	edges, err := gstore.GenerateKronecker(11, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 6
	opts.GroupQ = 4
	g, err := gstore.Convert(edges, dir, "kron-11-8", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 4 << 20
	eopts.SegmentSize = 256 << 10
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	depths, bst, err := eng.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	wantD := graph.RefBFS(graph.NewCSR(edges, false), 0)
	for v, d := range depths {
		if d != wantD[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, wantD[v])
		}
	}
	if bst.MTEPS(g.Meta.NumOriginal) <= 0 {
		t.Fatal("MTEPS not positive")
	}

	ranks, _, err := eng.PageRank(8)
	if err != nil {
		t.Fatal(err)
	}
	wantR := graph.RefPageRank(graph.NewCSR(edges, false), graph.DefaultPageRank(8))
	for v, r := range ranks {
		if math.Abs(r-wantR[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, wantR[v])
		}
	}

	labels, _, err := eng.WCC()
	if err != nil {
		t.Fatal(err)
	}
	wantL := graph.RefWCC(edges)
	for v, l := range labels {
		if l != wantL[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, wantL[v])
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	edges, err := gstore.GenerateUniform(9, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, dir, "u", opts)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()

	g2, err := gstore.Open(filepath.Join(dir, "u"))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.Meta.NumOriginal != int64(len(edges.Edges)) {
		t.Fatalf("reopened edge count %d, want %d", g2.Meta.NumOriginal, len(edges.Edges))
	}
}

func TestPageRankUntil(t *testing.T) {
	edges, err := gstore.GenerateKronecker(9, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, t.TempDir(), "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 2 << 20
	eopts.SegmentSize = 128 << 10
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, st, err := eng.PageRankUntil(1e-7, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations >= 500 || st.Iterations < 2 {
		t.Fatalf("iterations = %d", st.Iterations)
	}
}

func TestGenerateTwitterLikeDirected(t *testing.T) {
	edges, err := gstore.GenerateTwitterLike(8, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !edges.Directed {
		t.Fatal("twitter-like graph should be directed")
	}
}

func ExampleEngine_BFS() {
	edges, _ := gstore.GenerateKronecker(10, 8, 1)
	dir, _ := os.MkdirTemp("", "gstore-example")
	defer os.RemoveAll(dir)
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 6
	g, err := gstore.Convert(edges, dir, "example", opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer g.Close()
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 4 << 20
	eopts.SegmentSize = 256 << 10
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer eng.Close()
	depths, _, err := eng.BFS(0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(depths[0])
	// Output: 0
}

func TestFacadeExtendedAlgorithms(t *testing.T) {
	edges, err := gstore.GenerateKronecker(10, 8, 44)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 6
	g, err := gstore.Convert(edges, t.TempDir(), "ext", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 4 << 20
	eopts.SegmentSize = 256 << 10
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	sync, _, err := eng.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	async, ast, err := eng.AsyncBFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range sync {
		if sync[v] != async[v] {
			t.Fatalf("async depth[%d] = %d, sync %d", v, async[v], sync[v])
		}
	}
	if ast.Iterations < 1 {
		t.Fatal("async stats empty")
	}

	multi, _, err := eng.MSBFS([]uint32{0, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 {
		t.Fatalf("MSBFS returned %d results", len(multi))
	}
	for v := range sync {
		if multi[0][v] != sync[v] {
			t.Fatalf("msbfs depth[%d] = %d, bfs %d", v, multi[0][v], sync[v])
		}
	}

	// SCC must reject the undirected graph.
	if _, _, err := eng.SCC(); err == nil {
		t.Fatal("SCC accepted an undirected graph")
	}
}

func TestFacadeSCCDirected(t *testing.T) {
	edges, err := gstore.GenerateTwitterLike(9, 4, 45)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, t.TempDir(), "scc", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 2 << 20
	eopts.SegmentSize = 128 << 10
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	labels, st, err := eng.SCC()
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefSCC(edges)
	for v := range labels {
		if labels[v] != want[v] {
			t.Fatalf("scc label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
	if st.Iterations < 2 {
		t.Fatalf("iterations = %d", st.Iterations)
	}
}

func TestFacadeInMemory(t *testing.T) {
	edges, err := gstore.GenerateKronecker(9, 8, 46)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, t.TempDir(), "mem", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	mg, err := gstore.LoadInMemory(g)
	if err != nil {
		t.Fatal(err)
	}
	depths, _, err := mg.BFS(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(edges, false), 0)
	for v := range depths {
		if depths[v] != want[v] {
			t.Fatalf("in-memory depth[%d] = %d, want %d", v, depths[v], want[v])
		}
	}
	ranks, _, err := mg.PageRank(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantR := graph.RefPageRank(graph.NewCSR(edges, false), graph.DefaultPageRank(6))
	for v := range ranks {
		if math.Abs(ranks[v]-wantR[v]) > 1e-9 {
			t.Fatalf("in-memory rank[%d] = %v, want %v", v, ranks[v], wantR[v])
		}
	}
	labels, _, err := mg.WCC(2)
	if err != nil {
		t.Fatal(err)
	}
	wantL := graph.RefWCC(edges)
	for v := range labels {
		if labels[v] != wantL[v] {
			t.Fatalf("in-memory label[%d] = %d, want %d", v, labels[v], wantL[v])
		}
	}
}

func TestFacadeHDDTier(t *testing.T) {
	edges, err := gstore.GenerateKronecker(9, 8, 47)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, t.TempDir(), "hdd", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = 2 << 20
	eopts.SegmentSize = 128 << 10
	eopts.HDD = &gstore.HDDTier{Fraction: 0.5, Disks: 1, Bandwidth: 1 << 30}
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	depths, _, err := eng.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(edges, false), 0)
	for v := range depths {
		if depths[v] != want[v] {
			t.Fatalf("tiered depth[%d] = %d, want %d", v, depths[v], want[v])
		}
	}
}

func TestFacadeVerifyAndStats(t *testing.T) {
	edges, err := gstore.GenerateKronecker(9, 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	opts := gstore.DefaultConvertOptions()
	opts.TileBits = 5
	g, err := gstore.Convert(edges, t.TempDir(), "vs", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := gstore.Verify(g); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	st := gstore.CollectStats(g)
	if st.TotalTuples != int64(len(edges.Edges)) || st.Tiles == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeConvertExternal(t *testing.T) {
	edges, err := gstore.GenerateKronecker(9, 4, 49)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	edgePath := filepath.Join(dir, "edges.bin")
	if err := graph.WriteEdgeListFile(edgePath, edges); err != nil {
		t.Fatal(err)
	}
	opts := gstore.ConvertExternalOptions{}
	opts.TileBits = 5
	opts.GroupQ = 2
	opts.Symmetry = true
	opts.SNB = true
	opts.Degrees = true
	opts.MemoryBudget = 1 << 16
	g, err := gstore.ConvertExternal(edgePath, edges.NumVertices, false, dir, "ext", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Meta.NumStored != int64(len(edges.Edges)) {
		t.Fatalf("stored %d, want %d", g.Meta.NumStored, len(edges.Edges))
	}
	if err := gstore.Verify(g); err != nil {
		t.Fatalf("Verify after external convert: %v", err)
	}
}

// Connectivity: find the weakly connected components of a sparse random
// graph near the percolation threshold, where component structure is at
// its richest — the CC workload of the paper's evaluation.
//
// A uniform random graph with average degree ~1 sits at the phase
// transition: a giant component is just emerging amid a sea of small
// ones, so the component-size histogram is heavy-tailed.
//
// Run with:
//
//	go run ./examples/connectivity [-scale 18]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	gstore "github.com/gwu-systems/gstore"
)

func main() {
	scale := flag.Uint("scale", 17, "log2 of the vertex count")
	flag.Parse()

	// EdgeFactor 1 => average degree 2 (each edge touches two vertices):
	// just past the percolation threshold.
	edges, err := gstore.GenerateUniform(*scale, 1, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random graph: %d vertices, %d edges (mean degree %.1f)\n",
		edges.NumVertices, len(edges.Edges),
		2*float64(len(edges.Edges))/float64(edges.NumVertices))

	dir, err := os.MkdirTemp("", "gstore-connectivity")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copts := gstore.DefaultConvertOptions()
	copts.TileBits = *scale - 6
	copts.GroupQ = 8
	g, err := gstore.Convert(edges, dir, "random", copts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = g.DataBytes()/2 + 1<<20
	eopts.SegmentSize = eopts.MemoryBytes / 8
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	labels, st, err := eng.WCC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wcc finished in %d iterations (%v)\n", st.Iterations, st.Elapsed.Round(1e6))

	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	var sorted []int
	for _, n := range sizes {
		sorted = append(sorted, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))

	fmt.Printf("components: %d total\n", len(sorted))
	fmt.Println("largest components:")
	for i := 0; i < 5 && i < len(sorted); i++ {
		fmt.Printf("  #%d: %d vertices (%.2f%% of the graph)\n",
			i+1, sorted[i], 100*float64(sorted[i])/float64(edges.NumVertices))
	}

	// Size histogram in powers of two: near the threshold this decays
	// polynomially rather than exponentially.
	hist := map[int]int{}
	for _, n := range sorted {
		b := 0
		for s := 1; s < n; s *= 2 {
			b++
		}
		hist[b]++
	}
	var buckets []int
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Println("component-size histogram (bucket = next power of two):")
	for _, b := range buckets {
		fmt.Printf("  <=%-8d %d components\n", 1<<b, hist[b])
	}
}

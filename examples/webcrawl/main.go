// Webcrawl: analyze the link structure of a synthetic web graph with
// strongly connected components — the bow-tie analysis classic for web
// graphs (Broder et al.), and the algorithm §IV-A of the paper singles
// out as requiring both edge directions, which G-Store's tile tuples
// provide from a single stored direction.
//
// The example reports the giant SCC (the web's "core"), compares it with
// the weak component structure, and shows how much smaller strong
// connectivity is than weak connectivity on directed link graphs.
//
// Run with:
//
//	go run ./examples/webcrawl [-scale 15]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	gstore "github.com/gwu-systems/gstore"
)

func main() {
	scale := flag.Uint("scale", 14, "log2 of the page count")
	flag.Parse()

	// A directed RMAT graph with subdomain-like skew stands in for a
	// hyperlink crawl.
	edges, err := gstore.GenerateTwitterLike(*scale, 8, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %d pages, %d links\n", edges.NumVertices, len(edges.Edges))

	dir, err := os.MkdirTemp("", "gstore-webcrawl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copts := gstore.DefaultConvertOptions()
	copts.TileBits = *scale - 6
	copts.GroupQ = 8
	g, err := gstore.Convert(edges, dir, "web", copts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = g.DataBytes()/2 + 1<<20
	eopts.SegmentSize = eopts.MemoryBytes / 8
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	scc, sccStats, err := eng.SCC()
	if err != nil {
		log.Fatal(err)
	}
	wcc, _, err := eng.WCC()
	if err != nil {
		log.Fatal(err)
	}

	sccSizes := census(scc)
	wccSizes := census(wcc)
	fmt.Printf("strong components: %d (computed in %v, %d passes)\n",
		len(sccSizes), sccStats.Elapsed.Round(1e6), sccStats.Iterations)
	fmt.Printf("weak components:   %d\n", len(wccSizes))
	fmt.Printf("giant SCC ('core'): %d pages (%.1f%%)\n",
		sccSizes[0], 100*float64(sccSizes[0])/float64(edges.NumVertices))
	fmt.Printf("giant WCC:          %d pages (%.1f%%)\n",
		wccSizes[0], 100*float64(wccSizes[0])/float64(edges.NumVertices))

	// Bow-tie sanity: the giant SCC is a subset of the giant WCC.
	if sccSizes[0] > wccSizes[0] {
		log.Fatal("impossible: SCC larger than WCC")
	}
	singletons := 0
	for _, s := range sccSizes {
		if s == 1 {
			singletons++
		}
	}
	fmt.Printf("singleton SCCs (tendrils/IN/OUT pages): %d\n", singletons)
}

func census(labels []uint32) []int {
	m := map[uint32]int{}
	for _, l := range labels {
		m[l]++
	}
	sizes := make([]int, 0, len(m))
	for _, n := range m {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// Graph500: a BFS benchmark in the style of the Graph500 list the paper
// cites — generate a Kronecker graph, traverse it from a set of random
// roots, validate each traversal, and report MTEPS (millions of traversed
// edges per second).
//
// Run with:
//
//	go run ./examples/graph500 [-scale 18] [-roots 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	gstore "github.com/gwu-systems/gstore"
)

func main() {
	scale := flag.Uint("scale", 16, "log2 of the vertex count")
	roots := flag.Int("roots", 8, "number of BFS roots")
	flag.Parse()

	edges, err := gstore.GenerateKronecker(*scale, 16, 500)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gstore-graph500")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copts := gstore.DefaultConvertOptions()
	copts.TileBits = *scale - 6
	copts.GroupQ = 8
	g, err := gstore.Convert(edges, dir, "graph500", copts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = g.DataBytes()/4 + 1<<20
	eopts.SegmentSize = eopts.MemoryBytes / 8
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Roots must have at least one edge, per the Graph500 rules.
	deg := edges.OutDegrees()
	var mteps []float64
	seed := uint32(12345)
	fmt.Printf("running %d BFS traversals on %s (%d vertices, %d edges)\n",
		*roots, "kron", edges.NumVertices, len(edges.Edges))
	for r := 0; r < *roots; r++ {
		root := seed
		for deg[root] == 0 {
			root = (root*1664525 + 1013904223) % edges.NumVertices
		}
		seed = (root*1664525 + 1013904223) % edges.NumVertices

		depths, st, err := eng.BFS(root)
		if err != nil {
			log.Fatal(err)
		}
		if err := validate(edges, depths, root); err != nil {
			log.Fatalf("root %d: INVALID traversal: %v", root, err)
		}
		// Graph500 counts edges within the reached component.
		traversed := int64(0)
		for v, d := range depths {
			if d >= 0 {
				traversed += int64(deg[v])
			}
		}
		m := st.MTEPS(traversed)
		mteps = append(mteps, m)
		fmt.Printf("  root %-10d depth %-3d reached %-8d %7.1f MTEPS  (%v)\n",
			root, st.Iterations-1, reached(depths), m, st.Elapsed.Round(1e6))
	}
	sort.Float64s(mteps)
	fmt.Printf("harmonic-mean MTEPS: %.1f   median: %.1f\n",
		harmonicMean(mteps), mteps[len(mteps)/2])
}

func reached(depths []int32) int {
	n := 0
	for _, d := range depths {
		if d >= 0 {
			n++
		}
	}
	return n
}

// validate applies the Graph500-style soundness checks: the root has
// depth 0, every edge spans at most one level, and every reached
// non-root vertex has a neighbor exactly one level up.
func validate(edges *gstore.EdgeList, depths []int32, root uint32) error {
	if depths[root] != 0 {
		return fmt.Errorf("root depth = %d", depths[root])
	}
	hasParent := make([]bool, len(depths))
	hasParent[root] = true
	for _, e := range edges.Edges {
		ds, dd := depths[e.Src], depths[e.Dst]
		if (ds < 0) != (dd < 0) {
			return fmt.Errorf("edge (%d,%d) spans reached/unreached", e.Src, e.Dst)
		}
		if ds < 0 {
			continue
		}
		diff := ds - dd
		if diff < -1 || diff > 1 {
			return fmt.Errorf("edge (%d,%d) spans %d levels", e.Src, e.Dst, diff)
		}
		if dd == ds+1 {
			hasParent[e.Dst] = true
		}
		if ds == dd+1 {
			hasParent[e.Src] = true
		}
	}
	for v, d := range depths {
		if d > 0 && !hasParent[v] {
			return fmt.Errorf("vertex %d at depth %d has no parent", v, d)
		}
	}
	return nil
}

func harmonicMean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += 1 / x
	}
	return float64(len(v)) / s
}

// Quickstart: generate a small Kronecker graph, convert it to the
// G-Store tile format, and run BFS, PageRank and connected components
// through the slide-cache-rewind engine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	gstore "github.com/gwu-systems/gstore"
)

func main() {
	// 1. A Graph500-style Kronecker graph: 2^16 vertices, 2^20 edges.
	edges, err := gstore.GenerateKronecker(16, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d vertices, %d undirected edges\n",
		edges.NumVertices, len(edges.Edges))

	// 2. Convert to the tile format. At this scale we shrink the tile
	// width (the paper's 2^16-vertex tiles would put the whole graph in
	// one tile).
	dir, err := os.MkdirTemp("", "gstore-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copts := gstore.DefaultConvertOptions()
	copts.TileBits = 10 // 64x64 tile grid
	copts.GroupQ = 8
	g, err := gstore.Convert(edges, dir, "quickstart", copts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("tile format: %d stored tuples in %d tiles (%.1fx smaller than the edge list)\n",
		g.Meta.NumStored, g.Layout.NumTiles(),
		float64(len(edges.Edges)*16)/float64(g.DataBytes()))

	// 3. An engine with a memory budget of a quarter of the graph.
	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = g.DataBytes() / 4
	eopts.SegmentSize = eopts.MemoryBytes / 8
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 4. BFS from vertex 0.
	depths, st, err := eng.BFS(0)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, d := range depths {
		if d >= 0 {
			reached++
		}
	}
	fmt.Printf("bfs:      reached %d vertices in %d levels (%v, %.0f MTEPS)\n",
		reached, st.Iterations, st.Elapsed.Round(1e6), st.MTEPS(2*g.Meta.NumOriginal))

	// 5. Ten PageRank iterations.
	ranks, st, err := eng.PageRank(10)
	if err != nil {
		log.Fatal(err)
	}
	best, bestRank := 0, 0.0
	for v, r := range ranks {
		if r > bestRank {
			best, bestRank = v, r
		}
	}
	fmt.Printf("pagerank: top vertex %d with rank %.5f (%v, %d tiles from cache)\n",
		best, bestRank, st.Elapsed.Round(1e6), st.TilesFromCache)

	// 6. Weakly connected components.
	labels, st, err := eng.WCC()
	if err != nil {
		log.Fatal(err)
	}
	comps := map[uint32]int{}
	for _, l := range labels {
		comps[l]++
	}
	fmt.Printf("wcc:      %d components in %d iterations (%v)\n",
		len(comps), st.Iterations, st.Elapsed.Round(1e6))
}

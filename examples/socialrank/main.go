// Socialrank: rank the most influential accounts of a Twitter-like
// follower network with PageRank — the workload class the paper's
// introduction motivates (social networks with heavily skewed degree
// distributions).
//
// The graph is a directed RMAT graph whose skew mimics the Twitter
// follower graph from the paper's Table II: a handful of celebrity
// vertices collect millions of followers while most vertices have a few.
//
// Run with:
//
//	go run ./examples/socialrank [-scale 18]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	gstore "github.com/gwu-systems/gstore"
)

func main() {
	scale := flag.Uint("scale", 16, "log2 of the account count")
	flag.Parse()

	edges, err := gstore.GenerateTwitterLike(*scale, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	// In-degree = follower count (an edge u->v means "u follows v" here).
	followers := edges.InDegrees()
	maxF := uint32(0)
	for _, f := range followers {
		if f > maxF {
			maxF = f
		}
	}
	fmt.Printf("follower network: %d accounts, %d follow edges, top account has %d followers\n",
		edges.NumVertices, len(edges.Edges), maxF)

	dir, err := os.MkdirTemp("", "gstore-socialrank")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copts := gstore.DefaultConvertOptions()
	copts.TileBits = *scale - 6
	copts.GroupQ = 8
	g, err := gstore.Convert(edges, dir, "followers", copts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	eopts := gstore.DefaultEngineOptions()
	eopts.MemoryBytes = g.DataBytes()/4 + 1<<20
	eopts.SegmentSize = eopts.MemoryBytes / 8
	eng, err := gstore.NewEngine(g, eopts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Iterate to (near) convergence instead of a fixed count.
	ranks, st, err := eng.PageRankUntil(1e-9*float64(edges.NumVertices), 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank converged in %d iterations (%v), read %s total\n",
		st.Iterations, st.Elapsed.Round(1e6), fmtBytes(st.BytesRead))

	type acct struct {
		id        uint32
		rank      float64
		followers uint32
	}
	all := make([]acct, len(ranks))
	for v, r := range ranks {
		all[v] = acct{uint32(v), r, followers[v]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank > all[j].rank })
	fmt.Println("top 10 accounts by PageRank:")
	fmt.Printf("  %-4s %-10s %-12s %s\n", "#", "account", "rank", "followers")
	for i := 0; i < 10 && i < len(all); i++ {
		a := all[i]
		fmt.Printf("  %-4d %-10d %-12.6g %d\n", i+1, a.id, a.rank, a.followers)
	}

	// PageRank rewards followers-of-influential, not raw counts: report
	// how the two orderings differ.
	byFollow := make([]acct, len(all))
	copy(byFollow, all)
	sort.Slice(byFollow, func(i, j int) bool { return byFollow[i].followers > byFollow[j].followers })
	topRank := map[uint32]bool{}
	for i := 0; i < 100 && i < len(all); i++ {
		topRank[all[i].id] = true
	}
	overlap := 0
	for i := 0; i < 100 && i < len(byFollow); i++ {
		if topRank[byFollow[i].id] {
			overlap++
		}
	}
	fmt.Printf("overlap between top-100 by rank and top-100 by followers: %d%%\n", overlap)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

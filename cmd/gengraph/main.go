// Command gengraph produces synthetic graphs in the binary edge-list
// format (8 bytes per edge: little-endian uint32 src, dst).
//
// Usage:
//
//	gengraph -kind kron -scale 20 -edgefactor 16 -seed 1 -out kron-20-16.bin
//	gengraph -kind twitter -scale 18 -edgefactor 8 -out twitter-like.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "kron", "generator: kron, rmat, random, twitter")
		scale      = flag.Uint("scale", 20, "log2 of the vertex count")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "generator seed")
		a          = flag.Float64("a", 0.57, "RMAT quadrant probability a")
		b          = flag.Float64("b", 0.19, "RMAT quadrant probability b")
		cc         = flag.Float64("c", 0.19, "RMAT quadrant probability c")
		directed   = flag.Bool("directed", false, "emit directed edges")
		out        = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		os.Exit(2)
	}

	var cfg gen.Config
	switch *kind {
	case "kron":
		cfg = gen.Graph500Config(*scale, *edgeFactor, *seed)
		cfg.Directed = *directed
	case "rmat":
		cfg = gen.Config{Kind: gen.RMAT, Scale: *scale, EdgeFactor: *edgeFactor,
			A: *a, B: *b, C: *cc, Seed: *seed, Directed: *directed}
	case "random":
		cfg = gen.UniformConfig(*scale, *edgeFactor, *seed)
		cfg.Directed = *directed
	case "twitter":
		cfg = gen.TwitterLikeConfig(*scale, *edgeFactor, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [8]byte
	n := int64(0)
	err = gen.Stream(cfg, func(e graph.Edge) error {
		binary.LittleEndian.PutUint32(buf[0:4], e.Src)
		binary.LittleEndian.PutUint32(buf[4:8], e.Dst)
		n++
		_, werr := w.Write(buf[:])
		return werr
	})
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: wrote %d edges (%d vertices) to %s\n", cfg.Name(), n, cfg.NumVertices(), *out)
}

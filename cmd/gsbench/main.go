// Command gsbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints an aligned text table; EXPERIMENTS.md
// records the measured values against the paper's.
//
// Usage:
//
//	gsbench -list
//	gsbench -run all [-scale 18] [-edgefactor 16] [-workdir DIR]
//	gsbench -run fig9,fig10 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gwu-systems/gstore/internal/exp"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		run        = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		scale      = flag.Uint("scale", 0, "Kronecker scale of the primary workload (default 18, quick 14)")
		edgeFactor = flag.Int("edgefactor", 0, "edges per vertex (default 16)")
		seed       = flag.Uint64("seed", 0, "generator seed")
		threads    = flag.Int("threads", 0, "worker threads (default GOMAXPROCS)")
		sweep      = flag.String("sweep", "", "comma-separated thread counts for the sweep experiment, e.g. 1,2,4,8")
		workDir    = flag.String("workdir", "", "directory for generated graphs (default under TMPDIR)")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	)
	flag.Parse()

	var threadList []int
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "gsbench: bad -sweep entry %q\n", s)
				os.Exit(2)
			}
			threadList = append(threadList, n)
		}
		// -sweep alone implies running the sweep experiment.
		if *run == "" {
			*run = "sweep"
		}
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, r := range exp.All() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <ids|all>")
		}
		return
	}

	cfg := &exp.Config{
		WorkDir:    *workDir,
		Scale:      *scale,
		EdgeFactor: *edgeFactor,
		Seed:       *seed,
		Threads:    *threads,
		Out:        os.Stdout,
		Quick:      *quick,
	}
	cfg.ThreadList = threadList
	cfg.Defaults()

	var ids []string
	if *run == "all" {
		for _, r := range exp.All() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		r, ok := exp.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "gsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("-- %s: %s\n", r.ID, r.Title)
		begin := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", r.ID, time.Since(begin).Round(time.Millisecond))
	}
}

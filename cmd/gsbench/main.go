// Command gsbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints an aligned text table; EXPERIMENTS.md
// records the measured values against the paper's.
//
// Usage:
//
//	gsbench -list
//	gsbench -run all [-scale 18] [-edgefactor 16] [-workdir DIR]
//	gsbench -run fig9,fig10 -quick
//	gsbench -clients 8 -duration 10s [-benchout BENCH.json]
//	gsbench -clients 8 -target http://localhost:8080
//	gsbench -run chaos [-seed N] [-benchout CHAOS.json]
//
// The -clients mode is the closed-loop serving benchmark: N concurrent
// clients fire mixed BFS/PageRank queries at one graph for -duration and
// the report compares serialized execution against the shared-scan
// scheduler (QPS, p50/p95/p99 latency, bytes per query). With -target it
// load-tests a running gstored instead of an in-process server.
//
// The serve-personal experiment benchmarks the personalized-query path:
// a Zipf mix of single-root BFS queries served one-root-per-slot vs
// fused into multi-source runs (-batch-window) with the result cache on.
//
// The chaos experiment is a correctness harness, not a benchmark: seeded
// schedules of ingest, flushes, injected write faults, and simulated
// crashes, each followed by a restart whose recovered state must match a
// fresh conversion of the reference edge set (DESIGN.md §15). Any
// invariant violation makes the run fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gwu-systems/gstore/internal/exp"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		run        = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		scale      = flag.Uint("scale", 0, "Kronecker scale of the primary workload (default 18, quick 14)")
		edgeFactor = flag.Int("edgefactor", 0, "edges per vertex (default 16)")
		seed       = flag.Uint64("seed", 0, "generator seed")
		threads    = flag.Int("threads", 0, "worker threads (default GOMAXPROCS)")
		sweep      = flag.String("sweep", "", "comma-separated thread counts for the sweep experiment, e.g. 1,2,4,8")
		workDir    = flag.String("workdir", "", "directory for generated graphs (default under TMPDIR)")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		clients    = flag.Int("clients", 0, "closed-loop client count for the serving benchmark")
		duration   = flag.Duration("duration", 0, "serving benchmark phase duration (default 5s, quick 2s)")
		target     = flag.String("target", "", "base URL of a running gstored to benchmark (default: in-process server)")
		benchOut   = flag.String("benchout", "", "file for the serving benchmark's JSON report")
		batchWin   = flag.Duration("batch-window", 0, "coalescing window of the serve-personal fused phase (default 2ms)")
	)
	flag.Parse()

	var threadList []int
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "gsbench: bad -sweep entry %q\n", s)
				os.Exit(2)
			}
			threadList = append(threadList, n)
		}
		// -sweep alone implies running the sweep experiment.
		if *run == "" {
			*run = "sweep"
		}
	}
	// -clients or -target alone implies the serving benchmark.
	if (*clients > 0 || *target != "") && *run == "" {
		*run = "serve"
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, r := range exp.All() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <ids|all>")
		}
		return
	}

	cfg := &exp.Config{
		WorkDir:    *workDir,
		Scale:      *scale,
		EdgeFactor: *edgeFactor,
		Seed:       *seed,
		Threads:    *threads,
		Out:        os.Stdout,
		Quick:      *quick,
	}
	cfg.ThreadList = threadList
	cfg.BenchClients = *clients
	cfg.BenchDuration = *duration
	cfg.Target = *target
	cfg.BenchOut = *benchOut
	cfg.BatchWindow = *batchWin
	cfg.Defaults()

	var ids []string
	if *run == "all" {
		for _, r := range exp.All() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		r, ok := exp.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "gsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("-- %s: %s\n", r.ID, r.Title)
		begin := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", r.ID, time.Since(begin).Round(time.Millisecond))
	}
}

// Command benchdiff compares a benchmark JSON report against a committed
// baseline. It walks every field of the baseline and reports the current
// value next to it, with a percent delta for numbers.
//
// The exit status is about report *shape*, not performance: a missing
// current file or a field present in the baseline but absent from the
// current report fails the run (a benchmark silently dropping a metric is
// a regression CI must catch), while numeric drift only prints — CI
// runners are too noisy for timing thresholds, and the deterministic
// fields (byte counts, ratios) are guarded by tests instead.
//
// Usage:
//
//	benchdiff -baseline bench/BENCH_codec_quick.json -current BENCH_pr7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON report")
	current := flag.String("current", "", "freshly produced JSON report")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline FILE -current FILE")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchdiff %s -> %s\n", *baseline, *current)
	fmt.Printf("%-45s  %15s  %15s  %9s\n", "field", "baseline", "current", "delta")
	missing := diff("", base, cur)
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "benchdiff: field %q missing from current report\n", m)
		}
		os.Exit(1)
	}
}

func load(path string) (map[string]interface{}, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// diff prints one line per baseline leaf field and returns the paths of
// fields the current report lacks.
func diff(prefix string, base, cur map[string]interface{}) []string {
	var missing []string
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		path := k
		if prefix != "" {
			path = prefix + "." + k
		}
		bv := base[k]
		cv, ok := cur[k]
		if !ok {
			missing = append(missing, path)
			continue
		}
		if bm, isMap := bv.(map[string]interface{}); isMap {
			cm, curIsMap := cv.(map[string]interface{})
			if !curIsMap {
				missing = append(missing, path)
				continue
			}
			missing = append(missing, diff(path, bm, cm)...)
			continue
		}
		if ba, isArr := bv.([]interface{}); isArr {
			ca, curIsArr := cv.([]interface{})
			if !curIsArr {
				missing = append(missing, path)
				continue
			}
			missing = append(missing, diffArray(path, ba, ca)...)
			continue
		}
		fmt.Printf("%-45s  %15s  %15s  %9s\n", path, render(bv), render(cv), delta(bv, cv))
	}
	return missing
}

// diffArray walks baseline array elements by index. A shorter current
// array counts the tail as missing; extra current elements only print.
// Scalar elements diff like leaf fields; object elements recurse.
func diffArray(prefix string, base, cur []interface{}) []string {
	var missing []string
	for i, bv := range base {
		path := fmt.Sprintf("%s[%d]", prefix, i)
		if i >= len(cur) {
			missing = append(missing, path)
			continue
		}
		cv := cur[i]
		switch bx := bv.(type) {
		case map[string]interface{}:
			cm, ok := cv.(map[string]interface{})
			if !ok {
				missing = append(missing, path)
				continue
			}
			missing = append(missing, diff(path, bx, cm)...)
		case []interface{}:
			ca, ok := cv.([]interface{})
			if !ok {
				missing = append(missing, path)
				continue
			}
			missing = append(missing, diffArray(path, bx, ca)...)
		default:
			fmt.Printf("%-45s  %15s  %15s  %9s\n", path, render(bv), render(cv), delta(bv, cv))
		}
	}
	for i := len(base); i < len(cur); i++ {
		fmt.Printf("%-45s  %15s  %15s  %9s\n",
			fmt.Sprintf("%s[%d]", prefix, i), "-", render(cur[i]), "new")
	}
	return missing
}

func render(v interface{}) string {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.4g", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

func delta(b, c interface{}) string {
	bf, bok := b.(float64)
	cf, cok := c.(float64)
	if !bok || !cok {
		if b == c {
			return "same"
		}
		return "changed"
	}
	if bf == 0 {
		if cf == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cf-bf)/bf*100)
}

// Command gstore converts graphs to the tile format and runs the three
// algorithms of the paper over them with the slide-cache-rewind engine.
//
// Usage:
//
//	gstore convert -in edges.bin -vertices 1048576 [-directed] -dir data -name mygraph
//	gstore info -graph data/mygraph
//	gstore bfs -graph data/mygraph -root 0 [-backend file [-direct]]
//	gstore pagerank -graph data/mygraph -iters 10
//	gstore wcc -graph data/mygraph
//	gstore ingest -graph data/mygraph -in mutations.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	gstore "github.com/gwu-systems/gstore"
	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/report"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "fsck":
		err = cmdFsck(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "bfs", "asyncbfs", "pagerank", "wcc", "scc":
		err = cmdRun(os.Args[1], os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gstore convert -in edges.bin -vertices N [-directed] -dir DIR -name NAME [-tilebits 16] [-groupq 256]
  gstore info -graph DIR/NAME
  gstore verify -graph DIR/NAME
  gstore fsck -graph DIR/NAME
  gstore stats -graph DIR/NAME
  gstore ingest -graph DIR/NAME [-in FILE|-] [-batch 4096]   (lines: "src dst" inserts, "del src dst" deletes)
  gstore bfs -graph DIR/NAME -root 0 [engine flags]
  gstore bfs -graph DIR/NAME -roots 0,1,2,3   (co-scheduled on one shared scan)
  gstore asyncbfs -graph DIR/NAME -root 0 [engine flags]
  gstore pagerank -graph DIR/NAME -iters 10 [engine flags]
  gstore wcc -graph DIR/NAME [engine flags]
  gstore scc -graph DIR/NAME [engine flags]   (directed graphs)`)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "binary edge list input (8 bytes/edge)")
	vertices := fs.Uint64("vertices", 0, "number of vertices")
	directed := fs.Bool("directed", false, "treat input as directed")
	dir := fs.String("dir", ".", "output directory")
	name := fs.String("name", "", "output base name")
	tileBits := fs.Uint("tilebits", 16, "log2 tile width")
	groupQ := fs.Uint("groupq", 256, "physical group width in tiles")
	noSym := fs.Bool("nosymmetry", false, "disable the symmetry (half) storage")
	noSNB := fs.Bool("nosnb", false, "disable the SNB tuple encoding")
	codec := fs.String("codec", "", "tuple codec: snb, raw, or v3 (overrides -nosnb)")
	fs.Parse(args)
	if *in == "" || *name == "" || *vertices == 0 {
		return fmt.Errorf("convert: -in, -name and -vertices are required")
	}
	opts := tile.ConvertOptions{
		TileBits: *tileBits,
		GroupQ:   uint32(*groupQ),
		Symmetry: !*noSym,
		SNB:      !*noSNB,
		Codec:    *codec,
		Degrees:  true,
	}
	g, err := tile.ConvertEdgeListFile(*in, uint32(*vertices), *directed, *dir, *name, opts)
	if err != nil {
		return err
	}
	defer g.Close()
	fmt.Printf("converted %s: %d vertices, %d stored tuples, %s data + %s start-edge\n",
		*name, g.Meta.NumVertices, g.Meta.NumStored,
		report.Bytes(g.DataBytes()), report.Bytes(g.StartBytes()))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("info: -graph is required")
	}
	g, err := gstore.Open(*path)
	if err != nil {
		return err
	}
	defer g.Close()
	m := g.Meta
	fmt.Printf("name:        %s\n", m.Name)
	fmt.Printf("vertices:    %d\n", m.NumVertices)
	fmt.Printf("stored:      %d tuples (%d original edges)\n", m.NumStored, m.NumOriginal)
	fmt.Printf("tile width:  2^%d (%d tiles/side, %d stored tiles)\n",
		m.TileBits, g.Layout.P, g.Layout.NumTiles())
	fmt.Printf("groups:      %dx%d tiles\n", m.GroupQ, m.GroupQ)
	fmt.Printf("directed:    %v   half-stored: %v   codec: %s\n", m.Directed, m.Half, m.TupleCodec())
	fmt.Printf("format:      v%d   checksummed: %v\n", m.Version, g.Checksummed())
	fmt.Printf("data:        %s (+%s start-edge)\n",
		report.Bytes(g.DataBytes()), report.Bytes(g.StartBytes()))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("verify: -graph is required")
	}
	g, err := gstore.Open(*path)
	if err != nil {
		return err
	}
	defer g.Close()
	if err := tile.Verify(g); err != nil {
		return err
	}
	fmt.Printf("%s: OK (%d tiles, %d tuples, %s)\n",
		*path, g.Layout.NumTiles(), g.Meta.NumStored, report.Bytes(g.DataBytes()))
	return nil
}

// cmdFsck validates a graph offline — header, start-array monotonicity,
// per-tile CRC32C checksums, tuple ranges, degree file — and, when the
// graph has a write path on disk, its WAL segments and delta snapshots
// too. Every corrupt section, tile, segment and snapshot is reported.
// Exit status 0 means the graph passed every applicable check (a torn
// WAL tail from a crash is informational, not a failure: replay discards
// it).
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("fsck: -graph is required")
	}
	r := tile.Fsck(*path)
	dFindings, dNotes := delta.Fsck(*path)
	mode := "full (per-tile crc32c)"
	if !r.Checksummed {
		mode = "structural only (v1 graph, no checksums)"
	}
	for _, n := range dNotes {
		fmt.Printf("fsck: note: %s\n", n)
	}
	problems := len(r.Findings) + len(dFindings)
	if r.OK() && len(dFindings) == 0 {
		fmt.Printf("%s: OK — format v%d, %s; %d tiles, %d tuples checked\n",
			*path, r.Version, mode, r.TilesChecked, r.TuplesChecked)
		return nil
	}
	for _, f := range r.Findings {
		fmt.Fprintf(os.Stderr, "fsck: %s\n", f)
	}
	for _, f := range dFindings {
		fmt.Fprintf(os.Stderr, "fsck: %s\n", f)
	}
	if r.Truncated {
		fmt.Fprintf(os.Stderr, "fsck: ... further tile findings suppressed after the first %d\n",
			len(r.Findings))
	}
	return fmt.Errorf("%s: %d problem(s) found", *path, problems)
}

// cmdIngest streams edge mutations from a text file (or stdin) through
// the graph's WAL-backed write path: each batch is appended to the WAL
// (fsynced) before it becomes visible, and a final snapshot flush leaves
// the store clean for the next open. Lines are "src dst" to insert or
// "del src dst" to delete; "add src dst" is accepted too; '#' starts a
// comment.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	in := fs.String("in", "-", `mutation input file ("-" = stdin)`)
	batch := fs.Int("batch", 4096, "mutations per WAL record (one atomic, durable batch)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("ingest: -graph is required")
	}
	if *batch <= 0 {
		*batch = 4096
	}
	var r io.Reader = os.Stdin
	if *in != "-" && *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := gstore.Open(*path)
	if err != nil {
		return err
	}
	defer g.Close()
	ds, err := delta.Open(g, *path, delta.Options{})
	if err != nil {
		return err
	}
	if st := ds.Stats(); st.ReplayRecords > 0 {
		fmt.Printf("recovered %d mutation(s) in %d WAL record(s) from a previous run\n",
			st.ReplayOps, st.ReplayRecords)
	}

	start := time.Now()
	var total, changed int64
	var ops []delta.Op
	apply := func() error {
		if len(ops) == 0 {
			return nil
		}
		n, err := ds.Apply(ops)
		if err != nil {
			return err
		}
		total += int64(len(ops))
		changed += int64(n)
		ops = ops[:0]
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		op := delta.Op{}
		switch {
		case len(fields) == 2:
		case len(fields) == 3 && fields[0] == "add":
			fields = fields[1:]
		case len(fields) == 3 && fields[0] == "del":
			op.Del = true
			fields = fields[1:]
		default:
			return fmt.Errorf("ingest: line %d: want \"src dst\", \"add src dst\" or \"del src dst\", got %q", line, text)
		}
		s64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("ingest: line %d: bad src %q: %w", line, fields[0], err)
		}
		d64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("ingest: line %d: bad dst %q: %w", line, fields[1], err)
		}
		op.Src, op.Dst = uint32(s64), uint32(d64)
		ops = append(ops, op)
		if len(ops) >= *batch {
			if err := apply(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	// Close flushes the delta layer to a checksummed snapshot and
	// truncates the WAL, so the next open needs no replay.
	if err := ds.Close(); err != nil {
		return err
	}
	st := ds.Stats()
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("ingested %d mutation(s) (%d effective) in %v: %.0f mutations/s\n",
		total, changed, elapsed.Round(time.Millisecond), rate)
	fmt.Printf("delta layer: %d tile(s) touched, %d inserted tuple(s), %d masked key(s), snapshot flushed\n",
		st.DeltaTiles, st.InsTuples, st.MaskedKeys)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("stats: -graph is required")
	}
	g, err := gstore.Open(*path)
	if err != nil {
		return err
	}
	defer g.Close()
	st := tile.CollectStats(g)
	tb := report.New("tile statistics for "+*path, "metric", "value")
	tb.Row("tiles", st.Tiles)
	tb.Row("empty tiles", fmt.Sprintf("%d (%.1f%%)", st.EmptyTiles,
		100*float64(st.EmptyTiles)/float64(st.Tiles)))
	tb.Row("tiles < 1000 tuples", st.EmptyTiles+st.TilesUnder1K)
	tb.Row("tiles > 100000 tuples", st.Over100K)
	tb.Row("largest tile (tuples)", st.MaxTuples)
	tb.Row("total tuples", st.TotalTuples)
	tb.Row("physical groups", st.Groups)
	tb.Row("smallest group (tuples)", st.MinGroup)
	tb.Row("largest group (tuples)", st.MaxGroup)
	tb.Row("data size", report.Bytes(st.DataBytes))
	tb.Fprint(os.Stdout)
	return nil
}

func engineFlags(fs *flag.FlagSet) func() core.Options {
	mem := fs.Int64("memory", 0, "streaming+caching memory in bytes (default graph/4)")
	seg := fs.Int64("segment", 0, "segment size in bytes (default memory/8)")
	threads := fs.Int("threads", 0, "worker threads")
	chunk := fs.Int64("chunk", 0, "work-item chunk size in bytes (0 = 256KiB default, -1 = whole tiles)")
	disks := fs.Int("disks", 8, "simulated SSD count")
	bw := fs.Float64("bandwidth", 0, "per-disk bandwidth in bytes/s (0 = unthrottled; -backend sim: per disk, file: aggregate)")
	backend := fs.String("backend", "sim", "storage backend: sim (simulated striped array) or file (real async reads)")
	direct := fs.Bool("direct", false, "with -backend file, bypass the page cache (O_DIRECT; falls back to buffered where unsupported)")
	ioworkers := fs.Int("ioworkers", 0, "with -backend file, submitter goroutine count (0 = default 4)")
	readahead := fs.Int64("readahead", 0, "with -backend file, next-iteration readahead budget in bytes (0 = default 8MiB, negative disables)")
	policy := fs.String("cache", "proactive", "cache policy: proactive, lru, none")
	sync := fs.Bool("syncio", false, "use synchronous reads instead of batched AIO")
	trace := fs.Bool("trace", false, "print one diagnostic line per iteration")
	retries := fs.Int("retries", 3, "max re-submissions of a failed read before the run fails")
	faultRate := fs.Float64("faultrate", 0, "injected read-error probability in [0,1]")
	faultShort := fs.Float64("faultshort", 0, "injected short-read probability in [0,1]")
	faultSlow := fs.Float64("faultslow", 0, "injected latency-spike probability in [0,1]")
	faultDelay := fs.Duration("faultdelay", time.Millisecond, "injected latency-spike length")
	faultCorrupt := fs.Float64("faultcorrupt", 0, "injected silent-corruption probability in [0,1]")
	faultSeed := fs.Int64("faultseed", 1, "fault injection seed")
	return func() core.Options {
		o := core.DefaultOptions()
		if *mem > 0 {
			o.MemoryBytes = *mem
		}
		if *seg > 0 {
			o.SegmentSize = *seg
		} else {
			o.SegmentSize = o.MemoryBytes / 8
		}
		if *threads > 0 {
			o.Threads = *threads
		}
		o.ChunkBytes = *chunk
		o.Disks = *disks
		o.Bandwidth = *bw
		o.Backend = *backend
		o.DirectIO = *direct
		o.IOWorkers = *ioworkers
		o.ReadaheadBytes = *readahead
		o.SyncIO = *sync
		o.MaxRetries = *retries
		if *faultRate > 0 || *faultShort > 0 || *faultSlow > 0 || *faultCorrupt > 0 {
			o.Fault = &storage.FaultConfig{
				Seed:        *faultSeed,
				ErrorRate:   *faultRate,
				ShortRate:   *faultShort,
				SlowRate:    *faultSlow,
				SlowDelay:   *faultDelay,
				CorruptRate: *faultCorrupt,
			}
		}
		if *trace {
			o.Trace = os.Stderr
		}
		switch *policy {
		case "lru":
			o.Cache = core.CacheLRU
		case "none":
			o.Cache = core.CacheNone
		default:
			o.Cache = core.CacheProactive
		}
		return o
	}
}

// runMultiBFS co-schedules one BFS per root on the engine's shared
// sweep and prints a per-root summary plus the combined I/O cost.
func runMultiBFS(ctx context.Context, g *gstore.Graph, e *core.Engine, rootList []uint32) error {
	sched := core.NewScheduler(e)
	defer sched.Close()

	type result struct {
		st  *core.Stats
		err error
	}
	runs := make([]*algo.BFS, len(rootList))
	results := make([]result, len(rootList))
	var wg sync.WaitGroup
	for i, r := range rootList {
		runs[i] = algo.NewBFS(r)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := sched.Run(ctx, runs[i])
			results[i] = result{st, err}
		}(i)
	}
	wg.Wait()

	var totalBytes, totalReqs int64
	var elapsed time.Duration
	for i, r := range rootList {
		res := results[i]
		if res.err != nil {
			return fmt.Errorf("bfs root %d: %w", r, res.err)
		}
		reached := 0
		maxDepth := int32(-1)
		for _, d := range runs[i].Depths() {
			if d >= 0 {
				reached++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
		st := res.st
		totalBytes += st.BytesRead
		totalReqs += st.IORequests
		if st.Elapsed > elapsed {
			elapsed = st.Elapsed
		}
		fmt.Printf("bfs root %-10d reached %d of %d, max depth %d, read %s (shared with up to %d runs)\n",
			r, reached, g.Meta.NumVertices, maxDepth, report.Bytes(st.BytesRead), st.SharedRuns)
	}
	fmt.Printf("co-scheduled %d searches in %v: %s total in %d requests (one shared scan per iteration)\n",
		len(rootList), elapsed.Round(1e6), report.Bytes(totalBytes), totalReqs)
	return nil
}

func cmdRun(alg string, args []string) error {
	fs := flag.NewFlagSet(alg, flag.ExitOnError)
	path := fs.String("graph", "", "graph base path (dir/name)")
	root := fs.Uint64("root", 0, "BFS root vertex")
	roots := fs.String("roots", "", "comma-separated BFS roots co-scheduled on one shared scan (bfs only)")
	iters := fs.Int("iters", 10, "PageRank iterations")
	topN := fs.Int("top", 5, "results to print")
	dumpMetrics := fs.Bool("metrics", false, "print final counters in Prometheus text format on stderr")
	opts := engineFlags(fs)
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("%s: -graph is required", alg)
	}
	var rootList []uint32
	if *roots != "" {
		if alg != "bfs" {
			return fmt.Errorf("%s: -roots only applies to bfs", alg)
		}
		for _, s := range strings.Split(*roots, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return fmt.Errorf("bfs: bad -roots entry %q: %w", s, err)
			}
			rootList = append(rootList, uint32(v))
		}
	}
	// Ctrl-C cancels the run instead of killing the process mid-I/O; the
	// engine's cancellation path releases its segments before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g, err := gstore.Open(*path)
	if err != nil {
		return err
	}
	defer g.Close()
	o := opts()
	if fs.Lookup("memory").Value.String() == "0" {
		// Default to the paper's semi-external regime: a quarter of the
		// graph's data size, an eighth of that per segment.
		o.MemoryBytes = g.DataBytes() / 4
		if o.MemoryBytes < 1<<20 {
			o.MemoryBytes = 1 << 20
		}
		if fs.Lookup("segment").Value.String() == "0" {
			o.SegmentSize = o.MemoryBytes / 8
		}
	}
	if len(rootList) > 1 {
		// Co-schedule one BFS per root through the shared sweep: the
		// scheduler admits all of them into one batch, so the tile stream
		// is fetched once per iteration and fanned out to every search.
		o.MaxConcurrentRuns = len(rootList)
	}
	e, err := core.NewEngine(g, o)
	if err != nil {
		return err
	}
	defer e.Close()
	// Attach the graph's write path so runs see base ∪ delta; on a graph
	// that was never mutated this loads nothing and writes nothing. A WAL
	// left by a crashed ingest is replayed here (read-side recovery).
	ds, err := delta.Open(g, *path, delta.Options{})
	if err != nil {
		return err
	}
	e.SetDeltaStore(ds)

	if len(rootList) > 0 {
		return runMultiBFS(ctx, g, e, rootList)
	}

	var st *core.Stats
	switch alg {
	case "bfs", "asyncbfs":
		var run interface {
			algo.Algorithm
			Depths() []int32
		}
		if alg == "bfs" {
			run = algo.NewBFS(uint32(*root))
		} else {
			run = algo.NewAsyncBFS(uint32(*root))
		}
		if st, err = e.Run(ctx, run); err != nil {
			return err
		}
		reached := 0
		maxDepth := int32(-1)
		for _, d := range run.Depths() {
			if d >= 0 {
				reached++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
		fmt.Printf("%s: reached %d of %d vertices, max depth %d, %.1f MTEPS\n",
			alg, reached, g.Meta.NumVertices, maxDepth, st.MTEPS(2*g.Meta.NumOriginal))
	case "pagerank":
		p := algo.NewPageRank(*iters)
		if st, err = e.Run(ctx, p); err != nil {
			return err
		}
		type vr struct {
			v uint32
			r float64
		}
		ranks := p.Ranks()
		top := make([]vr, 0, len(ranks))
		for v, r := range ranks {
			top = append(top, vr{uint32(v), r})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
		if len(top) > *topN {
			top = top[:*topN]
		}
		fmt.Printf("pagerank: %d iterations, top vertices:\n", st.Iterations)
		for _, t := range top {
			fmt.Printf("  v%-10d %.6g\n", t.v, t.r)
		}
	case "wcc", "scc":
		var run interface {
			algo.Algorithm
			Labels() []uint32
		}
		if alg == "wcc" {
			run = algo.NewWCC()
		} else {
			run = algo.NewSCC()
		}
		if st, err = e.Run(ctx, run); err != nil {
			return err
		}
		comps := map[uint32]int{}
		for _, l := range run.Labels() {
			comps[l]++
		}
		largest := 0
		for _, n := range comps {
			if n > largest {
				largest = n
			}
		}
		fmt.Printf("%s: %d components, largest has %d vertices\n", alg, len(comps), largest)
	}
	fmt.Printf("time %v  iterations %d  read %s in %d requests  cache hits %d/%d tiles\n",
		st.Elapsed.Round(1e6), st.Iterations, report.Bytes(st.BytesRead),
		st.IORequests, st.TilesFromCache, st.TilesProcessed)
	if o.Fault != nil || st.IOFailures > 0 {
		fmt.Printf("faults: %d injected errors, %d short reads, %d slowdowns, %d corruptions; %d failed reads recovered by %d retries\n",
			st.Faults.Errors, st.Faults.Shorts, st.Faults.Slows, st.Faults.Corruptions, st.IOFailures, st.Retries)
	}
	if st.TilesVerified > 0 {
		fmt.Printf("integrity: %d tiles verified, %d checksum mismatches recovered\n",
			st.TilesVerified, st.ChecksumMismatches)
	}
	if *dumpMetrics {
		// The same counters a live gstored exposes on /metrics, rendered
		// once at exit for scripted comparison.
		reg := metrics.NewRegistry()
		core.PublishStats(reg, g.Meta.Name, st)
		reg.Counter("gstore_engine_runs_total",
			"Engine runs by graph, algorithm and outcome.",
			metrics.L("graph", g.Meta.Name),
			metrics.L("algo", alg),
			metrics.L("status", "ok")).Inc()
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the gstore and gengraph binaries and drives the
// full command-line workflow: generate -> convert -> verify -> stats ->
// run every algorithm.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	gstoreBin := filepath.Join(dir, "gstore")
	gengraphBin := filepath.Join(dir, "gengraph")
	build := exec.Command("go", "build", "-o", gstoreBin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gstore: %v\n%s", err, out)
	}
	build = exec.Command("go", "build", "-o", gengraphBin, "../gengraph")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gengraph: %v\n%s", err, out)
	}

	run := func(bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	out := run(gengraphBin, "-kind", "kron", "-scale", "11", "-edgefactor", "8",
		"-seed", "5", "-out", "k.bin")
	if !strings.Contains(out, "wrote 16384 edges") {
		t.Fatalf("gengraph output: %s", out)
	}

	out = run(gstoreBin, "convert", "-in", "k.bin", "-vertices", "2048",
		"-dir", ".", "-name", "k", "-tilebits", "6", "-groupq", "4")
	if !strings.Contains(out, "converted k") {
		t.Fatalf("convert output: %s", out)
	}

	out = run(gstoreBin, "info", "-graph", "./k")
	if !strings.Contains(out, "vertices:    2048") {
		t.Fatalf("info output: %s", out)
	}

	out = run(gstoreBin, "verify", "-graph", "./k")
	if !strings.Contains(out, "OK") {
		t.Fatalf("verify output: %s", out)
	}

	out = run(gstoreBin, "stats", "-graph", "./k")
	if !strings.Contains(out, "total tuples") {
		t.Fatalf("stats output: %s", out)
	}

	for _, alg := range []string{"bfs", "asyncbfs"} {
		out = run(gstoreBin, alg, "-graph", "./k", "-root", "0")
		if !strings.Contains(out, "reached") {
			t.Fatalf("%s output: %s", alg, out)
		}
	}
	out = run(gstoreBin, "pagerank", "-graph", "./k", "-iters", "3")
	if !strings.Contains(out, "top vertices") {
		t.Fatalf("pagerank output: %s", out)
	}
	out = run(gstoreBin, "wcc", "-graph", "./k")
	if !strings.Contains(out, "components") {
		t.Fatalf("wcc output: %s", out)
	}

	// Mutate through the write path: star every vertex to 0, so WCC must
	// collapse to one component, then fsck must stay clean (WAL truncated,
	// delta snapshot checksummed).
	var muts strings.Builder
	muts.WriteString("# star to vertex 0\n")
	for v := 1; v < 2048; v++ {
		fmt.Fprintf(&muts, "0 %d\n", v)
	}
	muts.WriteString("del 0 1\nadd 0 1\n")
	if err := os.WriteFile(filepath.Join(dir, "muts.txt"), []byte(muts.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(gstoreBin, "ingest", "-graph", "./k", "-in", "muts.txt", "-batch", "500")
	if !strings.Contains(out, "ingested 2049 mutation(s)") {
		t.Fatalf("ingest output: %s", out)
	}
	out = run(gstoreBin, "wcc", "-graph", "./k")
	if !strings.Contains(out, "wcc: 1 components") {
		t.Fatalf("wcc after ingest: %s", out)
	}
	out = run(gstoreBin, "fsck", "-graph", "./k")
	if !strings.Contains(out, "OK") {
		t.Fatalf("fsck after ingest: %s", out)
	}

	// A directed graph for scc.
	run(gengraphBin, "-kind", "twitter", "-scale", "10", "-edgefactor", "4",
		"-seed", "6", "-out", "d.bin")
	run(gstoreBin, "convert", "-in", "d.bin", "-vertices", "1024", "-directed",
		"-dir", ".", "-name", "d", "-tilebits", "5", "-groupq", "4")
	out = run(gstoreBin, "scc", "-graph", "./d")
	if !strings.Contains(out, "components") {
		t.Fatalf("scc output: %s", out)
	}

	// fsck round-trip: a freshly converted graph passes; a flipped byte
	// in the tiles file fails with the corrupt section named.
	out = run(gstoreBin, "fsck", "-graph", "./k")
	if !strings.Contains(out, "OK") || !strings.Contains(out, "format v2") {
		t.Fatalf("fsck output: %s", out)
	}

	tilesFile := filepath.Join(dir, "k.tiles")
	data, err := os.ReadFile(tilesFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x80
	if err := os.WriteFile(tilesFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(gstoreBin, "fsck", "-graph", "./k")
	cmd.Dir = dir
	fsckOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("fsck passed a corrupted graph:\n%s", fsckOut)
	}
	if !strings.Contains(string(fsckOut), "tiles") || !strings.Contains(string(fsckOut), "crc32c") {
		t.Fatalf("fsck did not name the corrupt section:\n%s", fsckOut)
	}
	// A run over the corrupted graph must fail with the integrity error.
	cmd = exec.Command(gstoreBin, "bfs", "-graph", "./k", "-root", "0")
	cmd.Dir = dir
	bfsOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bfs succeeded on a corrupted graph:\n%s", bfsOut)
	}
	if !strings.Contains(string(bfsOut), "integrity") {
		t.Fatalf("bfs error does not mention integrity:\n%s", bfsOut)
	}
	// Restore and confirm fsck is clean again.
	data[len(data)/3] ^= 0x80
	if err := os.WriteFile(tilesFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	run(gstoreBin, "fsck", "-graph", "./k")

	// Unknown subcommand must fail.
	cmd = exec.Command(gstoreBin, "nonsense")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}
}

// TestMainUsage covers the usage path without spawning processes.
func TestMainUsage(t *testing.T) {
	// usage writes to stderr; just ensure it doesn't panic.
	old := os.Stderr
	defer func() { os.Stderr = old }()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Skip("no /dev/null")
	}
	defer devnull.Close()
	os.Stderr = devnull
	usage()
}

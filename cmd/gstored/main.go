// Command gstored serves converted graphs over HTTP: a long-running
// G-Store process answering BFS / PageRank / components queries with the
// slide-cache-rewind engine.
//
// Usage:
//
//	gstored -listen :8080 -graph social=data/twitter -graph web=data/crawl
//
// Endpoints: GET /healthz, GET /graphs, GET /graphs/{name},
// POST /graphs/{name}/{bfs|msbfs|pagerank|wcc|scc}.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/server"
)

type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var graphs graphFlags
	listen := flag.String("listen", ":8080", "listen address")
	mem := flag.Int64("memory", 64<<20, "per-graph streaming+caching memory in bytes")
	seg := flag.Int64("segment", 0, "segment size in bytes (default memory/8)")
	threads := flag.Int("threads", 0, "worker threads per graph")
	disks := flag.Int("disks", 8, "simulated SSD count")
	bw := flag.Float64("bandwidth", 0, "per-disk bandwidth in bytes/s (0 = unthrottled)")
	flag.Var(&graphs, "graph", "name=basePath of a converted graph (repeatable)")
	flag.Parse()

	if len(graphs) == 0 {
		log.Fatal("gstored: at least one -graph name=path is required")
	}

	srv := server.New()
	defer srv.Close()
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("gstored: bad -graph %q, want name=path", spec)
		}
		opts := core.DefaultOptions()
		opts.MemoryBytes = *mem
		if *seg > 0 {
			opts.SegmentSize = *seg
		} else {
			opts.SegmentSize = opts.MemoryBytes / 8
		}
		if *threads > 0 {
			opts.Threads = *threads
		}
		opts.Disks = *disks
		opts.Bandwidth = *bw
		if err := srv.AddGraph(name, path, opts); err != nil {
			log.Fatalf("gstored: loading %s: %v", spec, err)
		}
		fmt.Printf("loaded %s from %s\n", name, path)
	}

	fmt.Printf("gstored listening on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

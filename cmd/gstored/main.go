// Command gstored serves converted graphs over HTTP: a long-running
// G-Store process answering BFS / PageRank / components queries with the
// slide-cache-rewind engine.
//
// Usage:
//
//	gstored -listen :8080 -graph social=data/twitter -graph web=data/crawl
//
// Endpoints: GET /healthz (liveness), GET /readyz (readiness: 503 with
// status no_graphs|wal_failed|shutting_down until graphs are open, write
// paths healthy, and schedulers accepting — load balancers should drain
// on this, not /healthz), GET /metrics (Prometheus text), GET /graphs,
// GET /graphs/{name}, POST /graphs/{name}/{bfs|msbfs|pagerank|ppr|wcc|scc},
// GET /graphs/{name}/{bfs|ppr}?root=N (the personalized fast path:
// result-cached per -qcache-bytes/-qcache-ttl, and concurrent BFS roots
// coalesce into one multi-source run within -batch-window),
// POST /graphs/{name}/edges (batch edge mutations through the WAL-backed
// write path; disabled by -readonly), and (unless -pprof=false) the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// A failed WAL fsync degrades that graph to read-only rather than
// risking a lost ack: /edges answers 503 status="wal_failed" (sticky),
// the gstore_wal_failed gauge rises, /readyz fails — and queries keep
// serving. Handler panics are contained per request (500
// status="panic", counted in gstore_http_panics_total, stack logged).
//
// Unless -readonly is set, opening each graph recovers its write path:
// the newest delta snapshot is loaded and any WAL records a previous
// process acked but had not yet flushed are replayed, so no acknowledged
// mutation is lost to a crash.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: request contexts
// are canceled (which cancels in-flight engine runs), the listener
// closes, and in-flight handlers get -drain-timeout to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/server"
	"github.com/gwu-systems/gstore/internal/storage"
)

type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var graphs graphFlags
	listen := flag.String("listen", ":8080", "listen address")
	mem := flag.Int64("memory", 64<<20, "per-graph streaming+caching memory in bytes")
	seg := flag.Int64("segment", 0, "segment size in bytes (default memory/8)")
	threads := flag.Int("threads", 0, "worker threads per graph")
	chunk := flag.Int64("chunk", 0, "work-item chunk size in bytes (0 = 256KiB default, -1 = whole tiles)")
	maxRuns := flag.Int("maxruns", 8, "concurrent algorithm runs co-scheduled per graph (1-64)")
	queueLen := flag.Int("queue", 64, "runs queued per graph beyond -maxruns before 429s")
	qcacheBytes := flag.Int64("qcache-bytes", 64<<20, "personalized-query result cache budget in bytes (0 disables)")
	qcacheTTL := flag.Duration("qcache-ttl", time.Minute, "result cache entry TTL")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "coalescing window fusing concurrent GET bfs roots into one msbfs run (0 disables)")
	tenantMax := flag.Int("tenant-maxruns", 0, "max concurrent runs per ?tenant= label (0 = unlimited)")
	disks := flag.Int("disks", 8, "simulated SSD count")
	bw := flag.Float64("bandwidth", 0, "per-disk bandwidth in bytes/s (0 = unthrottled; -backend sim: per disk, file: aggregate)")
	backend := flag.String("backend", "sim", "storage backend: sim (simulated striped array) or file (real async reads)")
	direct := flag.Bool("direct", false, "with -backend file, bypass the page cache (O_DIRECT; falls back to buffered where unsupported)")
	ioworkers := flag.Int("ioworkers", 0, "with -backend file, submitter goroutine count (0 = default 4)")
	readahead := flag.Int64("readahead", 0, "with -backend file, next-iteration readahead budget in bytes (0 = default 8MiB, negative disables)")
	pprofOn := flag.Bool("pprof", true, "serve net/http/pprof under /debug/pprof/")
	readOnly := flag.Bool("readonly", false, "serve without the write path: no WAL recovery, POST /edges refused")
	faultRate := flag.Float64("faultrate", 0, "injected read-error probability in [0,1]")
	faultShort := flag.Float64("faultshort", 0, "injected short-read probability in [0,1]")
	faultCorrupt := flag.Float64("faultcorrupt", 0, "injected silent-corruption probability in [0,1]")
	faultSeed := flag.Int64("faultseed", 1, "fault injection seed")
	readHeaderTO := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
	readTO := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	idleTO := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	writeTO := flag.Duration("write-timeout", 0, "http.Server WriteTimeout (0 = none; long runs stream no body until done)")
	drainTO := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Var(&graphs, "graph", "name=basePath of a converted graph (repeatable)")
	flag.Parse()

	if len(graphs) == 0 {
		log.Fatal("gstored: at least one -graph name=path is required")
	}

	// ctx cancels on SIGINT/SIGTERM. It is also every request's base
	// context, so shutdown cancels in-flight engine runs promptly instead
	// of waiting a full algorithm out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New()
	srv.ReadOnly = *readOnly
	srv.QCacheBytes = *qcacheBytes
	srv.QCacheTTL = *qcacheTTL
	srv.TenantMaxRuns = *tenantMax
	defer srv.Close()
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("gstored: bad -graph %q, want name=path", spec)
		}
		opts := core.DefaultOptions()
		opts.MemoryBytes = *mem
		if *seg > 0 {
			opts.SegmentSize = *seg
		} else {
			opts.SegmentSize = opts.MemoryBytes / 8
		}
		if *threads > 0 {
			opts.Threads = *threads
		}
		opts.ChunkBytes = *chunk
		opts.MaxConcurrentRuns = *maxRuns
		opts.MaxQueuedRuns = *queueLen
		opts.BatchWindow = *batchWindow
		opts.Disks = *disks
		opts.Bandwidth = *bw
		opts.Backend = *backend
		opts.DirectIO = *direct
		opts.IOWorkers = *ioworkers
		opts.ReadaheadBytes = *readahead
		if *faultRate > 0 || *faultShort > 0 || *faultCorrupt > 0 {
			opts.Fault = &storage.FaultConfig{
				Seed:        *faultSeed,
				ErrorRate:   *faultRate,
				ShortRate:   *faultShort,
				CorruptRate: *faultCorrupt,
			}
		}
		if err := srv.AddGraph(name, path, opts); err != nil {
			log.Fatalf("gstored: loading %s: %v", spec, err)
		}
		fmt.Printf("loaded %s from %s\n", name, path)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
		WriteTimeout:      *writeTO,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("gstored listening on %s\n", *listen)

	select {
	case err := <-errCh:
		log.Fatalf("gstored: %v", err)
	case <-ctx.Done():
		fmt.Println("gstored: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("gstored: drain incomplete: %v", err)
			_ = hs.Close()
		}
	}
}

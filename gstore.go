// Package gstore is a Go implementation of G-Store, the high-performance
// semi-external graph store for trillion-edge processing of Kumar and
// Huang (SC 2016).
//
// G-Store stores a graph as 2D tiles with a smallest-number-of-bits tuple
// encoding (4 bytes per edge), keeps only the upper triangle of undirected
// graphs, groups tiles into cache-sized physical groups on disk, streams
// them with batched asynchronous I/O from a (simulated) SSD array, and
// pipelines I/O with computation under the slide-cache-rewind scheduler
// with proactive, algorithm-aware caching.
//
// Typical use:
//
//	edges, _ := gstore.GenerateKronecker(20, 16, 42)
//	g, _ := gstore.Convert(edges, dir, "kron-20-16", gstore.DefaultConvertOptions())
//	defer g.Close()
//	eng, _ := gstore.NewEngine(g, gstore.DefaultEngineOptions())
//	defer eng.Close()
//	depths, stats, _ := eng.BFS(0)
//
// The subpackages under internal implement the pieces: the tile format
// (internal/tile), the 2D layout (internal/grid), the SCR engine
// (internal/core), the algorithms (internal/algo), the simulated SSD array
// (internal/storage), and re-implementations of the paper's baselines
// (internal/xstream, internal/flashgraph).
package gstore

import (
	"context"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// Core data types, re-exported from the substrate packages.
type (
	// Edge is a single (src, dst) tuple.
	Edge = graph.Edge
	// EdgeList is an in-memory graph: a vertex count plus edges.
	EdgeList = graph.EdgeList
	// Graph is an opened on-disk tiled graph.
	Graph = tile.Graph
	// ConvertOptions controls edge-list-to-tile conversion.
	ConvertOptions = tile.ConvertOptions
	// EngineOptions configures the SCR engine.
	EngineOptions = core.Options
	// Stats reports an engine run.
	Stats = core.Stats
	// CachePolicy selects the caching strategy.
	CachePolicy = core.CachePolicy
	// GenConfig describes a synthetic graph.
	GenConfig = gen.Config
)

// Cache policies.
const (
	// CacheProactive is the paper's SCR policy: algorithm-aware caching
	// plus the rewind.
	CacheProactive = core.CacheProactive
	// CacheLRU keeps recently streamed tiles.
	CacheLRU = core.CacheLRU
	// CacheNone streams without caching (the base policy).
	CacheNone = core.CacheNone
)

// DefaultConvertOptions returns the paper's conversion configuration
// (tile width 2^16, 256-tile physical groups, symmetry and SNB on).
func DefaultConvertOptions() ConvertOptions { return tile.DefaultConvertOptions() }

// DefaultEngineOptions returns an engine configuration mirroring the
// paper's setup at reproduction scale.
func DefaultEngineOptions() EngineOptions { return core.DefaultOptions() }

// Convert writes edges in the tile format under dir with the given base
// name and returns the opened graph.
func Convert(edges *EdgeList, dir, name string, opts ConvertOptions) (*Graph, error) {
	return tile.Convert(edges, dir, name, opts)
}

// Open opens a previously converted graph from its base path
// (dir/name, without extension).
func Open(basePath string) (*Graph, error) { return tile.Open(basePath) }

// Verify checks a converted graph's on-disk integrity: tuple ranges,
// start-edge consistency and degree-file agreement.
func Verify(g *Graph) error { return tile.Verify(g) }

// FsckReport is the result of an offline integrity check.
type FsckReport = tile.FsckReport

// FsckFinding is one problem an offline integrity check discovered.
type FsckFinding = tile.FsckFinding

// Fsck validates the graph at basePath offline — header checksum,
// start-array monotonicity, per-tile CRC32C checksums, tuple ranges and
// degree agreement — reporting every problem found rather than stopping
// at the first. It is the library form of `gstore fsck`.
func Fsck(basePath string) *FsckReport { return tile.Fsck(basePath) }

// IntegrityError is returned by engine runs that read a tile whose data
// no longer matches its recorded checksum (after one re-read); it names
// the exact corrupt tile.
type IntegrityError = core.IntegrityError

// GraphStats summarizes tile and physical-group occupancy.
type GraphStats = tile.Stats

// CollectStats computes occupancy statistics from the start-edge index.
func CollectStats(g *Graph) GraphStats { return tile.CollectStats(g) }

// ConvertExternalOptions configures the out-of-core converter.
type ConvertExternalOptions = tile.ExternalConvertOptions

// ConvertExternal converts a binary edge-list file (8 bytes per edge)
// without materializing it in memory, for inputs larger than RAM.
func ConvertExternal(edgePath string, numVertices uint32, directed bool,
	dir, name string, opts ConvertExternalOptions) (*Graph, error) {
	return tile.ConvertExternal(edgePath, numVertices, directed, dir, name, opts)
}

// GenerateKronecker produces a Graph500-style Kronecker graph with 2^scale
// vertices and edgeFactor*2^scale undirected edges.
func GenerateKronecker(scale uint, edgeFactor int, seed uint64) (*EdgeList, error) {
	return gen.Generate(gen.Graph500Config(scale, edgeFactor, seed))
}

// GenerateUniform produces a uniform random graph (the paper's
// Random-27-32 family).
func GenerateUniform(scale uint, edgeFactor int, seed uint64) (*EdgeList, error) {
	return gen.Generate(gen.UniformConfig(scale, edgeFactor, seed))
}

// GenerateTwitterLike produces a directed RMAT graph whose skew mimics the
// Twitter follower network used in the paper.
func GenerateTwitterLike(scale uint, edgeFactor int, seed uint64) (*EdgeList, error) {
	return gen.Generate(gen.TwitterLikeConfig(scale, edgeFactor, seed))
}

// Generate produces a graph from an arbitrary configuration.
func Generate(cfg GenConfig) (*EdgeList, error) { return gen.Generate(cfg) }

// Engine runs graph algorithms over an opened graph with the
// slide-cache-rewind scheduler.
type Engine struct {
	e *core.Engine
}

// NewEngine creates an engine over g.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) {
	e, err := core.NewEngine(g, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// Close releases the engine's workers and storage.
func (e *Engine) Close() { e.e.Close() }

// SetDeltaStore attaches a write path opened with OpenDelta; subsequent
// runs read base ∪ delta (inserted edges visible, deleted edges masked)
// with bit-identical results to a fresh conversion of the mutated graph.
func (e *Engine) SetDeltaStore(ds *DeltaStore) { e.e.SetDeltaStore(ds) }

// BFS runs breadth-first search from root and returns per-vertex depths
// (-1 = unreached) plus run statistics.
func (e *Engine) BFS(root uint32) ([]int32, *Stats, error) {
	b := algo.NewBFS(root)
	st, err := e.e.Run(context.Background(), b)
	if err != nil {
		return nil, nil, err
	}
	return b.Depths(), st, nil
}

// PageRank runs the given number of PageRank iterations and returns the
// rank vector plus run statistics.
func (e *Engine) PageRank(iterations int) ([]float64, *Stats, error) {
	p := algo.NewPageRank(iterations)
	st, err := e.e.Run(context.Background(), p)
	if err != nil {
		return nil, nil, err
	}
	return p.Ranks(), st, nil
}

// PageRankUntil runs PageRank until the L1 delta falls below epsilon (or
// maxIterations is hit).
func (e *Engine) PageRankUntil(epsilon float64, maxIterations int) ([]float64, *Stats, error) {
	p := algo.NewPageRank(maxIterations)
	p.Epsilon = epsilon
	st, err := e.e.Run(context.Background(), p)
	if err != nil {
		return nil, nil, err
	}
	return p.Ranks(), st, nil
}

// WCC computes weakly connected components; every vertex receives the
// smallest vertex ID of its component.
func (e *Engine) WCC() ([]uint32, *Stats, error) {
	w := algo.NewWCC()
	st, err := e.e.Run(context.Background(), w)
	if err != nil {
		return nil, nil, err
	}
	return w.Labels(), st, nil
}

// AsyncBFS runs the asynchronous (label-correcting) BFS variant: the same
// depths as BFS in far fewer passes over the graph, at more work per pass
// — the trade §II-B describes for semi-external engines.
func (e *Engine) AsyncBFS(root uint32) ([]int32, *Stats, error) {
	b := algo.NewAsyncBFS(root)
	st, err := e.e.Run(context.Background(), b)
	if err != nil {
		return nil, nil, err
	}
	return b.Depths(), st, nil
}

// MSBFS runs up to 64 breadth-first searches in shared passes over the
// graph (the concurrent-BFS idea of the paper's [22]): one tile stream
// serves every source. It returns one depth slice per root.
func (e *Engine) MSBFS(roots []uint32) ([][]int32, *Stats, error) {
	m := algo.NewMSBFS(roots)
	st, err := e.e.Run(context.Background(), m)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]int32, len(roots))
	for i := range roots {
		out[i] = m.Depth(i)
	}
	return out, st, nil
}

// PPR runs personalized PageRank: the restart-vector variant where the
// teleport distribution is a point mass at root, so rank concentrates in
// the query vertex's neighborhood. Returns the rank vector (a
// probability distribution summing to 1) plus run statistics.
func (e *Engine) PPR(root uint32, iterations int) ([]float64, *Stats, error) {
	p := algo.NewPPR(root, iterations)
	st, err := e.e.Run(context.Background(), p)
	if err != nil {
		return nil, nil, err
	}
	return p.Ranks(), st, nil
}

// SCC computes strongly connected components of a directed graph; every
// vertex receives the smallest vertex ID of its SCC. This is the
// algorithm §IV-A highlights as requiring both edge directions, which
// tile tuples provide from a single stored direction.
func (e *Engine) SCC() ([]uint32, *Stats, error) {
	s := algo.NewSCC()
	st, err := e.e.Run(context.Background(), s)
	if err != nil {
		return nil, nil, err
	}
	return s.Labels(), st, nil
}

// HDDTier configures the tiered SSD+HDD store of the paper's future work;
// assign one to EngineOptions.HDD.
type HDDTier = core.HDDTier

// EdgeOp is one edge mutation: an insert (Del false) or a delete.
type EdgeOp = delta.Op

// DeltaStore is a graph's mutable write path: every batch of edge
// mutations is appended to a segmented, checksummed write-ahead log
// (fsynced before Apply returns) and published to an in-memory delta
// layer that engines merge with the base tiles at read time. Flush
// persists the delta layer as a checksummed snapshot and truncates the
// WAL; Open recovers snapshot + WAL after a crash.
type DeltaStore = delta.Store

// DeltaOptions configures a graph's write path.
type DeltaOptions = delta.Options

// DeltaStats summarizes a write path: sequence numbers, WAL activity,
// delta-layer shape and crash-recovery counts.
type DeltaStats = delta.Stats

// OpenDelta opens (and, after a crash, recovers) the mutable write path
// of g. Attach it to an engine to make mutations visible to runs.
func OpenDelta(g *Graph, opts DeltaOptions) (*DeltaStore, error) {
	return delta.Open(g, g.BasePath(), opts)
}

// DeltaFsck validates the write path at basePath offline — WAL segment
// framing and CRCs, delta snapshot checksums and structure. Fatal
// problems come back as findings; informational conditions (a torn WAL
// tail that replay will discard) come back as notes.
func DeltaFsck(basePath string) (findings []FsckFinding, notes []string) {
	return delta.Fsck(basePath)
}

// MemGraph is a fully-loaded in-memory graph (no storage pipeline).
type MemGraph struct {
	m *core.MemGraph
}

// LoadInMemory reads every tile of g into memory for in-memory execution.
func LoadInMemory(g *Graph) (*MemGraph, error) {
	m, err := core.LoadInMemory(g)
	if err != nil {
		return nil, err
	}
	return &MemGraph{m: m}, nil
}

// BFS runs breadth-first search over the in-memory tiles.
func (m *MemGraph) BFS(root uint32, threads int) ([]int32, *Stats, error) {
	b := algo.NewBFS(root)
	st, err := m.m.Run(b, threads, 0)
	if err != nil {
		return nil, nil, err
	}
	return b.Depths(), st, nil
}

// PageRank runs PageRank over the in-memory tiles.
func (m *MemGraph) PageRank(iterations, threads int) ([]float64, *Stats, error) {
	p := algo.NewPageRank(iterations)
	st, err := m.m.Run(p, threads, iterations)
	if err != nil {
		return nil, nil, err
	}
	return p.Ranks(), st, nil
}

// WCC runs connected components over the in-memory tiles.
func (m *MemGraph) WCC(threads int) ([]uint32, *Stats, error) {
	w := algo.NewWCC()
	st, err := m.m.Run(w, threads, 0)
	if err != nil {
		return nil, nil, err
	}
	return w.Labels(), st, nil
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (one BenchmarkFig*/BenchmarkTable* per artifact, driving the
// internal/exp runners at benchmark scale), plus micro-benchmarks of the
// format and engine hot paths.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// For the full-scale experiment tables use cmd/gsbench instead.
package gstore_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/exp"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// benchConfig builds a small-scale experiment config with cached graphs
// shared across benchmarks of one `go test` process.
func benchConfig(b *testing.B) *exp.Config {
	b.Helper()
	c := &exp.Config{
		WorkDir:    benchWorkDir(b),
		Scale:      12,
		EdgeFactor: 8,
		Seed:       1,
		Out:        io.Discard,
		Quick:      true,
	}
	c.Defaults()
	return c
}

var (
	benchDirOnce sync.Once
	benchDir     string
)

func benchWorkDir(b *testing.B) string {
	benchDirOnce.Do(func() {
		d, err := os.MkdirTemp("", "gstore-bench")
		if err != nil {
			b.Fatal(err)
		}
		benchDir = d
	})
	return benchDir
}

func runExp(b *testing.B, id string) {
	b.Helper()
	r, ok := exp.Find(id)
	if !ok {
		b.Fatalf("experiment %s not found", id)
	}
	c := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig02a(b *testing.B) { runExp(b, "fig2a") }
func BenchmarkFig02b(b *testing.B) { runExp(b, "fig2b") }
func BenchmarkFig02c(b *testing.B) { runExp(b, "fig2c") }
func BenchmarkTable1(b *testing.B) { runExp(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExp(b, "table2") }
func BenchmarkFig05(b *testing.B)  { runExp(b, "fig5") }
func BenchmarkFig07(b *testing.B)  { runExp(b, "fig7") }
func BenchmarkTable3(b *testing.B) { runExp(b, "table3") }
func BenchmarkFig09(b *testing.B)  { runExp(b, "fig9") }
func BenchmarkXStreamComparison(b *testing.B) {
	runExp(b, "xstream")
}
func BenchmarkFig10(b *testing.B) { runExp(b, "fig10") }
func BenchmarkFig11(b *testing.B) { runExp(b, "fig11") }
func BenchmarkFig12(b *testing.B) { runExp(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExp(b, "fig13") }
func BenchmarkFig14(b *testing.B) { runExp(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExp(b, "fig15") }
func BenchmarkAblationAIO(b *testing.B) {
	runExp(b, "aio")
}
func BenchmarkAblationSelective(b *testing.B) {
	runExp(b, "selective")
}
func BenchmarkAblationPolicy(b *testing.B) {
	runExp(b, "policy")
}
func BenchmarkExtTiered(b *testing.B)   { runExp(b, "tiered") }
func BenchmarkExtAsyncBFS(b *testing.B) { runExp(b, "asyncbfs") }
func BenchmarkExtSCC(b *testing.B)      { runExp(b, "scc") }
func BenchmarkExtMSBFS(b *testing.B)    { runExp(b, "msbfs") }

// --- micro-benchmarks of the hot paths ---

func benchGraph(b *testing.B) *tile.Graph {
	b.Helper()
	base := tile.BasePath(benchWorkDir(b), "micro")
	if g, err := tile.Open(base); err == nil {
		return g
	}
	el, err := gen.Generate(gen.Graph500Config(14, 16, 7))
	if err != nil {
		b.Fatal(err)
	}
	g, err := tile.Convert(el, benchWorkDir(b), "micro", tile.ConvertOptions{
		TileBits: 8, GroupQ: 8, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSNBEncode measures the tuple codec (§IV-B).
func BenchmarkSNBEncode(b *testing.B) {
	var buf [4]byte
	b.SetBytes(tile.SNBTupleBytes)
	for i := 0; i < b.N; i++ {
		tile.PutSNB(buf[:], uint16(i), uint16(i>>4))
	}
}

// BenchmarkSNBDecode measures tuple decoding throughput.
func BenchmarkSNBDecode(b *testing.B) {
	data := make([]byte, 1<<16)
	for i := 0; i < len(data); i += 4 {
		tile.PutSNB(data[i:], uint16(i), uint16(i+1))
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sum := uint32(0)
		_ = tile.DecodeTuples(data, tile.CodecSNB, 0, 0, func(s, d uint32) { sum += s ^ d })
	}
}

// BenchmarkConvert measures the two-pass edge-list-to-tile conversion
// (Table I's G-Store column).
func BenchmarkConvert(b *testing.B) {
	el, err := gen.Generate(gen.Graph500Config(13, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.SetBytes(int64(len(el.Edges)) * graph.EdgeTupleBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := tile.Convert(el, dir, "c", tile.ConvertOptions{
			TileBits: 7, GroupQ: 8, Symmetry: true, SNB: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}

// BenchmarkEnginePageRankIteration measures one disk-backed PageRank
// iteration through the full SCR pipeline.
func BenchmarkEnginePageRankIteration(b *testing.B) {
	g := benchGraph(b)
	defer g.Close()
	opts := core.DefaultOptions()
	opts.MemoryBytes = g.DataBytes() / 2
	opts.SegmentSize = opts.MemoryBytes / 8
	e, err := core.NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.SetBytes(g.DataBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), algo.NewPageRank(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBFS measures a full BFS run (the Table III workload).
func BenchmarkEngineBFS(b *testing.B) {
	g := benchGraph(b)
	defer g.Close()
	opts := core.DefaultOptions()
	opts.MemoryBytes = g.DataBytes() / 2
	opts.SegmentSize = opts.MemoryBytes / 8
	e, err := core.NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), algo.NewBFS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// chunkBenchGraph builds (and caches on disk) the scale-20 RMAT workload
// used by BenchmarkProcessChunked. GSTORE_BENCH_SCALE overrides the scale
// for quick local runs on small machines.
func chunkBenchGraph(b *testing.B) *tile.Graph {
	b.Helper()
	scale := uint(20)
	if s := os.Getenv("GSTORE_BENCH_SCALE"); s != "" {
		v, err := strconv.ParseUint(s, 10, 8)
		if err != nil || v < 8 {
			b.Fatalf("bad GSTORE_BENCH_SCALE=%q", s)
		}
		scale = uint(v)
	}
	name := fmt.Sprintf("chunkbench-%d", scale)
	base := tile.BasePath(benchWorkDir(b), name)
	if g, err := tile.Open(base); err == nil {
		return g
	}
	el, err := gen.Generate(gen.Graph500Config(scale, 16, 9))
	if err != nil {
		b.Fatal(err)
	}
	// P = 16 tiles per side: a few large, skewed tiles, the regime where
	// per-tile dispatch starves workers and chunking pays.
	g, err := tile.Convert(el, benchWorkDir(b), name, tile.ConvertOptions{
		TileBits: scale - 4, GroupQ: 8, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkProcessChunked compares per-tile dispatch against chunked
// dispatch on a fully cached scale-20 RMAT graph at 8 workers, so the
// measurement is compute, not I/O. Each op is one PageRank iteration.
// Reported extras: compute_s/op (the busiest worker's kernel time, i.e.
// the critical path) and the max/mean imbalance of the final run.
func BenchmarkProcessChunked(b *testing.B) {
	g := chunkBenchGraph(b)
	defer g.Close()
	for _, bc := range []struct {
		name  string
		chunk int64
	}{
		{"per-tile", core.ChunkDisabled},
		{"chunked", 0}, // DefaultChunkBytes
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Threads = 8
			opts.ChunkBytes = bc.chunk
			// Everything fits in the cache pool after the warm-up run.
			opts.MemoryBytes = g.DataBytes()*2 + (8 << 20)
			opts.SegmentSize = opts.MemoryBytes / 8
			e, err := core.NewEngine(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := e.Run(context.Background(), algo.NewPageRank(1)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(g.DataBytes())
			b.ResetTimer()
			var critical time.Duration
			var imbalance float64
			for i := 0; i < b.N; i++ {
				st, err := e.Run(context.Background(), algo.NewPageRank(1))
				if err != nil {
					b.Fatal(err)
				}
				var busiest time.Duration
				for _, d := range st.WorkerBusy {
					if d > busiest {
						busiest = d
					}
				}
				critical += busiest
				imbalance = st.Imbalance
			}
			b.ReportMetric(critical.Seconds()/float64(b.N), "compute_s/op")
			b.ReportMetric(imbalance, "imbalance")
		})
	}
}

// BenchmarkRMATGeneration measures the Kronecker edge generator.
func BenchmarkRMATGeneration(b *testing.B) {
	cfg := gen.Graph500Config(12, 8, 5)
	b.SetBytes(cfg.NumEdges() * 8)
	for i := 0; i < b.N; i++ {
		n := 0
		err := gen.Stream(cfg, func(graph.Edge) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrayRead measures the simulated SSD array's unthrottled
// batched read path.
func BenchmarkArrayRead(b *testing.B) {
	g := benchGraph(b)
	defer g.Close()
	arr, err := storage.NewArray(g.TilesFile(), storage.Options{NumDisks: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer arr.Close()
	buf := make([]byte, 1<<20)
	if int64(len(buf)) > g.DataBytes() {
		buf = buf[:g.DataBytes()]
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := arr.ReadSync(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

module github.com/gwu-systems/gstore

go 1.22

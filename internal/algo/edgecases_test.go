package algo

import (
	"testing"

	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// Degenerate graphs must work through every kernel: a single vertex, a
// single self loop, a single edge, and a star.

func tinyOpts() tile.ConvertOptions {
	return tile.ConvertOptions{TileBits: 1, GroupQ: 1, Symmetry: true, SNB: true, Degrees: true}
}

func runAll(t *testing.T, el *graph.EdgeList, opts tile.ConvertOptions) (*BFS, *PageRank, *WCC) {
	t.Helper()
	mg := load(t, el, opts)
	b := NewBFS(0)
	mg.run(t, b, false, 100)
	p := NewPageRank(5)
	mg.run(t, p, false, 5)
	w := NewWCC()
	mg.run(t, w, false, 100)
	return b, p, w
}

func TestSingleVertexNoEdges(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 1}
	b, p, w := runAll(t, el, tinyOpts())
	if b.Depths()[0] != 0 {
		t.Fatalf("depth = %v", b.Depths())
	}
	if r := p.Ranks()[0]; r < 0.999 || r > 1.001 {
		t.Fatalf("rank = %v", r)
	}
	if w.Labels()[0] != 0 {
		t.Fatalf("label = %v", w.Labels())
	}
}

func TestSelfLoopOnly(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 0}}}
	b, p, w := runAll(t, el, tinyOpts())
	if b.Depths()[0] != 0 || b.Depths()[1] != -1 {
		t.Fatalf("depths = %v", b.Depths())
	}
	sum := p.Ranks()[0] + p.Ranks()[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if w.Labels()[0] != 0 || w.Labels()[1] != 1 {
		t.Fatalf("labels = %v", w.Labels())
	}
}

func TestSingleEdge(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	b, _, w := runAll(t, el, tinyOpts())
	if b.Depths()[1] != 1 {
		t.Fatalf("depths = %v", b.Depths())
	}
	if w.Labels()[1] != 0 {
		t.Fatalf("labels = %v", w.Labels())
	}
}

func TestStarGraph(t *testing.T) {
	// Hub 0 with 31 leaves spread across tiles.
	el := &graph.EdgeList{NumVertices: 32}
	for v := uint32(1); v < 32; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: 0, Dst: v})
	}
	opts := tile.ConvertOptions{TileBits: 3, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true}
	b, p, w := runAll(t, el, opts)
	for v := 1; v < 32; v++ {
		if b.Depths()[v] != 1 {
			t.Fatalf("depth[%d] = %d", v, b.Depths()[v])
		}
		if w.Labels()[v] != 0 {
			t.Fatalf("label[%d] = %d", v, w.Labels()[v])
		}
	}
	// The hub must dominate PageRank.
	for v := 1; v < 32; v++ {
		if p.Ranks()[0] <= p.Ranks()[v] {
			t.Fatalf("hub rank %v <= leaf rank %v", p.Ranks()[0], p.Ranks()[v])
		}
	}
}

func TestDisconnectedRootComponent(t *testing.T) {
	// Root in a small component; the rest of the graph unreachable.
	el := &graph.EdgeList{NumVertices: 64, Edges: []graph.Edge{
		{Src: 0, Dst: 1},
		{Src: 40, Dst: 41}, {Src: 41, Dst: 42},
	}}
	opts := tile.ConvertOptions{TileBits: 3, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true}
	mg := load(t, el, opts)
	b := NewBFS(0)
	iters := mg.run(t, b, false, 100)
	// Selective fetching should converge quickly: the frontier dies after
	// one level.
	if iters > 3 {
		t.Fatalf("took %d iterations for a 2-vertex component", iters)
	}
	if b.Depths()[40] != -1 || b.Depths()[1] != 1 {
		t.Fatalf("depths = %v", b.Depths()[:4])
	}
}

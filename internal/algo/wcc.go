package algo

import (
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/tile"
)

// WCC computes weakly connected components by min-label propagation
// (Algorithm 2 in the paper, after Shiloach–Vishkin-style parallel CC).
// Because a tile tuple exposes both endpoints, one stored direction
// suffices: the kernel lowers both endpoints' labels toward the minimum,
// which is exactly why the paper needs neither in- and out-edges both nor
// a broadcast step ("No need to broadcast", Algorithm 2 lines 7–10).
//
// Per-tile-row change bitmaps drive selective fetching and proactive
// caching: a tile is needed again only while labels in its row or column
// range are still moving.
type WCC struct {
	ctx     *Context
	labels  []uint32
	changed atomic.Int64
	curRow  *bitset
	nextRow *bitset
	iter0   bool
}

// NewWCC returns a connected-components kernel.
func NewWCC() *WCC { return &WCC{} }

// Name implements Algorithm.
func (w *WCC) Name() string { return "wcc" }

// Init implements Algorithm.
func (w *WCC) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	w.ctx = ctx
	w.labels = make([]uint32, ctx.NumVertices)
	for i := range w.labels {
		w.labels[i] = uint32(i)
	}
	w.curRow = newBitset(ctx.Layout.P)
	w.nextRow = newBitset(ctx.Layout.P)
	w.iter0 = true
	return nil
}

// Labels returns the component labels after the run; every vertex carries
// the minimum vertex ID of its weakly connected component.
func (w *WCC) Labels() []uint32 { return w.labels }

// BeforeIteration implements Algorithm.
func (w *WCC) BeforeIteration(iter int) {
	w.changed.Store(0)
	w.iter0 = iter == 0
}

// ProcessTile implements Algorithm.
func (w *WCC) ProcessTile(row, col uint32, data []byte) {
	if w.ctx.Codec == tile.CodecV3 {
		rb, _ := w.ctx.Layout.VertexRange(row)
		cb, _ := w.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			w.hook(s, d, row, col)
		})
		return
	}
	if w.ctx.SNB {
		rb, _ := w.ctx.Layout.VertexRange(row)
		cb, _ := w.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			w.hook(rb+uint32(so), cb+uint32(do), row, col)
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		w.hook(s, d, row, col)
	}
}

// ProcessTileChunk implements ChunkedAlgorithm: the label lowering stays
// atomic (chunks of one tile race on shared vertices), but the changed
// counter and the two change-map bits — constant for the whole chunk —
// are accumulated on the stack and flushed once per chunk.
func (w *WCC) ProcessTileChunk(_ int, row, col uint32, data []byte) {
	var lowCol, lowRow int64
	visit := func(s, d uint32) {
		ls := atomic.LoadUint32(&w.labels[s])
		ld := atomic.LoadUint32(&w.labels[d])
		switch {
		case ls < ld:
			if atomicMinUint32(&w.labels[d], ls) {
				lowCol++
			}
		case ld < ls:
			if atomicMinUint32(&w.labels[s], ld) {
				lowRow++
			}
		}
	}
	if w.ctx.Codec == tile.CodecV3 {
		rb, _ := w.ctx.Layout.VertexRange(row)
		cb, _ := w.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, visit)
	} else if w.ctx.SNB {
		rb, _ := w.ctx.Layout.VertexRange(row)
		cb, _ := w.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			visit(rb+uint32(so), cb+uint32(do))
		}
	} else {
		for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
			s, d := tile.GetRaw(data[i:])
			visit(s, d)
		}
	}
	if lowCol > 0 {
		w.nextRow.Set(col)
	}
	if lowRow > 0 {
		w.nextRow.Set(row)
	}
	if lowCol+lowRow > 0 {
		w.changed.Add(lowCol + lowRow)
	}
}

func (w *WCC) hook(s, d uint32, row, col uint32) {
	ls := atomic.LoadUint32(&w.labels[s])
	ld := atomic.LoadUint32(&w.labels[d])
	switch {
	case ls < ld:
		if atomicMinUint32(&w.labels[d], ls) {
			w.nextRow.Set(col)
			w.changed.Add(1)
		}
	case ld < ls:
		if atomicMinUint32(&w.labels[s], ld) {
			w.nextRow.Set(row)
			w.changed.Add(1)
		}
	}
}

// AfterIteration implements Algorithm.
func (w *WCC) AfterIteration(int) bool {
	done := w.changed.Load() == 0
	w.curRow, w.nextRow = w.nextRow, w.curRow
	w.nextRow.Clear()
	w.iter0 = false
	return done
}

// NeedTileThisIter implements Algorithm. Every tile is needed in the
// first iteration; afterwards only tiles whose row or column ranges saw
// label changes.
func (w *WCC) NeedTileThisIter(row, col uint32) bool {
	if w.iter0 {
		return true
	}
	return w.curRow.Has(row) || w.curRow.Has(col)
}

// NeedTileNextIter implements Algorithm (partial information, §VI-C).
func (w *WCC) NeedTileNextIter(row, col uint32) bool {
	return w.nextRow.Has(row) || w.nextRow.Has(col)
}

// MetadataBytes implements Algorithm: the component-ID array and the two
// change maps.
func (w *WCC) MetadataBytes() int64 {
	return int64(len(w.labels))*4 + w.curRow.SizeBytes() + w.nextRow.SizeBytes()
}

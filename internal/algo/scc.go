package algo

import (
	"fmt"
	"sync/atomic"
)

// SCC computes strongly connected components of a directed graph with the
// parallel coloring algorithm (Fleischer et al., the paper's [10], in the
// iterative formulation of Orzan): repeat { propagate the maximum vertex
// ID forward as a color until fixpoint; every color class is then rooted
// at its own color vertex, and the vertices of the class that reach the
// root backward *within the class* form one SCC } until every vertex is
// assigned.
//
// §IV-A of the paper singles SCC out: it needs both edge directions, so
// CSR-based engines must store in-edges and out-edges separately — but a
// tile tuple exposes both endpoints, so one stored direction serves both
// the forward (color) and backward (mark) sweeps. This kernel is the
// demonstration of that claim.
//
// The kernel is a phase machine behind the ordinary Algorithm interface:
// engine iterations alternate between forward-color fixpoints and
// backward-mark fixpoints, with a harvest step between them.
type SCC struct {
	ctx *Context

	// color[v]: the max vertex ID that reaches v among unassigned
	// vertices (forward propagation).
	color []uint32
	// assigned[v]: v's SCC is final.
	assigned *bitset
	// marked[v]: v reaches its color root backward within its class.
	marked *bitset
	// scc[v]: final label — the minimum vertex of v's SCC.
	scc []uint32

	phase   sccPhase
	changed atomic.Int64
	left    int64 // unassigned vertices
}

type sccPhase int

const (
	phaseColor sccPhase = iota
	phaseMark
)

// NewSCC returns a strongly-connected-components kernel. The graph must
// be directed (on an undirected graph SCC degenerates to WCC; use that
// instead).
func NewSCC() *SCC { return &SCC{} }

// Name implements Algorithm.
func (s *SCC) Name() string { return "scc" }

// Init implements Algorithm.
func (s *SCC) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	if !ctx.Directed {
		return fmt.Errorf("scc: graph is undirected; strongly connected components require directed edges")
	}
	s.ctx = ctx
	n := ctx.NumVertices
	s.color = make([]uint32, n)
	s.scc = make([]uint32, n)
	s.assigned = newBitset(n)
	s.marked = newBitset(n)
	s.left = int64(n)
	for v := range s.color {
		s.color[v] = uint32(v)
	}
	s.phase = phaseColor
	return nil
}

// Labels returns, after the run, the smallest vertex ID of every vertex's
// strongly connected component.
func (s *SCC) Labels() []uint32 { return s.scc }

// BeforeIteration implements Algorithm.
func (s *SCC) BeforeIteration(int) { s.changed.Store(0) }

// ProcessTile implements Algorithm.
func (s *SCC) ProcessTile(row, col uint32, data []byte) {
	if s.phase == phaseColor {
		s.forEach(row, col, data, s.colorEdge)
	} else {
		s.forEach(row, col, data, s.markEdge)
	}
}

// ProcessTileChunk implements ChunkedAlgorithm: same propagation, with
// the shared changed counter batched into one atomic add per chunk.
func (s *SCC) ProcessTileChunk(_ int, row, col uint32, data []byte) {
	var changed int64
	edge := s.colorEdgeQuiet
	if s.phase == phaseMark {
		edge = s.markEdgeQuiet
	}
	s.forEach(row, col, data, func(u, v uint32) {
		if edge(u, v) {
			changed++
		}
	})
	if changed > 0 {
		s.changed.Add(changed)
	}
}

func (s *SCC) forEach(row, col uint32, data []byte, fn func(src, dst uint32)) {
	decodeLoop(s.ctx.codec(), rowBase(s.ctx, row), rowBase(s.ctx, col), data, fn)
}

func rowBase(ctx *Context, t uint32) uint32 {
	lo, _ := ctx.Layout.VertexRange(t)
	return lo
}

// colorEdge propagates colors forward along u -> v.
func (s *SCC) colorEdge(u, v uint32) {
	if s.colorEdgeQuiet(u, v) {
		s.changed.Add(1)
	}
}

// colorEdgeQuiet is colorEdge without the shared-counter update; it
// reports whether the edge changed v's color so chunked callers can
// batch the accounting.
func (s *SCC) colorEdgeQuiet(u, v uint32) bool {
	if s.assigned.Has(u) || s.assigned.Has(v) {
		return false
	}
	cu := atomic.LoadUint32(&s.color[u])
	if cu > atomic.LoadUint32(&s.color[v]) {
		return atomicMaxUint32(&s.color[v], cu)
	}
	return false
}

// markEdge propagates backward reachability within a color class: if v is
// marked and u -> v with equal colors, u joins the root's backward set.
func (s *SCC) markEdge(u, v uint32) {
	if s.markEdgeQuiet(u, v) {
		s.changed.Add(1)
	}
}

// markEdgeQuiet is markEdge with the accounting left to the caller.
func (s *SCC) markEdgeQuiet(u, v uint32) bool {
	if s.assigned.Has(u) || s.assigned.Has(v) {
		return false
	}
	if !s.marked.Has(v) || s.marked.Has(u) {
		return false
	}
	if atomic.LoadUint32(&s.color[u]) != atomic.LoadUint32(&s.color[v]) {
		return false
	}
	return s.marked.Set(u)
}

// atomicMaxUint32 raises *p to v if larger; reports whether it changed.
func atomicMaxUint32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// AfterIteration implements Algorithm: drive the phase machine.
func (s *SCC) AfterIteration(int) bool {
	if s.changed.Load() > 0 {
		return false // current fixpoint not reached yet
	}
	switch s.phase {
	case phaseColor:
		// Colors are stable: seed the backward sweep at every color root.
		n := uint32(len(s.color))
		for v := uint32(0); v < n; v++ {
			if !s.assigned.Has(v) && s.color[v] == v {
				s.marked.Set(v)
			}
		}
		s.phase = phaseMark
		return false
	default: // phaseMark
		// Marked vertices form whole SCCs (one per color root). Harvest:
		// assign them, labeled by the minimum member of each class.
		n := uint32(len(s.color))
		min := make(map[uint32]uint32)
		for v := uint32(0); v < n; v++ {
			if s.marked.Has(v) && !s.assigned.Has(v) {
				c := s.color[v]
				if m, ok := min[c]; !ok || v < m {
					min[c] = v
				}
			}
		}
		for v := uint32(0); v < n; v++ {
			if s.marked.Has(v) && !s.assigned.Has(v) {
				s.scc[v] = min[s.color[v]]
				s.assigned.Set(v)
				s.left--
			}
		}
		s.marked.Clear()
		if s.left == 0 {
			return true
		}
		// Reset colors of the survivors and start a new round.
		for v := uint32(0); v < n; v++ {
			if !s.assigned.Has(v) {
				s.color[v] = v
			}
		}
		s.phase = phaseColor
		return false
	}
}

// NeedTileThisIter implements Algorithm. The phase machine's fixpoints
// need whole-graph passes; tiles whose vertex ranges are fully assigned
// could be skipped, but tracking that per tile costs more than it saves
// at reproduction scale, so SCC reads everything (like PageRank).
func (s *SCC) NeedTileThisIter(uint32, uint32) bool { return true }

// NeedTileNextIter implements Algorithm.
func (s *SCC) NeedTileNextIter(uint32, uint32) bool { return s.left > 0 }

// MetadataBytes implements Algorithm.
func (s *SCC) MetadataBytes() int64 {
	return int64(len(s.color))*4 + int64(len(s.scc))*4 +
		s.assigned.SizeBytes() + s.marked.SizeBytes()
}

package algo

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// loadTiles converts el and loads every tile into memory for the
// mini-engine below.
type memGraph struct {
	g     *tile.Graph
	ctx   *Context
	tiles [][]byte
}

func load(t *testing.T, el *graph.EdgeList, opts tile.ConvertOptions) *memGraph {
	t.Helper()
	g, err := tile.Convert(el, t.TempDir(), "t", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	mg := &memGraph{g: g}
	var deg tile.DegreeSource
	if g.Meta.DegreeFormat != "" {
		deg, err = g.Degrees()
		if err != nil {
			t.Fatal(err)
		}
	}
	mg.ctx = &Context{
		NumVertices: g.Meta.NumVertices,
		Layout:      g.Layout,
		Directed:    g.Meta.Directed,
		Half:        g.Meta.Half,
		SNB:         g.Meta.SNB,
		Degrees:     deg,
	}
	for i := 0; i < g.Layout.NumTiles(); i++ {
		data, err := g.ReadTile(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		mg.tiles = append(mg.tiles, append([]byte(nil), data...))
	}
	return mg
}

// run drives an algorithm the way the engine does: iterate, process the
// tiles the kernel asks for (concurrently when parallel is set), stop at
// convergence. It returns the iteration count and verifies that skipped
// tiles were genuinely unneeded by re-checking against a full pass.
func (mg *memGraph) run(t *testing.T, a Algorithm, parallel bool, maxIter int) int {
	t.Helper()
	if err := a.Init(mg.ctx); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < maxIter; iter++ {
		a.BeforeIteration(iter)
		var wg sync.WaitGroup
		for i, data := range mg.tiles {
			c := mg.g.Layout.CoordAt(i)
			if !a.NeedTileThisIter(c.Row, c.Col) {
				continue
			}
			if parallel {
				wg.Add(1)
				go func(row, col uint32, d []byte) {
					defer wg.Done()
					a.ProcessTile(row, col, d)
				}(c.Row, c.Col, data)
			} else {
				a.ProcessTile(c.Row, c.Col, data)
			}
		}
		wg.Wait()
		if a.AfterIteration(iter) {
			return iter + 1
		}
	}
	t.Fatalf("%s did not converge in %d iterations", a.Name(), maxIter)
	return maxIter
}

func defaultOpts() tile.ConvertOptions {
	return tile.ConvertOptions{TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true}
}

func kronEL(t *testing.T, scale uint, ef int, seed uint64) *graph.EdgeList {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return el
}

// --- BFS ---

func TestBFSMatchesReferenceUndirected(t *testing.T) {
	el := kronEL(t, 9, 8, 1)
	mg := load(t, el, defaultOpts())
	b := NewBFS(0)
	mg.run(t, b, true, 1000)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestBFSDirected(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	mg := load(t, el, defaultOpts())
	if mg.ctx.Half {
		t.Fatal("directed graph loaded as half")
	}
	b := NewBFS(0)
	mg.run(t, b, true, 1000)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestBFSWithoutSNB(t *testing.T) {
	el := kronEL(t, 8, 8, 3)
	opts := defaultOpts()
	opts.SNB = false
	mg := load(t, el, opts)
	b := NewBFS(0)
	mg.run(t, b, false, 1000)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestBFSRootValidation(t *testing.T) {
	el := kronEL(t, 6, 4, 4)
	mg := load(t, el, defaultOpts())
	b := NewBFS(1 << 30)
	if err := b.Init(mg.ctx); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestBFSSelectiveSkipsTiles(t *testing.T) {
	// A path graph 0-1-2-...-n spread across tiles: in any given
	// iteration only the tiles containing the single frontier vertex are
	// needed.
	n := uint32(128)
	el := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v+1 < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	mg := load(t, el, tile.ConvertOptions{TileBits: 4, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true})
	b := NewBFS(0)
	if err := b.Init(mg.ctx); err != nil {
		t.Fatal(err)
	}
	needed := 0
	total := 0
	for iter := 0; iter < int(n); iter++ {
		b.BeforeIteration(iter)
		for i, data := range mg.tiles {
			c := mg.g.Layout.CoordAt(i)
			total++
			if !b.NeedTileThisIter(c.Row, c.Col) {
				continue
			}
			needed++
			b.ProcessTile(c.Row, c.Col, data)
		}
		if b.AfterIteration(iter) {
			break
		}
	}
	if needed >= total/2 {
		t.Fatalf("selective fetch processed %d of %d tile visits; expected a small fraction", needed, total)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

// --- PageRank ---

func TestPageRankMatchesReference(t *testing.T) {
	el := kronEL(t, 8, 8, 5)
	mg := load(t, el, defaultOpts())
	iters := 15
	p := NewPageRank(iters)
	if got := mg.run(t, p, true, iters); got != iters {
		t.Fatalf("ran %d iterations, want %d", got, iters)
	}
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for v, r := range p.Ranks() {
		if math.Abs(r-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, want[v])
		}
	}
}

func TestPageRankDirected(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(8, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	mg := load(t, el, defaultOpts())
	iters := 10
	p := NewPageRank(iters)
	mg.run(t, p, true, iters)
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for v, r := range p.Ranks() {
		if math.Abs(r-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, want[v])
		}
	}
}

func TestPageRankEpsilonStopsEarly(t *testing.T) {
	el := kronEL(t, 8, 8, 7)
	mg := load(t, el, defaultOpts())
	p := NewPageRank(500)
	p.Epsilon = 1e-7
	iters := mg.run(t, p, false, 500)
	if iters >= 500 {
		t.Fatalf("epsilon stop did not trigger (%d iterations)", iters)
	}
	if p.Delta() >= 1e-7 {
		t.Fatalf("final delta %v above epsilon", p.Delta())
	}
}

func TestPageRankRequiresDegrees(t *testing.T) {
	el := kronEL(t, 6, 4, 8)
	opts := defaultOpts()
	opts.Degrees = false
	mg := load(t, el, opts)
	p := NewPageRank(5)
	if err := p.Init(mg.ctx); err == nil {
		t.Fatal("PageRank accepted a graph without degrees")
	}
}

func TestPageRankSumInvariant(t *testing.T) {
	el := kronEL(t, 9, 4, 9)
	mg := load(t, el, defaultOpts())
	p := NewPageRank(8)
	mg.run(t, p, true, 8)
	sum := 0.0
	for _, r := range p.Ranks() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

// --- WCC ---

func TestWCCMatchesReference(t *testing.T) {
	// A sparse graph with many components.
	el := kronEL(t, 9, 1, 10)
	mg := load(t, el, defaultOpts())
	w := NewWCC()
	mg.run(t, w, true, 10000)
	want := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
	if graph.ComponentCount(w.Labels()) < 2 {
		t.Skip("graph unexpectedly fully connected; skew seed")
	}
}

func TestWCCDirectedIsWeak(t *testing.T) {
	// Directed chain a->b<-c: weakly one component.
	el := &graph.EdgeList{NumVertices: 3, Directed: true,
		Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}}
	mg := load(t, el, tile.ConvertOptions{TileBits: 1, GroupQ: 1, SNB: true, Degrees: true})
	w := NewWCC()
	mg.run(t, w, false, 100)
	for v, l := range w.Labels() {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, l)
		}
	}
}

func TestWCCSelectiveConvergesFast(t *testing.T) {
	el := kronEL(t, 10, 2, 11)
	mg := load(t, el, defaultOpts())
	w := NewWCC()
	iters := mg.run(t, w, true, 1000)
	// Min-label propagation over tiles converges in few iterations
	// (the paper: "all CCs are identified in very few iterations").
	if iters > 60 {
		t.Fatalf("WCC took %d iterations", iters)
	}
	want := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}

// --- metadata hooks ---

func TestMetadataBytesPositive(t *testing.T) {
	el := kronEL(t, 8, 4, 12)
	mg := load(t, el, defaultOpts())
	for _, a := range []Algorithm{NewBFS(0), NewPageRank(3), NewWCC()} {
		if err := a.Init(mg.ctx); err != nil {
			t.Fatal(err)
		}
		if a.MetadataBytes() <= 0 {
			t.Fatalf("%s MetadataBytes = %d", a.Name(), a.MetadataBytes())
		}
	}
}

func TestPageRankAlwaysNeedsAllTiles(t *testing.T) {
	el := kronEL(t, 8, 4, 13)
	mg := load(t, el, defaultOpts())
	p := NewPageRank(3)
	if err := p.Init(mg.ctx); err != nil {
		t.Fatal(err)
	}
	if !p.NeedTileThisIter(0, 0) || !p.NeedTileNextIter(3, 1) {
		t.Fatal("PageRank must always need every tile")
	}
}

// Property: BFS equals the reference on random graphs, random roots,
// random tile widths, with concurrent tile processing.
func TestQuickBFSEquivalence(t *testing.T) {
	f := func(seed uint64, rawRoot uint16, rawBits uint8) bool {
		el, err := gen.Generate(gen.Graph500Config(7, 4, seed))
		if err != nil {
			return false
		}
		opts := defaultOpts()
		opts.TileBits = uint(rawBits)%4 + 3
		g, err := tile.Convert(el, t.TempDir(), "q", opts)
		if err != nil {
			return false
		}
		defer g.Close()
		mg := &memGraph{g: g, ctx: &Context{
			NumVertices: g.Meta.NumVertices, Layout: g.Layout,
			Directed: g.Meta.Directed, Half: g.Meta.Half, SNB: g.Meta.SNB,
		}}
		for i := 0; i < g.Layout.NumTiles(); i++ {
			data, err := g.ReadTile(i, nil)
			if err != nil {
				return false
			}
			mg.tiles = append(mg.tiles, append([]byte(nil), data...))
		}
		root := uint32(rawRoot) % el.NumVertices
		b := NewBFS(root)
		if err := b.Init(mg.ctx); err != nil {
			return false
		}
		for iter := 0; iter < 1<<16; iter++ {
			b.BeforeIteration(iter)
			var wg sync.WaitGroup
			for i, data := range mg.tiles {
				c := g.Layout.CoordAt(i)
				if !b.NeedTileThisIter(c.Row, c.Col) {
					continue
				}
				wg.Add(1)
				go func(row, col uint32, d []byte) {
					defer wg.Done()
					b.ProcessTile(row, col, d)
				}(c.Row, c.Col, data)
			}
			wg.Wait()
			if b.AfterIteration(iter) {
				break
			}
		}
		want := graph.RefBFS(graph.NewCSR(el, false), root)
		for v, d := range b.Depths() {
			if d != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: WCC labels match the union-find reference on random graphs.
func TestQuickWCCEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		el, err := gen.Generate(gen.Graph500Config(7, 2, seed))
		if err != nil {
			return false
		}
		g, err := tile.Convert(el, t.TempDir(), "q", defaultOpts())
		if err != nil {
			return false
		}
		defer g.Close()
		mg := &memGraph{g: g, ctx: &Context{
			NumVertices: g.Meta.NumVertices, Layout: g.Layout,
			Directed: g.Meta.Directed, Half: g.Meta.Half, SNB: g.Meta.SNB,
		}}
		for i := 0; i < g.Layout.NumTiles(); i++ {
			data, err := g.ReadTile(i, nil)
			if err != nil {
				return false
			}
			mg.tiles = append(mg.tiles, append([]byte(nil), data...))
		}
		w := NewWCC()
		if err := w.Init(mg.ctx); err != nil {
			return false
		}
		for iter := 0; iter < 1<<16; iter++ {
			w.BeforeIteration(iter)
			for i, data := range mg.tiles {
				c := g.Layout.CoordAt(i)
				if !w.NeedTileThisIter(c.Row, c.Col) {
					continue
				}
				w.ProcessTile(c.Row, c.Col, data)
			}
			if w.AfterIteration(iter) {
				break
			}
		}
		want := graph.RefWCC(el)
		for v, l := range w.Labels() {
			if l != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package algo

import (
	"fmt"
	"math"
	"sync/atomic"
)

// PPR is personalized PageRank: the restart-vector variant of the
// chunked PageRank kernel where the teleport distribution is a point
// mass at Root instead of uniform. Every random walk restarts at the
// query vertex, so rank concentrates in Root's neighborhood — the
// per-user relevance score recommendation serving wants. Dangling mass
// restarts at Root too (the personalization vector replaces the uniform
// term everywhere), keeping the ranks a probability distribution.
//
// The edge-scatter phase is inherited from PageRank unchanged —
// including the contention-free per-worker accumulator slabs — because
// only initialization and the teleport term differ.
type PPR struct {
	PageRank
	Root uint32
}

// NewPPR returns a personalized PageRank kernel restarting at root.
func NewPPR(root uint32, iterations int) *PPR {
	p := &PPR{Root: root}
	p.Iterations = iterations
	return p
}

// Name implements Algorithm.
func (p *PPR) Name() string { return "ppr" }

// Init implements Algorithm: all rank mass starts at the root, matching
// the fixed point's teleport distribution.
func (p *PPR) Init(ctx *Context) error {
	if err := p.PageRank.Init(ctx); err != nil {
		return err
	}
	if p.Root >= ctx.NumVertices {
		return fmt.Errorf("ppr: root %d outside vertex space %d", p.Root, ctx.NumVertices)
	}
	for i := range p.rank {
		p.rank[i] = 0
	}
	p.rank[p.Root] = 1
	return nil
}

// AfterIteration implements Algorithm: reduce the per-worker slabs and
// apply the personalized teleport — the (1-d) restart mass and the
// dangling mass both land on Root alone.
func (p *PPR) AfterIteration(iter int) bool {
	restart := (1 - damping) + damping*p.dangling
	delta := 0.0
	for v := range p.rank {
		sum := math.Float64frombits(atomic.LoadUint64(&p.next[v]))
		for _, slab := range p.nextW {
			sum += slab[v]
		}
		nv := damping * sum
		if uint32(v) == p.Root {
			nv += restart
		}
		delta += math.Abs(nv - p.rank[v])
		p.rank[v] = nv
	}
	p.delta = delta
	if p.Epsilon > 0 && delta < p.Epsilon {
		return true
	}
	return iter+1 >= p.Iterations
}

package algo

import (
	"fmt"
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/tile"
)

// MSBFS runs up to 64 breadth-first searches concurrently in one pass
// over the graph, the batched formulation of concurrent BFS the paper
// cites as iBFS [22]. Every vertex carries two 64-bit masks:
//
//	visited[v] — bit i set once source i has reached v,
//	cur[v]     — bit i set while v is on source i's current frontier.
//
// One tuple inspection advances all sources at once: the new frontier
// bits of d are cur[s] &^ visited[d]. Sharing the graph pass across
// sources amortizes the I/O that dominates semi-external BFS — one
// stream of the tiles serves 64 traversals.
//
// Depths are recovered per source from the iteration at which each
// visited bit was set.
type MSBFS struct {
	Roots []uint32

	ctx     *Context
	visited []uint64
	cur     []uint64
	next    []uint64
	// depth[i*|V|+v] = depth of v from source i (-1 unreached), filled
	// when bits first appear.
	depth   []int32
	level   int32
	added   atomic.Int64
	curRow  *bitset
	nextRow *bitset
}

// NewMSBFS returns a kernel traversing from up to 64 roots at once.
func NewMSBFS(roots []uint32) *MSBFS { return &MSBFS{Roots: roots} }

// Name implements Algorithm.
func (m *MSBFS) Name() string { return "msbfs" }

// Init implements Algorithm.
func (m *MSBFS) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	if len(m.Roots) == 0 || len(m.Roots) > 64 {
		return fmt.Errorf("msbfs: %d roots, want 1..64", len(m.Roots))
	}
	for i, r := range m.Roots {
		if r >= ctx.NumVertices {
			return fmt.Errorf("msbfs: root %d (#%d) outside vertex space %d", r, i, ctx.NumVertices)
		}
	}
	m.ctx = ctx
	n := int(ctx.NumVertices)
	m.visited = make([]uint64, n)
	m.cur = make([]uint64, n)
	m.next = make([]uint64, n)
	m.depth = make([]int32, n*len(m.Roots))
	for i := range m.depth {
		m.depth[i] = -1
	}
	m.curRow = newBitset(ctx.Layout.P)
	m.nextRow = newBitset(ctx.Layout.P)
	for i, r := range m.Roots {
		bit := uint64(1) << uint(i)
		m.visited[r] |= bit
		m.cur[r] |= bit
		m.depth[i*n+int(r)] = 0
		m.curRow.Set(ctx.Layout.TileOf(r))
	}
	return nil
}

// Depth returns the depth array of source i (aliasing internal storage).
func (m *MSBFS) Depth(i int) []int32 {
	n := int(m.ctx.NumVertices)
	return m.depth[i*n : (i+1)*n]
}

// BeforeIteration implements Algorithm.
func (m *MSBFS) BeforeIteration(iter int) {
	m.level = int32(iter)
	m.added.Store(0)
}

// ProcessTile implements Algorithm.
func (m *MSBFS) ProcessTile(row, col uint32, data []byte) {
	if m.ctx.Codec == tile.CodecV3 {
		rb, _ := m.ctx.Layout.VertexRange(row)
		cb, _ := m.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			m.advance(s, d, row, col)
		})
		return
	}
	if m.ctx.SNB {
		rb, _ := m.ctx.Layout.VertexRange(row)
		cb, _ := m.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			m.advance(rb+uint32(so), cb+uint32(do), row, col)
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		m.advance(s, d, row, col)
	}
}

func (m *MSBFS) advance(s, d uint32, row, col uint32) {
	if f := atomic.LoadUint64(&m.cur[s]) &^ atomic.LoadUint64(&m.visited[d]); f != 0 {
		m.spread(d, f, col)
	}
	if m.ctx.Half {
		if f := atomic.LoadUint64(&m.cur[d]) &^ atomic.LoadUint64(&m.visited[s]); f != 0 {
			m.spread(s, f, row)
		}
	}
}

// spread installs the new frontier bits f at vertex v (tile index t).
func (m *MSBFS) spread(v uint32, f uint64, t uint32) {
	for {
		old := atomic.LoadUint64(&m.visited[v])
		add := f &^ old
		if add == 0 {
			return
		}
		if !atomic.CompareAndSwapUint64(&m.visited[v], old, old|add) {
			continue
		}
		orUint64(&m.next[v], add)
		m.nextRow.Set(t)
		m.added.Add(1)
		// Record depths for the sources that just arrived.
		n := int(m.ctx.NumVertices)
		for rest := add; rest != 0; {
			i := trailingZeros(rest)
			rest &^= 1 << uint(i)
			m.depth[i*n+int(v)] = m.level + 1
		}
		return
	}
}

func orUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&v == v {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|v) {
			return
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// AfterIteration implements Algorithm.
func (m *MSBFS) AfterIteration(int) bool {
	done := m.added.Load() == 0
	m.cur, m.next = m.next, m.cur
	for i := range m.next {
		m.next[i] = 0
	}
	m.curRow, m.nextRow = m.nextRow, m.curRow
	m.nextRow.Clear()
	return done
}

// NeedTileThisIter implements Algorithm.
func (m *MSBFS) NeedTileThisIter(row, col uint32) bool {
	if m.curRow.Has(row) {
		return true
	}
	return m.ctx.Half && m.curRow.Has(col)
}

// NeedTileNextIter implements Algorithm.
func (m *MSBFS) NeedTileNextIter(row, col uint32) bool {
	if m.nextRow.Has(row) {
		return true
	}
	return m.ctx.Half && m.nextRow.Has(col)
}

// MetadataBytes implements Algorithm: three masks plus the per-source
// depth matrix.
func (m *MSBFS) MetadataBytes() int64 {
	return int64(len(m.visited)+len(m.cur)+len(m.next))*8 +
		int64(len(m.depth))*4 + m.curRow.SizeBytes() + m.nextRow.SizeBytes()
}

package algo

import (
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

func TestMSBFSValidation(t *testing.T) {
	el := kronEL(t, 6, 4, 71)
	mg := load(t, el, defaultOpts())
	if err := NewMSBFS(nil).Init(mg.ctx); err == nil {
		t.Fatal("zero roots accepted")
	}
	roots := make([]uint32, 65)
	if err := NewMSBFS(roots).Init(mg.ctx); err == nil {
		t.Fatal("65 roots accepted")
	}
	if err := NewMSBFS([]uint32{1 << 30}).Init(mg.ctx); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestMSBFSMatchesIndividualBFS(t *testing.T) {
	el := kronEL(t, 9, 8, 72)
	mg := load(t, el, defaultOpts())
	roots := []uint32{0, 1, 17, 100, 255, 300}
	ms := NewMSBFS(roots)
	mg.run(t, ms, true, 1000)
	csr := graph.NewCSR(el, false)
	for i, r := range roots {
		want := graph.RefBFS(csr, r)
		got := ms.Depth(i)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("source %d: depth[%d] = %d, want %d", r, v, got[v], want[v])
			}
		}
	}
}

func TestMSBFSDirected(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 8, 73))
	if err != nil {
		t.Fatal(err)
	}
	mg := load(t, el, defaultOpts())
	roots := []uint32{0, 5, 99}
	ms := NewMSBFS(roots)
	mg.run(t, ms, true, 1000)
	csr := graph.NewCSR(el, false)
	for i, r := range roots {
		want := graph.RefBFS(csr, r)
		got := ms.Depth(i)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("source %d: depth[%d] = %d, want %d", r, v, got[v], want[v])
			}
		}
	}
}

func TestMSBFSSixtyFourSources(t *testing.T) {
	el := kronEL(t, 8, 8, 74)
	mg := load(t, el, defaultOpts())
	roots := make([]uint32, 64)
	for i := range roots {
		roots[i] = uint32(i * 3)
	}
	ms := NewMSBFS(roots)
	mg.run(t, ms, true, 1000)
	csr := graph.NewCSR(el, false)
	for _, i := range []int{0, 31, 63} {
		want := graph.RefBFS(csr, roots[i])
		got := ms.Depth(i)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("source #%d: depth[%d] = %d, want %d", i, v, got[v], want[v])
			}
		}
	}
}

// The point of MSBFS: one shared pass serves all sources, so the tile
// visits are far below roots x single-BFS visits.
func TestMSBFSSharesPasses(t *testing.T) {
	el := kronEL(t, 9, 8, 75)
	mg := load(t, el, defaultOpts())

	countVisits := func(a Algorithm) int {
		if err := a.Init(mg.ctx); err != nil {
			t.Fatal(err)
		}
		visits := 0
		for iter := 0; iter < 1000; iter++ {
			a.BeforeIteration(iter)
			for i, data := range mg.tiles {
				c := mg.g.Layout.CoordAt(i)
				if !a.NeedTileThisIter(c.Row, c.Col) {
					continue
				}
				visits++
				a.ProcessTile(c.Row, c.Col, data)
			}
			if a.AfterIteration(iter) {
				return visits
			}
		}
		t.Fatal("did not converge")
		return 0
	}

	roots := []uint32{0, 9, 33, 70, 111, 222, 333, 444}
	shared := countVisits(NewMSBFS(roots))
	individual := 0
	for _, r := range roots {
		individual += countVisits(NewBFS(r))
	}
	if shared*2 > individual {
		t.Fatalf("msbfs visited %d tiles, individual BFS total %d; expected >=2x sharing",
			shared, individual)
	}
}

// Property: msbfs depths equal single-source BFS for random root sets.
func TestQuickMSBFSEquivalence(t *testing.T) {
	f := func(seed uint64, rawRoots [4]uint16) bool {
		el, err := gen.Generate(gen.Graph500Config(7, 4, seed))
		if err != nil {
			return false
		}
		g, err := convertQuick(t, el)
		if err != nil {
			return false
		}
		defer g.Close()
		ctx := &Context{
			NumVertices: g.Meta.NumVertices, Layout: g.Layout,
			Directed: g.Meta.Directed, Half: g.Meta.Half, SNB: g.Meta.SNB,
		}
		var tiles [][]byte
		for i := 0; i < g.Layout.NumTiles(); i++ {
			data, err := g.ReadTile(i, nil)
			if err != nil {
				return false
			}
			tiles = append(tiles, append([]byte(nil), data...))
		}
		roots := make([]uint32, len(rawRoots))
		for i, r := range rawRoots {
			roots[i] = uint32(r) % el.NumVertices
		}
		ms := NewMSBFS(roots)
		if err := ms.Init(ctx); err != nil {
			return false
		}
		for iter := 0; iter < 1<<16; iter++ {
			ms.BeforeIteration(iter)
			for i, data := range tiles {
				c := g.Layout.CoordAt(i)
				if !ms.NeedTileThisIter(c.Row, c.Col) {
					continue
				}
				ms.ProcessTile(c.Row, c.Col, data)
			}
			if ms.AfterIteration(iter) {
				break
			}
		}
		csr := graph.NewCSR(el, false)
		for i, r := range roots {
			want := graph.RefBFS(csr, r)
			got := ms.Depth(i)
			for v := range got {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func convertQuick(t *testing.T, el *graph.EdgeList) (*tile.Graph, error) {
	t.Helper()
	return tile.Convert(el, t.TempDir(), "q", defaultOpts())
}

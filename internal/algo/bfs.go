package algo

import (
	"fmt"
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/tile"
)

// BFS is the level-synchronous breadth-first search kernel. On
// symmetry-stored (half) undirected graphs it applies the paper's
// Algorithm 1: every tuple is checked in both directions, which is the
// small code change that lets BFS run on the upper triangle alone.
//
// Depth values double as the frontier (depth[v] == current level marks v
// as a frontier vertex), and per-tile-row frontier bitmaps drive the
// selective fetching of §V-B: in the last iterations of BFS only a few
// tiles contain frontier work and only those are read.
type BFS struct {
	Root uint32

	ctx     *Context
	depth   []int32
	level   int32
	added   atomic.Int64
	curRow  *bitset // tile rows containing current-frontier vertices
	nextRow *bitset
	// rowUnvisited[r] counts still-unvisited vertices in tile row r. Once
	// a row (and, under symmetry, a column) hits zero, its tiles can never
	// produce work again — the paper's §III observation that "the
	// adjacency list of a previously visited node will never need to be
	// accessed again", which drives proactive eviction.
	rowUnvisited []atomic.Int64
}

// NewBFS returns a BFS kernel rooted at root.
func NewBFS(root uint32) *BFS { return &BFS{Root: root} }

// Name implements Algorithm.
func (b *BFS) Name() string { return "bfs" }

// Init implements Algorithm.
func (b *BFS) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	if b.Root >= ctx.NumVertices {
		return fmt.Errorf("bfs: root %d outside vertex space %d", b.Root, ctx.NumVertices)
	}
	b.ctx = ctx
	b.depth = make([]int32, ctx.NumVertices)
	for i := range b.depth {
		b.depth[i] = -1
	}
	b.curRow = newBitset(ctx.Layout.P)
	b.nextRow = newBitset(ctx.Layout.P)
	b.rowUnvisited = make([]atomic.Int64, ctx.Layout.P)
	width := int64(ctx.Layout.TileWidth())
	for r := uint32(0); r < ctx.Layout.P; r++ {
		lo, _ := ctx.Layout.VertexRange(r)
		n := int64(ctx.NumVertices) - int64(lo)
		if n > width {
			n = width
		}
		b.rowUnvisited[r].Store(n)
	}
	b.depth[b.Root] = 0
	b.curRow.Set(ctx.Layout.TileOf(b.Root))
	b.rowUnvisited[ctx.Layout.TileOf(b.Root)].Add(-1)
	return nil
}

// Depths returns the result after the run (InfDepth convention of
// internal/graph: -1 means unreached).
func (b *BFS) Depths() []int32 { return b.depth }

// BeforeIteration implements Algorithm.
func (b *BFS) BeforeIteration(iter int) {
	b.level = int32(iter)
	b.added.Store(0)
}

// ProcessTile implements Algorithm.
func (b *BFS) ProcessTile(row, col uint32, data []byte) {
	level := b.level
	depth := b.depth
	if b.ctx.Codec == tile.CodecV3 {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			b.visit(s, d, row, col, level, depth)
		})
		return
	}
	if b.ctx.SNB {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			b.visit(rb+uint32(so), cb+uint32(do), row, col, level, depth)
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		b.visit(s, d, row, col, level, depth)
	}
}

// ProcessTileChunk implements ChunkedAlgorithm. The depth CAS must stay
// atomic (chunks of one tile race on shared vertices), but the frontier
// bitmap and the per-row counters are pure bookkeeping: a chunk touches
// only its tile's row and column ranges, so discoveries are counted in
// two stack-local accumulators and flushed with at most three atomic
// operations per chunk instead of three per discovered vertex.
func (b *BFS) ProcessTileChunk(_ int, row, col uint32, data []byte) {
	level := b.level
	depth := b.depth
	var fwd, rev int64 // discoveries in the col and row ranges
	if b.ctx.Codec == tile.CodecV3 {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			b.visitBatched(s, d, level, depth, &fwd, &rev)
		})
	} else if b.ctx.SNB {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			b.visitBatched(rb+uint32(so), cb+uint32(do), level, depth, &fwd, &rev)
		}
	} else {
		for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
			s, d := tile.GetRaw(data[i:])
			b.visitBatched(s, d, level, depth, &fwd, &rev)
		}
	}
	if fwd > 0 {
		b.nextRow.Set(col)
		b.rowUnvisited[col].Add(-fwd)
	}
	if rev > 0 {
		b.nextRow.Set(row)
		b.rowUnvisited[row].Add(-rev)
	}
	if fwd+rev > 0 {
		b.added.Add(fwd + rev)
	}
}

// visitBatched is visit with the bookkeeping deferred to the caller's
// per-chunk accumulators; only the depth transition itself is atomic.
func (b *BFS) visitBatched(s, d uint32, level int32, depth []int32, fwd, rev *int64) {
	if atomic.LoadInt32(&depth[s]) == level && atomic.LoadInt32(&depth[d]) == -1 {
		if atomicCASInt32(&depth[d], -1, level+1) {
			*fwd++
		}
	}
	if b.ctx.Half {
		if atomic.LoadInt32(&depth[d]) == level && atomic.LoadInt32(&depth[s]) == -1 {
			if atomicCASInt32(&depth[s], -1, level+1) {
				*rev++
			}
		}
	}
}

func (b *BFS) visit(s, d uint32, row, col uint32, level int32, depth []int32) {
	// Forward direction: src on the frontier discovers dst.
	if atomic.LoadInt32(&depth[s]) == level && atomic.LoadInt32(&depth[d]) == -1 {
		if atomicCASInt32(&depth[d], -1, level+1) {
			b.nextRow.Set(col)
			b.rowUnvisited[col].Add(-1)
			b.added.Add(1)
		}
	}
	// Algorithm 1's added lines 8–10: with only the upper triangle stored,
	// the mirrored direction must be checked too.
	if b.ctx.Half {
		if atomic.LoadInt32(&depth[d]) == level && atomic.LoadInt32(&depth[s]) == -1 {
			if atomicCASInt32(&depth[s], -1, level+1) {
				b.nextRow.Set(row)
				b.rowUnvisited[row].Add(-1)
				b.added.Add(1)
			}
		}
	}
}

// AfterIteration implements Algorithm.
func (b *BFS) AfterIteration(int) bool {
	done := b.added.Load() == 0
	b.curRow, b.nextRow = b.nextRow, b.curRow
	b.nextRow.Clear()
	return done
}

// NeedTileThisIter implements Algorithm. A tile can produce work when the
// frontier intersects its source range — or, under symmetry storage, its
// destination range.
func (b *BFS) NeedTileThisIter(row, col uint32) bool {
	if b.curRow.Has(row) {
		return true
	}
	return b.ctx.Half && b.curRow.Has(col)
}

// NeedTileNextIter implements Algorithm, applying the proactive caching
// rules of §VI-C with the partial information available mid-iteration:
// a tile is surely needed if the (partial) next frontier already touches
// its ranges; surely dead if every vertex in its ranges is visited (no
// new frontier can ever arise there); otherwise conservatively kept.
func (b *BFS) NeedTileNextIter(row, col uint32) bool {
	if b.nextRow.Has(row) || (b.ctx.Half && b.nextRow.Has(col)) {
		return true
	}
	if b.rowUnvisited[row].Load() == 0 &&
		(!b.ctx.Half || b.rowUnvisited[col].Load() == 0) {
		return false
	}
	return true
}

// MetadataBytes implements Algorithm: the depth array, the two frontier
// row maps and the per-row unvisited counters.
func (b *BFS) MetadataBytes() int64 {
	return int64(len(b.depth))*4 + b.curRow.SizeBytes() + b.nextRow.SizeBytes() +
		int64(len(b.rowUnvisited))*8
}

package algo

import (
	"math"
	"sync/atomic"
)

// Atomic primitives shared by the kernels. Tiles are processed by many
// goroutines and — because a tile touches both its row and column ranges
// under symmetry storage — row-partitioning alone cannot make metadata
// writes private, so the kernels use lock-free updates.

// atomicMinUint32 lowers *p to v if v is smaller. Reports whether it
// changed the value.
func atomicMinUint32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// atomicCASInt32 sets *p to v if it currently holds want.
func atomicCASInt32(p *int32, want, v int32) bool {
	return atomic.CompareAndSwapInt32(p, want, v)
}

// atomicAddFloat64 adds v to *p with a CAS loop over the bit pattern.
func atomicAddFloat64(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, next) {
			return
		}
	}
}

// bitset is an atomic bitmap over vertex or tile indices.
type bitset struct {
	words []uint64
}

func newBitset(n uint32) *bitset {
	return &bitset{words: make([]uint64, (uint64(n)+63)/64)}
}

// Set atomically sets bit i and reports whether it was previously clear.
func (b *bitset) Set(i uint32) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Has reports bit i (atomically loaded).
func (b *bitset) Has(i uint32) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(uint64(1)<<(i&63)) != 0
}

// Clear zeroes the whole set (not concurrent-safe).
func (b *bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Any reports whether any bit is set (not concurrent-safe).
func (b *bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits (not concurrent-safe).
func (b *bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SizeBytes reports the bitmap's footprint.
func (b *bitset) SizeBytes() int64 { return int64(len(b.words)) * 8 }

package algo

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/tile"
)

// PageRank is the iterative kernel of §II-B: every vertex divides its rank
// by its out-degree and transmits the share along its out-edges. Under
// symmetry (half) storage each stored tuple carries contributions in both
// directions, halving the data read per iteration — the saving Figure 10
// measures. Dangling mass is redistributed uniformly so the ranks stay a
// distribution (which is also what makes the result comparable to the
// reference implementation).
//
// PageRank is the paper's example of an algorithm where metadata access is
// random while graph access is sequential: all tiles are needed every
// iteration (NeedTile* always answer true), so its performance is driven
// by the storage format, the physical grouping, and SCR — not by selective
// I/O.
type PageRank struct {
	// Iterations caps the run; if Epsilon is zero it is the exact count.
	Iterations int
	// Epsilon, when positive, stops once the L1 rank delta drops below it.
	Epsilon float64

	ctx      *Context
	rank     []float64
	next     []uint64 // float64 bits, accumulated atomically (ProcessTile path)
	nextW    [][]float64
	share    []float64
	dangling float64
	delta    float64
}

// NewPageRank returns a kernel running the given number of iterations.
func NewPageRank(iterations int) *PageRank {
	return &PageRank{Iterations: iterations}
}

// Name implements Algorithm.
func (p *PageRank) Name() string { return "pagerank" }

const damping = 0.85

// Init implements Algorithm.
func (p *PageRank) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	if ctx.Degrees == nil {
		return fmt.Errorf("pagerank: graph has no degree data (convert with Degrees enabled)")
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("pagerank: %d iterations", p.Iterations)
	}
	p.ctx = ctx
	n := int(ctx.NumVertices)
	p.rank = make([]float64, n)
	p.next = make([]uint64, n)
	p.share = make([]float64, n)
	// One private accumulator slab per engine worker: the chunked path
	// adds rank shares without any atomics and AfterIteration reduces the
	// slabs once (BigSparse-style merge-reduce).
	p.nextW = make([][]float64, ctx.Workers)
	for w := range p.nextW {
		p.nextW[w] = make([]float64, n)
	}
	inv := 1.0 / float64(n)
	for i := range p.rank {
		p.rank[i] = inv
	}
	return nil
}

// Ranks returns the rank vector after the run.
func (p *PageRank) Ranks() []float64 { return p.rank }

// BeforeIteration implements Algorithm: compute every vertex's outgoing
// share rank/degree (cached so the per-edge work is one load and one
// atomic add) and the dangling mass.
func (p *PageRank) BeforeIteration(int) {
	deg := p.ctx.Degrees
	p.dangling = 0
	for v := range p.share {
		d := deg.Degree(uint32(v))
		if d == 0 {
			p.dangling += p.rank[v]
			p.share[v] = 0
			continue
		}
		p.share[v] = p.rank[v] / float64(d)
	}
	for i := range p.next {
		p.next[i] = 0
	}
	for _, slab := range p.nextW {
		for i := range slab {
			slab[i] = 0
		}
	}
}

// ProcessTile implements Algorithm.
func (p *PageRank) ProcessTile(row, col uint32, data []byte) {
	share := p.share
	next := p.next
	both := p.ctx.Half
	if p.ctx.Codec == tile.CodecV3 {
		rb, _ := p.ctx.Layout.VertexRange(row)
		cb, _ := p.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			atomicAddFloat64(&next[d], share[s])
			if both && s != d {
				atomicAddFloat64(&next[s], share[d])
			}
		})
		return
	}
	if p.ctx.SNB {
		rb, _ := p.ctx.Layout.VertexRange(row)
		cb, _ := p.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			s, d := rb+uint32(so), cb+uint32(do)
			atomicAddFloat64(&next[d], share[s])
			if both && s != d {
				atomicAddFloat64(&next[s], share[d])
			}
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		atomicAddFloat64(&next[d], share[s])
		if both && s != d {
			atomicAddFloat64(&next[s], share[d])
		}
	}
}

// ProcessTileChunk implements ChunkedAlgorithm: identical edge-visiting
// order to ProcessTile, but contributions accumulate in the worker's
// private slab — the hot path has no atomics at all. The slabs are
// reduced once in AfterIteration.
func (p *PageRank) ProcessTileChunk(worker int, row, col uint32, data []byte) {
	share := p.share
	next := p.nextW[worker]
	both := p.ctx.Half
	if p.ctx.Codec == tile.CodecV3 {
		rb, _ := p.ctx.Layout.VertexRange(row)
		cb, _ := p.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			next[d] += share[s]
			if both && s != d {
				next[s] += share[d]
			}
		})
		return
	}
	if p.ctx.SNB {
		rb, _ := p.ctx.Layout.VertexRange(row)
		cb, _ := p.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			s, d := rb+uint32(so), cb+uint32(do)
			next[d] += share[s]
			if both && s != d {
				next[s] += share[d]
			}
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		next[d] += share[s]
		if both && s != d {
			next[s] += share[d]
		}
	}
}

// AfterIteration implements Algorithm: reduce the per-worker slabs, apply
// damping and the dangling redistribution, measure the L1 delta.
func (p *PageRank) AfterIteration(iter int) bool {
	n := float64(len(p.rank))
	base := (1-damping)/n + damping*p.dangling/n
	delta := 0.0
	for v := range p.rank {
		sum := math.Float64frombits(atomic.LoadUint64(&p.next[v]))
		for _, slab := range p.nextW {
			sum += slab[v]
		}
		nv := base + damping*sum
		delta += math.Abs(nv - p.rank[v])
		p.rank[v] = nv
	}
	p.delta = delta
	if p.Epsilon > 0 && delta < p.Epsilon {
		return true
	}
	return iter+1 >= p.Iterations
}

// Delta returns the L1 rank change of the last iteration.
func (p *PageRank) Delta() float64 { return p.delta }

// NeedTileThisIter implements Algorithm: PageRank streams the whole graph
// every iteration.
func (p *PageRank) NeedTileThisIter(uint32, uint32) bool { return true }

// NeedTileNextIter implements Algorithm: "for PageRank, all of the graph
// data would be utilized for the next iteration" (§III Observation 3).
func (p *PageRank) NeedTileNextIter(uint32, uint32) bool { return true }

// MetadataBytes implements Algorithm: rank + accumulator + share arrays,
// the per-worker slabs, plus the degree structure.
func (p *PageRank) MetadataBytes() int64 {
	b := int64(len(p.rank))*8 + int64(len(p.next))*8 + int64(len(p.share))*8
	for _, slab := range p.nextW {
		b += int64(len(slab)) * 8
	}
	if p.ctx != nil && p.ctx.Degrees != nil {
		b += p.ctx.Degrees.SizeBytes()
	}
	return b
}

package algo

import (
	"fmt"
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/tile"
)

// AsyncBFS is the asynchronous (label-correcting) BFS variant the paper
// cites (§II-B, Pearce et al. [26]): instead of expanding one frontier
// level per pass, every pass relaxes depth[d] = min(depth[d], depth[s]+1)
// over all tuples, letting depths propagate several hops within a single
// pass (tiles later in disk order see the updates of earlier tiles).
// The algorithm converges to exactly the level-synchronous BFS depths in
// far fewer iterations — the trade the paper describes for semi-external
// engines, where a full pass over the graph is the unit of I/O cost.
//
// Depths use int32 with unreached encoded as MaxInt32 internally (so
// min-relaxation works) and -1 in the public result.
type AsyncBFS struct {
	Root uint32

	ctx     *Context
	depth   []int32
	changed atomic.Int64
	curRow  *bitset
	nextRow *bitset
	iter0   bool
}

const unreachedDepth = int32(1<<31 - 1)

// NewAsyncBFS returns an asynchronous BFS kernel rooted at root.
func NewAsyncBFS(root uint32) *AsyncBFS { return &AsyncBFS{Root: root} }

// Name implements Algorithm.
func (b *AsyncBFS) Name() string { return "async-bfs" }

// Init implements Algorithm.
func (b *AsyncBFS) Init(ctx *Context) error {
	if err := ctx.validate(); err != nil {
		return err
	}
	if b.Root >= ctx.NumVertices {
		return fmt.Errorf("async-bfs: root %d outside vertex space %d", b.Root, ctx.NumVertices)
	}
	b.ctx = ctx
	b.depth = make([]int32, ctx.NumVertices)
	for i := range b.depth {
		b.depth[i] = unreachedDepth
	}
	b.depth[b.Root] = 0
	b.curRow = newBitset(ctx.Layout.P)
	b.nextRow = newBitset(ctx.Layout.P)
	b.curRow.Set(ctx.Layout.TileOf(b.Root))
	b.iter0 = true
	return nil
}

// Depths returns the result with the package's usual -1-for-unreached
// convention.
func (b *AsyncBFS) Depths() []int32 {
	out := make([]int32, len(b.depth))
	for i, d := range b.depth {
		if d == unreachedDepth {
			out[i] = -1
		} else {
			out[i] = d
		}
	}
	return out
}

// BeforeIteration implements Algorithm.
func (b *AsyncBFS) BeforeIteration(iter int) {
	b.changed.Store(0)
	b.iter0 = iter == 0
}

// ProcessTile implements Algorithm.
func (b *AsyncBFS) ProcessTile(row, col uint32, data []byte) {
	if b.ctx.Codec == tile.CodecV3 {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		_ = tile.DecodeV3(data, rb, cb, func(s, d uint32) {
			b.relax(s, d, row, col)
		})
		return
	}
	if b.ctx.SNB {
		rb, _ := b.ctx.Layout.VertexRange(row)
		cb, _ := b.ctx.Layout.VertexRange(col)
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(data[i:])
			b.relax(rb+uint32(so), cb+uint32(do), row, col)
		}
		return
	}
	for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
		s, d := tile.GetRaw(data[i:])
		b.relax(s, d, row, col)
	}
}

func (b *AsyncBFS) relax(s, d uint32, row, col uint32) {
	ds := atomic.LoadInt32(&b.depth[s])
	dd := atomic.LoadInt32(&b.depth[d])
	if ds != unreachedDepth && ds+1 < dd {
		if atomicMinInt32(&b.depth[d], ds+1) {
			b.nextRow.Set(col)
			b.changed.Add(1)
		}
		dd = atomic.LoadInt32(&b.depth[d])
	}
	// The reverse direction applies under symmetry storage, and also for
	// the forward stream of directed graphs it must NOT apply (edges are
	// one-way).
	if b.ctx.Half && dd != unreachedDepth && dd+1 < ds {
		if atomicMinInt32(&b.depth[s], dd+1) {
			b.nextRow.Set(row)
			b.changed.Add(1)
		}
	}
}

// atomicMinInt32 lowers *p to v if smaller; reports whether it changed.
func atomicMinInt32(p *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(p, old, v) {
			return true
		}
	}
}

// AfterIteration implements Algorithm.
func (b *AsyncBFS) AfterIteration(int) bool {
	done := b.changed.Load() == 0
	b.curRow, b.nextRow = b.nextRow, b.curRow
	b.nextRow.Clear()
	b.iter0 = false
	return done
}

// NeedTileThisIter implements Algorithm. The first pass must see every
// tile (depths can propagate many hops in one pass, so any tile may have
// work); afterwards only tiles whose ranges saw changes.
func (b *AsyncBFS) NeedTileThisIter(row, col uint32) bool {
	if b.iter0 {
		return true
	}
	if b.curRow.Has(row) {
		return true
	}
	if b.ctx.Half {
		return b.curRow.Has(col)
	}
	// Directed: a change in the destination range can enable new forward
	// relaxations from that range's vertices as sources, which is the
	// row axis — but also d-side improvements matter when d is a source
	// elsewhere. Tiles are keyed by source range (row), so col changes
	// only matter for the mirrored direction, which directed graphs do
	// not process.
	return false
}

// NeedTileNextIter implements Algorithm.
func (b *AsyncBFS) NeedTileNextIter(row, col uint32) bool {
	if b.nextRow.Has(row) {
		return true
	}
	return b.ctx.Half && b.nextRow.Has(col)
}

// MetadataBytes implements Algorithm.
func (b *AsyncBFS) MetadataBytes() int64 {
	return int64(len(b.depth))*4 + b.curRow.SizeBytes() + b.nextRow.SizeBytes()
}

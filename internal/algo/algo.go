// Package algo implements the three graph algorithms of the paper's
// evaluation (§II-B) as tile kernels: breadth-first search, PageRank and
// weakly connected components. Each algorithm exposes the metadata hooks
// the engine needs for selective fetching (§V-B) and proactive caching
// (§VI-C): which tiles it needs this iteration and which it predicts it
// will need next iteration.
package algo

import (
	"fmt"

	"github.com/gwu-systems/gstore/internal/grid"
	"github.com/gwu-systems/gstore/internal/tile"
)

// Context is what the engine hands an algorithm at initialization.
type Context struct {
	NumVertices uint32
	Layout      *grid.Layout
	Directed    bool
	// Half reports upper-triangle (symmetry) storage: kernels must then
	// process every tuple in both directions (Algorithm 1 in the paper).
	Half bool
	// SNB reports the tuple encoding of the data handed to ProcessTile.
	// Retained for the fixed-width fast paths; Codec is authoritative.
	SNB bool
	// Codec is the tuple codec of the data handed to ProcessTile /
	// ProcessTileChunk. Kernels keep inline SNB/raw decode loops for the
	// fixed-width codecs and fall back to the closure-based block
	// decoder for CodecV3.
	Codec tile.Codec
	// Degrees supplies vertex degrees; nil unless the graph was converted
	// with degree output. PageRank requires it.
	Degrees tile.DegreeSource
	// Workers is the number of engine worker goroutines that will call
	// ProcessTileChunk, each with a stable ID in [0, Workers). Kernels
	// implementing ChunkedAlgorithm size their per-worker state from it.
	// Zero means the caller only uses ProcessTile (in-memory mode, tests).
	Workers int
}

func (c *Context) validate() error {
	if c.NumVertices == 0 || c.Layout == nil {
		return fmt.Errorf("algo: incomplete context")
	}
	return nil
}

// codec reconciles the Codec and legacy SNB fields: contexts built
// without an explicit Codec (zero value CodecSNB) defer to the SNB flag
// for the snb/raw choice, so old constructors keep working.
func (c *Context) codec() tile.Codec {
	if c.Codec == tile.CodecV3 {
		return tile.CodecV3
	}
	if c.SNB {
		return tile.CodecSNB
	}
	return tile.CodecRaw
}

// Algorithm is the engine-facing interface of a tile kernel.
//
// The engine guarantees: Init once; then for each iteration a
// BeforeIteration call, any number of concurrent ProcessTile calls (from
// multiple goroutines), then one AfterIteration call. NeedTileThisIter is
// only called between AfterIteration and the next iteration's processing;
// NeedTileNextIter may be called concurrently with ProcessTile (it reads
// partially accumulated next-iteration metadata, which is exactly the
// paper's "partial information" caching, §VI-C Rule 2).
type Algorithm interface {
	// Name is a short identifier ("bfs", "pagerank", "wcc").
	Name() string
	// Init allocates algorithmic metadata.
	Init(ctx *Context) error
	// BeforeIteration prepares iteration iter (0-based).
	BeforeIteration(iter int)
	// ProcessTile consumes the tuples of tile (row, col). data holds
	// whole tuples in the encoding announced by Context.SNB. Safe for
	// concurrent invocation on distinct tiles.
	ProcessTile(row, col uint32, data []byte)
	// AfterIteration finishes iteration iter and reports convergence.
	AfterIteration(iter int) (done bool)
	// NeedTileThisIter reports whether tile (row, col) must be processed
	// in the upcoming iteration (selective fetching).
	NeedTileThisIter(row, col uint32) bool
	// NeedTileNextIter predicts whether the tile will be needed in the
	// following iteration (proactive caching). May be conservative.
	NeedTileNextIter(row, col uint32) bool
	// MetadataBytes reports the memory the algorithm's metadata occupies
	// (the paper's Table III memory accounting).
	MetadataBytes() int64
}

// ChunkedAlgorithm is the optional contention-free extension of
// Algorithm. Engines that partition tiles into tuple-aligned chunks call
// ProcessTileChunk instead of ProcessTile, handing every call a stable
// worker ID so the kernel can accumulate into per-worker state (FlashGraph
// per-thread partitioning; BigSparse merge-reduce) and batch shared-metadata
// updates per chunk instead of per edge.
//
// Contract: a chunk is a whole number of tuples from a single tile
// (row, col); the union of a tile's chunks is exactly its data; chunks of
// one tile may be processed concurrently by different workers. Two calls
// with the same worker ID never run concurrently. Reduction of per-worker
// state happens in AfterIteration, after every chunk of the iteration is
// done.
type ChunkedAlgorithm interface {
	Algorithm
	// ProcessTileChunk consumes one tuple-aligned slice of tile
	// (row, col)'s data on behalf of worker (0 <= worker <
	// Context.Workers). Safe for concurrent invocation with distinct
	// worker IDs, including on chunks of the same tile.
	ProcessTileChunk(worker int, row, col uint32, data []byte)
}

// decodeLoop iterates tuples of a tile without a closure per edge for the
// fixed-width codecs. Kernels inline their own loops for the hot path;
// this helper is used by tests and non-critical paths. V3 data always
// goes through the closure-based block decoder (the engine verified the
// tile's CRC before dispatch, so decode errors are ignored here — fsck
// and Verify surface them with context).
func decodeLoop(c tile.Codec, rowBase, colBase uint32, data []byte, fn func(src, dst uint32)) {
	switch c {
	case tile.CodecSNB:
		for i := 0; i+tile.SNBTupleBytes <= len(data); i += tile.SNBTupleBytes {
			s, d := tile.GetSNB(data[i:])
			fn(rowBase+uint32(s), colBase+uint32(d))
		}
	case tile.CodecV3:
		_ = tile.DecodeV3(data, rowBase, colBase, fn)
	default:
		for i := 0; i+tile.RawTupleBytes <= len(data); i += tile.RawTupleBytes {
			s, d := tile.GetRaw(data[i:])
			fn(s, d)
		}
	}
}

package algo

import (
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

func TestAsyncBFSMatchesReference(t *testing.T) {
	el := kronEL(t, 9, 8, 21)
	mg := load(t, el, defaultOpts())
	b := NewAsyncBFS(0)
	mg.run(t, b, true, 1000)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestAsyncBFSDirected(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 8, 22))
	if err != nil {
		t.Fatal(err)
	}
	mg := load(t, el, defaultOpts())
	b := NewAsyncBFS(0)
	mg.run(t, b, true, 1000)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

// The asynchronous variant's selling point (§II-B, [26]): it needs fewer
// full passes than the level count of the graph.
func TestAsyncBFSFewerIterations(t *testing.T) {
	// A long path: sync BFS needs ~n iterations, async collapses them
	// because depths propagate within a pass in disk order.
	n := uint32(256)
	el := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v+1 < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	mg := load(t, el, tile.ConvertOptions{TileBits: 4, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true})

	sync := NewBFS(0)
	syncIters := mg.run(t, sync, false, 10000)
	async := NewAsyncBFS(0)
	asyncIters := mg.run(t, async, false, 10000)
	if asyncIters*4 > syncIters {
		t.Fatalf("async took %d iterations vs sync %d; expected far fewer", asyncIters, syncIters)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range async.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestAsyncBFSRootValidation(t *testing.T) {
	el := kronEL(t, 6, 4, 23)
	mg := load(t, el, defaultOpts())
	b := NewAsyncBFS(1 << 30)
	if err := b.Init(mg.ctx); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

// Property: async BFS equals sync BFS on random graphs and roots.
func TestQuickAsyncEqualsSync(t *testing.T) {
	f := func(seed uint64, rawRoot uint16) bool {
		el, err := gen.Generate(gen.Graph500Config(7, 4, seed))
		if err != nil {
			return false
		}
		g, err := tile.Convert(el, t.TempDir(), "q", defaultOpts())
		if err != nil {
			return false
		}
		defer g.Close()
		ctx := &Context{
			NumVertices: g.Meta.NumVertices, Layout: g.Layout,
			Directed: g.Meta.Directed, Half: g.Meta.Half, SNB: g.Meta.SNB,
		}
		var tiles [][]byte
		for i := 0; i < g.Layout.NumTiles(); i++ {
			data, err := g.ReadTile(i, nil)
			if err != nil {
				return false
			}
			tiles = append(tiles, append([]byte(nil), data...))
		}
		root := uint32(rawRoot) % el.NumVertices
		runKernel := func(a Algorithm) bool {
			if err := a.Init(ctx); err != nil {
				return false
			}
			for iter := 0; iter < 1<<16; iter++ {
				a.BeforeIteration(iter)
				for i, data := range tiles {
					co := g.Layout.CoordAt(i)
					if !a.NeedTileThisIter(co.Row, co.Col) {
						continue
					}
					a.ProcessTile(co.Row, co.Col, data)
				}
				if a.AfterIteration(iter) {
					return true
				}
			}
			return false
		}
		s := NewBFS(root)
		a := NewAsyncBFS(root)
		if !runKernel(s) || !runKernel(a) {
			return false
		}
		sd, ad := s.Depths(), a.Depths()
		for v := range sd {
			if sd[v] != ad[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package algo

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

func sccOpts() tile.ConvertOptions {
	return tile.ConvertOptions{TileBits: 5, GroupQ: 2, SNB: true, Degrees: true}
}

func runSCC(t *testing.T, el *graph.EdgeList) []uint32 {
	t.Helper()
	mg := load(t, el, sccOpts())
	s := NewSCC()
	mg.run(t, s, true, 100000)
	return s.Labels()
}

func TestSCCRejectsUndirected(t *testing.T) {
	el := kronEL(t, 6, 4, 41)
	mg := load(t, el, defaultOpts())
	if err := NewSCC().Init(mg.ctx); err == nil {
		t.Fatal("undirected graph accepted")
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 is one SCC; 3 hangs off it.
	el := &graph.EdgeList{NumVertices: 4, Directed: true, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	}}
	labels := runSCC(t, el)
	want := []uint32{0, 0, 0, 3}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// Two 2-cycles bridged one-way: distinct SCCs.
	el := &graph.EdgeList{NumVertices: 4, Directed: true, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 1, Dst: 2},
	}}
	labels := runSCC(t, el)
	want := []uint32{0, 0, 2, 2}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

func TestSCCDAGIsAllSingletons(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 8, Directed: true}
	for v := uint32(0); v+1 < 8; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	labels := runSCC(t, el)
	for v, l := range labels {
		if l != uint32(v) {
			t.Fatalf("DAG vertex %d labeled %d", v, l)
		}
	}
}

func TestSCCMatchesReferenceRMAT(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 4, 42))
	if err != nil {
		t.Fatal(err)
	}
	labels := runSCC(t, el)
	want := graph.RefSCC(el)
	for v := range labels {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestRefSCCBasics(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 5, Directed: true, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 2},
	}}
	want := []graph.VertexID{0, 0, 2, 2, 2}
	if got := graph.RefSCC(el); !reflect.DeepEqual(got, want) {
		t.Fatalf("RefSCC = %v, want %v", got, want)
	}
}

// Property: the tile SCC kernel equals Tarjan on random directed graphs.
func TestQuickSCCEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := gen.TwitterLikeConfig(7, 3, seed)
		el, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		g, err := tile.Convert(el, t.TempDir(), "q", sccOpts())
		if err != nil {
			return false
		}
		defer g.Close()
		ctx := &Context{
			NumVertices: g.Meta.NumVertices, Layout: g.Layout,
			Directed: g.Meta.Directed, Half: g.Meta.Half, SNB: g.Meta.SNB,
		}
		var tiles [][]byte
		for i := 0; i < g.Layout.NumTiles(); i++ {
			data, err := g.ReadTile(i, nil)
			if err != nil {
				return false
			}
			tiles = append(tiles, append([]byte(nil), data...))
		}
		s := NewSCC()
		if err := s.Init(ctx); err != nil {
			return false
		}
		for iter := 0; iter < 1<<20; iter++ {
			s.BeforeIteration(iter)
			for i, data := range tiles {
				co := g.Layout.CoordAt(i)
				s.ProcessTile(co.Row, co.Col, data)
			}
			if s.AfterIteration(iter) {
				break
			}
		}
		want := graph.RefSCC(el)
		got := s.Labels()
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Tarjan's SCC refines WCC — vertices in one SCC are in one WCC.
func TestQuickSCCRefinesWCC(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%48 + 2
		el := &graph.EdgeList{NumVertices: n, Directed: true}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				graph.Edge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n})
		}
		scc := graph.RefSCC(el)
		wcc := graph.RefWCC(el)
		for v := range scc {
			if wcc[scc[v]] != wcc[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package tile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Format v2 integrity layer. A v2 graph carries three levels of
// protection:
//
//  1. Per-tile CRC32C checksums in a <name>.crc sidecar (one little-endian
//     uint32 per stored tile, in disk order). The engine verifies each
//     fetched tile against its entry on the hot read path; gstore fsck
//     verifies all of them offline and names the corrupt tile(s).
//  2. A manifest inside <name>.meta recording every section's byte length
//     and whole-file CRC32C digest, so torn or substituted section files
//     are rejected at Open (start/crc) or first use (deg) without reading
//     the (potentially huge) tiles file.
//  3. A checksum trailer on the meta file itself — a final
//     "#crc32c:XXXXXXXX" line over the preceding JSON bytes — making the
//     manifest tamper-evident: a flipped bit anywhere in the header is
//     detected before any of its fields are trusted.

// castagnoli is the CRC32C table; Castagnoli is the SSE4.2-accelerated
// polynomial used by ext4, btrfs and iSCSI, which Go dispatches to the
// hardware instruction on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C digest of data — the per-tile checksum of
// format v2.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// SectionSum records one section file's length and whole-file CRC32C
// digest in the v2 manifest.
type SectionSum struct {
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

func sumBytes(data []byte) SectionSum {
	return SectionSum{Bytes: int64(len(data)), CRC32C: Checksum(data)}
}

// check compares an observed sum against the manifest entry.
func (s SectionSum) check(name string, got SectionSum) error {
	if got.Bytes != s.Bytes {
		return fmt.Errorf("tile: %s is %d bytes, manifest says %d", name, got.Bytes, s.Bytes)
	}
	if got.CRC32C != s.CRC32C {
		return fmt.Errorf("tile: %s crc32c %08x does not match manifest %08x (corrupt file)",
			name, got.CRC32C, s.CRC32C)
	}
	return nil
}

// fileSum computes a SectionSum by streaming path.
func fileSum(path string) (SectionSum, error) {
	f, err := os.Open(path)
	if err != nil {
		return SectionSum{}, err
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return SectionSum{}, err
	}
	return SectionSum{Bytes: n, CRC32C: h.Sum32()}, nil
}

// Manifest is the v2 whole-file digest table embedded in the meta header.
type Manifest struct {
	Start   SectionSum  `json:"start"`
	Tiles   SectionSum  `json:"tiles"`
	TileCRC SectionSum  `json:"tile_crc"`
	Deg     *SectionSum `json:"deg,omitempty"`
}

// ChecksumError reports a tile whose data does not match its recorded
// CRC32C checksum.
type ChecksumError struct {
	Tile int
	Want uint32
	Got  uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("tile: tile %d crc32c %08x, want %08x (corrupt data)",
		e.Tile, e.Got, e.Want)
}

// Tile-CRC sidecar codec: one little-endian uint32 per stored tile.

func encodeTileCRCs(crcs []uint32) []byte {
	buf := make([]byte, len(crcs)*4)
	for i, c := range crcs {
		binary.LittleEndian.PutUint32(buf[i*4:], c)
	}
	return buf
}

func decodeTileCRCs(data []byte, numTiles int) ([]uint32, error) {
	if len(data) != numTiles*4 {
		return nil, fmt.Errorf("tile: checksum file is %d bytes, want %d (%d tiles)",
			len(data), numTiles*4, numTiles)
	}
	crcs := make([]uint32, numTiles)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return crcs, nil
}

// tileChecksums computes the per-tile CRC32C array over in-memory tiles
// data described by the start-edge prefix sums.
func tileChecksums(data []byte, start []int64, tupleBytes int64) []uint32 {
	crcs := make([]uint32, len(start)-1)
	for i := range crcs {
		crcs[i] = Checksum(data[start[i]*tupleBytes : start[i+1]*tupleBytes])
	}
	return crcs
}

// tileChecksumsAt is the variable-width variant: tile extents come from
// byte-offset prefix sums (v3 graphs) instead of tuple counts.
func tileChecksumsAt(data []byte, byteOff []int64) []uint32 {
	crcs := make([]uint32, len(byteOff)-1)
	for i := range crcs {
		crcs[i] = Checksum(data[byteOff[i]:byteOff[i+1]])
	}
	return crcs
}

// Meta trailer: the last line of a v2 meta file is "#crc32c:XXXXXXXX",
// the digest of every preceding byte. v1 metas have no trailer.

var metaTrailerPrefix = []byte("#crc32c:")

// signMeta appends the checksum trailer to a serialized meta payload.
func signMeta(payload []byte) []byte {
	return append(payload, []byte(fmt.Sprintf("%s%08x\n", metaTrailerPrefix, Checksum(payload)))...)
}

// splitMetaTrailer separates a meta file into its JSON payload and
// trailer checksum. The trailer must be the file's exact final line —
// "#crc32c:" plus 8 hex digits plus "\n" — so a byte flipped anywhere
// inside it (including the terminator) demotes the file to "no
// trailer", which a v2 reader rejects. ok is false when no intact
// trailer is present.
func splitMetaTrailer(data []byte) (payload []byte, sum uint32, ok bool) {
	tlen := len(metaTrailerPrefix) + 9 // 8 hex digits + newline
	idx := len(data) - tlen
	if idx < 0 || (idx > 0 && data[idx-1] != '\n') || data[len(data)-1] != '\n' ||
		!bytes.HasPrefix(data[idx:], metaTrailerPrefix) {
		return data, 0, false
	}
	hex := data[idx+len(metaTrailerPrefix) : len(data)-1]
	var s uint32
	for _, c := range hex {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return data, 0, false
		}
		s = s<<4 | d
	}
	return data[:idx], s, true
}

// Package tile implements G-Store's space-efficient tile storage format
// (§IV of the paper): the smallest-number-of-bits (SNB) tuple encoding,
// the start-edge index, the compact degree encoding, and the two-pass
// converter from edge lists.
//
// A converted graph is a directory of files sharing a base name:
//
//	<name>.meta  — JSON header (vertex/edge counts, tile bits, flags, the
//	               v2 section manifest) followed by a checksum trailer
//	<name>.start — int64 per stored tile: prefix sums of edge counts,
//	               NumTiles+1 entries (the paper's start-edge file)
//	<name>.tiles — all tile tuples concatenated in physical-group disk
//	               order (§V-A)
//	<name>.crc   — format v2: one CRC32C per stored tile, disk order
//	<name>.deg   — optional degree array in the 2-byte escape encoding
//	               of §IV-C
//
// All converter outputs are written crash-safely (tmp file + fsync +
// atomic rename, meta last), so an interrupted conversion leaves either a
// fully valid graph or no graph — never a torn one. Format v1 graphs
// (no .crc, no manifest, no meta trailer) still open read-compatibly with
// checksum verification disabled and a logged warning.
package tile

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/fsutil"
)

// Magic identifies G-Store metadata files.
const Magic = "GSTORE-TILES"

// Version is the current fixed-width format version: v2 adds per-tile
// CRC32C checksums, the section manifest, and the meta checksum trailer.
const Version = 2

// VersionV1 is the legacy checksum-free format, still readable.
const VersionV1 = 1

// VersionV3 is the compressed-tile format: v2's integrity layer plus the
// sorted delta+varint block codec for tile data (codec "v3") and a
// start-edge file extended with per-tile byte offsets. Readers without v3
// support reject these graphs at Open instead of misreading them.
const VersionV3 = 3

// SNBTupleBytes is the on-disk tuple size with the SNB representation:
// two 16-bit in-tile offsets (§IV-B).
const SNBTupleBytes = 4

// RawTupleBytes is the tuple size without SNB: two full 32-bit IDs. It is
// used by the "symmetry only" ablation configuration of Figure 10.
const RawTupleBytes = 8

// Meta is the JSON header of a converted graph.
type Meta struct {
	Magic       string `json:"magic"`
	Version     int    `json:"version"`
	Name        string `json:"name"`
	NumVertices uint32 `json:"num_vertices"`
	// NumStored is the number of stored tuples; for a half-stored
	// undirected graph this is the number of canonical edges.
	NumStored int64 `json:"num_stored"`
	// NumOriginal is the edge count of the input edge list (an undirected
	// input counted once per canonical tuple).
	NumOriginal int64  `json:"num_original"`
	TileBits    uint   `json:"tile_bits"`
	GroupQ      uint32 `json:"group_q"`
	Directed    bool   `json:"directed"`
	// Half is true when only the upper triangle is stored (undirected
	// symmetry saving, §IV-A).
	Half bool `json:"half"`
	// SNB is true when tuples use the 2-byte-per-endpoint encoding.
	// Retained alongside Codec for v1/v2 compatibility; TupleCodec
	// resolves the two.
	SNB bool `json:"snb"`
	// Codec names the tuple encoding: "" (derive from SNB), "snb",
	// "raw", or "v3" (sorted delta+varint blocks; requires Version 3).
	Codec string `json:"codec,omitempty"`
	// DegreeFormat is "", "compact" (§IV-C) or "plain".
	DegreeFormat string `json:"degree_format,omitempty"`
	// Manifest records each section file's byte length and whole-file
	// CRC32C digest. Required for version >= 2; absent in v1 headers.
	Manifest *Manifest `json:"manifest,omitempty"`
}

// TupleBytes returns the per-tuple on-disk size for fixed-width codecs,
// and 0 for the variable-width v3 codec (whose byte extents come from the
// extended start-edge index instead).
func (m *Meta) TupleBytes() int64 { return m.TupleCodec().TupleBytes() }

// TupleCodec resolves the header's codec fields into a Codec value. For
// v1/v2 headers (empty Codec string) the legacy SNB flag decides between
// SNB and raw.
func (m *Meta) TupleCodec() Codec {
	if m.Codec == "" {
		if m.SNB {
			return CodecSNB
		}
		return CodecRaw
	}
	c, err := ParseCodec(m.Codec)
	if err != nil {
		// Validate rejects unknown codec strings at read time; fall back
		// to the SNB-flag resolution for unvalidated Metas.
		if m.SNB {
			return CodecSNB
		}
		return CodecRaw
	}
	return c
}

// Validate checks internal consistency of the header.
func (m *Meta) Validate() error {
	switch {
	case m.Magic != Magic:
		return fmt.Errorf("tile: bad magic %q", m.Magic)
	case m.Version != Version && m.Version != VersionV1 && m.Version != VersionV3:
		return fmt.Errorf("tile: unsupported version %d (this build reads v%d, v%d and v%d)",
			m.Version, VersionV1, Version, VersionV3)
	case m.Version >= Version && m.Manifest == nil:
		return fmt.Errorf("tile: v%d header without a section manifest", m.Version)
	case m.NumVertices == 0:
		return fmt.Errorf("tile: zero vertices")
	case m.TileBits == 0 || m.TileBits > 16:
		return fmt.Errorf("tile: tile bits %d out of range", m.TileBits)
	case m.Directed && m.Half:
		return fmt.Errorf("tile: half storage is only defined for undirected graphs")
	case m.NumStored < 0 || m.NumOriginal < 0:
		return fmt.Errorf("tile: negative edge count")
	}
	c, err := ParseCodec(m.Codec)
	if err != nil {
		return err
	}
	if m.Codec != "" && c != CodecV3 && c.SNB() != m.SNB {
		return fmt.Errorf("tile: codec %q contradicts snb=%v", m.Codec, m.SNB)
	}
	if (c == CodecV3) != (m.Version == VersionV3) {
		return fmt.Errorf("tile: format v%d and codec %q must go together (header has version %d, codec %q)",
			VersionV3, CodecV3, m.Version, m.Codec)
	}
	return nil
}

// Paths of the individual files for a graph stored at base path p (without
// extension).
func metaPath(p string) string  { return p + ".meta" }
func startPath(p string) string { return p + ".start" }
func tilesPath(p string) string { return p + ".tiles" }
func crcPath(p string) string   { return p + ".crc" }
func degPath(p string) string   { return p + ".deg" }

// writeMeta serializes the header, appends the v2 checksum trailer, and
// writes it atomically. The meta file is the commit point of a
// conversion: it is written last, so its presence implies every section
// it names was already durably written.
func writeMeta(fsys faultfs.FS, p string, m *Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if m.Version >= Version {
		data = signMeta(data)
	}
	return fsutil.WriteFileFS(fsys, metaPath(p), data, 0o644)
}

func readMeta(p string) (*Meta, error) {
	data, err := os.ReadFile(metaPath(p))
	if err != nil {
		return nil, err
	}
	payload, sum, signed := splitMetaTrailer(data)
	if signed {
		if got := Checksum(payload); got != sum {
			return nil, fmt.Errorf("tile: meta %s checksum %08x does not match trailer %08x (corrupt header)",
				metaPath(p), got, sum)
		}
	}
	var m Meta
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("tile: corrupt meta %s: %w", metaPath(p), err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Version >= Version && !signed {
		return nil, fmt.Errorf("tile: meta %s is v%d but has no checksum trailer (truncated header)",
			metaPath(p), m.Version)
	}
	return &m, nil
}

// warnf lets tests capture the v1 compatibility warning; it defaults to
// the standard logger.
var warnf = log.Printf

// BasePath joins dir and name into the base path used by Create/Open.
func BasePath(dir, name string) string { return filepath.Join(dir, name) }

package tile

import (
	"fmt"
)

// Verify checks a converted graph's on-disk invariants beyond what Open
// validates: every SNB tuple must lie inside its tile's vertex ranges,
// every raw tuple inside the tile's row/column ranges, the last tile must
// end exactly at the vertex space, and (when present) the degree file
// must agree with the tuples. It reads the whole tiles file once.
func Verify(g *Graph) error {
	layout := g.Layout
	n := g.Meta.NumVertices
	var deg []uint32
	if g.Meta.DegreeFormat != "" {
		deg = make([]uint32, n)
	}
	var buf []byte
	for i := 0; i < layout.NumTiles(); i++ {
		data, err := g.ReadTile(i, buf)
		if err != nil {
			return fmt.Errorf("tile: verify: %w", err)
		}
		buf = data
		co := layout.CoordAt(i)
		rLo, rHi := layout.VertexRange(co.Row)
		cLo, cHi := layout.VertexRange(co.Col)
		bad := -1
		idx := 0
		err = DecodeTuples(data, g.Meta.TupleCodec(), rLo, cLo, func(s, d uint32) {
			if bad >= 0 {
				idx++
				return
			}
			if s < rLo || s >= rHi || d < cLo || d >= cHi || s >= n || d >= n {
				bad = idx
			}
			if deg != nil && s < n && d < n {
				deg[s]++
				if !g.Meta.Directed && g.Meta.Half && s != d {
					deg[d]++
				}
			}
			idx++
		})
		if err != nil {
			return fmt.Errorf("tile: verify tile %d: %w", i, err)
		}
		if bad >= 0 {
			return fmt.Errorf("tile: verify: tile %d (row %d, col %d) tuple %d outside its ranges",
				i, co.Row, co.Col, bad)
		}
		if int64(idx) != g.TupleCount(i) {
			return fmt.Errorf("tile: verify: tile %d decodes to %d tuples, start-edge index says %d",
				i, idx, g.TupleCount(i))
		}
	}
	if deg != nil {
		src, err := g.Degrees()
		if err != nil {
			return fmt.Errorf("tile: verify: %w", err)
		}
		// Source-side counting reconstructs the degree array exactly for
		// every layout: half storage adds the mirrored endpoint, full
		// undirected storage already contains both directions, directed
		// storage counts out-edges.
		for v := uint32(0); v < n; v++ {
			if got := src.Degree(v); got != deg[v] {
				return fmt.Errorf("tile: verify: vertex %d degree file says %d, tuples say %d",
					v, got, deg[v])
			}
		}
	}
	return nil
}

// Stats summarizes tile occupancy (the measurements behind Figures 5
// and 7).
type Stats struct {
	Tiles        int
	EmptyTiles   int
	TilesUnder1K int
	Over100K     int
	MaxTuples    int64
	TotalTuples  int64
	// Groups summarizes physical groups: count and min/max tuple counts.
	Groups    int
	MinGroup  int64
	MaxGroup  int64
	DataBytes int64
}

// CollectStats computes occupancy statistics from the start-edge index
// (no tile data is read).
func CollectStats(g *Graph) Stats {
	st := Stats{Tiles: g.Layout.NumTiles(), DataBytes: g.DataBytes()}
	for i := 0; i < st.Tiles; i++ {
		c := g.TupleCount(i)
		st.TotalTuples += c
		switch {
		case c == 0:
			st.EmptyTiles++
		case c < 1000:
			st.TilesUnder1K++
		}
		if c > 100000 {
			st.Over100K++
		}
		if c > st.MaxTuples {
			st.MaxTuples = c
		}
	}
	ng := g.Layout.NumGroups()
	st.MinGroup = -1
	for gi := uint32(0); gi < ng; gi++ {
		for gj := uint32(0); gj < ng; gj++ {
			lo, hi := g.Layout.GroupRange(gi, gj)
			if hi <= lo {
				continue
			}
			var c int64
			for i := lo; i < hi; i++ {
				c += g.TupleCount(i)
			}
			st.Groups++
			if st.MinGroup < 0 || c < st.MinGroup {
				st.MinGroup = c
			}
			if c > st.MaxGroup {
				st.MaxGroup = c
			}
		}
	}
	if st.MinGroup < 0 {
		st.MinGroup = 0
	}
	return st
}

package tile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for every on-disk parser: corrupted files must produce
// errors, never panics or silent acceptance of inconsistent state.

func FuzzMetaParse(f *testing.F) {
	good, _ := json.Marshal(&Meta{
		Magic: Magic, Version: Version, Name: "x",
		NumVertices: 8, NumStored: 9, NumOriginal: 9,
		TileBits: 2, GroupQ: 1, Half: true, SNB: true,
	})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"GSTORE-TILES","version":1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "g")
		if err := os.WriteFile(p+".meta", data, 0o644); err != nil {
			t.Skip()
		}
		m, err := readMeta(p)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validated invariants.
		if m.Magic != Magic || (m.Version != Version && m.Version != VersionV1) ||
			m.NumVertices == 0 ||
			m.TileBits == 0 || m.TileBits > 16 || (m.Directed && m.Half) {
			t.Fatalf("invalid meta accepted: %+v", m)
		}
		// A v2 header may only be accepted with an intact manifest.
		if m.Version >= Version && m.Manifest == nil {
			t.Fatalf("v2 meta accepted without manifest: %+v", m)
		}
	})
}

func FuzzStartFile(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(make([]byte, 16), 1)
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, 1)
	f.Fuzz(func(t *testing.T, data []byte, numTiles int) {
		if numTiles < 0 || numTiles > 1024 {
			t.Skip()
		}
		dir := t.TempDir()
		p := filepath.Join(dir, "s")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		start, err := readStart(p, numTiles)
		if err != nil {
			return
		}
		if len(start) != numTiles+1 || start[0] != 0 {
			t.Fatalf("invalid start accepted: len=%d first=%d", len(start), start[0])
		}
		for i := 1; i < len(start); i++ {
			if start[i] < start[i-1] {
				t.Fatalf("non-monotonic start accepted at %d", i)
			}
		}
	})
}

func FuzzDegreeFile(f *testing.F) {
	tab, _ := EncodeDegrees([]uint32{1, 2, 70000, 3})
	f.Add(encodeDegreeFile(tab), 4, true)
	f.Add(encodePlainDegreeFile([]uint32{1, 2, 3}), 3, false)
	f.Add([]byte{}, 4, true)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 2, false)
	f.Fuzz(func(t *testing.T, data []byte, numVertices int, compact bool) {
		if numVertices < 0 || numVertices > 4096 {
			t.Skip()
		}
		format := "plain"
		if compact {
			format = "compact"
		}
		src, err := decodeDegreeFile(data, numVertices, format)
		if err != nil {
			return
		}
		// Accepted tables must answer every vertex without panicking.
		for v := 0; v < numVertices; v++ {
			_ = src.Degree(uint32(v))
		}
	})
}

func FuzzDecodeTuples(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, true)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{1}, true)
	f.Fuzz(func(t *testing.T, data []byte, snb bool) {
		n := 0
		err := DecodeTuples(data, snb, 64, 128, func(s, d uint32) { n++ })
		w := RawTupleBytes
		if snb {
			w = SNBTupleBytes
		}
		if err == nil && n != len(data)/w {
			t.Fatalf("decoded %d tuples from %d bytes", n, len(data))
		}
		if err != nil && len(data)%w == 0 {
			t.Fatalf("aligned data rejected: %v", err)
		}
	})
}

package tile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for every on-disk parser: corrupted files must produce
// errors, never panics or silent acceptance of inconsistent state.

func FuzzMetaParse(f *testing.F) {
	good, _ := json.Marshal(&Meta{
		Magic: Magic, Version: Version, Name: "x",
		NumVertices: 8, NumStored: 9, NumOriginal: 9,
		TileBits: 2, GroupQ: 1, Half: true, SNB: true,
	})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"GSTORE-TILES","version":1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "g")
		if err := os.WriteFile(p+".meta", data, 0o644); err != nil {
			t.Skip()
		}
		m, err := readMeta(p)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validated invariants.
		if m.Magic != Magic || (m.Version != Version && m.Version != VersionV1) ||
			m.NumVertices == 0 ||
			m.TileBits == 0 || m.TileBits > 16 || (m.Directed && m.Half) {
			t.Fatalf("invalid meta accepted: %+v", m)
		}
		// A v2 header may only be accepted with an intact manifest.
		if m.Version >= Version && m.Manifest == nil {
			t.Fatalf("v2 meta accepted without manifest: %+v", m)
		}
	})
}

func FuzzStartFile(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(make([]byte, 16), 1)
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, 1)
	f.Fuzz(func(t *testing.T, data []byte, numTiles int) {
		if numTiles < 0 || numTiles > 1024 {
			t.Skip()
		}
		dir := t.TempDir()
		p := filepath.Join(dir, "s")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		start, err := readStart(p, numTiles)
		if err != nil {
			return
		}
		if len(start) != numTiles+1 || start[0] != 0 {
			t.Fatalf("invalid start accepted: len=%d first=%d", len(start), start[0])
		}
		for i := 1; i < len(start); i++ {
			if start[i] < start[i-1] {
				t.Fatalf("non-monotonic start accepted at %d", i)
			}
		}
	})
}

func FuzzDegreeFile(f *testing.F) {
	tab, _ := EncodeDegrees([]uint32{1, 2, 70000, 3})
	f.Add(encodeDegreeFile(tab), 4, true)
	f.Add(encodePlainDegreeFile([]uint32{1, 2, 3}), 3, false)
	f.Add([]byte{}, 4, true)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 2, false)
	f.Fuzz(func(t *testing.T, data []byte, numVertices int, compact bool) {
		if numVertices < 0 || numVertices > 4096 {
			t.Skip()
		}
		format := "plain"
		if compact {
			format = "compact"
		}
		src, err := decodeDegreeFile(data, numVertices, format)
		if err != nil {
			return
		}
		// Accepted tables must answer every vertex without panicking.
		for v := 0; v < numVertices; v++ {
			_ = src.Degree(uint32(v))
		}
	})
}

func FuzzDecodeTuples(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(CodecSNB))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(CodecRaw))
	f.Add([]byte{1}, uint8(CodecSNB))
	f.Add(AppendV3(nil, []uint32{0, 1, 17, 300}, 12), uint8(CodecV3))
	f.Add([]byte{3, 1, 0}, uint8(CodecV3)) // truncated frame
	f.Fuzz(func(t *testing.T, data []byte, codec uint8) {
		c := Codec(codec % 3)
		n := 0
		err := DecodeTuples(data, c, 64, 128, func(s, d uint32) { n++ })
		switch c {
		case CodecV3:
			// Arbitrary bytes may or may not frame; either way no panic,
			// and acceptance must agree with the cheap framing walk.
			if (err == nil) != (ValidateV3Frames(data) == nil) {
				t.Fatalf("decode err=%v disagrees with ValidateV3Frames=%v",
					err, ValidateV3Frames(data))
			}
		default:
			w := int(c.TupleBytes())
			if err == nil && n != len(data)/w {
				t.Fatalf("decoded %d tuples from %d bytes", n, len(data))
			}
			if err != nil && len(data)%w == 0 {
				t.Fatalf("aligned data rejected: %v", err)
			}
		}
	})
}

// FuzzV3RoundTrip encodes arbitrary offset pairs at several tile widths
// and requires the decode to return exactly the sorted input.
func FuzzV3RoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3}, uint8(12))
	f.Add([]byte{9, 9}, uint8(4))
	f.Add([]byte{}, uint8(16))
	f.Fuzz(func(t *testing.T, raw []byte, bits uint8) {
		switch bits {
		case 4, 12, 16:
		default:
			t.Skip()
		}
		mask := uint32(1)<<bits - 1
		var keys []uint32
		for i := 0; i+2 <= len(raw); i += 2 {
			so := (uint32(raw[i]) * 0x9e37) & mask
			do := (uint32(raw[i+1]) * 0x85eb) & mask
			keys = append(keys, V3Key(so, do, uint(bits)))
		}
		want := append([]uint32(nil), keys...)
		data := AppendV3(nil, keys, uint(bits))
		if err := ValidateV3Frames(data); err != nil {
			t.Fatalf("encoder produced invalid framing: %v", err)
		}
		var got []uint32
		if err := DecodeV3(data, 0, 0, func(s, d uint32) {
			got = append(got, V3Key(s, d, uint(bits)))
		}); err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		sortU32(want)
		if len(got) != len(want) {
			t.Fatalf("round trip: %d tuples in, %d out", len(want), len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tuple %d: got key %#x want %#x", i, got[i], want[i])
			}
		}
		// Chunking must partition the data into whole blocks.
		views := SplitV3(data, 16)
		total := 0
		for _, v := range views {
			if err := ValidateV3Frames(v); err != nil {
				t.Fatalf("chunk not block-aligned: %v", err)
			}
			total += len(v)
		}
		if total != len(data) {
			t.Fatalf("chunks cover %d of %d bytes", total, len(data))
		}
	})
}

// FuzzV3Corrupt flips bytes in valid encodings: decode must either error
// or stay inside the field sanity bounds — never panic.
func FuzzV3Corrupt(f *testing.F) {
	seed := AppendV3(nil, []uint32{0, 5, 5, 1 << 20, 1<<24 | 9}, 12)
	f.Add(seed, 0, uint8(0xff))
	f.Add(seed, 1, uint8(0x80))
	f.Fuzz(func(t *testing.T, data []byte, pos int, xor uint8) {
		if len(data) == 0 || xor == 0 {
			t.Skip()
		}
		mut := append([]byte(nil), data...)
		mut[((pos%len(mut))+len(mut))%len(mut)] ^= xor
		_ = DecodeV3(mut, 0, 0, func(s, d uint32) {})
		_ = ValidateV3Frames(mut)
		_ = SplitV3(mut, 8)
	})
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package tile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/gwu-systems/gstore/internal/grid"
)

// Graph is a handle on a converted on-disk tiled graph.
type Graph struct {
	Meta   *Meta
	Layout *grid.Layout
	// Start holds, for every stored tile in disk order, the prefix sum of
	// tuple counts (NumTiles+1 entries). For fixed-width codecs tile i
	// occupies tuples [Start[i], Start[i+1]) of the tiles file.
	Start []int64
	// ByteOff holds per-tile byte-offset prefix sums (NumTiles+1
	// entries) for the variable-width v3 codec, whose tile extents
	// cannot be derived from tuple counts. Nil for v1/v2 graphs.
	ByteOff []int64

	base    string
	tiles   *os.File
	tileCRC []uint32 // per-tile CRC32C, disk order; nil for v1 graphs
}

// Open opens the graph stored at base path p (as produced by Convert).
//
// For v2 graphs every small section is verified against the manifest
// before use: the meta trailer, the start-edge file's length and digest,
// and the checksum sidecar's length and digest. The tiles file is only
// size-checked here — its contents are verified tile-by-tile on the read
// path (and exhaustively by Fsck). v1 graphs open with checksum
// verification disabled and a logged warning.
func Open(p string) (*Graph, error) {
	m, err := readMeta(p)
	if err != nil {
		return nil, err
	}
	half := !m.Directed && m.Half
	layout, err := grid.New(m.NumVertices, m.TileBits, m.GroupQ, half)
	if err != nil {
		return nil, err
	}
	nt := layout.NumTiles()

	sdata, err := os.ReadFile(startPath(p))
	if err != nil {
		return nil, err
	}
	var tileCRC []uint32
	if m.Version >= Version {
		if err := m.Manifest.Start.check("start-edge file", sumBytes(sdata)); err != nil {
			return nil, err
		}
		cdata, err := os.ReadFile(crcPath(p))
		if err != nil {
			return nil, fmt.Errorf("tile: v2 graph missing checksum sidecar: %w", err)
		}
		if err := m.Manifest.TileCRC.check("tile checksum file", sumBytes(cdata)); err != nil {
			return nil, err
		}
		if tileCRC, err = decodeTileCRCs(cdata, nt); err != nil {
			return nil, err
		}
	} else {
		warnf("tile: %s: legacy v%d format, checksum verification disabled (re-convert for end-to-end integrity)",
			p, m.Version)
	}
	start, byteOff, err := parseStartCodec(sdata, startPath(p), nt, m.TupleCodec())
	if err != nil {
		return nil, err
	}
	if got := start[len(start)-1]; got != m.NumStored {
		return nil, fmt.Errorf("tile: start-edge file ends at %d tuples, meta says %d", got, m.NumStored)
	}

	f, err := os.Open(tilesPath(p))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	want := start[len(start)-1] * m.TupleBytes()
	if byteOff != nil {
		want = byteOff[len(byteOff)-1]
	}
	if st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("tile: tiles file is %d bytes but the start-edge index says %d bytes",
			st.Size(), want)
	}
	if m.Version >= Version && m.Manifest.Tiles.Bytes != st.Size() {
		f.Close()
		return nil, fmt.Errorf("tile: tiles file is %d bytes, manifest says %d",
			st.Size(), m.Manifest.Tiles.Bytes)
	}
	return &Graph{Meta: m, Layout: layout, Start: start, ByteOff: byteOff, base: p, tiles: f, tileCRC: tileCRC}, nil
}

// Checksummed reports whether the graph carries per-tile CRC32C
// checksums (format v2).
func (g *Graph) Checksummed() bool { return g.tileCRC != nil }

// TileChecksum returns the recorded CRC32C of the tile at disk index i.
// Only meaningful when Checksummed reports true.
func (g *Graph) TileChecksum(i int) uint32 { return g.tileCRC[i] }

// Close releases the underlying file handle.
func (g *Graph) Close() error {
	if g.tiles == nil {
		return nil
	}
	err := g.tiles.Close()
	g.tiles = nil
	return err
}

// BasePath returns the base path the graph was opened from.
func (g *Graph) BasePath() string { return g.base }

// TilesFile exposes the tiles file for the asynchronous I/O engine.
func (g *Graph) TilesFile() *os.File { return g.tiles }

// TilesPath returns the tiles file's path, for device backends that
// open their own descriptors (e.g. O_DIRECT).
func (g *Graph) TilesPath() string { return tilesPath(g.base) }

// TupleCount returns the number of tuples in the tile at disk index i.
func (g *Graph) TupleCount(i int) int64 { return g.Start[i+1] - g.Start[i] }

// TileByteRange returns the byte offset and length of tile i in the tiles
// file.
func (g *Graph) TileByteRange(i int) (off, n int64) {
	if g.ByteOff != nil {
		return g.ByteOff[i], g.ByteOff[i+1] - g.ByteOff[i]
	}
	tb := g.Meta.TupleBytes()
	return g.Start[i] * tb, g.TupleCount(i) * tb
}

// ReadTile reads tile i synchronously, appending to buf (which may be
// nil), and returns the tile's data. On a v2 graph the data is verified
// against the tile's recorded CRC32C; a mismatch returns a
// *ChecksumError.
func (g *Graph) ReadTile(i int, buf []byte) ([]byte, error) {
	off, n := g.TileByteRange(i)
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if n == 0 {
		return buf, nil
	}
	if _, err := g.tiles.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("tile: reading tile %d: %w", i, err)
	}
	if g.tileCRC != nil {
		if got := Checksum(buf); got != g.tileCRC[i] {
			return nil, &ChecksumError{Tile: i, Want: g.tileCRC[i], Got: got}
		}
	}
	return buf, nil
}

// ForEachEdge streams every stored tuple (decoded to full vertex IDs) in
// disk order. Intended for tests and small graphs.
func (g *Graph) ForEachEdge(fn func(src, dst uint32)) error {
	var buf []byte
	for i := 0; i < g.Layout.NumTiles(); i++ {
		data, err := g.ReadTile(i, buf)
		if err != nil {
			return err
		}
		buf = data
		c := g.Layout.CoordAt(i)
		rb, _ := g.Layout.VertexRange(c.Row)
		cb, _ := g.Layout.VertexRange(c.Col)
		if err := DecodeTuples(data, g.Meta.TupleCodec(), rb, cb, fn); err != nil {
			return err
		}
	}
	return nil
}

// DataBytes is the size of the tile data (the paper's Table II "G-Store
// Size" column counts only this; the start-edge file is reported
// separately).
func (g *Graph) DataBytes() int64 {
	if g.ByteOff != nil {
		return g.ByteOff[len(g.ByteOff)-1]
	}
	return g.Meta.NumStored * g.Meta.TupleBytes()
}

// StartBytes is the size of the start-edge file.
func (g *Graph) StartBytes() int64 { return int64(len(g.Start)+len(g.ByteOff)) * 8 }

// Degrees loads the degree file and returns a DegreeSource: the compact
// table for "compact" format, a plain array for the fallback. On a v2
// graph the file's length and CRC32C are verified against the manifest
// before decoding.
func (g *Graph) Degrees() (DegreeSource, error) {
	switch g.Meta.DegreeFormat {
	case "":
		return nil, fmt.Errorf("tile: graph %s has no degree file", g.base)
	case "compact", "plain":
	default:
		return nil, fmt.Errorf("tile: unknown degree format %q", g.Meta.DegreeFormat)
	}
	data, err := os.ReadFile(degPath(g.base))
	if err != nil {
		return nil, err
	}
	if g.Meta.Version >= Version && g.Meta.Manifest.Deg != nil {
		if err := g.Meta.Manifest.Deg.check("degree file", sumBytes(data)); err != nil {
			return nil, err
		}
	}
	return decodeDegreeFile(data, int(g.Meta.NumVertices), g.Meta.DegreeFormat)
}

func readStart(path string, numTiles int) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseStart(data, path, numTiles)
}

// parseStartCodec decodes the start-edge file for a codec: fixed-width
// codecs store tuple prefix sums only; v3 appends a second array of byte
// offset prefix sums (same length, same invariants) because tile byte
// extents are no longer derivable from tuple counts.
func parseStartCodec(data []byte, path string, numTiles int, c Codec) (start, byteOff []int64, err error) {
	if c != CodecV3 {
		start, err = parseStart(data, path, numTiles)
		return start, nil, err
	}
	half := (numTiles + 1) * 8
	if len(data) != 2*half {
		return nil, nil, fmt.Errorf("tile: v3 start-edge file %s is %d bytes, want %d", path, len(data), 2*half)
	}
	if start, err = parseStart(data[:half], path, numTiles); err != nil {
		return nil, nil, err
	}
	if byteOff, err = parseStart(data[half:], path+" (byte offsets)", numTiles); err != nil {
		return nil, nil, err
	}
	return start, byteOff, nil
}

// parseStart decodes and validates a start-edge file: correct length for
// the layout, entries non-negative and monotone non-decreasing, first
// entry zero. The final entry is cross-checked against the meta edge
// count and the tiles file size by Open, so a damaged index is reported
// descriptively instead of causing an out-of-range read later.
func parseStart(data []byte, path string, numTiles int) ([]int64, error) {
	want := (numTiles + 1) * 8
	if len(data) != want {
		return nil, fmt.Errorf("tile: start-edge file %s is %d bytes, want %d", path, len(data), want)
	}
	start := make([]int64, numTiles+1)
	for i := range start {
		start[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		if start[i] < 0 {
			return nil, fmt.Errorf("tile: start-edge file entry %d is negative (%d)", i, start[i])
		}
		if i > 0 && start[i] < start[i-1] {
			return nil, fmt.Errorf("tile: start-edge file not monotonic at tile %d (%d after %d)",
				i, start[i], start[i-1])
		}
	}
	if start[0] != 0 {
		return nil, fmt.Errorf("tile: start-edge file begins at %d, want 0", start[0])
	}
	return start, nil
}

func encodeStart(start []int64) []byte {
	buf := make([]byte, len(start)*8)
	for i, s := range start {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(s))
	}
	return buf
}

// encodeStartV3 lays out the extended v3 start-edge file: tuple prefix
// sums followed by byte-offset prefix sums.
func encodeStartV3(start, byteOff []int64) []byte {
	return append(encodeStart(start), encodeStart(byteOff)...)
}

// Degree file layout: uint32 overflow count, then the 2-byte small array,
// then the overflow array. The plain format stores a zero count and 4-byte
// degrees in the "small" position.

func encodeDegreeFile(t *DegreeTable) []byte {
	buf := make([]byte, 4+len(t.Small)*2+len(t.Overflow)*4)
	binary.LittleEndian.PutUint32(buf, uint32(len(t.Overflow)))
	p := 4
	for _, s := range t.Small {
		binary.LittleEndian.PutUint16(buf[p:], s)
		p += 2
	}
	for _, o := range t.Overflow {
		binary.LittleEndian.PutUint32(buf[p:], o)
		p += 4
	}
	return buf
}

func encodePlainDegreeFile(deg []uint32) []byte {
	buf := make([]byte, 4+len(deg)*4)
	p := 4
	for _, d := range deg {
		binary.LittleEndian.PutUint32(buf[p:], d)
		p += 4
	}
	return buf
}

func decodeDegreeFile(data []byte, numVertices int, format string) (DegreeSource, error) {
	if len(data) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	nOver := int(binary.LittleEndian.Uint32(data))
	if format == "plain" {
		if nOver != 0 || len(data) != 4+numVertices*4 {
			return nil, fmt.Errorf("tile: corrupt plain degree file (%d bytes)", len(data))
		}
		deg := make(PlainDegrees, numVertices)
		for v := 0; v < numVertices; v++ {
			deg[v] = binary.LittleEndian.Uint32(data[4+v*4:])
		}
		return deg, nil
	}
	want := 4 + numVertices*2 + nOver*4
	if len(data) != want {
		return nil, fmt.Errorf("tile: corrupt degree file: %d bytes, want %d", len(data), want)
	}
	t := &DegreeTable{
		Small:    make([]uint16, numVertices),
		Overflow: make([]uint32, nOver),
	}
	p := 4
	for v := 0; v < numVertices; v++ {
		t.Small[v] = binary.LittleEndian.Uint16(data[p:])
		p += 2
	}
	for i := 0; i < nOver; i++ {
		t.Overflow[i] = binary.LittleEndian.Uint32(data[p:])
		p += 4
	}
	for v := 0; v < numVertices; v++ {
		if s := t.Small[v]; s&degreeEscape != 0 && int(s&^degreeEscape) >= nOver {
			return nil, fmt.Errorf("tile: degree escape for vertex %d out of range", v)
		}
	}
	return t, nil
}

package tile

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
)

// Round-trip: convert (v2) -> fsck clean -> every tile readable with its
// checksum verified.
func TestConvertFsckRoundTripV2(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 81))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "g", testOpts(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.Checksummed() || g.Meta.Version != Version {
		t.Fatalf("converted graph not v2-checksummed: version=%d", g.Meta.Version)
	}
	r := Fsck(g.BasePath())
	if !r.OK() {
		t.Fatalf("fsck of a fresh graph found problems: %v", r.Findings)
	}
	if !r.Checksummed || r.TilesChecked == 0 || r.TuplesChecked != g.Meta.NumStored {
		t.Fatalf("fsck report incomplete: %+v", r)
	}
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if _, err := g.ReadTile(i, nil); err != nil {
			t.Fatalf("ReadTile(%d): %v", i, err)
		}
	}
}

// v1 graphs (written with FormatVersion) still convert, open with a
// logged warning, fsck structurally, and serve reads — backward compat.
func TestConvertFsckRoundTripV1(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(9, 8, 82))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := testOpts(5, 2)
	opts.FormatVersion = VersionV1

	var warned []string
	oldWarn := warnf
	warnf = func(format string, args ...interface{}) { warned = append(warned, fmt.Sprintf(format, args...)) }
	defer func() { warnf = oldWarn }()

	g, err := Convert(el, dir, "g", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Checksummed() || g.Meta.Version != VersionV1 || g.Meta.Manifest != nil {
		t.Fatalf("v1 graph carries v2 state: %+v", g.Meta)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "legacy") {
		t.Fatalf("opening a v1 graph logged no legacy warning: %v", warned)
	}
	// No checksum sidecar on disk.
	if _, err := os.Stat(crcPath(g.BasePath())); !os.IsNotExist(err) {
		t.Fatalf("v1 conversion wrote a crc sidecar: %v", err)
	}
	r := Fsck(g.BasePath())
	if !r.OK() {
		t.Fatalf("fsck of a v1 graph found problems: %v", r.Findings)
	}
	if r.Checksummed || r.TilesChecked != 0 {
		t.Fatalf("v1 fsck claims checksum coverage: %+v", r)
	}
	if r.TuplesChecked != g.Meta.NumStored {
		t.Fatalf("v1 fsck checked %d tuples, want %d", r.TuplesChecked, g.Meta.NumStored)
	}
	if err := Verify(g); err != nil {
		t.Fatalf("Verify(v1): %v", err)
	}
}

// The out-of-core converter's incremental checksums must agree with the
// in-memory converter's: its output passes a full fsck.
func TestConvertExternalFsck(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 83))
	if err != nil {
		t.Fatal(err)
	}
	edgePath := writeEdges(t, el)
	dir := t.TempDir()
	// Tiny budget: many buckets, so per-bucket CRC slicing is exercised.
	g, err := ConvertExternal(edgePath, el.NumVertices, false, dir, "e", extOpts(6, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.Checksummed() {
		t.Fatal("external conversion did not produce a checksummed graph")
	}
	r := Fsck(g.BasePath())
	if !r.OK() {
		t.Fatalf("fsck of external conversion found problems: %v", r.Findings)
	}
	if r.TilesChecked == 0 || r.TuplesChecked != g.Meta.NumStored {
		t.Fatalf("fsck report incomplete: %+v", r)
	}
}

// Flipping any single byte of any section file must make fsck report a
// finding in that exact section — the corrupt-one-byte-anywhere
// guarantee of the v2 format.
func TestFsckCorruptOneByte(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(9, 8, 84))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ext     string
		section string
	}{
		{".meta", "meta"},
		{".start", "start"},
		{".tiles", "tiles"},
		{".crc", "crc"},
		{".deg", "deg"},
	} {
		for _, at := range []string{"first", "middle", "last"} {
			t.Run(tc.ext+"/"+at, func(t *testing.T) {
				dir := t.TempDir()
				g, err := Convert(el, dir, "g", testOpts(5, 2))
				if err != nil {
					t.Fatal(err)
				}
				base := g.BasePath()
				g.Close()

				path := base + tc.ext
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				off := 0
				switch at {
				case "middle":
					off = len(data) / 2
				case "last":
					off = len(data) - 1
				}
				data[off] ^= 0x20
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}

				r := Fsck(base)
				if r.OK() {
					t.Fatalf("fsck missed a flipped byte at %s[%d]", tc.ext, off)
				}
				found := false
				for _, f := range r.Findings {
					if f.Section == tc.section {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("flip in %s reported as %v, want a %q finding",
						tc.ext, r.Findings, tc.section)
				}
			})
		}
	}
}

// A flipped byte in the small sections (meta, start, crc) must already
// fail Open; tiles corruption is deferred to the read path by design.
func TestOpenRejectsCorruptSmallSections(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(9, 8, 85))
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".meta", ".start", ".crc"} {
		t.Run(ext, func(t *testing.T) {
			dir := t.TempDir()
			g, err := Convert(el, dir, "g", testOpts(5, 2))
			if err != nil {
				t.Fatal(err)
			}
			base := g.BasePath()
			g.Close()
			path := base + ext
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x10
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(base); err == nil {
				t.Fatalf("Open accepted a corrupt %s", ext)
			}
		})
	}
}

// ReadTile must catch tiles-file corruption on a graph that opened
// cleanly (Open checks only the small sections).
func TestReadTileDetectsCorruption(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(9, 8, 86))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "g", testOpts(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	base := g.BasePath()
	g.Close()

	victim := -1
	data, err := os.ReadFile(base + ".tiles")
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(base+".tiles", data, 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(base)
	if err != nil {
		t.Fatalf("Open after tiles-only corruption: %v", err)
	}
	defer g2.Close()
	for i := 0; i < g2.Layout.NumTiles(); i++ {
		if g2.TupleCount(i) > 0 {
			victim = i
			break
		}
	}
	_, rerr := g2.ReadTile(victim, nil)
	ce, ok := rerr.(*ChecksumError)
	if !ok {
		t.Fatalf("ReadTile error = %v, want *ChecksumError", rerr)
	}
	if ce.Tile != victim {
		t.Fatalf("ChecksumError names tile %d, want %d", ce.Tile, victim)
	}
}

// A rejected FormatVersion must fail conversion up front.
func TestConvertRejectsUnknownFormatVersion(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 4, 87))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(5, 2)
	opts.FormatVersion = 7
	if _, err := Convert(el, t.TempDir(), "g", opts); err == nil {
		t.Fatal("Convert accepted format version 7")
	}
}

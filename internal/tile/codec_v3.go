package tile

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Codec names a tuple encoding for tile data. Raw and SNB are the
// fixed-width v1/v2 encodings; V3 is the compressed block encoding of
// format version 3: within every tile the tuples are sorted by
// (source offset, destination offset) and packed into fixed-size decode
// blocks of at most V3BlockTuples tuples. Each block is framed by a
// uvarint byte length so readers can walk block boundaries without
// decoding, and each block restarts the delta chains, so any block can be
// decoded independently — that is what lets mem.TileRef.Chunks split a v3
// tile into parallel work items at block boundaries.
//
// Inside a block each tuple stores:
//
//	uvarint srcDelta  — source offset minus the previous tuple's source
//	                    offset (the block's first tuple encodes its source
//	                    offset absolutely, i.e. a delta from zero)
//	uvarint dstField  — when the tuple starts a new source run (first in
//	                    block, or srcDelta > 0): the absolute destination
//	                    offset; otherwise the delta from the previous
//	                    destination offset (non-negative, tuples sorted)
type Codec uint8

const (
	// CodecSNB is the 4-byte smallest-number-of-bits tuple encoding
	// (§IV-B): two little-endian uint16 in-tile offsets.
	CodecSNB Codec = iota
	// CodecRaw is the 8-byte encoding with full 32-bit vertex IDs.
	CodecRaw
	// CodecV3 is the sorted delta+varint block encoding (format v3).
	CodecV3
)

// V3BlockTuples is the maximum tuple count per v3 decode block. 512
// tuples keep a block around 1-1.5 KiB — small enough that chunked
// dispatch retains fine-grained work items, large enough that the restart
// overhead (one absolute source+destination) is amortized away.
const V3BlockTuples = 512

// v3MaxField bounds a decoded varint field: offsets and deltas are
// in-tile quantities (TileBits <= 16), so anything above 2^17 is corrupt,
// well before uint32 accumulation could wrap.
const v3MaxField = 1 << 17

// ParseCodec maps a codec name from flags or the meta header to a Codec.
// The empty string selects SNB, the format default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "snb":
		return CodecSNB, nil
	case "raw":
		return CodecRaw, nil
	case "v3":
		return CodecV3, nil
	}
	return CodecSNB, fmt.Errorf("tile: unknown codec %q (want snb, raw or v3)", s)
}

// String returns the canonical name recorded in meta headers.
func (c Codec) String() string {
	switch c {
	case CodecSNB:
		return "snb"
	case CodecRaw:
		return "raw"
	case CodecV3:
		return "v3"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// SNB reports whether the codec stores in-tile offsets (so decoding needs
// the tile's row/column vertex bases) rather than full vertex IDs.
func (c Codec) SNB() bool { return c != CodecRaw }

// TupleBytes returns the fixed per-tuple size, or 0 for the
// variable-width V3 codec.
func (c Codec) TupleBytes() int64 {
	switch c {
	case CodecSNB:
		return SNBTupleBytes
	case CodecRaw:
		return RawTupleBytes
	}
	return 0
}

// FormatVersion returns the tile format version a codec is stored under.
func (c Codec) FormatVersion() int {
	if c == CodecV3 {
		return VersionV3
	}
	return Version
}

// V3Key packs a tuple's in-tile offsets into the sortable key the v3
// encoder consumes: source offset in the high bits, destination offset in
// the low bits bits. Plain uint32 ordering of keys is exactly the
// (source, destination) tuple order.
func V3Key(srcOff, dstOff uint32, bits uint) uint32 {
	return srcOff<<bits | dstOff
}

// AppendV3 encodes the tuples represented by keys (as packed by V3Key
// with the same bits) into the v3 block format, appending to dst. keys is
// sorted in place if not already sorted; duplicates are preserved.
func AppendV3(dst []byte, keys []uint32, bits uint) []byte {
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	mask := uint32(1)<<bits - 1
	var payload []byte
	var tmp [binary.MaxVarintLen32]byte
	for off := 0; off < len(keys); off += V3BlockTuples {
		end := off + V3BlockTuples
		if end > len(keys) {
			end = len(keys)
		}
		payload = payload[:0]
		payload = binary.AppendUvarint(payload, uint64(end-off))
		prevSrc, prevDst := uint32(0), uint32(0)
		for i, k := range keys[off:end] {
			src, dstOff := k>>bits, k&mask
			payload = binary.AppendUvarint(payload, uint64(src-prevSrc))
			if i == 0 || src != prevSrc {
				payload = binary.AppendUvarint(payload, uint64(dstOff))
			} else {
				payload = binary.AppendUvarint(payload, uint64(dstOff-prevDst))
			}
			prevSrc, prevDst = src, dstOff
		}
		n := binary.PutUvarint(tmp[:], uint64(len(payload)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, payload...)
	}
	return dst
}

// DecodeV3 iterates over the tuples of one v3-encoded tile (or any whole
// number of its blocks, as produced by SplitV3), adding rowBase/colBase
// to the decoded offsets. It validates the block structure as it goes and
// returns a descriptive error on any framing or varint corruption.
func DecodeV3(data []byte, rowBase, colBase uint32, fn func(src, dst uint32)) error {
	block := 0
	for len(data) > 0 {
		payload, rest, err := v3Frame(data, block)
		if err != nil {
			return err
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 || count == 0 || count > V3BlockTuples {
			return fmt.Errorf("tile: v3 block %d has bad tuple count %d", block, count)
		}
		payload = payload[n:]
		prevSrc, prevDst := uint32(0), uint32(0)
		for i := uint64(0); i < count; i++ {
			srcDelta, n := binary.Uvarint(payload)
			if n <= 0 || srcDelta > v3MaxField {
				return fmt.Errorf("tile: v3 block %d tuple %d has corrupt source delta", block, i)
			}
			payload = payload[n:]
			dstField, n := binary.Uvarint(payload)
			if n <= 0 || dstField > v3MaxField {
				return fmt.Errorf("tile: v3 block %d tuple %d has corrupt destination field", block, i)
			}
			payload = payload[n:]
			src := prevSrc + uint32(srcDelta)
			dst := uint32(dstField)
			if i > 0 && srcDelta == 0 {
				dst += prevDst
			}
			if dst > v3MaxField {
				return fmt.Errorf("tile: v3 block %d tuple %d destination offset out of range", block, i)
			}
			fn(rowBase+src, colBase+dst)
			prevSrc, prevDst = src, dst
		}
		if len(payload) != 0 {
			return fmt.Errorf("tile: v3 block %d has %d trailing bytes after %d tuples",
				block, len(payload), count)
		}
		data = rest
		block++
	}
	return nil
}

// v3Frame splits the leading block off data: the uvarint length prefix
// and the payload it frames.
func v3Frame(data []byte, block int) (payload, rest []byte, err error) {
	size, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("tile: v3 block %d has a corrupt length prefix", block)
	}
	if size == 0 || size > uint64(len(data)-n) {
		return nil, nil, fmt.Errorf("tile: v3 block %d claims %d payload bytes, %d remain",
			block, size, len(data)-n)
	}
	return data[n : n+int(size)], data[n+int(size):], nil
}

// ValidateV3Frames walks the block framing of a v3 tile without decoding
// tuple payloads: every length prefix must parse, stay in bounds, and the
// frames must cover data exactly. The engine runs this on the hot read
// path after the CRC check (cheap — a handful of varint reads per block);
// full payload validation is done by DecodeV3, fsck and Verify.
func ValidateV3Frames(data []byte) error {
	for block := 0; len(data) > 0; block++ {
		payload, rest, err := v3Frame(data, block)
		if err != nil {
			return err
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 || count == 0 || count > V3BlockTuples {
			return fmt.Errorf("tile: v3 block %d has bad tuple count %d", block, count)
		}
		// Each tuple is at least two varint bytes.
		if uint64(len(payload)-n) < 2*count {
			return fmt.Errorf("tile: v3 block %d payload too short for %d tuples", block, count)
		}
		data = rest
	}
	return nil
}

// SplitV3 splits a v3 tile into views of whole decode blocks, each view
// at most chunkBytes long (a single oversized block still forms its own
// view, so progress is always made). It returns nil when the framing is
// corrupt — callers fall back to dispatching the whole tile, whose decode
// will report the corruption.
func SplitV3(data []byte, chunkBytes int64) [][]byte {
	if len(data) == 0 {
		return nil
	}
	var out [][]byte
	viewStart, pos := 0, 0
	for block := 0; pos < len(data); block++ {
		_, rest, err := v3Frame(data[pos:], block)
		if err != nil {
			return nil
		}
		next := len(data) - len(rest)
		if next-viewStart > int(chunkBytes) && pos > viewStart {
			out = append(out, data[viewStart:pos])
			viewStart = pos
		}
		pos = next
	}
	return append(out, data[viewStart:])
}

package tile

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func v3Opts(bits uint, q uint32) ConvertOptions {
	return ConvertOptions{TileBits: bits, GroupQ: q, Symmetry: true, Codec: "v3", Degrees: true}
}

// TestConvertV3RoundTrip is the v3 analogue of TestConvertRoundTrip:
// decoding every stored tuple of a v3 graph recovers exactly the
// canonical input edge set, and the store is strictly smaller than SNB.
func TestConvertV3RoundTrip(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "v3rt", v3Opts(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if g.Meta.Version != VersionV3 || g.Meta.TupleCodec() != CodecV3 {
		t.Fatalf("header: version %d codec %q", g.Meta.Version, g.Meta.Codec)
	}
	var got []graph.Edge
	if err := g.ForEachEdge(func(s, d uint32) {
		got = append(got, graph.Edge{Src: s, Dst: d})
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]graph.Edge(nil), el.Edges...)
	sortEdges(got)
	sortEdges(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge sets differ: got %d edges, want %d", len(got), len(want))
	}

	snb, err := Convert(el, dir, "v3snb", testOpts(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer snb.Close()
	if g.DataBytes() >= snb.DataBytes() {
		t.Fatalf("v3 tiles %d bytes, snb %d — no compression", g.DataBytes(), snb.DataBytes())
	}

	// Clean verify and fsck.
	if err := Verify(g); err != nil {
		t.Fatalf("Verify(v3): %v", err)
	}
	r := Fsck(BasePath(dir, "v3rt"))
	if !r.OK() {
		t.Fatalf("fsck findings on clean v3 graph: %v", r.Findings)
	}
	if r.TuplesChecked != g.Meta.NumStored {
		t.Fatalf("fsck checked %d tuples, graph stores %d", r.TuplesChecked, g.Meta.NumStored)
	}
}

// TestConvertExternalV3BitIdentical pins the two converters to byte-equal
// output: the external (spill-based) pipeline and the in-memory pipeline
// must produce identical v3 tile and start files.
func TestConvertExternalV3BitIdentical(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(9, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mg, err := Convert(el, dir, "mem", v3Opts(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	elPath := filepath.Join(dir, "edges.bin")
	if err := graph.WriteEdgeListFile(elPath, el); err != nil {
		t.Fatal(err)
	}
	// A deliberately tiny budget forces many scatter buckets.
	eg, err := ConvertExternal(elPath, el.NumVertices, el.Directed, dir, "ext",
		ExternalConvertOptions{ConvertOptions: v3Opts(5, 2), MemoryBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer eg.Close()

	for _, suffix := range []string{".tiles", ".start"} {
		a, err := os.ReadFile(BasePath(dir, "mem") + suffix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(BasePath(dir, "ext") + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between in-memory and external v3 conversion (%d vs %d bytes)",
				suffix, len(a), len(b))
		}
	}
}

// TestFsckDetectsV3BlockCorruption flips bytes inside a v3 tile (with the
// CRC updated to match, simulating corruption at conversion time) and
// expects fsck's deep scan to name the tile.
func TestFsckDetectsV3BlockCorruption(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "v3bad", v3Opts(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	base := BasePath(dir, "v3bad")
	// Pick a stored tile and wreck its first block's tuple count.
	victim := -1
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if g.TupleCount(i) > 0 {
			victim = i
			break
		}
	}
	off, n := g.TileByteRange(victim)
	g.Close()
	if victim < 0 || n < 2 {
		t.Fatal("no usable tile")
	}
	tf, err := os.OpenFile(base+".tiles", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the whole tile with garbage that still parses as a frame
	// claiming an absurd tuple count, then fix up the CRC file so only the
	// block structure is wrong.
	garbage := make([]byte, n)
	garbage[0] = byte(n - 1) // frame length: rest of tile
	garbage[1] = 0xff        // tuple count varint, continued
	garbage[2] = 0x7f        // => count 16383 > V3BlockTuples
	if _, err := tf.WriteAt(garbage, off); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	// Recompute the per-tile CRC so the corruption models a converter bug
	// rather than media rot.
	crcPath := base + ".crc"
	crcs, err := os.ReadFile(crcPath)
	if err != nil {
		t.Fatal(err)
	}
	putU32(crcs[victim*4:], Checksum(garbage))
	if err := os.WriteFile(crcPath, crcs, 0o644); err != nil {
		t.Fatal(err)
	}
	// The manifest digests over the .crc and .tiles sections now mismatch;
	// fsck reports those too — what matters is that the tuple scan names
	// the undecodable tile.
	r := Fsck(base)
	found := false
	for _, f := range r.Findings {
		if f.Tile == victim && f.Section == "tiles" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck missed the corrupt v3 block: %v", r.Findings)
	}
}

// TestV2HeadersUnchangedByCodecField re-converts a fixed-width graph and
// confirms the header carries no codec field (byte-stable v2 output) while
// an explicit -codec records one.
func TestV2HeadersUnchangedByCodecField(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "plain", testOpts(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	meta, err := os.ReadFile(BasePath(dir, "plain") + ".meta")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(meta, []byte(`"codec"`)) {
		t.Fatal("implicit SNB conversion wrote a codec field into the v2 header")
	}
	opts := testOpts(4, 2)
	opts.Codec = "snb"
	g2, err := Convert(el, dir, "named", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.Meta.Codec != "snb" || g2.Meta.Version != Version || !g2.Meta.SNB {
		t.Fatalf("explicit snb codec header: version %d codec %q snb %v",
			g2.Meta.Version, g2.Meta.Codec, g2.Meta.SNB)
	}
}

// TestSplitV3Boundaries checks that chunk views decode to the same tuples
// as the whole tile, in order, regardless of chunk size.
func TestSplitV3Boundaries(t *testing.T) {
	var keys []uint32
	for i := uint32(0); i < 3000; i++ {
		keys = append(keys, V3Key(i/7, (i*13)%127, 12))
	}
	data := AppendV3(nil, keys, 12)
	var whole []uint64
	if err := DecodeV3(data, 0, 0, func(s, d uint32) {
		whole = append(whole, uint64(s)<<32|uint64(d))
	}); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int64{1, 64, 700, 1 << 20} {
		views := SplitV3(data, chunk)
		var got []uint64
		total := 0
		for _, v := range views {
			total += len(v)
			if chunk >= 64 && int64(len(v)) > chunk && len(views) > 1 {
				// A view only exceeds chunkBytes when a single block does.
				if err := func() error {
					_, rest, err := v3Frame(v, 0)
					if err == nil && len(rest) != 0 {
						t.Fatalf("oversized view holds %d trailing bytes beyond one block", len(rest))
					}
					return err
				}(); err != nil {
					t.Fatal(err)
				}
			}
			if err := DecodeV3(v, 0, 0, func(s, d uint32) {
				got = append(got, uint64(s)<<32|uint64(d))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if total != len(data) {
			t.Fatalf("chunk %d: views cover %d of %d bytes", chunk, total, len(data))
		}
		if !reflect.DeepEqual(got, whole) {
			t.Fatalf("chunk %d: chunked decode differs from whole-tile decode", chunk)
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

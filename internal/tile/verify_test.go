package tile

import (
	"os"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func TestVerifyCleanGraphs(t *testing.T) {
	cases := []struct {
		name string
		opts ConvertOptions
		cfg  gen.Config
	}{
		{"half-snb", ConvertOptions{TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true}, gen.Graph500Config(9, 8, 81)},
		{"full-raw", ConvertOptions{TileBits: 6, GroupQ: 4, Degrees: true}, gen.Graph500Config(9, 8, 81)},
		{"directed", ConvertOptions{TileBits: 6, GroupQ: 4, SNB: true, Degrees: true}, gen.TwitterLikeConfig(9, 4, 82)},
		{"no-degrees", ConvertOptions{TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true}, gen.Graph500Config(8, 4, 83)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			el, err := gen.Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Convert(el, t.TempDir(), "v", tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			if err := Verify(g); err != nil {
				t.Fatalf("clean graph failed verification: %v", err)
			}
		})
	}
}

func TestVerifyDetectsCorruptTuples(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 8, 84))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Convert(el, t.TempDir(), "c", ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := g.BasePath()
	g.Close()

	// Corrupt tuple bytes in a non-diagonal tile: its SNB offsets decode
	// into the tile's ranges regardless, so attack the degree consistency
	// instead — flip a tuple's source offset so the recomputed degrees
	// shift.
	data, err := os.ReadFile(base + ".tiles")
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(base+".tiles", data, 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if err := Verify(g2); err == nil {
		t.Fatal("corrupted tuples passed verification")
	}
}

func TestVerifyDetectsWrongDegrees(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 4, 85))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Convert(el, t.TempDir(), "d", ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := g.BasePath()
	g.Close()

	data, err := os.ReadFile(base + ".deg")
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0x7 // flip bits in some small-degree entry
	if err := os.WriteFile(base+".deg", data, 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if err := Verify(g2); err == nil {
		t.Fatal("wrong degree file passed verification")
	}
}

func TestCollectStats(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 8,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
			{Src: 1, Dst: 2}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4},
			{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 5, Dst: 7},
		},
	}
	g, err := Convert(el, t.TempDir(), "s", ConvertOptions{
		TileBits: 2, GroupQ: 1, Symmetry: true, SNB: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	st := CollectStats(g)
	if st.Tiles != 3 || st.EmptyTiles != 0 || st.TotalTuples != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxTuples != 3 || st.TilesUnder1K != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Groups != 3 || st.MinGroup != 3 || st.MaxGroup != 3 {
		t.Fatalf("group stats = %+v", st)
	}
	if st.DataBytes != 9*SNBTupleBytes {
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
}

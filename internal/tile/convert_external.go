package tile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/fsutil"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/grid"
)

// ExternalConvertOptions extends ConvertOptions for the out-of-core
// converter.
type ExternalConvertOptions struct {
	ConvertOptions
	// MemoryBudget bounds the staging buffer. Tiles are grouped into
	// buckets of at most this many bytes, each scattered in memory and
	// appended to the output sequentially. Defaults to 256 MB.
	MemoryBudget int64
	// TempDir holds the intermediate bucket files (defaults to the output
	// directory).
	TempDir string
}

// ConvertExternal converts a binary edge-list file to the tile format
// without materializing the edges in memory — the out-of-core variant of
// the two-pass conversion of §IV-B, for inputs larger than RAM (the
// paper's terabyte-scale Kronecker files). Pass one streams the input to
// build the start-edge array and degrees; pass two streams it again,
// appending encoded tuples to per-bucket spill files; each bucket (a
// contiguous range of disk-ordered tiles that fits in the memory budget)
// is then scattered in memory and written out sequentially.
func ConvertExternal(edgePath string, numVertices uint32, directed bool,
	dir, name string, opts ExternalConvertOptions) (*Graph, error) {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 256 << 20
	}
	if opts.TileBits == 0 {
		opts.TileBits = 16
	}
	if opts.GroupQ == 0 {
		opts.GroupQ = 256
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("tile: zero vertices")
	}
	half := !directed && opts.Symmetry
	layout, err := grid.New(numVertices, opts.TileBits, opts.GroupQ, half)
	if err != nil {
		return nil, err
	}
	nt := layout.NumTiles()
	codec, err := opts.codec()
	if err != nil {
		return nil, err
	}
	ver, err := opts.formatVersion(codec)
	if err != nil {
		return nil, err
	}
	// Per-tuple staging size: encoded bytes for the fixed-width codecs, a
	// 4-byte packed sort key for v3 (the block encoding happens per tile
	// at scatter time).
	tupleBytes := codec.TupleBytes()
	if codec == CodecV3 {
		tupleBytes = 4
	}

	// Pass 1: count tuples per tile, compute degrees.
	counts := make([]int64, nt)
	var degrees []uint32
	if opts.Degrees {
		degrees = make([]uint32, numVertices)
	}
	var original int64
	err = streamEdgeFile(edgePath, numVertices, func(s, d uint32) {
		original++
		if degrees != nil {
			degrees[s]++
			if !directed && s != d {
				degrees[d]++
			}
		}
		eachStoredDir(layout, directed, s, d, func(di int, _, _ uint32) {
			counts[di]++
		})
	})
	if err != nil {
		return nil, err
	}
	start := make([]int64, nt+1)
	for i, n := range counts {
		start[i+1] = start[i] + n
	}
	numStored := start[nt]

	// Bucketize: contiguous disk-ordered tile ranges under the budget.
	type bucket struct {
		loTile, hiTile int // disk-index range [lo, hi)
		bytes          int64
	}
	var buckets []bucket
	{
		cur := bucket{loTile: 0}
		for i := 0; i < nt; i++ {
			n := counts[i] * tupleBytes
			if n > opts.MemoryBudget {
				return nil, fmt.Errorf("tile: tile %d needs %d bytes, above the %d budget",
					i, n, opts.MemoryBudget)
			}
			if cur.bytes+n > opts.MemoryBudget {
				cur.hiTile = i
				buckets = append(buckets, cur)
				cur = bucket{loTile: i}
			}
			cur.bytes += n
		}
		cur.hiTile = nt
		buckets = append(buckets, cur)
	}
	bucketOf := make([]int, nt)
	for bi, b := range buckets {
		for i := b.loTile; i < b.hiTile; i++ {
			bucketOf[i] = bi
		}
	}

	// Pass 2: spill (diskIdx, tuple) records per bucket.
	fsys := faultfs.Default(opts.FS)
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = dir
	}
	if err := fsys.MkdirAll(tempDir, 0o755); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	spillDir, err := os.MkdirTemp(tempDir, "gstore-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	spills := make([]*bufio.Writer, len(buckets))
	spillFiles := make([]faultfs.File, len(buckets))
	for i := range spills {
		f, err := fsys.OpenFile(filepath.Join(spillDir, fmt.Sprintf("b%d", i)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		spillFiles[i] = f
		spills[i] = bufio.NewWriterSize(f, 1<<16)
	}
	mask := layout.TileWidth() - 1
	recBytes := 4 + tupleBytes
	var rec [4 + RawTupleBytes]byte
	err = streamEdgeFile(edgePath, numVertices, func(s, d uint32) {
		eachStoredDir(layout, directed, s, d, func(di int, ts, td uint32) {
			binary.LittleEndian.PutUint32(rec[0:4], uint32(di))
			switch codec {
			case CodecSNB:
				PutSNB(rec[4:], uint16(ts&mask), uint16(td&mask))
			case CodecV3:
				binary.LittleEndian.PutUint32(rec[4:], V3Key(ts&mask, td&mask, opts.TileBits))
			default:
				PutRaw(rec[4:], ts, td)
			}
			// Buffered writes cannot fail until flush; collect then.
			spills[bucketOf[di]].Write(rec[:recBytes])
		})
	})
	if err != nil {
		return nil, err
	}
	for i, w := range spills {
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if err := spillFiles[i].Close(); err != nil {
			return nil, err
		}
	}

	// Scatter each bucket in memory and append to the tiles file. The
	// output is staged in a temporary file and renamed into place only
	// once fully written and fsynced, so a crash mid-scatter leaves no
	// torn tiles file; per-tile CRC32C checksums and the whole-file
	// digest are computed from the same in-memory buckets as they are
	// written, costing no extra read pass.
	base := BasePath(dir, name)
	out, err := fsutil.CreateFS(fsys, tilesPath(base), 0o644)
	if err != nil {
		return nil, err
	}
	defer out.Abort()
	ow := bufio.NewWriterSize(out.File(), 1<<20)
	tilesHash := crc32.New(castagnoli)
	crcs := make([]uint32, nt)
	next := make([]int64, nt)
	var byteOff []int64
	var keyScratch []uint32
	var encScratch []byte
	if codec == CodecV3 {
		byteOff = make([]int64, nt+1)
	}
	for bi, b := range buckets {
		buf := make([]byte, b.bytes)
		baseTuples := start[b.loTile]
		for i := b.loTile; i < b.hiTile; i++ {
			next[i] = start[i]
		}
		f, err := fsys.OpenFile(filepath.Join(spillDir, fmt.Sprintf("b%d", bi)), os.O_RDONLY, 0)
		if err != nil {
			return nil, err
		}
		r := bufio.NewReaderSize(f, 1<<20)
		for {
			if _, err := io.ReadFull(r, rec[:recBytes]); err != nil {
				if err == io.EOF {
					break
				}
				f.Close()
				return nil, fmt.Errorf("tile: corrupt spill file %d: %w", bi, err)
			}
			di := int(binary.LittleEndian.Uint32(rec[0:4]))
			at := (next[di] - baseTuples) * tupleBytes
			next[di]++
			copy(buf[at:at+tupleBytes], rec[4:4+tupleBytes])
		}
		f.Close()
		if codec == CodecV3 {
			// Per tile: decode the scattered sort keys, sort, and emit the
			// block encoding; CRCs, the whole-file hash and the byte-offset
			// index all come from the encoded bytes.
			for i := b.loTile; i < b.hiTile; i++ {
				raw := buf[(start[i]-baseTuples)*tupleBytes : (start[i+1]-baseTuples)*tupleBytes]
				keyScratch = keyScratch[:0]
				for p := 0; p < len(raw); p += 4 {
					keyScratch = append(keyScratch, binary.LittleEndian.Uint32(raw[p:]))
				}
				encScratch = AppendV3(encScratch[:0], keyScratch, opts.TileBits)
				crcs[i] = Checksum(encScratch)
				byteOff[i+1] = byteOff[i] + int64(len(encScratch))
				tilesHash.Write(encScratch)
				if _, err := ow.Write(encScratch); err != nil {
					return nil, err
				}
			}
			continue
		}
		for i := b.loTile; i < b.hiTile; i++ {
			crcs[i] = Checksum(buf[(start[i]-baseTuples)*tupleBytes : (start[i+1]-baseTuples)*tupleBytes])
		}
		tilesHash.Write(buf)
		if _, err := ow.Write(buf); err != nil {
			return nil, err
		}
	}
	if err := ow.Flush(); err != nil {
		return nil, err
	}
	if err := out.Commit(); err != nil {
		return nil, err
	}

	m := &Meta{
		Magic: Magic, Version: ver, Name: name,
		NumVertices: numVertices,
		NumStored:   numStored,
		NumOriginal: original,
		TileBits:    opts.TileBits,
		GroupQ:      layout.Q,
		Directed:    directed,
		Half:        half,
		SNB:         codec.SNB(),
	}
	if codec == CodecV3 || opts.Codec != "" {
		m.Codec = codec.String()
	}
	var degData []byte
	if degrees != nil {
		if t, err := EncodeDegrees(degrees); err == nil {
			m.DegreeFormat = "compact"
			degData = encodeDegreeFile(t)
		} else if err == ErrDegreeOverflow {
			m.DegreeFormat = "plain"
			degData = encodePlainDegreeFile(degrees)
		} else {
			return nil, err
		}
		if err := fsutil.WriteFileFS(fsys, degPath(base), degData, 0o644); err != nil {
			return nil, err
		}
	}
	startData := encodeStart(start)
	tilesBytes := numStored * tupleBytes
	if codec == CodecV3 {
		startData = encodeStartV3(start, byteOff)
		tilesBytes = byteOff[nt]
	}
	if err := fsutil.WriteFileFS(fsys, startPath(base), startData, 0o644); err != nil {
		return nil, err
	}
	if ver >= Version {
		crcData := encodeTileCRCs(crcs)
		if err := fsutil.WriteFileFS(fsys, crcPath(base), crcData, 0o644); err != nil {
			return nil, err
		}
		m.Manifest = &Manifest{
			Start:   sumBytes(startData),
			Tiles:   SectionSum{Bytes: tilesBytes, CRC32C: tilesHash.Sum32()},
			TileCRC: sumBytes(crcData),
		}
		if degData != nil {
			s := sumBytes(degData)
			m.Manifest.Deg = &s
		}
	}
	// Meta last: the commit point of the conversion.
	if err := fsys.CrashPoint("tile.convert.before-meta"); err != nil {
		return nil, err
	}
	if err := writeMeta(fsys, base, m); err != nil {
		return nil, err
	}
	return Open(base)
}

// eachStoredDir maps one input edge to the stored tuple(s), mirroring
// forEachStored for a single edge.
func eachStoredDir(layout *grid.Layout, directed bool, s, d uint32, fn func(di int, ts, td uint32)) {
	ts, td := s, d
	if layout.Half && ts > td {
		ts, td = td, ts
	}
	fn(layout.DiskIndex(layout.TileOf(ts), layout.TileOf(td)), ts, td)
	if !directed && !layout.Half && s != d {
		fn(layout.DiskIndex(layout.TileOf(d), layout.TileOf(s)), d, s)
	}
}

// streamEdgeFile reads a binary edge list, invoking fn per edge, and
// validates endpoints against the vertex space.
func streamEdgeFile(path string, numVertices uint32, fn func(s, d uint32)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var buf [graph.EdgeTupleBytes]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("tile: reading %s: %w", path, err)
		}
		s := binary.LittleEndian.Uint32(buf[0:4])
		d := binary.LittleEndian.Uint32(buf[4:8])
		if s >= numVertices || d >= numVertices {
			return fmt.Errorf("tile: edge (%d,%d) outside vertex space %d", s, d, numVertices)
		}
		fn(s, d)
	}
}

package tile

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func paperGraph() *graph.EdgeList {
	return &graph.EdgeList{
		NumVertices: 8,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
			{Src: 1, Dst: 2}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4},
			{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 5, Dst: 7},
		},
	}
}

func testOpts(bits uint, q uint32) ConvertOptions {
	return ConvertOptions{TileBits: bits, GroupQ: q, Symmetry: true, SNB: true, Degrees: true}
}

func TestSNBRoundTrip(t *testing.T) {
	var buf [4]byte
	PutSNB(buf[:], 0xBEEF, 0x1234)
	s, d := GetSNB(buf[:])
	if s != 0xBEEF || d != 0x1234 {
		t.Fatalf("roundtrip got (%x,%x)", s, d)
	}
}

func TestRawRoundTrip(t *testing.T) {
	var buf [8]byte
	PutRaw(buf[:], 0xDEADBEEF, 42)
	s, d := GetRaw(buf[:])
	if s != 0xDEADBEEF || d != 42 {
		t.Fatalf("roundtrip got (%x,%d)", s, d)
	}
}

func TestDecodeTuplesBadLength(t *testing.T) {
	if err := DecodeTuples(make([]byte, 7), CodecSNB, 0, 0, func(uint32, uint32) {}); err == nil {
		t.Fatal("accepted 7 bytes of SNB tuples")
	}
	if err := DecodeTuples(make([]byte, 12), CodecRaw, 0, 0, func(uint32, uint32) {}); err == nil {
		t.Fatal("accepted 12 bytes of raw tuples")
	}
}

// TestPaperFigure4 converts the example graph of Figure 1 with tile width
// 4 and verifies the exact tile contents shown in Figure 4(b).
func TestPaperFigure4(t *testing.T) {
	dir := t.TempDir()
	g, err := Convert(paperGraph(), dir, "fig4", testOpts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if g.Layout.NumTiles() != 3 {
		t.Fatalf("NumTiles = %d, want 3", g.Layout.NumTiles())
	}
	if g.Meta.NumStored != 9 {
		t.Fatalf("NumStored = %d, want 9", g.Meta.NumStored)
	}
	// Each tile holds exactly 3 edges (Figure 4a).
	for i := 0; i < 3; i++ {
		if n := g.TupleCount(i); n != 3 {
			t.Fatalf("tile %d has %d tuples, want 3", i, n)
		}
	}
	// Figure 4(b): tile[1,1] is (0,1),(1,2),(1,3) in SNB offsets, i.e.
	// global edges (4,5),(5,6),(5,7).
	di := g.Layout.DiskIndex(1, 1)
	data, err := g.ReadTile(di, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []graph.Edge
	if err := DecodeTuples(data, CodecSNB, 4, 4, func(s, d uint32) {
		got = append(got, graph.Edge{Src: s, Dst: d})
	}); err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 5, Dst: 7}}
	sortEdges(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tile[1,1] = %v, want %v", got, want)
	}
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// TestConvertRoundTrip checks the fundamental invariant: decoding every
// stored tuple recovers exactly the canonical input edge set.
func TestConvertRoundTrip(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "rt", testOpts(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var got []graph.Edge
	if err := g.ForEachEdge(func(s, d uint32) {
		got = append(got, graph.Edge{Src: s, Dst: d})
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]graph.Edge(nil), el.Edges...)
	sortEdges(got)
	sortEdges(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge sets differ: got %d edges, want %d", len(got), len(want))
	}
}

func TestConvertDirected(t *testing.T) {
	cfg := gen.TwitterLikeConfig(10, 8, 4)
	el, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "dir", testOpts(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Meta.Half {
		t.Fatal("directed graph stored as half")
	}
	if g.Meta.NumStored != int64(len(el.Edges)) {
		t.Fatalf("stored %d, want %d", g.Meta.NumStored, len(el.Edges))
	}
	var got []graph.Edge
	if err := g.ForEachEdge(func(s, d uint32) {
		got = append(got, graph.Edge{Src: s, Dst: d})
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]graph.Edge(nil), el.Edges...)
	sortEdges(got)
	sortEdges(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("directed edge sets differ")
	}
}

// TestConvertAblationSizes verifies the Figure 10 / Table II storage
// accounting: base (full, raw) = 4× the half+SNB size for undirected
// graphs with < 2^16-wide tiles.
func TestConvertAblationSizes(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	el.Dedup(true) // unique edges so both-direction counting is exact
	dir := t.TempDir()

	full, err := Convert(el, dir, "base", ConvertOptions{TileBits: 6, GroupQ: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	sym, err := Convert(el, dir, "sym", ConvertOptions{TileBits: 6, GroupQ: 2, Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sym.Close()
	snb, err := Convert(el, dir, "snb", ConvertOptions{TileBits: 6, GroupQ: 2, Symmetry: true, SNB: true})
	if err != nil {
		t.Fatal(err)
	}
	defer snb.Close()

	selfLoops := int64(0)
	for _, e := range el.Edges {
		if e.Src == e.Dst {
			selfLoops++
		}
	}
	e := int64(len(el.Edges))
	if full.Meta.NumStored != 2*e-selfLoops {
		t.Fatalf("base stored %d tuples, want %d", full.Meta.NumStored, 2*e-selfLoops)
	}
	if sym.Meta.NumStored != e || snb.Meta.NumStored != e {
		t.Fatalf("half stored %d/%d tuples, want %d", sym.Meta.NumStored, snb.Meta.NumStored, e)
	}
	if full.DataBytes() <= sym.DataBytes() || sym.DataBytes() != 2*snb.DataBytes() {
		t.Fatalf("sizes base=%d sym=%d snb=%d violate 2x/4x expectations",
			full.DataBytes(), sym.DataBytes(), snb.DataBytes())
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	el := paperGraph()
	dir := t.TempDir()
	g, err := Convert(el, dir, "c", testOpts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := g.BasePath()
	g.Close()

	// Truncated tiles file.
	data, err := os.ReadFile(base + ".tiles")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base+".tiles", data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base); err == nil {
		t.Fatal("opened graph with truncated tiles file")
	}
	if err := os.WriteFile(base+".tiles", data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt start file (non-monotonic).
	sdata, err := os.ReadFile(base + ".start")
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), sdata...)
	bad[8] = 0xff
	bad[15] = 0xff
	if err := os.WriteFile(base+".start", bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base); err == nil {
		t.Fatal("opened graph with corrupt start file")
	}
	if err := os.WriteFile(base+".start", sdata, 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt meta.
	if err := os.WriteFile(base+".meta", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base); err == nil {
		t.Fatal("opened graph with corrupt meta")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("opened nonexistent graph")
	}
}

func TestDegreeCodec(t *testing.T) {
	deg := []uint32{0, 1, 32767, 32768, 1000000, 7}
	tab, err := EncodeDegrees(deg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Overflow) != 2 {
		t.Fatalf("overflow count = %d, want 2", len(tab.Overflow))
	}
	for v, want := range deg {
		if got := tab.Degree(uint32(v)); got != want {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if !reflect.DeepEqual(tab.Decode(), deg) {
		t.Fatal("Decode mismatch")
	}
	// Compact must beat plain whenever few vertices overflow.
	if tab.SizeBytes() >= PlainDegrees(deg).SizeBytes() {
		t.Fatalf("compact %d bytes >= plain %d", tab.SizeBytes(), PlainDegrees(deg).SizeBytes())
	}
}

func TestDegreeCodecOverflowLimit(t *testing.T) {
	deg := make([]uint32, maxOverflow+1)
	for i := range deg {
		deg[i] = maxSmallDegree + 1
	}
	if _, err := EncodeDegrees(deg); err != ErrDegreeOverflow {
		t.Fatalf("err = %v, want ErrDegreeOverflow", err)
	}
}

func TestDegreeFileRoundTrip(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(10, 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := Convert(el, dir, "deg", testOpts(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	src, err := g.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	want := el.OutDegrees()
	for v, w := range want {
		if got := src.Degree(uint32(v)); got != w {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, w)
		}
	}
}

func TestDegreeFileCorrupt(t *testing.T) {
	el := paperGraph()
	dir := t.TempDir()
	g, err := Convert(el, dir, "dc", testOpts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := g.BasePath()
	g.Close()
	if err := os.WriteFile(base+".deg", []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if _, err := g2.Degrees(); err == nil {
		t.Fatal("corrupt degree file accepted")
	}
}

// Property: SNB tuple codec round-trips any pair of offsets.
func TestQuickSNB(t *testing.T) {
	f := func(s, d uint16) bool {
		var buf [4]byte
		PutSNB(buf[:], s, d)
		gs, gd := GetSNB(buf[:])
		return gs == s && gd == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: degree codec round-trips arbitrary degree arrays (with few
// overflows by construction).
func TestQuickDegreeCodec(t *testing.T) {
	f := func(raw []uint32) bool {
		deg := make([]uint32, len(raw))
		for i, r := range raw {
			if i%7 == 0 {
				deg[i] = r // occasional large degree
			} else {
				deg[i] = r % 30000
			}
		}
		tab, err := EncodeDegrees(deg)
		if err != nil {
			return len(deg) > maxOverflow // only plausible for huge inputs
		}
		return reflect.DeepEqual(tab.Decode(), deg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion preserves the edge multiset for random undirected
// graphs at random tile widths (the converter's permutation invariance).
func TestQuickConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed uint64, rawBits, rawQ uint8) bool {
		n++
		cfg := gen.Graph500Config(8, 4, seed)
		el, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		bits := uint(rawBits)%5 + 3
		q := uint32(rawQ)%4 + 1
		g, err := Convert(el, dir, "q"+string(rune('a'+n%26)), testOpts(bits, q))
		if err != nil {
			return false
		}
		defer g.Close()
		var got []graph.Edge
		if err := g.ForEachEdge(func(s, d uint32) {
			got = append(got, graph.Edge{Src: s, Dst: d})
		}); err != nil {
			return false
		}
		want := append([]graph.Edge(nil), el.Edges...)
		sortEdges(got)
		sortEdges(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStartEdgeAccounting(t *testing.T) {
	el := paperGraph()
	dir := t.TempDir()
	g, err := Convert(el, dir, "acct", testOpts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.StartBytes() != int64(g.Layout.NumTiles()+1)*8 {
		t.Fatalf("StartBytes = %d", g.StartBytes())
	}
	if g.DataBytes() != 9*SNBTupleBytes {
		t.Fatalf("DataBytes = %d", g.DataBytes())
	}
	total := int64(0)
	for i := 0; i < g.Layout.NumTiles(); i++ {
		off, n := g.TileByteRange(i)
		if off != g.Start[i]*SNBTupleBytes {
			t.Fatalf("tile %d offset %d", i, off)
		}
		total += n
	}
	if total != g.DataBytes() {
		t.Fatalf("tile ranges cover %d bytes of %d", total, g.DataBytes())
	}
}

func TestConvertEdgeListFile(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lp := filepath.Join(dir, "edges.bin")
	if err := graph.WriteEdgeListFile(lp, el); err != nil {
		t.Fatal(err)
	}
	g, err := ConvertEdgeListFile(lp, el.NumVertices, false, dir, "fromfile", testOpts(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Meta.NumStored != int64(len(el.Edges)) {
		t.Fatalf("stored %d edges, want %d", g.Meta.NumStored, len(el.Edges))
	}
}

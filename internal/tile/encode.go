package tile

import (
	"encoding/binary"
	"fmt"
)

// The SNB (smallest number of bits) tuple encoding, §IV-B: inside tile
// [i,j] every source vertex lies in [i*2^b, (i+1)*2^b) and every
// destination in [j*2^b, (j+1)*2^b), so the high bits are implied by the
// tile coordinates and only the low b bits of each endpoint are stored.
// With the paper's b=16 a tuple is 4 bytes: uint16 src offset, uint16 dst
// offset, little endian.

// PutSNB encodes one tuple into buf[:4].
func PutSNB(buf []byte, srcOff, dstOff uint16) {
	binary.LittleEndian.PutUint16(buf[0:2], srcOff)
	binary.LittleEndian.PutUint16(buf[2:4], dstOff)
}

// GetSNB decodes one tuple from buf[:4].
func GetSNB(buf []byte) (srcOff, dstOff uint16) {
	return binary.LittleEndian.Uint16(buf[0:2]), binary.LittleEndian.Uint16(buf[2:4])
}

// PutRaw encodes a full 8-byte tuple (no SNB; used by the Figure 10
// "symmetry only" ablation).
func PutRaw(buf []byte, src, dst uint32) {
	binary.LittleEndian.PutUint32(buf[0:4], src)
	binary.LittleEndian.PutUint32(buf[4:8], dst)
}

// GetRaw decodes a full 8-byte tuple.
func GetRaw(buf []byte) (src, dst uint32) {
	return binary.LittleEndian.Uint32(buf[0:4]), binary.LittleEndian.Uint32(buf[4:8])
}

// DecodeTuples iterates over the tuples of one tile's data in codec c.
// rowBase and colBase are the first vertex IDs of the tile's row and
// column ranges (ignored for raw tuples, which carry full IDs). It
// returns an error if data is not a whole number of tuples (fixed-width
// codecs) or its block structure is corrupt (v3).
func DecodeTuples(data []byte, c Codec, rowBase, colBase uint32, fn func(src, dst uint32)) error {
	switch c {
	case CodecSNB:
		if len(data)%SNBTupleBytes != 0 {
			return fmt.Errorf("tile: %d bytes is not a whole number of SNB tuples", len(data))
		}
		for i := 0; i < len(data); i += SNBTupleBytes {
			s, d := GetSNB(data[i:])
			fn(rowBase+uint32(s), colBase+uint32(d))
		}
		return nil
	case CodecV3:
		return DecodeV3(data, rowBase, colBase, fn)
	}
	if len(data)%RawTupleBytes != 0 {
		return fmt.Errorf("tile: %d bytes is not a whole number of raw tuples", len(data))
	}
	for i := 0; i < len(data); i += RawTupleBytes {
		s, d := GetRaw(data[i:])
		fn(s, d)
	}
	return nil
}

// Compact degree encoding, §IV-C: each vertex gets a 2-byte entry. If the
// degree is below 2^15 it is stored directly with the MSB clear; otherwise
// the MSB is set and the low 15 bits index an overflow array holding the
// full 32-bit degree. The paper notes the optimization applies only while
// the number of large-degree vertices stays below 2^15.

const (
	degreeEscape   = uint16(0x8000)
	maxSmallDegree = uint32(0x7fff)
	maxOverflow    = 1 << 15
)

// DegreeSource answers degree queries for the algorithms that need them
// (PageRank divides by out-degree; §IV-C). Implementations are the compact
// DegreeTable and the PlainDegrees fallback.
type DegreeSource interface {
	Degree(v uint32) uint32
	SizeBytes() int64
}

// PlainDegrees is the uncompressed fallback used when a graph has too many
// high-degree vertices for the compact encoding.
type PlainDegrees []uint32

// Degree returns the degree of vertex v.
func (p PlainDegrees) Degree(v uint32) uint32 { return p[v] }

// SizeBytes reports the 4-bytes-per-vertex footprint.
func (p PlainDegrees) SizeBytes() int64 { return int64(len(p)) * 4 }

// DegreeTable is the in-memory form of a compact degree array.
type DegreeTable struct {
	Small    []uint16
	Overflow []uint32
}

// ErrDegreeOverflow reports that a graph has too many high-degree vertices
// for the compact encoding; callers fall back to a plain uint32 array.
var ErrDegreeOverflow = fmt.Errorf("tile: more than %d vertices exceed degree %d", maxOverflow, maxSmallDegree)

// EncodeDegrees builds the compact representation of deg.
func EncodeDegrees(deg []uint32) (*DegreeTable, error) {
	t := &DegreeTable{Small: make([]uint16, len(deg))}
	for v, d := range deg {
		if d <= maxSmallDegree {
			t.Small[v] = uint16(d)
			continue
		}
		if len(t.Overflow) >= maxOverflow {
			return nil, ErrDegreeOverflow
		}
		t.Small[v] = degreeEscape | uint16(len(t.Overflow))
		t.Overflow = append(t.Overflow, d)
	}
	return t, nil
}

// Degree returns the degree of vertex v.
func (t *DegreeTable) Degree(v uint32) uint32 {
	s := t.Small[v]
	if s&degreeEscape == 0 {
		return uint32(s)
	}
	return t.Overflow[s&^degreeEscape]
}

// Decode expands the table back into a plain slice.
func (t *DegreeTable) Decode() []uint32 {
	out := make([]uint32, len(t.Small))
	for v := range t.Small {
		out[v] = t.Degree(uint32(v))
	}
	return out
}

// SizeBytes reports the storage footprint of the compact encoding.
func (t *DegreeTable) SizeBytes() int64 {
	return int64(len(t.Small))*2 + int64(len(t.Overflow))*4
}

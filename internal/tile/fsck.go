package tile

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/gwu-systems/gstore/internal/grid"
)

// FsckFinding is one problem discovered by Fsck.
type FsckFinding struct {
	// Section names the damaged file: "meta", "start", "tiles", "crc" or
	// "deg".
	Section string
	// Tile is the disk index of the corrupt tile for tile-granular
	// findings, -1 otherwise.
	Tile int
	// Detail is a human-readable description.
	Detail string
}

func (f FsckFinding) String() string {
	if f.Tile >= 0 {
		return fmt.Sprintf("%s: tile %d: %s", f.Section, f.Tile, f.Detail)
	}
	return fmt.Sprintf("%s: %s", f.Section, f.Detail)
}

// FsckReport is the result of an offline integrity check.
type FsckReport struct {
	Base        string
	Version     int
	Checksummed bool
	// TilesChecked counts tiles whose per-tile CRC32C was verified.
	TilesChecked int
	// TuplesChecked counts tuples whose endpoints were range-validated.
	TuplesChecked int64
	Findings      []FsckFinding
	// Truncated is set when the findings list hit its cap and further
	// problems were suppressed.
	Truncated bool
}

// OK reports whether the graph passed every applicable check.
func (r *FsckReport) OK() bool { return len(r.Findings) == 0 && !r.Truncated }

// maxFsckFindings bounds the report so a wholly scrambled multi-terabyte
// graph cannot balloon memory; the cap is noted in the report.
const maxFsckFindings = 64

func (r *FsckReport) add(section string, tileIdx int, format string, args ...interface{}) {
	if len(r.Findings) >= maxFsckFindings {
		r.Truncated = true
		return
	}
	r.Findings = append(r.Findings, FsckFinding{
		Section: section, Tile: tileIdx, Detail: fmt.Sprintf(format, args...),
	})
}

// Fsck validates the graph stored at base path p offline and reports
// every problem it can find rather than stopping at the first:
//
//   - meta: readable, checksum trailer intact (v2), JSON valid, header
//     invariants hold
//   - start: manifest length+digest (v2), entries non-negative and
//     monotone from zero, final entry matching the meta edge count
//   - crc: manifest length+digest (v2)
//   - tiles: file size, whole-file digest (v2), then per-tile: CRC32C
//     against the sidecar (v2) and every decoded tuple inside its tile's
//     vertex ranges
//   - deg: manifest length+digest (v2), decodable, and in agreement with
//     the degrees recounted from the tuples
//
// Unlike Open, Fsck never trusts one section to validate another: a
// corrupt start index does not prevent the tiles file's whole-file digest
// from being checked. It works on v1 graphs too, skipping the checksum
// layers (Checksummed reports false in that case).
func Fsck(p string) *FsckReport {
	r := &FsckReport{Base: p}

	// --- meta ---------------------------------------------------------
	data, err := os.ReadFile(metaPath(p))
	if err != nil {
		r.add("meta", -1, "unreadable: %v", err)
		return r
	}
	payload, sum, signed := splitMetaTrailer(data)
	if signed {
		if got := Checksum(payload); got != sum {
			r.add("meta", -1, "checksum %08x does not match trailer %08x (corrupt header)", got, sum)
			return r
		}
	}
	var m Meta
	if err := json.Unmarshal(payload, &m); err != nil {
		r.add("meta", -1, "corrupt JSON: %v", err)
		return r
	}
	if err := m.Validate(); err != nil {
		r.add("meta", -1, "invalid header: %v", err)
		return r
	}
	if m.Version >= Version && !signed {
		r.add("meta", -1, "v%d header has no checksum trailer (truncated)", m.Version)
		return r
	}
	r.Version = m.Version
	r.Checksummed = m.Version >= Version
	layout, err := grid.New(m.NumVertices, m.TileBits, m.GroupQ, !m.Directed && m.Half)
	if err != nil {
		r.add("meta", -1, "layout: %v", err)
		return r
	}
	nt := layout.NumTiles()
	codec := m.TupleCodec()
	tb := m.TupleBytes()

	// --- start --------------------------------------------------------
	// For v3 graphs the start file also carries the byte-offset index
	// that locates each variable-width tile.
	var start, byteOff []int64
	if sdata, err := os.ReadFile(startPath(p)); err != nil {
		r.add("start", -1, "unreadable: %v", err)
	} else {
		if r.Checksummed {
			if err := m.Manifest.Start.check("start-edge file", sumBytes(sdata)); err != nil {
				r.add("start", -1, "%v", err)
			}
		}
		if s, bo, err := parseStartCodec(sdata, startPath(p), nt, codec); err != nil {
			r.add("start", -1, "%v", err)
		} else if s[nt] != m.NumStored {
			r.add("start", -1, "ends at %d tuples, meta says %d", s[nt], m.NumStored)
		} else {
			start, byteOff = s, bo
		}
	}

	// --- crc sidecar --------------------------------------------------
	var tileCRC []uint32
	if r.Checksummed {
		if cdata, err := os.ReadFile(crcPath(p)); err != nil {
			r.add("crc", -1, "unreadable: %v", err)
		} else {
			if err := m.Manifest.TileCRC.check("tile checksum file", sumBytes(cdata)); err != nil {
				r.add("crc", -1, "%v", err)
			} else if c, err := decodeTileCRCs(cdata, nt); err != nil {
				r.add("crc", -1, "%v", err)
			} else {
				tileCRC = c
			}
		}
	}

	// --- tiles --------------------------------------------------------
	var deg []uint32
	if m.DegreeFormat != "" {
		deg = make([]uint32, m.NumVertices)
	}
	tf, err := os.Open(tilesPath(p))
	if err != nil {
		r.add("tiles", -1, "unreadable: %v", err)
	} else {
		func() {
			defer tf.Close()
			st, err := tf.Stat()
			if err != nil {
				r.add("tiles", -1, "stat: %v", err)
				return
			}
			if codec == CodecV3 {
				// Variable-width tiles: the authoritative size is the
				// byte-offset index (cross-checked against the manifest
				// digest above when available).
				if byteOff != nil && st.Size() != byteOff[nt] {
					r.add("tiles", -1, "file is %d bytes, byte-offset index says %d",
						st.Size(), byteOff[nt])
					return
				}
			} else if want := m.NumStored * tb; st.Size() != want {
				r.add("tiles", -1, "file is %d bytes, want %d (%d tuples × %d bytes)",
					st.Size(), want, m.NumStored, tb)
				return
			}
			if r.Checksummed {
				got, err := fileSum(tilesPath(p))
				if err != nil {
					r.add("tiles", -1, "digest: %v", err)
				} else if err := m.Manifest.Tiles.check("tiles file", got); err != nil {
					r.add("tiles", -1, "%v", err)
				}
			}
			if start == nil || (codec == CodecV3 && byteOff == nil) {
				return // cannot locate individual tiles without the index
			}
			var buf []byte
			for i := 0; i < nt; i++ {
				off, n := start[i]*tb, (start[i+1]-start[i])*tb
				if codec == CodecV3 {
					off, n = byteOff[i], byteOff[i+1]-byteOff[i]
				}
				if int64(cap(buf)) < n {
					buf = make([]byte, n)
				}
				b := buf[:n]
				if n > 0 {
					if _, err := tf.ReadAt(b, off); err != nil {
						r.add("tiles", i, "read: %v", err)
						continue
					}
				}
				if tileCRC != nil {
					if got := Checksum(b); got != tileCRC[i] {
						c := layout.CoordAt(i)
						r.add("tiles", i, "crc32c %08x, want %08x (row %d, col %d)",
							got, tileCRC[i], c.Row, c.Col)
						continue
					}
					r.TilesChecked++
				}
				co := layout.CoordAt(i)
				rLo, rHi := layout.VertexRange(co.Row)
				cLo, cHi := layout.VertexRange(co.Col)
				bad := -1
				idx := 0
				err := DecodeTuples(b, codec, rLo, cLo, func(s, d uint32) {
					if bad < 0 && (s < rLo || s >= rHi || d < cLo || d >= cHi ||
						s >= m.NumVertices || d >= m.NumVertices) {
						bad = idx
					}
					if deg != nil && s < m.NumVertices && d < m.NumVertices {
						deg[s]++
						if !m.Directed && m.Half && s != d {
							deg[d]++
						}
					}
					idx++
				})
				r.TuplesChecked += int64(idx)
				switch {
				case err != nil:
					r.add("tiles", i, "undecodable: %v", err)
				case bad >= 0:
					r.add("tiles", i, "tuple %d outside tile ranges (row %d, col %d)",
						bad, co.Row, co.Col)
				case int64(idx) != start[i+1]-start[i]:
					// Meaningful for v3, where the block headers carry their
					// own tuple counts; fixed-width codecs satisfy this by
					// construction.
					r.add("tiles", i, "decodes to %d tuples, start-edge index says %d",
						idx, start[i+1]-start[i])
				}
			}
		}()
	}

	// --- deg ----------------------------------------------------------
	if m.DegreeFormat != "" {
		if ddata, err := os.ReadFile(degPath(p)); err != nil {
			r.add("deg", -1, "unreadable: %v", err)
		} else {
			if r.Checksummed && m.Manifest.Deg != nil {
				if err := m.Manifest.Deg.check("degree file", sumBytes(ddata)); err != nil {
					r.add("deg", -1, "%v", err)
				}
			}
			src, err := decodeDegreeFile(ddata, int(m.NumVertices), m.DegreeFormat)
			switch {
			case err != nil:
				r.add("deg", -1, "undecodable: %v", err)
			case deg != nil && start != nil && !hasTileFindings(r):
				// Degree agreement is only meaningful over intact tuples;
				// with tile-level damage the recount is itself suspect.
				for v := uint32(0); v < m.NumVertices; v++ {
					if got := src.Degree(v); got != deg[v] {
						r.add("deg", -1, "vertex %d: degree file says %d, tuples say %d", v, got, deg[v])
					}
				}
			}
		}
	}
	return r
}

func hasTileFindings(r *FsckReport) bool {
	for _, f := range r.Findings {
		if f.Section == "tiles" || f.Section == "start" {
			return true
		}
	}
	return false
}

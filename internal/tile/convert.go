package tile

import (
	"fmt"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/fsutil"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/grid"
)

// ConvertOptions controls the conversion of an edge list into the tile
// format. The zero value is not valid; use DefaultConvertOptions.
type ConvertOptions struct {
	// TileBits is the log2 tile width (the paper uses 16; tests use less).
	TileBits uint
	// GroupQ is the physical group width in tiles (§V-A; the paper finds
	// 256 optimal on its hardware).
	GroupQ uint32
	// Symmetry stores only the upper triangle of undirected graphs
	// (§IV-A). Ignored for directed graphs, which always store one
	// direction only. Disabling it reproduces the "Base" and "Symmetry
	// off" ablation configurations of Figure 10.
	Symmetry bool
	// SNB selects the 4-byte smallest-number-of-bits tuples (§IV-B);
	// disabled it writes full 8-byte tuples (Figure 10 "Symmetry only").
	// Ignored when Codec is set.
	SNB bool
	// Codec names the tuple codec explicitly: "snb", "raw" or "v3"
	// (sorted delta+varint blocks, written as format version 3). Empty
	// derives snb/raw from the SNB flag.
	Codec string
	// Degrees writes the degree file alongside the graph.
	Degrees bool
	// FormatVersion selects the on-disk format: 0 means the version the
	// codec implies (v2 for snb/raw, v3 for the v3 codec); VersionV1
	// writes the legacy layout without checksums for compatibility
	// testing.
	FormatVersion int
	// FS routes the converter's file writes; nil selects the real
	// filesystem. The fault-injection harness uses it to crash or fail
	// conversions at arbitrary points.
	FS faultfs.FS
}

// codec resolves the Codec/SNB fields into the tuple codec to write.
func (o ConvertOptions) codec() (Codec, error) {
	if o.Codec == "" {
		if o.SNB {
			return CodecSNB, nil
		}
		return CodecRaw, nil
	}
	return ParseCodec(o.Codec)
}

// formatVersion resolves FormatVersion against the codec, validating the
// combination.
func (o ConvertOptions) formatVersion(c Codec) (int, error) {
	switch o.FormatVersion {
	case 0:
		return c.FormatVersion(), nil
	case Version, VersionV1:
		if c == CodecV3 {
			return 0, fmt.Errorf("tile: codec v3 requires format version %d, not %d", VersionV3, o.FormatVersion)
		}
		return o.FormatVersion, nil
	case VersionV3:
		if c != CodecV3 {
			return 0, fmt.Errorf("tile: format version %d requires codec v3, not %q", VersionV3, c)
		}
		return VersionV3, nil
	default:
		return 0, fmt.Errorf("tile: cannot write format version %d", o.FormatVersion)
	}
}

// DefaultConvertOptions returns the paper's configuration.
func DefaultConvertOptions() ConvertOptions {
	return ConvertOptions{TileBits: 16, GroupQ: 256, Symmetry: true, SNB: true, Degrees: true}
}

// MaxConvertBytes caps the in-memory staging buffer of the converter.
// Graphs beyond this would need the external multi-pass converter the
// paper alludes to; at reproduction scale this limit is never hit.
const MaxConvertBytes = int64(1) << 33

// Convert writes el in tile format under dir with the given base name and
// returns an opened Graph. It is the two-pass process of §IV-B: pass one
// counts tuples per tile to build the start-edge array, pass two scatters
// encoded tuples to their slots.
func Convert(el *graph.EdgeList, dir, name string, opts ConvertOptions) (*Graph, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	half := !el.Directed && opts.Symmetry
	layout, err := grid.New(el.NumVertices, opts.TileBits, opts.GroupQ, half)
	if err != nil {
		return nil, err
	}
	nt := layout.NumTiles()

	// Pass 1: count tuples per stored tile.
	counts := make([]int64, nt)
	forEachStored(el, layout, func(di int, src, dst uint32) {
		counts[di]++
	})
	start := make([]int64, nt+1)
	for i, c := range counts {
		start[i+1] = start[i] + c
	}
	numStored := start[nt]

	codec, err := opts.codec()
	if err != nil {
		return nil, err
	}
	ver, err := opts.formatVersion(codec)
	if err != nil {
		return nil, err
	}
	tupleBytes := codec.TupleBytes()
	if tupleBytes == 0 {
		tupleBytes = SNBTupleBytes // v3 staging estimate: 4-byte sort keys
	}
	if total := numStored * tupleBytes; total > MaxConvertBytes {
		return nil, fmt.Errorf("tile: graph needs %d staging bytes, above the %d cap", total, MaxConvertBytes)
	}

	// Pass 2: scatter encoded tuples. Fixed-width codecs scatter encoded
	// bytes directly to their slots; v3 scatters packed sort keys into
	// per-tile ranges, then sorts and block-encodes each tile.
	next := make([]int64, nt)
	copy(next, start[:nt])
	mask := layout.TileWidth() - 1
	var data []byte
	var byteOff []int64
	switch codec {
	case CodecV3:
		keys := make([]uint32, numStored)
		forEachStored(el, layout, func(di int, src, dst uint32) {
			keys[next[di]] = V3Key(src&mask, dst&mask, opts.TileBits)
			next[di]++
		})
		byteOff = make([]int64, nt+1)
		for i := 0; i < nt; i++ {
			data = AppendV3(data, keys[start[i]:start[i+1]], opts.TileBits)
			byteOff[i+1] = int64(len(data))
		}
	default:
		data = make([]byte, numStored*tupleBytes)
		forEachStored(el, layout, func(di int, src, dst uint32) {
			p := next[di] * tupleBytes
			next[di]++
			if codec == CodecSNB {
				PutSNB(data[p:], uint16(src&mask), uint16(dst&mask))
			} else {
				PutRaw(data[p:], src, dst)
			}
		})
	}
	m := &Meta{
		Magic: Magic, Version: ver, Name: name,
		NumVertices: el.NumVertices,
		NumStored:   numStored,
		NumOriginal: int64(len(el.Edges)),
		TileBits:    opts.TileBits,
		GroupQ:      layout.Q,
		Directed:    el.Directed,
		Half:        half,
		SNB:         codec.SNB(),
	}
	if codec == CodecV3 || opts.Codec != "" {
		m.Codec = codec.String()
	}

	fsys := faultfs.Default(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	base := BasePath(dir, name)

	// All sections are written crash-safely (tmp + fsync + rename), the
	// meta header last: a crash at any point leaves either no meta (graph
	// absent) or a meta whose manifest matches fully written sections.
	var degData []byte
	if opts.Degrees {
		deg := el.OutDegrees()
		if t, err := EncodeDegrees(deg); err == nil {
			m.DegreeFormat = "compact"
			degData = encodeDegreeFile(t)
		} else if err == ErrDegreeOverflow {
			m.DegreeFormat = "plain"
			degData = encodePlainDegreeFile(deg)
		} else {
			return nil, err
		}
		if err := fsutil.WriteFileFS(fsys, degPath(base), degData, 0o644); err != nil {
			return nil, err
		}
	}
	startData := encodeStart(start)
	if codec == CodecV3 {
		startData = encodeStartV3(start, byteOff)
	}
	if err := fsutil.WriteFileFS(fsys, tilesPath(base), data, 0o644); err != nil {
		return nil, err
	}
	if err := fsutil.WriteFileFS(fsys, startPath(base), startData, 0o644); err != nil {
		return nil, err
	}
	if ver >= Version {
		var crcs []uint32
		if codec == CodecV3 {
			crcs = tileChecksumsAt(data, byteOff)
		} else {
			crcs = tileChecksums(data, start, tupleBytes)
		}
		crcData := encodeTileCRCs(crcs)
		if err := fsutil.WriteFileFS(fsys, crcPath(base), crcData, 0o644); err != nil {
			return nil, err
		}
		m.Manifest = &Manifest{
			Start:   sumBytes(startData),
			Tiles:   sumBytes(data),
			TileCRC: sumBytes(crcData),
		}
		if degData != nil {
			s := sumBytes(degData)
			m.Manifest.Deg = &s
		}
	}
	// Meta last: the commit point of the conversion. A crash right here
	// leaves every section written but no meta — the graph simply does
	// not exist yet, which recovery treats as "conversion never happened".
	if err := fsys.CrashPoint("tile.convert.before-meta"); err != nil {
		return nil, err
	}
	if err := writeMeta(fsys, base, m); err != nil {
		return nil, err
	}
	return Open(base)
}

// forEachStored maps every input edge to its stored tile (disk index) and
// the tuple endpoints as stored. Undirected half layouts store the
// canonical direction once; undirected full layouts (ablation) store both
// directions (self loops once), reproducing the traditional duplicated
// representation; directed graphs store out-edges as given.
func forEachStored(el *graph.EdgeList, layout *grid.Layout, fn func(diskIdx int, src, dst uint32)) {
	for _, e := range el.Edges {
		s, d := e.Src, e.Dst
		if layout.Half && s > d {
			s, d = d, s
		}
		di := layout.DiskIndex(layout.TileOf(s), layout.TileOf(d))
		fn(di, s, d)
		if !el.Directed && !layout.Half && s != d {
			dj := layout.DiskIndex(layout.TileOf(d), layout.TileOf(s))
			fn(dj, d, s)
		}
	}
}

// ConvertEdgeListFile reads a binary edge list from path and converts it.
// numVertices and directed describe the input (edge-list files carry no
// header).
func ConvertEdgeListFile(path string, numVertices uint32, directed bool, dir, name string, opts ConvertOptions) (*Graph, error) {
	el, err := graph.ReadEdgeListFile(path, numVertices, directed)
	if err != nil {
		return nil, err
	}
	if !directed {
		el.Canonicalize()
	}
	return Convert(el, dir, name, opts)
}

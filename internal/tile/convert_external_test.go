package tile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func writeEdges(t *testing.T, el *graph.EdgeList) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "edges.bin")
	if err := graph.WriteEdgeListFile(p, el); err != nil {
		t.Fatal(err)
	}
	return p
}

func extOpts(bits uint, budget int64) ExternalConvertOptions {
	return ExternalConvertOptions{
		ConvertOptions: ConvertOptions{TileBits: bits, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true},
		MemoryBudget:   budget,
	}
}

// The external converter must produce byte-identical files to the
// in-memory converter (same tuples, same order).
func TestExternalMatchesInMemory(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(10, 8, 77))
	if err != nil {
		t.Fatal(err)
	}
	edgePath := writeEdges(t, el)

	memDir := t.TempDir()
	gm, err := Convert(el, memDir, "m", ConvertOptions{
		TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()

	extDir := t.TempDir()
	// A deliberately tiny budget forces many buckets.
	ge, err := ConvertExternal(edgePath, el.NumVertices, false, extDir, "e", extOpts(6, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()

	for _, ext := range []string{".tiles", ".start", ".deg"} {
		a, err := os.ReadFile(BasePath(memDir, "m") + ext)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(BasePath(extDir, "e") + ext)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between converters (%d vs %d bytes)", ext, len(a), len(b))
		}
	}
	if gm.Meta.NumStored != ge.Meta.NumStored || gm.Meta.NumOriginal != ge.Meta.NumOriginal {
		t.Fatalf("meta mismatch: %+v vs %+v", gm.Meta, ge.Meta)
	}
}

func TestExternalDirected(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 4, 78))
	if err != nil {
		t.Fatal(err)
	}
	edgePath := writeEdges(t, el)
	g, err := ConvertExternal(edgePath, el.NumVertices, true, t.TempDir(), "d", extOpts(5, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Meta.Half || !g.Meta.Directed {
		t.Fatalf("meta = %+v", g.Meta)
	}
	if g.Meta.NumStored != int64(len(el.Edges)) {
		t.Fatalf("stored %d, want %d", g.Meta.NumStored, len(el.Edges))
	}
}

func TestExternalTileOverBudget(t *testing.T) {
	el, err := gen.Generate(gen.Graph500Config(8, 8, 79))
	if err != nil {
		t.Fatal(err)
	}
	edgePath := writeEdges(t, el)
	// Budget smaller than the biggest tile must be rejected with a clear
	// error rather than a corrupt file.
	if _, err := ConvertExternal(edgePath, el.NumVertices, false, t.TempDir(), "x", extOpts(6, 16)); err == nil {
		t.Fatal("oversized tile accepted")
	}
}

func TestExternalRejectsBadEdges(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 8, Edges: []graph.Edge{{Src: 1, Dst: 2}}}
	edgePath := writeEdges(t, el)
	if _, err := ConvertExternal(edgePath, 2, false, t.TempDir(), "x", extOpts(2, 1<<20)); err == nil {
		t.Fatal("out-of-range edges accepted")
	}
	if _, err := ConvertExternal(filepath.Join(t.TempDir(), "missing"), 8, false, t.TempDir(), "x", extOpts(2, 1<<20)); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestExternalZeroVertices(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 4}
	edgePath := writeEdges(t, el)
	if _, err := ConvertExternal(edgePath, 0, false, t.TempDir(), "x", extOpts(2, 1<<20)); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

// Property: external and in-memory conversion agree for random graphs,
// budgets and tile widths.
func TestQuickExternalEquivalence(t *testing.T) {
	f := func(seed uint64, rawBits, rawBudget uint8) bool {
		el, err := gen.Generate(gen.Graph500Config(8, 4, seed))
		if err != nil {
			return false
		}
		bits := uint(rawBits)%4 + 4
		budget := int64(rawBudget)*64 + 2048
		dir := t.TempDir()
		edgePath := filepath.Join(dir, "edges.bin")
		if err := graph.WriteEdgeListFile(edgePath, el); err != nil {
			return false
		}
		gm, err := Convert(el, dir, "m", ConvertOptions{
			TileBits: bits, GroupQ: 2, Symmetry: true, SNB: true,
		})
		if err != nil {
			return false
		}
		defer gm.Close()
		ge, err := ConvertExternal(edgePath, el.NumVertices, false, dir, "e", ExternalConvertOptions{
			ConvertOptions: ConvertOptions{TileBits: bits, GroupQ: 2, Symmetry: true, SNB: true},
			MemoryBudget:   budget,
		})
		if err != nil {
			// A single tile exceeding the random budget is a legitimate
			// rejection, not an equivalence failure.
			return strings.Contains(err.Error(), "above the")
		}
		defer ge.Close()
		a, err := os.ReadFile(BasePath(dir, "m") + ".tiles")
		if err != nil {
			return false
		}
		b, err := os.ReadFile(BasePath(dir, "e") + ".tiles")
		if err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Package mem implements G-Store's copy-based memory management for
// streaming and caching graph data (§VI-A of the paper).
//
// The memory reserved for graph data is split into two fixed-size
// *segments* and a *cache pool*. The two segments double-buffer I/O and
// processing: one is being filled from disk while the other is processed.
// Instead of page-granular caching (whose headers and fragmentation the
// paper rejects), a processed segment's tiles are appended — copied — into
// the cache pool, and when the pool fills, a caller-supplied predicate
// (the proactive caching rules of §VI-C) decides which tiles survive the
// compaction.
//
// The Manager is not safe for concurrent mutation; the engine serializes
// pool operations between processing phases, which matches the paper's
// design (cache analysis happens only when the pool is full, at Ti in
// Figure 8).
package mem

import (
	"fmt"

	"github.com/gwu-systems/gstore/internal/tile"
)

// TileRef locates one tile's data inside a segment or the cache pool.
type TileRef struct {
	// DiskIdx is the tile's disk-order index (grid.Layout coordinates can
	// be recovered from it).
	DiskIdx int
	Row     uint32
	Col     uint32
	// Codec is the tuple encoding of Data; it decides how Chunks may
	// split the tile (byte offsets for fixed-width codecs, decode-block
	// boundaries for v3).
	Codec tile.Codec
	// Data aliases the owning buffer. It is invalidated by pool
	// compaction; engines must not hold refs across Evict.
	Data []byte
}

// Chunks splits the tile's data into consecutive views of at most
// chunkBytes each, for chunked work dispatch. For fixed-width codecs
// chunkBytes must be positive and a multiple of the graph's tuple size —
// every view except possibly the last is then exactly chunkBytes, so no
// tuple straddles a boundary. For the v3 codec views are whole decode
// blocks (each block restarts the delta chains, so any run of blocks
// decodes independently); a view may then exceed chunkBytes only when a
// single block does. The views alias r.Data and share its invalidation
// rules.
func (r TileRef) Chunks(chunkBytes int64) [][]byte {
	n := int64(len(r.Data))
	if chunkBytes <= 0 || n <= chunkBytes {
		return [][]byte{r.Data}
	}
	if r.Codec == tile.CodecV3 {
		if views := tile.SplitV3(r.Data, chunkBytes); views != nil {
			return views
		}
		// Corrupt framing: dispatch the whole tile and let its decode
		// report the corruption.
		return [][]byte{r.Data}
	}
	views := make([][]byte, 0, (n+chunkBytes-1)/chunkBytes)
	for off := int64(0); off < n; off += chunkBytes {
		end := off + chunkBytes
		if end > n {
			end = n
		}
		views = append(views, r.Data[off:end])
	}
	return views
}

// Segment is one streaming buffer. The engine fills Buf from disk with a
// single batched read of consecutive tiles and then registers the tile
// boundaries with SetTiles.
type Segment struct {
	Buf   []byte
	tiles []TileRef
	inUse bool
}

// SetTiles records which tiles the segment currently holds. The refs'
// Data slices must alias s.Buf.
func (s *Segment) SetTiles(refs []TileRef) {
	s.tiles = append(s.tiles[:0], refs...)
}

// Tiles returns the registered tiles.
func (s *Segment) Tiles() []TileRef { return s.tiles }

// Stats reports memory-manager activity.
type Stats struct {
	// CopiedBytes counts bytes memcpy'd into the pool (the cost of the
	// copy-based scheme).
	CopiedBytes int64
	// EvictedTiles counts tiles dropped by pool compactions.
	EvictedTiles int64
	// DroppedTiles counts tiles that could not be cached for lack of
	// space even after compaction.
	DroppedTiles int64
	// Compactions counts Evict calls.
	Compactions int64
}

// Manager owns the streaming segments and the cache pool.
type Manager struct {
	segmentSize int64
	segments    [2]*Segment

	pool      []byte
	poolUsed  int64
	poolTiles []TileRef
	byDisk    map[int]int // DiskIdx -> index into poolTiles

	stats Stats
}

// NewManager divides totalBytes of graph-data memory into two segments of
// segmentSize and a cache pool with the remainder (which may be zero; the
// paper's "base policy" ablation runs pool-less).
func NewManager(totalBytes, segmentSize int64) (*Manager, error) {
	if segmentSize <= 0 {
		return nil, fmt.Errorf("mem: segment size %d must be positive", segmentSize)
	}
	if totalBytes < 2*segmentSize {
		return nil, fmt.Errorf("mem: total %d cannot hold two %d-byte segments", totalBytes, segmentSize)
	}
	m := &Manager{
		segmentSize: segmentSize,
		pool:        make([]byte, totalBytes-2*segmentSize),
		byDisk:      make(map[int]int),
	}
	for i := range m.segments {
		m.segments[i] = &Segment{Buf: make([]byte, segmentSize)}
	}
	return m, nil
}

// SegmentSize returns the configured streaming segment size.
func (m *Manager) SegmentSize() int64 { return m.segmentSize }

// PoolCap returns the cache pool capacity in bytes.
func (m *Manager) PoolCap() int64 { return int64(len(m.pool)) }

// PoolUsed returns the bytes currently cached.
func (m *Manager) PoolUsed() int64 { return m.poolUsed }

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// Acquire returns a free segment for I/O, or nil if both are in use.
func (m *Manager) Acquire() *Segment {
	for _, s := range m.segments {
		if !s.inUse {
			s.inUse = true
			s.tiles = s.tiles[:0]
			return s
		}
	}
	return nil
}

// Release returns a segment to the free list without caching its tiles
// (used at iteration end, when Figure 8 keeps the last segments for the
// rewind instead of analyzing them).
func (m *Manager) Release(s *Segment) {
	s.inUse = false
	s.tiles = s.tiles[:0]
}

// Retire copies the segment's tiles into the cache pool and frees the
// segment. Tiles that do not fit are dropped (counted in stats). keep
// filters which tiles are worth caching at all (nil keeps everything);
// when the pool is too full, the engine is expected to call Evict first.
func (m *Manager) Retire(s *Segment, keep func(ref TileRef) bool) {
	for _, ref := range s.tiles {
		if keep != nil && !keep(ref) {
			continue
		}
		if m.CachedData(ref.DiskIdx) != nil {
			continue // already cached (rewind can re-process pool tiles)
		}
		n := int64(len(ref.Data))
		if m.poolUsed+n > int64(len(m.pool)) {
			m.stats.DroppedTiles++
			continue
		}
		dst := m.pool[m.poolUsed : m.poolUsed+n]
		copy(dst, ref.Data)
		m.stats.CopiedBytes += n
		m.byDisk[ref.DiskIdx] = len(m.poolTiles)
		m.poolTiles = append(m.poolTiles, TileRef{
			DiskIdx: ref.DiskIdx, Row: ref.Row, Col: ref.Col, Codec: ref.Codec, Data: dst,
		})
		m.poolUsed += n
	}
	m.Release(s)
}

// WouldFit reports whether n more bytes fit in the pool without eviction.
func (m *Manager) WouldFit(n int64) bool {
	return m.poolUsed+n <= int64(len(m.pool))
}

// CachedData returns the pooled data of the tile at diskIdx, or nil.
func (m *Manager) CachedData(diskIdx int) []byte {
	i, ok := m.byDisk[diskIdx]
	if !ok {
		return nil
	}
	return m.poolTiles[i].Data
}

// CachedTiles returns the pool contents in insertion order. The slice and
// the refs' Data are invalidated by Evict.
func (m *Manager) CachedTiles() []TileRef { return m.poolTiles }

// Evict compacts the pool, keeping only tiles for which keep returns
// true. This is the cache-analysis step of Figure 8 (time Ti): the
// proactive caching rules supply keep. All previously returned refs are
// invalidated. It returns the number of bytes freed.
func (m *Manager) Evict(keep func(ref TileRef) bool) int64 {
	m.stats.Compactions++
	freed := int64(0)
	var used int64
	kept := m.poolTiles[:0]
	for _, ref := range m.poolTiles {
		if keep != nil && !keep(ref) {
			delete(m.byDisk, ref.DiskIdx)
			m.stats.EvictedTiles++
			freed += int64(len(ref.Data))
			continue
		}
		n := int64(len(ref.Data))
		dst := m.pool[used : used+n]
		if n > 0 && &dst[0] != &ref.Data[0] {
			copy(dst, ref.Data) // memmove-style compaction (§VI-B)
		}
		ref.Data = dst
		m.byDisk[ref.DiskIdx] = len(kept)
		kept = append(kept, ref)
		used += n
	}
	m.poolTiles = kept
	m.poolUsed = used
	return freed
}

// EvictOldest makes room for need more bytes by evicting pooled tiles in
// insertion order — oldest first, the LRU approximation of a pool that is
// only ever appended to — compacting the survivors left in the same
// single pass. It returns the bytes freed and the tiles evicted. A need
// larger than the pool empties it; a need that already fits is a no-op
// (no compaction, no ref invalidation). All previously returned refs are
// invalidated when eviction happens.
func (m *Manager) EvictOldest(need int64) (freed int64, evicted int) {
	target := int64(len(m.pool)) - need
	if target < 0 {
		target = 0
	}
	if m.poolUsed <= target {
		return 0, 0
	}
	m.stats.Compactions++
	var used int64
	kept := m.poolTiles[:0]
	for _, ref := range m.poolTiles {
		if m.poolUsed-freed > target {
			delete(m.byDisk, ref.DiskIdx)
			m.stats.EvictedTiles++
			freed += int64(len(ref.Data))
			evicted++
			continue
		}
		n := int64(len(ref.Data))
		dst := m.pool[used : used+n]
		if n > 0 && &dst[0] != &ref.Data[0] {
			copy(dst, ref.Data) // memmove-style compaction (§VI-B)
		}
		ref.Data = dst
		m.byDisk[ref.DiskIdx] = len(kept)
		kept = append(kept, ref)
		used += n
	}
	m.poolTiles = kept
	m.poolUsed = used
	return freed, evicted
}

// Clear drops the whole pool (used between algorithm runs).
func (m *Manager) Clear() {
	m.poolTiles = m.poolTiles[:0]
	m.poolUsed = 0
	for k := range m.byDisk {
		delete(m.byDisk, k)
	}
}

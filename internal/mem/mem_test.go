package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newMgr(t *testing.T, total, seg int64) *Manager {
	t.Helper()
	m, err := NewManager(total, seg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fillSegment(s *Segment, tiles ...TileRef) {
	off := 0
	for i := range tiles {
		n := len(tiles[i].Data)
		copy(s.Buf[off:off+n], tiles[i].Data)
		tiles[i].Data = s.Buf[off : off+n]
		off += n
	}
	s.SetTiles(tiles)
}

func tileData(diskIdx int, n int) TileRef {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(diskIdx*31 + i)
	}
	return TileRef{DiskIdx: diskIdx, Row: uint32(diskIdx), Col: uint32(diskIdx), Data: d}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(100, 0); err == nil {
		t.Fatal("zero segment size accepted")
	}
	if _, err := NewManager(100, 60); err == nil {
		t.Fatal("total < 2*segment accepted")
	}
	m := newMgr(t, 1000, 300)
	if m.PoolCap() != 400 {
		t.Fatalf("PoolCap = %d, want 400", m.PoolCap())
	}
	m2 := newMgr(t, 600, 300) // pool-less base policy
	if m2.PoolCap() != 0 {
		t.Fatalf("PoolCap = %d, want 0", m2.PoolCap())
	}
}

func TestAcquireReleaseDoubleBuffer(t *testing.T) {
	m := newMgr(t, 1000, 300)
	a := m.Acquire()
	b := m.Acquire()
	if a == nil || b == nil || a == b {
		t.Fatal("double buffering broken")
	}
	if m.Acquire() != nil {
		t.Fatal("third segment granted")
	}
	m.Release(a)
	if m.Acquire() == nil {
		t.Fatal("released segment not reusable")
	}
}

func TestRetireCachesAndDedups(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(1, 40), tileData(2, 30))
	m.Retire(s, nil)
	if m.PoolUsed() != 70 {
		t.Fatalf("PoolUsed = %d", m.PoolUsed())
	}
	if got := m.CachedData(1); len(got) != 40 || got[0] != byte(31) {
		t.Fatalf("CachedData(1) = %v", got)
	}
	if m.CachedData(99) != nil {
		t.Fatal("phantom tile cached")
	}

	// Retiring the same tile again must not duplicate it.
	s2 := m.Acquire()
	fillSegment(s2, tileData(1, 40))
	m.Retire(s2, nil)
	if m.PoolUsed() != 70 {
		t.Fatalf("duplicate caching: PoolUsed = %d", m.PoolUsed())
	}
}

func TestRetireKeepFilter(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(1, 40), tileData(2, 30))
	m.Retire(s, func(r TileRef) bool { return r.DiskIdx == 2 })
	if m.CachedData(1) != nil {
		t.Fatal("filtered tile cached")
	}
	if m.CachedData(2) == nil {
		t.Fatal("kept tile missing")
	}
}

func TestRetireDropsWhenFull(t *testing.T) {
	m := newMgr(t, 260, 100) // pool of 60
	s := m.Acquire()
	fillSegment(s, tileData(1, 40), tileData(2, 30))
	m.Retire(s, nil)
	if m.CachedData(1) == nil {
		t.Fatal("first tile should fit")
	}
	if m.CachedData(2) != nil {
		t.Fatal("second tile cannot fit in 60-byte pool")
	}
	if m.Stats().DroppedTiles != 1 {
		t.Fatalf("DroppedTiles = %d", m.Stats().DroppedTiles)
	}
}

func TestEvictCompacts(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(1, 40), tileData(2, 30), tileData(3, 20))
	m.Retire(s, nil)
	if m.PoolUsed() != 90 {
		t.Fatalf("PoolUsed = %d", m.PoolUsed())
	}
	freed := m.Evict(func(r TileRef) bool { return r.DiskIdx != 2 })
	if freed != 30 {
		t.Fatalf("freed = %d", freed)
	}
	if m.PoolUsed() != 60 {
		t.Fatalf("PoolUsed after evict = %d", m.PoolUsed())
	}
	// Data must survive compaction intact.
	want := tileData(3, 20)
	if !bytes.Equal(m.CachedData(3), want.Data) {
		t.Fatal("tile 3 corrupted by compaction")
	}
	if m.CachedData(2) != nil {
		t.Fatal("evicted tile still cached")
	}
	if m.Stats().EvictedTiles != 1 || m.Stats().Compactions != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Freed space must be reusable.
	if !m.WouldFit(m.PoolCap() - 60) {
		t.Fatal("WouldFit disagrees with compaction")
	}
}

func TestEvictKeepAllPreservesOrder(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(5, 10), tileData(6, 10))
	m.Retire(s, nil)
	m.Evict(nil)
	tiles := m.CachedTiles()
	if len(tiles) != 2 || tiles[0].DiskIdx != 5 || tiles[1].DiskIdx != 6 {
		t.Fatalf("tiles = %+v", tiles)
	}
}

func TestClear(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(1, 40))
	m.Retire(s, nil)
	m.Clear()
	if m.PoolUsed() != 0 || m.CachedData(1) != nil || len(m.CachedTiles()) != 0 {
		t.Fatal("Clear left residue")
	}
}

func TestSegmentReuseClearsTiles(t *testing.T) {
	m := newMgr(t, 1000, 100)
	s := m.Acquire()
	fillSegment(s, tileData(1, 10))
	m.Release(s)
	s2 := m.Acquire()
	if len(s2.Tiles()) != 0 {
		t.Fatal("reacquired segment kept stale tile refs")
	}
}

// Property: after any sequence of retire/evict operations, pool accounting
// is consistent — PoolUsed equals the sum of cached tile sizes, all
// lookups resolve, and data round-trips.
func TestQuickPoolConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := NewManager(4096, 512)
		if err != nil {
			return false
		}
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // retire a segment with 1-3 tiles
				s := m.Acquire()
				if s == nil {
					return false
				}
				var tiles []TileRef
				for i := 0; i <= int(op%3); i++ {
					tiles = append(tiles, tileData(next, int(op%200)+1))
					next++
				}
				fillSegment(s, tiles...)
				m.Retire(s, nil)
			case 2: // evict ~half
				m.Evict(func(r TileRef) bool { return r.DiskIdx%2 == 0 })
			}
			var sum int64
			for _, ref := range m.CachedTiles() {
				sum += int64(len(ref.Data))
				got := m.CachedData(ref.DiskIdx)
				want := tileData(ref.DiskIdx, len(ref.Data))
				if !bytes.Equal(got, want.Data) {
					return false
				}
			}
			if sum != m.PoolUsed() || m.PoolUsed() > m.PoolCap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The engine's LRU eviction uses a counting closure over CachedTiles to
// drop the k oldest tiles; verify that Evict under such a closure frees
// exactly the sum of the dropped tiles' sizes and keeps the rest intact.
func TestEvictCountClosureAccounting(t *testing.T) {
	m := newMgr(t, 1200, 400) // pool of 400
	sizes := []int{50, 70, 30, 90, 60}
	s := m.Acquire()
	var tiles []TileRef
	for i, n := range sizes {
		tiles = append(tiles, tileData(i, n))
	}
	fillSegment(s, tiles...)
	m.Retire(s, nil)

	for _, drop := range []int{0, 2} { // cumulative: first none, then two
		i := 0
		freed := m.Evict(func(TileRef) bool { i++; return i > drop })
		want := int64(0)
		for _, n := range sizes[:drop] {
			want += int64(n)
		}
		if freed != want {
			t.Fatalf("drop %d: freed %d bytes, want %d", drop, freed, want)
		}
		sizes = sizes[drop:]
	}
	if m.PoolUsed() != 30+90+60 {
		t.Fatalf("PoolUsed = %d after evicting first two", m.PoolUsed())
	}
	if m.CachedData(0) != nil || m.CachedData(1) != nil {
		t.Fatal("evicted tiles still cached")
	}
	for i, wantIdx := range []int{2, 3, 4} {
		got := m.CachedTiles()[i]
		if got.DiskIdx != wantIdx {
			t.Fatalf("survivor %d = tile %d, want %d", i, got.DiskIdx, wantIdx)
		}
		want := tileData(wantIdx, len(got.Data))
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("tile %d corrupted by compaction", wantIdx)
		}
	}
	if m.Stats().EvictedTiles != 2 {
		t.Fatalf("EvictedTiles = %d, want 2", m.Stats().EvictedTiles)
	}
}

// Retiring a segment whose tiles exceed the whole pool must drop the
// overflow tile-by-tile, with DroppedTiles matching exactly.
func TestRetireDropCountMatchesStats(t *testing.T) {
	m := newMgr(t, 500, 200) // pool of 100
	s := m.Acquire()
	fillSegment(s, tileData(1, 60), tileData(2, 50), tileData(3, 30), tileData(4, 10))
	m.Retire(s, nil) // 60 fits; 50 doesn't; 30 fits (90); 10 fits (100)
	if m.PoolUsed() != 100 {
		t.Fatalf("PoolUsed = %d, want 100", m.PoolUsed())
	}
	if got := m.Stats().DroppedTiles; got != 1 {
		t.Fatalf("DroppedTiles = %d, want 1", got)
	}

	// A tile larger than the entire pool can never be cached.
	m2 := newMgr(t, 500, 200)
	s2 := m2.Acquire()
	fillSegment(s2, tileData(9, 100))
	m2.Retire(s2, nil)
	if m2.PoolUsed() != 100 {
		t.Fatalf("PoolUsed = %d, want 100 (tile exactly fills the pool)", m2.PoolUsed())
	}
	s3 := m2.Acquire()
	fillSegment(s3, tileData(10, 100))
	m2.Retire(s3, nil) // pool already full: dropped
	if got := m2.Stats().DroppedTiles; got != 1 {
		t.Fatalf("DroppedTiles = %d, want 1", got)
	}
	// Both segments must be free again after retiring.
	if a, b := m2.Acquire(), m2.Acquire(); a == nil || b == nil {
		t.Fatal("segments leaked by Retire")
	}
}

func TestTileRefChunks(t *testing.T) {
	ref := tileData(1, 100)

	// Disabled or oversized chunking returns the whole tile as one view.
	for _, cb := range []int64{0, -1, 100, 4096} {
		views := ref.Chunks(cb)
		if len(views) != 1 || len(views[0]) != 100 {
			t.Fatalf("Chunks(%d) = %d views, want the whole tile", cb, len(views))
		}
		if &views[0][0] != &ref.Data[0] {
			t.Fatalf("Chunks(%d) copied instead of aliasing", cb)
		}
	}

	// Views must tile the data exactly, in order, without copying.
	for _, cb := range []int64{1, 4, 7, 33, 99} {
		views := ref.Chunks(cb)
		want := (100 + int(cb) - 1) / int(cb)
		if len(views) != want {
			t.Fatalf("Chunks(%d) = %d views, want %d", cb, len(views), want)
		}
		var flat []byte
		for i, v := range views {
			if int64(len(v)) > cb {
				t.Fatalf("Chunks(%d): view %d has %d bytes", cb, i, len(v))
			}
			if i < len(views)-1 && int64(len(v)) != cb {
				t.Fatalf("Chunks(%d): interior view %d has %d bytes", cb, i, len(v))
			}
			flat = append(flat, v...)
		}
		if !bytes.Equal(flat, ref.Data) {
			t.Fatalf("Chunks(%d): concatenated views differ from the tile data", cb)
		}
		if &views[0][0] != &ref.Data[0] {
			t.Fatalf("Chunks(%d) copied instead of aliasing", cb)
		}
	}
}

package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

type edgeReq struct {
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	Del bool   `json:"delete,omitempty"`
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Mutations posted to /edges must be durable, visible to subsequent
// queries, and reflected in the WAL/delta metric families.
func TestEdgesIngestAndQuery(t *testing.T) {
	_, ts := testServer(t)

	resp, out := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != 200 {
		t.Fatalf("bfs before ingest: %d %v", resp.StatusCode, out)
	}

	// Star every vertex to root 0: afterwards BFS from 0 reaches the
	// whole graph and WCC is one component, whatever the kron draw was.
	resp, info := post(t, ts.URL+"/graphs/kron/edges", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("empty batch status = %d, want 400 (%v)", resp.StatusCode, info)
	}
	nv := 512 // kron scale 9
	edges := make([]edgeReq, 0, nv-1)
	for v := 1; v < nv; v++ {
		edges = append(edges, edgeReq{Src: 0, Dst: uint32(v)})
	}
	resp, out = post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{"edges": edges})
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status = %d: %v", resp.StatusCode, out)
	}
	if out["seq"].(float64) != 1 || out["applied"].(float64) != float64(nv-1) {
		t.Fatalf("ingest response = %v", out)
	}
	if out["changed"].(float64) == 0 || out["delta_tiles"].(float64) == 0 {
		t.Fatalf("ingest had no effect: %v", out)
	}

	resp, out = post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != 200 {
		t.Fatalf("bfs after ingest: %d %v", resp.StatusCode, out)
	}
	if got := out["reached"].(float64); got != float64(nv) {
		t.Fatalf("bfs reached %v of %d after starring the graph", got, nv)
	}
	resp, out = post(t, ts.URL+"/graphs/kron/wcc", nil)
	if resp.StatusCode != 200 || out["components"].(float64) != 1 {
		t.Fatalf("wcc after ingest: %d %v", resp.StatusCode, out)
	}

	// Deleting the star edge to vertex 1 must not disconnect it if the
	// base graph already linked it; instead pin the delete's bookkeeping.
	resp, out = post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1, Del: true}}, "flush": true,
	})
	if resp.StatusCode != 200 || out["seq"].(float64) != 2 {
		t.Fatalf("delete batch: %d %v", resp.StatusCode, out)
	}

	m := metricsBody(t, ts)
	for _, want := range []string{
		`gstore_wal_appends_total{graph="kron"} 2`,
		`gstore_wal_flushes_total{graph="kron"} 1`,
		`gstore_delta_tiles{graph="kron"}`,
		`gstore_engine_delta_tiles_total{graph="kron"}`,
		`gstore_wal_fsync_seconds_count{graph="kron"}`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// Out-of-range vertex IDs are the client's fault.
	resp, out = post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1 << 20}},
	})
	if resp.StatusCode != 400 {
		t.Fatalf("bad-op status = %d, want 400 (%v)", resp.StatusCode, out)
	}
}

// A ReadOnly server must refuse mutations and leave no write-path files
// behind.
func TestEdgesReadOnlyServer(t *testing.T) {
	s := New()
	s.ReadOnly = true
	t.Cleanup(s.Close)
	el, err := gen.Generate(gen.Graph500Config(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "ro", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph("ro", tile.BasePath(dir, "ro"), core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, out := post(t, ts.URL+"/graphs/ro/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1}},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only ingest status = %d, want 403 (%v)", resp.StatusCode, out)
	}
}

// Regression: a run refused because graceful shutdown already closed the
// scheduler is backpressure (503, status="shutdown"), not an engine
// failure (500, status="error") — clients should retry elsewhere, and
// error-rate alerts must not fire for a clean drain.
func TestShutdownRunReturns503(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	h := s.graphs["kron"]
	s.mu.RUnlock()
	h.sched.Close()

	resp, out := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%v)", resp.StatusCode, out)
	}
	if msg := fmt.Sprint(out["error"]); !strings.Contains(msg, "shutting down") {
		t.Fatalf("error = %q, want mention of shutdown", msg)
	}
	m := metricsBody(t, ts)
	if want := `gstore_engine_runs_total{algo="bfs",graph="kron",status="shutdown"} 1`; !strings.Contains(m, want) {
		t.Fatalf("metrics missing %q in:\n%s", want, m)
	}
}

package server

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

// schedTestServer serves one kron graph with the given admission limits.
func schedTestServer(t *testing.T, maxRuns, maxQueue int) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	t.Cleanup(s.Close)

	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	opts.MaxConcurrentRuns = maxRuns
	opts.MaxQueuedRuns = maxQueue

	el, err := gen.Generate(gen.Graph500Config(9, 8, 93))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "kron", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph("kron", tile.BasePath(dir, "kron"), opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// ranksOf flattens a pagerank response's top list into vertex → rank.
func ranksOf(t *testing.T, body map[string]interface{}) map[float64]float64 {
	t.Helper()
	top, ok := body["top"].([]interface{})
	if !ok {
		t.Fatalf("pagerank response missing top: %v", body)
	}
	out := make(map[float64]float64, len(top))
	for _, e := range top {
		m := e.(map[string]interface{})
		out[m["vertex"].(float64)] = m["rank"].(float64)
	}
	return out
}

// Eight mixed requests fired concurrently at one graph must answer
// exactly what their solo runs answer: the shared sweep changes I/O, not
// results. CI runs this under -race.
func TestServerConcurrentMixedRequestsMatchSolo(t *testing.T) {
	_, ts := schedTestServer(t, 8, 16)
	base := ts.URL + "/graphs/kron"

	// Solo references, one at a time.
	type req struct {
		op   string
		body interface{}
	}
	reqs := []req{
		{"bfs", map[string]int{"root": 0}},
		{"bfs", map[string]int{"root": 1}},
		{"bfs", map[string]int{"root": 2}},
		{"wcc", map[string]int{}},
		{"wcc", map[string]int{}},
		{"pagerank", map[string]int{"iterations": 10, "top": 600}},
		{"pagerank", map[string]int{"iterations": 10, "top": 600}},
		{"pagerank", map[string]int{"iterations": 20, "top": 600}},
	}
	solo := make([]map[string]interface{}, len(reqs))
	for i, rq := range reqs {
		resp, body := post(t, base+"/"+rq.op, rq.body)
		if resp.StatusCode != 200 {
			t.Fatalf("solo %s: status %d (%v)", rq.op, resp.StatusCode, body)
		}
		solo[i] = body
	}

	// The same eight, all at once.
	shared := make([]map[string]interface{}, len(reqs))
	codes := make([]int, len(reqs))
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq req) {
			defer wg.Done()
			resp, body := post(t, base+"/"+rq.op, rq.body)
			codes[i], shared[i] = resp.StatusCode, body
		}(i, rq)
	}
	wg.Wait()

	for i, rq := range reqs {
		if codes[i] != 200 {
			t.Fatalf("shared %s: status %d (%v)", rq.op, codes[i], shared[i])
		}
		switch rq.op {
		case "bfs":
			for _, k := range []string{"root", "reached", "max_depth"} {
				if solo[i][k] != shared[i][k] {
					t.Fatalf("bfs[%d] %s = %v shared, %v solo", i, k, shared[i][k], solo[i][k])
				}
			}
		case "wcc":
			for _, k := range []string{"components", "largest"} {
				if solo[i][k] != shared[i][k] {
					t.Fatalf("wcc[%d] %s = %v shared, %v solo", i, k, shared[i][k], solo[i][k])
				}
			}
		case "pagerank":
			want, got := ranksOf(t, solo[i]), ranksOf(t, shared[i])
			if len(want) != len(got) {
				t.Fatalf("pagerank[%d] returned %d ranks shared, %d solo", i, len(got), len(want))
			}
			for v, w := range want {
				if g, ok := got[v]; !ok || math.Abs(g-w) > 1e-9 {
					t.Fatalf("pagerank[%d] rank[%v] = %v shared, %v solo", i, v, got[v], w)
				}
			}
		}
	}
}

// With the batch and queue both full, further requests bounce with 429
// and the rejection counter shows at /metrics.
func TestServerQueueFullReturns429(t *testing.T) {
	_, ts := schedTestServer(t, 1, 0)
	base := ts.URL + "/graphs/kron"

	// Park a long run in the only slot. Its context is canceled at test
	// end so it never outlives the poll loop below.
	ctx, cancel := context.WithCancel(context.Background())
	hogDone := make(chan struct{})
	go func() {
		defer close(hogDone)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/pagerank",
			strings.NewReader(`{"iterations":1000000}`))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	t.Cleanup(func() { cancel(); <-hogDone })

	// Probing too early would win the only slot and bounce the hog
	// itself, so wait until the hog request is in flight (the gauge
	// counts the scrape too, hence 2) plus a beat for its admission.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("hog request never showed up in flight")
		}
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), "gstore_http_requests_in_flight 2") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	// Once the hog holds the slot, a probe must bounce with 429.
	saw429 := false
	for !saw429 {
		if time.Now().After(deadline) {
			t.Fatal("never observed a 429 while the slot was held")
		}
		resp, body := post(t, base+"/wcc", map[string]int{})
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			if msg, _ := body["error"].(string); !strings.Contains(msg, "queue full") {
				t.Fatalf("429 body = %v, want queue-full error", body)
			}
			saw429 = true
		case http.StatusOK:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("probe status %d (%v)", resp.StatusCode, body)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`gstore_runs_rejected_total{graph="kron"}`,
		"gstore_run_queue_depth",
		"gstore_run_queue_wait_seconds",
		"gstore_run_batch_occupancy",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

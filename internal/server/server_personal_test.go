package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// personalTestServer serves one kron graph through the personalized
// path: result cache on, the given coalescing window, and an optional
// per-tenant run cap. Returns the edge list for reference computations.
func personalTestServer(t *testing.T, window time.Duration, tenantMax int) (*Server, *httptest.Server, *graph.EdgeList) {
	t.Helper()
	s := New()
	t.Cleanup(s.Close)
	s.QCacheBytes = 1 << 20
	s.QCacheTTL = time.Minute
	s.TenantMaxRuns = tenantMax

	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	opts.BatchWindow = window

	el, err := gen.Generate(gen.Graph500Config(9, 8, 95))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "kron", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph("kron", tile.BasePath(dir, "kron"), opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, el
}

// getJSON GETs url and decodes the JSON body, returning the response
// for header/status checks.
func getJSON(t *testing.T, url string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp, out
}

// refReach computes (reached, max_depth) for a root from the reference
// BFS, the two summary numbers the personalized endpoint returns.
func refReach(el *graph.EdgeList, root uint32) (int, int) {
	depths := graph.RefBFS(graph.NewCSR(el, false), graph.VertexID(root))
	reached, maxDepth := 0, -1
	for _, d := range depths {
		if d >= 0 {
			reached++
			if int(d) > maxDepth {
				maxDepth = int(d)
			}
		}
	}
	return reached, maxDepth
}

// TestPersonalBFSMissThenHit pins the cache fast path: the first GET
// computes (miss), the repeat is served from memory (hit) with an
// identical body, and the qcache metric families move.
func TestPersonalBFSMissThenHit(t *testing.T) {
	_, ts, el := personalTestServer(t, 0, 0)
	url := ts.URL + "/graphs/kron/bfs?root=3"

	resp1, out1 := getJSON(t, url)
	if resp1.StatusCode != 200 {
		t.Fatalf("first GET = %d: %v", resp1.StatusCode, out1)
	}
	if h := resp1.Header.Get(cacheHeader); h != "miss" {
		t.Fatalf("first GET %s = %q, want miss", cacheHeader, h)
	}
	wantReached, wantDepth := refReach(el, 3)
	if int(out1["reached"].(float64)) != wantReached || int(out1["max_depth"].(float64)) != wantDepth {
		t.Fatalf("summary = reached %v depth %v, reference %d/%d",
			out1["reached"], out1["max_depth"], wantReached, wantDepth)
	}

	resp2, out2 := getJSON(t, url)
	if h := resp2.Header.Get(cacheHeader); h != "hit" {
		t.Fatalf("second GET %s = %q, want hit", cacheHeader, h)
	}
	if out2["reached"] != out1["reached"] || out2["max_depth"] != out1["max_depth"] {
		t.Fatalf("hit body differs: %v vs %v", out2, out1)
	}

	mb := metricsBody(t, ts)
	for _, want := range []string{"gstore_qcache_hits_total 1", "gstore_qcache_misses_total 1"} {
		if !strings.Contains(mb, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestPersonalBFSCoalescedOverHTTP: concurrent GETs with distinct roots
// inside one window fuse into a single multi-source run; every response
// still carries that root's exact reference summary.
func TestPersonalBFSCoalescedOverHTTP(t *testing.T) {
	_, ts, el := personalTestServer(t, 200*time.Millisecond, 0)
	roots := []uint32{1, 5, 9, 33}

	type res struct {
		status  int
		body    map[string]interface{}
		outcome string
	}
	results := make([]res, len(roots))
	var wg sync.WaitGroup
	for i, r := range roots {
		wg.Add(1)
		go func(i int, r uint32) {
			defer wg.Done()
			resp, out := getJSON(t, fmt.Sprintf("%s/graphs/kron/bfs?root=%d", ts.URL, r))
			results[i] = res{resp.StatusCode, out, resp.Header.Get(cacheHeader)}
		}(i, r)
	}
	wg.Wait()

	for i, r := range roots {
		got := results[i]
		if got.status != 200 {
			t.Fatalf("root %d: status %d (%v)", r, got.status, got.body)
		}
		wantReached, wantDepth := refReach(el, r)
		if int(got.body["reached"].(float64)) != wantReached || int(got.body["max_depth"].(float64)) != wantDepth {
			t.Fatalf("root %d: summary %v/%v, reference %d/%d",
				r, got.body["reached"], got.body["max_depth"], wantReached, wantDepth)
		}
		if br := int(got.body["batched_roots"].(float64)); br != len(roots) {
			t.Fatalf("root %d: batched_roots = %d, want %d", r, br, len(roots))
		}
	}
	mb := metricsBody(t, ts)
	if !strings.Contains(mb, `gstore_personal_coalesced_runs_total{graph="kron"} 1`) {
		t.Fatalf("metrics missing the coalesced-run count:\n%s",
			grepLines(mb, "gstore_personal"))
	}
}

// TestPersonalCacheInvalidationOnIngest is the staleness acceptance
// test: a cached answer must not survive a mutation — the post-ingest
// query recomputes and matches a fresh reference computation exactly.
func TestPersonalCacheInvalidationOnIngest(t *testing.T) {
	_, ts, _ := personalTestServer(t, 0, 0)
	url := ts.URL + "/graphs/kron/bfs?root=0"

	_, before := getJSON(t, url)
	if resp, _ := getJSON(t, url); resp.Header.Get(cacheHeader) != "hit" {
		t.Fatal("warm-up repeat was not a hit")
	}

	// Star every vertex to root 0: BFS from 0 now reaches all 512
	// vertices at depth <= 1, whatever the kron draw was.
	nv := 512
	edges := make([]edgeReq, 0, nv-1)
	for v := 1; v < nv; v++ {
		edges = append(edges, edgeReq{Src: 0, Dst: uint32(v)})
	}
	resp, out := post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{"edges": edges})
	if resp.StatusCode != 200 {
		t.Fatalf("ingest = %d: %v", resp.StatusCode, out)
	}

	resp2, after := getJSON(t, url)
	if resp2.StatusCode != 200 {
		t.Fatalf("post-ingest GET = %d: %v", resp2.StatusCode, after)
	}
	if h := resp2.Header.Get(cacheHeader); h != "miss" {
		t.Fatalf("post-ingest GET %s = %q, want miss (generation bump must invalidate)", cacheHeader, h)
	}
	if int(after["reached"].(float64)) != nv {
		t.Fatalf("post-ingest reached = %v, want %d (stale answer served?)", after["reached"], nv)
	}
	if after["reached"] == before["reached"] {
		t.Fatalf("ingest did not change the answer (reached %v) — test graph degenerate", before["reached"])
	}
	if !strings.Contains(metricsBody(t, ts), "gstore_qcache_invalidations_total 1") {
		t.Fatal("metrics missing the invalidation count")
	}
}

// TestPersonalTenantQuota: with a cap of one concurrent run per tenant,
// a second query from the same tenant is rejected 429 with the distinct
// status="quota" metric label while another tenant proceeds.
func TestPersonalTenantQuota(t *testing.T) {
	_, ts, _ := personalTestServer(t, 300*time.Millisecond, 1)

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/graphs/kron/bfs?root=1&tenant=alice")
		if err != nil {
			first <- 0
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(60 * time.Millisecond) // rider 1 is parked in the window, holding alice's slot

	resp, err := http.Get(ts.URL + "/graphs/kron/bfs?root=2&tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice query = %d, want 429", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/graphs/kron/bfs?root=3&tenant=bob")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bob's query = %d, want 200 (quota is per tenant)", resp.StatusCode)
	}
	if st := <-first; st != 200 {
		t.Fatalf("alice's first query = %d, want 200", st)
	}

	mb := metricsBody(t, ts)
	if !strings.Contains(mb, `status="quota"`) {
		t.Fatalf("metrics missing status=\"quota\":\n%s", grepLines(mb, "engine_runs"))
	}

	// The slot was released: alice can run again.
	resp, err = http.Get(ts.URL + "/graphs/kron/bfs?root=4&tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("alice after release = %d, want 200", resp.StatusCode)
	}
}

// TestPersonalPPR pins the GET and POST ppr endpoints to the reference
// personalized PageRank and checks the repeat is cached.
func TestPersonalPPR(t *testing.T) {
	_, ts, el := personalTestServer(t, 0, 0)
	const root, iters, top = 5, 8, 5
	url := fmt.Sprintf("%s/graphs/kron/ppr?root=%d&iterations=%d&top=%d", ts.URL, root, iters, top)

	resp, out := getJSON(t, url)
	if resp.StatusCode != 200 {
		t.Fatalf("GET ppr = %d: %v", resp.StatusCode, out)
	}
	want := graph.RefPersonalizedPageRank(graph.NewCSR(el, false), root, graph.DefaultPageRank(iters))
	topList := out["top"].([]interface{})
	if len(topList) != top {
		t.Fatalf("top list has %d entries, want %d", len(topList), top)
	}
	prev := math.Inf(1)
	for i, e := range topList {
		m := e.(map[string]interface{})
		v := uint32(m["vertex"].(float64))
		rank := m["rank"].(float64)
		if rank > prev {
			t.Fatalf("top list not sorted at %d", i)
		}
		prev = rank
		if d := math.Abs(rank - want[v]); d > 1e-9 {
			t.Fatalf("top[%d] vertex %d rank %g, reference %g", i, v, rank, want[v])
		}
	}

	if resp, _ := getJSON(t, url); resp.Header.Get(cacheHeader) != "hit" {
		t.Fatal("repeated GET ppr was not a hit")
	}

	// The POST twin computes the same answer (and shares the cache key,
	// so it hits).
	presp, pout := post(t, ts.URL+"/graphs/kron/ppr",
		map[string]interface{}{"root": root, "iterations": iters, "top": top})
	if presp.StatusCode != 200 {
		t.Fatalf("POST ppr = %d: %v", presp.StatusCode, pout)
	}
	if fmt.Sprint(pout["top"]) != fmt.Sprint(out["top"]) {
		t.Fatalf("POST top %v differs from GET top %v", pout["top"], out["top"])
	}
}

// TestPersonalBadRequests: parameter validation on the GET fast path.
func TestPersonalBadRequests(t *testing.T) {
	_, ts, _ := personalTestServer(t, 0, 0)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/graphs/kron/bfs", 400},                  // root required
		{"/graphs/kron/bfs?root=zebra", 400},       // not a number
		{"/graphs/kron/bfs?root=99999", 400},       // outside vertex space
		{"/graphs/kron/ppr?root=1&iterations=-1", 400},
		{"/graphs/kron/ppr?root=1&top=0", 400},
		{"/graphs/nosuch/bfs?root=1", 404},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

// grepLines filters a metrics body to lines containing sub, for terse
// failure messages.
func grepLines(body, sub string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// addGraph converts a small kron graph and serves it under name with the
// given engine options.
func addGraph(t *testing.T, s *Server, name string, opts core.Options) {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(9, 8, 101))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, name, tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph(name, tile.BasePath(dir, name), opts); err != nil {
		t.Fatal(err)
	}
}

// newTestHTTP serves s without the testServer fixture's stock graphs.
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func fetchMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func findLine(body, prefix string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestMetricsEndpoint drives one run and asserts the /metrics exposition
// carries the request histogram, the in-flight gauge, and the per-graph
// engine/storage counters in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)

	resp, out := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != 200 {
		t.Fatalf("bfs status %d: %v", resp.StatusCode, out)
	}

	body := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		// Request middleware series.
		"# TYPE gstore_http_requests_total counter",
		`gstore_http_requests_total{graph="kron",method="POST",op="bfs",status="200"} 1`,
		"# TYPE gstore_http_request_duration_seconds histogram",
		`gstore_http_request_duration_seconds_bucket{op="bfs",le="+Inf"} 1`,
		`gstore_http_request_duration_seconds_count{op="bfs"} 1`,
		// The /metrics request itself is the one in flight right now.
		"gstore_http_requests_in_flight 1",
		// Per-graph engine counters published after the run.
		`gstore_engine_runs_total{algo="bfs",graph="kron",status="ok"} 1`,
		`gstore_engine_bytes_read_total{graph="kron"}`,
		`gstore_engine_tiles_processed_total{graph="kron"}`,
		`gstore_storage_bytes_read_total{graph="kron"}`,
		`gstore_mem_copied_bytes_total{graph="kron"}`,
		`gstore_engine_run_seconds_bucket{graph="kron",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Iterations really accumulated (BFS needs at least 2).
	var iters int64
	if _, err := fmt.Sscanf(findLine(body, `gstore_engine_iterations_total{graph="kron"}`),
		`gstore_engine_iterations_total{graph="kron"} %d`, &iters); err != nil || iters < 2 {
		t.Fatalf("iterations counter: %v (parsed %d)", err, iters)
	}
}

// TestEngineFaultIs500 drives a fault-injected device through the server:
// the storage failure must surface as 500, not 400, and be distinguished
// from genuine client errors on the same server.
func TestEngineFaultIs500(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	opts.MaxRetries = 0
	opts.Fault = &storage.FaultConfig{Seed: 7, ErrorRate: 1} // every read fails
	addGraph(t, s, "faulty", opts)
	ts := newTestHTTP(t, s)

	// Engine failure → 500.
	resp, out := post(t, ts+"/graphs/faulty/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("engine fault: status %d (%v), want 500", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "engine failure") {
		t.Fatalf("error message %q lacks engine-failure marker", msg)
	}

	// Client error on the same graph is still 400: the fault device never
	// gets a chance to read because the root is rejected at Init.
	resp2, _ := post(t, ts+"/graphs/faulty/bfs", map[string]interface{}{"root": 1 << 30})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad root on faulty graph: status %d, want 400", resp2.StatusCode)
	}

	// The run counter distinguishes the outcomes.
	body := fetchMetrics(t, ts)
	for _, want := range []string{
		`gstore_engine_runs_total{algo="bfs",graph="faulty",status="error"} 1`,
		`gstore_engine_runs_total{algo="bfs",graph="faulty",status="bad_request"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestGraphNameValidation rejects unservable names at AddGraph.
func TestGraphNameValidation(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	opts := core.DefaultOptions()
	for _, name := range []string{"", "a/b", "a b", ".", "..", "%41", "a\nb",
		strings.Repeat("x", 129)} {
		if err := s.AddGraph(name, "/nonexistent", opts); err == nil ||
			!strings.Contains(err.Error(), "invalid graph name") {
			t.Fatalf("AddGraph(%q) = %v, want invalid-name error", name, err)
		}
	}
}

// TestEscapedPathRouting: %2F inside the first path segment must stay in
// the graph name (404) instead of shifting the operation boundary, and
// invalid escapes are client errors.
func TestEscapedPathRouting(t *testing.T) {
	_, ts := testServer(t)

	// Before the EscapedPath split this ran bfs on "kron"; now the
	// request names the graph "kron/bfs", which can never be served.
	resp, err := http.Post(ts.URL+"/graphs/kron%2Fbfs", "application/json",
		strings.NewReader(`{"root":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /graphs/kron%%2Fbfs: status %d, want 404", resp.StatusCode)
	}

	// An escaped op segment still routes to the op.
	resp2, out := post(t, ts.URL+"/graphs/kron/%62fs", map[string]interface{}{"root": 0})
	if resp2.StatusCode != 200 {
		t.Fatalf("escaped op: status %d (%v), want 200", resp2.StatusCode, out)
	}

	// An invalid escape in the path is rejected with a 400 (by the server
	// or by our splitGraphPath, whichever sees it first), never routed.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /graphs/bad%%zzname HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, " 400 ") {
		t.Fatalf("bad escape: status line %q, want 400", status)
	}
}

// TestCancelMidRunOverHTTP cancels a slow request from the client side,
// then proves the same graph still serves: the canceled engine run
// released its segments.
func TestCancelMidRunOverHTTP(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	opts.Cache = core.CacheNone
	opts.Disks = 1
	opts.Bandwidth = 512 << 10 // ~0.5 MB/s: 100 PageRank iterations take seconds
	addGraph(t, s, "slow", opts)
	ts := newTestHTTP(t, s)

	client := &http.Client{Timeout: 150 * time.Millisecond}
	_, err := client.Post(ts+"/graphs/slow/pagerank", "application/json",
		bytes.NewReader([]byte(`{"iterations":100}`)))
	if err == nil {
		t.Fatal("slow run finished under the client timeout; raise iterations")
	}

	// The canceled run must have torn down cleanly: an untimed request on
	// the same (still throttled) graph completes.
	resp, out := post(t, ts+"/graphs/slow/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != 200 {
		t.Fatalf("post-cancel run: status %d (%v), want 200", resp.StatusCode, out)
	}

	// The canceled run is visible in the metrics.
	body := fetchMetrics(t, ts)
	if !strings.Contains(body, `gstore_engine_runs_total{algo="pagerank",graph="slow",status="canceled"} 1`) {
		t.Fatalf("/metrics missing canceled run counter: %q",
			findLine(body, "gstore_engine_runs_total"))
	}
}

// TestConcurrentTwoGraphsWithMetrics hammers two graphs and the read
// endpoints concurrently; with -race it verifies the whole serving path
// (middleware, registry, engine serialization) is data-race free.
func TestConcurrentTwoGraphsWithMetrics(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	do := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				errs <- err
			}
		}()
	}
	for i := 0; i < 6; i++ {
		root := i
		do(func() error {
			resp, err := http.Post(ts.URL+"/graphs/kron/bfs", "application/json",
				strings.NewReader(fmt.Sprintf(`{"root":%d}`, root)))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return fmt.Errorf("kron bfs: status %d", resp.StatusCode)
			}
			return nil
		})
		do(func() error {
			resp, err := http.Post(ts.URL+"/graphs/web/pagerank", "application/json",
				strings.NewReader(`{"iterations":3}`))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return fmt.Errorf("web pagerank: status %d", resp.StatusCode)
			}
			return nil
		})
		do(func() error {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		})
		do(func() error {
			resp, err := http.Get(ts.URL + "/graphs")
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	body := fetchMetrics(t, ts.URL)
	if !strings.Contains(body, `gstore_http_requests_total{graph="kron",method="POST",op="bfs",status="200"} 6`) {
		t.Fatalf("kron bfs request count wrong: %q",
			findLine(body, `gstore_http_requests_total{graph="kron"`))
	}
	if !strings.Contains(body, `gstore_engine_runs_total{algo="pagerank",graph="web",status="ok"} 6`) {
		t.Fatalf("web pagerank run count wrong: %q",
			findLine(body, `gstore_engine_runs_total{algo="pagerank"`))
	}
}

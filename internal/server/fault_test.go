package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

// A panicking handler must be contained by the middleware: the client
// gets a 500 with status="panic", the panic counter increments, and the
// server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	bomb := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom: handler bug")
	})
	ts := httptest.NewServer(s.instrument(bomb))
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		resp, out := post(t, ts.URL+"/graphs/none/bfs", map[string]interface{}{"root": 0})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500", i, resp.StatusCode)
		}
		if out["status"] != "panic" {
			t.Fatalf("request %d: body = %v, want status=panic", i, out)
		}
	}
	if got := s.reg.Counter("gstore_http_panics_total",
		"Handler panics contained by the recovery middleware.").Value(); got != 2 {
		t.Fatalf("panic counter = %d, want 2", got)
	}
}

// A handler that panics after starting its response cannot get a 500;
// recovery must still swallow the panic and count it.
func TestPanicAfterHeadersIsStillContained(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	bomb := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late boom")
	})
	ts := httptest.NewServer(s.instrument(bomb))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/")
	if err == nil {
		resp.Body.Close()
	}
	if got := s.reg.Counter("gstore_http_panics_total",
		"Handler panics contained by the recovery middleware.").Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

// /readyz reflects server state: 503 with no graphs, 200 with healthy
// graphs, 503 shutting_down once schedulers close.
func TestReadyzLifecycle(t *testing.T) {
	empty := New()
	t.Cleanup(empty.Close)
	te := httptest.NewServer(empty.Handler())
	t.Cleanup(te.Close)
	resp, out := getJSON(t, te.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "no_graphs" {
		t.Fatalf("empty server /readyz = %d %v, want 503 no_graphs", resp.StatusCode, out)
	}

	s, ts := testServer(t)
	resp, out = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("/readyz = %d %v, want 200 ok", resp.StatusCode, out)
	}
	resp, out = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %v", resp.StatusCode, out)
	}

	// Close the schedulers (graceful shutdown begins): not ready anymore.
	s.mu.RLock()
	for _, h := range s.graphs {
		h.sched.Close()
	}
	s.mu.RUnlock()
	resp, out = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "shutting_down" {
		t.Fatalf("post-close /readyz = %d %v, want 503 shutting_down", resp.StatusCode, out)
	}
}

// faultServer builds a one-graph server whose write path runs over the
// given FaultFS.
func faultServer(t *testing.T, fs faultfs.FS) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	s.DeltaFS = fs
	t.Cleanup(s.Close)
	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	el, err := gen.Generate(gen.Graph500Config(9, 8, 91))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "kron", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph("kron", tile.BasePath(dir, "kron"), opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// A persistent fsync failure must flip ingest to 503 status="wal_failed"
// — sticky, with the gstore_wal_failed gauge raised and /readyz failing
// — while queries keep serving.
func TestWALFailedDegradesToReadOnly(t *testing.T) {
	fs := faultfs.New(11)
	fs.Arm(faultfs.Rule{Op: faultfs.OpSync, PathContains: ".wal", Every: true})
	_, ts := faultServer(t, fs)

	// Ingest hits the failed fsync: no ack, degraded response.
	resp, out := post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "wal_failed" {
		t.Fatalf("ingest under failed fsync = %d %v, want 503 wal_failed", resp.StatusCode, out)
	}
	// Sticky: the next batch is rejected up front, same shape.
	resp, out = post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 2}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "wal_failed" {
		t.Fatalf("second ingest = %d %v, want sticky 503 wal_failed", resp.StatusCode, out)
	}

	// Queries keep serving on the degraded graph.
	resp, out = post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bfs on degraded graph = %d %v, want 200", resp.StatusCode, out)
	}
	resp, _ = getJSON(t, ts.URL+"/graphs/kron/bfs?root=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("personalized bfs on degraded graph = %d, want 200", resp.StatusCode)
	}

	// Readiness and metrics surface the degradation.
	resp, out = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || out["status"] != "wal_failed" {
		t.Fatalf("/readyz = %d %v, want 503 wal_failed", resp.StatusCode, out)
	}
	if m := metricsBody(t, ts); !strings.Contains(m, `gstore_wal_failed{graph="kron"} 1`) {
		t.Fatalf("metrics missing gstore_wal_failed=1:\n%s", m)
	}
}

// A transient write error (not an fsync failure) must NOT poison the
// WAL: the failed batch is rolled back and the next batch succeeds.
func TestTransientWriteErrorDoesNotPoison(t *testing.T) {
	fs := faultfs.New(12)
	fs.Arm(faultfs.Rule{Op: faultfs.OpWrite, PathContains: ".wal"}) // fires once
	_, ts := faultServer(t, fs)

	resp, out := post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1}},
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest under write error = %d %v, want 500", resp.StatusCode, out)
	}
	resp, out = post(t, ts.URL+"/graphs/kron/edges", map[string]interface{}{
		"edges": []edgeReq{{Src: 0, Dst: 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after transient error = %d %v, want 200", resp.StatusCode, out)
	}
	resp, out = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovered transient error = %d %v, want 200", resp.StatusCode, out)
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	t.Cleanup(s.Close)

	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2

	// Undirected kron graph.
	el, err := gen.Generate(gen.Graph500Config(9, 8, 91))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "kron", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := s.AddGraph("kron", tile.BasePath(dir, "kron"), opts); err != nil {
		t.Fatal(err)
	}

	// Directed graph for SCC.
	eld, err := gen.Generate(gen.TwitterLikeConfig(9, 4, 92))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := tile.Convert(eld, dir, "web", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gd.Close()
	if err := s.AddGraph("web", tile.BasePath(dir, "web"), opts); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body interface{}) (*http.Response, map[string]interface{}) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthAndList(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listed %d graphs, want 2", len(list))
	}
	if list[0]["name"] != "kron" || list[1]["name"] != "web" {
		t.Fatalf("names: %v, %v", list[0]["name"], list[1]["name"])
	}
}

func TestGraphInfo(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/graphs/kron")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gi map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&gi); err != nil {
		t.Fatal(err)
	}
	if gi["vertices"].(float64) != 512 {
		t.Fatalf("vertices = %v", gi["vertices"])
	}
	if gi["directed"].(bool) {
		t.Fatal("kron reported directed")
	}

	resp2, err := http.Get(ts.URL + "/graphs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", resp2.StatusCode)
	}
}

func TestBFSEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["reached"].(float64) < 2 {
		t.Fatalf("reached = %v", out["reached"])
	}
	stats := out["stats"].(map[string]interface{})
	if stats["iterations"].(float64) < 2 {
		t.Fatalf("iterations = %v", stats["iterations"])
	}

	// Async variant must reach the same vertex count.
	_, outAsync := post(t, ts.URL+"/graphs/kron/bfs",
		map[string]interface{}{"root": 0, "async": true})
	if outAsync["reached"] != out["reached"] {
		t.Fatalf("async reached %v, sync %v", outAsync["reached"], out["reached"])
	}

	// Bad root is a client error.
	resp3, _ := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 1 << 30})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad root: status %d", resp3.StatusCode)
	}
}

func TestMSBFSEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := post(t, ts.URL+"/graphs/kron/msbfs",
		map[string]interface{}{"roots": []uint32{0, 1, 2}})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if len(out["sources"].([]interface{})) != 3 {
		t.Fatalf("sources = %v", out["sources"])
	}
}

func TestPageRankEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := post(t, ts.URL+"/graphs/kron/pagerank",
		map[string]interface{}{"iterations": 5, "top": 3})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	top := out["top"].([]interface{})
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	first := top[0].(map[string]interface{})["rank"].(float64)
	second := top[1].(map[string]interface{})["rank"].(float64)
	if first < second {
		t.Fatal("top ranks not sorted")
	}
}

func TestComponentEndpoints(t *testing.T) {
	_, ts := testServer(t)
	resp, out := post(t, ts.URL+"/graphs/kron/wcc", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("wcc status %d: %v", resp.StatusCode, out)
	}
	if out["components"].(float64) < 1 {
		t.Fatalf("components = %v", out["components"])
	}

	resp2, out2 := post(t, ts.URL+"/graphs/web/scc", nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("scc status %d: %v", resp2.StatusCode, out2)
	}
	// SCC on the undirected graph must be rejected.
	resp3, _ := post(t, ts.URL+"/graphs/kron/scc", nil)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("scc on undirected: status %d", resp3.StatusCode)
	}
}

func TestMethodChecks(t *testing.T) {
	_, ts := testServer(t)
	// GET bfs is the personalized fast path now; without its required
	// root parameter it is a bad request, not a method error.
	resp, err := http.Get(ts.URL + "/graphs/kron/bfs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET on bfs without root: status %d", resp.StatusCode)
	}
	// Ops with no GET form still reject the method.
	respPR, err := http.Get(ts.URL + "/graphs/kron/pagerank")
	if err != nil {
		t.Fatal(err)
	}
	respPR.Body.Close()
	if respPR.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on pagerank: status %d", respPR.StatusCode)
	}
	resp2, _ := post(t, ts.URL+"/graphs/kron/nonsense", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: status %d", resp2.StatusCode)
	}
}

func TestDuplicateGraphRejected(t *testing.T) {
	s, _ := testServer(t)
	el, err := gen.Generate(gen.Graph500Config(6, 4, 93))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "dup", tile.ConvertOptions{
		TileBits: 4, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	opts := core.DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	if err := s.AddGraph("kron", tile.BasePath(dir, "dup"), opts); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// Concurrent requests against one graph must serialize safely and all
// succeed.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(root int) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, `{"root":%d}`, root)
			resp, err := http.Post(ts.URL+"/graphs/kron/bfs", "application/json", &buf)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != 200 {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKHopEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := post(t, ts.URL+"/graphs/kron/khop",
		map[string]interface{}{"root": 0, "k": 2})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rings := out["ring_sizes"].([]interface{})
	if len(rings) != 3 {
		t.Fatalf("rings = %v", rings)
	}
	if rings[0].(float64) != 1 {
		t.Fatalf("ring 0 = %v, want 1 (the root)", rings[0])
	}
	cums := out["cumulative"].([]interface{})
	last := cums[len(cums)-1].(float64)
	first := cums[0].(float64)
	if last < first {
		t.Fatal("cumulative not monotone")
	}
}

// A corrupted tiles file must surface as a 500 naming the damaged tile,
// with the integrity counters visible in /metrics.
func TestIntegrityErrorSurfacesAs500(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	opts := core.DefaultOptions()
	opts.MemoryBytes = 2 << 20
	opts.SegmentSize = 128 << 10
	opts.Threads = 2
	el, err := gen.Generate(gen.Graph500Config(9, 8, 93))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "kron", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	base := tile.BasePath(dir, "kron")
	if err := s.AddGraph("kron", base, opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Flip a byte mid-file; the engine's open handle shares the inode.
	data, err := os.ReadFile(base + ".tiles")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(base+".tiles", data, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, out := post(t, ts.URL+"/graphs/kron/bfs", map[string]interface{}{"root": 0})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %v", resp.StatusCode, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "data integrity failure") ||
		!strings.Contains(msg, "tile") || !strings.Contains(msg, "row") {
		t.Fatalf("error message does not name the corrupt tile: %q", msg)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mbody)
	for _, want := range []string{
		`gstore_engine_integrity_errors_total{graph="kron"} 1`,
		`gstore_engine_checksum_mismatches_total{graph="kron"}`,
		`status="integrity"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/qcache"
	"github.com/gwu-systems/gstore/internal/tile"
)

// This file is the serving tier of the personalized-query path:
// GET /graphs/{name}/bfs?root= and GET|POST /graphs/{name}/ppr answer
// per-user queries through the result cache (qcache) and, for BFS, the
// scheduler's coalescing window — so a burst of single-root queries
// costs one msbfs run slot instead of one slot each, and repeats within
// the TTL cost nothing at all.

// cacheHeader tells clients how their query was satisfied:
// hit | miss | join | bypass.
const cacheHeader = "X-Gstore-Cache"

// errTenantQuota marks a request rejected by the per-tenant
// concurrent-run cap; it surfaces as 429 with a "quota" metric status,
// distinct from queue-full "rejected".
var errTenantQuota = errors.New("server: tenant concurrent-run quota exceeded")

// metaDigest fingerprints a graph's on-disk identity for cache keys:
// codec, format version, and (v2+) the tiles-section CRC, so re-serving
// a re-converted graph under the same name never reuses stale entries.
func metaDigest(g *tile.Graph) string {
	m := g.Meta
	d := fmt.Sprintf("%s-v%d", m.TupleCodec(), m.Version)
	if m.Manifest != nil {
		d += fmt.Sprintf("-%08x", m.Manifest.Tiles.CRC32C)
	}
	return d
}

// generation is the graph's delta-store generation: the last WAL
// sequence number applied. Every mutation batch bumps it, so cache
// entries keyed to an older generation are invalidated on next lookup.
// Read-only graphs are frozen at generation 0.
func (h *GraphHandle) generation() uint64 {
	if h.delta == nil {
		return 0
	}
	return h.delta.View().Upto()
}

// cacheKey is (graph, codec/meta digest, algo, params); the generation
// is checked separately so a stale entry is counted as an invalidation,
// not a plain miss.
func (h *GraphHandle) cacheKey(op, params string) string {
	return h.Name + "|" + h.digest + "|" + op + "|" + params
}

// acquireTenant claims one per-tenant run slot and returns its release.
// With no tenant named or no cap configured it is a no-op. On rejection
// it records the distinct status="quota" outcome.
func (s *Server) acquireTenant(h *GraphHandle, op, tenant string) (func(), error) {
	if tenant == "" || s.TenantMaxRuns <= 0 {
		return func() {}, nil
	}
	h.tenantMu.Lock()
	if h.tenants == nil {
		h.tenants = map[string]int{}
	}
	if h.tenants[tenant] >= s.TenantMaxRuns {
		h.tenantMu.Unlock()
		s.engineRuns(h.Name, op, "quota").Inc()
		return nil, fmt.Errorf("%w: tenant %q already has %d concurrent runs on %q",
			errTenantQuota, tenant, s.TenantMaxRuns, h.Name)
	}
	h.tenants[tenant]++
	h.tenantMu.Unlock()
	return func() {
		h.tenantMu.Lock()
		h.tenants[tenant]--
		if h.tenants[tenant] <= 0 {
			delete(h.tenants, tenant)
		}
		h.tenantMu.Unlock()
	}, nil
}

func (s *Server) engineRuns(graph, alg, status string) *metrics.Counter {
	return s.reg.Counter("gstore_engine_runs_total",
		"Engine runs by graph, algorithm and outcome.",
		metrics.L("graph", graph),
		metrics.L("algo", alg),
		metrics.L("status", status))
}

func (s *Server) batchedRoots(graph string) *metrics.Histogram {
	return s.reg.Histogram("gstore_personal_batched_roots",
		"Query roots coalesced into each personalized BFS run, by graph.",
		occupancyBuckets, metrics.L("graph", graph))
}

func (s *Server) coalescedRuns(graph string) *metrics.Counter {
	return s.reg.Counter("gstore_personal_coalesced_runs_total",
		"Multi-root runs the coalescing window produced (BatchedRoots > 1), by graph.",
		metrics.L("graph", graph))
}

// observePersonalRun is the scheduler's PersonalRunHook: it publishes
// the same per-run accounting s.run does, once per underlying coalesced
// run (never once per rider), plus the coalescing-specific series.
func (s *Server) observePersonalRun(graph string, st *core.Stats, err error) {
	status := classifyRunStatus(err)
	if status == "rejected" {
		s.runsRejected(graph).Inc()
	}
	s.engineRuns(graph, "bfs", status).Inc()
	if st == nil {
		return
	}
	s.queueWait(graph).Observe(st.QueueWait.Seconds())
	if st.SharedRuns > 0 {
		s.batchOccupancy(graph).Observe(float64(st.SharedRuns))
		core.PublishStats(s.reg, graph, st)
	}
	if st.BatchedRoots > 0 {
		s.batchedRoots(graph).Observe(float64(st.BatchedRoots))
		if st.BatchedRoots > 1 {
			s.coalescedRuns(graph).Inc()
		}
	}
}

// publishQCache republishes the shared cache's counters. The cache is
// server-wide (keys carry the graph), so the series are unlabeled.
func (s *Server) publishQCache() {
	if s.qc == nil {
		return
	}
	st := s.qc.Stats()
	s.reg.Counter("gstore_qcache_hits_total",
		"Personalized queries answered from the result cache.").Set(st.Hits)
	s.reg.Counter("gstore_qcache_misses_total",
		"Personalized queries that ran a computation and filled the cache.").Set(st.Misses)
	s.reg.Counter("gstore_qcache_joins_total",
		"Personalized queries that joined an identical in-flight computation (single-flight dedup).").Set(st.Joins)
	s.reg.Counter("gstore_qcache_invalidations_total",
		"Cache entries discarded because the graph's delta generation moved past them.").Set(st.Stale)
	s.reg.Counter("gstore_qcache_expirations_total",
		"Cache entries dropped by TTL on access.").Set(st.Expired)
	s.reg.Counter("gstore_qcache_evictions_total",
		"Cache entries evicted to stay under the byte budget.").Set(st.Evictions)
	s.reg.Gauge("gstore_qcache_entries",
		"Live result cache entries.").Set(st.Entries)
	s.reg.Gauge("gstore_qcache_bytes",
		"Declared byte cost of live result cache entries.").Set(st.Bytes)
}

// handlePersonal routes the GET fast path: /bfs?root=N and
// /ppr?root=N[&iterations=I][&top=T], both with an optional
// tenant= admission label.
func (s *Server) handlePersonal(w http.ResponseWriter, r *http.Request, h *GraphHandle, op string) {
	q := r.URL.Query()
	rootStr := q.Get("root")
	if rootStr == "" {
		writeError(w, http.StatusBadRequest, "root query parameter required")
		return
	}
	root64, err := strconv.ParseUint(rootStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad root %q: %v", rootStr, err)
		return
	}
	tenant := q.Get("tenant")
	switch op {
	case "bfs":
		s.personalBFS(w, r, h, uint32(root64), tenant)
	case "ppr":
		iters := 10
		if v := q.Get("iterations"); v != "" {
			if iters, err = strconv.Atoi(v); err != nil || iters <= 0 {
				writeError(w, http.StatusBadRequest, "bad iterations %q", v)
				return
			}
		}
		top := 10
		if v := q.Get("top"); v != "" {
			if top, err = strconv.Atoi(v); err != nil || top <= 0 {
				writeError(w, http.StatusBadRequest, "bad top %q", v)
				return
			}
		}
		s.personalPPR(w, r, h, uint32(root64), iters, top, tenant)
	}
}

// personalEntryCost is the declared cache cost of one summarized query
// result. Results are summaries (counts, a top list), not per-vertex
// vectors, so a flat estimate keeps the accounting simple and honest
// within a factor of two.
const personalEntryCost = 512

// personalBFS answers one single-root BFS through the cache and the
// scheduler's coalescing window.
func (s *Server) personalBFS(w http.ResponseWriter, r *http.Request, h *GraphHandle, root uint32, tenant string) {
	fill := func() (interface{}, int64, error) {
		release, err := s.acquireTenant(h, "bfs", tenant)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		depths, st, err := h.sched.RunPersonalBFS(r.Context(), root)
		s.queueDepth(h.Name).Set(int64(h.sched.QueueDepth()))
		if err != nil {
			return nil, 0, err
		}
		reached := 0
		maxDepth := int32(-1)
		for _, d := range depths {
			if d >= 0 {
				reached++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
		return map[string]interface{}{
			"root": root, "reached": reached, "max_depth": maxDepth,
			"batched_roots": st.BatchedRoots,
			"stats":         toStats(st),
		}, personalEntryCost, nil
	}
	s.servePersonal(w, r, h, "bfs", fmt.Sprintf("root=%d", root), fill)
}

// personalPPR answers one personalized PageRank query. PPR runs as a
// normal (non-coalesced) run on the shared sweep; the cache and
// single-flight dedup carry the serving load for repeated roots.
func (s *Server) personalPPR(w http.ResponseWriter, r *http.Request, h *GraphHandle, root uint32, iters, top int, tenant string) {
	fill := func() (interface{}, int64, error) {
		release, err := s.acquireTenant(h, "ppr", tenant)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		a := algo.NewPPR(root, iters)
		st, err := s.run(r.Context(), h, a)
		if err != nil {
			return nil, 0, err
		}
		type vr struct {
			Vertex uint32  `json:"vertex"`
			Rank   float64 `json:"rank"`
		}
		ranks := a.Ranks()
		out := make([]vr, 0, len(ranks))
		for v, rank := range ranks {
			if rank > 0 {
				out = append(out, vr{uint32(v), rank})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
		if len(out) > top {
			out = out[:top]
		}
		return map[string]interface{}{
			"root": root, "iterations": iters, "top": out,
			"stats": toStats(st),
		}, personalEntryCost + int64(top)*16, nil
	}
	s.servePersonal(w, r, h, "ppr", fmt.Sprintf("root=%d&iterations=%d&top=%d", root, iters, top), fill)
}

// servePersonal runs fill through the result cache (or straight through
// when the cache is disabled) and writes the response with the
// cache-status header.
func (s *Server) servePersonal(w http.ResponseWriter, r *http.Request, h *GraphHandle, op, params string, fill func() (interface{}, int64, error)) {
	if s.qc == nil {
		res, _, err := fill()
		if err != nil {
			writeRunError(w, err)
			return
		}
		w.Header().Set(cacheHeader, qcache.Bypass.String())
		writeJSON(w, http.StatusOK, res)
		return
	}
	val, outcome, err := s.qc.Do(r.Context(), h.cacheKey(op, params), h.generation(), fill)
	s.publishQCache()
	if err != nil {
		writeRunError(w, err)
		return
	}
	w.Header().Set(cacheHeader, outcome.String())
	writeJSON(w, http.StatusOK, val)
}

// handlePPRPost is the JSON-body twin of the GET ppr fast path, for
// clients that POST like the other algorithm endpoints.
func (s *Server) handlePPRPost(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Root       uint32 `json:"root"`
		Iterations int    `json:"iterations"`
		Top        int    `json:"top"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	if req.Iterations <= 0 {
		req.Iterations = 10
	}
	if req.Top <= 0 {
		req.Top = 10
	}
	s.personalPPR(w, r, h, req.Root, req.Iterations, req.Top, r.URL.Query().Get("tenant"))
}

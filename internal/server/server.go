// Package server exposes converted graphs over HTTP: the "store" face of
// G-Store. One process serves any number of converted graphs; each
// algorithm request runs through the slide-cache-rewind engine and
// returns a JSON summary (full per-vertex results are available paged).
//
// Endpoints:
//
//	GET  /healthz                     — liveness
//	GET  /readyz                      — readiness: graphs loaded, schedulers
//	                                    accepting, no WAL in the failed state
//	GET  /metrics                     — Prometheus text exposition
//	GET  /graphs                      — list loaded graphs
//	GET  /graphs/{name}               — one graph's metadata
//	POST /graphs/{name}/bfs           — {"root":0,"async":false}
//	GET  /graphs/{name}/bfs?root=N    — personalized fast path: result-cached,
//	                                    coalesced with concurrent roots into one msbfs run
//	POST /graphs/{name}/msbfs         — {"roots":[0,1,2]}
//	POST /graphs/{name}/pagerank      — {"iterations":10,"top":10}
//	GET  /graphs/{name}/ppr?root=N    — personalized PageRank (result-cached);
//	                                    also POST {"root":0,"iterations":10,"top":10}
//	POST /graphs/{name}/wcc           — {}
//	POST /graphs/{name}/scc           — {} (directed graphs only)
//	POST /graphs/{name}/edges         — {"edges":[{"src":0,"dst":1,"delete":false},…],"flush":false}
//
// Every request passes through instrumentation middleware that records
// method/graph/op/status counters, a latency histogram, and an in-flight
// gauge into the server's metrics.Registry. Engine runs honor the
// request context, so a disconnected client cancels its run. Run errors
// are classified: invalid request parameters are 400s, canceled runs and
// runs refused by a scheduler that graceful shutdown already closed are
// 503s, and engine/storage failures are 500s.
//
// Unless the server is ReadOnly, each graph is served with its mutable
// write path attached: POST /graphs/{name}/edges appends a durable WAL
// record and publishes the batch to the delta layer, so subsequent
// queries see base ∪ delta. Crash recovery (snapshot load + WAL replay)
// happens in AddGraph.
//
// Concurrent algorithm requests against one graph are co-scheduled onto
// a shared tile sweep by a core.Scheduler (up to MaxConcurrentRuns at
// once, MaxQueuedRuns waiting); when both are full the request is
// rejected with 429 Too Many Requests.
//
// The personalized GET endpoints additionally pass through a bounded
// result cache (QCacheBytes/QCacheTTL) keyed by graph, meta digest,
// algorithm, params and delta generation — mutations through /edges
// bump the generation and implicitly invalidate — with single-flight
// dedup of identical in-flight queries; the X-Gstore-Cache response
// header reports hit/miss/join/bypass. An optional ?tenant= label on
// run-submitting requests enforces a per-tenant concurrent-run quota
// (TenantMaxRuns), rejected with 429 and a distinct "quota" status.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/qcache"
	"github.com/gwu-systems/gstore/internal/tile"
	"github.com/gwu-systems/gstore/internal/wal"
)

// GraphHandle is one served graph: the open tile store, its engine, and
// the scheduler that co-schedules concurrent algorithm runs onto the
// engine's shared tile sweep.
type GraphHandle struct {
	Name   string
	Graph  *tile.Graph
	engine *core.Engine
	sched  *core.Scheduler
	// delta is the graph's write path (WAL + delta tiles); nil on a
	// read-only server, in which case POST /graphs/{name}/edges is 403.
	delta *delta.Store
	// applyMu serializes mutation batches per graph: delta.Store.Apply is
	// safe for one writer at a time (readers never block).
	applyMu sync.Mutex

	// digest fingerprints the on-disk graph for result cache keys (see
	// metaDigest).
	digest string
	// tenants counts in-flight runs per tenant label when the server
	// enforces TenantMaxRuns.
	tenantMu sync.Mutex
	tenants  map[string]int
}

// Server routes requests to its graphs.
type Server struct {
	// ReadOnly, when set before AddGraph, serves graphs without opening
	// their write path: no WAL replay, no on-disk side effects, and edge
	// mutations are refused with 403.
	ReadOnly bool

	// QCacheBytes, when positive before the first AddGraph, enables the
	// personalized-query result cache with that byte budget (shared
	// across graphs; keys carry the graph name and meta digest).
	QCacheBytes int64
	// QCacheTTL is the result cache entry lifetime (default one minute).
	QCacheTTL time.Duration
	// TenantMaxRuns, when positive, caps concurrent algorithm runs per
	// tenant query label; requests over the cap get 429 with a "quota"
	// metric status. Zero disables the cap.
	TenantMaxRuns int

	// DeltaFS, when set before AddGraph, routes every write-path file
	// operation (WAL, delta snapshots) through it. The chaos harness and
	// degraded-mode tests inject a faultfs.FaultFS here; production
	// leaves it nil (real filesystem).
	DeltaFS faultfs.FS

	mu     sync.RWMutex
	graphs map[string]*GraphHandle
	reg    *metrics.Registry
	qc     *qcache.Cache
}

// New creates an empty server.
func New() *Server {
	return &Server{
		graphs: make(map[string]*GraphHandle),
		reg:    metrics.NewRegistry(),
	}
}

// Metrics returns the server's registry, so daemons can publish their
// own series (build info, uptime) alongside the request metrics.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// validGraphName reports whether name is servable: non-empty, at most
// 128 bytes, and restricted to [A-Za-z0-9._-] so it round-trips through
// one URL path segment without escaping ambiguity ('/' or '%' in a name
// would be mis-routed by the path split).
func validGraphName(name string) bool {
	if name == "" || len(name) > 128 || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// AddGraph opens the graph at basePath and serves it under name. opts
// configures its engine. Unless the server is ReadOnly, the graph's
// write path is opened too: any snapshot and WAL left by a previous
// process are recovered here, so acked mutations survive a crash.
func (s *Server) AddGraph(name, basePath string, opts core.Options) error {
	if !validGraphName(name) {
		return fmt.Errorf("server: invalid graph name %q (need [A-Za-z0-9._-], ≤128 bytes)", name)
	}
	g, err := tile.Open(basePath)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(g, opts)
	if err != nil {
		g.Close()
		return err
	}
	var ds *delta.Store
	if !s.ReadOnly {
		fsync := s.walFsync(name)
		ds, err = delta.Open(g, basePath, delta.Options{
			OnFsync: func(d time.Duration) { fsync.Observe(d.Seconds()) },
			FS:      s.DeltaFS,
		})
		if err != nil {
			eng.Close()
			g.Close()
			return fmt.Errorf("server: opening write path for %q: %w", name, err)
		}
		eng.SetDeltaStore(ds)
		st := ds.Stats()
		gl := metrics.L("graph", name)
		s.reg.Counter("gstore_wal_replay_segments_total",
			"WAL segments scanned during crash recovery at graph open.", gl).
			Add(int64(st.ReplaySegments))
		s.reg.Counter("gstore_wal_replay_records_total",
			"WAL records re-applied during crash recovery at graph open.", gl).
			Add(int64(st.ReplayRecords))
		s.reg.Counter("gstore_wal_replay_ops_total",
			"Edge mutations re-applied during crash recovery at graph open.", gl).
			Add(st.ReplayOps)
		s.deltaMetrics(name, st)
		// Pre-register the degradation gauge at 0 so dashboards can alert
		// on the 0→1 transition instead of on series appearance.
		s.walFailed(name).Set(0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[name]; dup {
		eng.Close()
		if ds != nil {
			ds.Close()
		}
		g.Close()
		return fmt.Errorf("server: graph %q already loaded", name)
	}
	if s.qc == nil && s.QCacheBytes > 0 {
		ttl := s.QCacheTTL
		if ttl <= 0 {
			ttl = time.Minute
		}
		s.qc = qcache.New(s.QCacheBytes, ttl)
	}
	sched := core.NewScheduler(eng)
	sched.PersonalRunHook = func(st *core.Stats, err error) { s.observePersonalRun(name, st, err) }
	s.graphs[name] = &GraphHandle{
		Name: name, Graph: g, engine: eng, sched: sched, delta: ds,
		digest: metaDigest(g),
	}
	// Register the scheduler series now so they are visible at /metrics
	// from the first scrape, not only after the first (or first
	// rejected) run.
	s.queueDepth(name)
	s.queueWait(name)
	s.batchOccupancy(name)
	s.runsRejected(name)
	s.batchedRoots(name)
	s.coalescedRuns(name)
	s.publishQCache()
	return nil
}

func (s *Server) queueDepth(graph string) *metrics.Gauge {
	return s.reg.Gauge("gstore_run_queue_depth",
		"Runs waiting for scheduler admission, by graph.",
		metrics.L("graph", graph))
}

func (s *Server) queueWait(graph string) *metrics.Histogram {
	return s.reg.Histogram("gstore_run_queue_wait_seconds",
		"Time runs waited for scheduler admission, by graph.",
		metrics.DefBuckets, metrics.L("graph", graph))
}

func (s *Server) batchOccupancy(graph string) *metrics.Histogram {
	return s.reg.Histogram("gstore_run_batch_occupancy",
		"Peak number of runs sharing the sweep each run rode, by graph.",
		occupancyBuckets, metrics.L("graph", graph))
}

func (s *Server) runsRejected(graph string) *metrics.Counter {
	return s.reg.Counter("gstore_runs_rejected_total",
		"Runs rejected because the admission queue was full, by graph.",
		metrics.L("graph", graph))
}

func (s *Server) walFsync(graph string) *metrics.Histogram {
	return s.reg.Histogram("gstore_wal_fsync_seconds",
		"WAL group-commit fsync latency, by graph.",
		metrics.DefBuckets, metrics.L("graph", graph))
}

func (s *Server) walFailed(graph string) *metrics.Gauge {
	return s.reg.Gauge("gstore_wal_failed",
		"1 when the graph's WAL is in the sticky failed state (ingest "+
			"degraded to read-only, queries unaffected), by graph.",
		metrics.L("graph", graph))
}

// deltaMetrics republishes the write path's cumulative counters and
// current delta-layer shape from one stats snapshot.
func (s *Server) deltaMetrics(graph string, st delta.Stats) {
	gl := metrics.L("graph", graph)
	s.reg.Counter("gstore_wal_appends_total",
		"Mutation records appended to the WAL, by graph.", gl).
		Set(int64(st.WALAppends))
	s.reg.Counter("gstore_wal_flushes_total",
		"Delta snapshots flushed (each truncates the WAL), by graph.", gl).
		Set(int64(st.Flushes))
	s.reg.Gauge("gstore_wal_segment",
		"Index of the WAL segment currently being appended to, by graph.", gl).
		Set(int64(st.WALSegment))
	s.reg.Gauge("gstore_delta_tiles",
		"Tiles with pending delta-layer mutations, by graph.", gl).
		Set(int64(st.DeltaTiles))
	s.reg.Gauge("gstore_delta_inserted_tuples",
		"Edge tuples inserted by the delta layer, by graph.", gl).
		Set(st.InsTuples)
	s.reg.Gauge("gstore_delta_masked_keys",
		"Base edge keys masked (deleted) by the delta layer, by graph.", gl).
		Set(st.MaskedKeys)
}

// Close releases every graph.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.graphs {
		h.sched.Close()
		h.engine.Close()
		if h.delta != nil {
			// Flushes the delta layer to a snapshot and truncates the WAL;
			// a kill before this point recovers via replay at next open.
			h.delta.Close()
		}
		h.Graph.Close()
	}
	s.graphs = map[string]*GraphHandle{}
}

// Handler returns the HTTP handler with instrumentation middleware
// (request metrics + panic containment) applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/graphs", s.handleList)
	mux.HandleFunc("/graphs/", s.handleGraph)
	return s.instrument(mux)
}

// handleReady is the readiness probe: 200 only while the server can do
// useful work — at least one graph is loaded, every scheduler still
// admits runs, and no graph's WAL has entered the sticky failed state.
// A not-ready server keeps serving the requests it can (queries work
// during WAL-failed degradation); readiness only steers load balancers
// and rollout gates.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	handles := make([]*GraphHandle, 0, len(s.graphs))
	for _, h := range s.graphs {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	if len(handles) == 0 {
		writeErrorStatus(w, http.StatusServiceUnavailable, "no_graphs", "no graphs loaded")
		return
	}
	for _, h := range handles {
		if !h.sched.Accepting() {
			writeErrorStatus(w, http.StatusServiceUnavailable, "shutting_down",
				"graph %q is no longer accepting runs", h.Name)
			return
		}
		if h.delta != nil {
			if err := h.delta.Failed(); err != nil {
				s.walFailed(h.Name).Set(1)
				writeErrorStatus(w, http.StatusServiceUnavailable, "wal_failed",
					"graph %q write path failed: %v", h.Name, err)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "graphs": len(handles)})
}

// ops are the algorithm path segments; anything else is labeled "other"
// to keep metric cardinality bounded.
var ops = map[string]bool{
	"bfs": true, "khop": true, "msbfs": true,
	"pagerank": true, "ppr": true, "wcc": true, "scc": true,
	"edges": true,
}

// routeLabels derives bounded-cardinality graph/op labels from a request
// path. Unknown graphs and ops collapse into "unknown"/"other".
func (s *Server) routeLabels(path string) (graph, op string) {
	switch {
	case path == "/healthz":
		return "", "healthz"
	case path == "/readyz":
		return "", "readyz"
	case path == "/metrics":
		return "", "metrics"
	case path == "/graphs":
		return "", "list"
	case strings.HasPrefix(path, "/graphs/"):
		name, opSeg, _ := splitGraphPath(path)
		if s.lookup(name) != nil {
			graph = name
		} else {
			graph = "unknown"
		}
		switch {
		case opSeg == "":
			op = "info"
		case ops[opSeg]:
			op = opSeg
		default:
			op = "other"
		}
		return graph, op
	default:
		return "", "other"
	}
}

// statusRecorder captures the status code written by a handler and
// whether anything was written at all (so panic recovery knows if a 500
// can still be sent).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// instrument wraps next with per-request metrics — an in-flight gauge,
// a request counter by method/graph/op/status, and a latency histogram
// by op — and panic containment: a panicking handler is logged with its
// stack and answered with 500 status="panic" (when the response has not
// started) instead of killing the whole process.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight := s.reg.Gauge("gstore_http_requests_in_flight",
			"Requests currently being served.")
		inflight.Add(1)
		defer inflight.Add(-1)

		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter("gstore_http_panics_total",
					"Handler panics contained by the recovery middleware.").Inc()
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				rec.code = http.StatusInternalServerError
				if !rec.wrote {
					writeErrorStatus(rec, http.StatusInternalServerError, "panic",
						"internal error (handler panic)")
				}
			}
			graph, op := s.routeLabels(r.URL.EscapedPath())
			s.reg.Counter("gstore_http_requests_total",
				"HTTP requests by method, graph, operation and status.",
				metrics.L("method", r.Method),
				metrics.L("graph", graph),
				metrics.L("op", op),
				metrics.L("status", strconv.Itoa(rec.code))).Inc()
			s.reg.Histogram("gstore_http_request_duration_seconds",
				"Request latency by operation.", metrics.DefBuckets,
				metrics.L("op", op)).Observe(time.Since(start).Seconds())
		}()
		next.ServeHTTP(rec, r)
	})
}

// splitGraphPath splits an escaped "/graphs/…" path into its decoded
// graph name and operation segment. A name whose decoded form contains
// '/' (an escaped %2F) can never match a served graph, because AddGraph
// rejects such names — so escape tricks fall through to 404 instead of
// being mis-routed.
func splitGraphPath(escapedPath string) (name, op string, err error) {
	rest := strings.TrimPrefix(escapedPath, "/graphs/")
	parts := strings.SplitN(rest, "/", 2)
	name, err = url.PathUnescape(parts[0])
	if err != nil {
		return "", "", fmt.Errorf("bad graph name escape: %v", err)
	}
	if len(parts) == 2 {
		op, err = url.PathUnescape(parts[1])
		if err != nil {
			return "", "", fmt.Errorf("bad operation escape: %v", err)
		}
	}
	return name, op, nil
}

func (s *Server) lookup(name string) *GraphHandle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphs[name]
}

type graphInfo struct {
	Name        string `json:"name"`
	Vertices    uint32 `json:"vertices"`
	Edges       int64  `json:"edges"`
	StoredEdges int64  `json:"stored_tuples"`
	Directed    bool   `json:"directed"`
	Half        bool   `json:"half_stored"`
	TileBits    uint   `json:"tile_bits"`
	Tiles       int    `json:"tiles"`
	DataBytes   int64  `json:"data_bytes"`
}

func info(h *GraphHandle) graphInfo {
	m := h.Graph.Meta
	return graphInfo{
		Name:        h.Name,
		Vertices:    m.NumVertices,
		Edges:       m.NumOriginal,
		StoredEdges: m.NumStored,
		Directed:    m.Directed,
		Half:        m.Half,
		TileBits:    m.TileBits,
		Tiles:       h.Graph.Layout.NumTiles(),
		DataBytes:   h.Graph.DataBytes(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Snapshot the handles in one critical section: resolving each name
	// with a second lookup would race with Close and hand info a nil
	// handle.
	s.mu.RLock()
	handles := make([]*GraphHandle, 0, len(s.graphs))
	for _, h := range s.graphs {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].Name < handles[j].Name })
	out := make([]graphInfo, 0, len(handles))
	for _, h := range handles {
		out = append(out, info(h))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	// Split on the escaped path so a %2F inside a segment stays inside
	// that segment instead of shifting the route.
	name, op, err := splitGraphPath(r.URL.EscapedPath())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h := s.lookup(name)
	if h == nil {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	if op == "" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, info(h))
		return
	}
	if r.Method == http.MethodGet && (op == "bfs" || op == "ppr") {
		// The personalized fast path: cached, single-flight deduped, and
		// (for BFS) coalesced with concurrent roots into one msbfs run.
		s.handlePersonal(w, r, h, op)
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if op != "edges" && op != "ppr" {
		// Per-tenant admission quota for the run-submitting POST ops; the
		// personalized paths (GET bfs/ppr, POST ppr) apply it inside the
		// cache fill instead, so cache hits stay quota-free.
		release, err := s.acquireTenant(h, op, r.URL.Query().Get("tenant"))
		if err != nil {
			writeRunError(w, err)
			return
		}
		defer release()
	}
	switch op {
	case "edges":
		s.handleEdges(w, r, h)
	case "bfs":
		s.handleBFS(w, r, h)
	case "khop":
		s.handleKHop(w, r, h)
	case "msbfs":
		s.handleMSBFS(w, r, h)
	case "pagerank":
		s.handlePageRank(w, r, h)
	case "ppr":
		s.handlePPRPost(w, r, h)
	case "wcc":
		s.handleComponents(w, r, h, false)
	case "scc":
		s.handleComponents(w, r, h, true)
	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

type runStats struct {
	Iterations int     `json:"iterations"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	BytesRead  int64   `json:"bytes_read"`
	CacheHits  int64   `json:"tiles_from_cache"`
}

func toStats(st *core.Stats) runStats {
	return runStats{
		Iterations: st.Iterations,
		ElapsedMS:  float64(st.Elapsed) / float64(time.Millisecond),
		BytesRead:  st.BytesRead,
		CacheHits:  st.TilesFromCache,
	}
}

// occupancyBuckets grades how many runs shared one sweep (1 = solo, up
// to the 64-run interest-mask ceiling).
var occupancyBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// run submits the algorithm to the graph's shared-sweep scheduler,
// publishes the run's engine/storage/mem counters, and honors the
// request context: a client that disconnects cancels its run, whether
// it is queued or mid-sweep.
func (s *Server) run(ctx context.Context, h *GraphHandle, a algo.Algorithm) (*core.Stats, error) {
	st, err := h.sched.Run(ctx, a)
	s.queueDepth(h.Name).Set(int64(h.sched.QueueDepth()))

	status := classifyRunStatus(err)
	if status == "rejected" {
		s.runsRejected(h.Name).Inc()
	}
	s.engineRuns(h.Name, a.Name(), status).Inc()
	if st != nil {
		// Queue wait is observed for every run that has stats — including
		// ones canceled or rejected while still queued, which would
		// otherwise bias the histogram toward waits that ended in
		// admission. Occupancy and engine counters only make sense for
		// runs that actually rode a sweep (SharedRuns ≥ 1).
		s.queueWait(h.Name).Observe(st.QueueWait.Seconds())
		if st.SharedRuns > 0 {
			s.batchOccupancy(h.Name).Observe(float64(st.SharedRuns))
			core.PublishStats(s.reg, h.Name, st)
		}
	}
	return st, err
}

// classifyRunStatus maps a Run error onto the bounded status label set
// of gstore_engine_runs_total.
func classifyRunStatus(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrQueueFull):
		return "rejected"
	case errors.Is(err, core.ErrSchedulerClosed):
		return "shutdown"
	case errors.As(err, new(*core.BadRequestError)):
		return "bad_request"
	case errors.As(err, new(*core.IntegrityError)):
		return "integrity"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}

// writeRunError maps a Run error onto the right status class: request
// errors are the client's fault (400), admission overflow is
// backpressure the client should retry later (429), a scheduler closed
// by graceful shutdown or a canceled run mean the server is going away
// or the client already left (503), detected tile corruption is a 500
// naming the damaged tile (the operator's cue to run gstore fsck), and
// anything else is an engine/storage failure (500).
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.As(err, new(*core.BadRequestError)):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, core.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, errTenantQuota):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, core.ErrSchedulerClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down: %v", err)
	case errors.As(err, new(*core.IntegrityError)):
		writeError(w, http.StatusInternalServerError, "data integrity failure: %v", err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "run canceled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "engine failure: %v", err)
	}
}

// handleEdges applies one batch of edge mutations through the graph's
// WAL-backed write path. The batch is atomic with respect to queries
// (readers see all of it or none of it) and durable once the response
// is written: the WAL record is fsynced before Apply returns. Once the
// WAL enters its sticky failed state the graph degrades to read-only:
// every mutation gets 503 status="wal_failed" (queries keep serving)
// until the operator restarts the process against healthy storage.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	if h.delta == nil {
		writeError(w, http.StatusForbidden, "graph %q is read-only", h.Name)
		return
	}
	if err := h.delta.Failed(); err != nil {
		s.walFailed(h.Name).Set(1)
		writeErrorStatus(w, http.StatusServiceUnavailable, "wal_failed",
			"graph %q is read-only (write path failed): %v", h.Name, err)
		return
	}
	var req struct {
		Edges []struct {
			Src uint32 `json:"src"`
			Dst uint32 `json:"dst"`
			Del bool   `json:"delete"`
		} `json:"edges"`
		// Flush forces a delta snapshot + WAL truncation after the batch
		// (otherwise flushing is automatic and policy-driven).
		Flush bool `json:"flush"`
	}
	if !readJSONLimit(w, r, &req, 64<<20) {
		return
	}
	if len(req.Edges) == 0 && !req.Flush {
		writeError(w, http.StatusBadRequest, "empty batch: need edges or flush")
		return
	}
	ops := make([]delta.Op, len(req.Edges))
	for i, e := range req.Edges {
		ops[i] = delta.Op{Del: e.Del, Src: e.Src, Dst: e.Dst}
	}

	h.applyMu.Lock()
	changed, err := h.delta.Apply(ops)
	if err == nil && req.Flush {
		err = h.delta.Flush()
	}
	st := h.delta.Stats()
	h.applyMu.Unlock()

	if err != nil {
		var bad *delta.BadOpError
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, wal.ErrFailed):
			// The fsync failed under this very batch (or one racing it):
			// nothing was acked, the WAL is poisoned, and the graph is now
			// read-only for mutations.
			s.walFailed(h.Name).Set(1)
			writeErrorStatus(w, http.StatusServiceUnavailable, "wal_failed",
				"graph %q write failed and is now read-only: %v", h.Name, err)
		default:
			writeError(w, http.StatusInternalServerError, "write path failure: %v", err)
		}
		return
	}
	s.deltaMetrics(h.Name, st)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"applied":     len(ops),
		"changed":     changed,
		"seq":         st.Seq,
		"delta_tiles": st.DeltaTiles,
		"wal_segment": st.WALSegment,
	})
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Root  uint32 `json:"root"`
		Async bool   `json:"async"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	var depths []int32
	var st *core.Stats
	var err error
	if req.Async {
		a := algo.NewAsyncBFS(req.Root)
		st, err = s.run(r.Context(), h, a)
		if err == nil {
			depths = a.Depths()
		}
	} else {
		a := algo.NewBFS(req.Root)
		st, err = s.run(r.Context(), h, a)
		if err == nil {
			depths = a.Depths()
		}
	}
	if err != nil {
		writeRunError(w, err)
		return
	}
	reached := 0
	maxDepth := int32(-1)
	for _, d := range depths {
		if d >= 0 {
			reached++
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"root": req.Root, "reached": reached, "max_depth": maxDepth,
		"stats": toStats(st),
	})
}

// handleKHop answers neighborhood-size queries: how many vertices lie
// within k hops of root (per ring and cumulative).
func (s *Server) handleKHop(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Root uint32 `json:"root"`
		K    int    `json:"k"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 2
	}
	a := algo.NewBFS(req.Root)
	st, err := s.run(r.Context(), h, a)
	if err != nil {
		writeRunError(w, err)
		return
	}
	rings := make([]int, req.K+1)
	beyond := 0
	for _, d := range a.Depths() {
		switch {
		case d < 0:
		case int(d) <= req.K:
			rings[d]++
		default:
			beyond++
		}
	}
	cum := 0
	cums := make([]int, len(rings))
	for i, n := range rings {
		cum += n
		cums[i] = cum
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"root": req.Root, "k": req.K,
		"ring_sizes": rings, "cumulative": cums, "beyond_k": beyond,
		"stats": toStats(st),
	})
}

func (s *Server) handleMSBFS(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Roots []uint32 `json:"roots"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	a := algo.NewMSBFS(req.Roots)
	st, err := s.run(r.Context(), h, a)
	if err != nil {
		writeRunError(w, err)
		return
	}
	out := make([]map[string]interface{}, len(req.Roots))
	for i, root := range req.Roots {
		reached := 0
		for _, d := range a.Depth(i) {
			if d >= 0 {
				reached++
			}
		}
		out[i] = map[string]interface{}{"root": root, "reached": reached}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sources": out, "stats": toStats(st),
	})
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Iterations int `json:"iterations"`
		Top        int `json:"top"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	if req.Iterations <= 0 {
		req.Iterations = 10
	}
	if req.Top <= 0 {
		req.Top = 10
	}
	a := algo.NewPageRank(req.Iterations)
	st, err := s.run(r.Context(), h, a)
	if err != nil {
		writeRunError(w, err)
		return
	}
	type vr struct {
		Vertex uint32  `json:"vertex"`
		Rank   float64 `json:"rank"`
	}
	ranks := a.Ranks()
	top := make([]vr, 0, len(ranks))
	for v, rank := range ranks {
		top = append(top, vr{uint32(v), rank})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Rank > top[j].Rank })
	if len(top) > req.Top {
		top = top[:req.Top]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"top": top, "stats": toStats(st),
	})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request, h *GraphHandle, strong bool) {
	var req struct{}
	if !readJSON(w, r, &req) {
		return
	}
	var labels []uint32
	var st *core.Stats
	var err error
	if strong {
		a := algo.NewSCC()
		st, err = s.run(r.Context(), h, a)
		if err == nil {
			labels = a.Labels()
		}
	} else {
		a := algo.NewWCC()
		st, err = s.run(r.Context(), h, a)
		if err == nil {
			labels = a.Labels()
		}
	}
	if err != nil {
		writeRunError(w, err)
		return
	}
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"components": len(sizes), "largest": largest, "stats": toStats(st),
	})
}

func readJSON(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	return readJSONLimit(w, r, into, 1<<20)
}

func readJSONLimit(w http.ResponseWriter, r *http.Request, into interface{}, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(into); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeErrorStatus is writeError with a machine-readable "status" field
// so clients can distinguish degradation classes (wal_failed, panic,
// shutting_down, …) without parsing the human message.
func writeErrorStatus(w http.ResponseWriter, code int, status, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"status": status,
	})
}

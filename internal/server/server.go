// Package server exposes converted graphs over HTTP: the "store" face of
// G-Store. One process serves any number of converted graphs; each
// algorithm request runs through the slide-cache-rewind engine and
// returns a JSON summary (full per-vertex results are available paged).
//
// Endpoints:
//
//	GET  /healthz                     — liveness
//	GET  /graphs                      — list loaded graphs
//	GET  /graphs/{name}               — one graph's metadata
//	POST /graphs/{name}/bfs           — {"root":0,"async":false}
//	POST /graphs/{name}/msbfs         — {"roots":[0,1,2]}
//	POST /graphs/{name}/pagerank      — {"iterations":10,"top":10}
//	POST /graphs/{name}/wcc           — {}
//	POST /graphs/{name}/scc           — {} (directed graphs only)
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/tile"
)

// GraphHandle is one served graph: the open tile store, its engine, and
// a mutex serializing runs (an engine executes one algorithm at a time).
type GraphHandle struct {
	Name   string
	Graph  *tile.Graph
	engine *core.Engine
	mu     sync.Mutex
}

// Server routes requests to its graphs.
type Server struct {
	mu     sync.RWMutex
	graphs map[string]*GraphHandle
}

// New creates an empty server.
func New() *Server {
	return &Server{graphs: make(map[string]*GraphHandle)}
}

// AddGraph opens the graph at basePath and serves it under name. opts
// configures its engine.
func (s *Server) AddGraph(name, basePath string, opts core.Options) error {
	g, err := tile.Open(basePath)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(g, opts)
	if err != nil {
		g.Close()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[name]; dup {
		eng.Close()
		g.Close()
		return fmt.Errorf("server: graph %q already loaded", name)
	}
	s.graphs[name] = &GraphHandle{Name: name, Graph: g, engine: eng}
	return nil
}

// Close releases every graph.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.graphs {
		h.engine.Close()
		h.Graph.Close()
	}
	s.graphs = map[string]*GraphHandle{}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/graphs", s.handleList)
	mux.HandleFunc("/graphs/", s.handleGraph)
	return mux
}

func (s *Server) lookup(name string) *GraphHandle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphs[name]
}

type graphInfo struct {
	Name        string `json:"name"`
	Vertices    uint32 `json:"vertices"`
	Edges       int64  `json:"edges"`
	StoredEdges int64  `json:"stored_tuples"`
	Directed    bool   `json:"directed"`
	Half        bool   `json:"half_stored"`
	TileBits    uint   `json:"tile_bits"`
	Tiles       int    `json:"tiles"`
	DataBytes   int64  `json:"data_bytes"`
}

func info(h *GraphHandle) graphInfo {
	m := h.Graph.Meta
	return graphInfo{
		Name:        h.Name,
		Vertices:    m.NumVertices,
		Edges:       m.NumOriginal,
		StoredEdges: m.NumStored,
		Directed:    m.Directed,
		Half:        m.Half,
		TileBits:    m.TileBits,
		Tiles:       h.Graph.Layout.NumTiles(),
		DataBytes:   h.Graph.DataBytes(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]graphInfo, 0, len(names))
	for _, n := range names {
		out = append(out, info(s.lookup(n)))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/graphs/")
	parts := strings.SplitN(rest, "/", 2)
	h := s.lookup(parts[0])
	if h == nil {
		writeError(w, http.StatusNotFound, "unknown graph %q", parts[0])
		return
	}
	if len(parts) == 1 || parts[1] == "" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, info(h))
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	switch parts[1] {
	case "bfs":
		s.handleBFS(w, r, h)
	case "khop":
		s.handleKHop(w, r, h)
	case "msbfs":
		s.handleMSBFS(w, r, h)
	case "pagerank":
		s.handlePageRank(w, r, h)
	case "wcc":
		s.handleComponents(w, r, h, false)
	case "scc":
		s.handleComponents(w, r, h, true)
	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", parts[1])
	}
}

type runStats struct {
	Iterations int     `json:"iterations"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	BytesRead  int64   `json:"bytes_read"`
	CacheHits  int64   `json:"tiles_from_cache"`
}

func toStats(st *core.Stats) runStats {
	return runStats{
		Iterations: st.Iterations,
		ElapsedMS:  float64(st.Elapsed) / float64(time.Millisecond),
		BytesRead:  st.BytesRead,
		CacheHits:  st.TilesFromCache,
	}
}

// run serializes algorithm execution on one graph.
func (h *GraphHandle) run(a algo.Algorithm) (*core.Stats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.engine.Run(a)
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Root  uint32 `json:"root"`
		Async bool   `json:"async"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	var depths []int32
	var st *core.Stats
	var err error
	if req.Async {
		a := algo.NewAsyncBFS(req.Root)
		st, err = h.run(a)
		if err == nil {
			depths = a.Depths()
		}
	} else {
		a := algo.NewBFS(req.Root)
		st, err = h.run(a)
		if err == nil {
			depths = a.Depths()
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reached := 0
	maxDepth := int32(-1)
	for _, d := range depths {
		if d >= 0 {
			reached++
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"root": req.Root, "reached": reached, "max_depth": maxDepth,
		"stats": toStats(st),
	})
}

// handleKHop answers neighborhood-size queries: how many vertices lie
// within k hops of root (per ring and cumulative).
func (s *Server) handleKHop(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Root uint32 `json:"root"`
		K    int    `json:"k"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 2
	}
	a := algo.NewBFS(req.Root)
	st, err := h.run(a)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rings := make([]int, req.K+1)
	beyond := 0
	for _, d := range a.Depths() {
		switch {
		case d < 0:
		case int(d) <= req.K:
			rings[d]++
		default:
			beyond++
		}
	}
	cum := 0
	cums := make([]int, len(rings))
	for i, n := range rings {
		cum += n
		cums[i] = cum
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"root": req.Root, "k": req.K,
		"ring_sizes": rings, "cumulative": cums, "beyond_k": beyond,
		"stats": toStats(st),
	})
}

func (s *Server) handleMSBFS(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Roots []uint32 `json:"roots"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	a := algo.NewMSBFS(req.Roots)
	st, err := h.run(a)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]map[string]interface{}, len(req.Roots))
	for i, root := range req.Roots {
		reached := 0
		for _, d := range a.Depth(i) {
			if d >= 0 {
				reached++
			}
		}
		out[i] = map[string]interface{}{"root": root, "reached": reached}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sources": out, "stats": toStats(st),
	})
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request, h *GraphHandle) {
	var req struct {
		Iterations int `json:"iterations"`
		Top        int `json:"top"`
	}
	if !readJSON(w, r, &req) {
		return
	}
	if req.Iterations <= 0 {
		req.Iterations = 10
	}
	if req.Top <= 0 {
		req.Top = 10
	}
	a := algo.NewPageRank(req.Iterations)
	st, err := h.run(a)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type vr struct {
		Vertex uint32  `json:"vertex"`
		Rank   float64 `json:"rank"`
	}
	ranks := a.Ranks()
	top := make([]vr, 0, len(ranks))
	for v, rank := range ranks {
		top = append(top, vr{uint32(v), rank})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Rank > top[j].Rank })
	if len(top) > req.Top {
		top = top[:req.Top]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"top": top, "stats": toStats(st),
	})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request, h *GraphHandle, strong bool) {
	var req struct{}
	if !readJSON(w, r, &req) {
		return
	}
	var labels []uint32
	var st *core.Stats
	var err error
	if strong {
		a := algo.NewSCC()
		st, err = h.run(a)
		if err == nil {
			labels = a.Labels()
		}
	} else {
		a := algo.NewWCC()
		st, err = h.run(a)
		if err == nil {
			labels = a.Labels()
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"components": len(sizes), "largest": largest, "stats": toStats(st),
	})
}

func readJSON(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

package core

import (
	"math"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/graph"
)

func TestInMemoryMatchesDiskEngine(t *testing.T) {
	el := kron(t, 10, 8, 31)
	g := convert(t, el, 6, 4)
	mg, err := LoadInMemory(g)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Bytes() != g.DataBytes() {
		t.Fatalf("loaded %d bytes, want %d", mg.Bytes(), g.DataBytes())
	}

	b := algo.NewBFS(0)
	st, err := mg.Run(b, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.TilesProcessed == 0 || st.Elapsed <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	p := algo.NewPageRank(8)
	if _, err := mg.Run(p, 4, 8); err != nil {
		t.Fatal(err)
	}
	wantR := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(8))
	for v, r := range p.Ranks() {
		if math.Abs(r-wantR[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, wantR[v])
		}
	}

	w := algo.NewWCC()
	if _, err := mg.Run(w, 1, 0); err != nil {
		t.Fatal(err)
	}
	wantL := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != wantL[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, wantL[v])
		}
	}
}

func TestInMemorySelectiveSkips(t *testing.T) {
	n := uint32(512)
	el := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v+1 < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	g := convert(t, el, 5, 2)
	mg, err := LoadInMemory(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mg.Run(algo.NewBFS(0), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesSkipped == 0 {
		t.Fatal("in-memory run ignored selective iteration")
	}
}

func TestEngineHDDTier(t *testing.T) {
	el := kron(t, 10, 8, 32)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.Cache = CacheNone
	opts.Bandwidth = 512 << 20
	opts.HDD = &HDDTier{Fraction: 0.5, Disks: 1, Bandwidth: 64 << 20}
	b := algo.NewBFS(0)
	st := runAlg(t, g, opts, b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.BytesRead == 0 {
		t.Fatal("no bytes read through tiered device")
	}
}

func TestEngineHDDTierValidation(t *testing.T) {
	el := kron(t, 9, 4, 33)
	g := convert(t, el, 5, 2)
	opts := smallOpts()
	opts.HDD = &HDDTier{Fraction: 1.5}
	if _, err := NewEngine(g, opts); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

// The tiered engine must slow down gracefully as more of the graph moves
// to the slow tier.
func TestEngineHDDTierDegradation(t *testing.T) {
	el := kron(t, 11, 8, 34)
	g := convert(t, el, 6, 4)
	// Compare the storage model's charged service time rather than
	// wall-clock, which compute noise (e.g. the race detector) distorts.
	busy := func(frac float64) int64 {
		opts := smallOpts()
		opts.Cache = CacheNone
		opts.Bandwidth = 1 << 30
		opts.Latency = 10 * time.Microsecond
		opts.HDD = &HDDTier{Fraction: frac, Disks: 1, Bandwidth: 2 << 20,
			Latency: time.Millisecond}
		st := runAlg(t, g, opts, algo.NewPageRank(2))
		return int64(st.Storage.BusyTime)
	}
	fast := busy(0)
	slow := busy(0.9)
	if slow < 2*fast {
		t.Fatalf("90%% HDD run charged %d busy-ns, all-SSD %d; expected much more", slow, fast)
	}
}

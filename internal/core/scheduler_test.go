package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/tile"
)

// gated wraps an algorithm so its first AfterIteration blocks until
// released, holding the sweep at a known point while a test arranges
// co-scheduled runs. entered is signaled when the block is reached.
type gated struct {
	algo.Algorithm
	entered chan struct{}
	release chan struct{}
}

func newGated(a algo.Algorithm) *gated {
	return &gated{Algorithm: a, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gated) AfterIteration(i int) bool {
	done := g.Algorithm.AfterIteration(i)
	if i == 0 {
		g.entered <- struct{}{}
		<-g.release
	}
	return done
}

func newSched(t *testing.T, g *tile.Graph, opts Options) (*Engine, *Scheduler) {
	t.Helper()
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	s := NewScheduler(e)
	t.Cleanup(s.Close)
	return e, s
}

// waitActive blocks until n runs are admitted (batch + pending).
func waitActive(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		active := s.active
		s.mu.Unlock()
		if active >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d active runs (have %d)", n, active)
		}
		time.Sleep(time.Millisecond)
	}
}

// A scheduler driving a single run must reproduce Engine.Run exactly:
// same results, same iteration count, same I/O accounting.
func TestSchedulerSoloMatchesEngineRun(t *testing.T) {
	el := kron(t, 10, 8, 5)
	g := convert(t, el, 6, 4)

	ref := algo.NewBFS(0)
	refSt := runAlg(t, g, smallOpts(), ref)

	_, s := newSched(t, g, smallOpts())
	a := algo.NewBFS(0)
	st, err := s.Run(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	wantD, gotD := ref.Depths(), a.Depths()
	for v := range wantD {
		if wantD[v] != gotD[v] {
			t.Fatalf("depth[%d] = %d via scheduler, %d solo", v, gotD[v], wantD[v])
		}
	}
	if st.Iterations != refSt.Iterations {
		t.Fatalf("Iterations = %d via scheduler, %d solo", st.Iterations, refSt.Iterations)
	}
	if st.BytesRead != refSt.BytesRead {
		t.Fatalf("BytesRead = %d via scheduler, %d solo", st.BytesRead, refSt.BytesRead)
	}
	if st.SharedRuns != 1 {
		t.Fatalf("SharedRuns = %d for a solo scheduler run, want 1", st.SharedRuns)
	}
	if st.QueueWait != 0 {
		t.Fatalf("QueueWait = %v for an immediately admitted run, want 0", st.QueueWait)
	}
}

// Eight mixed runs co-scheduled on one sweep must produce the same
// results as solo execution: BFS depths and WCC labels bit-identical,
// PageRank ranks within the chunked-reduction tolerance. This is the
// join-barrier correctness test; CI runs it under -race.
func TestSchedulerMixedConcurrentMatchesSolo(t *testing.T) {
	el := kron(t, 11, 8, 3)
	g := convert(t, el, 6, 4)

	// Solo references, each on a fresh engine.
	refBFS := make([]*algo.BFS, 3)
	for i := range refBFS {
		refBFS[i] = algo.NewBFS(uint32(i))
		runAlg(t, g, smallOpts(), refBFS[i])
	}
	refWCC := algo.NewWCC()
	runAlg(t, g, smallOpts(), refWCC)
	refPR10 := algo.NewPageRank(10)
	prSoloSt := runAlg(t, g, smallOpts(), refPR10)
	refPR20 := algo.NewPageRank(20)
	runAlg(t, g, smallOpts(), refPR20)

	opts := smallOpts()
	opts.MaxConcurrentRuns = 8
	_, s := newSched(t, g, opts)

	// The heavy run goes first and holds the sweep at iteration 0 until
	// all seven others are admitted, guaranteeing everyone shares.
	heavy := newGated(algo.NewPageRank(20))
	heavyErr := make(chan error, 1)
	var heavySt *Stats
	go func() {
		st, err := s.Run(context.Background(), heavy)
		heavySt = st
		heavyErr <- err
	}()
	<-heavy.entered

	bfs := make([]*algo.BFS, 3)
	for i := range bfs {
		bfs[i] = algo.NewBFS(uint32(i))
	}
	wcc := [2]*algo.WCC{algo.NewWCC(), algo.NewWCC()}
	pr := [2]*algo.PageRank{algo.NewPageRank(10), algo.NewPageRank(10)}

	var wg sync.WaitGroup
	stats := make([]*Stats, 7)
	errs := make([]error, 7)
	riders := []algo.Algorithm{bfs[0], bfs[1], bfs[2], wcc[0], wcc[1], pr[0], pr[1]}
	for i, a := range riders {
		wg.Add(1)
		go func(i int, a algo.Algorithm) {
			defer wg.Done()
			stats[i], errs[i] = s.Run(context.Background(), a)
		}(i, a)
	}
	waitActive(t, s, 8)
	close(heavy.release)
	wg.Wait()
	if err := <-heavyErr; err != nil {
		t.Fatalf("heavy run: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rider %d: %v", i, err)
		}
	}

	for i := range bfs {
		want, got := refBFS[i].Depths(), bfs[i].Depths()
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("bfs[%d] depth[%d] = %d shared, %d solo", i, v, got[v], want[v])
			}
		}
	}
	for i := range wcc {
		want, got := refWCC.Labels(), wcc[i].Labels()
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("wcc[%d] label[%d] = %d shared, %d solo", i, v, got[v], want[v])
			}
		}
	}
	// Chunked PageRank reduces worker slabs in nondeterministic float
	// order, so shared-vs-solo matches to tolerance, same as the chunked
	// equivalence tests.
	for i := range pr {
		want, got := refPR10.Ranks(), pr[i].Ranks()
		for v := range want {
			if math.Abs(want[v]-got[v]) > 1e-9 {
				t.Fatalf("pr[%d] rank[%d] = %g shared, %g solo", i, v, got[v], want[v])
			}
		}
	}
	for v, want := range refPR20.Ranks() {
		if got := heavy.Algorithm.(*algo.PageRank).Ranks()[v]; math.Abs(want-got) > 1e-9 {
			t.Fatalf("heavy rank[%d] = %g shared, %g solo", v, got, want)
		}
	}

	// Everyone shared a sweep, and the shared scan attributed each
	// PageRank rider fewer bytes than its solo run paid.
	if heavySt.SharedRuns < 2 {
		t.Fatalf("heavy SharedRuns = %d, want ≥ 2", heavySt.SharedRuns)
	}
	for i, st := range stats {
		if st.SharedRuns < 2 {
			t.Fatalf("rider %d SharedRuns = %d, want ≥ 2", i, st.SharedRuns)
		}
	}
	for i := 5; i < 7; i++ { // the PageRank(10) riders
		if stats[i].BytesRead >= prSoloSt.BytesRead {
			t.Fatalf("shared pagerank BytesRead = %d, want < solo %d",
				stats[i].BytesRead, prSoloSt.BytesRead)
		}
	}
}

// Admission control: with a full batch and a full queue further runs are
// rejected; a queued run whose client disconnects leaves the queue with
// its context error.
func TestSchedulerQueueOverflowAndCancel(t *testing.T) {
	el := kron(t, 10, 8, 7)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.MaxConcurrentRuns = 1
	opts.MaxQueuedRuns = 1
	_, s := newSched(t, g, opts)

	blocker := newGated(algo.NewPageRank(5))
	blockErr := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), blocker)
		blockErr <- err
	}()
	<-blocker.entered

	qctx, qcancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Run(qctx, algo.NewWCC())
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued run never appeared in the queue")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Run(context.Background(), algo.NewWCC()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow run err = %v, want ErrQueueFull", err)
	}

	qcancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued run err = %v, want context.Canceled", err)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth = %d after queued run canceled, want 0", d)
	}

	close(blocker.release)
	if err := <-blockErr; err != nil {
		t.Fatalf("blocking run: %v", err)
	}

	// The slot is free again: a fresh run admits and completes.
	if _, err := s.Run(context.Background(), algo.NewWCC()); err != nil {
		t.Fatalf("run after drain: %v", err)
	}
}

// Runs that leave the queue without admission — canceled, or rejected by
// Close — must still report their queue wait, or the latency histogram
// only ever sees waits that ended in admission (survivorship bias).
func TestSchedulerQueuedExitObservesQueueWait(t *testing.T) {
	el := kron(t, 10, 8, 11)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.MaxConcurrentRuns = 1
	opts.MaxQueuedRuns = 2
	_, s := newSched(t, g, opts)

	blocker := newGated(algo.NewPageRank(5))
	blockErr := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), blocker)
		blockErr <- err
	}()
	<-blocker.entered

	type res struct {
		st  *Stats
		err error
	}
	qctx, qcancel := context.WithCancel(context.Background())
	canceled := make(chan res, 1)
	go func() {
		st, err := s.Run(qctx, algo.NewWCC())
		canceled <- res{st, err}
	}()
	rejected := make(chan res, 1)
	go func() {
		st, err := s.Run(context.Background(), algo.NewWCC())
		rejected <- res{st, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued runs never appeared in the queue")
		}
		time.Sleep(time.Millisecond)
	}

	time.Sleep(5 * time.Millisecond) // accrue a measurable wait
	qcancel()
	r := <-canceled
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("canceled queued run err = %v, want context.Canceled", r.err)
	}
	if r.st == nil || r.st.QueueWait <= 0 {
		t.Fatalf("canceled queued run stats = %+v, want non-nil with QueueWait > 0", r.st)
	}

	closed := make(chan struct{})
	go func() {
		s.Close() // rejects the remaining queued run, then drains
		close(closed)
	}()
	r = <-rejected
	if !errors.Is(r.err, ErrSchedulerClosed) {
		t.Fatalf("rejected queued run err = %v, want ErrSchedulerClosed", r.err)
	}
	if r.st == nil || r.st.QueueWait <= 0 {
		t.Fatalf("rejected queued run stats = %+v, want non-nil with QueueWait > 0", r.st)
	}

	close(blocker.release)
	if err := <-blockErr; err != nil {
		t.Fatalf("blocking run: %v", err)
	}
	<-closed
}

// One rider canceling mid-sweep must not disturb its co-scheduled
// neighbor, and a closed scheduler refuses new work.
func TestSchedulerRiderCancelAndClose(t *testing.T) {
	el := kron(t, 10, 8, 9)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.MaxConcurrentRuns = 4
	_, s := newSched(t, g, opts)

	ref := algo.NewPageRank(8)
	runAlg(t, g, smallOpts(), ref)

	heavy := newGated(algo.NewPageRank(8))
	heavyErr := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), heavy)
		heavyErr <- err
	}()
	<-heavy.entered

	vctx, vcancel := context.WithCancel(context.Background())
	victimErr := make(chan error, 1)
	go func() {
		_, err := s.Run(vctx, algo.NewWCC())
		victimErr <- err
	}()
	waitActive(t, s, 2)
	vcancel()
	close(heavy.release)

	if err := <-victimErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled rider err = %v, want context.Canceled", err)
	}
	if err := <-heavyErr; err != nil {
		t.Fatalf("surviving rider: %v", err)
	}
	for v, want := range ref.Ranks() {
		if got := heavy.Algorithm.(*algo.PageRank).Ranks()[v]; math.Abs(want-got) > 1e-9 {
			t.Fatalf("survivor rank[%d] = %g, want %g", v, got, want)
		}
	}

	s.Close()
	if _, err := s.Run(context.Background(), algo.NewWCC()); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("run after Close err = %v, want ErrSchedulerClosed", err)
	}
}

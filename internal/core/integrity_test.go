package core

import (
	"context"
	"errors"
	"os"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// Acceptance: a flipped byte in the tiles file fails the run with
// *IntegrityError naming the corrupt tile, and the partial stats carry
// the verification counters to the caller.
func TestEngineDetectsOnDiskCorruption(t *testing.T) {
	el := kron(t, 10, 8, 31)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Flip one bit in the first non-empty tile's data. The write goes to
	// the same inode, so the engine's open handle sees the damage.
	victim := -1
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if g.TupleCount(i) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("graph has no tuples")
	}
	off, _ := g.TileByteRange(victim)
	tilesPath := g.BasePath() + ".tiles"
	data, err := os.ReadFile(tilesPath)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x40
	if err := os.WriteFile(tilesPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := e.Run(context.Background(), algo.NewPageRank(3))
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("Run error = %v, want *IntegrityError", err)
	}
	if ie.Tile != victim {
		t.Fatalf("IntegrityError names tile %d, want %d", ie.Tile, victim)
	}
	c := g.Layout.CoordAt(victim)
	if ie.Row != c.Row || ie.Col != c.Col {
		t.Fatalf("IntegrityError coords (%d,%d), want (%d,%d)", ie.Row, ie.Col, c.Row, c.Col)
	}
	var ce *tile.ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("IntegrityError does not wrap *tile.ChecksumError: %v", err)
	}
	if st == nil {
		t.Fatal("integrity failure returned nil stats")
	}
	if st.IntegrityErrors != 1 || st.ChecksumMismatches == 0 {
		t.Fatalf("stats = %+v, want IntegrityErrors=1 and ChecksumMismatches>0", st)
	}
	checkNoLeakedSegments(t, e)

	// Restore the byte: the same engine must run clean again.
	data[off] ^= 0x40
	if err := os.WriteFile(tilesPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = e.Run(context.Background(), algo.NewPageRank(3))
	if err != nil {
		t.Fatalf("Run after restore: %v", err)
	}
	if st.TilesVerified == 0 || st.IntegrityErrors != 0 {
		t.Fatalf("clean run stats = %+v, want TilesVerified>0, IntegrityErrors=0", st)
	}
	checkNoLeakedSegments(t, e)
}

// Under a fault device corrupting every read, the re-read sees damaged
// data too, so the run must fail with *IntegrityError — silent
// corruption never reaches a kernel.
func TestEngineIntegrityErrorUnderPersistentCorruption(t *testing.T) {
	el := kron(t, 10, 8, 32)
	g := convert(t, el, 6, 4)
	opts := faultOpts(storage.FaultConfig{Seed: 7, CorruptRate: 1, CorruptBytes: 2}, 3)
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := e.Run(context.Background(), algo.NewBFS(0))
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("Run error = %v, want *IntegrityError", err)
	}
	if st == nil || st.IntegrityErrors != 1 || st.ChecksumMismatches == 0 {
		t.Fatalf("stats = %+v, want IntegrityErrors=1 and ChecksumMismatches>0", st)
	}
	if st.Faults.Corruptions == 0 {
		t.Fatalf("no corruptions recorded in fault stats: %+v", st.Faults)
	}
	checkNoLeakedSegments(t, e)
}

// CorruptMax=1 corrupts exactly the first read: verification catches
// the mismatch, the single re-read comes back clean, and the run
// completes with the correct result — the in-flight-corruption
// recovery path, deterministically.
func TestEngineRecoversFromTransientCorruption(t *testing.T) {
	el := kron(t, 10, 8, 33)
	g := convert(t, el, 6, 4)
	opts := faultOpts(storage.FaultConfig{Seed: 8, CorruptRate: 1, CorruptMax: 1}, 3)
	b := algo.NewBFS(0)
	st := runAlg(t, g, opts, b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.ChecksumMismatches == 0 {
		t.Fatal("transient corruption not observed by verification")
	}
	if st.IntegrityErrors != 0 {
		t.Fatalf("recovered run reported IntegrityErrors=%d", st.IntegrityErrors)
	}
	if st.Faults.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Faults.Corruptions)
	}
}

// v1 graphs carry no checksums: the engine must skip verification and
// still run correctly.
func TestEngineV1GraphSkipsVerification(t *testing.T) {
	el := kron(t, 10, 8, 34)
	g, err := tile.Convert(el, t.TempDir(), "g", tile.ConvertOptions{
		TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true,
		FormatVersion: tile.VersionV1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Checksummed() {
		t.Fatal("v1 graph reports checksums")
	}
	b := algo.NewBFS(0)
	st := runAlg(t, g, smallOpts(), b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.TilesVerified != 0 || st.ChecksumMismatches != 0 {
		t.Fatalf("v1 run verified tiles: %+v", st)
	}
}

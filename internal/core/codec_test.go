package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/tile"
)

func convertCodec(t *testing.T, el *graph.EdgeList, bits uint, q uint32, codec string) *tile.Graph {
	t.Helper()
	g, err := tile.Convert(el, t.TempDir(), "g", tile.ConvertOptions{
		TileBits: bits, GroupQ: q, Symmetry: true, Codec: codec, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// TestCodecsAgreeOnQueries is the codec acceptance test: the same graph
// stored with each tuple codec must answer BFS and WCC bit-identically
// and PageRank within 1e-9, and the v3 store must be strictly smaller
// than both fixed-width stores.
func TestCodecsAgreeOnQueries(t *testing.T) {
	el := kron(t, 11, 8, 5)
	graphs := map[string]*tile.Graph{
		"snb": convertCodec(t, el, 6, 4, "snb"),
		"raw": convertCodec(t, el, 6, 4, "raw"),
		"v3":  convertCodec(t, el, 6, 4, "v3"),
	}
	if v3, snb := graphs["v3"].DataBytes(), graphs["snb"].DataBytes(); v3 >= snb {
		t.Fatalf("v3 tiles (%d bytes) not smaller than snb (%d bytes)", v3, snb)
	}

	depths := map[string][]int32{}
	labels := map[string][]uint32{}
	ranks := map[string][]float64{}
	for name, g := range graphs {
		b := algo.NewBFS(0)
		runAlg(t, g, smallOpts(), b)
		depths[name] = b.Depths()
		w := algo.NewWCC()
		runAlg(t, g, smallOpts(), w)
		labels[name] = w.Labels()
		p := algo.NewPageRank(10)
		runAlg(t, g, smallOpts(), p)
		ranks[name] = p.Ranks()
	}
	for _, name := range []string{"raw", "v3"} {
		for v := range depths["snb"] {
			if depths[name][v] != depths["snb"][v] {
				t.Fatalf("%s: BFS depth[%d] = %d, snb says %d", name, v, depths[name][v], depths["snb"][v])
			}
			if labels[name][v] != labels["snb"][v] {
				t.Fatalf("%s: WCC label[%d] = %d, snb says %d", name, v, labels[name][v], labels["snb"][v])
			}
			if d := math.Abs(ranks[name][v] - ranks["snb"][v]); d > 1e-9 {
				t.Fatalf("%s: PageRank[%d] differs from snb by %g", name, v, d)
			}
		}
	}
}

// TestCodecV3MutateThenQuery runs the delta-layer acceptance test on a v3
// store: after mutations through the WAL-backed delta layer, queries must
// match a fresh v3 conversion of the final edge set.
func TestCodecV3MutateThenQuery(t *testing.T) {
	el := kron(t, 10, 8, 9)
	g := convertCodec(t, el, 6, 4, "v3")
	ds, err := delta.Open(g, g.BasePath(), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	baseCount := make(map[uint64]int)
	for _, e := range el.Edges {
		baseCount[canonKey(e.Src, e.Dst)]++
	}
	var ops []delta.Op
	seen := make(map[uint64]bool)
	for i := 0; i < len(el.Edges) && len(ops) < 20; i += 83 {
		e := el.Edges[i]
		k := canonKey(e.Src, e.Dst)
		if seen[k] || e.Src == e.Dst {
			continue
		}
		seen[k] = true
		ops = append(ops, delta.Op{Del: true, Src: e.Src, Dst: e.Dst})
	}
	nv := g.Meta.NumVertices
	for x := uint32(3); len(ops) < 45; x += 2654435761 % nv {
		s, d := x%nv, (x*37+11)%nv
		k := canonKey(s, d)
		if baseCount[k] > 0 || seen[k] {
			continue
		}
		seen[k] = true
		ops = append(ops, delta.Op{Src: s, Dst: d})
	}
	if _, err := ds.Apply(ops); err != nil {
		t.Fatal(err)
	}

	final := make(map[uint64]int, len(baseCount))
	for k, c := range baseCount {
		final[k] = c
	}
	for _, op := range ops {
		if op.Del {
			final[canonKey(op.Src, op.Dst)] = 0
		} else {
			final[canonKey(op.Src, op.Dst)] = 1
		}
	}
	finalEl := &graph.EdgeList{NumVertices: nv}
	for k, c := range final {
		for i := 0; i < c; i++ {
			finalEl.Edges = append(finalEl.Edges, graph.Edge{Src: uint32(k >> 32), Dst: uint32(k)})
		}
	}
	fresh := convertCodec(t, finalEl, 6, 4, "v3")

	em, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	em.SetDeltaStore(ds)

	bm, bf := algo.NewBFS(0), algo.NewBFS(0)
	stm, err := em.Run(context.Background(), bm)
	if err != nil {
		t.Fatal(err)
	}
	if stm.DeltaTiles == 0 {
		t.Fatalf("mutated v3 run reported no delta-merged tiles: %+v", stm)
	}
	runAlg(t, fresh, smallOpts(), bf)
	for v := range bm.Depths() {
		if bm.Depths()[v] != bf.Depths()[v] {
			t.Fatalf("BFS depth[%d]: mutated v3 %d, fresh v3 %d", v, bm.Depths()[v], bf.Depths()[v])
		}
	}

	pm, pf := algo.NewPageRank(10), algo.NewPageRank(10)
	if _, err := em.Run(context.Background(), pm); err != nil {
		t.Fatal(err)
	}
	runAlg(t, fresh, smallOpts(), pf)
	for v := range pm.Ranks() {
		if d := math.Abs(pm.Ranks()[v] - pf.Ranks()[v]); d > 1e-9 {
			t.Fatalf("PageRank[%d]: mutated v3 differs from fresh by %g", v, d)
		}
	}
}

// TestConvertFsckRunMutateRoundTrip drives every codec through the full
// lifecycle — convert, offline fsck, query, mutate through the WAL-backed
// delta layer, query again, fsck again — and requires all codecs to agree
// with the snb reference at each step.
func TestConvertFsckRunMutateRoundTrip(t *testing.T) {
	el := kron(t, 10, 8, 21)
	ops := []delta.Op{
		{Src: 1, Dst: 2},
		{Del: true, Src: el.Edges[0].Src, Dst: el.Edges[0].Dst},
		{Src: 5, Dst: 900},
		{Del: true, Src: el.Edges[len(el.Edges)/2].Src, Dst: el.Edges[len(el.Edges)/2].Dst},
	}
	before := map[string][]int32{}
	after := map[string][]int32{}
	for _, codec := range []string{"snb", "raw", "v3"} {
		g := convertCodec(t, el, 5, 2, codec)
		if r := tile.Fsck(g.BasePath()); !r.OK() {
			t.Fatalf("%s: fsck after convert: %v", codec, r.Findings)
		}
		b := algo.NewBFS(0)
		runAlg(t, g, smallOpts(), b)
		before[codec] = b.Depths()

		ds, err := delta.Open(g, g.BasePath(), delta.Options{})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if _, err := ds.Apply(ops); err != nil {
			t.Fatalf("%s: apply: %v", codec, err)
		}
		e, err := NewEngine(g, smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		e.SetDeltaStore(ds)
		bm := algo.NewBFS(0)
		if _, err := e.Run(context.Background(), bm); err != nil {
			t.Fatalf("%s: mutated run: %v", codec, err)
		}
		after[codec] = bm.Depths()
		e.Close()
		if err := ds.Close(); err != nil {
			t.Fatalf("%s: close: %v", codec, err)
		}
		if r := tile.Fsck(g.BasePath()); !r.OK() {
			t.Fatalf("%s: fsck after mutate: %v", codec, r.Findings)
		}
	}
	for _, codec := range []string{"raw", "v3"} {
		for v := range before["snb"] {
			if before[codec][v] != before["snb"][v] {
				t.Fatalf("%s: pristine depth[%d] = %d, snb says %d",
					codec, v, before[codec][v], before["snb"][v])
			}
			if after[codec][v] != after["snb"][v] {
				t.Fatalf("%s: mutated depth[%d] = %d, snb says %d",
					codec, v, after[codec][v], after["snb"][v])
			}
		}
	}
}

// TestUnattributedBytesCounted pins the shared-fetch accounting fix: a
// fetched tile whose interested runs all finished before dispatch must
// land on the engine's unattributed counter instead of disappearing.
func TestUnattributedBytesCounted(t *testing.T) {
	el := kron(t, 9, 8, 3)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	r := &runState{finished: true, stats: &Stats{}}
	var done sync.WaitGroup
	ref := mem.TileRef{DiskIdx: 0, Row: 0, Col: 0, Data: make([]byte, 64)}
	if err := e.dispatchTile([]*runState{r}, 1, ref, 4096, &done); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	if got := e.UnattributedBytes(); got != 4096 {
		t.Fatalf("UnattributedBytes = %d, want 4096", got)
	}
	// A dispatch with a live interested run charges the run, not the
	// engine counter.
	live := &runState{stats: &Stats{}, ctx: context.Background(), alg: algo.NewWCC()}
	if err := live.alg.Init(&algo.Context{
		NumVertices: g.Meta.NumVertices, Layout: g.Layout,
		Half: g.Meta.Half, SNB: g.Meta.SNB, Codec: g.Meta.TupleCodec(),
	}); err != nil {
		t.Fatal(err)
	}
	data, err := g.ReadTile(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Layout.CoordAt(0)
	ref = mem.TileRef{DiskIdx: 0, Row: c.Row, Col: c.Col, Data: data}
	if err := e.dispatchTile([]*runState{live}, 1, ref, 512, &done); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	if got := e.UnattributedBytes(); got != 4096 {
		t.Fatalf("live dispatch leaked %d unattributed bytes", got-4096)
	}
	if live.bytesFrac != 512 {
		t.Fatalf("live run charged %v bytes, want 512", live.bytesFrac)
	}
}

package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
)

// This file is the batched-run abstraction for personalized queries: the
// scheduler coalesces compatible single-root BFS submissions (same
// graph, arrival within Options.BatchWindow) into one multi-source BFS
// that occupies a single run slot of the shared sweep, then
// demultiplexes per-root depth vectors back to the callers. The bitmask
// msbfs kernel advances all 64 traversals per tuple inspection, so the
// coalesced run costs one slot and roughly one traversal's worth of
// I/O where the one-root-per-slot path would have spent up to 64 slots.

// personalBatch is one open coalescing window and, after it fires, the
// shared outcome every rider demultiplexes from.
type personalBatch struct {
	roots []uint32       // distinct roots, slot-indexed
	slots map[uint32]int // root -> slot (duplicate submissions share)
	ctxs  []context.Context
	timer *time.Timer
	fired bool

	firedAt time.Time
	done    chan struct{}
	alg     *algo.MSBFS
	st      *Stats
	err     error
}

// RunPersonalBFS answers one single-root BFS query through the
// coalescing window: the calling goroutine blocks while the window
// collects compatible roots (or, with BatchWindow zero, runs a solo BFS
// immediately), then receives its own depth vector and a per-root view
// of the shared run's stats (fractional I/O attribution, BatchedRoots
// set to the number of coalesced roots). The returned depth slice
// aliases the batch kernel's storage and must be treated as read-only.
//
// Error semantics match Run: *BadRequestError for an out-of-range root
// (checked up front, so one bad root never poisons a batch),
// ErrQueueFull / ErrSchedulerClosed from admission, and a wrapped
// ctx.Err() when the caller cancels — the batch keeps running for its
// other riders and is torn down only when every rider has canceled.
func (s *Scheduler) RunPersonalBFS(ctx context.Context, root uint32) ([]int32, *Stats, error) {
	if n := s.e.g.Meta.NumVertices; root >= n {
		return nil, nil, &BadRequestError{Err: fmt.Errorf("core: bfs root %d outside vertex space %d", root, n)}
	}
	if s.window <= 0 {
		a := algo.NewBFS(root)
		st, err := s.Run(ctx, a)
		if st != nil {
			st.BatchedRoots = 1
		}
		s.notifyPersonal(st, err)
		if err != nil {
			return nil, st, err
		}
		return a.Depths(), st, nil
	}

	s.pmu.Lock()
	if s.pclosed {
		s.pmu.Unlock()
		return nil, nil, ErrSchedulerClosed
	}
	b := s.curBatch
	if b == nil {
		b = &personalBatch{slots: map[uint32]int{}, done: make(chan struct{})}
		s.curBatch = b
		s.personalWG.Add(1)
		b.timer = time.AfterFunc(s.window, func() { s.firePersonal(b) })
	}
	slot, ok := b.slots[root]
	if !ok {
		slot = len(b.roots)
		b.roots = append(b.roots, root)
		b.slots[root] = slot
	}
	b.ctxs = append(b.ctxs, ctx)
	full := len(b.roots) >= 64
	if full {
		// The interest masks are out of bits: detach while still holding
		// pmu so the next arrival opens a fresh window (firing is async —
		// a rider racing in before firePersonal takes the lock must not
		// grow this batch past 64), then fire without waiting the timer.
		s.curBatch = nil
	}
	s.pmu.Unlock()
	enqueued := time.Now()
	if full {
		go s.firePersonal(b)
	}

	select {
	case <-b.done:
	case <-ctx.Done():
		// The batch runs on for its other riders; this caller leaves with
		// the wait it paid so queue-latency metrics see abandoned waits.
		st := &Stats{Algorithm: "bfs", QueueWait: time.Since(enqueued)}
		return nil, st, fmt.Errorf("core: personalized run canceled while batched: %w", ctx.Err())
	}

	st := s.demuxStats(b, enqueued)
	if b.err != nil {
		return nil, st, b.err
	}
	return b.alg.Depth(slot), st, nil
}

// demuxStats builds one rider's view of the batch outcome: a copy of
// the shared stats with I/O divided across the coalesced roots and the
// window wait folded into QueueWait.
func (s *Scheduler) demuxStats(b *personalBatch, enqueued time.Time) *Stats {
	if b.st == nil {
		return nil
	}
	st := *b.st
	st.Algorithm = "bfs"
	if n := len(b.roots); n > 1 {
		st.BytesRead = int64(math.Round(float64(st.BytesRead) / float64(n)))
		st.IORequests = int64(math.Round(float64(st.IORequests) / float64(n)))
	}
	if b.firedAt.After(enqueued) {
		st.QueueWait += b.firedAt.Sub(enqueued)
	}
	return &st
}

// firePersonal detaches b (exactly once — the size trigger, the window
// timer, and Close can race here) and runs the coalesced multi-source
// BFS through the normal admission path, so the batch competes for a
// slot like any other run and overflow still surfaces as ErrQueueFull.
func (s *Scheduler) firePersonal(b *personalBatch) {
	s.pmu.Lock()
	if b.fired {
		s.pmu.Unlock()
		return
	}
	b.fired = true
	if s.curBatch == b {
		s.curBatch = nil
	}
	b.timer.Stop()
	closed := s.pclosed
	s.pmu.Unlock()
	defer s.personalWG.Done()

	b.firedAt = time.Now()
	if closed {
		b.err = ErrSchedulerClosed
		close(b.done)
		return
	}

	// The run's context cancels only when every rider has canceled:
	// one impatient caller must not kill the traversal the rest are
	// waiting on.
	rctx, cancel := mergeCancel(b.ctxs)
	defer cancel()
	a := algo.NewMSBFS(b.roots)
	st, err := s.Run(rctx, a)
	if st != nil {
		st.BatchedRoots = len(b.roots)
	}
	s.notifyPersonal(st, err)
	b.alg, b.st, b.err = a, st, err
	close(b.done)
}

// notifyPersonal invokes the observer hook once per underlying run (the
// coalesced run, not once per rider), with the undivided stats.
func (s *Scheduler) notifyPersonal(st *Stats, err error) {
	if s.PersonalRunHook != nil {
		s.PersonalRunHook(st, err)
	}
}

// closePersonal rejects the open window (if any) during Close and waits
// for in-flight coalesced runs to finish, so Close keeps its contract
// that no scheduler work touches the engine after it returns.
func (s *Scheduler) closePersonal() {
	s.pmu.Lock()
	s.pclosed = true
	b := s.curBatch
	s.pmu.Unlock()
	if b != nil {
		s.firePersonal(b) // sees pclosed, fails the riders promptly
	}
	s.personalWG.Wait()
}

// mergeCancel returns a context that is canceled once every ctx in ctxs
// is done. The returned cancel releases the watcher goroutines early.
func mergeCancel(ctxs []context.Context) (context.Context, context.CancelFunc) {
	merged, cancel := context.WithCancel(context.Background())
	var live atomic.Int64
	live.Store(int64(len(ctxs)))
	for _, c := range ctxs {
		go func(c context.Context) {
			select {
			case <-c.Done():
				if live.Add(-1) == 0 {
					cancel()
				}
			case <-merged.Done():
			}
		}(c)
	}
	return merged, cancel
}

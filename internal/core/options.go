// Package core implements the G-Store engine: the slide-cache-rewind
// (SCR) scheduler of §VI that pipelines tile I/O with computation,
// proactively caches tiles the algorithm will need next iteration, and
// rewinds each iteration to consume cached data before touching disk.
package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/storage"
)

// CachePolicy selects how the memory beyond the two streaming segments is
// used. The paper's contribution is Proactive; None is the Figure 13
// "base policy" (all memory in two big double-buffered segments); LRU is
// the FlashGraph-style policy the paper argues against (§III
// Observation 3).
type CachePolicy int

const (
	// CacheProactive keeps tiles the algorithm predicts it needs next
	// iteration and rewinds to process them before any I/O.
	CacheProactive CachePolicy = iota
	// CacheLRU keeps recently streamed tiles, evicting oldest-first.
	CacheLRU
	// CacheNone streams only; the cache pool stays empty.
	CacheNone
)

const (
	// DefaultChunkBytes is the chunk threshold used when
	// Options.ChunkBytes is zero: large enough that chunk dispatch
	// overhead is noise (a 256 KiB SNB chunk holds 64Ki tuples), small
	// enough that the densest tiles of a power-law graph split into many
	// work items.
	DefaultChunkBytes = 256 << 10
	// ChunkDisabled turns intra-tile chunking off: every tile is one work
	// item, as before chunked dispatch existed.
	ChunkDisabled = -1
)

func (p CachePolicy) String() string {
	switch p {
	case CacheProactive:
		return "proactive"
	case CacheLRU:
		return "lru"
	case CacheNone:
		return "none"
	default:
		return fmt.Sprintf("CachePolicy(%d)", int(p))
	}
}

// Options configures an engine run.
type Options struct {
	// MemoryBytes is the memory budget for streaming and caching graph
	// data (the paper reserves 8 GB; experiments here scale it to the
	// graph).
	MemoryBytes int64
	// SegmentSize is the size of each of the two streaming segments
	// (paper: 256 MB).
	SegmentSize int64
	// Threads processes tiles concurrently (paper: OpenMP dynamic
	// scheduling over rows). Defaults to GOMAXPROCS.
	Threads int
	// ChunkBytes caps the tile data handed to one worker as a single work
	// item. Tiles larger than this split into several tuple-aligned
	// chunks, so a power-law segment dominated by one dense tile still
	// keeps every worker busy. Zero selects DefaultChunkBytes;
	// ChunkDisabled (or any negative value) dispatches whole tiles — the
	// per-tile fan-out baseline, kept for ablation. The effective size is
	// rounded down to the graph's tuple alignment (minimum one tuple).
	ChunkBytes int64
	// Selective enables metadata-driven selective tile fetching (§V-B).
	Selective bool
	// Cache selects the caching policy (see CachePolicy).
	Cache CachePolicy
	// MaxIterations bounds the run (safety net for non-converging input).
	MaxIterations int
	// SyncIO disables batched asynchronous I/O and reads tile runs
	// one synchronous request at a time (the POSIX-I/O ablation).
	SyncIO bool

	// MaxRetries is how many times one failed or short read request is
	// re-submitted before the error surfaces and fails the Run. Zero
	// disables retries. A failed Run always leaves the engine reusable:
	// every error path releases its segments and drains in-flight I/O.
	MaxRetries int
	// RetryBackoff is the pause before the first retry of a request; it
	// doubles with each further attempt, capped at RetryBackoffMax.
	// Defaults to 100µs (capped at 10ms) when MaxRetries is set.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration

	// Fault, when non-nil, wraps the storage array in a fault-injecting
	// FaultDevice (seeded, deterministic) so runs can be exercised under
	// read errors, short reads, and latency spikes.
	Fault *storage.FaultConfig

	// Backend selects the storage device serving tile reads: "sim" (the
	// default simulated SSD array, deterministic and throttleable per
	// disk) or "file" (real positional reads against the tiles file with
	// request coalescing — the hardware-measurement backend).
	Backend string
	// IOWorkers is the file backend's submitter goroutine pool size (its
	// effective queue depth against the kernel). Zero selects the
	// backend's default of 4. Ignored by the simulator, which sizes its
	// pool by Disks.
	IOWorkers int
	// DirectIO makes the file backend attempt O_DIRECT reads (Linux),
	// falling back to buffered reads where the platform or filesystem
	// refuses. Ignored by the simulator.
	DirectIO bool
	// ReadaheadBytes caps how many bytes of next-iteration tiles the
	// engine hints to the device per iteration (NeedTileNextIter-driven
	// sequential readahead). Zero selects an 8 MiB default on the file
	// backend; negative disables hinting.
	ReadaheadBytes int64

	// Storage simulation parameters (see internal/storage). Bandwidth
	// and Latency are per simulated disk on the sim backend; on the file
	// backend they configure an aggregate throttle (zero = raw hardware
	// speed).
	Disks      int
	StripeSize int64
	Bandwidth  float64
	Latency    time.Duration

	// HDD, when set with a positive Fraction, simulates the tiered store
	// of the paper's future work (§IX): the trailing Fraction of the
	// tiles file is served by a slower device.
	HDD *HDDTier

	// Trace, when non-nil, receives one diagnostic line per iteration
	// (tiles processed / cached / skipped, bytes read, IO wait, compute).
	Trace io.Writer

	// MaxConcurrentRuns caps how many algorithm runs a Scheduler
	// co-schedules onto one shared SCR sweep (1..64; the per-tile
	// interest set is a 64-bit mask). Solo Engine.Run ignores it.
	MaxConcurrentRuns int
	// MaxQueuedRuns bounds the Scheduler's admission wait queue; a run
	// arriving with the batch and the queue both full is rejected with
	// ErrQueueFull (servers surface 429). Zero queues nothing.
	MaxQueuedRuns int
	// BatchWindow is how long Scheduler.RunPersonalBFS holds a
	// single-root BFS submission open for coalescing: requests for the
	// same graph arriving within the window fuse into one multi-source
	// BFS (up to 64 roots) occupying a single run slot. Zero (the
	// default) disables coalescing — each personalized query runs as a
	// solo BFS, the pre-batching behavior.
	BatchWindow time.Duration
}

// HDDTier describes the slow tier of a tiered store.
type HDDTier struct {
	// Fraction of the tiles file (from the end) on the slow tier, 0..1.
	Fraction float64
	// Disks in the slow array.
	Disks int
	// Bandwidth per slow disk in bytes/second.
	Bandwidth float64
	// Latency per request (seek-dominated for hard drives).
	Latency time.Duration
}

// DefaultOptions returns a configuration mirroring the paper's setup,
// scaled for reproduction machines: 64 MB of streaming+caching memory
// with 8 MB segments over an unthrottled 8-disk array.
func DefaultOptions() Options {
	return Options{
		MemoryBytes:   64 << 20,
		SegmentSize:   8 << 20,
		Threads:       runtime.GOMAXPROCS(0),
		Selective:     true,
		Cache:         CacheProactive,
		MaxIterations: 1 << 20,
		MaxRetries:    3,
		Disks:         8,
		StripeSize:    storage.DefaultStripeSize,

		MaxConcurrentRuns: 4,
		MaxQueuedRuns:     64,
	}
}

func (o *Options) normalize() error {
	switch o.Backend {
	case "", "sim":
		o.Backend = "sim"
	case "file":
	default:
		return fmt.Errorf("core: unknown storage backend %q (want sim or file)", o.Backend)
	}
	if o.IOWorkers < 0 {
		o.IOWorkers = 0
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1 << 20
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	if o.Disks <= 0 {
		o.Disks = 1
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.MaxConcurrentRuns <= 0 {
		o.MaxConcurrentRuns = 1
	}
	if o.MaxConcurrentRuns > 64 {
		o.MaxConcurrentRuns = 64 // one interest bit per run
	}
	if o.MaxQueuedRuns < 0 {
		o.MaxQueuedRuns = 0
	}
	if o.BatchWindow < 0 {
		o.BatchWindow = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Microsecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 10 * time.Millisecond
	}
	if o.HDD != nil {
		if o.HDD.Fraction < 0 || o.HDD.Fraction > 1 {
			return fmt.Errorf("core: HDD tier fraction %v outside [0,1]", o.HDD.Fraction)
		}
		if o.HDD.Disks <= 0 {
			o.HDD.Disks = 1
		}
	}
	if o.Cache == CacheNone {
		// Without a pool the whole budget belongs to the double buffer,
		// as in the paper's base policy.
		o.SegmentSize = o.MemoryBytes / 2
	}
	if o.SegmentSize <= 0 {
		return fmt.Errorf("core: segment size %d must be positive", o.SegmentSize)
	}
	if o.MemoryBytes < 2*o.SegmentSize {
		return fmt.Errorf("core: memory %d cannot hold two %d-byte segments",
			o.MemoryBytes, o.SegmentSize)
	}
	return nil
}

// Stats reports one engine run.
type Stats struct {
	Algorithm  string
	Iterations int
	Elapsed    time.Duration
	// IOWait is time the scheduler spent blocked on completions (I/O not
	// hidden by the slide pipeline).
	IOWait time.Duration
	// Compute is time spent processing tiles.
	Compute time.Duration

	TilesProcessed int64
	TilesFromCache int64
	TilesFetched   int64
	TilesSkipped   int64 // skipped by selective fetching
	// DeltaTiles counts dispatched tiles whose data was merged with the
	// mutable delta layer (zero without a delta store or mutations).
	DeltaTiles int64
	BytesRead  int64
	IORequests int64
	// UnattributedBytes counts fetched tile bytes the engine could charge
	// to no run during this run's sweeps: every run interested in the tile
	// finished between fetch planning and dispatch. Normally zero for solo
	// runs; nonzero values mean BytesRead exceeds the sum of the per-run
	// fractional attributions by exactly this amount.
	UnattributedBytes int64

	// Chunks counts the work items dispatched to workers; it exceeds
	// TilesProcessed whenever tiles split at the ChunkBytes boundary.
	Chunks int64
	// WorkerBusy is, per worker ID, the time spent inside kernel code
	// during this run.
	WorkerBusy []time.Duration
	// WorkerChunks is, per worker ID, the work items processed this run.
	WorkerChunks []int64
	// Imbalance is max/mean over WorkerBusy: 1.0 is a perfectly balanced
	// run, Threads is one worker doing everything. Zero when the run did
	// no measurable compute.
	Imbalance float64

	// IOFailures counts failed or short read attempts the scheduler
	// observed; each may be retried, so IOFailures > 0 with a nil Run
	// error means retries recovered the run.
	IOFailures int64
	// Retries counts read requests re-submitted after a failure.
	Retries int64

	// TilesVerified counts tiles whose CRC32C was checked on the hot
	// read path (zero on v1 graphs, which carry no checksums).
	TilesVerified int64
	// ChecksumMismatches counts verification failures observed; each is
	// retried with one re-read, so ChecksumMismatches > 0 with a nil Run
	// error means the re-reads came back clean (in-flight corruption).
	ChecksumMismatches int64
	// IntegrityErrors counts runs failed by persistent corruption (a
	// mismatch that survived the re-read); 0 or 1 per run.
	IntegrityErrors int64
	// Faults holds the injected-fault counters for this run when
	// Options.Fault is set (zero otherwise).
	Faults storage.FaultStats

	// QueueWait is how long the run waited for Scheduler admission before
	// its first iteration (zero for solo runs and immediate admissions).
	QueueWait time.Duration
	// SharedRuns is the peak number of runs co-scheduled on this run's
	// sweep batch, itself included (1 = it effectively ran solo).
	SharedRuns int
	// BatchedRoots is, for personalized BFS submissions, how many query
	// roots shared the one run slot that answered this query (1 = no
	// coalescing happened; up to 64). Zero for ordinary runs.
	BatchedRoots int

	MetadataBytes int64
	Mem           mem.Stats
	Storage       storage.Stats
	// IO holds the storage backend's extended counters for this run
	// (queue depth, coalescing, read-latency histogram); Backend is
	// empty when the device tracks none.
	IO storage.ExtStats
}

// MTEPS returns millions of traversed edges per second given an edge
// count (the Graph500 metric the paper reports for BFS).
func (s Stats) MTEPS(edges int64) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(edges) / s.Elapsed.Seconds() / 1e6
}

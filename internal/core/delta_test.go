package core

import (
	"context"
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/graph"
)

func canonKey(s, d uint32) uint64 {
	if s > d {
		s, d = d, s
	}
	return uint64(s)<<32 | uint64(d)
}

// TestMutateThenQueryMatchesFreshConversion is the write-path acceptance
// test: a graph mutated through the delta layer must answer BFS and WCC
// bit-identically — and PageRank within 1e-9 — to a fresh conversion of
// the same final edge set.
func TestMutateThenQueryMatchesFreshConversion(t *testing.T) {
	el := kron(t, 10, 8, 7)
	g := convert(t, el, 6, 4)
	ds, err := delta.Open(g, g.BasePath(), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	// Canonical multiset of the base edges (half-stored layout).
	baseCount := make(map[uint64]int)
	for _, e := range el.Edges {
		baseCount[canonKey(e.Src, e.Dst)]++
	}

	// Deletes: a deterministic sample of existing edges. Inserts: probed
	// pairs absent from the base. One deleted edge is re-inserted in a
	// later batch, and one insert lands in a tile the base left empty.
	var dels, ins []delta.Op
	seen := make(map[uint64]bool)
	for i := 0; i < len(el.Edges) && len(dels) < 25; i += 97 {
		e := el.Edges[i]
		k := canonKey(e.Src, e.Dst)
		if seen[k] || e.Src == e.Dst {
			continue
		}
		seen[k] = true
		dels = append(dels, delta.Op{Del: true, Src: e.Dst, Dst: e.Src})
	}
	nv := g.Meta.NumVertices
	for x := uint32(1); len(ins) < 25; x += 2654435761 % nv {
		s, d := x%nv, (x*31+7)%nv
		k := canonKey(s, d)
		if baseCount[k] > 0 || seen[k] {
			continue
		}
		seen[k] = true
		ins = append(ins, delta.Op{Src: s, Dst: d})
	}
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if g.TupleCount(i) != 0 {
			continue
		}
		c := g.Layout.CoordAt(i)
		rLo, _ := g.Layout.VertexRange(c.Row)
		cLo, _ := g.Layout.VertexRange(c.Col)
		if k := canonKey(rLo, cLo); !seen[k] {
			seen[k] = true
			ins = append(ins, delta.Op{Src: rLo, Dst: cLo})
			break
		}
	}
	reinsert := delta.Op{Src: dels[0].Dst, Dst: dels[0].Src}

	batches := [][]delta.Op{dels, ins, {reinsert}}
	for _, b := range batches {
		if _, err := ds.Apply(b); err != nil {
			t.Fatal(err)
		}
	}

	// The equivalent final edge multiset: deletes to zero, inserts to
	// exactly one, last write wins.
	final := make(map[uint64]int, len(baseCount))
	for k, c := range baseCount {
		final[k] = c
	}
	for _, b := range batches {
		for _, op := range b {
			if op.Del {
				final[canonKey(op.Src, op.Dst)] = 0
			} else {
				final[canonKey(op.Src, op.Dst)] = 1
			}
		}
	}
	finalEl := &graph.EdgeList{NumVertices: nv}
	for k, c := range final {
		for i := 0; i < c; i++ {
			finalEl.Edges = append(finalEl.Edges, graph.Edge{Src: uint32(k >> 32), Dst: uint32(k)})
		}
	}
	fresh := convert(t, finalEl, 6, 4)

	em, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	em.SetDeltaStore(ds)

	// BFS: exact depths.
	bm, bf := algo.NewBFS(0), algo.NewBFS(0)
	stm, err := em.Run(context.Background(), bm)
	if err != nil {
		t.Fatal(err)
	}
	if stm.DeltaTiles == 0 {
		t.Fatalf("mutated run reported no delta-merged tiles: %+v", stm)
	}
	runAlg(t, fresh, smallOpts(), bf)
	for v := range bm.Depths() {
		if bm.Depths()[v] != bf.Depths()[v] {
			t.Fatalf("BFS depth[%d]: mutated %d, fresh %d", v, bm.Depths()[v], bf.Depths()[v])
		}
	}

	// WCC: exact labels.
	wm, wf := algo.NewWCC(), algo.NewWCC()
	if _, err := em.Run(context.Background(), wm); err != nil {
		t.Fatal(err)
	}
	runAlg(t, fresh, smallOpts(), wf)
	for v := range wm.Labels() {
		if wm.Labels()[v] != wf.Labels()[v] {
			t.Fatalf("WCC label[%d]: mutated %d, fresh %d", v, wm.Labels()[v], wf.Labels()[v])
		}
	}

	// PageRank: 1e-9 (summation order differs between the merged tile
	// stream and the fresh conversion's layout).
	pm, pf := algo.NewPageRank(20), algo.NewPageRank(20)
	if _, err := em.Run(context.Background(), pm); err != nil {
		t.Fatal(err)
	}
	runAlg(t, fresh, smallOpts(), pf)
	for v := range pm.Ranks() {
		if d := math.Abs(pm.Ranks()[v] - pf.Ranks()[v]); d > 1e-9 {
			t.Fatalf("PageRank[%d]: mutated %g, fresh %g (|Δ|=%g)", v, pm.Ranks()[v], pf.Ranks()[v], d)
		}
	}
}

// TestDeltaVisibleAtIterationBoundary pins the visibility contract:
// a batch applied between two runs is seen by the second run even on a
// warm engine, because each sweep iteration captures the store's
// current view.
func TestDeltaVisibleBetweenRuns(t *testing.T) {
	el := kron(t, 9, 8, 3)
	g := convert(t, el, 6, 4)
	ds, err := delta.Open(g, g.BasePath(), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetDeltaStore(ds)

	w1 := algo.NewWCC()
	if _, err := e.Run(context.Background(), w1); err != nil {
		t.Fatal(err)
	}
	// Bridge every component to vertex 0: afterwards WCC must be a
	// single component.
	labels := w1.Labels()
	var ops []delta.Op
	rootSeen := map[uint32]bool{}
	for v, l := range labels {
		if !rootSeen[l] {
			rootSeen[l] = true
			if uint32(v) != 0 {
				ops = append(ops, delta.Op{Src: 0, Dst: uint32(v)})
			}
		}
	}
	if _, err := ds.Apply(ops); err != nil {
		t.Fatal(err)
	}
	w2 := algo.NewWCC()
	if _, err := e.Run(context.Background(), w2); err != nil {
		t.Fatal(err)
	}
	for v, l := range w2.Labels() {
		if l != 0 {
			t.Fatalf("vertex %d still labeled %d after bridging all components to 0", v, l)
		}
	}
}

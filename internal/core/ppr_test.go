package core

import (
	"context"
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/graph"
)

// TestEnginePPRMatchesReference pins the engine's personalized PageRank
// to the in-memory reference for several roots, including a high-degree
// hub and an arbitrary tail vertex.
func TestEnginePPRMatchesReference(t *testing.T) {
	el := kron(t, 10, 8, 47)
	g := convert(t, el, 6, 4)
	csr := graph.NewCSR(el, false)
	const iters = 15

	for _, root := range []uint32{0, 1, 513, 900} {
		a := algo.NewPPR(root, iters)
		runAlg(t, g, smallOpts(), a)
		want := graph.RefPersonalizedPageRank(csr, graph.VertexID(root), graph.DefaultPageRank(iters))
		got := a.Ranks()
		for v := range want {
			if d := math.Abs(got[v] - want[v]); d > 1e-9 {
				t.Fatalf("root %d: rank[%d] = %g, ref %g (|Δ|=%g)", root, v, got[v], want[v], d)
			}
		}
		// The personalization property: the root itself carries at least
		// the restart mass, and ranks sum to ~1 (probability distribution).
		if got[root] < (1 - 0.85) {
			t.Fatalf("root %d: rank[root] = %g below restart mass", root, got[root])
		}
		sum := 0.0
		for _, r := range got {
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("root %d: ranks sum to %g, want 1", root, sum)
		}
	}
}

// TestEnginePPRDiffersFromGlobal: a sanity check that the restart vector
// actually personalizes — the PPR ranking from a tail root must not
// equal global PageRank.
func TestEnginePPRDiffersFromGlobal(t *testing.T) {
	el := kron(t, 10, 8, 53)
	g := convert(t, el, 6, 4)
	const iters = 15

	p := algo.NewPPR(700, iters)
	runAlg(t, g, smallOpts(), p)
	pr := algo.NewPageRank(iters)
	runAlg(t, g, smallOpts(), pr)

	diff := 0.0
	for v := range p.Ranks() {
		diff += math.Abs(p.Ranks()[v] - pr.Ranks()[v])
	}
	if diff < 0.1 {
		t.Fatalf("PPR(700) within %g L1 of global PageRank — not personalized", diff)
	}
}

// TestEnginePPRBadRoot: an out-of-range root fails Init as a bad
// request, not a crash.
func TestEnginePPRBadRoot(t *testing.T) {
	el := kron(t, 10, 8, 59)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(context.Background(), algo.NewPPR(g.Meta.NumVertices+1, 5)); err == nil {
		t.Fatal("out-of-range PPR root ran without error")
	}
}

package core

import (
	"context"
	"os"
	"sync"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

// benchGraph builds one small Kronecker graph shared by the allocation
// benchmarks (sync.Once so repeated -bench invocations reuse it within a
// process). It lives in its own temp dir, not b.TempDir, because the
// latter is removed when the first benchmark ends.
var benchGraphOnce struct {
	sync.Once
	g   *tile.Graph
	err error
}

func allocBenchGraph(b *testing.B) *tile.Graph {
	b.Helper()
	benchGraphOnce.Do(func() {
		el, err := gen.Generate(gen.Graph500Config(11, 8, 77))
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "gstore-allocbench")
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		benchGraphOnce.g, benchGraphOnce.err = tile.Convert(el, dir, "ab", tile.ConvertOptions{
			TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true,
		})
	})
	if benchGraphOnce.err != nil {
		b.Fatal(benchGraphOnce.err)
	}
	return benchGraphOnce.g
}

// BenchmarkRunHotLoopAllocs measures per-Run allocations of the SCR hot
// loop on a reused engine: iteration planning (needed/inCache), segment
// plans, the completion buffer, and dispatch bookkeeping. Run with
// -benchmem; the per-iteration scratch reuse exists to keep allocs/op
// flat as iteration counts grow.
func BenchmarkRunHotLoopAllocs(b *testing.B) {
	g := allocBenchGraph(b)
	opts := DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	opts.Threads = 4
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, algo.NewPageRank(5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunHotLoopAllocsBFS is the selective-fetch variant: many
// iterations with small per-iteration need sets, the worst case for
// per-iteration planning allocations.
func BenchmarkRunHotLoopAllocsBFS(b *testing.B) {
	g := allocBenchGraph(b)
	opts := DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	opts.Threads = 4
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, algo.NewBFS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

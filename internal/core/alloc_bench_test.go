package core

import (
	"context"
	"os"
	"sync"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/tile"
)

// benchGraph builds one small Kronecker graph shared by the allocation
// benchmarks (sync.Once so repeated -bench invocations reuse it within a
// process). It lives in its own temp dir, not b.TempDir, because the
// latter is removed when the first benchmark ends.
var benchGraphOnce struct {
	sync.Once
	g   *tile.Graph
	err error
}

func allocBenchGraph(b *testing.B) *tile.Graph {
	b.Helper()
	benchGraphOnce.Do(func() {
		el, err := gen.Generate(gen.Graph500Config(11, 8, 77))
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "gstore-allocbench")
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		benchGraphOnce.g, benchGraphOnce.err = tile.Convert(el, dir, "ab", tile.ConvertOptions{
			TileBits: 6, GroupQ: 4, Symmetry: true, SNB: true, Degrees: true,
		})
	})
	if benchGraphOnce.err != nil {
		b.Fatal(benchGraphOnce.err)
	}
	return benchGraphOnce.g
}

// BenchmarkRunHotLoopAllocs measures per-Run allocations of the SCR hot
// loop on a reused engine: iteration planning (needed/inCache), segment
// plans, the completion buffer, and dispatch bookkeeping. Run with
// -benchmem; the per-iteration scratch reuse exists to keep allocs/op
// flat as iteration counts grow.
func BenchmarkRunHotLoopAllocs(b *testing.B) {
	g := allocBenchGraph(b)
	opts := DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	opts.Threads = 4
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, algo.NewPageRank(5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunHotLoopAllocsMerged measures the base∪delta merge path:
// a v3 graph with a delta layer whose ops are re-toggled every Run, so
// each iteration decodes and re-merges dirty tiles instead of hitting
// the merge memo. The merge-key scratch is pooled; allocs/op here is
// the regression guard for that pool.
func BenchmarkRunHotLoopAllocsMerged(b *testing.B) {
	el, err := gen.Generate(gen.Graph500Config(11, 8, 77))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	g, err := tile.Convert(el, dir, "mb", tile.ConvertOptions{
		TileBits: 6, GroupQ: 4, Symmetry: true, Codec: "v3", Degrees: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	ds, err := delta.Open(g, g.BasePath(), delta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()

	// Edges spread across the vertex range so many tiles carry deltas.
	nv := g.Meta.NumVertices
	ops := make([]delta.Op, 0, 128)
	for i := uint32(0); i < 128; i++ {
		ops = append(ops, delta.Op{Src: (i * 131) % nv, Dst: (i*197 + 7) % nv})
	}

	opts := DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	opts.Threads = 4
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.SetDeltaStore(ds)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Toggle between inserted and deleted so every Run sees dirty
		// tiles and the merge memo never short-circuits the decode.
		for j := range ops {
			ops[j].Del = i%2 == 0
		}
		if _, err := ds.Apply(ops); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(ctx, algo.NewPageRank(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunHotLoopAllocsBFS is the selective-fetch variant: many
// iterations with small per-iteration need sets, the worst case for
// per-iteration planning allocations.
func BenchmarkRunHotLoopAllocsBFS(b *testing.B) {
	g := allocBenchGraph(b)
	opts := DefaultOptions()
	opts.MemoryBytes = 1 << 20
	opts.SegmentSize = 64 << 10
	opts.Threads = 4
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, algo.NewBFS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

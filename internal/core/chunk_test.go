package core

import (
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

// chunkSizes spans the interesting regimes: chunking disabled (the
// per-tile baseline), the pathological one-SNB-tuple chunk, a few odd
// small sizes (7 rounds down to 4), and the production default.
var chunkSizes = []int64{ChunkDisabled, 4, 7, 64, 1 << 10, DefaultChunkBytes}

// Chunked runs must be bit-identical to the sequential in-memory
// reference for BFS and WCC regardless of the chunk size, including
// one-tuple chunks where every edge is its own work item.
func TestChunkedEquivalenceBFSWCC(t *testing.T) {
	el := kron(t, 11, 8, 21)
	g := convert(t, el, 6, 4)
	csr := graph.NewCSR(el, false)
	wantDepth := graph.RefBFS(csr, 0)
	wantWCC := graph.RefWCC(el)
	for _, cb := range chunkSizes {
		opts := smallOpts()
		opts.ChunkBytes = cb
		b := algo.NewBFS(0)
		st := runAlg(t, g, opts, b)
		for v, d := range b.Depths() {
			if d != wantDepth[v] {
				t.Fatalf("chunk=%d: depth[%d] = %d, want %d", cb, v, d, wantDepth[v])
			}
		}
		if cb > 0 && cb < 64 && st.Chunks <= st.TilesProcessed {
			t.Fatalf("chunk=%d: Chunks = %d not above TilesProcessed = %d", cb, st.Chunks, st.TilesProcessed)
		}
		w := algo.NewWCC()
		runAlg(t, g, opts, w)
		for v, l := range w.Labels() {
			if l != uint32(wantWCC[v]) {
				t.Fatalf("chunk=%d: label[%d] = %d, want %d", cb, v, l, wantWCC[v])
			}
		}
	}
}

// Chunked PageRank accumulates into per-worker slabs reduced once per
// iteration; the result must stay within 1e-9 of the sequential
// reference for every chunk size.
func TestChunkedEquivalencePageRank(t *testing.T) {
	el := kron(t, 10, 8, 22)
	g := convert(t, el, 6, 4)
	iters := 10
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for _, cb := range chunkSizes {
		opts := smallOpts()
		opts.ChunkBytes = cb
		p := algo.NewPageRank(iters)
		runAlg(t, g, opts, p)
		for v, r := range p.Ranks() {
			if math.Abs(r-want[v]) > 1e-9 {
				t.Fatalf("chunk=%d: rank[%d] = %v, want %v (|Δ| = %g)", cb, v, r, want[v], math.Abs(r-want[v]))
			}
		}
	}
}

// SCC's phase machine with batched change counting must agree with the
// reference on a directed graph.
func TestChunkedEquivalenceSCC(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 6, 23))
	if err != nil {
		t.Fatal(err)
	}
	g, err := convertDirected(t, el)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefSCC(el)
	for _, cb := range []int64{ChunkDisabled, 4, 1 << 10} {
		opts := smallOpts()
		opts.ChunkBytes = cb
		s := algo.NewSCC()
		runAlg(t, g, opts, s)
		for v, l := range s.Labels() {
			if l != uint32(want[v]) {
				t.Fatalf("chunk=%d: scc[%d] = %d, want %d", cb, v, l, want[v])
			}
		}
	}
}

// The per-run worker accounting must be self-consistent: one entry per
// worker, chunk counts summing to the dispatched total, and an imbalance
// reading at least 1 whenever the run did measurable compute.
func TestChunkedWorkerStats(t *testing.T) {
	el := kron(t, 11, 8, 24)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.ChunkBytes = 256 // force many chunks per dense tile
	p := algo.NewPageRank(5)
	st := runAlg(t, g, opts, p)
	if len(st.WorkerBusy) != opts.Threads || len(st.WorkerChunks) != opts.Threads {
		t.Fatalf("worker stats lengths %d/%d, want %d", len(st.WorkerBusy), len(st.WorkerChunks), opts.Threads)
	}
	var sum int64
	for _, c := range st.WorkerChunks {
		sum += c
	}
	if sum != st.Chunks {
		t.Fatalf("sum(WorkerChunks) = %d, want Chunks = %d", sum, st.Chunks)
	}
	if st.Chunks <= st.TilesProcessed {
		t.Fatalf("Chunks = %d, want more than TilesProcessed = %d at 256-byte chunks", st.Chunks, st.TilesProcessed)
	}
	if st.Imbalance < 1 {
		t.Fatalf("Imbalance = %v, want >= 1", st.Imbalance)
	}
	// A second run on the same engine-free helper must not inherit the
	// first run's busy time: the deltas are per run.
	st2 := runAlg(t, g, opts, algo.NewPageRank(1))
	var busy1, busy2 int64
	for i := range st.WorkerBusy {
		busy1 += int64(st.WorkerBusy[i])
	}
	for i := range st2.WorkerBusy {
		busy2 += int64(st2.WorkerBusy[i])
	}
	if busy2 > busy1 {
		t.Logf("note: 1-iteration run busier than 5-iteration run (%v vs %v)", busy2, busy1)
	}
}

package core

import (
	"strconv"

	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/storage"
)

// RunSecondsBuckets are the histogram bounds for whole-run latency:
// engine runs range from sub-millisecond (all-cached reruns) to minutes
// (semi-external scans), wider than HTTP-level defaults.
var RunSecondsBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300,
}

// PublishStats mirrors one run's statistics into registry r under the
// given graph label. Per-run deltas (iterations, tiles, bytes read,
// retries) accumulate across runs; the engine's cumulative storage and
// memory-manager counters are republished as they stand, so a scrape of
// a live server always sees the engine's lifetime totals. Safe to call
// from concurrent runs on different graphs.
func PublishStats(r *metrics.Registry, graph string, st *Stats) {
	if r == nil || st == nil {
		return
	}
	g := metrics.L("graph", graph)

	// Per-run deltas, accumulated across runs.
	r.Counter("gstore_engine_iterations_total",
		"Algorithm iterations executed.", g).Add(int64(st.Iterations))
	r.Counter("gstore_engine_tiles_processed_total",
		"Tiles handed to workers.", g).Add(st.TilesProcessed)
	r.Counter("gstore_engine_tiles_from_cache_total",
		"Tiles served by the rewind from the cache pool.", g).Add(st.TilesFromCache)
	r.Counter("gstore_engine_tiles_skipped_total",
		"Tiles skipped by selective fetching.", g).Add(st.TilesSkipped)
	r.Counter("gstore_engine_bytes_read_total",
		"Bytes read from storage by runs.", g).Add(st.BytesRead)
	r.Counter("gstore_engine_io_requests_total",
		"Storage read requests issued by runs.", g).Add(st.IORequests)
	r.Counter("gstore_engine_io_failures_total",
		"Failed or short read attempts observed.", g).Add(st.IOFailures)
	r.Counter("gstore_engine_io_retries_total",
		"Read requests re-submitted after a failure.", g).Add(st.Retries)
	r.Counter("gstore_engine_tiles_verified_total",
		"Tiles whose CRC32C was checked on the read path.", g).Add(st.TilesVerified)
	r.Counter("gstore_engine_checksum_mismatches_total",
		"Tile checksum mismatches observed (recovered or fatal).", g).Add(st.ChecksumMismatches)
	r.Counter("gstore_engine_integrity_errors_total",
		"Runs failed by persistent tile corruption.", g).Add(st.IntegrityErrors)
	r.Counter("gstore_engine_iowait_microseconds_total",
		"Microseconds the scheduler blocked on completions.", g).
		Add(st.IOWait.Microseconds())
	r.Counter("gstore_engine_compute_microseconds_total",
		"Microseconds spent processing tiles.", g).
		Add(st.Compute.Microseconds())
	r.Counter("gstore_engine_chunks_total",
		"Work items (tile chunks) dispatched to workers.", g).Add(st.Chunks)
	r.Counter("gstore_engine_delta_tiles_total",
		"Dispatched tiles merged with the mutable delta layer.", g).Add(st.DeltaTiles)
	r.Counter("gstore_engine_unattributed_bytes_total",
		"Fetched tile bytes whose interested runs all finished before dispatch.", g).
		Add(st.UnattributedBytes)

	// Per-worker accounting and the balance gauge: the chunked-dispatch
	// win is max/mean worker busy time near 1.0 instead of the worker
	// count on skewed segments.
	for w, d := range st.WorkerBusy {
		wl := metrics.L("worker", strconv.Itoa(w))
		r.Counter("gstore_engine_worker_busy_microseconds_total",
			"Microseconds each worker spent inside kernel code.", g, wl).
			Add(d.Microseconds())
		r.Counter("gstore_engine_worker_chunks_total",
			"Work items processed by each worker.", g, wl).
			Add(st.WorkerChunks[w])
	}
	if st.Imbalance > 0 {
		r.FloatGauge("gstore_engine_compute_imbalance",
			"Max/mean worker busy time of the last run (1.0 = perfectly balanced).", g).
			Set(st.Imbalance)
	}

	// Injected-fault counters (per-run deltas; zero without a FaultDevice).
	r.Counter("gstore_engine_faults_injected_errors_total",
		"Injected read errors observed.", g).Add(st.Faults.Errors)
	r.Counter("gstore_engine_faults_injected_shorts_total",
		"Injected short reads observed.", g).Add(st.Faults.Shorts)
	r.Counter("gstore_engine_faults_injected_corruptions_total",
		"Injected silent buffer corruptions observed.", g).Add(st.Faults.Corruptions)

	// Engine-lifetime cumulative counters, republished after every run.
	r.Counter("gstore_storage_bytes_read_total",
		"Cumulative bytes read by the graph's storage array.", g).
		Set(st.Storage.BytesRead)
	r.Counter("gstore_storage_requests_total",
		"Cumulative requests served by the graph's storage array.", g).
		Set(st.Storage.Requests)
	r.Counter("gstore_mem_copied_bytes_total",
		"Bytes copied into the cache pool since engine start.", g).
		Set(st.Mem.CopiedBytes)
	r.Counter("gstore_mem_evicted_tiles_total",
		"Tiles evicted by pool compactions since engine start.", g).
		Set(st.Mem.EvictedTiles)
	r.Counter("gstore_mem_dropped_tiles_total",
		"Tiles dropped for lack of pool space since engine start.", g).
		Set(st.Mem.DroppedTiles)
	r.Counter("gstore_mem_compactions_total",
		"Pool compactions since engine start.", g).
		Set(st.Mem.Compactions)

	// Extended backend counters: present when the device tracks them
	// (sim and file both do; wrappers forward). Labeled by backend so a
	// daemon serving graphs on different backends keeps them apart.
	if st.IO.Backend != "" {
		b := metrics.L("backend", st.IO.Backend)
		r.Gauge("gstore_storage_queue_depth",
			"Requests submitted to the backend but not yet being read.", g, b).
			Set(st.IO.QueueDepth)
		r.Gauge("gstore_storage_inflight",
			"Requests the backend is reading right now.", g, b).
			Set(st.IO.Inflight)
		r.Counter("gstore_storage_spans_total",
			"Physical reads issued (per-disk chunks on sim, coalesced preads on file).", g, b).
			Add(st.IO.Spans)
		r.Counter("gstore_storage_coalesced_requests_total",
			"Requests absorbed into a shared coalesced read.", g, b).
			Add(st.IO.Coalesced)
		r.Counter("gstore_storage_readahead_bytes_total",
			"Bytes covered by accepted readahead hints.", g, b).
			Add(st.IO.ReadaheadBytes)
		r.Histogram("gstore_storage_read_seconds",
			"Physical read latency by backend.", storage.ReadLatencySeconds, g, b).
			Merge(st.IO.Latency.Counts, st.IO.Latency.SumSeconds())
	}

	r.Histogram("gstore_engine_run_seconds",
		"Whole-run latency by graph.", RunSecondsBuckets, g).
		Observe(st.Elapsed.Seconds())
}

package core

import (
	"context"
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// fileOpts is smallOpts on the file backend: same memory geometry, so
// the two backends drive identical sweep plans.
func fileOpts() Options {
	o := smallOpts()
	o.Backend = "file"
	return o
}

// TestBackendsAgreeOnQueries is the backend acceptance test: the same
// graph must answer BFS and WCC bit-identically and PageRank within
// 1e-9 whether tiles are served by the simulated array or by real file
// reads (buffered or direct).
func TestBackendsAgreeOnQueries(t *testing.T) {
	el := kron(t, 11, 8, 9)
	g := convert(t, el, 6, 4)

	simBFS := algo.NewBFS(0)
	runAlg(t, g, smallOpts(), simBFS)
	simWCC := algo.NewWCC()
	runAlg(t, g, smallOpts(), simWCC)
	simPR := algo.NewPageRank(10)
	runAlg(t, g, smallOpts(), simPR)

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"file", fileOpts()},
		{"file-direct", func() Options { o := fileOpts(); o.DirectIO = true; return o }()},
		{"file-noreadahead", func() Options { o := fileOpts(); o.ReadaheadBytes = -1; return o }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := algo.NewBFS(0)
			st := runAlg(t, g, tc.opts, b)
			for v, d := range b.Depths() {
				if d != simBFS.Depths()[v] {
					t.Fatalf("BFS depth[%d] = %d, sim says %d", v, d, simBFS.Depths()[v])
				}
			}
			if st.IO.Backend != "file" {
				t.Fatalf("Stats.IO.Backend = %q, want file", st.IO.Backend)
			}
			if st.IO.Spans <= 0 || st.IO.Latency.Count <= 0 {
				t.Fatalf("file backend recorded no spans/latency: %+v", st.IO)
			}
			if st.BytesRead <= 0 {
				t.Fatal("file backend read no bytes")
			}

			w := algo.NewWCC()
			runAlg(t, g, tc.opts, w)
			for v, l := range w.Labels() {
				if l != simWCC.Labels()[v] {
					t.Fatalf("WCC label[%d] = %d, sim says %d", v, l, simWCC.Labels()[v])
				}
			}

			p := algo.NewPageRank(10)
			runAlg(t, g, tc.opts, p)
			for v, r := range p.Ranks() {
				if math.Abs(r-simPR.Ranks()[v]) > 1e-9 {
					t.Fatalf("PageRank rank[%d] = %g, sim says %g", v, r, simPR.Ranks()[v])
				}
			}
		})
	}
}

// TestFileBackendMatrix runs the convert → fsck → run → mutate → rerun
// sequence on the file backend for every codec: the mutated graph's
// answers must match a sim-backend engine over the same store.
func TestFileBackendMatrix(t *testing.T) {
	el := kron(t, 10, 8, 11)
	for _, codec := range []string{"snb", "v3"} {
		t.Run(codec, func(t *testing.T) {
			g := convertCodec(t, el, 6, 4, codec)
			if rep := tile.Fsck(g.BasePath()); !rep.OK() {
				t.Fatalf("fsck after convert: %+v", rep.Findings)
			}

			ds, err := delta.Open(g, g.BasePath(), delta.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()

			mkEngine := func(opts Options) *Engine {
				e, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(e.Close)
				e.SetDeltaStore(ds)
				return e
			}
			fe := mkEngine(fileOpts())
			se := mkEngine(smallOpts())

			check := func(stage string) {
				fb, sb := algo.NewBFS(0), algo.NewBFS(0)
				if _, err := fe.Run(context.Background(), fb); err != nil {
					t.Fatalf("%s: file BFS: %v", stage, err)
				}
				if _, err := se.Run(context.Background(), sb); err != nil {
					t.Fatalf("%s: sim BFS: %v", stage, err)
				}
				for v := range fb.Depths() {
					if fb.Depths()[v] != sb.Depths()[v] {
						t.Fatalf("%s: depth[%d] = %d vs sim %d", stage, v, fb.Depths()[v], sb.Depths()[v])
					}
				}
			}
			check("pre-mutation")

			// Mutate: delete a spread of base edges and insert fresh ones.
			var ops []delta.Op
			n := uint32(g.Meta.NumVertices)
			for i := uint32(0); i < 200; i += 2 {
				ops = append(ops, delta.Op{Del: true, Src: i % n, Dst: (i * 7) % n})
				ops = append(ops, delta.Op{Src: (i*13 + 1) % n, Dst: (i*29 + 3) % n})
			}
			if _, err := ds.Apply(ops); err != nil {
				t.Fatal(err)
			}
			check("post-mutation")
		})
	}
}

// TestFileBackendFaultRetries: FaultDevice wraps the file backend the
// same way it wraps the simulator, and the engine's retry path recovers
// injected failures on real reads.
func TestFileBackendFaultRetries(t *testing.T) {
	el := kron(t, 10, 8, 13)
	g := convert(t, el, 6, 4)

	opts := fileOpts()
	opts.MaxRetries = 8
	opts.Fault = &storage.FaultConfig{Seed: 5, ErrorRate: 0.05, ShortRate: 0.05}
	b := algo.NewBFS(0)
	st := runAlg(t, g, opts, b)
	if st.IOFailures == 0 || st.Retries == 0 {
		t.Fatalf("fault injection exercised no retries: failures=%d retries=%d",
			st.IOFailures, st.Retries)
	}

	ref := algo.NewBFS(0)
	runAlg(t, g, smallOpts(), ref)
	for v := range b.Depths() {
		if b.Depths()[v] != ref.Depths()[v] {
			t.Fatalf("depth[%d] = %d after retries, want %d", v, b.Depths()[v], ref.Depths()[v])
		}
	}
}

// TestFileBackendReadaheadHints: a multi-iteration PageRank on the file
// backend should emit NeedTileNextIter readahead hints.
func TestFileBackendReadaheadHints(t *testing.T) {
	el := kron(t, 10, 8, 17)
	g := convert(t, el, 6, 4)
	o := fileOpts()
	o.Cache = CacheNone // no pool: every next-iter tile is hintable
	st := runAlg(t, g, o, algo.NewPageRank(3))
	if st.IO.ReadaheadHints == 0 || st.IO.ReadaheadBytes == 0 {
		t.Fatalf("no readahead hints recorded: %+v", st.IO)
	}
}

// TestBackendOptionValidation pins the -backend flag's error behavior.
func TestBackendOptionValidation(t *testing.T) {
	el := kron(t, 9, 4, 19)
	g := convert(t, el, 6, 4)
	o := smallOpts()
	o.Backend = "nvme-of"
	if _, err := NewEngine(g, o); err == nil {
		t.Fatal("unknown backend should fail engine construction")
	}
}

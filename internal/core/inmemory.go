package core

import (
	"sync"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/tile"
)

// MemGraph is a fully-loaded tiled graph for in-memory execution — the
// mode the paper's in-memory comparisons use (Figures 2b and 11) and the
// regime of engines like Ligra and Galois that §VIII positions G-Store
// against. All tiles live in RAM; runs skip the storage pipeline
// entirely.
type MemGraph struct {
	g     *tile.Graph
	tiles [][]byte
	ctx   algo.Context
	// LoadTime is how long reading all tiles took.
	LoadTime time.Duration
}

// LoadInMemory reads every tile of g into memory.
func LoadInMemory(g *tile.Graph) (*MemGraph, error) {
	begin := time.Now()
	m := &MemGraph{g: g, tiles: make([][]byte, g.Layout.NumTiles())}
	for i := range m.tiles {
		data, err := g.ReadTile(i, nil)
		if err != nil {
			return nil, err
		}
		m.tiles[i] = append([]byte(nil), data...)
	}
	var deg tile.DegreeSource
	if g.Meta.DegreeFormat != "" {
		var err error
		deg, err = g.Degrees()
		if err != nil {
			return nil, err
		}
	}
	m.ctx = algo.Context{
		NumVertices: g.Meta.NumVertices,
		Layout:      g.Layout,
		Directed:    g.Meta.Directed,
		Half:        g.Meta.Half,
		SNB:         g.Meta.SNB,
		Codec:       g.Meta.TupleCodec(),
		Degrees:     deg,
	}
	m.LoadTime = time.Since(begin)
	return m, nil
}

// Bytes returns the in-memory tile footprint.
func (m *MemGraph) Bytes() int64 {
	var n int64
	for _, t := range m.tiles {
		n += int64(len(t))
	}
	return n
}

// Run executes a over the in-memory tiles in disk order until
// convergence, processing tiles with the given number of goroutines.
// Selective iteration still applies (NeedTileThisIter) — it saves compute
// instead of I/O here.
func (m *MemGraph) Run(a algo.Algorithm, threads, maxIterations int) (*Stats, error) {
	if threads <= 0 {
		threads = 1
	}
	if maxIterations <= 0 {
		maxIterations = 1 << 20
	}
	ctx := m.ctx
	if err := a.Init(&ctx); err != nil {
		return nil, err
	}
	stats := &Stats{Algorithm: a.Name()}
	begin := time.Now()
	for iter := 0; iter < maxIterations; iter++ {
		a.BeforeIteration(iter)
		m.processIteration(a, threads, stats)
		stats.Iterations = iter + 1
		if a.AfterIteration(iter) {
			break
		}
	}
	stats.Elapsed = time.Since(begin)
	stats.Compute = stats.Elapsed
	stats.MetadataBytes = a.MetadataBytes()
	return stats, nil
}

func (m *MemGraph) processIteration(a algo.Algorithm, threads int, stats *Stats) {
	work := make(chan int, threads*2)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				co := m.g.Layout.CoordAt(i)
				a.ProcessTile(co.Row, co.Col, m.tiles[i])
			}
		}()
	}
	for i, data := range m.tiles {
		if len(data) == 0 {
			continue
		}
		co := m.g.Layout.CoordAt(i)
		if !a.NeedTileThisIter(co.Row, co.Col) {
			stats.TilesSkipped++
			continue
		}
		stats.TilesProcessed++
		work <- i
	}
	close(work)
	wg.Wait()
}

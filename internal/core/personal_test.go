package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/graph"
)

// msbfsRoots spreads n roots deterministically over the vertex space.
func msbfsRoots(n int, nv uint32) []uint32 {
	roots := make([]uint32, n)
	for i := range roots {
		roots[i] = (uint32(i) * 2654435761) % nv
		// Keep roots distinct (slot i falls back to vertex i on collision).
		for j := 0; j < i; j++ {
			if roots[j] == roots[i] {
				roots[i] = uint32(i) % nv
			}
		}
	}
	return roots
}

// TestMSBFSMatchesSequentialBFS pins the batched kernel to the solo one:
// a 64-root multi-source BFS must produce, for every root, exactly the
// depth vector 64 sequential single-root BFS runs produce — across every
// tuple codec.
func TestMSBFSMatchesSequentialBFS(t *testing.T) {
	el := kron(t, 10, 8, 11)
	for _, codec := range []string{"snb", "raw", "v3"} {
		t.Run(codec, func(t *testing.T) {
			g := convertCodec(t, el, 6, 4, codec)
			roots := msbfsRoots(64, g.Meta.NumVertices)

			ms := algo.NewMSBFS(roots)
			runAlg(t, g, smallOpts(), ms)

			for slot, root := range roots {
				solo := algo.NewBFS(root)
				runAlg(t, g, smallOpts(), solo)
				got, want := ms.Depth(slot), solo.Depths()
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("codec %s root %d (slot %d): depth[%d] = %d, sequential %d",
							codec, root, slot, v, got[v], want[v])
					}
				}
			}
		})
	}
}

// TestMSBFSMatchesSequentialBFSAfterMutations repeats the bit-identity
// pin on a graph mutated through the WAL-backed delta layer, so the
// batched kernel and the solo kernel are known to see the same merged
// tile stream.
func TestMSBFSMatchesSequentialBFSAfterMutations(t *testing.T) {
	el := kron(t, 10, 8, 13)
	g := convert(t, el, 6, 4)
	ds, err := delta.Open(g, g.BasePath(), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	nv := g.Meta.NumVertices
	var ops []delta.Op
	for i := 0; i < len(el.Edges) && len(ops) < 20; i += 131 {
		e := el.Edges[i]
		if e.Src != e.Dst {
			ops = append(ops, delta.Op{Del: true, Src: e.Src, Dst: e.Dst})
		}
	}
	for x := uint32(3); len(ops) < 40; x += 7919 {
		ops = append(ops, delta.Op{Src: x % nv, Dst: (x*31 + 5) % nv})
	}
	if _, err := ds.Apply(ops); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetDeltaStore(ds)

	roots := msbfsRoots(64, nv)
	ms := algo.NewMSBFS(roots)
	if st, err := e.Run(context.Background(), ms); err != nil {
		t.Fatal(err)
	} else if st.DeltaTiles == 0 {
		t.Fatalf("mutated msbfs run merged no delta tiles: %+v", st)
	}
	for slot, root := range roots {
		solo := algo.NewBFS(root)
		if _, err := e.Run(context.Background(), solo); err != nil {
			t.Fatal(err)
		}
		got, want := ms.Depth(slot), solo.Depths()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("mutated root %d (slot %d): depth[%d] = %d, sequential %d",
					root, slot, v, got[v], want[v])
			}
		}
	}
}

// TestRunPersonalBFSCoalesces submits concurrent single-root queries
// within one window and checks each rider gets exactly its solo BFS
// depths, that the roots shared one run, and that I/O attribution is
// split across the riders.
func TestRunPersonalBFSCoalesces(t *testing.T) {
	el := kron(t, 10, 8, 17)
	g := convert(t, el, 6, 4)
	csr := graph.NewCSR(el, false)

	opts := smallOpts()
	opts.BatchWindow = 200 * time.Millisecond // wide enough to swallow goroutine start skew
	_, s := newSched(t, g, opts)

	roots := []uint32{0, 7, 99, 512, 1000}
	type out struct {
		depths []int32
		st     *Stats
		err    error
	}
	outs := make([]out, len(roots))
	var wg sync.WaitGroup
	for i, r := range roots {
		wg.Add(1)
		go func(i int, r uint32) {
			defer wg.Done()
			d, st, err := s.RunPersonalBFS(context.Background(), r)
			outs[i] = out{d, st, err}
		}(i, r)
	}
	wg.Wait()

	for i, r := range roots {
		o := outs[i]
		if o.err != nil {
			t.Fatalf("root %d: %v", r, o.err)
		}
		if o.st.BatchedRoots != len(roots) {
			t.Fatalf("root %d: BatchedRoots = %d, want %d (one fused run)",
				r, o.st.BatchedRoots, len(roots))
		}
		want := graph.RefBFS(csr, graph.VertexID(r))
		for v := range want {
			if o.depths[v] != want[v] {
				t.Fatalf("root %d: depth[%d] = %d, want %d", r, v, o.depths[v], want[v])
			}
		}
		if o.st.BytesRead <= 0 {
			t.Fatalf("root %d: no fractional I/O attributed: %+v", r, o.st)
		}
	}
	// All riders see the same divided view of one run's bytes.
	for i := 1; i < len(outs); i++ {
		if outs[i].st.BytesRead != outs[0].st.BytesRead {
			t.Fatalf("riders disagree on attributed bytes: %d vs %d",
				outs[i].st.BytesRead, outs[0].st.BytesRead)
		}
	}
}

// TestRunPersonalBFSSoloWindow pins the BatchWindow=0 path: an immediate
// solo BFS with BatchedRoots = 1.
func TestRunPersonalBFSSoloWindow(t *testing.T) {
	el := kron(t, 10, 8, 19)
	g := convert(t, el, 6, 4)
	_, s := newSched(t, g, smallOpts()) // DefaultOptions has no window

	d, st, err := s.RunPersonalBFS(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchedRoots != 1 {
		t.Fatalf("BatchedRoots = %d, want 1", st.BatchedRoots)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 3)
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

// TestRunPersonalBFSDuplicateRootsShareSlot: two riders on the same root
// coalesce into a single-root run (one interest bit) and both get the
// same depth vector.
func TestRunPersonalBFSDuplicateRootsShareSlot(t *testing.T) {
	el := kron(t, 10, 8, 23)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.BatchWindow = 200 * time.Millisecond
	_, s := newSched(t, g, opts)

	var wg sync.WaitGroup
	var d1, d2 []int32
	var st1, st2 *Stats
	var err1, err2 error
	wg.Add(2)
	go func() { defer wg.Done(); d1, st1, err1 = s.RunPersonalBFS(context.Background(), 42) }()
	go func() { defer wg.Done(); d2, st2, err2 = s.RunPersonalBFS(context.Background(), 42) }()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if st1.BatchedRoots != 1 || st2.BatchedRoots != 1 {
		t.Fatalf("BatchedRoots = %d/%d, want 1/1 (duplicates share the slot)",
			st1.BatchedRoots, st2.BatchedRoots)
	}
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("riders disagree at depth[%d]: %d vs %d", v, d1[v], d2[v])
		}
	}
}

// TestRunPersonalBFSBadRoot: an out-of-range root is rejected up front
// as a BadRequestError and never reaches (or poisons) a batch.
func TestRunPersonalBFSBadRoot(t *testing.T) {
	el := kron(t, 10, 8, 29)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.BatchWindow = 50 * time.Millisecond
	_, s := newSched(t, g, opts)

	_, _, err := s.RunPersonalBFS(context.Background(), g.Meta.NumVertices+5)
	var bre *BadRequestError
	if !errors.As(err, &bre) {
		t.Fatalf("err = %v, want BadRequestError", err)
	}
	// A good root right after still works.
	if _, st, err := s.RunPersonalBFS(context.Background(), 1); err != nil || st.BatchedRoots < 1 {
		t.Fatalf("good root after bad: st=%+v err=%v", st, err)
	}
}

// TestRunPersonalBFSCloseDuringWindow: riders parked in an open window
// get ErrSchedulerClosed promptly when the scheduler shuts down.
func TestRunPersonalBFSCloseDuringWindow(t *testing.T) {
	el := kron(t, 10, 8, 31)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, func() Options {
		o := smallOpts()
		o.BatchWindow = 10 * time.Second // far beyond the test
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := NewScheduler(e)

	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.RunPersonalBFS(context.Background(), 5)
		errCh <- err
	}()
	// Wait until the rider has opened the window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.pmu.Lock()
		open := s.curBatch != nil
		s.pmu.Unlock()
		if open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window never opened")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSchedulerClosed) {
			t.Fatalf("rider err = %v, want ErrSchedulerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rider still parked after Close")
	}
	// Submissions after Close are rejected immediately.
	if _, _, err := s.RunPersonalBFS(context.Background(), 5); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("post-Close err = %v, want ErrSchedulerClosed", err)
	}
}

// TestRunPersonalBFSRiderCancel: one rider canceling while batched
// leaves with a wrapped context error; the batch still answers the
// patient rider correctly.
func TestRunPersonalBFSRiderCancel(t *testing.T) {
	el := kron(t, 10, 8, 37)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.BatchWindow = 300 * time.Millisecond
	_, s := newSched(t, g, opts)

	ctx, cancel := context.WithCancel(context.Background())
	impatient := make(chan error, 1)
	go func() {
		_, _, err := s.RunPersonalBFS(ctx, 9)
		impatient <- err
	}()
	patient := make(chan []int32, 1)
	go func() {
		d, _, err := s.RunPersonalBFS(context.Background(), 11)
		if err != nil {
			t.Errorf("patient rider: %v", err)
		}
		patient <- d
	}()
	time.Sleep(30 * time.Millisecond) // both riders parked in the window
	cancel()
	if err := <-impatient; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient rider err = %v, want context.Canceled", err)
	}
	d := <-patient
	want := graph.RefBFS(graph.NewCSR(el, false), 11)
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("patient depth[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

// TestRunPersonalBFSSixtyFourRootCap: the 65th distinct root within a
// window opens a second batch rather than overflowing the 64 interest
// bits; everyone still gets correct depths.
func TestRunPersonalBFSSixtyFourRootCap(t *testing.T) {
	if testing.Short() {
		t.Skip("65 concurrent riders")
	}
	el := kron(t, 10, 8, 41)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.BatchWindow = 300 * time.Millisecond
	opts.MaxQueuedRuns = 16
	_, s := newSched(t, g, opts)

	const n = 65
	nv := g.Meta.NumVertices
	sts := make([]*Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			root := (uint32(i) * 613) % nv
			_, st, err := s.RunPersonalBFS(context.Background(), root)
			if err != nil {
				t.Errorf("root %d: %v", root, err)
				return
			}
			sts[i] = st
		}(i)
	}
	wg.Wait()
	maxBatched := 0
	for _, st := range sts {
		if st != nil && st.BatchedRoots > maxBatched {
			maxBatched = st.BatchedRoots
		}
		if st != nil && st.BatchedRoots > 64 {
			t.Fatalf("batch overflowed the bitmask: %d roots", st.BatchedRoots)
		}
	}
	if maxBatched < 2 {
		t.Fatalf("no coalescing observed across %d riders", n)
	}
}

// TestPersonalRunHookFiresOncePerRun: the observer sees the coalesced
// run once with undivided stats, not once per rider.
func TestPersonalRunHookFiresOncePerRun(t *testing.T) {
	el := kron(t, 10, 8, 43)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, func() Options {
		o := smallOpts()
		o.BatchWindow = 200 * time.Millisecond
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := NewScheduler(e)
	defer s.Close()

	var mu sync.Mutex
	var hooks []*Stats
	s.PersonalRunHook = func(st *Stats, err error) {
		mu.Lock()
		hooks = append(hooks, st)
		mu.Unlock()
	}

	roots := []uint32{1, 2, 3}
	var wg sync.WaitGroup
	var riderBytes int64
	for _, r := range roots {
		wg.Add(1)
		go func(r uint32) {
			defer wg.Done()
			_, st, err := s.RunPersonalBFS(context.Background(), r)
			if err != nil {
				t.Errorf("root %d: %v", r, err)
				return
			}
			mu.Lock()
			riderBytes = st.BytesRead
			mu.Unlock()
		}(r)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(hooks) != 1 {
		t.Fatalf("hook fired %d times, want once per underlying run", len(hooks))
	}
	if hooks[0].BatchedRoots != len(roots) {
		t.Fatalf("hook BatchedRoots = %d, want %d", hooks[0].BatchedRoots, len(roots))
	}
	// The hook sees undivided bytes; each rider sees ~1/len(roots) of them.
	if riderBytes >= hooks[0].BytesRead {
		t.Fatalf("rider bytes %d not a fraction of run bytes %d", riderBytes, hooks[0].BytesRead)
	}
}

package core

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/storage"
)

func faultOpts(cfg storage.FaultConfig, retries int) Options {
	o := smallOpts()
	o.Fault = &cfg
	o.MaxRetries = retries
	o.RetryBackoff = 50 * time.Microsecond
	o.RetryBackoffMax = time.Millisecond
	return o
}

// checkNoLeakedSegments asserts both streaming buffers are free.
func checkNoLeakedSegments(t *testing.T, e *Engine) {
	t.Helper()
	a, b := e.mm.Acquire(), e.mm.Acquire()
	if a == nil || b == nil {
		t.Fatal("engine leaked a streaming segment")
	}
	e.mm.Release(a)
	e.mm.Release(b)
}

// Acceptance: at a 10% injected read-error rate, BFS completes correctly
// via retries and the stats report the recovery.
func TestEngineFaultInjectionBFSRetries(t *testing.T) {
	el := kron(t, 10, 8, 21)
	g := convert(t, el, 6, 4)
	opts := faultOpts(storage.FaultConfig{Seed: 1, ErrorRate: 0.1}, 8)
	b := algo.NewBFS(0)
	st := runAlg(t, g, opts, b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.Faults.Errors == 0 {
		t.Fatal("no faults injected at a 10% error rate")
	}
	if st.Retries == 0 || st.IOFailures == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	if st.Retries < st.IOFailures {
		t.Fatalf("every observed failure should have been retried: %d failures, %d retries",
			st.IOFailures, st.Retries)
	}
}

// Short reads and latency spikes must also be survivable, for both
// PageRank and the synchronous-I/O ablation path.
func TestEngineFaultShortAndSlowReads(t *testing.T) {
	el := kron(t, 12, 8, 22)
	g := convert(t, el, 6, 4)
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(5))

	for _, syncIO := range []bool{false, true} {
		opts := faultOpts(storage.FaultConfig{
			Seed: 2, ErrorRate: 0.05, ShortRate: 0.3,
			SlowRate: 0.05, SlowDelay: 200 * time.Microsecond,
		}, 10)
		opts.SyncIO = syncIO
		// Stream everything every iteration so plenty of requests pass
		// through the fault device.
		opts.Cache = CacheNone
		opts.MemoryBytes = 128 << 10
		p := algo.NewPageRank(5)
		st := runAlg(t, g, opts, p)
		for v, r := range p.Ranks() {
			if diff := r - want[v]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("syncIO=%v: rank[%d] = %v, want %v", syncIO, v, r, want[v])
			}
		}
		if st.Faults.Shorts == 0 {
			t.Fatalf("syncIO=%v: no short reads injected: %+v", syncIO, st.Faults)
		}
		if st.Retries == 0 {
			t.Fatalf("syncIO=%v: no retries recorded", syncIO)
		}
	}
}

// Acceptance: with retries exhausted, Run returns an error, and a
// subsequent fault-free Run on the same engine succeeds with no leaked
// segments.
func TestEngineFaultRetriesExhaustedThenRecovers(t *testing.T) {
	el := kron(t, 10, 4, 23)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, faultOpts(storage.FaultConfig{Seed: 3, ErrorRate: 1}, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Two failed runs in a row: the engine must stay usable between them.
	for round := 0; round < 2; round++ {
		if _, err := e.Run(context.Background(), algo.NewBFS(0)); !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("round %d: Run error = %v, want wrapped ErrInjected", round, err)
		}
		checkNoLeakedSegments(t, e)
	}

	fd, ok := e.array.(*storage.FaultDevice)
	if !ok {
		t.Fatalf("engine array is %T, want *storage.FaultDevice", e.array)
	}
	if err := fd.SetConfig(storage.FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	b := algo.NewBFS(0)
	st, err := e.Run(context.Background(), b)
	if err != nil {
		t.Fatalf("fault-free Run after failed Run: %v", err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.Faults.Errors != 0 {
		t.Fatalf("fault-free run still injected faults: %+v", st.Faults)
	}
	checkNoLeakedSegments(t, e)
}

// Regression for the segment leak: after a forced I/O error (truncated
// tiles file), the same engine must run again once the file is restored.
// Before the leak-proof teardown, the second Run deadlocked in Acquire.
func TestEngineRunTwiceAfterForcedIOError(t *testing.T) {
	el := kron(t, 9, 4, 24)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	tilesPath := g.BasePath() + ".tiles"
	saved, err := os.ReadFile(tilesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tilesPath, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err == nil {
		t.Fatal("engine ignored read failure")
	}
	checkNoLeakedSegments(t, e)

	// Restore the bytes in place (same inode; the engine's open handle
	// sees the restored content) and run again.
	if err := os.WriteFile(tilesPath, saved, 0o644); err != nil {
		t.Fatal(err)
	}
	b := algo.NewBFS(0)
	if _, err := e.Run(context.Background(), b); err != nil {
		t.Fatalf("second Run after restored file: %v", err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	checkNoLeakedSegments(t, e)
}

// With retries disabled every injected failure is fatal, but the engine
// must still tear down cleanly and stay reusable.
func TestEngineFaultNoRetries(t *testing.T) {
	el := kron(t, 10, 4, 25)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, faultOpts(storage.FaultConfig{Seed: 4, ErrorRate: 0.3}, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err == nil {
		t.Fatal("Run succeeded despite unretried faults")
	}
	checkNoLeakedSegments(t, e)
	if fd, ok := e.array.(*storage.FaultDevice); ok {
		if err := fd.SetConfig(storage.FaultConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err != nil {
		t.Fatalf("engine not reusable after unretried fault: %v", err)
	}
}

// The LRU retire path (mem.EvictOldest) must evict exactly enough bytes,
// including the boundary case of a segment larger than the whole pool.
func TestLRURetireBoundary(t *testing.T) {
	m, err := mem.NewManager(1000, 400) // segments 400, pool 200
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{mm: m, opts: Options{Cache: CacheLRU}}

	fill := func(diskIdx, size int) {
		s := m.Acquire()
		if s == nil {
			t.Fatal("no free segment")
		}
		data := s.Buf[:size]
		for i := range data {
			data[i] = byte(diskIdx)
		}
		s.SetTiles([]mem.TileRef{{DiskIdx: diskIdx, Data: data}})
		m.Retire(s, nil)
	}
	fill(1, 80)
	fill(2, 80)
	fill(3, 30) // pool now 190/200

	// Need 100: evicting tiles 1 and 2 (160 bytes) is exactly enough;
	// tile 3 must survive.
	if freed, evicted := m.EvictOldest(100); freed != 160 || evicted != 2 {
		t.Fatalf("EvictOldest(100) = (%d, %d), want (160, 2)", freed, evicted)
	}
	if m.CachedData(1) != nil || m.CachedData(2) != nil {
		t.Fatal("oldest tiles not evicted")
	}
	if m.CachedData(3) == nil {
		t.Fatal("EvictOldest evicted more than needed")
	}
	if used := m.PoolUsed(); used != 30 || used+100 > m.PoolCap() {
		t.Fatalf("PoolUsed = %d after making room for 100", used)
	}

	// Boundary: an incoming segment bigger than the whole pool evicts
	// everything, and the subsequent Retire drops the oversized tile.
	if freed, evicted := m.EvictOldest(300); freed != 30 || evicted != 1 {
		t.Fatalf("EvictOldest(300) = (%d, %d), want (30, 1)", freed, evicted)
	}
	if m.PoolUsed() != 0 {
		t.Fatalf("PoolUsed = %d, want 0 after oversized EvictOldest", m.PoolUsed())
	}
	before := m.Stats().DroppedTiles
	s := m.Acquire()
	s.SetTiles([]mem.TileRef{{DiskIdx: 9, Data: s.Buf[:300]}}) // > pool cap 200
	e.retire(nil, s)
	if got := m.Stats().DroppedTiles - before; got != 1 {
		t.Fatalf("DroppedTiles delta = %d, want 1", got)
	}
	checkNoLeakedSegments(t, e)
}

// The LRU retire path must size its eviction by the tiles the pool does
// NOT already hold: Retire skips already-cached tiles (a rewind re-streams
// pooled tiles), so sizing by the whole segment evicts live cache entries
// to make room nothing will fill.
func TestLRURetireSizesByUncachedTilesOnly(t *testing.T) {
	m, err := mem.NewManager(1000, 400) // segments 400, pool 200
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{mm: m, opts: Options{Cache: CacheLRU}}

	fill := func(diskIdx, size int) {
		s := m.Acquire()
		data := s.Buf[:size]
		for i := range data {
			data[i] = byte(diskIdx)
		}
		s.SetTiles([]mem.TileRef{{DiskIdx: diskIdx, Data: data}})
		m.Retire(s, nil)
	}
	fill(1, 80)
	fill(2, 60)
	fill(3, 40) // pool now 180/200

	// A segment carrying tile 3 (cached, 40 bytes) and a new tile 4
	// (20 bytes): only 20 uncached bytes are needed and 20 are free, so
	// nothing may be evicted. Sizing by the whole segment (60 bytes)
	// would wrongly evict tile 1.
	before := m.Stats().EvictedTiles
	s := m.Acquire()
	d3 := s.Buf[:40]
	d4 := s.Buf[40:60]
	for i := range d4 {
		d4[i] = 4
	}
	s.SetTiles([]mem.TileRef{
		{DiskIdx: 3, Data: d3},
		{DiskIdx: 4, Data: d4},
	})
	e.retire(nil, s)

	if got := m.Stats().EvictedTiles - before; got != 0 {
		t.Fatalf("EvictedTiles delta = %d, want 0 (only 20 uncached bytes needed)", got)
	}
	for _, di := range []int{1, 2, 3, 4} {
		if m.CachedData(di) == nil {
			t.Fatalf("tile %d missing from pool after retire", di)
		}
	}
	if m.PoolUsed() != 200 {
		t.Fatalf("PoolUsed = %d, want 200", m.PoolUsed())
	}
	checkNoLeakedSegments(t, e)
}

// soloBatch wraps ctx in a single-run batch for driving sweep internals
// directly in tests.
func soloBatch(ctx context.Context) []*runState {
	return []*runState{{ctx: ctx, stats: &Stats{}, done: make(chan struct{})}}
}

// The backoff schedule must honor the cap.
func TestBackoffCapped(t *testing.T) {
	batch := soloBatch(context.Background())
	e := &Engine{opts: Options{RetryBackoff: time.Millisecond, RetryBackoffMax: 4 * time.Millisecond}}
	begin := time.Now()
	if err := e.backoff(batch, 10); err != nil { // would be 512ms uncapped
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 100*time.Millisecond {
		t.Fatalf("backoff(10) slept %v, want ~4ms cap", elapsed)
	}
	e2 := &Engine{opts: Options{}}
	begin = time.Now()
	if err := e2.backoff(batch, 5); err != nil { // zero backoff: no sleep
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 50*time.Millisecond {
		t.Fatalf("zero-config backoff slept %v", elapsed)
	}
}

// A canceled context interrupts a retry backoff immediately instead of
// blocking the completion loop out the full schedule.
func TestBackoffCanceledContext(t *testing.T) {
	e := &Engine{opts: Options{RetryBackoff: time.Hour, RetryBackoffMax: time.Hour}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := soloBatch(ctx)
	begin := time.Now()
	err := e.backoff(batch, 1)
	if !errors.Is(err, errBatchDone) {
		t.Fatalf("backoff under canceled ctx = %v, want errBatchDone", err)
	}
	if !errors.Is(batch[0].err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", batch[0].err)
	}
	if elapsed := time.Since(begin); elapsed > 100*time.Millisecond {
		t.Fatalf("canceled backoff took %v, want immediate return", elapsed)
	}
}

package core

import (
	"context"
	"math"
	"os"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

func convert(t *testing.T, el *graph.EdgeList, bits uint, q uint32) *tile.Graph {
	t.Helper()
	g, err := tile.Convert(el, t.TempDir(), "g", tile.ConvertOptions{
		TileBits: bits, GroupQ: q, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func smallOpts() Options {
	o := DefaultOptions()
	o.MemoryBytes = 1 << 20
	o.SegmentSize = 64 << 10
	o.Threads = 4
	return o
}

func runAlg(t *testing.T, g *tile.Graph, opts Options, a algo.Algorithm) *Stats {
	t.Helper()
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := e.Run(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func kron(t *testing.T, scale uint, ef int, seed uint64) *graph.EdgeList {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return el
}

func TestEngineBFSMatchesReference(t *testing.T) {
	el := kron(t, 11, 8, 1)
	g := convert(t, el, 6, 4)
	b := algo.NewBFS(0)
	st := runAlg(t, g, smallOpts(), b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.Iterations < 2 {
		t.Fatalf("BFS converged suspiciously fast: %d iterations", st.Iterations)
	}
	if st.TilesProcessed == 0 || st.BytesRead == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestEnginePageRankMatchesReference(t *testing.T) {
	el := kron(t, 10, 8, 2)
	g := convert(t, el, 6, 4)
	iters := 10
	p := algo.NewPageRank(iters)
	st := runAlg(t, g, smallOpts(), p)
	if st.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", st.Iterations, iters)
	}
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for v, r := range p.Ranks() {
		if math.Abs(r-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, want[v])
		}
	}
}

func TestEngineWCCMatchesReference(t *testing.T) {
	el := kron(t, 11, 2, 3)
	g := convert(t, el, 6, 4)
	w := algo.NewWCC()
	runAlg(t, g, smallOpts(), w)
	want := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}

func TestEngineDirectedGraph(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(10, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := tile.Convert(el, t.TempDir(), "d", tile.ConvertOptions{
		TileBits: 6, GroupQ: 4, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	b := algo.NewBFS(0)
	runAlg(t, g, smallOpts(), b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

// All cache policies and I/O modes must give identical results; only
// performance differs.
func TestEnginePolicyEquivalence(t *testing.T) {
	el := kron(t, 10, 4, 5)
	g := convert(t, el, 6, 4)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)

	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"proactive", func(o *Options) { o.Cache = CacheProactive }},
		{"lru", func(o *Options) { o.Cache = CacheLRU }},
		{"none", func(o *Options) { o.Cache = CacheNone }},
		{"sync-io", func(o *Options) { o.SyncIO = true }},
		{"no-selective", func(o *Options) { o.Selective = false }},
		{"one-thread", func(o *Options) { o.Threads = 1 }},
		{"one-disk", func(o *Options) { o.Disks = 1 }},
		{"tiny-memory", func(o *Options) { o.MemoryBytes = 128 << 10; o.SegmentSize = 64 << 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts()
			tc.mod(&opts)
			b := algo.NewBFS(0)
			runAlg(t, g, opts, b)
			for v, d := range b.Depths() {
				if d != want[v] {
					t.Fatalf("policy %s: depth[%d] = %d, want %d", tc.name, v, d, want[v])
				}
			}
		})
	}
}

// Proactive caching must reduce bytes read across PageRank iterations
// when the pool can hold the graph: iterations 2..n should come from
// cache.
func TestProactiveCachingCutsIO(t *testing.T) {
	el := kron(t, 10, 8, 6)
	g := convert(t, el, 6, 4)

	opts := smallOpts()
	opts.MemoryBytes = 8 << 20 // plenty: whole graph fits in the pool
	p1 := algo.NewPageRank(5)
	cached := runAlg(t, g, opts, p1)

	opts2 := smallOpts()
	opts2.Cache = CacheNone
	p2 := algo.NewPageRank(5)
	uncached := runAlg(t, g, opts2, p2)

	if cached.BytesRead >= uncached.BytesRead {
		t.Fatalf("proactive caching did not cut I/O: %d vs %d bytes",
			cached.BytesRead, uncached.BytesRead)
	}
	// With the whole graph cached, later iterations read nothing: total
	// reads should be about one graph's worth vs five.
	if cached.BytesRead > uncached.BytesRead/3 {
		t.Fatalf("expected ~5x read reduction, got %d vs %d",
			cached.BytesRead, uncached.BytesRead)
	}
	if cached.TilesFromCache == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// Selective fetching must cut BFS I/O relative to reading everything.
func TestSelectiveFetchingCutsIO(t *testing.T) {
	// Path graph: huge diameter, tiny frontier.
	n := uint32(1 << 10)
	el := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v+1 < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	g := convert(t, el, 5, 2)

	opts := smallOpts()
	opts.Cache = CacheNone
	sel := runAlg(t, g, opts, algo.NewBFS(0))

	opts.Selective = false
	all := runAlg(t, g, opts, algo.NewBFS(0))

	if sel.BytesRead*4 > all.BytesRead {
		t.Fatalf("selective fetching saved too little: %d vs %d bytes",
			sel.BytesRead, all.BytesRead)
	}
	if sel.TilesSkipped == 0 {
		t.Fatal("no tiles skipped")
	}
}

func TestEngineSegmentTooSmall(t *testing.T) {
	el := kron(t, 10, 8, 7)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.SegmentSize = 64 // smaller than the largest tile
	opts.MemoryBytes = 128
	if _, err := NewEngine(g, opts); err == nil {
		t.Fatal("engine accepted a memory budget below two tile-sized segments")
	}
	// With enough memory the engine grows the segments instead.
	opts.MemoryBytes = 1 << 20
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatalf("engine did not auto-grow segments: %v", err)
	}
	e.Close()
}

func TestEngineReadFailure(t *testing.T) {
	el := kron(t, 9, 4, 8)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Truncate the tiles file behind the engine's back: reads past the
	// new EOF must surface as run errors, not corrupt results.
	if err := os.Truncate(g.BasePath()+".tiles", 16); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err == nil {
		t.Fatal("engine ignored read failure")
	}
}

func TestEngineThrottledRun(t *testing.T) {
	el := kron(t, 10, 4, 9)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.Cache = CacheNone
	opts.Bandwidth = 200 << 20
	opts.Latency = 50 * time.Microsecond
	opts.Disks = 2
	b := algo.NewBFS(0)
	st := runAlg(t, g, opts, b)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.Storage.BusyTime == 0 {
		t.Fatal("throttle model charged no busy time")
	}
}

func TestStatsMTEPS(t *testing.T) {
	s := Stats{Elapsed: time.Second}
	if got := s.MTEPS(2_000_000); got != 2 {
		t.Fatalf("MTEPS = %v", got)
	}
	var zero Stats
	if zero.MTEPS(100) != 0 {
		t.Fatal("zero-elapsed MTEPS should be 0")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{SegmentSize: 0, MemoryBytes: 100}
	if err := o.normalize(); err == nil {
		t.Fatal("zero segment size accepted")
	}
	o = Options{SegmentSize: 100, MemoryBytes: 100}
	if err := o.normalize(); err == nil {
		t.Fatal("memory < 2 segments accepted")
	}
	o = Options{SegmentSize: 50, MemoryBytes: 1000, Cache: CacheNone}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.SegmentSize != 500 {
		t.Fatalf("CacheNone should split memory in two segments, got %d", o.SegmentSize)
	}
	if o.Threads <= 0 || o.MaxIterations <= 0 || o.Disks <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestCachePolicyString(t *testing.T) {
	if CacheProactive.String() != "proactive" || CacheLRU.String() != "lru" ||
		CacheNone.String() != "none" {
		t.Fatal("CachePolicy strings wrong")
	}
}

// Reusing one engine for several runs must work (the harness does this).
func TestEngineReuse(t *testing.T) {
	el := kron(t, 10, 4, 10)
	g := convert(t, el, 6, 4)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	wantD := graph.RefBFS(graph.NewCSR(el, false), 0)
	for round := 0; round < 3; round++ {
		b := algo.NewBFS(0)
		if _, err := e.Run(context.Background(), b); err != nil {
			t.Fatal(err)
		}
		for v, d := range b.Depths() {
			if d != wantD[v] {
				t.Fatalf("round %d: depth[%d] = %d, want %d", round, v, d, wantD[v])
			}
		}
	}
	w := algo.NewWCC()
	if _, err := e.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	wantL := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != wantL[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, wantL[v])
		}
	}
}

package core

import (
	"fmt"

	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/tile"
)

// IntegrityError marks a Run failure caused by tile data that reached
// memory with a CRC32C different from the one recorded at conversion
// time — silent corruption on the media or the read path, as opposed to
// a read that failed outright. It names the exact tile so an operator
// can confirm the damage offline with gstore fsck. Servers map it to a
// 5xx distinct from ordinary engine failures.
type IntegrityError struct {
	// Graph is the graph's name from its meta header.
	Graph string
	// Tile is the disk index of the corrupt tile; Row and Col are its
	// grid coordinates.
	Tile     int
	Row, Col uint32
	// Err is the underlying checksum mismatch.
	Err error
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("core: data integrity failure on graph %q tile %d (row %d, col %d): %v",
		e.Graph, e.Tile, e.Row, e.Col, e.Err)
}

// Unwrap lets errors.Is/As reach the underlying checksum error.
func (e *IntegrityError) Unwrap() error { return e.Err }

// verifySegment checks every tile of a freshly loaded segment against
// its recorded CRC32C before the data is handed to workers. A mismatch
// is retried with one synchronous re-read — in-flight corruption (a
// flipped bit on the bus, a bad DMA) goes away on re-read, media rot
// does not — and a second mismatch fails the sweep with *IntegrityError.
// Verification and mismatch counts are attributed to the runs interested
// in each tile. No-op on graphs without checksums (v1 format).
func (e *Engine) verifySegment(batch []*runState, plan *segmentPlan, seg *mem.Segment) error {
	if !e.g.Checksummed() {
		return nil
	}
	statMasked := func(mask uint64, f func(*Stats)) {
		for j, r := range batch {
			if mask&(1<<uint(j)) != 0 && !r.finished {
				f(r.stats)
			}
		}
	}
	// For v3 graphs a matching CRC is followed by a walk of the block
	// framing, so a converter bug (or a CRC collision) can never hand
	// workers undecodable data. Fixed-width codecs have no framing.
	frames := func(data []byte) error {
		if e.g.Meta.TupleCodec() != tile.CodecV3 {
			return nil
		}
		return tile.ValidateV3Frames(data)
	}
	for _, pt := range plan.tiles {
		data := seg.Buf[pt.bufOff : pt.bufOff+pt.n]
		want := e.g.TileChecksum(pt.diskIdx)
		statMasked(pt.mask, func(st *Stats) { st.TilesVerified++ })
		got := tile.Checksum(data)
		var err error
		if got == want {
			if err = frames(data); err == nil {
				continue
			}
		} else {
			statMasked(pt.mask, func(st *Stats) { st.ChecksumMismatches++ })
			off, _ := e.g.TileByteRange(pt.diskIdx)
			if rerr := e.array.ReadSync(off, data); rerr == nil {
				if got = tile.Checksum(data); got == want {
					if err = frames(data); err == nil {
						continue // transient: the re-read came back clean
					}
				}
			}
			if err == nil {
				err = &tile.ChecksumError{Tile: pt.diskIdx, Want: want, Got: got}
			}
		}
		return &IntegrityError{
			Graph: e.g.Meta.Name, Tile: pt.diskIdx, Row: pt.row, Col: pt.col,
			Err: err,
		}
	}
	return nil
}

package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// planEngine builds an engine whose graph has known tile sizes so the
// segment planner can be checked precisely.
func planEngine(t *testing.T) *Engine {
	t.Helper()
	el := kron(t, 10, 8, 51)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPlanSegmentsCoversAllTiles(t *testing.T) {
	e := planEngine(t)
	var toFetch []int
	for i := 0; i < e.g.Layout.NumTiles(); i++ {
		if e.g.TupleCount(i) > 0 {
			toFetch = append(toFetch, i)
		}
	}
	plans := e.planSegments(toFetch, nil)
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	seen := map[int]bool{}
	for _, p := range plans {
		var used int64
		for _, pt := range p.tiles {
			if seen[pt.diskIdx] {
				t.Fatalf("tile %d planned twice", pt.diskIdx)
			}
			seen[pt.diskIdx] = true
			used += pt.n
		}
		if used > e.opts.SegmentSize {
			t.Fatalf("plan uses %d bytes, segment is %d", used, e.opts.SegmentSize)
		}
		// Runs must cover exactly the tiles' bytes.
		var runBytes int64
		for _, r := range p.runs {
			runBytes += r.n
		}
		if runBytes != used {
			t.Fatalf("runs cover %d bytes, tiles need %d", runBytes, used)
		}
	}
	if len(seen) != len(toFetch) {
		t.Fatalf("planned %d tiles of %d", len(seen), len(toFetch))
	}
}

func TestPlanSegmentsMergesContiguousRuns(t *testing.T) {
	e := planEngine(t)
	// All tiles in disk order are contiguous in the file, so each plan
	// should need exactly one run.
	var toFetch []int
	for i := 0; i < e.g.Layout.NumTiles(); i++ {
		if e.g.TupleCount(i) > 0 {
			toFetch = append(toFetch, i)
		}
	}
	// Only contiguous when no empty tiles sit between; verify at least
	// that runs never exceed tiles and that adjacent tiles share runs.
	plans := e.planSegments(toFetch, nil)
	for _, p := range plans {
		if len(p.runs) > len(p.tiles) {
			t.Fatalf("%d runs for %d tiles", len(p.runs), len(p.tiles))
		}
	}
}

func TestPlanSegmentsGapsSplitRuns(t *testing.T) {
	e := planEngine(t)
	// Fetch every other non-empty tile: runs must not span the gaps.
	var toFetch []int
	for i := 0; i < e.g.Layout.NumTiles(); i += 2 {
		if e.g.TupleCount(i) > 0 {
			toFetch = append(toFetch, i)
		}
	}
	plans := e.planSegments(toFetch, nil)
	for _, p := range plans {
		for _, r := range p.runs {
			// Each run must map exactly onto whole planned tiles.
			var covered int64
			for _, pt := range p.tiles {
				off, n := e.g.TileByteRange(pt.diskIdx)
				if off >= r.fileOff && off+n <= r.fileOff+r.n {
					covered += n
				}
			}
			if covered != r.n {
				t.Fatalf("run [%d,%d) not an exact tile cover (%d of %d bytes)",
					r.fileOff, r.fileOff+r.n, covered, r.n)
			}
		}
	}
}

func TestPlanSegmentsEmptyInput(t *testing.T) {
	e := planEngine(t)
	if plans := e.planSegments(nil, nil); len(plans) != 0 {
		t.Fatalf("empty fetch produced %d plans", len(plans))
	}
}

func TestEngineIOWaitAccounted(t *testing.T) {
	el := kron(t, 10, 8, 52)
	g := convert(t, el, 6, 4)
	opts := smallOpts()
	opts.Cache = CacheNone
	opts.Bandwidth = 8 << 20 // slow disks: IO wait must be visible
	opts.Disks = 1
	st := runAlg(t, g, opts, algo.NewPageRank(2))
	if st.IOWait <= 0 {
		t.Fatalf("IOWait not accounted: %+v", st)
	}
	if st.Compute <= 0 {
		t.Fatalf("Compute not accounted: %+v", st)
	}
}

func TestEngineSCCRun(t *testing.T) {
	// SCC through the disk engine on a directed graph.
	el := kron(t, 9, 4, 53)
	el.Directed = true
	g, err := convertDirected(t, el)
	if err != nil {
		t.Fatal(err)
	}
	s := algo.NewSCC()
	st := runAlg(t, g, smallOpts(), s)
	if st.Iterations < 2 {
		t.Fatalf("SCC converged in %d iterations", st.Iterations)
	}
	// Verify against reference.
	want := refSCCLabels(el)
	for v, l := range s.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}
func convertDirected(t *testing.T, el *graph.EdgeList) (*tile.Graph, error) {
	t.Helper()
	g, err := tile.Convert(el, t.TempDir(), "d", tile.ConvertOptions{
		TileBits: 5, GroupQ: 2, SNB: true, Degrees: true,
	})
	if err == nil {
		t.Cleanup(func() { g.Close() })
	}
	return g, err
}

func refSCCLabels(el *graph.EdgeList) []uint32 {
	return graph.RefSCC(el)
}

func TestEngineTrace(t *testing.T) {
	el := kron(t, 9, 4, 54)
	g := convert(t, el, 5, 2)
	var buf bytes.Buffer
	opts := smallOpts()
	opts.Trace = &buf
	runAlg(t, g, opts, algo.NewBFS(0))
	out := buf.String()
	// Trace lines are structured key=value events now.
	for _, want := range []string{
		"event=iteration", "algo=bfs", "iter=0",
		"read_bytes=", "iowait=", "compute=", "pool_used=", "pool_cap=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 2 {
		t.Fatalf("only %d trace lines", lines)
	}
}

// Property: the engine produces reference-identical BFS results under any
// combination of policies, buffer geometry and storage shape.
func TestQuickEngineOptionMatrix(t *testing.T) {
	el := kron(t, 9, 8, 55)
	g := convert(t, el, 5, 2)
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	f := func(rawPolicy, rawDisks uint8, selective, syncIO bool, rawSeg uint16, rawMem uint16) bool {
		opts := DefaultOptions()
		opts.Cache = CachePolicy(int(rawPolicy) % 3)
		opts.Disks = int(rawDisks)%8 + 1
		opts.Selective = selective
		opts.SyncIO = syncIO
		opts.Threads = 3
		opts.SegmentSize = int64(rawSeg)%(64<<10) + 8<<10
		opts.MemoryBytes = 2*opts.SegmentSize + int64(rawMem)*64
		e, err := NewEngine(g, opts)
		if err != nil {
			return false
		}
		defer e.Close()
		b := algo.NewBFS(0)
		if _, err := e.Run(context.Background(), b); err != nil {
			return false
		}
		for v, d := range b.Depths() {
			if d != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

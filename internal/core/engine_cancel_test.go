package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
)

// cancelAfter cancels a context once the wrapped algorithm finishes a
// given iteration, so cancellation lands deterministically between
// iterations.
type cancelAfter struct {
	algo.Algorithm
	cancel context.CancelFunc
	after  int
}

func (c *cancelAfter) AfterIteration(iter int) bool {
	done := c.Algorithm.AfterIteration(iter)
	if iter >= c.after {
		c.cancel()
	}
	return done
}

// TestRunCanceledBetweenIterations cancels after the first iteration and
// requires: a prompt error wrapping context.Canceled, no segment leak,
// and a reusable engine (the rerun must succeed fault-free and match an
// untouched engine's result).
func TestRunCanceledBetweenIterations(t *testing.T) {
	el := kron(t, 9, 8, 71)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// PageRank(50) would run 50 iterations; the wrapper cancels after 1.
	a := &cancelAfter{Algorithm: algo.NewPageRank(50), cancel: cancel, after: 0}
	if _, err := e.Run(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}

	// The engine must be fully reusable: both streaming segments free,
	// no stuck completions. A full BFS must succeed and match reference.
	b := algo.NewBFS(0)
	st, err := e.Run(context.Background(), b)
	if err != nil {
		t.Fatalf("rerun after cancel failed: %v", err)
	}
	if st.TilesProcessed == 0 {
		t.Fatal("rerun processed no tiles")
	}
	reached := 0
	for _, d := range b.Depths() {
		if d >= 0 {
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("rerun reached %d vertices", reached)
	}
}

// TestRunCanceledBeforeStart verifies an already-canceled context stops
// the run before any iteration and keeps the engine reusable.
func TestRunCanceledBeforeStart(t *testing.T) {
	el := kron(t, 9, 4, 72)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, algo.NewBFS(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
}

// TestRunCanceledDuringSlide cancels while the slide loop is waiting on
// throttled I/O: the run must return within the deadline (one completion
// plus scheduling slop), drain its in-flight requests, and leave the
// engine reusable.
func TestRunCanceledDuringSlide(t *testing.T) {
	el := kron(t, 10, 8, 73)
	g := convert(t, el, 5, 2)
	opts := smallOpts()
	opts.Cache = CacheNone
	opts.Disks = 1
	opts.Bandwidth = 256 << 10 // ~0.25 MB/s: the stream takes a while
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err = e.Run(ctx, algo.NewPageRank(50))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run returned %v, want context.Canceled", err)
	}
	if waited := time.Since(begin); waited > 5*time.Second {
		t.Fatalf("cancellation took %v", waited)
	}

	// Reusable afterward, including under the same throttled device.
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
}

// TestRunNilContext documents that a nil ctx means "never canceled".
func TestRunNilContext(t *testing.T) {
	el := kron(t, 9, 4, 74)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	//lint:ignore SA1012 explicit nil-context support is part of the API
	if _, err := e.Run(nil, algo.NewBFS(0)); err != nil {
		t.Fatalf("nil-context run failed: %v", err)
	}
}

// TestRunBadRequestClassified verifies argument errors come back as
// *BadRequestError while I/O failures do not.
func TestRunBadRequestClassified(t *testing.T) {
	el := kron(t, 9, 4, 75)
	g := convert(t, el, 5, 2)
	e, err := NewEngine(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Root outside the vertex range is the caller's fault.
	_, err = e.Run(context.Background(), algo.NewBFS(1<<30))
	var bad *BadRequestError
	if !errors.As(err, &bad) {
		t.Fatalf("out-of-range root returned %T %v, want *BadRequestError", err, err)
	}
	// SCC on an undirected graph likewise.
	if _, err := e.Run(context.Background(), algo.NewSCC()); !errors.As(err, &bad) {
		t.Fatalf("SCC on undirected returned %T %v, want *BadRequestError", err, err)
	}
	// And the engine still runs fine.
	if _, err := e.Run(context.Background(), algo.NewBFS(0)); err != nil {
		t.Fatalf("run after bad requests failed: %v", err)
	}
}

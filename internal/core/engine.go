package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// BadRequestError marks a Run failure caused by the caller's algorithm
// arguments (an out-of-range BFS root, SCC on an undirected graph, ...)
// rather than by the engine or its storage. Servers use it to separate
// client errors (4xx) from engine failures (5xx).
type BadRequestError struct {
	Err error
}

func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap lets errors.Is/As reach the underlying cause.
func (e *BadRequestError) Unwrap() error { return e.Err }

// errBatchDone signals that every run in a sweep batch finished (all
// canceled) mid-iteration: the sweep tore its pipeline down cleanly and
// there is nothing left to drive. It is a control-flow sentinel, not a
// failure — per-run outcomes live in each runState's err.
var errBatchDone = errors.New("core: every run in the batch finished")

// Engine runs tile algorithms over an on-disk graph with the SCR
// scheduler: it slides segment-sized batched reads over the needed tiles,
// overlapping I/O with processing; retires processed segments into the
// cache pool under the configured policy; and rewinds each iteration to
// consume the pool before issuing any I/O (Figure 8).
//
// One engine drives one sweep at a time, but a sweep may carry a whole
// batch of co-scheduled algorithm runs (see Scheduler): the fetched tile
// stream is planned over the union of the batch's selective-fetch sets
// and each fetched tile is dispatched once per interested run, so N
// concurrent queries share a single pass over the disk.
type Engine struct {
	g     *tile.Graph
	opts  Options
	array storage.Device
	mm    *mem.Manager

	// deltaStore, when set, layers WAL-backed mutations over the base
	// graph: every dispatched tile is merged with the store's current
	// view (deleted edges masked, inserted edges appended) and degree
	// queries see the overlay. The base tile files — and with them the
	// cache pool, checksums, and selective-fetch planning — stay
	// untouched.
	deltaStore *delta.Store

	work chan workItem
	wg   sync.WaitGroup
	// chunkBytes is Options.ChunkBytes rounded down to the graph's tuple
	// size (0 disables intra-tile chunking).
	chunkBytes int64
	workers    []workerStat

	// scratch holds the per-iteration planning state reused across
	// iterations and runs; only the (single) sweep driver touches it.
	scratch sweepScratch

	// unattributedBytes accumulates fetched tile bytes whose interested
	// runs all finished before dispatch: the I/O happened but no live run
	// was left to charge. Engine-lifetime counter; Run reports the delta
	// it observed in Stats.UnattributedBytes.
	unattributedBytes atomic.Int64

	// ra, when the device accepts hints, receives next-iteration tile
	// ranges (the NeedTileNextIter union) after each sweep; raBudget
	// caps the hinted bytes per iteration.
	ra       storage.Readaheader
	raBudget int64
}

// runState is one algorithm run riding a sweep batch: its kernel, its
// private statistics, and its position in its own iteration sequence
// (co-scheduled runs advance one algorithm iteration per shared sweep,
// each counting from its own join).
type runState struct {
	alg     algo.Algorithm
	chunked algo.ChunkedAlgorithm // non-nil when alg supports chunked dispatch
	ctx     context.Context
	stats   *Stats
	iter    int

	// finished is set by the sweep (convergence, cancellation, or a
	// sweep-fatal error); err is the run's outcome. completed marks
	// driver-side finalization (stats sealed, waiter released).
	finished  bool
	completed bool
	err       error
	done      chan struct{}
	began     time.Time

	// Fractional attribution of shared I/O: a tile fetched for k
	// interested runs charges each of them 1/k of its bytes and requests.
	bytesFrac float64
	reqFrac   float64

	// startExt snapshots the backend's extended counters at admission so
	// completeFinished can seal Stats.IO as this run's window delta.
	// Co-scheduled runs overlap, so their IO windows overlap too (like
	// Stats.Storage, unlike the fractional bytes/requests above).
	startExt storage.ExtStats
	hasExt   bool
}

// prepare validates and initializes a for this engine's graph and wraps
// it in a fresh runState. Init failures come back as *BadRequestError.
func (e *Engine) prepare(ctx context.Context, a algo.Algorithm) (*runState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var degrees tile.DegreeSource
	if e.g.Meta.DegreeFormat != "" {
		var err error
		degrees, err = e.g.Degrees()
		if err != nil {
			return nil, err
		}
	}
	if e.deltaStore != nil {
		// The overlay reflects mutations applied before the run began;
		// later batches become visible at iteration boundaries through
		// the per-sweep view capture.
		degrees = e.deltaStore.View().Degrees(degrees)
	}
	actx := &algo.Context{
		NumVertices: e.g.Meta.NumVertices,
		Layout:      e.g.Layout,
		Directed:    e.g.Meta.Directed,
		Half:        e.g.Meta.Half,
		SNB:         e.g.Meta.SNB,
		Codec:       e.g.Meta.TupleCodec(),
		Degrees:     degrees,
		Workers:     e.opts.Threads,
	}
	if err := a.Init(actx); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	chunked, _ := a.(algo.ChunkedAlgorithm)
	return &runState{
		alg:     a,
		chunked: chunked,
		ctx:     ctx,
		stats:   &Stats{Algorithm: a.Name()},
		done:    make(chan struct{}),
		began:   time.Now(),
	}, nil
}

// pollBatch marks canceled runs finished and reports how many runs are
// still live. It is the batch generalization of the solo ctx.Err() poll:
// one disconnected client leaves the sweep at the next poll point without
// disturbing its co-scheduled neighbors.
func pollBatch(batch []*runState) int {
	alive := 0
	for _, r := range batch {
		if r.finished {
			continue
		}
		if err := r.ctx.Err(); err != nil {
			r.finished = true
			r.err = fmt.Errorf("core: run canceled: %w", err)
			continue
		}
		alive++
	}
	return alive
}

// statEach applies f to every unfinished run's stats (shared sweep events
// like IO waits and retries are observed by every live run).
func statEach(batch []*runState, f func(*Stats)) {
	for _, r := range batch {
		if !r.finished {
			f(r.stats)
		}
	}
}

// workItem is one unit of compute: a whole tile, or — when the algorithm
// supports chunked processing — one tuple-aligned chunk of a tile. The
// algorithm travels with the item so concurrent Run teardown can never
// leave a worker reading a stale engine-level field.
type workItem struct {
	alg     algo.Algorithm
	chunked algo.ChunkedAlgorithm // non-nil selects the chunk entry point
	row     uint32
	col     uint32
	data    []byte
	done    *sync.WaitGroup
}

// workerStat is one worker's cumulative accounting, padded so neighboring
// workers never share a cache line on the hot path.
type workerStat struct {
	busyNS atomic.Int64
	chunks atomic.Int64
	_      [112]byte
}

// NewEngine creates an engine over g. The engine owns a storage array on
// the graph's tiles file and a memory manager sized by opts; Close
// releases both.
func NewEngine(g *tile.Graph, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	// Every tile must fit in one segment, or it could never be staged.
	// (The paper's 256 MB segments comfortably exceed its tile sizes on
	// the evaluated graphs.) If the configured segments are too small but
	// the memory budget allows, grow them to the largest tile.
	maxTile := int64(0)
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if _, n := g.TileByteRange(i); n > maxTile {
			maxTile = n
		}
	}
	if maxTile > opts.SegmentSize {
		if 2*maxTile > opts.MemoryBytes {
			return nil, fmt.Errorf("core: largest tile is %d bytes but the memory budget is %d; need at least two tile-sized segments",
				maxTile, opts.MemoryBytes)
		}
		opts.SegmentSize = maxTile
	}
	var array storage.Device
	var err error
	if opts.Backend == "file" {
		array, err = storage.NewFileDevice(g.TilesPath(), storage.FileOptions{
			Workers:   opts.IOWorkers,
			Direct:    opts.DirectIO,
			Bandwidth: opts.Bandwidth,
			Latency:   opts.Latency,
		})
	} else {
		array, err = storage.NewArray(g.TilesFile(), storage.Options{
			NumDisks:   opts.Disks,
			StripeSize: opts.StripeSize,
			Bandwidth:  opts.Bandwidth,
			Latency:    opts.Latency,
		})
	}
	if err != nil {
		return nil, err
	}
	if opts.HDD != nil && opts.HDD.Fraction > 0 {
		// Tiered store (paper §IX, future work): the trailing fraction of
		// the tiles file lives on simulated hard drives. The fast tier is
		// whichever backend was selected above.
		slow, err := storage.NewArray(g.TilesFile(), storage.Options{
			NumDisks:   opts.HDD.Disks,
			StripeSize: opts.StripeSize,
			Bandwidth:  opts.HDD.Bandwidth,
			Latency:    opts.HDD.Latency,
		})
		if err != nil {
			array.Close()
			return nil, err
		}
		boundary := int64(float64(g.DataBytes()) * (1 - opts.HDD.Fraction))
		tiered, err := storage.NewTiered(array, slow, boundary)
		if err != nil {
			array.Close()
			slow.Close()
			return nil, err
		}
		array = tiered
	}
	if opts.Fault != nil {
		faulty, err := storage.NewFaultDevice(array, *opts.Fault)
		if err != nil {
			array.Close()
			return nil, err
		}
		array = faulty
	}
	mman, err := mem.NewManager(opts.MemoryBytes, opts.SegmentSize)
	if err != nil {
		array.Close()
		return nil, err
	}
	e := &Engine{g: g, opts: opts, array: array, mm: mman}
	if ra, ok := array.(storage.Readaheader); ok {
		e.ra = ra
		e.raBudget = opts.ReadaheadBytes
		if e.raBudget == 0 && opts.Backend == "file" {
			e.raBudget = 8 << 20
		}
		if e.raBudget < 0 {
			e.raBudget = 0
		}
	}
	if cb := opts.ChunkBytes; cb > 0 {
		// Fixed-width codecs round the chunk size down to the tuple
		// alignment; v3 tiles (TupleBytes 0) split at decode-block
		// boundaries instead, so the size is used as-is.
		if tb := g.Meta.TupleBytes(); tb > 0 {
			cb -= cb % tb
			if cb < tb {
				cb = tb
			}
		}
		e.chunkBytes = cb
	}
	e.scratch.inCache = make(map[int]bool)
	e.workers = make([]workerStat, opts.Threads)
	e.work = make(chan workItem, opts.Threads*2)
	for i := 0; i < opts.Threads; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// UnattributedBytes reports the engine-lifetime total of fetched tile
// bytes that could not be charged to any run (every interested run had
// finished by dispatch time).
func (e *Engine) UnattributedBytes() int64 { return e.unattributedBytes.Load() }

// SetDeltaStore attaches (or, with nil, detaches) a mutable delta layer.
// Must not be called while a run is in flight; the next sweep iteration
// picks up the store's current view.
func (e *Engine) SetDeltaStore(ds *delta.Store) { e.deltaStore = ds }

// DeltaStore returns the attached delta layer, if any.
func (e *Engine) DeltaStore() *delta.Store { return e.deltaStore }

// Close stops the workers and the storage array. The engine must not be
// running.
func (e *Engine) Close() {
	if e.work != nil {
		close(e.work)
		e.wg.Wait()
		e.work = nil
	}
	if e.array != nil {
		e.array.Close()
		e.array = nil
	}
}

// worker is one compute goroutine with a stable ID; chunked kernels key
// their private accumulator slabs off it.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	ws := &e.workers[id]
	for item := range e.work {
		begin := time.Now()
		if item.chunked != nil {
			item.chunked.ProcessTileChunk(id, item.row, item.col, item.data)
		} else {
			item.alg.ProcessTile(item.row, item.col, item.data)
		}
		ws.busyNS.Add(int64(time.Since(begin)))
		ws.chunks.Add(1)
		item.done.Done()
	}
}

// dispatch enqueues tile data as work items: one per tile on the legacy
// path, one per chunkBytes-sized chunk when the algorithm implements
// ChunkedAlgorithm — the load-balancing move that keeps all workers busy
// on a segment dominated by one dense tile. Returns the items enqueued.
func (e *Engine) dispatch(alg algo.Algorithm, chunked algo.ChunkedAlgorithm, ref mem.TileRef, done *sync.WaitGroup) int64 {
	if chunked == nil || e.chunkBytes <= 0 || int64(len(ref.Data)) <= e.chunkBytes {
		done.Add(1)
		e.work <- workItem{alg: alg, chunked: chunked, row: ref.Row, col: ref.Col, data: ref.Data, done: done}
		return 1
	}
	views := ref.Chunks(e.chunkBytes)
	done.Add(len(views))
	for _, v := range views {
		e.work <- workItem{alg: alg, chunked: chunked, row: ref.Row, col: ref.Col, data: v, done: done}
	}
	return int64(len(views))
}

// dispatchTile fans one tile out to every interested, still-live run of
// the batch and updates their per-run counters. fetchedBytes > 0 marks a
// freshly fetched tile whose bytes are attributed fractionally across
// the interested runs; fetchedBytes == 0 marks a cache-pool hit. When
// every interested run finished between planning and dispatch, fetched
// bytes have nobody left to charge and land on the engine-level
// unattributed counter instead of vanishing.
func (e *Engine) dispatchTile(batch []*runState, mask uint64, ref mem.TileRef, fetchedBytes int64, done *sync.WaitGroup) error {
	share := 0
	for j := range batch {
		if mask&(1<<uint(j)) != 0 && !batch[j].finished {
			share++
		}
	}
	if share == 0 {
		if fetchedBytes > 0 {
			e.unattributedBytes.Add(fetchedBytes)
		}
		return nil
	}
	ref.Codec = e.g.Meta.TupleCodec()
	// Read-time merge: a tile with delta data is dispatched as
	// base∪delta — masked base tuples dropped, inserted tuples appended.
	// The merged buffer is fresh, so pooled cache bytes stay the pristine
	// (checksum-verified) base data and survive view changes.
	deltaTile := false
	if td := e.scratch.view.Tile(ref.DiskIdx); td != nil {
		rb, _ := e.g.Layout.VertexRange(ref.Row)
		cb, _ := e.g.Layout.VertexRange(ref.Col)
		merged, err := td.Merge(ref.Data, ref.Codec, e.g.Layout.TileBits, rb, cb)
		if err != nil {
			c := e.g.Layout.CoordAt(ref.DiskIdx)
			return &IntegrityError{
				Graph: e.g.Meta.Name, Tile: ref.DiskIdx, Row: c.Row, Col: c.Col,
				Err: err,
			}
		}
		ref.Data = merged
		deltaTile = true
	}
	for j, r := range batch {
		if mask&(1<<uint(j)) == 0 || r.finished {
			continue
		}
		r.stats.Chunks += e.dispatch(r.alg, r.chunked, ref, done)
		r.stats.TilesProcessed++
		if deltaTile {
			r.stats.DeltaTiles++
		}
		if fetchedBytes > 0 {
			r.stats.TilesFetched++
			r.bytesFrac += float64(fetchedBytes) / float64(share)
		} else {
			r.stats.TilesFromCache++
		}
	}
	return nil
}

// workerSnapshot copies the cumulative per-worker counters.
func (e *Engine) workerSnapshot() (busy []int64, chunks []int64) {
	busy = make([]int64, len(e.workers))
	chunks = make([]int64, len(e.workers))
	for i := range e.workers {
		busy[i] = e.workers[i].busyNS.Load()
		chunks[i] = e.workers[i].chunks.Load()
	}
	return busy, chunks
}

// Run executes a on the graph until convergence and returns statistics.
//
// ctx cancels the run: it is checked between iterations and inside the
// slide loop's completion wait, so a disconnected client or a daemon
// shutdown stops the run within roughly one I/O completion. A canceled
// Run returns an error wrapping ctx.Err(), releases every segment it
// acquired, and leaves the engine reusable for the next Run.
//
// Errors caused by the algorithm's arguments (Init validation) are
// wrapped in *BadRequestError; everything else is an engine or storage
// failure.
//
// Run is the solo entry point and must not be called concurrently with
// itself or with a Scheduler on the same engine; servers co-scheduling
// queries go through Scheduler.Run instead.
func (e *Engine) Run(ctx context.Context, a algo.Algorithm) (*Stats, error) {
	r, err := e.prepare(ctx, a)
	if err != nil {
		return nil, err
	}
	ctx = r.ctx
	e.mm.Clear()

	stats := r.stats
	busyStart, chunksStart := e.workerSnapshot()
	startStorage := e.array.Stats()
	startExt, hasExt := storage.ExtStatsOf(e.array)
	startUnattr := e.unattributedBytes.Load()
	fd, hasFaults := e.array.(*storage.FaultDevice)
	var startFaults storage.FaultStats
	if hasFaults {
		startFaults = fd.FaultStats()
	}
	begin := time.Now()
	batch := []*runState{r}

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run canceled before iteration %d: %w", iter, err)
		}
		r.iter = iter
		a.BeforeIteration(iter)
		before := *stats
		beforeIO := e.array.Stats()
		if err := e.sweepIteration(batch); err != nil {
			if errors.Is(err, errBatchDone) {
				// The only run was canceled mid-sweep; its outcome is on
				// the runState.
				if r.err == nil {
					r.err = fmt.Errorf("core: run canceled: %w", context.Canceled)
				}
				return nil, r.err
			}
			var ie *IntegrityError
			if errors.As(err, &ie) {
				// Integrity failures return the partial stats so the
				// verification and mismatch counters still reach the
				// caller's metrics.
				stats.IntegrityErrors++
				stats.Elapsed = time.Since(begin)
				stats.UnattributedBytes = e.unattributedBytes.Load() - startUnattr
				if hasFaults {
					stats.Faults = fd.FaultStats().Sub(startFaults)
				}
				if hasExt {
					endExt, _ := storage.ExtStatsOf(e.array)
					stats.IO = endExt.Sub(startExt)
				}
				return stats, err
			}
			return nil, err
		}
		stats.Iterations = iter + 1
		done := a.AfterIteration(iter)
		if e.opts.Trace != nil {
			afterIO := e.array.Stats()
			metrics.WriteEvent(e.opts.Trace, "iteration",
				metrics.KV{Key: "algo", Value: a.Name()},
				metrics.KV{Key: "iter", Value: iter},
				metrics.KV{Key: "tiles", Value: stats.TilesProcessed - before.TilesProcessed},
				metrics.KV{Key: "cached", Value: stats.TilesFromCache - before.TilesFromCache},
				metrics.KV{Key: "skipped", Value: stats.TilesSkipped - before.TilesSkipped},
				metrics.KV{Key: "read_bytes", Value: afterIO.BytesRead - beforeIO.BytesRead},
				metrics.KV{Key: "iowait", Value: (stats.IOWait - before.IOWait).Round(time.Microsecond)},
				metrics.KV{Key: "compute", Value: (stats.Compute - before.Compute).Round(time.Microsecond)},
				metrics.KV{Key: "pool_used", Value: e.mm.PoolUsed()},
				metrics.KV{Key: "pool_cap", Value: e.mm.PoolCap()})
		}
		if done {
			break
		}
	}

	stats.Elapsed = time.Since(begin)
	stats.MetadataBytes = a.MetadataBytes()
	stats.Mem = e.mm.Stats()
	busyEnd, chunksEnd := e.workerSnapshot()
	stats.WorkerBusy = make([]time.Duration, len(busyEnd))
	stats.WorkerChunks = make([]int64, len(chunksEnd))
	var busySum, busyMax time.Duration
	for i := range busyEnd {
		d := time.Duration(busyEnd[i] - busyStart[i])
		stats.WorkerBusy[i] = d
		stats.WorkerChunks[i] = chunksEnd[i] - chunksStart[i]
		busySum += d
		if d > busyMax {
			busyMax = d
		}
	}
	if busySum > 0 && len(busyEnd) > 0 {
		mean := float64(busySum) / float64(len(busyEnd))
		stats.Imbalance = float64(busyMax) / mean
	}
	end := e.array.Stats()
	stats.Storage = end
	stats.BytesRead = end.BytesRead - startStorage.BytesRead
	stats.IORequests = end.Requests - startStorage.Requests
	stats.UnattributedBytes = e.unattributedBytes.Load() - startUnattr
	if hasFaults {
		stats.Faults = fd.FaultStats().Sub(startFaults)
	}
	if hasExt {
		endExt, _ := storage.ExtStatsOf(e.array)
		stats.IO = endExt.Sub(startExt)
	}
	return stats, nil
}

// sweepScratch is the per-iteration planning state, reused across
// iterations (and across runs on a reused engine) so the Run hot loop
// stays allocation-free once warm: the union need set and its interest
// masks, the in-cache filter, pooled segment plans, the inflight queue
// and its retry counters, the completion buffer, and the tile-ref /
// request staging slices.
type sweepScratch struct {
	needed    []int
	masks     []uint64
	fetch     []int
	fetchMask []uint64
	inCache   map[int]bool
	// view is the delta snapshot captured at the top of the current
	// sweep iteration (nil without a delta store); dispatchTile merges
	// it into every tile it fans out, so mutations become visible at
	// iteration boundaries and never mid-iteration.
	view *delta.View

	plans  []*segmentPlan
	nplans int

	queue    []inflight
	attempts []int
	comps    []storage.Completion
	refs     []mem.TileRef
	reqVals  []storage.Request
	reqPtrs  []*storage.Request
}

// nextPlan hands out a pooled (or fresh) segment plan with empty tile and
// run lists.
func (sc *sweepScratch) nextPlan() *segmentPlan {
	if sc.nplans < len(sc.plans) {
		p := sc.plans[sc.nplans]
		p.tiles = p.tiles[:0]
		p.runs = p.runs[:0]
		sc.nplans++
		return p
	}
	p := &segmentPlan{}
	sc.plans = append(sc.plans, p)
	sc.nplans++
	return p
}

// sweepIteration performs one shared SCR iteration for a batch of runs:
// union selective-fetch planning, rewind over the cache pool (each cached
// tile dispatched once per interested run), then the slide over the union
// of the remaining tiles.
//
// It returns nil on success, errBatchDone when every run finished
// (canceled) mid-sweep, or a sweep-fatal error (storage or integrity
// failure) that the driver must apply to every unfinished run.
func (e *Engine) sweepIteration(batch []*runState) error {
	sc := &e.scratch
	layout := e.g.Layout
	sc.view = nil
	if e.deltaStore != nil {
		sc.view = e.deltaStore.View()
	}
	sc.needed = sc.needed[:0]
	sc.masks = sc.masks[:0]
	for i := 0; i < layout.NumTiles(); i++ {
		if e.g.TupleCount(i) == 0 {
			continue
		}
		c := layout.CoordAt(i)
		var mask uint64
		for j, r := range batch {
			if r.finished {
				continue
			}
			if e.opts.Selective && !r.alg.NeedTileThisIter(c.Row, c.Col) {
				r.stats.TilesSkipped++
				continue
			}
			mask |= 1 << uint(j)
		}
		if mask == 0 {
			continue
		}
		sc.needed = append(sc.needed, i)
		sc.masks = append(sc.masks, mask)
	}

	// Rewind (§VI-D): process everything already cached before any I/O.
	clear(sc.inCache)
	if cached := e.mm.CachedTiles(); e.opts.Cache != CacheNone && len(cached) > 0 {
		var done sync.WaitGroup
		cs := time.Now()
		for _, ref := range cached {
			pos := indexSorted(sc.needed, ref.DiskIdx)
			if pos < 0 {
				continue
			}
			sc.inCache[ref.DiskIdx] = true
			if err := e.dispatchTile(batch, sc.masks[pos], ref, 0, &done); err != nil {
				done.Wait()
				return err
			}
		}
		done.Wait()
		el := time.Since(cs)
		statEach(batch, func(st *Stats) { st.Compute += el })
	}

	// Delta-only tiles hold inserted edges in tiles the base graph left
	// empty; there is nothing to fetch for them, so they are dispatched
	// here alongside the rewind (their data is wholly in memory).
	if v := sc.view; v.NumTiles() > 0 {
		var done sync.WaitGroup
		cs := time.Now()
		for _, di := range v.TileIndexes() {
			if e.g.TupleCount(di) != 0 {
				continue // merged on the rewind/slide paths
			}
			c := layout.CoordAt(di)
			var mask uint64
			for j, r := range batch {
				if r.finished {
					continue
				}
				if e.opts.Selective && !r.alg.NeedTileThisIter(c.Row, c.Col) {
					r.stats.TilesSkipped++
					continue
				}
				mask |= 1 << uint(j)
			}
			if mask == 0 {
				continue
			}
			if err := e.dispatchTile(batch, mask, mem.TileRef{DiskIdx: di, Row: c.Row, Col: c.Col}, 0, &done); err != nil {
				done.Wait()
				return err
			}
		}
		done.Wait()
		el := time.Since(cs)
		statEach(batch, func(st *Stats) { st.Compute += el })
	}

	sc.fetch = sc.fetch[:0]
	sc.fetchMask = sc.fetchMask[:0]
	for k, di := range sc.needed {
		if !sc.inCache[di] {
			sc.fetch = append(sc.fetch, di)
			sc.fetchMask = append(sc.fetchMask, sc.masks[k])
		}
	}
	if err := e.slide(batch, sc.fetch, sc.fetchMask); err != nil {
		return err
	}
	e.hintReadahead(batch)
	return nil
}

// hintReadahead advises the storage device about the tiles the next
// iteration will fetch: the union of NeedTileNextIter across the
// batch's live runs, minus tiles already pooled (the rewind serves
// those without I/O). Adjacent tiles merge into one sequential hint;
// the total is capped by raBudget so a whole-graph interest set cannot
// flood the page cache.
func (e *Engine) hintReadahead(batch []*runState) {
	if e.ra == nil || e.raBudget <= 0 {
		return
	}
	layout := e.g.Layout
	budget := e.raBudget
	var curOff, curN int64
	flush := func() {
		if curN > 0 {
			e.ra.Readahead(curOff, curN)
			curN = 0
		}
	}
	for i := 0; i < layout.NumTiles() && budget > 0; i++ {
		if e.g.TupleCount(i) == 0 {
			continue
		}
		if e.mm.CachedData(i) != nil {
			flush()
			continue
		}
		c := layout.CoordAt(i)
		want := false
		for _, r := range batch {
			if !r.finished && r.alg.NeedTileNextIter(c.Row, c.Col) {
				want = true
				break
			}
		}
		if !want {
			flush()
			continue
		}
		off, n := e.g.TileByteRange(i)
		if n > budget {
			n = budget
		}
		budget -= n
		if curN > 0 && curOff+curN == off {
			curN += n
		} else {
			flush()
			curOff, curN = off, n
		}
	}
	flush()
}

// indexSorted returns the position of x in the ascending slice, or -1.
func indexSorted(sorted []int, x int) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case sorted[mid] < x:
			lo = mid + 1
		case sorted[mid] > x:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// plannedTile is one tile's slot within a segment load. mask records
// which runs of the current batch want the tile (bit j = batch[j]).
type plannedTile struct {
	diskIdx  int
	row, col uint32
	bufOff   int64
	n        int64
	mask     uint64
}

// segmentPlan is one segment's worth of tiles plus the contiguous byte
// runs that load them. Gaps between runs come from selective fetching and
// cache hits; all of a plan's runs are submitted as one AIO batch (§V-B:
// "these I/Os would be merged into a single AIO system call").
type segmentPlan struct {
	tiles []plannedTile
	runs  []run
}

type run struct {
	fileOff int64
	bufOff  int64
	n       int64
}

// planSegments packs the tiles to fetch, in disk order, into
// segment-sized plans. masks carries the per-tile run-interest bits
// aligned with toFetch; nil means a single-run batch (every bit-0). The
// returned plans are pooled in the engine's scratch and are invalidated
// by the next planSegments call.
func (e *Engine) planSegments(toFetch []int, masks []uint64) []*segmentPlan {
	sc := &e.scratch
	sc.nplans = 0
	var cur *segmentPlan
	var used int64
	for k, di := range toFetch {
		off, n := e.g.TileByteRange(di)
		if cur != nil && used+n > e.opts.SegmentSize {
			cur = nil
		}
		if cur == nil {
			cur = sc.nextPlan()
			used = 0
		}
		mask := uint64(1)
		if masks != nil {
			mask = masks[k]
		}
		c := e.g.Layout.CoordAt(di)
		cur.tiles = append(cur.tiles, plannedTile{
			diskIdx: di, row: c.Row, col: c.Col, bufOff: used, n: n, mask: mask,
		})
		if last := len(cur.runs) - 1; last >= 0 &&
			cur.runs[last].fileOff+cur.runs[last].n == off &&
			cur.runs[last].bufOff+cur.runs[last].n == used {
			cur.runs[last].n += n
		} else {
			cur.runs = append(cur.runs, run{fileOff: off, bufOff: used, n: n})
		}
		used += n
	}
	return sc.plans[:sc.nplans]
}

// inflight is one submitted segment load: its buffer, its plan, and the
// retry ledger for its outstanding runs.
type inflight struct {
	seg      *mem.Segment
	plan     *segmentPlan
	left     int   // outstanding runs
	attempts []int // retry attempts per run
}

// slide is the pipelined stream of Figure 8: one segment loads while the
// other is processed; processed segments retire into the cache pool. Each
// loaded tile is dispatched once per interested run of the batch, so
// co-scheduled queries consume a single tile stream.
//
// Error handling: a failed or short read is re-submitted with capped
// exponential backoff up to Options.MaxRetries times before it fails the
// sweep (and with it every run of the batch). Every error path drains the
// in-flight completions it owns and releases every acquired segment, so a
// failed sweep leaves the engine reusable: the next sweep starts with
// both streaming buffers free and an empty completion stream.
//
// Cancellation: every run's ctx is polled before each completion wait, so
// a canceled run leaves the batch within one I/O completion; the sweep
// itself tears down (errBatchDone) only when no live run remains.
func (e *Engine) slide(batch []*runState, toFetch []int, masks []uint64) error {
	plans := e.planSegments(toFetch, masks)
	if len(plans) == 0 {
		return nil
	}
	sc := &e.scratch

	// The inflight queue is pre-sized to the plan count so taking
	// &queue[i] stays valid across appends; the retry ledgers slice one
	// shared arena.
	if cap(sc.queue) < len(plans) {
		sc.queue = make([]inflight, 0, len(plans))
	}
	queue := sc.queue[:0]
	totalRuns := 0
	for _, p := range plans {
		totalRuns += len(p.runs)
	}
	if cap(sc.attempts) < totalRuns {
		sc.attempts = make([]int, totalRuns)
	}
	attemptArena := sc.attempts[:totalRuns]
	for i := range attemptArena {
		attemptArena[i] = 0
	}
	arenaUsed := 0

	var (
		next        int
		outstanding int // async requests in flight across the whole queue
	)

	// fail tears the pipeline down after err: it consumes every
	// completion still owed to us and returns the segments held by the
	// not-yet-retired tail of the queue (entries before head were
	// released when they retired).
	fail := func(head int, err error) error {
		for outstanding > 0 {
			comps := e.array.Wait(1, sc.comps[:0])
			if len(comps) == 0 {
				break // device closed; nothing further will arrive
			}
			outstanding -= len(comps)
		}
		for i := head; i < len(queue); i++ {
			e.mm.Release(queue[i].seg)
		}
		return err
	}

	submit := func() error {
		if next >= len(plans) {
			return nil
		}
		s := e.mm.Acquire()
		if s == nil {
			return nil // both buffers busy; the loop resubmits later
		}
		p := plans[next]
		next++
		queue = append(queue, inflight{
			seg: s, plan: p, left: len(p.runs),
			attempts: attemptArena[arenaUsed : arenaUsed+len(p.runs)],
		})
		arenaUsed += len(p.runs)
		qi := len(queue) - 1
		fl := &queue[qi]
		if e.opts.SyncIO {
			ws := time.Now()
			defer func() {
				d := time.Since(ws)
				statEach(batch, func(st *Stats) { st.IOWait += d })
			}()
			for _, r := range p.runs {
				if err := e.readSyncRetry(batch, r, s); err != nil {
					return err
				}
			}
			fl.left = 0
			return nil
		}
		if cap(sc.reqVals) < len(p.runs) {
			sc.reqVals = make([]storage.Request, len(p.runs))
			sc.reqPtrs = make([]*storage.Request, len(p.runs))
		}
		reqs := sc.reqPtrs[:len(p.runs)]
		for i, r := range p.runs {
			sc.reqVals[i] = storage.Request{
				Offset: r.fileOff,
				Buf:    s.Buf[r.bufOff : r.bufOff+r.n],
				Tag:    int64(qi)<<32 | int64(i),
			}
			reqs[i] = &sc.reqVals[i]
		}
		if err := e.array.Submit(reqs); err != nil {
			return err
		}
		outstanding += len(reqs)
		return nil
	}

	// handle consumes one completion, retrying failed and short reads in
	// place (the re-submitted request keeps its tag, so it still counts
	// toward the same segment's outstanding runs).
	handle := func(c storage.Completion) error {
		outstanding--
		qi, ri := int(c.Tag>>32), int(c.Tag&0xffffffff)
		fl := &queue[qi]
		r := fl.plan.runs[ri]
		err := c.Err
		if err == nil && int64(c.N) < r.n {
			err = fmt.Errorf("core: short read: %d of %d bytes at offset %d", c.N, r.n, r.fileOff)
		}
		if err == nil {
			fl.left--
			return nil
		}
		statEach(batch, func(st *Stats) { st.IOFailures++ })
		if fl.attempts[ri] >= e.opts.MaxRetries {
			return fmt.Errorf("core: tile read failed after %d attempts: %w", fl.attempts[ri]+1, err)
		}
		fl.attempts[ri]++
		statEach(batch, func(st *Stats) { st.Retries++ })
		if err := e.backoff(batch, fl.attempts[ri]); err != nil {
			return err
		}
		req := &storage.Request{
			Offset: r.fileOff,
			Buf:    fl.seg.Buf[r.bufOff : r.bufOff+r.n],
			Tag:    c.Tag,
		}
		if err := e.array.Submit([]*storage.Request{req}); err != nil {
			return err
		}
		outstanding++
		return nil
	}

	// Prime the double buffer: two loads in flight.
	for i := 0; i < 2; i++ {
		if err := submit(); err != nil {
			return fail(0, err)
		}
	}

	comps := sc.comps
	for head := 0; head < len(queue); head++ {
		fl := &queue[head]
		ws := time.Now()
		for fl.left > 0 {
			if pollBatch(batch) == 0 {
				d := time.Since(ws)
				statEach(batch, func(st *Stats) { st.IOWait += d })
				return fail(head, errBatchDone)
			}
			comps = e.array.Wait(1, comps[:0])
			if len(comps) == 0 {
				d := time.Since(ws)
				statEach(batch, func(st *Stats) { st.IOWait += d })
				return fail(head, fmt.Errorf("core: storage closed during run"))
			}
			for ci, c := range comps {
				if err := handle(c); err != nil {
					// The rest of this batch was already received off the
					// completion stream; count it before draining.
					outstanding -= len(comps) - ci - 1
					d := time.Since(ws)
					statEach(batch, func(st *Stats) { st.IOWait += d })
					sc.comps = comps
					return fail(head, err)
				}
			}
		}
		d := time.Since(ws)
		statEach(batch, func(st *Stats) { st.IOWait += d })
		sc.comps = comps

		// Verify the segment's tiles against their recorded checksums
		// before any worker sees the data (no-op on v1 graphs).
		if err := e.verifySegment(batch, fl.plan, fl.seg); err != nil {
			return fail(head, err)
		}

		// Register the loaded tiles and hand them to the workers; kick
		// off the next load first so I/O overlaps compute (the slide).
		if cap(sc.refs) < len(fl.plan.tiles) {
			sc.refs = make([]mem.TileRef, 0, len(fl.plan.tiles))
		}
		refs := sc.refs[:0]
		for _, pt := range fl.plan.tiles {
			refs = append(refs, mem.TileRef{
				DiskIdx: pt.diskIdx, Row: pt.row, Col: pt.col,
				Data: fl.seg.Buf[pt.bufOff : pt.bufOff+pt.n],
			})
		}
		fl.seg.SetTiles(refs)

		if err := submit(); err != nil {
			return fail(head, err)
		}

		// Shared-read request attribution: the plan's AIO batch is
		// charged fractionally to the runs it served.
		planMask := uint64(0)
		for _, pt := range fl.plan.tiles {
			planMask |= pt.mask
		}
		interested := 0
		for j, r := range batch {
			if planMask&(1<<uint(j)) != 0 && !r.finished {
				interested++
			}
		}
		if interested > 0 {
			frac := float64(len(fl.plan.runs)) / float64(interested)
			for j, r := range batch {
				if planMask&(1<<uint(j)) != 0 && !r.finished {
					r.reqFrac += frac
				}
			}
		}

		var done sync.WaitGroup
		cs := time.Now()
		for ti, ref := range refs {
			if err := e.dispatchTile(batch, fl.plan.tiles[ti].mask, ref, fl.plan.tiles[ti].n, &done); err != nil {
				done.Wait()
				ce := time.Since(cs)
				statEach(batch, func(st *Stats) { st.Compute += ce })
				return fail(head, err)
			}
		}
		done.Wait()
		ce := time.Since(cs)
		statEach(batch, func(st *Stats) { st.Compute += ce })

		e.retire(batch, fl.seg)
		// Retiring freed a buffer; make sure the pipeline stays primed.
		if err := submit(); err != nil {
			return fail(head+1, err)
		}
	}
	return nil
}

// readSyncRetry performs one synchronous run read with the same
// retry/backoff policy the async path uses, polling the batch's contexts
// between attempts.
func (e *Engine) readSyncRetry(batch []*runState, r run, s *mem.Segment) error {
	for attempt := 0; ; attempt++ {
		if pollBatch(batch) == 0 {
			return errBatchDone
		}
		err := e.array.ReadSync(r.fileOff, s.Buf[r.bufOff:r.bufOff+r.n])
		if err == nil {
			return nil
		}
		statEach(batch, func(st *Stats) { st.IOFailures++ })
		if attempt >= e.opts.MaxRetries {
			return fmt.Errorf("core: tile read failed after %d attempts: %w", attempt+1, err)
		}
		statEach(batch, func(st *Stats) { st.Retries++ })
		if err := e.backoff(batch, attempt+1); err != nil {
			return err
		}
	}
}

// backoff pauses before the attempt'th retry (1-based): RetryBackoff
// doubled per attempt, capped at RetryBackoffMax.
//
// With a single live run the sleep is a timer select against that run's
// ctx, so a canceled solo run never blocks a retry out — an unconditional
// time.Sleep here would stall the whole completion loop for up to
// RetryBackoffMax per retry after the client is gone. With several live
// runs one client's cancellation must not abort the shared retry, so the
// sweep sleeps the (capped, ≤RetryBackoffMax) delay and picks
// cancellations up at the next poll point.
func (e *Engine) backoff(batch []*runState, attempt int) error {
	var sole *runState
	alive := 0
	for _, r := range batch {
		if !r.finished {
			alive++
			sole = r
		}
	}
	if alive == 0 {
		return errBatchDone
	}
	d := e.opts.RetryBackoff
	if d <= 0 {
		if pollBatch(batch) == 0 {
			return errBatchDone
		}
		return nil
	}
	for i := 1; i < attempt && d < e.opts.RetryBackoffMax; i++ {
		d *= 2
	}
	if max := e.opts.RetryBackoffMax; max > 0 && d > max {
		d = max
	}
	if alive > 1 {
		time.Sleep(d)
		if pollBatch(batch) == 0 {
			return errBatchDone
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-sole.ctx.Done():
		sole.finished = true
		sole.err = fmt.Errorf("core: run canceled during retry backoff: %w", sole.ctx.Err())
		return errBatchDone
	}
}

// retire moves a processed segment toward the cache pool according to the
// configured policy. Under proactive caching the keep predicate is the
// union of NeedTileNextIter across the batch's live runs, so a tile stays
// pooled as long as any co-scheduled query predicts a use for it.
func (e *Engine) retire(batch []*runState, s *mem.Segment) {
	switch e.opts.Cache {
	case CacheNone:
		e.mm.Release(s)
	case CacheLRU:
		// Retire skips tiles the pool already holds (a rewind can
		// re-stream pooled tiles), so only the uncached tiles need room.
		// Sizing by the whole segment would evict cached tiles to make
		// space nothing will use.
		var need int64
		for _, t := range s.Tiles() {
			if e.mm.CachedData(t.DiskIdx) == nil {
				need += int64(len(t.Data))
			}
		}
		e.mm.EvictOldest(need)
		e.mm.Retire(s, nil)
	default: // CacheProactive
		keep := func(ref mem.TileRef) bool {
			for _, r := range batch {
				if !r.finished && r.alg.NeedTileNextIter(ref.Row, ref.Col) {
					return true
				}
			}
			return false
		}
		if !e.mm.WouldFit(segBytes(s)) {
			// Cache analysis happens when the pool is full (Figure 8,
			// time Ti): evict tiles no live algorithm will need again.
			e.mm.Evict(keep)
		}
		e.mm.Retire(s, keep)
	}
}

func segBytes(s *mem.Segment) int64 {
	var n int64
	for _, t := range s.Tiles() {
		n += int64(len(t.Data))
	}
	return n
}

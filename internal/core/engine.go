package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/mem"
	"github.com/gwu-systems/gstore/internal/metrics"
	"github.com/gwu-systems/gstore/internal/storage"
	"github.com/gwu-systems/gstore/internal/tile"
)

// BadRequestError marks a Run failure caused by the caller's algorithm
// arguments (an out-of-range BFS root, SCC on an undirected graph, ...)
// rather than by the engine or its storage. Servers use it to separate
// client errors (4xx) from engine failures (5xx).
type BadRequestError struct {
	Err error
}

func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap lets errors.Is/As reach the underlying cause.
func (e *BadRequestError) Unwrap() error { return e.Err }

// Engine runs tile algorithms over an on-disk graph with the SCR
// scheduler: it slides segment-sized batched reads over the needed tiles,
// overlapping I/O with processing; retires processed segments into the
// cache pool under the configured policy; and rewinds each iteration to
// consume the pool before issuing any I/O (Figure 8).
type Engine struct {
	g     *tile.Graph
	opts  Options
	array storage.Device
	mm    *mem.Manager

	work chan workItem
	wg   sync.WaitGroup
	// chunkBytes is Options.ChunkBytes rounded down to the graph's tuple
	// size (0 disables intra-tile chunking).
	chunkBytes int64
	workers    []workerStat
}

// workItem is one unit of compute: a whole tile, or — when the algorithm
// supports chunked processing — one tuple-aligned chunk of a tile. The
// algorithm travels with the item so concurrent Run teardown can never
// leave a worker reading a stale engine-level field.
type workItem struct {
	alg     algo.Algorithm
	chunked algo.ChunkedAlgorithm // non-nil selects the chunk entry point
	row     uint32
	col     uint32
	data    []byte
	done    *sync.WaitGroup
}

// workerStat is one worker's cumulative accounting, padded so neighboring
// workers never share a cache line on the hot path.
type workerStat struct {
	busyNS atomic.Int64
	chunks atomic.Int64
	_      [112]byte
}

// NewEngine creates an engine over g. The engine owns a storage array on
// the graph's tiles file and a memory manager sized by opts; Close
// releases both.
func NewEngine(g *tile.Graph, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	// Every tile must fit in one segment, or it could never be staged.
	// (The paper's 256 MB segments comfortably exceed its tile sizes on
	// the evaluated graphs.) If the configured segments are too small but
	// the memory budget allows, grow them to the largest tile.
	maxTile := int64(0)
	for i := 0; i < g.Layout.NumTiles(); i++ {
		if _, n := g.TileByteRange(i); n > maxTile {
			maxTile = n
		}
	}
	if maxTile > opts.SegmentSize {
		if 2*maxTile > opts.MemoryBytes {
			return nil, fmt.Errorf("core: largest tile is %d bytes but the memory budget is %d; need at least two tile-sized segments",
				maxTile, opts.MemoryBytes)
		}
		opts.SegmentSize = maxTile
	}
	var array storage.Device
	array, err := storage.NewArray(g.TilesFile(), storage.Options{
		NumDisks:   opts.Disks,
		StripeSize: opts.StripeSize,
		Bandwidth:  opts.Bandwidth,
		Latency:    opts.Latency,
	})
	if err != nil {
		return nil, err
	}
	if opts.HDD != nil && opts.HDD.Fraction > 0 {
		// Tiered store (paper §IX, future work): the trailing fraction of
		// the tiles file lives on simulated hard drives.
		slow, err := storage.NewArray(g.TilesFile(), storage.Options{
			NumDisks:   opts.HDD.Disks,
			StripeSize: opts.StripeSize,
			Bandwidth:  opts.HDD.Bandwidth,
			Latency:    opts.HDD.Latency,
		})
		if err != nil {
			array.Close()
			return nil, err
		}
		boundary := int64(float64(g.DataBytes()) * (1 - opts.HDD.Fraction))
		tiered, err := storage.NewTiered(array, slow, boundary)
		if err != nil {
			array.Close()
			slow.Close()
			return nil, err
		}
		array = tiered
	}
	if opts.Fault != nil {
		faulty, err := storage.NewFaultDevice(array, *opts.Fault)
		if err != nil {
			array.Close()
			return nil, err
		}
		array = faulty
	}
	mman, err := mem.NewManager(opts.MemoryBytes, opts.SegmentSize)
	if err != nil {
		array.Close()
		return nil, err
	}
	e := &Engine{g: g, opts: opts, array: array, mm: mman}
	if cb := opts.ChunkBytes; cb > 0 {
		tb := g.Meta.TupleBytes()
		cb -= cb % tb
		if cb < tb {
			cb = tb
		}
		e.chunkBytes = cb
	}
	e.workers = make([]workerStat, opts.Threads)
	e.work = make(chan workItem, opts.Threads*2)
	for i := 0; i < opts.Threads; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// Close stops the workers and the storage array. The engine must not be
// running.
func (e *Engine) Close() {
	if e.work != nil {
		close(e.work)
		e.wg.Wait()
		e.work = nil
	}
	if e.array != nil {
		e.array.Close()
		e.array = nil
	}
}

// worker is one compute goroutine with a stable ID; chunked kernels key
// their private accumulator slabs off it.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	ws := &e.workers[id]
	for item := range e.work {
		begin := time.Now()
		if item.chunked != nil {
			item.chunked.ProcessTileChunk(id, item.row, item.col, item.data)
		} else {
			item.alg.ProcessTile(item.row, item.col, item.data)
		}
		ws.busyNS.Add(int64(time.Since(begin)))
		ws.chunks.Add(1)
		item.done.Done()
	}
}

// dispatch enqueues tile data as work items: one per tile on the legacy
// path, one per chunkBytes-sized chunk when the algorithm implements
// ChunkedAlgorithm — the load-balancing move that keeps all workers busy
// on a segment dominated by one dense tile. Returns the items enqueued.
func (e *Engine) dispatch(alg algo.Algorithm, chunked algo.ChunkedAlgorithm, ref mem.TileRef, done *sync.WaitGroup) int64 {
	if chunked == nil || e.chunkBytes <= 0 || int64(len(ref.Data)) <= e.chunkBytes {
		done.Add(1)
		e.work <- workItem{alg: alg, chunked: chunked, row: ref.Row, col: ref.Col, data: ref.Data, done: done}
		return 1
	}
	views := ref.Chunks(e.chunkBytes)
	done.Add(len(views))
	for _, v := range views {
		e.work <- workItem{alg: alg, chunked: chunked, row: ref.Row, col: ref.Col, data: v, done: done}
	}
	return int64(len(views))
}

// workerSnapshot copies the cumulative per-worker counters.
func (e *Engine) workerSnapshot() (busy []int64, chunks []int64) {
	busy = make([]int64, len(e.workers))
	chunks = make([]int64, len(e.workers))
	for i := range e.workers {
		busy[i] = e.workers[i].busyNS.Load()
		chunks[i] = e.workers[i].chunks.Load()
	}
	return busy, chunks
}

// Run executes a on the graph until convergence and returns statistics.
//
// ctx cancels the run: it is checked between iterations and inside the
// slide loop's completion wait, so a disconnected client or a daemon
// shutdown stops the run within roughly one I/O completion. A canceled
// Run returns an error wrapping ctx.Err(), releases every segment it
// acquired, and leaves the engine reusable for the next Run.
//
// Errors caused by the algorithm's arguments (Init validation) are
// wrapped in *BadRequestError; everything else is an engine or storage
// failure.
func (e *Engine) Run(ctx context.Context, a algo.Algorithm) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var degrees tile.DegreeSource
	if e.g.Meta.DegreeFormat != "" {
		var err error
		degrees, err = e.g.Degrees()
		if err != nil {
			return nil, err
		}
	}
	actx := &algo.Context{
		NumVertices: e.g.Meta.NumVertices,
		Layout:      e.g.Layout,
		Directed:    e.g.Meta.Directed,
		Half:        e.g.Meta.Half,
		SNB:         e.g.Meta.SNB,
		Degrees:     degrees,
		Workers:     e.opts.Threads,
	}
	if err := a.Init(actx); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	chunked, _ := a.(algo.ChunkedAlgorithm)
	e.mm.Clear()

	stats := &Stats{Algorithm: a.Name()}
	busyStart, chunksStart := e.workerSnapshot()
	startStorage := e.array.Stats()
	fd, hasFaults := e.array.(*storage.FaultDevice)
	var startFaults storage.FaultStats
	if hasFaults {
		startFaults = fd.FaultStats()
	}
	begin := time.Now()

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run canceled before iteration %d: %w", iter, err)
		}
		a.BeforeIteration(iter)
		before := *stats
		beforeIO := e.array.Stats()
		if err := e.runIteration(ctx, a, chunked, stats); err != nil {
			var ie *IntegrityError
			if errors.As(err, &ie) {
				// Integrity failures return the partial stats so the
				// verification and mismatch counters still reach the
				// caller's metrics.
				stats.IntegrityErrors++
				stats.Elapsed = time.Since(begin)
				if hasFaults {
					stats.Faults = fd.FaultStats().Sub(startFaults)
				}
				return stats, err
			}
			return nil, err
		}
		stats.Iterations = iter + 1
		done := a.AfterIteration(iter)
		if e.opts.Trace != nil {
			afterIO := e.array.Stats()
			metrics.WriteEvent(e.opts.Trace, "iteration",
				metrics.KV{Key: "algo", Value: a.Name()},
				metrics.KV{Key: "iter", Value: iter},
				metrics.KV{Key: "tiles", Value: stats.TilesProcessed - before.TilesProcessed},
				metrics.KV{Key: "cached", Value: stats.TilesFromCache - before.TilesFromCache},
				metrics.KV{Key: "skipped", Value: stats.TilesSkipped - before.TilesSkipped},
				metrics.KV{Key: "read_bytes", Value: afterIO.BytesRead - beforeIO.BytesRead},
				metrics.KV{Key: "iowait", Value: (stats.IOWait - before.IOWait).Round(time.Microsecond)},
				metrics.KV{Key: "compute", Value: (stats.Compute - before.Compute).Round(time.Microsecond)},
				metrics.KV{Key: "pool_used", Value: e.mm.PoolUsed()},
				metrics.KV{Key: "pool_cap", Value: e.mm.PoolCap()})
		}
		if done {
			break
		}
	}

	stats.Elapsed = time.Since(begin)
	stats.MetadataBytes = a.MetadataBytes()
	stats.Mem = e.mm.Stats()
	busyEnd, chunksEnd := e.workerSnapshot()
	stats.WorkerBusy = make([]time.Duration, len(busyEnd))
	stats.WorkerChunks = make([]int64, len(chunksEnd))
	var busySum, busyMax time.Duration
	for i := range busyEnd {
		d := time.Duration(busyEnd[i] - busyStart[i])
		stats.WorkerBusy[i] = d
		stats.WorkerChunks[i] = chunksEnd[i] - chunksStart[i]
		busySum += d
		if d > busyMax {
			busyMax = d
		}
	}
	if busySum > 0 && len(busyEnd) > 0 {
		mean := float64(busySum) / float64(len(busyEnd))
		stats.Imbalance = float64(busyMax) / mean
	}
	end := e.array.Stats()
	stats.Storage = end
	stats.BytesRead = end.BytesRead - startStorage.BytesRead
	stats.IORequests = end.Requests - startStorage.Requests
	if hasFaults {
		stats.Faults = fd.FaultStats().Sub(startFaults)
	}
	return stats, nil
}

// runIteration performs one SCR iteration: selective-fetch planning,
// rewind over the cache pool, then the slide over the remaining tiles.
func (e *Engine) runIteration(ctx context.Context, a algo.Algorithm, chunked algo.ChunkedAlgorithm, stats *Stats) error {
	layout := e.g.Layout
	needed := make([]int, 0, layout.NumTiles())
	for i := 0; i < layout.NumTiles(); i++ {
		if e.g.TupleCount(i) == 0 {
			continue
		}
		c := layout.CoordAt(i)
		if e.opts.Selective && !a.NeedTileThisIter(c.Row, c.Col) {
			stats.TilesSkipped++
			continue
		}
		needed = append(needed, i)
	}

	// Rewind (§VI-D): process everything already cached before any I/O.
	inCache := make(map[int]bool)
	if e.opts.Cache != CacheNone && len(e.mm.CachedTiles()) > 0 {
		var done sync.WaitGroup
		cs := time.Now()
		for _, ref := range e.mm.CachedTiles() {
			if !containsSorted(needed, ref.DiskIdx) {
				continue
			}
			inCache[ref.DiskIdx] = true
			stats.Chunks += e.dispatch(a, chunked, ref, &done)
			stats.TilesProcessed++
			stats.TilesFromCache++
		}
		done.Wait()
		stats.Compute += time.Since(cs)
	}

	toFetch := needed[:0:0]
	for _, di := range needed {
		if !inCache[di] {
			toFetch = append(toFetch, di)
		}
	}
	return e.slide(ctx, a, chunked, toFetch, stats)
}

func containsSorted(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case sorted[mid] < x:
			lo = mid + 1
		case sorted[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// plannedTile is one tile's slot within a segment load.
type plannedTile struct {
	diskIdx  int
	row, col uint32
	bufOff   int64
	n        int64
}

// segmentPlan is one segment's worth of tiles plus the contiguous byte
// runs that load them. Gaps between runs come from selective fetching and
// cache hits; all of a plan's runs are submitted as one AIO batch (§V-B:
// "these I/Os would be merged into a single AIO system call").
type segmentPlan struct {
	tiles []plannedTile
	runs  []run
}

type run struct {
	fileOff int64
	bufOff  int64
	n       int64
}

// planSegments packs the tiles to fetch, in disk order, into
// segment-sized plans.
func (e *Engine) planSegments(toFetch []int) []*segmentPlan {
	var plans []*segmentPlan
	cur := &segmentPlan{}
	var used int64
	flush := func() {
		if len(cur.tiles) > 0 {
			plans = append(plans, cur)
			cur = &segmentPlan{}
			used = 0
		}
	}
	for _, di := range toFetch {
		off, n := e.g.TileByteRange(di)
		if used+n > e.opts.SegmentSize {
			flush()
		}
		c := e.g.Layout.CoordAt(di)
		cur.tiles = append(cur.tiles, plannedTile{
			diskIdx: di, row: c.Row, col: c.Col, bufOff: used, n: n,
		})
		if last := len(cur.runs) - 1; last >= 0 &&
			cur.runs[last].fileOff+cur.runs[last].n == off &&
			cur.runs[last].bufOff+cur.runs[last].n == used {
			cur.runs[last].n += n
		} else {
			cur.runs = append(cur.runs, run{fileOff: off, bufOff: used, n: n})
		}
		used += n
	}
	flush()
	return plans
}

// slide is the pipelined stream of Figure 8: one segment loads while the
// other is processed; processed segments retire into the cache pool.
//
// Error handling: a failed or short read is re-submitted with capped
// exponential backoff up to Options.MaxRetries times before it fails the
// run. Every error path drains the in-flight completions it owns and
// releases every acquired segment, so a failed Run leaves the engine
// reusable: the next Run starts with both streaming buffers free and an
// empty completion stream.
//
// Cancellation: ctx is polled before every completion wait, so a cancel
// takes effect within one I/O completion; the teardown path then drains
// and releases exactly as for an I/O error.
func (e *Engine) slide(ctx context.Context, a algo.Algorithm, chunked algo.ChunkedAlgorithm, toFetch []int, stats *Stats) error {
	plans := e.planSegments(toFetch)
	if len(plans) == 0 {
		return nil
	}

	type inflight struct {
		seg      *mem.Segment
		plan     *segmentPlan
		left     int   // outstanding runs
		attempts []int // retry attempts per run
	}
	var (
		queue       []*inflight
		next        int
		outstanding int // async requests in flight across the whole queue
	)

	// fail tears the pipeline down after err: it consumes every
	// completion still owed to us and returns the segments held by the
	// not-yet-retired tail of the queue (entries before head were
	// released when they retired).
	fail := func(head int, err error) error {
		for outstanding > 0 {
			comps := e.array.Wait(1, nil)
			if len(comps) == 0 {
				break // device closed; nothing further will arrive
			}
			outstanding -= len(comps)
		}
		for _, fl := range queue[head:] {
			e.mm.Release(fl.seg)
		}
		return err
	}

	submit := func() error {
		if next >= len(plans) {
			return nil
		}
		s := e.mm.Acquire()
		if s == nil {
			return nil // both buffers busy; the loop resubmits later
		}
		p := plans[next]
		next++
		fl := &inflight{seg: s, plan: p, left: len(p.runs), attempts: make([]int, len(p.runs))}
		qi := len(queue)
		queue = append(queue, fl)
		if e.opts.SyncIO {
			ws := time.Now()
			defer func() { stats.IOWait += time.Since(ws) }()
			for _, r := range p.runs {
				if err := e.readSyncRetry(ctx, r, s, stats); err != nil {
					return err
				}
			}
			fl.left = 0
			return nil
		}
		reqs := make([]*storage.Request, len(p.runs))
		for i, r := range p.runs {
			reqs[i] = &storage.Request{
				Offset: r.fileOff,
				Buf:    s.Buf[r.bufOff : r.bufOff+r.n],
				Tag:    int64(qi)<<32 | int64(i),
			}
		}
		if err := e.array.Submit(reqs); err != nil {
			return err
		}
		outstanding += len(reqs)
		return nil
	}

	// handle consumes one completion, retrying failed and short reads in
	// place (the re-submitted request keeps its tag, so it still counts
	// toward the same segment's outstanding runs).
	handle := func(c storage.Completion) error {
		outstanding--
		qi, ri := int(c.Tag>>32), int(c.Tag&0xffffffff)
		fl := queue[qi]
		r := fl.plan.runs[ri]
		err := c.Err
		if err == nil && int64(c.N) < r.n {
			err = fmt.Errorf("core: short read: %d of %d bytes at offset %d", c.N, r.n, r.fileOff)
		}
		if err == nil {
			fl.left--
			return nil
		}
		stats.IOFailures++
		if fl.attempts[ri] >= e.opts.MaxRetries {
			return fmt.Errorf("core: tile read failed after %d attempts: %w", fl.attempts[ri]+1, err)
		}
		fl.attempts[ri]++
		stats.Retries++
		if err := e.backoff(ctx, fl.attempts[ri]); err != nil {
			return err
		}
		req := &storage.Request{
			Offset: r.fileOff,
			Buf:    fl.seg.Buf[r.bufOff : r.bufOff+r.n],
			Tag:    c.Tag,
		}
		if err := e.array.Submit([]*storage.Request{req}); err != nil {
			return err
		}
		outstanding++
		return nil
	}

	// Prime the double buffer: two loads in flight.
	for i := 0; i < 2; i++ {
		if err := submit(); err != nil {
			return fail(0, err)
		}
	}

	var comps []storage.Completion
	for head := 0; head < len(queue); head++ {
		fl := queue[head]
		ws := time.Now()
		for fl.left > 0 {
			if err := ctx.Err(); err != nil {
				stats.IOWait += time.Since(ws)
				return fail(head, fmt.Errorf("core: run canceled: %w", err))
			}
			comps = e.array.Wait(1, comps[:0])
			if len(comps) == 0 {
				stats.IOWait += time.Since(ws)
				return fail(head, fmt.Errorf("core: storage closed during run"))
			}
			for ci, c := range comps {
				if err := handle(c); err != nil {
					// The rest of this batch was already received off the
					// completion stream; count it before draining.
					outstanding -= len(comps) - ci - 1
					stats.IOWait += time.Since(ws)
					return fail(head, err)
				}
			}
		}
		stats.IOWait += time.Since(ws)

		// Verify the segment's tiles against their recorded checksums
		// before any worker sees the data (no-op on v1 graphs).
		if err := e.verifySegment(fl.plan, fl.seg, stats); err != nil {
			return fail(head, err)
		}

		// Register the loaded tiles and hand them to the workers; kick
		// off the next load first so I/O overlaps compute (the slide).
		refs := make([]mem.TileRef, len(fl.plan.tiles))
		for i, pt := range fl.plan.tiles {
			refs[i] = mem.TileRef{
				DiskIdx: pt.diskIdx, Row: pt.row, Col: pt.col,
				Data: fl.seg.Buf[pt.bufOff : pt.bufOff+pt.n],
			}
		}
		fl.seg.SetTiles(refs)

		if err := submit(); err != nil {
			return fail(head, err)
		}

		var done sync.WaitGroup
		cs := time.Now()
		for _, ref := range refs {
			stats.Chunks += e.dispatch(a, chunked, ref, &done)
		}
		stats.TilesProcessed += int64(len(refs))
		stats.TilesFetched += int64(len(refs))
		done.Wait()
		stats.Compute += time.Since(cs)

		e.retire(a, fl.seg)
		// Retiring freed a buffer; make sure the pipeline stays primed.
		if err := submit(); err != nil {
			return fail(head+1, err)
		}
	}
	return nil
}

// readSyncRetry performs one synchronous run read with the same
// retry/backoff policy the async path uses, polling ctx between
// attempts.
func (e *Engine) readSyncRetry(ctx context.Context, r run, s *mem.Segment, stats *Stats) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: run canceled: %w", err)
		}
		err := e.array.ReadSync(r.fileOff, s.Buf[r.bufOff:r.bufOff+r.n])
		if err == nil {
			return nil
		}
		stats.IOFailures++
		if attempt >= e.opts.MaxRetries {
			return fmt.Errorf("core: tile read failed after %d attempts: %w", attempt+1, err)
		}
		stats.Retries++
		if err := e.backoff(ctx, attempt+1); err != nil {
			return err
		}
	}
}

// backoff pauses before the attempt'th retry (1-based): RetryBackoff
// doubled per attempt, capped at RetryBackoffMax. The sleep is a timer
// select against ctx, so a canceled run never blocks a retry out — an
// unconditional time.Sleep here would stall the whole completion loop
// for up to RetryBackoffMax per retry after the client is gone.
func (e *Engine) backoff(ctx context.Context, attempt int) error {
	d := e.opts.RetryBackoff
	if d <= 0 {
		return ctx.Err()
	}
	for i := 1; i < attempt && d < e.opts.RetryBackoffMax; i++ {
		d *= 2
	}
	if max := e.opts.RetryBackoffMax; max > 0 && d > max {
		d = max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("core: run canceled during retry backoff: %w", ctx.Err())
	}
}

// retire moves a processed segment toward the cache pool according to the
// configured policy.
func (e *Engine) retire(a algo.Algorithm, s *mem.Segment) {
	switch e.opts.Cache {
	case CacheNone:
		e.mm.Release(s)
	case CacheLRU:
		e.makeRoomLRU(segBytes(s))
		e.mm.Retire(s, nil)
	default: // CacheProactive
		keep := func(ref mem.TileRef) bool {
			return a.NeedTileNextIter(ref.Row, ref.Col)
		}
		if !e.mm.WouldFit(segBytes(s)) {
			// Cache analysis happens when the pool is full (Figure 8,
			// time Ti): evict tiles the algorithm will not need again.
			e.mm.Evict(keep)
		}
		e.mm.Retire(s, keep)
	}
}

// makeRoomLRU evicts oldest-first until need bytes fit.
func (e *Engine) makeRoomLRU(need int64) {
	if e.mm.WouldFit(need) {
		return
	}
	freed := int64(0)
	drop := 0
	for _, ref := range e.mm.CachedTiles() {
		if e.mm.PoolUsed()-freed+need <= e.mm.PoolCap() {
			break
		}
		freed += int64(len(ref.Data))
		drop++
	}
	i := 0
	e.mm.Evict(func(mem.TileRef) bool {
		i++
		return i > drop
	})
}

func segBytes(s *mem.Segment) int64 {
	var n int64
	for _, t := range s.Tiles() {
		n += int64(len(t.Data))
	}
	return n
}

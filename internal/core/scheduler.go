package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/storage"
)

// ErrQueueFull is returned by Scheduler.Run when the batch and the
// admission queue are both at capacity; servers surface it as HTTP 429.
var ErrQueueFull = errors.New("core: run queue full")

// ErrSchedulerClosed is returned by Scheduler.Run after Close.
var ErrSchedulerClosed = errors.New("core: scheduler closed")

// Scheduler admits up to Options.MaxConcurrentRuns algorithm runs onto
// one engine and drives them through a *shared* slide-cache-rewind
// sweep: each iteration plans a single tile stream over the union of the
// co-scheduled algorithms' NeedTileThisIter sets, dispatches every
// fetched tile once per interested run, and retires segments under the
// union of their NeedTileNextIter predicates. In a semi-external store
// the tile stream is the scarce resource; sharing one pass across N
// queries is what lets aggregate throughput scale with concurrency
// instead of degrading linearly (FlashGraph's page cache and
// GraphChi-DB's online serving make the same argument).
//
// Runs submitted while a sweep is mid-iteration join at the next
// iteration boundary (the join barrier), so every run still sees each of
// its own iterations over a complete tile pass and results are identical
// to solo execution. Runs beyond MaxConcurrentRuns wait in a bounded
// FIFO queue (context-aware); beyond MaxQueuedRuns they are rejected
// with ErrQueueFull.
//
// A Scheduler owns its engine's sweep: solo Engine.Run must not be
// called concurrently with Scheduler.Run on the same engine.
type Scheduler struct {
	e        *Engine
	maxRuns  int
	maxQueue int

	// PersonalRunHook, when non-nil, observes every underlying run the
	// personalized-query path executes — once per coalesced msbfs (or
	// solo fallback), with the undivided stats, never once per rider.
	// Servers use it to publish engine counters without double counting.
	// Set it before the first RunPersonalBFS; it is not synchronized.
	PersonalRunHook func(st *Stats, err error)

	mu       sync.Mutex
	cond     *sync.Cond // signals sweepLoop exit (Close waits on it)
	pending  []*runState
	queue    []*queuedRun
	active   int // admitted runs: in the batch or in pending
	sweeping bool
	closed   bool

	// Personalized-query coalescing state (see personal.go).
	window     time.Duration
	pmu        sync.Mutex
	curBatch   *personalBatch
	pclosed    bool
	personalWG sync.WaitGroup
}

// queuedRun is one run waiting for admission.
type queuedRun struct {
	r        *runState
	admit    chan struct{} // closed on admission or rejection
	err      error         // set before admit closes when rejected
	admitted bool
	enqueued time.Time
}

// NewScheduler wraps e. Concurrency limits come from the engine's
// options (MaxConcurrentRuns, MaxQueuedRuns).
func NewScheduler(e *Engine) *Scheduler {
	s := &Scheduler{
		e:        e,
		maxRuns:  e.opts.MaxConcurrentRuns,
		maxQueue: e.opts.MaxQueuedRuns,
		window:   e.opts.BatchWindow,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// QueueDepth reports how many runs are currently waiting for admission.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Accepting reports whether the scheduler still admits new runs (false
// once Close has begun). Readiness probes use it to drain traffic ahead
// of shutdown.
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Run executes a through the shared sweep and blocks until it finishes.
// Semantics match Engine.Run: *BadRequestError for Init failures, an
// error wrapping ctx.Err() on cancellation (whether canceled in the
// queue or mid-sweep), partial stats alongside an *IntegrityError, and
// (stats, nil) on success. ErrQueueFull reports admission overflow
// without running anything. A run that leaves the queue without ever
// being admitted — canceled, or rejected by Close — still returns stats
// carrying its QueueWait alongside the error, so queue-latency metrics
// see the waits that never converted into work (dropping them would
// survivorship-bias the histogram toward fast admissions).
func (s *Scheduler) Run(ctx context.Context, a algo.Algorithm) (*Stats, error) {
	r, err := s.e.prepare(ctx, a)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return nil, ErrSchedulerClosed
	case s.active < s.maxRuns:
		s.admitLocked(r)
		s.mu.Unlock()
	case len(s.queue) >= s.maxQueue:
		s.mu.Unlock()
		return nil, ErrQueueFull
	default:
		qr := &queuedRun{r: r, admit: make(chan struct{}), enqueued: time.Now()}
		s.queue = append(s.queue, qr)
		s.mu.Unlock()
		select {
		case <-qr.admit:
			if qr.err != nil {
				r.stats.QueueWait = time.Since(qr.enqueued)
				return r.stats, qr.err
			}
		case <-ctx.Done():
			s.mu.Lock()
			if !qr.admitted {
				for i, q := range s.queue {
					if q == qr {
						s.queue = append(s.queue[:i], s.queue[i+1:]...)
						break
					}
				}
				s.mu.Unlock()
				r.stats.QueueWait = time.Since(qr.enqueued)
				return r.stats, fmt.Errorf("core: run canceled while queued: %w", ctx.Err())
			}
			// Admitted in the race window: the sweep owns the run now and
			// will finish it as canceled at its next poll point.
			s.mu.Unlock()
		}
	}

	<-r.done
	if r.err != nil {
		var ie *IntegrityError
		if errors.As(r.err, &ie) {
			return r.stats, r.err
		}
		return nil, r.err
	}
	return r.stats, nil
}

// admitLocked moves a prepared run into the pending set and makes sure a
// sweep loop is driving. Callers hold s.mu.
func (s *Scheduler) admitLocked(r *runState) {
	r.startExt, r.hasExt = storage.ExtStatsOf(s.e.array)
	s.active++
	s.pending = append(s.pending, r)
	if !s.sweeping {
		s.sweeping = true
		go s.sweepLoop()
	}
}

// Close rejects every queued run, refuses new submissions, and waits for
// the in-flight sweep to drain (admitted runs finish under their own
// contexts; a server shutting down cancels those first). The engine is
// not closed; that stays the caller's job.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, qr := range s.queue {
			qr.err = ErrSchedulerClosed
			close(qr.admit)
		}
		s.queue = nil
	}
	s.mu.Unlock()
	// Reject the open coalescing window and wait out in-flight batched
	// runs before waiting for the sweep itself, so nothing fires into
	// the engine after Close returns.
	s.closePersonal()
	s.mu.Lock()
	for s.sweeping {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// sweepLoop drives shared sweeps until no admitted runs remain. One loop
// goroutine exists at a time; it exits when the batch drains and is
// relaunched by the next admission.
func (s *Scheduler) sweepLoop() {
	e := s.e
	// A fresh batch lifecycle starts with an empty pool, exactly like a
	// solo Run; within the loop's lifetime the warm pool carries over
	// between iterations (and into newly joining runs, which is the
	// point of sharing).
	e.mm.Clear()
	var batch []*runState

	for {
		// Join barrier: drop finished runs, absorb everything admitted
		// since the last iteration. New runs enter only here, so each
		// sees complete iterations and results match solo execution.
		s.mu.Lock()
		live := batch[:0]
		for _, r := range batch {
			if !r.finished {
				live = append(live, r)
			}
		}
		batch = live
		batch = append(batch, s.pending...)
		s.pending = s.pending[:0]
		if len(batch) == 0 {
			s.sweeping = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if len(batch) > 64 {
			// Cannot happen (maxRuns ≤ 64 bounds active), but the
			// interest masks hold 64 bits; fail loudly over corrupting
			// them.
			panic("core: sweep batch exceeds 64 runs")
		}
		s.mu.Unlock()

		// Batch occupancy: every rider records the peak company it kept.
		for _, r := range batch {
			if n := len(batch); n > r.stats.SharedRuns {
				r.stats.SharedRuns = n
			}
		}

		if pollBatch(batch) == 0 {
			s.completeFinished(batch)
			continue
		}

		for _, r := range batch {
			if !r.finished {
				r.alg.BeforeIteration(r.iter)
			}
		}

		err := e.sweepIteration(batch)
		switch {
		case err == nil:
		case errors.Is(err, errBatchDone):
			// Every run finished (canceled) mid-sweep; outcomes are on
			// the runStates already.
			s.completeFinished(batch)
			continue
		default:
			// Sweep-fatal: storage or integrity failure poisons every
			// run that was riding the stream.
			var ie *IntegrityError
			integrity := errors.As(err, &ie)
			for _, r := range batch {
				if r.finished {
					continue
				}
				if integrity {
					r.stats.IntegrityErrors++
				}
				r.finished = true
				r.err = err
			}
			s.completeFinished(batch)
			continue
		}

		for _, r := range batch {
			if r.finished {
				continue
			}
			r.stats.Iterations = r.iter + 1
			converged := r.alg.AfterIteration(r.iter)
			r.iter++
			if converged || r.iter >= e.opts.MaxIterations {
				r.finished = true
			}
		}
		s.completeFinished(batch)
	}
}

// completeFinished seals every finished-but-uncompleted run of the
// batch: final stats, fractional I/O attribution rounded to integers,
// the waiter released, and the freed slot handed to the queue head.
func (s *Scheduler) completeFinished(batch []*runState) {
	for _, r := range batch {
		if !r.finished || r.completed {
			continue
		}
		r.completed = true
		st := r.stats
		st.Elapsed = time.Since(r.began)
		st.MetadataBytes = r.alg.MetadataBytes()
		st.Mem = s.e.mm.Stats()
		st.Storage = s.e.array.Stats()
		st.BytesRead = int64(math.Round(r.bytesFrac))
		st.IORequests = int64(math.Round(r.reqFrac))
		if r.hasExt {
			endExt, _ := storage.ExtStatsOf(s.e.array)
			st.IO = endExt.Sub(r.startExt)
		}

		s.mu.Lock()
		s.active--
		for s.active < s.maxRuns && len(s.queue) > 0 {
			qr := s.queue[0]
			s.queue = s.queue[1:]
			qr.admitted = true
			qr.r.stats.QueueWait = time.Since(qr.enqueued)
			s.admitLocked(qr.r)
			close(qr.admit)
		}
		s.mu.Unlock()
		close(r.done)
	}
}

package delta

import (
	"bytes"
	"testing"

	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

func convertV3(t *testing.T, el *graph.EdgeList, name string) (*tile.Graph, string) {
	t.Helper()
	dir := t.TempDir()
	if !el.Directed {
		el.Canonicalize()
	}
	g, err := tile.Convert(el, dir, name, tile.ConvertOptions{
		TileBits: 2, GroupQ: 2, Symmetry: true, Codec: "v3", Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, tile.BasePath(dir, name)
}

// TestV3MergeMatchesFreshConversionBits pins the strongest v3 merge
// property: merging a tile's delta over its base blocks must produce the
// exact bytes a fresh v3 conversion of the mutated edge list would store
// for that tile (both paths sort and re-encode, so bit identity holds).
func TestV3MergeMatchesFreshConversionBits(t *testing.T) {
	el := undirected(t)
	g, base := convertV3(t, el, "v3mut")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ops := []Op{
		{Src: 9, Dst: 2},
		{Del: true, Src: 10, Dst: 5},
		{Del: true, Src: 7, Dst: 8},
		{Src: 11, Dst: 11},
	}
	if _, err := s.Apply(ops); err != nil {
		t.Fatal(err)
	}
	want := &graph.EdgeList{NumVertices: 12, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 5}, {Src: 1, Dst: 6}, {Src: 2, Dst: 3},
		{Src: 4, Dst: 9}, {Src: 3, Dst: 11}, {Src: 6, Dst: 6},
		{Src: 2, Dst: 9}, {Src: 11, Dst: 11},
	}}
	fresh, _ := convertV3(t, want, "v3fresh")

	v := s.View()
	var buf, fbuf []byte
	for i := 0; i < g.Layout.NumTiles(); i++ {
		data, err := g.ReadTile(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = data
		merged := data
		if td := v.Tile(i); td != nil {
			c := g.Layout.CoordAt(i)
			rb, _ := g.Layout.VertexRange(c.Row)
			cb, _ := g.Layout.VertexRange(c.Col)
			merged, err = td.Merge(data, tile.CodecV3, g.Layout.TileBits, rb, cb)
			if err != nil {
				t.Fatal(err)
			}
		}
		fdata, err := fresh.ReadTile(i, fbuf)
		if err != nil {
			t.Fatal(err)
		}
		fbuf = fdata
		if !bytes.Equal(merged, fdata) {
			t.Fatalf("tile %d: merged v3 bytes differ from fresh conversion (%d vs %d bytes)",
				i, len(merged), len(fdata))
		}
	}
	sameEdges(t, effectiveEdges(t, g, v), storedSet(want, true))
}

// TestMergeCachesPerGeneration pins the per-dispatch allocation fix:
// repeated Merge calls on one TileDelta return the same buffer, and the
// pristine base data is never written to.
func TestMergeCachesPerGeneration(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "cache")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply([]Op{{Src: 9, Dst: 2}, {Del: true, Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	merged := 0
	for i := 0; i < g.Layout.NumTiles(); i++ {
		td := v.Tile(i)
		if td == nil {
			continue
		}
		data, err := g.ReadTile(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		pristine := append([]byte(nil), data...)
		c := g.Layout.CoordAt(i)
		rb, _ := g.Layout.VertexRange(c.Row)
		cb, _ := g.Layout.VertexRange(c.Col)
		a, err := td.Merge(data, g.Meta.TupleCodec(), g.Layout.TileBits, rb, cb)
		if err != nil {
			t.Fatal(err)
		}
		b, err := td.Merge(data, g.Meta.TupleCodec(), g.Layout.TileBits, rb, cb)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) > 0 && &a[0] != &b[0] {
			t.Fatalf("tile %d: second Merge reallocated instead of reusing the cache", i)
		}
		if !bytes.Equal(data, pristine) {
			t.Fatalf("tile %d: Merge mutated the pristine base data", i)
		}
		merged++
	}
	if merged == 0 {
		t.Fatal("no delta tiles exercised")
	}

	// A new view generation clones the TileDelta, so its cache starts
	// empty and reflects the new state — stale merges can never leak.
	if _, err := s.Apply([]Op{{Del: true, Src: 2, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	sameEdges(t, effectiveEdges(t, g, s.View()), storedSet(&graph.EdgeList{
		NumVertices: 12, Edges: []graph.Edge{
			{Src: 0, Dst: 5}, {Src: 1, Dst: 6},
			{Src: 4, Dst: 9}, {Src: 5, Dst: 10}, {Src: 7, Dst: 8}, {Src: 3, Dst: 11},
			{Src: 6, Dst: 6}, {Src: 2, Dst: 9},
		}}, true))
}

// TestMergeRejectsTruncatedBase pins the truncation fix: a fixed-width
// base buffer with a trailing partial tuple must surface as corruption,
// not be silently dropped.
func TestMergeRejectsTruncatedBase(t *testing.T) {
	td := &TileDelta{state: map[uint64]bool{key(1, 2): true}}
	td.rebuildIns(tile.CodecSNB, 3)

	base := make([]byte, 4*tile.SNBTupleBytes)
	if _, err := td.Merge(base, tile.CodecSNB, 2, 0, 0); err != nil {
		t.Fatalf("aligned base rejected: %v", err)
	}
	td2 := &TileDelta{state: map[uint64]bool{key(1, 2): true}}
	td2.rebuildIns(tile.CodecSNB, 3)
	if _, err := td2.Merge(base[:len(base)-1], tile.CodecSNB, 2, 0, 0); err == nil {
		t.Fatal("truncated SNB base accepted")
	}
	td3 := &TileDelta{state: map[uint64]bool{key(1, 2): true}}
	td3.rebuildIns(tile.CodecRaw, 3)
	if _, err := td3.Merge(make([]byte, 13), tile.CodecRaw, 2, 0, 0); err == nil {
		t.Fatal("truncated raw base accepted")
	}
	// Corrupt v3 framing must surface too.
	td4 := &TileDelta{state: map[uint64]bool{key(1, 2): true}}
	td4.rebuildIns(tile.CodecV3, 3)
	if _, err := td4.Merge([]byte{0xff, 0x01}, tile.CodecV3, 2, 0, 0); err == nil {
		t.Fatal("corrupt v3 base accepted")
	}
}

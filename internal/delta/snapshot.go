package delta

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/fsutil"
	"github.com/gwu-systems/gstore/internal/tile"
	"github.com/gwu-systems/gstore/internal/wal"
)

// On-disk layout next to a base graph at <base>:
//
//	<base>.wal/<%08d>      — WAL segments (see internal/wal)
//	<base>.delta.<%08d>    — delta snapshot generations; only the
//	                         newest is live, older ones are deleted
//	                         after a successful flush
//
// A snapshot is the full delta state as of one WAL sequence number
// ("upto"): per tile, the sorted tuple keys with their desired
// presence; plus the sparse degree overlay. The whole file is covered
// by a CRC32C trailer and written via atomic rename, so a crash
// mid-flush leaves the previous generation (plus the WAL) intact.
//
// Recovery invariant: state(snapshot.upto) + replay(WAL records with
// seq > upto) == state at crash, for every crash point. Records with
// seq <= upto may remain in the WAL (crash between flush and
// truncation) and are skipped idempotently.

const snapshotMagic = "GSTRDLT1"

// walDir returns the WAL directory for a base graph path.
func walDir(base string) string { return base + ".wal" }

// snapshotPath names generation gen.
func snapshotPath(base string, gen int) string {
	return fmt.Sprintf("%s.delta.%08d", base, gen)
}

// listSnapshots returns the snapshot generations present for base,
// ascending.
func listSnapshots(fsys faultfs.FS, base string) ([]int, error) {
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := name + ".delta."
	var gens []int
	for _, e := range ents {
		var g int
		n := e.Name()
		if len(n) == len(prefix)+8 && n[:len(prefix)] == prefix {
			if _, err := fmt.Sscanf(n[len(prefix):], "%08d", &g); err == nil {
				gens = append(gens, g)
			}
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// encodeSnapshot serializes v (without the trailer).
func encodeSnapshot(v *View) []byte {
	buf := []byte(snapshotMagic)
	var tmp [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(tmp[:], x)
		buf = append(buf, tmp[:8]...)
	}
	u32 := func(x uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], x)
		buf = append(buf, tmp[:4]...)
	}
	u64(v.upto)
	idx := v.TileIndexes()
	u32(uint32(len(idx)))
	for _, di := range idx {
		td := v.tiles[di]
		keys := make([]uint64, 0, len(td.state))
		for k := range td.state {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		u32(uint32(di))
		u32(uint32(len(keys)))
		for _, k := range keys {
			u64(k)
			if td.state[k] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	verts := make([]uint32, 0, len(v.deg))
	for vx := range v.deg {
		verts = append(verts, vx)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	u32(uint32(len(verts)))
	for _, vx := range verts {
		u32(vx)
		u32(uint32(v.deg[vx]))
	}
	return buf
}

// writeSnapshot durably writes generation gen of view v.
func writeSnapshot(fsys faultfs.FS, base string, gen int, v *View) error {
	payload := encodeSnapshot(v)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], tile.Checksum(payload))
	return fsutil.WriteFileFS(fsys, snapshotPath(base, gen), append(payload, tr[:]...), 0o644)
}

// removeSnapshotsBelow deletes generations older than keep.
func removeSnapshotsBelow(fsys faultfs.FS, base string, keep int) error {
	gens, err := listSnapshots(fsys, base)
	if err != nil {
		return err
	}
	removed := false
	for _, g := range gens {
		if g >= keep {
			continue
		}
		if err := fsys.Remove(snapshotPath(base, g)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		dir := filepath.Dir(base)
		return fsutil.SyncDirFS(fsys, dir)
	}
	return nil
}

// parseSnapshot decodes and validates a snapshot file's bytes. g
// supplies the tuple encoding for rebuilding the per-tile insert
// buffers; when nil (structural fsck on an unopenable graph) the
// buffers stay empty.
func parseSnapshot(data []byte, g *tile.Graph) (*View, error) {
	if len(data) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("truncated: %d bytes", len(data))
	}
	payload, tr := data[:len(data)-4], data[len(data)-4:]
	if got, want := tile.Checksum(payload), binary.LittleEndian.Uint32(tr); got != want {
		return nil, fmt.Errorf("crc32c %08x does not match trailer %08x (corrupt snapshot)", got, want)
	}
	if string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("bad magic %q", payload[:len(snapshotMagic)])
	}
	p := payload[len(snapshotMagic):]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("truncated body")
		}
		return nil
	}
	if err := need(12); err != nil {
		return nil, err
	}
	v := &View{
		upto:  binary.LittleEndian.Uint64(p),
		tiles: make(map[int]*TileDelta),
		deg:   make(map[uint32]int32),
	}
	ntiles := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	prevDi := -1
	for t := 0; t < ntiles; t++ {
		if err := need(8); err != nil {
			return nil, err
		}
		di := int(binary.LittleEndian.Uint32(p))
		nkeys := int(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if di <= prevDi {
			return nil, fmt.Errorf("tile indexes not ascending at %d", di)
		}
		prevDi = di
		if g != nil && di >= g.Layout.NumTiles() {
			return nil, fmt.Errorf("tile index %d outside layout (%d tiles)", di, g.Layout.NumTiles())
		}
		td := &TileDelta{state: make(map[uint64]bool, nkeys)}
		var prevKey uint64
		for i := 0; i < nkeys; i++ {
			if err := need(9); err != nil {
				return nil, err
			}
			k := binary.LittleEndian.Uint64(p)
			present := p[8] != 0
			p = p[9:]
			if i > 0 && k <= prevKey {
				return nil, fmt.Errorf("tile %d: keys not ascending", di)
			}
			prevKey = k
			td.state[k] = present
			v.maskedKeys++
			if g != nil {
				src, dst := uint32(k>>32), uint32(k)
				c := g.Layout.CoordAt(di)
				rLo, rHi := g.Layout.VertexRange(c.Row)
				cLo, cHi := g.Layout.VertexRange(c.Col)
				if src < rLo || src >= rHi || dst < cLo || dst >= cHi {
					return nil, fmt.Errorf("tile %d: key (%d,%d) outside tile vertex ranges", di, src, dst)
				}
			}
		}
		if g != nil {
			td.rebuildIns(g.Meta.TupleCodec(), g.Layout.TileWidth()-1)
			v.insTuples += int64(len(td.ins)) / insCodec(g.Meta.TupleCodec()).TupleBytes()
		}
		v.tiles[di] = td
	}
	if err := need(4); err != nil {
		return nil, err
	}
	ndeg := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	prevV := int64(-1)
	for i := 0; i < ndeg; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		vx := binary.LittleEndian.Uint32(p)
		d := int32(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if int64(vx) <= prevV {
			return nil, fmt.Errorf("degree overlay vertices not ascending at %d", vx)
		}
		prevV = int64(vx)
		if g != nil && vx >= g.Meta.NumVertices {
			return nil, fmt.Errorf("degree overlay vertex %d outside graph (%d vertices)", vx, g.Meta.NumVertices)
		}
		v.deg[vx] = d
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after snapshot body", len(p))
	}
	return v, nil
}

// loadNewestSnapshot loads the highest generation for base. It returns
// (nil, 0, nil) when no snapshot exists and the highest generation
// number found (0 if none) so the store continues the sequence. A
// corrupt newest snapshot is an error — snapshots are written
// atomically, so damage means disk corruption, not a crash, and
// silently falling back would resurrect deleted edges.
func loadNewestSnapshot(fsys faultfs.FS, base string, g *tile.Graph) (*View, int, error) {
	gens, err := listSnapshots(fsys, base)
	if err != nil {
		return nil, 0, err
	}
	if len(gens) == 0 {
		return nil, 0, nil
	}
	gen := gens[len(gens)-1]
	data, err := fsys.ReadFile(snapshotPath(base, gen))
	if err != nil {
		return nil, gen, err
	}
	v, err := parseSnapshot(data, g)
	if err != nil {
		return nil, gen, fmt.Errorf("delta: snapshot %s: %w", snapshotPath(base, gen), err)
	}
	return v, gen, nil
}

// WAL record payload: [u64 seq][u32 n] then n × [u8 del][u32 src]
// [u32 dst], little endian.

func encodeRecord(seq uint64, ops []Op) []byte {
	buf := make([]byte, 12+9*len(ops))
	binary.LittleEndian.PutUint64(buf, seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(ops)))
	p := 12
	for _, op := range ops {
		if op.Del {
			buf[p] = 1
		}
		binary.LittleEndian.PutUint32(buf[p+1:], op.Src)
		binary.LittleEndian.PutUint32(buf[p+5:], op.Dst)
		p += 9
	}
	return buf
}

func decodeRecord(payload []byte) (seq uint64, ops []Op, err error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("delta: WAL record of %d bytes is too short", len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload)
	n := int(binary.LittleEndian.Uint32(payload[8:]))
	if len(payload) != 12+9*n {
		return 0, nil, fmt.Errorf("delta: WAL record declares %d ops but carries %d bytes", n, len(payload))
	}
	ops = make([]Op, n)
	p := 12
	for i := range ops {
		ops[i] = Op{
			Del: payload[p] != 0,
			Src: binary.LittleEndian.Uint32(payload[p+1:]),
			Dst: binary.LittleEndian.Uint32(payload[p+5:]),
		}
		p += 9
	}
	return seq, ops, nil
}

// Fsck validates the write-path files next to base offline: every WAL
// segment's record framing and checksums, and every delta snapshot's
// trailer, structure, and (when the base graph opens) key ranges.
// Fatal problems come back as findings in the tile report's style;
// tolerated anomalies (a torn WAL tail, which recovery discards by
// design) come back as notes.
func Fsck(base string) (findings []tile.FsckFinding, notes []string) {
	var g *tile.Graph
	if og, err := tile.Open(base); err == nil {
		g = og
		defer og.Close()
	}

	stats, wfind, err := wal.Check(walDir(base))
	if err != nil {
		findings = append(findings, tile.FsckFinding{Section: "wal", Tile: -1, Detail: err.Error()})
	}
	for _, f := range wfind {
		if f.Fatal {
			findings = append(findings, tile.FsckFinding{Section: "wal", Tile: -1, Detail: f.String()})
		} else {
			notes = append(notes, f.String())
		}
	}
	if stats.Segments > 0 {
		notes = append(notes, fmt.Sprintf("wal: %d segments, %d records", stats.Segments, stats.Records))
	}

	gens, err := listSnapshots(faultfs.OS, base)
	if err != nil {
		findings = append(findings, tile.FsckFinding{Section: "delta", Tile: -1, Detail: err.Error()})
		return findings, notes
	}
	for _, gen := range gens {
		path := snapshotPath(base, gen)
		data, err := os.ReadFile(path)
		if err != nil {
			findings = append(findings, tile.FsckFinding{Section: "delta", Tile: -1,
				Detail: fmt.Sprintf("%s: %v", filepath.Base(path), err)})
			continue
		}
		v, err := parseSnapshot(data, g)
		if err != nil {
			findings = append(findings, tile.FsckFinding{Section: "delta", Tile: -1,
				Detail: fmt.Sprintf("%s: %v", filepath.Base(path), err)})
			continue
		}
		notes = append(notes, fmt.Sprintf("delta: generation %d covers seq %d: %d tiles, %d keys",
			gen, v.upto, v.NumTiles(), v.maskedKeys))
	}
	return findings, notes
}

// Package delta adds a write path to converted G-Store graphs in the
// log-structured style of GraphChi-DB and BigSparse: edge mutations are
// made durable in a write-ahead log, applied to an in-memory delta
// keyed by tile, and periodically flushed to a sorted, checksummed
// delta snapshot next to the base graph. Readers merge base ∪ delta at
// dispatch time — the base tile files are never rewritten, so the
// convert-once read path (checksums, caching, selective fetch) is
// untouched.
//
// Semantics are those of a simple graph layered over the immutable
// base: an insert ensures the edge is present, a delete ensures it is
// absent (masking every base occurrence). The vertex set is fixed at
// conversion time. Mutations become visible to queries at iteration
// boundaries: the engine captures one immutable View per sweep
// iteration, so a kernel never observes a half-applied batch.
package delta

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/fsutil"
	"github.com/gwu-systems/gstore/internal/tile"
	"github.com/gwu-systems/gstore/internal/wal"
)

// Op is one edge mutation. Del false inserts (ensures presence), true
// deletes (ensures absence). Endpoints are full vertex IDs; for
// undirected graphs either orientation may be given.
type Op struct {
	Del      bool
	Src, Dst uint32
}

// key packs a stored tuple's full endpoint IDs.
func key(src, dst uint32) uint64 { return uint64(src)<<32 | uint64(dst) }

// TileDelta is one tile's accumulated mutations: a mask over base
// tuples plus the encoded inserted tuples. Immutable once published in
// a View (the merge cache below is the one internal, mutex-guarded
// exception).
type TileDelta struct {
	// state maps a stored tuple key to its desired presence: true means
	// exactly one occurrence (inserted, or surviving a re-insert after
	// delete), false means zero (every base occurrence masked). Keys
	// absent from the map keep their base multiplicity.
	state map[uint64]bool
	// ins holds the encoded tuples for the present keys, sorted by
	// (src, dst), in the graph's insert encoding (insCodec: the graph's
	// own fixed-width codec, or SNB offsets for a v3 graph).
	ins []byte

	// Merge cache: a delta tile's merged data is identical on every
	// dispatch of a view generation (the TileDelta is immutable and the
	// base tile never changes), so the first Merge result is memoized.
	// cloning for the next generation starts with an empty cache.
	mergeMu   sync.Mutex
	merged    []byte
	mergedFor int // len(baseData)+1 the cache was built from, 0 when empty
}

// insCodec is the encoding of a TileDelta's ins buffer for a graph using
// codec c: v3 inserts are staged as fixed-width SNB offset tuples (the
// offsets always fit — TileBits <= 16) and only block-encoded during
// Merge; fixed-width graphs stage inserts in their own codec.
func insCodec(c tile.Codec) tile.Codec {
	if c == tile.CodecV3 {
		return tile.CodecSNB
	}
	return c
}

// Masked reports whether base occurrences of (src, dst) are suppressed.
// Every key in the delta masks the base: present keys are re-emitted
// exactly once through Ins, which is how "insert" deduplicates a
// multigraph base edge down to the simple-graph semantics.
func (td *TileDelta) Masked(src, dst uint32) bool {
	_, ok := td.state[key(src, dst)]
	return ok
}

// Ins returns the encoded inserted tuples (sorted). Callers must not
// modify the slice.
func (td *TileDelta) Ins() []byte { return td.ins }

// Merge produces the tile's effective data in the graph's codec c: base
// tuples not masked by the delta plus the inserted tuples (appended for
// fixed-width codecs, merged into sorted block order for v3). baseData
// may be nil (a delta-only tile) and is never modified, so pooled cache
// bytes stay pristine. bits is the graph's TileBits (used by the v3
// re-encode; ignored otherwise).
//
// A corrupt base — a trailing partial tuple, or broken v3 block
// structure — is surfaced as an error instead of being silently dropped,
// matching what tile.DecodeTuples rejects.
//
// The result is memoized: a view's TileDelta is immutable and the base
// tile's bytes never change, so every dispatch of a view generation
// returns the same buffer without re-merging. Callers must treat the
// returned slice as read-only.
func (td *TileDelta) Merge(baseData []byte, c tile.Codec, bits uint, rowBase, colBase uint32) ([]byte, error) {
	td.mergeMu.Lock()
	defer td.mergeMu.Unlock()
	if td.mergedFor == len(baseData)+1 {
		return td.merged, nil
	}
	out, err := td.mergeLocked(baseData, c, bits, rowBase, colBase)
	if err != nil {
		return nil, err
	}
	// The guard is len(baseData)+1 so the zero value (0) never matches,
	// even for an empty base.
	td.merged, td.mergedFor = out, len(baseData)+1
	return out, nil
}

// mergeKeyPool recycles the v3 merge path's packed-key scratch across
// tiles and views: the keys are only an intermediate representation
// (AppendV3 copies them into the encoded result), so the slice can be
// reused as soon as one merge finishes. Capacity-capped on return so a
// single huge tile cannot pin its scratch forever.
var mergeKeyPool = sync.Pool{New: func() any { return new([]uint32) }}

const maxPooledMergeKeys = 1 << 21 // 8 MiB of uint32 scratch

func (td *TileDelta) mergeLocked(baseData []byte, c tile.Codec, bits uint, rowBase, colBase uint32) ([]byte, error) {
	if c == tile.CodecV3 {
		// Decode base and inserts to packed offset keys, drop masked base
		// tuples, and re-encode; AppendV3 restores sorted block order.
		kp := mergeKeyPool.Get().(*[]uint32)
		keys := (*kp)[:0]
		if want := int(int64(len(baseData)/2) + int64(len(td.ins)/tile.SNBTupleBytes)); cap(keys) < want {
			keys = make([]uint32, 0, want)
		}
		err := tile.DecodeV3(baseData, rowBase, colBase, func(s, d uint32) {
			if _, ok := td.state[key(s, d)]; ok {
				return
			}
			keys = append(keys, tile.V3Key(s-rowBase, d-colBase, bits))
		})
		if err != nil {
			*kp = keys[:0]
			mergeKeyPool.Put(kp)
			return nil, fmt.Errorf("delta: merge base tile: %w", err)
		}
		for i := 0; i+tile.SNBTupleBytes <= len(td.ins); i += tile.SNBTupleBytes {
			so, do := tile.GetSNB(td.ins[i:])
			keys = append(keys, tile.V3Key(uint32(so), uint32(do), bits))
		}
		out := tile.AppendV3(nil, keys, bits)
		if cap(keys) <= maxPooledMergeKeys {
			*kp = keys[:0]
			mergeKeyPool.Put(kp)
		}
		return out, nil
	}
	tb := int(c.TupleBytes())
	if len(baseData)%tb != 0 {
		return nil, fmt.Errorf("delta: merge base tile: %d bytes is not a whole number of %d-byte tuples (corrupt tile)",
			len(baseData), tb)
	}
	snb := c == tile.CodecSNB
	out := make([]byte, 0, len(baseData)+len(td.ins))
	for i := 0; i+tb <= len(baseData); i += tb {
		var s, d uint32
		if snb {
			so, do := tile.GetSNB(baseData[i:])
			s, d = rowBase+uint32(so), colBase+uint32(do)
		} else {
			s, d = tile.GetRaw(baseData[i:])
		}
		if _, ok := td.state[key(s, d)]; ok {
			continue
		}
		out = append(out, baseData[i:i+tb]...)
	}
	return append(out, td.ins...), nil
}

// rebuildIns regenerates the sorted encoded insert buffer from state. c
// is the graph's codec; the buffer uses insCodec(c).
func (td *TileDelta) rebuildIns(c tile.Codec, widthMask uint32) {
	keys := make([]uint64, 0, len(td.state))
	for k, present := range td.state {
		if present {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ic := insCodec(c)
	tb := int(ic.TupleBytes())
	td.ins = make([]byte, len(keys)*tb)
	for i, k := range keys {
		s, d := uint32(k>>32), uint32(k)
		if ic == tile.CodecSNB {
			tile.PutSNB(td.ins[i*tb:], uint16(s&widthMask), uint16(d&widthMask))
		} else {
			tile.PutRaw(td.ins[i*tb:], s, d)
		}
	}
}

// clone returns a mutable copy (state deep-copied, ins shared until
// rebuilt, merge cache not carried over — the clone is about to change).
func (td *TileDelta) clone() *TileDelta {
	c := &TileDelta{state: make(map[uint64]bool, len(td.state)+1), ins: td.ins}
	for k, v := range td.state {
		c.state[k] = v
	}
	return c
}

// View is an immutable snapshot of the delta layer. The engine captures
// one per sweep iteration and merges it into every dispatched tile.
type View struct {
	upto  uint64 // last WAL sequence number applied
	tiles map[int]*TileDelta
	deg   map[uint32]int32 // net degree change per touched vertex
	// insTuples / maskedKeys summarize the view for stats.
	insTuples  int64
	maskedKeys int64
}

// Upto returns the last WAL sequence number the view covers.
func (v *View) Upto() uint64 { return v.upto }

// Tile returns the delta for disk index di, or nil.
func (v *View) Tile(di int) *TileDelta {
	if v == nil {
		return nil
	}
	return v.tiles[di]
}

// NumTiles reports how many tiles carry delta data.
func (v *View) NumTiles() int {
	if v == nil {
		return 0
	}
	return len(v.tiles)
}

// TileIndexes returns the disk indexes with delta data, ascending.
func (v *View) TileIndexes() []int {
	idx := make([]int, 0, len(v.tiles))
	for di := range v.tiles {
		idx = append(idx, di)
	}
	sort.Ints(idx)
	return idx
}

// Empty reports whether the view carries no mutations at all.
func (v *View) Empty() bool { return v == nil || (len(v.tiles) == 0 && len(v.deg) == 0) }

// Degrees overlays the view's degree changes on a base source. A nil
// base returns nil (the graph carries no degree file).
func (v *View) Degrees(base tile.DegreeSource) tile.DegreeSource {
	if base == nil || v == nil || len(v.deg) == 0 {
		return base
	}
	return &degreeOverlay{base: base, delta: v.deg}
}

type degreeOverlay struct {
	base  tile.DegreeSource
	delta map[uint32]int32
}

func (o *degreeOverlay) Degree(v uint32) uint32 {
	d := int64(o.base.Degree(v)) + int64(o.delta[v])
	if d < 0 {
		return 0 // defensive; Apply keeps deltas consistent with the base
	}
	return uint32(d)
}

func (o *degreeOverlay) SizeBytes() int64 {
	return o.base.SizeBytes() + int64(len(o.delta))*8
}

// Options configures a Store.
type Options struct {
	// WALSegmentBytes is the WAL rotation threshold (zero: the wal
	// package default).
	WALSegmentBytes int64
	// FlushEveryOps flushes a delta snapshot automatically after this
	// many applied stored-tuple changes (zero disables auto-flush;
	// callers flush explicitly or on Close).
	FlushEveryOps int64
	// OnFsync observes WAL fsync durations (metrics hook).
	OnFsync func(d time.Duration)
	// FS routes all file operations of the store, its WAL, and its
	// snapshots; nil selects the real filesystem.
	FS faultfs.FS
}

// Stats is a point-in-time summary of a Store.
type Stats struct {
	Seq             uint64 // last acknowledged WAL sequence number
	WALAppends      uint64 // Append calls acknowledged this process
	WALSegment      int    // current WAL segment number
	Flushes         uint64 // snapshots written this process
	DeltaTiles      int    // tiles carrying delta data
	InsTuples       int64  // inserted tuples across all tiles
	MaskedKeys      int64  // masked (deleted or re-inserted) tuple keys
	ReplaySegments  int    // WAL segments replayed at Open
	ReplayRecords   int    // WAL records replayed at Open
	ReplayOps       int64  // mutations reapplied from the WAL at Open
	ReplayTornBytes int64  // torn WAL tail discarded at Open
}

// Store is the mutable layer over one base graph. Apply is safe for
// concurrent use; reads go through View and never block writers.
type Store struct {
	g    *tile.Graph
	base string
	opts Options
	fs   faultfs.FS

	mu          sync.Mutex // serializes Apply/Flush/Close
	w           *wal.W     // lazily created on first Apply
	seq         uint64
	gen         int // newest snapshot generation on disk
	sinceFlush  int64
	closed      bool
	walAppends  atomic.Uint64
	flushes     atomic.Uint64
	replayStats wal.ReplayStats
	replayOps   int64

	view atomic.Pointer[View]
}

// Open attaches the delta layer to the graph at base (the path passed
// to tile.Open). The newest valid snapshot is loaded and any WAL
// records beyond it are replayed, so every mutation acknowledged before
// a crash is visible again. A graph with no snapshot and no WAL opens
// with an empty view and touches nothing on disk until the first Apply.
func Open(g *tile.Graph, base string, opts Options) (*Store, error) {
	s := &Store{g: g, base: base, opts: opts, fs: faultfs.Default(opts.FS)}
	// A crash mid-flush can strand a half-staged snapshot (*.tmp*); sweep
	// this graph's litter before loading state so it cannot accumulate.
	if _, err := fsutil.RemoveTemps(s.fs, filepath.Dir(base), filepath.Base(base)+"."); err != nil {
		return nil, fmt.Errorf("delta: removing stale temp files for %s: %w", base, err)
	}
	v, gen, err := loadNewestSnapshot(s.fs, base, g)
	if err != nil {
		return nil, err
	}
	s.gen = gen
	if v == nil {
		v = &View{}
	}
	s.seq = v.upto

	// Crash recovery: reapply WAL records past the snapshot horizon.
	st, err := wal.ReplayFS(s.fs, walDir(base), func(payload []byte) error {
		seq, ops, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if seq <= v.upto {
			return nil // already covered by the snapshot
		}
		nv, _, err := s.applyToView(v, ops, seq)
		if err != nil {
			return err
		}
		v = nv
		s.replayOps += int64(len(ops))
		if seq > s.seq {
			s.seq = seq
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("delta: WAL recovery for %s: %w", base, err)
	}
	s.replayStats = st
	s.view.Store(v)
	return s, nil
}

// View returns the current immutable view (never nil).
func (s *Store) View() *View { return s.view.Load() }

// Failed returns the sticky write-path failure poisoning this store's
// WAL, or nil while it is healthy. A failed store rejects every Apply
// (errors.Is(err, wal.ErrFailed)) but keeps serving reads; the owner
// should surface the degradation (read-only mode) rather than retry.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Failed()
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	v := s.View()
	s.mu.Lock()
	st := Stats{
		Seq:             s.seq,
		WALAppends:      s.walAppends.Load(),
		Flushes:         s.flushes.Load(),
		ReplaySegments:  s.replayStats.Segments,
		ReplayRecords:   s.replayStats.Records,
		ReplayOps:       s.replayOps,
		ReplayTornBytes: s.replayStats.TornBytes,
	}
	if s.w != nil {
		st.WALSegment = s.w.Segment()
	}
	s.mu.Unlock()
	st.DeltaTiles = v.NumTiles()
	if v != nil {
		st.InsTuples = v.insTuples
		st.MaskedKeys = v.maskedKeys
	}
	return st
}

// Apply validates ops, makes them durable in the WAL (group-committed
// fsync), applies them to a fresh view, and publishes it. On return the
// batch is crash-safe: a reopened store replays it from the log. The
// returned count is the number of stored-tuple state changes (0 for a
// fully redundant batch — still logged, so acknowledgment is uniform).
func (s *Store) Apply(ops []Op) (changed int, err error) {
	nv := s.g.Meta.NumVertices
	for _, op := range ops {
		if op.Src >= nv || op.Dst >= nv {
			return 0, &BadOpError{Op: op, NumVertices: nv}
		}
	}
	if len(ops) == 0 {
		return 0, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("delta: store closed")
	}
	if s.w == nil {
		w, err := wal.Open(walDir(s.base), wal.Options{
			SegmentBytes: s.opts.WALSegmentBytes,
			OnFsync:      s.opts.OnFsync,
			FS:           s.opts.FS,
		})
		if err != nil {
			return 0, err
		}
		s.w = w
	}
	seq := s.seq + 1
	if err := s.w.Append(encodeRecord(seq, ops)); err != nil {
		return 0, err
	}
	s.walAppends.Add(1)
	s.seq = seq

	cur := s.view.Load()
	next, changed, err := s.applyToView(cur, ops, seq)
	if err != nil {
		// The record is durable but unappliable — only possible for an
		// internal invariant breach, since ops were validated above.
		return 0, err
	}
	s.view.Store(next)
	s.sinceFlush += int64(changed)
	if s.opts.FlushEveryOps > 0 && s.sinceFlush >= s.opts.FlushEveryOps {
		if err := s.flushLocked(); err != nil {
			return changed, fmt.Errorf("delta: auto-flush: %w", err)
		}
	}
	return changed, nil
}

// BadOpError reports a mutation referencing a vertex outside the
// graph's fixed vertex set.
type BadOpError struct {
	Op          Op
	NumVertices uint32
}

func (e *BadOpError) Error() string {
	return fmt.Sprintf("delta: edge (%d, %d) outside the graph's %d vertices (the vertex set is fixed at conversion)",
		e.Op.Src, e.Op.Dst, e.NumVertices)
}

// storedTuples expands one logical mutation into the stored tuples it
// touches, mirroring the converter's forEachStored: half layouts store
// the canonical (min, max) direction once; full undirected layouts
// store both directions (self loops once); directed graphs store the
// edge as given.
func (s *Store) storedTuples(op Op, visit func(di int, src, dst uint32)) {
	layout := s.g.Layout
	src, dst := op.Src, op.Dst
	if layout.Half && src > dst {
		src, dst = dst, src
	}
	visit(layout.DiskIndex(layout.TileOf(src), layout.TileOf(dst)), src, dst)
	if !s.g.Meta.Directed && !layout.Half && src != dst {
		visit(layout.DiskIndex(layout.TileOf(dst), layout.TileOf(src)), dst, src)
	}
}

// applyToView produces a new view with ops applied on top of cur
// (copy-on-write: untouched tiles are shared). changed counts stored
// tuples whose effective count changed.
func (s *Store) applyToView(cur *View, ops []Op, seq uint64) (*View, int, error) {
	next := &View{
		upto:       seq,
		tiles:      make(map[int]*TileDelta, len(cur.tiles)+4),
		deg:        make(map[uint32]int32, len(cur.deg)+4),
		insTuples:  cur.insTuples,
		maskedKeys: cur.maskedKeys,
	}
	for di, td := range cur.tiles {
		next.tiles[di] = td
	}
	for v, d := range cur.deg {
		next.deg[v] = d
	}

	// First pass: find tuple keys entering the delta for the first time;
	// their base multiplicity has to be counted from the base tile.
	newKeys := make(map[int]map[uint64]uint32) // di -> key -> base count
	for _, op := range ops {
		s.storedTuples(op, func(di int, src, dst uint32) {
			if td := next.tiles[di]; td != nil {
				if _, ok := td.state[key(src, dst)]; ok {
					return
				}
			}
			m := newKeys[di]
			if m == nil {
				m = make(map[uint64]uint32)
				newKeys[di] = m
			}
			m[key(src, dst)] = 0
		})
	}
	var buf []byte
	for di, keys := range newKeys {
		if s.g.TupleCount(di) == 0 {
			continue
		}
		data, err := s.g.ReadTile(di, buf)
		if err != nil {
			return nil, 0, fmt.Errorf("delta: counting base occurrences in tile %d: %w", di, err)
		}
		buf = data
		c := s.g.Layout.CoordAt(di)
		rb, _ := s.g.Layout.VertexRange(c.Row)
		cb, _ := s.g.Layout.VertexRange(c.Col)
		if err := tile.DecodeTuples(data, s.g.Meta.TupleCodec(), rb, cb, func(src, dst uint32) {
			k := key(src, dst)
			if n, ok := keys[k]; ok {
				keys[k] = n + 1
			}
		}); err != nil {
			return nil, 0, err
		}
	}

	// Second pass: state transitions with exact degree deltas.
	changed := 0
	touched := make(map[int]bool)
	widthMask := s.g.Layout.TileWidth() - 1
	for _, op := range ops {
		del := op.Del
		s.storedTuples(op, func(di int, src, dst uint32) {
			td := next.tiles[di]
			if td == nil {
				td = &TileDelta{state: make(map[uint64]bool)}
			} else if !touched[di] {
				td = td.clone()
			}
			k := key(src, dst)
			var before int64
			if present, ok := td.state[k]; ok {
				if present {
					before = 1
				}
			} else {
				before = int64(newKeys[di][k])
			}
			var after int64
			if !del {
				after = 1
			}
			if before == after {
				return // redundant mutation: no state change
			}
			if _, ok := td.state[k]; !ok {
				next.maskedKeys++
			}
			td.state[k] = !del
			next.tiles[di] = td
			touched[di] = true
			changed++
			d := int32(after - before)
			next.deg[src] += d
			if s.g.Layout.Half && src != dst {
				next.deg[dst] += d
			}
		})
	}
	for di := range touched {
		td := next.tiles[di]
		oldIns := len(td.ins)
		td.rebuildIns(s.g.Meta.TupleCodec(), widthMask)
		tb := int(insCodec(s.g.Meta.TupleCodec()).TupleBytes())
		next.insTuples += int64(len(td.ins)/tb) - int64(oldIns/tb)
		// A tile whose delta degenerated to "nothing masked, nothing
		// inserted" could be dropped, but a mask entry with zero base
		// occurrences is harmless and keeping it keeps accounting simple.
	}
	// Drop zero entries from the degree overlay so it stays sparse.
	for v, d := range next.deg {
		if d == 0 {
			delete(next.deg, v)
		}
	}
	return next, changed, nil
}

// Flush writes the current view to a new snapshot generation, rotates
// the WAL, and deletes the covered segments and older snapshots. A
// no-op when the view is empty and nothing was ever logged.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("delta: store closed")
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	v := s.view.Load()
	if v.Empty() && s.w == nil {
		return nil
	}
	if err := writeSnapshot(s.fs, s.base, s.gen+1, v); err != nil {
		return err
	}
	if err := s.fs.CrashPoint("delta.flush.after-snapshot"); err != nil {
		return err
	}
	s.gen++
	s.flushes.Add(1)
	s.sinceFlush = 0
	if s.w != nil {
		newSeg, err := s.w.Rotate()
		if err != nil {
			return err
		}
		if err := s.fs.CrashPoint("delta.flush.after-rotate"); err != nil {
			return err
		}
		if err := s.w.TruncateBefore(newSeg); err != nil {
			return err
		}
		if err := s.fs.CrashPoint("delta.flush.after-truncate"); err != nil {
			return err
		}
	}
	return removeSnapshotsBelow(s.fs, s.base, s.gen)
}

// Close flushes (making WAL replay on next open a no-op) and releases
// the WAL. The WAL is released even when the flush fails — a poisoned
// or crashing store must not leak its segment descriptor — and the
// flush error wins.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	ferr := s.flushLocked()
	if s.w != nil {
		cerr := s.w.Close()
		s.w = nil
		if ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

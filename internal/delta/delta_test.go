package delta

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/tile"
)

// convert builds a small converted graph in a temp dir.
func convert(t *testing.T, el *graph.EdgeList, name string) (*tile.Graph, string) {
	t.Helper()
	dir := t.TempDir()
	if !el.Directed {
		el.Canonicalize()
	}
	g, err := tile.Convert(el, dir, name, tile.ConvertOptions{
		TileBits: 2, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, tile.BasePath(dir, name)
}

func undirected(t *testing.T) *graph.EdgeList {
	return &graph.EdgeList{
		NumVertices: 12,
		Directed:    false,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 5}, {Src: 1, Dst: 6}, {Src: 2, Dst: 3},
			{Src: 4, Dst: 9}, {Src: 5, Dst: 10}, {Src: 7, Dst: 8}, {Src: 3, Dst: 11},
			{Src: 6, Dst: 6},
		},
	}
}

// effectiveEdges decodes base ∪ delta into a multiset of stored tuples.
func effectiveEdges(t *testing.T, g *tile.Graph, v *View) map[uint64]int {
	t.Helper()
	out := make(map[uint64]int)
	var buf []byte
	for i := 0; i < g.Layout.NumTiles(); i++ {
		data, err := g.ReadTile(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = data
		c := g.Layout.CoordAt(i)
		rb, _ := g.Layout.VertexRange(c.Row)
		cb, _ := g.Layout.VertexRange(c.Col)
		eff := data
		if td := v.Tile(i); td != nil {
			var err error
			eff, err = td.Merge(data, g.Meta.TupleCodec(), g.Layout.TileBits, rb, cb)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := tile.DecodeTuples(eff, g.Meta.TupleCodec(), rb, cb, func(s, d uint32) {
			out[key(s, d)]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// storedSet converts a (canonicalized) edge list into the stored-tuple
// multiset a fresh conversion would produce.
func storedSet(el *graph.EdgeList, half bool) map[uint64]int {
	out := make(map[uint64]int)
	for _, e := range el.Edges {
		s, d := e.Src, e.Dst
		if half && s > d {
			s, d = d, s
		}
		out[key(s, d)]++
	}
	return out
}

func sameEdges(t *testing.T, got, want map[uint64]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("tuple (%d,%d): got %d, want %d", uint32(k>>32), uint32(k), got[k], n)
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Fatalf("extra tuple (%d,%d) ×%d", uint32(k>>32), uint32(k), n)
		}
	}
}

func TestApplyMergeMatchesFreshConversion(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "mut")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ops := []Op{
		{Src: 9, Dst: 2},             // insert, new tile territory
		{Src: 1, Dst: 0},             // redundant insert (either orientation)
		{Del: true, Src: 10, Dst: 5}, // delete an existing edge, mirrored orientation
		{Del: true, Src: 7, Dst: 8},  // delete
		{Src: 11, Dst: 11},           // self loop insert
	}
	changed, err := s.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 4 { // the redundant insert changes nothing
		t.Fatalf("changed = %d, want 4", changed)
	}

	want := &graph.EdgeList{NumVertices: 12, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 5}, {Src: 1, Dst: 6}, {Src: 2, Dst: 3},
		{Src: 4, Dst: 9}, {Src: 3, Dst: 11}, {Src: 6, Dst: 6},
		{Src: 2, Dst: 9}, {Src: 11, Dst: 11},
	}}
	sameEdges(t, effectiveEdges(t, g, s.View()), storedSet(want, true))
}

func TestDegreeOverlayMatchesRecount(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "deg")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply([]Op{
		{Src: 9, Dst: 2}, {Del: true, Src: 0, Dst: 1}, {Src: 11, Dst: 0},
	}); err != nil {
		t.Fatal(err)
	}
	baseDeg, err := g.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	merged := s.View().Degrees(baseDeg)

	// Recount from the effective tuples with the fsck convention.
	want := make([]uint32, g.Meta.NumVertices)
	for k, n := range effectiveEdges(t, g, s.View()) {
		src, dst := uint32(k>>32), uint32(k)
		want[src] += uint32(n)
		if g.Layout.Half && src != dst {
			want[dst] += uint32(n)
		}
	}
	for v := uint32(0); v < g.Meta.NumVertices; v++ {
		if got := merged.Degree(v); got != want[v] {
			t.Fatalf("vertex %d: overlay degree %d, recount %d", v, got, want[v])
		}
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "crash")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 9, Dst: 2}, {Del: true, Src: 7, Dst: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 4, Dst: 4}}); err != nil {
		t.Fatal(err)
	}
	want := effectiveEdges(t, g, s.View())
	// "Crash": drop the store without Flush/Close. The WAL alone must
	// reconstruct the view.
	s2, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayRecords != 2 || st.ReplayOps != 3 {
		t.Fatalf("replay stats %+v, want 2 records / 3 ops", st)
	}
	if st.Seq != 2 {
		t.Fatalf("recovered seq %d, want 2", st.Seq)
	}
	sameEdges(t, effectiveEdges(t, g, s2.View()), want)
}

func TestFlushSnapshotRotatesAndTruncates(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "flush")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 9, Dst: 2}, {Del: true, Src: 2, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := effectiveEdges(t, g, s.View())
	// More mutations after the flush land in the post-rotation WAL.
	if _, err := s.Apply([]Op{{Src: 10, Dst: 0}}); err != nil {
		t.Fatal(err)
	}
	want2 := effectiveEdges(t, g, s.View())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	gens, err := listSnapshots(faultfs.OS, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 2 {
		t.Fatalf("snapshot generations = %v, want [2]", gens)
	}

	// Reopen: snapshot alone must cover everything (WAL truncated).
	s2, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.ReplayOps != 0 {
		t.Fatalf("expected no WAL replay after flush, got %+v", st)
	}
	sameEdges(t, effectiveEdges(t, g, s2.View()), want2)
	_ = want
}

func TestCrashBetweenFlushAndTruncationIsIdempotent(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "idem")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 9, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	// Save the WAL segments, flush (which truncates them), then restore
	// — simulating a crash after the snapshot rename but before
	// truncation. Replay must skip the already-covered records.
	wdir := walDir(base)
	saved := map[string][]byte{}
	ents, err := os.ReadDir(wdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(wdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		saved[e.Name()] = data
	}
	want := effectiveEdges(t, g, s.View())
	if err := s.Close(); err != nil { // Close flushes + truncates
		t.Fatal(err)
	}
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(wdir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.ReplayOps != 0 {
		t.Fatalf("stale WAL records were reapplied: %+v", st)
	}
	sameEdges(t, effectiveEdges(t, g, s2.View()), want)
}

func TestBadOpRejected(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "bad")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply([]Op{{Src: 0, Dst: 12}}); err == nil {
		t.Fatal("expected BadOpError for out-of-range vertex")
	} else if _, ok := err.(*BadOpError); !ok {
		t.Fatalf("got %T (%v), want *BadOpError", err, err)
	}
	if st := s.Stats(); st.WALAppends != 0 {
		t.Fatalf("rejected batch reached the WAL: %+v", st)
	}
}

func TestFsckCleanAndCorrupt(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "fsck")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 9, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Src: 10, Dst: 0}}); err != nil {
		t.Fatal(err)
	}
	findings, _ := Fsck(base)
	if len(findings) != 0 {
		t.Fatalf("clean store has findings: %v", findings)
	}
	// Corrupt the snapshot.
	path := snapshotPath(base, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	findings, _ = Fsck(base)
	if len(findings) == 0 {
		t.Fatal("corrupt snapshot not reported")
	}
	if _, err := Open(g, base, Options{}); err == nil {
		t.Fatal("opening a store with a corrupt newest snapshot should fail")
	}
}

func TestDirectedStore(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 8, Directed: true,
		Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 4}},
	}
	dir := t.TempDir()
	g, err := tile.Convert(el, dir, "dir", tile.ConvertOptions{
		TileBits: 2, GroupQ: 2, SNB: true, Degrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	base := tile.BasePath(dir, "dir")
	s, err := Open(g, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply([]Op{{Src: 4, Dst: 3}, {Del: true, Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	want := &graph.EdgeList{NumVertices: 8, Directed: true, Edges: []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	}}
	sameEdges(t, effectiveEdges(t, g, s.View()), storedSet(want, false))
}

package delta

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/tile"
	"github.com/gwu-systems/gstore/internal/wal"
)

// faultScript is the mutation script shared by the fault-injection
// tests: same shape as the crash-matrix script (inserts, deletes, a
// delete-then-reinsert) so the recovery oracle covers all op kinds.
var faultScript = []Op{
	{Src: 9, Dst: 2},
	{Del: true, Src: 7, Dst: 8},
	{Src: 11, Dst: 11},
	{Del: true, Src: 0, Dst: 1},
	{Src: 0, Dst: 1},
	{Src: 8, Dst: 3},
	{Del: true, Src: 6, Dst: 6},
	{Src: 10, Dst: 0},
	{Del: true, Src: 2, Dst: 3},
	{Src: 5, Dst: 7},
}

// expectedAfter returns the stored-tuple multiset once the first acked
// mutations of faultScript are applied over the base graph.
func expectedAfter(t *testing.T, acked int) map[uint64]int {
	t.Helper()
	want := storedSet(undirected(t), true)
	for _, op := range faultScript[:acked] {
		a, b := op.Src, op.Dst
		if a > b {
			a, b = b, a
		}
		if op.Del {
			want[key(a, b)] = 0
		} else {
			want[key(a, b)] = 1
		}
	}
	return want
}

// assertNoTempLitter fails if the graph directory holds any in-flight
// temp file for this graph after recovery.
func assertNoTempLitter(t *testing.T, base, label string) {
	t.Helper()
	dir := filepath.Dir(base)
	prefix := filepath.Base(base) + "."
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) && strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("%s: temp litter %q after recovery", label, e.Name())
		}
	}
}

// recoverAndVerify reopens the graph from disk through the real
// filesystem after a simulated crash and proves the invariant: fsck
// clean, acked mutations present exactly, no temp litter, and the store
// accepts new writes.
func recoverAndVerify(t *testing.T, base string, acked int, label string) {
	t.Helper()
	if findings, _ := Fsck(base); len(findings) != 0 {
		t.Fatalf("%s: fsck on crashed state: %v", label, findings)
	}
	g2, err := tile.Open(base)
	if err != nil {
		t.Fatalf("%s: reopen base: %v", label, err)
	}
	defer g2.Close()
	s2, err := Open(g2, base, Options{})
	if err != nil {
		t.Fatalf("%s: recovery open: %v", label, err)
	}
	defer s2.Close()
	assertNoTempLitter(t, base, label)
	sameEdges(t, effectiveEdges(t, g2, s2.View()), expectedAfter(t, acked))
	if _, err := s2.Apply([]Op{{Src: 4, Dst: 8}}); err != nil {
		t.Fatalf("%s: write after recovery: %v", label, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", label, err)
	}
	if findings, notes := Fsck(base); len(findings) != 0 {
		t.Fatalf("%s: fsck after recovery: %v (notes %v)", label, findings, notes)
	}
}

// TestNamedCrashPointRecovery kills the writer at every named crash
// point of the write path — mid-append, around the atomic snapshot
// commit, and between the flush's snapshot/rotate/truncate steps — via
// FaultFS crash simulation (open files torn back to their synced
// prefix), then proves recovery from the torn on-disk state.
func TestNamedCrashPointRecovery(t *testing.T) {
	points := []struct {
		name      string
		flushOnly bool // fires during Flush, not Apply
	}{
		{"wal.append.after-write", false},
		{"fsutil.commit.after-sync", true},
		{"fsutil.commit.after-rename", true},
		{"delta.flush.after-snapshot", true},
		{"delta.flush.after-rotate", true},
		{"delta.flush.after-truncate", true},
	}
	for pi, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			el := undirected(t)
			g, base := convert(t, el, "fault")
			fs := faultfs.New(int64(31 + pi))
			s, err := Open(g, base, Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}

			// A healthy prefix before the fault arms, so recovery has to
			// distinguish acked history from the crashed suffix.
			const healthy = 4
			acked := 0
			for _, op := range faultScript[:healthy] {
				if _, err := s.Apply([]Op{op}); err != nil {
					t.Fatalf("healthy apply %d: %v", acked, err)
				}
				acked++
			}
			fs.Arm(faultfs.Rule{Op: faultfs.OpCrashPoint, PathContains: pt.name, Crash: true})

			crashed := false
			for _, op := range faultScript[healthy:] {
				if _, err := s.Apply([]Op{op}); err != nil {
					crashed = true
					break
				}
				acked++
			}
			if !crashed {
				if !pt.flushOnly {
					t.Fatalf("crash point %s never fired during applies", pt.name)
				}
				if err := s.Flush(); err == nil {
					t.Fatalf("crash point %s never fired during flush", pt.name)
				}
				crashed = true
			}
			if !fs.Crashed() {
				t.Fatalf("apply/flush errored without the simulated crash firing")
			}
			// The "process" is dead: the store is abandoned, not closed.
			g.Close()

			// Flush-path crashes happen after every mutation was acked; an
			// append-path crash loses exactly the in-flight op.
			recoverAndVerify(t, base, acked, pt.name)
		})
	}
}

// TestFsyncFailureMatrix injects a WAL fsync failure at every append
// index of the script and proves, for each: the failing Apply and all
// later ones error with wal.ErrFailed (sticky — degraded, never a
// silent retry), and recovery surfaces exactly the acked prefix.
func TestFsyncFailureMatrix(t *testing.T) {
	for k := 1; k <= len(faultScript); k++ {
		t.Run(fmt.Sprintf("fsync-%02d", k), func(t *testing.T) {
			el := undirected(t)
			g, base := convert(t, el, "fault")
			fs := faultfs.New(int64(100 + k))
			fs.Arm(faultfs.Rule{Op: faultfs.OpSync, PathContains: ".wal", AfterN: k})
			s, err := Open(g, base, Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}

			acked := 0
			var ferr error
			for _, op := range faultScript {
				if _, err := s.Apply([]Op{op}); err != nil {
					ferr = err
					break
				}
				acked++
			}
			if acked != k-1 {
				t.Fatalf("acked %d ops before the injected fsync failure, want %d", acked, k-1)
			}
			if !errors.Is(ferr, wal.ErrFailed) {
				t.Fatalf("apply under failed fsync = %v, want wrapped wal.ErrFailed", ferr)
			}
			// Sticky: the store is poisoned, further writes refuse up front.
			if s.Failed() == nil {
				t.Fatal("store must report failed after fsync failure")
			}
			if _, err := s.Apply([]Op{{Src: 1, Dst: 2}}); !errors.Is(err, wal.ErrFailed) {
				t.Fatalf("apply on poisoned store = %v, want ErrFailed", err)
			}
			g.Close()

			recoverAndVerify(t, base, acked, fmt.Sprintf("fsync-%02d", k))
		})
	}
}

package delta

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/gwu-systems/gstore/internal/tile"
)

// frameBoundaries returns the byte offsets of every complete-record
// boundary in one WAL segment, starting with 0.
func frameBoundaries(data []byte) []int64 {
	bounds := []int64{0}
	off := int64(0)
	for off+8 <= int64(len(data)) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || off+8+n > int64(len(data)) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// copyGraphDir clones every file of a converted graph (and its WAL
// directory) into dst, so each crash case mutates its own copy.
func copyGraphDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp := filepath.Join(src, e.Name())
		dp := filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyGraphDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCrashPointMatrix kills a writer (by snapshotting its on-disk
// state) at every record and rotation boundary of the WAL, plus torn
// mid-record variants, and proves the recovery invariant at each point:
// every acked mutation survives reopen, unacked tail bytes are
// discarded, fsck reports no fatal problem, and the recovered store
// accepts new writes.
func TestWALCrashPointMatrix(t *testing.T) {
	el := undirected(t)
	g, base := convert(t, el, "crash")

	// One op per batch so acked-record count maps 1:1 onto the script
	// prefix; a 64-byte segment limit forces a rotation every ~2 records,
	// putting rotation boundaries inside the matrix.
	script := []Op{
		{Src: 9, Dst: 2},
		{Del: true, Src: 7, Dst: 8},
		{Src: 11, Dst: 11},
		{Del: true, Src: 0, Dst: 1},
		{Src: 0, Dst: 1}, // delete-then-reinsert
		{Src: 8, Dst: 3},
		{Del: true, Src: 6, Dst: 6},
		{Src: 10, Dst: 0},
		{Del: true, Src: 2, Dst: 3},
		{Src: 5, Dst: 7},
	}
	s, err := Open(g, base, Options{WALSegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range script {
		if _, err := s.Apply([]Op{op}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	// The writer "crashes" here: the store is never closed or flushed, so
	// the WAL is the only durable record of the mutations.

	wdir := walDir(base)
	names, err := os.ReadDir(wdir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range names {
		segs = append(segs, e.Name())
	}
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("expected several WAL segments for the rotation cases, got %v", segs)
	}
	segData := make([][]byte, len(segs))
	recordsBefore := make([]int, len(segs)) // complete records in segments < i
	total := 0
	for i, name := range segs {
		data, err := os.ReadFile(filepath.Join(wdir, name))
		if err != nil {
			t.Fatal(err)
		}
		segData[i] = data
		recordsBefore[i] = total
		total += len(frameBoundaries(data)) - 1
	}
	if total != len(script) {
		t.Fatalf("WAL holds %d records, want %d", total, len(script))
	}

	// expected returns the stored-tuple multiset after the first acked
	// mutations of the script (insert → exactly one, delete → zero).
	expected := func(acked int) map[uint64]int {
		want := storedSet(undirected(t), true)
		for _, op := range script[:acked] {
			a, b := op.Src, op.Dst
			if a > b {
				a, b = b, a
			}
			if op.Del {
				want[key(a, b)] = 0
			} else {
				want[key(a, b)] = 1
			}
		}
		return want
	}

	srcDir := filepath.Dir(base)
	root := t.TempDir()
	caseIdx := 0
	runCase := func(si int, truncTo int64, acked int, label string) {
		caseIdx++
		caseDir := filepath.Join(root, fmt.Sprintf("c%03d", caseIdx))
		copyGraphDir(t, srcDir, caseDir)
		base2 := filepath.Join(caseDir, filepath.Base(base))
		wdir2 := walDir(base2)
		// Crash semantics: segments after si were never created (rotation
		// not reached), and segment si stops at truncTo.
		for _, name := range segs[si+1:] {
			if err := os.Remove(filepath.Join(wdir2, name)); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.Truncate(filepath.Join(wdir2, segs[si]), truncTo); err != nil {
			t.Fatal(err)
		}

		if findings, _ := Fsck(base2); len(findings) != 0 {
			t.Fatalf("%s: fsck on crashed state: %v", label, findings)
		}
		g2, err := tile.Open(base2)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		defer g2.Close()
		s2, err := Open(g2, base2, Options{})
		if err != nil {
			t.Fatalf("%s: recovery open: %v", label, err)
		}
		defer s2.Close()
		st := s2.Stats()
		if st.ReplayRecords != acked {
			t.Fatalf("%s: replayed %d records, want %d (torn %d bytes)",
				label, st.ReplayRecords, acked, st.ReplayTornBytes)
		}
		sameEdges(t, effectiveEdges(t, g2, s2.View()), expected(acked))
		// The recovered store must keep accepting writes (the first Apply
		// truncates any torn tail before appending).
		if _, err := s2.Apply([]Op{{Src: 4, Dst: 8}}); err != nil {
			t.Fatalf("%s: write after recovery: %v", label, err)
		}
		if findings, notes := Fsck(base2); len(findings) != 0 {
			t.Fatalf("%s: fsck after recovery+write: %v (notes %v)", label, findings, notes)
		}
	}

	for si := range segs {
		bounds := frameBoundaries(segData[si])
		segEnd := int64(len(segData[si]))
		for bi, b := range bounds {
			acked := recordsBefore[si] + bi
			// Clean crash exactly at a record (or rotation) boundary.
			runCase(si, b, acked, fmt.Sprintf("seg %d boundary %d clean", si, bi))
			if b == segEnd {
				continue
			}
			// Torn crashes inside the next record: mid-header and
			// mid-payload. The partial record was never acked, so recovery
			// must discard it.
			for _, extra := range []int64{1, 6, 12} {
				if v := b + extra; v < segEnd {
					runCase(si, v, acked, fmt.Sprintf("seg %d boundary %d torn+%d", si, bi, extra))
				}
			}
		}
	}
	if caseIdx < 20 {
		t.Fatalf("matrix exercised only %d crash points", caseIdx)
	}
}

package xstream

import (
	"math"
)

// BFS is breadth-first search in the scatter–gather model: frontier
// vertices scatter depth updates along their edges; gather installs the
// first depth a vertex receives.
type BFS struct {
	Root  uint32
	depth []int32
	level int32
	added int64
}

// NewBFS returns a BFS program rooted at root.
func NewBFS(root uint32) *BFS { return &BFS{Root: root} }

// Name implements Program.
func (b *BFS) Name() string { return "bfs" }

// Init implements Program.
func (b *BFS) Init(n uint32) {
	b.depth = make([]int32, n)
	for i := range b.depth {
		b.depth[i] = -1
	}
	if b.Root < n {
		b.depth[b.Root] = 0
	}
}

// Depths returns the depths after the run.
func (b *BFS) Depths() []int32 { return b.depth }

// BeforeIteration implements Program.
func (b *BFS) BeforeIteration(iter int) {
	b.level = int32(iter)
	b.added = 0
}

// Scatter implements Program.
func (b *BFS) Scatter(src, dst uint32) (uint64, bool) {
	if b.depth[src] == b.level && b.depth[dst] == -1 {
		return uint64(b.level + 1), true
	}
	return 0, false
}

// Gather implements Program.
func (b *BFS) Gather(dst uint32, value uint64) {
	if b.depth[dst] == -1 {
		b.depth[dst] = int32(value)
		b.added++
	}
}

// AfterIteration implements Program.
func (b *BFS) AfterIteration(int) bool { return b.added == 0 }

// ValueBytes implements Program: depths travel as 4-byte integers.
func (b *BFS) ValueBytes() int { return 4 }

// PageRank is the scatter–gather PageRank: every edge carries its
// source's rank share every iteration, so X-Stream's update stream is as
// large as the edge stream — the paper's motivating I/O pathology.
type PageRank struct {
	Iterations int
	degrees    []uint32
	rank       []float64
	accum      []float64
	share      []float64
	dangling   float64
}

// NewPageRank builds the program; degrees must hold the out-degree of
// every vertex (undirected: full degree).
func NewPageRank(iterations int, degrees []uint32) *PageRank {
	return &PageRank{Iterations: iterations, degrees: degrees}
}

// Name implements Program.
func (p *PageRank) Name() string { return "pagerank" }

// Init implements Program.
func (p *PageRank) Init(n uint32) {
	p.rank = make([]float64, n)
	p.accum = make([]float64, n)
	p.share = make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range p.rank {
		p.rank[i] = inv
	}
}

// Ranks returns the rank vector.
func (p *PageRank) Ranks() []float64 { return p.rank }

// BeforeIteration implements Program.
func (p *PageRank) BeforeIteration(int) {
	p.dangling = 0
	for v := range p.share {
		d := p.degrees[v]
		if d == 0 {
			p.dangling += p.rank[v]
			p.share[v] = 0
			continue
		}
		p.share[v] = p.rank[v] / float64(d)
	}
	for i := range p.accum {
		p.accum[i] = 0
	}
}

// Scatter implements Program. Rank shares travel as float32, matching
// X-Stream's 4-byte vertex values.
func (p *PageRank) Scatter(src, _ uint32) (uint64, bool) {
	return uint64(math.Float32bits(float32(p.share[src]))), true
}

// Gather implements Program.
func (p *PageRank) Gather(dst uint32, value uint64) {
	p.accum[dst] += float64(math.Float32frombits(uint32(value)))
}

// ValueBytes implements Program.
func (p *PageRank) ValueBytes() int { return 4 }

// AfterIteration implements Program.
func (p *PageRank) AfterIteration(iter int) bool {
	n := float64(len(p.rank))
	base := (1-0.85)/n + 0.85*p.dangling/n
	for v := range p.rank {
		p.rank[v] = base + 0.85*p.accum[v]
	}
	return iter+1 >= p.Iterations
}

// WCC is min-label propagation in scatter–gather form. For weak
// connectivity on directed graphs the caller must materialize both edge
// directions (build the engine from an edge list with Directed=false).
type WCC struct {
	labels  []uint32
	changed int64
}

// NewWCC returns the connected-components program.
func NewWCC() *WCC { return &WCC{} }

// Name implements Program.
func (w *WCC) Name() string { return "wcc" }

// Init implements Program.
func (w *WCC) Init(n uint32) {
	w.labels = make([]uint32, n)
	for i := range w.labels {
		w.labels[i] = uint32(i)
	}
}

// Labels returns the labels after the run.
func (w *WCC) Labels() []uint32 { return w.labels }

// BeforeIteration implements Program.
func (w *WCC) BeforeIteration(int) { w.changed = 0 }

// Scatter implements Program.
func (w *WCC) Scatter(src, dst uint32) (uint64, bool) {
	if w.labels[src] < w.labels[dst] {
		return uint64(w.labels[src]), true
	}
	return 0, false
}

// Gather implements Program.
func (w *WCC) Gather(dst uint32, value uint64) {
	if uint32(value) < w.labels[dst] {
		w.labels[dst] = uint32(value)
		w.changed++
	}
}

// AfterIteration implements Program.
func (w *WCC) AfterIteration(int) bool { return w.changed == 0 }

// ValueBytes implements Program: labels travel as 4-byte integers.
func (w *WCC) ValueBytes() int { return 4 }

package xstream

import (
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func testOpts() Options {
	o := DefaultOptions()
	o.Partitions = 4
	o.StreamBuffer = 4096
	o.Disks = 2
	return o
}

func build(t *testing.T, el *graph.EdgeList, opts Options) *Engine {
	t.Helper()
	e, err := Build(el, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func kron(t *testing.T, scale uint, ef int, seed uint64) *graph.EdgeList {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return el
}

func TestOptionsValidation(t *testing.T) {
	el := kron(t, 6, 4, 1)
	bad := testOpts()
	bad.TupleBytes = 12
	if _, err := Build(el, t.TempDir(), bad); err == nil {
		t.Fatal("tuple width 12 accepted")
	}
}

func TestBuildSizes(t *testing.T) {
	el := kron(t, 8, 4, 2)
	el.Dedup(true)
	e := build(t, el, testOpts())
	// Undirected: both directions materialized.
	if e.NumEdges() != 2*int64(len(el.Edges)) {
		t.Fatalf("NumEdges = %d, want %d", e.NumEdges(), 2*len(el.Edges))
	}
	if e.EdgeFileBytes() != e.NumEdges()*8 {
		t.Fatalf("EdgeFileBytes = %d", e.EdgeFileBytes())
	}
	wide := testOpts()
	wide.TupleBytes = 16
	e2 := build(t, el, wide)
	if e2.EdgeFileBytes() != 2*e.EdgeFileBytes() {
		t.Fatalf("16-byte tuples should double the file: %d vs %d",
			e2.EdgeFileBytes(), e.EdgeFileBytes())
	}
}

func TestBFSMatchesReference(t *testing.T) {
	el := kron(t, 9, 8, 3)
	e := build(t, el, testOpts())
	b := NewBFS(0)
	st, err := e.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.EdgeBytes == 0 || st.Iterations < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBFSWideTuples(t *testing.T) {
	el := kron(t, 8, 4, 4)
	opts := testOpts()
	opts.TupleBytes = 16
	e := build(t, el, opts)
	b := NewBFS(0)
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	el := kron(t, 8, 8, 5)
	e := build(t, el, testOpts())
	iters := 10
	p := NewPageRank(iters, el.OutDegrees())
	st, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != iters {
		t.Fatalf("iterations = %d", st.Iterations)
	}
	// Rank shares travel as float32 (X-Stream's 4-byte vertex values), so
	// the comparison tolerance is float32-sized.
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for v, r := range p.Ranks() {
		if math.Abs(r-want[v]) > 1e-4 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, want[v])
		}
	}
	// The pathology the paper exploits: PageRank's update stream is
	// |E| updates/iteration, as large as the edge stream itself.
	if st.UpdateBytes < st.EdgeBytes {
		t.Fatalf("update I/O (%d) should match edge I/O (%d)", st.UpdateBytes, st.EdgeBytes)
	}
}

func TestWCCMatchesReference(t *testing.T) {
	el := kron(t, 9, 2, 6)
	e := build(t, el, testOpts())
	w := NewWCC()
	if _, err := e.Run(w); err != nil {
		t.Fatal(err)
	}
	want := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}

func TestDirectedBFS(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	e := build(t, el, testOpts())
	if e.NumEdges() != int64(len(el.Edges)) {
		t.Fatalf("directed NumEdges = %d, want %d", e.NumEdges(), len(el.Edges))
	}
	b := NewBFS(0)
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestEdgeBytesPerIteration(t *testing.T) {
	el := kron(t, 8, 4, 8)
	e := build(t, el, testOpts())
	iters := 4
	p := NewPageRank(iters, el.OutDegrees())
	st, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// X-Stream reads the full edge file every iteration.
	if st.EdgeBytes != int64(iters)*e.EdgeFileBytes() {
		t.Fatalf("EdgeBytes = %d, want %d", st.EdgeBytes, int64(iters)*e.EdgeFileBytes())
	}
}

// Package xstream re-implements the X-Stream baseline (Roy et al., SOSP
// 2013) that the paper compares against: an edge-centric scatter–gather
// engine over streaming partitions. Vertices are split into K partitions;
// each iteration streams every partition's edges from disk (scatter),
// appends the produced updates to per-partition update files, then streams
// the update files back and applies them (gather).
//
// Two properties matter for the comparison:
//   - X-Stream re-reads the full edge list every iteration and additionally
//     writes and re-reads an update stream, which is the I/O amplification
//     G-Store's tile format and caching eliminate;
//   - its edge tuples are 8 bytes (16 for > 2^32 vertices), 2–4× the tile
//     format (Figure 2a sweeps exactly this knob).
package xstream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/storage"
)

// Update records are (dst, value) pairs; the destination ID is as wide as
// the edge tuples' vertex IDs (4 bytes for 8-byte tuples, 8 bytes for the
// 16-byte tuples used beyond 2^32 vertices), and the value width is
// declared by the program (X-Stream's vertex values are typed: 4-byte
// float ranks, 4-byte depths and labels).
const maxUpdateBytes = 16

// Program is an edge-centric algorithm in X-Stream's scatter–gather
// model.
type Program interface {
	// Name identifies the program.
	Name() string
	// Init allocates vertex state.
	Init(numVertices uint32)
	// BeforeIteration resets per-iteration state.
	BeforeIteration(iter int)
	// Scatter inspects one edge and optionally emits an update value for
	// dst. Called once per stored edge per iteration.
	Scatter(src, dst uint32) (value uint64, ok bool)
	// Gather applies one update to dst.
	Gather(dst uint32, value uint64)
	// ValueBytes is the on-disk width of one update value: 4 (the low 32
	// bits of the value travel) or 8.
	ValueBytes() int
	// AfterIteration reports convergence.
	AfterIteration(iter int) bool
}

// Options configures the engine.
type Options struct {
	// Partitions is the number of streaming partitions.
	Partitions int
	// TupleBytes is the edge tuple width: 8 (default) or 16.
	TupleBytes int
	// StreamBuffer is the read buffer per stream (the paper observes this
	// barely matters; Figure 2c).
	StreamBuffer int
	// Storage simulation parameters shared with the G-Store engine for
	// fair comparisons.
	Disks      int
	StripeSize int64
	Bandwidth  float64
	Latency    time.Duration
	// MaxIterations bounds the run.
	MaxIterations int
}

// DefaultOptions mirrors an X-Stream configuration sized like the
// reproduction's G-Store default.
func DefaultOptions() Options {
	return Options{
		Partitions:    16,
		TupleBytes:    8,
		StreamBuffer:  1 << 20,
		Disks:         8,
		StripeSize:    storage.DefaultStripeSize,
		MaxIterations: 1 << 20,
	}
}

func (o *Options) normalize() error {
	if o.Partitions <= 0 {
		o.Partitions = 16
	}
	if o.TupleBytes != 8 && o.TupleBytes != 16 {
		return fmt.Errorf("xstream: tuple width %d not in {8,16}", o.TupleBytes)
	}
	if o.StreamBuffer <= 0 {
		o.StreamBuffer = 1 << 20
	}
	if o.Disks <= 0 {
		o.Disks = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1 << 20
	}
	return nil
}

// Stats reports one run.
type Stats struct {
	Iterations   int
	Elapsed      time.Duration
	EdgeBytes    int64 // edge-stream bytes read
	UpdateBytes  int64 // update bytes written + read
	UpdatesCount int64
}

// Engine is a built X-Stream instance over one graph.
type Engine struct {
	opts        Options
	numVertices uint32
	numEdges    int64 // stored directed edge instances
	dir         string
	edgePath    string
	// partExt[i] is the byte extent of partition i in the edge file.
	partExt []struct{ off, n int64 }
	edgeF   *os.File
	array   *storage.Array
	// updThrottle charges the update stream's write and read traffic
	// against the same disk model the edge stream uses.
	updThrottle *storage.Throttle
}

// partOf maps a vertex to its streaming partition.
func (e *Engine) partOf(v uint32) int {
	per := (int64(e.numVertices) + int64(e.opts.Partitions) - 1) / int64(e.opts.Partitions)
	return int(int64(v) / per)
}

// Build lays el out as X-Stream streaming partitions under dir. For
// undirected graphs both directions are materialized, as X-Stream's edge
// list format requires.
func Build(el *graph.EdgeList, dir string, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := el.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:        opts,
		numVertices: el.NumVertices,
		dir:         dir,
		edgePath:    filepath.Join(dir, "xstream.edges"),
	}
	e.partExt = make([]struct{ off, n int64 }, opts.Partitions)

	// Count edge instances per source partition.
	counts := make([]int64, opts.Partitions)
	each := func(fn func(s, d uint32)) {
		for _, ed := range el.Edges {
			fn(ed.Src, ed.Dst)
			if !el.Directed && ed.Src != ed.Dst {
				fn(ed.Dst, ed.Src)
			}
		}
	}
	each(func(s, d uint32) { counts[e.partOf(s)]++ })
	tb := int64(opts.TupleBytes)
	var off int64
	for i, c := range counts {
		e.partExt[i].off = off
		e.partExt[i].n = c * tb
		off += c * tb
		e.numEdges += c
	}

	// Scatter tuples to their partition extents.
	data := make([]byte, off)
	next := make([]int64, opts.Partitions)
	for i := range next {
		next[i] = e.partExt[i].off
	}
	each(func(s, d uint32) {
		p := e.partOf(s)
		at := next[p]
		next[p] += tb
		if opts.TupleBytes == 8 {
			binary.LittleEndian.PutUint32(data[at:], s)
			binary.LittleEndian.PutUint32(data[at+4:], d)
		} else {
			binary.LittleEndian.PutUint64(data[at:], uint64(s))
			binary.LittleEndian.PutUint64(data[at+8:], uint64(d))
		}
	})
	if err := os.WriteFile(e.edgePath, data, 0o644); err != nil {
		return nil, err
	}
	f, err := os.Open(e.edgePath)
	if err != nil {
		return nil, err
	}
	e.edgeF = f
	arr, err := storage.NewArray(f, storage.Options{
		NumDisks:   opts.Disks,
		StripeSize: opts.StripeSize,
		Bandwidth:  opts.Bandwidth,
		Latency:    opts.Latency,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	e.array = arr
	e.updThrottle = &storage.Throttle{
		Bandwidth: opts.Bandwidth * float64(opts.Disks),
		Latency:   opts.Latency,
	}
	return e, nil
}

// Close releases the engine's files.
func (e *Engine) Close() {
	if e.array != nil {
		e.array.Close()
		e.array = nil
	}
	if e.edgeF != nil {
		e.edgeF.Close()
		e.edgeF = nil
	}
}

// NumEdges returns the stored directed edge-instance count.
func (e *Engine) NumEdges() int64 { return e.numEdges }

// EdgeFileBytes returns the edge stream's on-disk size (the Table II
// "Edge List Size" accounting).
func (e *Engine) EdgeFileBytes() int64 { return e.numEdges * int64(e.opts.TupleBytes) }

// Run executes p until convergence.
func (e *Engine) Run(p Program) (*Stats, error) {
	p.Init(e.numVertices)
	stats := &Stats{}
	begin := time.Now()

	upPaths := make([]string, e.opts.Partitions)
	for i := range upPaths {
		upPaths[i] = filepath.Join(e.dir, fmt.Sprintf("updates.%d", i))
	}

	dstBytes := 4
	if e.opts.TupleBytes == 16 {
		dstBytes = 8
	}
	vb := p.ValueBytes()
	if vb != 4 && vb != 8 {
		return nil, fmt.Errorf("xstream: program %s declares %d-byte values", p.Name(), vb)
	}
	ub := dstBytes + vb
	buf := make([]byte, e.opts.StreamBuffer)
	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		p.BeforeIteration(iter)

		// Scatter phase: stream every partition's edges, append updates
		// to the destination partition's update file.
		writers := make([]*bufio.Writer, e.opts.Partitions)
		files := make([]*os.File, e.opts.Partitions)
		for i := range writers {
			f, err := os.Create(upPaths[i])
			if err != nil {
				return nil, err
			}
			files[i] = f
			writers[i] = bufio.NewWriterSize(f, 1<<16)
		}
		var rec [maxUpdateBytes]byte
		writtenBefore := stats.UpdateBytes
		for pi := 0; pi < e.opts.Partitions; pi++ {
			ext := e.partExt[pi]
			if err := e.streamEdges(ext.off, ext.n, buf, func(s, d uint32) error {
				v, ok := p.Scatter(s, d)
				if !ok {
					return nil
				}
				if dstBytes == 4 {
					binary.LittleEndian.PutUint32(rec[0:4], d)
				} else {
					binary.LittleEndian.PutUint64(rec[0:8], uint64(d))
				}
				if vb == 4 {
					binary.LittleEndian.PutUint32(rec[dstBytes:], uint32(v))
				} else {
					binary.LittleEndian.PutUint64(rec[dstBytes:], v)
				}
				stats.UpdatesCount++
				stats.UpdateBytes += int64(ub)
				_, err := writers[e.partOf(d)].Write(rec[:ub])
				return err
			}); err != nil {
				return nil, err
			}
			stats.EdgeBytes += ext.n
		}
		for i, w := range writers {
			if err := w.Flush(); err != nil {
				return nil, err
			}
			if err := files[i].Close(); err != nil {
				return nil, err
			}
		}
		// The update stream hits the same disks as the edge stream;
		// charge its write traffic against the array model.
		e.updThrottle.Charge(stats.UpdateBytes - writtenBefore)

		// Gather phase: stream update files back and apply.
		for pi := 0; pi < e.opts.Partitions; pi++ {
			f, err := os.Open(upPaths[pi])
			if err != nil {
				return nil, err
			}
			if fi, err := f.Stat(); err == nil {
				e.updThrottle.Charge(fi.Size())
			}
			r := bufio.NewReaderSize(f, e.opts.StreamBuffer)
			var u [maxUpdateBytes]byte
			for {
				if _, err := readFull(r, u[:ub]); err != nil {
					break
				}
				stats.UpdateBytes += int64(ub)
				var d uint32
				if dstBytes == 4 {
					d = binary.LittleEndian.Uint32(u[0:4])
				} else {
					d = uint32(binary.LittleEndian.Uint64(u[0:8]))
				}
				var v uint64
				if vb == 4 {
					v = uint64(binary.LittleEndian.Uint32(u[dstBytes:]))
				} else {
					v = binary.LittleEndian.Uint64(u[dstBytes:])
				}
				p.Gather(d, v)
			}
			f.Close()
		}

		stats.Iterations = iter + 1
		if p.AfterIteration(iter) {
			break
		}
	}
	for _, up := range upPaths {
		os.Remove(up)
	}
	stats.Elapsed = time.Since(begin)
	return stats, nil
}

// streamEdges reads the byte extent [off, off+n) through the simulated
// array in StreamBuffer-sized sequential chunks and decodes tuples.
func (e *Engine) streamEdges(off, n int64, buf []byte, fn func(s, d uint32) error) error {
	tb := int64(e.opts.TupleBytes)
	for pos := off; pos < off+n; {
		chunk := int64(len(buf))
		// Keep chunks tuple-aligned.
		chunk -= chunk % tb
		if rem := off + n - pos; chunk > rem {
			chunk = rem
		}
		if err := e.array.ReadSync(pos, buf[:chunk]); err != nil {
			return err
		}
		for i := int64(0); i+tb <= chunk; i += tb {
			var s, d uint32
			if tb == 8 {
				s = binary.LittleEndian.Uint32(buf[i:])
				d = binary.LittleEndian.Uint32(buf[i+4:])
			} else {
				s = uint32(binary.LittleEndian.Uint64(buf[i:]))
				d = uint32(binary.LittleEndian.Uint64(buf[i+8:]))
			}
			if err := fn(s, d); err != nil {
				return err
			}
		}
		pos += chunk
	}
	return nil
}

func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

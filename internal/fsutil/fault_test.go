package fsutil

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gwu-systems/gstore/internal/faultfs"
)

// WriteFileFS error paths must remove the temp file and leave the target
// untouched, whatever step fails.
func TestWriteFileAtomicFaultTable(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		{"create-fails", faultfs.Rule{Op: faultfs.OpCreate, PathContains: ".tmp"}},
		{"write-fails", faultfs.Rule{Op: faultfs.OpWrite}},
		{"short-write", faultfs.Rule{Op: faultfs.OpWrite, ShortBytes: 2}},
		{"fsync-fails", faultfs.Rule{Op: faultfs.OpSync}},
		{"rename-fails", faultfs.Rule{Op: faultfs.OpRename}},
		{"dir-sync-fails", faultfs.Rule{Op: faultfs.OpSyncDir}},
		{"enospc", faultfs.Rule{}}, // budget-driven, armed below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			target := filepath.Join(dir, "section.dat")
			if err := os.WriteFile(target, []byte("old-contents"), 0o644); err != nil {
				t.Fatal(err)
			}
			fs := faultfs.New(5)
			if tc.name == "enospc" {
				fs.SetWriteBudget(3)
			} else {
				fs.Arm(tc.rule)
			}
			err := WriteFileFS(fs, target, []byte("new-contents"), 0o644)
			if tc.name == "dir-sync-fails" {
				// The rename already happened; the data is in place but its
				// durability is not guaranteed. The error must still surface.
				if err == nil {
					t.Fatal("want error from failed dir sync")
				}
			} else {
				if err == nil {
					t.Fatal("want error")
				}
				data, rerr := os.ReadFile(target)
				if rerr != nil || string(data) != "old-contents" {
					t.Fatalf("target after failed write = %q, %v; want old contents intact", data, rerr)
				}
			}
			for _, n := range listDir(t, dir) {
				if strings.Contains(n, ".tmp") {
					t.Fatalf("temp litter %q left after %s", n, tc.name)
				}
			}
		})
	}
}

// The happy path over a FaultFS with no rules behaves like the OS path.
func TestWriteFileFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "a")
	fs := faultfs.New(1)
	if err := WriteFileFS(fs, target, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(target)
	if err != nil || string(data) != "x" {
		t.Fatalf("read back = %q, %v", data, err)
	}
	st, _ := os.Stat(target)
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", st.Mode().Perm())
	}
}

// A simulated crash mid-commit may strand a temp file (the process died;
// no error path ran). RemoveTemps must clean it up, honoring the prefix.
func TestRemoveTempsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "g.delta.00000001")
	fs := faultfs.New(9)
	fs.Arm(faultfs.Rule{Op: faultfs.OpCrashPoint, PathContains: "fsutil.commit.after-sync", Crash: true})
	err := WriteFileFS(fs, target, []byte("snapshot"), 0o644)
	if !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Unrelated litter that must survive a prefixed sweep.
	other := filepath.Join(dir, "other.tiles.tmp123")
	if err := os.WriteFile(other, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	litter := 0
	for _, n := range listDir(t, dir) {
		if strings.HasPrefix(n, "g.delta.") && strings.Contains(n, ".tmp") {
			litter++
		}
	}
	if litter == 0 {
		t.Fatal("crash left no temp file; the scenario did not exercise cleanup")
	}
	removed, err := RemoveTemps(nil, dir, "g.")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != litter {
		t.Fatalf("RemoveTemps removed %v, want %d files", removed, litter)
	}
	for _, n := range listDir(t, dir) {
		if strings.HasPrefix(n, "g.") && strings.Contains(n, ".tmp") {
			t.Fatalf("litter %q survived RemoveTemps", n)
		}
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("prefixed sweep ate unrelated file: %v", err)
	}
	if _, err := os.Stat(target); !os.IsNotExist(err) {
		t.Fatalf("target must not exist after crash before rename, stat err=%v", err)
	}
}

// Abort after a failed Commit must stay a no-op, and Commit twice is an
// error (the staging file is gone).
func TestCommitAbortDiscipline(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(2)
	fs.Arm(faultfs.Rule{Op: faultfs.OpSync})
	af, err := CreateFS(fs, filepath.Join(dir, "t"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err == nil {
		t.Fatal("want commit failure from injected fsync error")
	}
	af.Abort() // must be a safe no-op
	if err := af.Commit(); err == nil {
		t.Fatal("second commit must fail")
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("litter after failed commit: %v", names)
	}
}

// Package fsutil provides crash-safe file writing: data is staged in a
// temporary file in the destination directory, fsynced, and atomically
// renamed over the target, followed by a directory fsync so the rename
// itself is durable. A reader therefore observes either the old file, the
// new file, or no file — never a torn mix. The tile converter writes every
// graph section through this package so an interrupted conversion leaves
// no partially-written output behind under the final name.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: the bytes are written to
// a temporary file next to path, synced to stable storage, renamed into
// place, and the parent directory is synced. On error the temporary file
// is removed and the previous content of path (if any) is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	af, err := Create(path, perm)
	if err != nil {
		return err
	}
	if _, err := af.Write(data); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile stages writes destined for a target path. Commit makes the
// staged bytes visible atomically under the target name; Abort discards
// them. Exactly one of the two must be called (Abort after Commit is a
// no-op, so `defer af.Abort()` is a safe cleanup pattern).
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// Create opens an atomic writer targeting path. The temporary file lives
// in path's directory so the final rename never crosses filesystems.
func Create(path string, perm os.FileMode) (*AtomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the staged file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// File exposes the staging file for callers that need buffered or
// positioned writes; it must not be closed directly.
func (a *AtomicFile) File() *os.File { return a.f }

// Commit syncs the staged bytes, renames them over the target path, and
// syncs the directory. On any failure the staging file is removed and the
// target is left as it was.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("fsutil: commit on finished atomic write to %s", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: sync %s: %w", tmp, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(a.path))
}

// Abort discards the staged bytes. Safe to call after Commit.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// SyncDir fsyncs a directory, making previously completed renames and
// creations within it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("fsutil: sync dir %s: %w", dir, serr)
	}
	return cerr
}

// Package fsutil provides crash-safe file writing: data is staged in a
// temporary file in the destination directory, fsynced, and atomically
// renamed over the target, followed by a directory fsync so the rename
// itself is durable. A reader therefore observes either the old file, the
// new file, or no file — never a torn mix. The tile converter writes every
// graph section through this package so an interrupted conversion leaves
// no partially-written output behind under the final name.
//
// Every function has an FS-suffixed variant taking a faultfs.FS so tests
// and the chaos harness can inject write errors, failed fsyncs, ENOSPC,
// and simulated crashes; the plain names use the real filesystem.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gwu-systems/gstore/internal/faultfs"
)

// tmpInfix appears in every staging file name (between the target's base
// name and the random suffix); RemoveTemps matches on it.
const tmpInfix = ".tmp"

// WriteFile atomically replaces path with data: the bytes are written to
// a temporary file next to path, synced to stable storage, renamed into
// place, and the parent directory is synced. On error the temporary file
// is removed and the previous content of path (if any) is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(nil, path, data, perm)
}

// WriteFileFS is WriteFile over fsys (nil selects the real filesystem).
func WriteFileFS(fsys faultfs.FS, path string, data []byte, perm os.FileMode) error {
	af, err := CreateFS(fsys, path, perm)
	if err != nil {
		return err
	}
	if _, err := af.Write(data); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile stages writes destined for a target path. Commit makes the
// staged bytes visible atomically under the target name; Abort discards
// them. Exactly one of the two must be called (Abort after Commit is a
// no-op, so `defer af.Abort()` is a safe cleanup pattern).
type AtomicFile struct {
	fs   faultfs.FS
	f    faultfs.File
	path string
	done bool
}

// Create opens an atomic writer targeting path. The temporary file lives
// in path's directory so the final rename never crosses filesystems.
func Create(path string, perm os.FileMode) (*AtomicFile, error) {
	return CreateFS(nil, path, perm)
}

// CreateFS is Create over fsys (nil selects the real filesystem).
func CreateFS(fsys faultfs.FS, path string, perm os.FileMode) (*AtomicFile, error) {
	fsys = faultfs.Default(fsys)
	f, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+tmpInfix+"*")
	if err != nil {
		return nil, err
	}
	if err := f.Chmod(perm); err != nil {
		name := f.Name()
		f.Close()
		fsys.Remove(name)
		return nil, err
	}
	return &AtomicFile{fs: fsys, f: f, path: path}, nil
}

// Write appends to the staged file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// File exposes the staging file for callers that need buffered or
// positioned writes; it must not be closed directly.
func (a *AtomicFile) File() faultfs.File { return a.f }

// Commit syncs the staged bytes, renames them over the target path, and
// syncs the directory. On any failure the staging file is removed and the
// target is left as it was: a reader never observes a torn file, and no
// *.tmp* litter survives an error return (a simulated-crash error is the
// one exception — the "process" is dead, and recovery-time RemoveTemps
// owns the cleanup).
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("fsutil: commit on finished atomic write to %s", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fs.Remove(tmp)
		return fmt.Errorf("fsutil: sync %s: %w", tmp, err)
	}
	if err := a.f.Close(); err != nil {
		a.fs.Remove(tmp)
		return err
	}
	if err := a.fs.CrashPoint("fsutil.commit.after-sync"); err != nil {
		a.fs.Remove(tmp)
		return err
	}
	if err := a.fs.Rename(tmp, a.path); err != nil {
		a.fs.Remove(tmp)
		return err
	}
	if err := a.fs.CrashPoint("fsutil.commit.after-rename"); err != nil {
		return err
	}
	return SyncDirFS(a.fs, filepath.Dir(a.path))
}

// Abort discards the staged bytes. Safe to call after Commit.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	a.fs.Remove(a.f.Name())
}

// SyncDir fsyncs a directory, making previously completed renames and
// creations within it durable.
func SyncDir(dir string) error { return SyncDirFS(nil, dir) }

// SyncDirFS is SyncDir over fsys (nil selects the real filesystem).
func SyncDirFS(fsys faultfs.FS, dir string) error {
	return faultfs.Default(fsys).SyncDir(dir)
}

// RemoveTemps deletes staging files (*.tmp*) stranded in dir by a crash
// mid-Commit. Recovery paths call it before reopening state so litter
// from interrupted atomic writes cannot accumulate. A non-empty prefix
// restricts removal to files whose name begins with it (one graph's
// recovery must not eat a neighbor's in-flight conversion). It returns
// the names removed.
func RemoveTemps(fsys faultfs.FS, dir, prefix string) ([]string, error) {
	fsys = faultfs.Default(fsys)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var removed []string
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), tmpInfix) {
			continue
		}
		if prefix != "" && !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, err
		}
		removed = append(removed, e.Name())
	}
	return removed, nil
}

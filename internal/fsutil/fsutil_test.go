package fsutil

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")

	if err := WriteFile(p, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Fatalf("content = %q", got)
	}

	if err := WriteFile(p, []byte("second, longer content"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	if !bytes.Equal(got, []byte("second, longer content")) {
		t.Fatalf("content after replace = %q", got)
	}

	// No staging debris.
	for _, name := range listDir(t, dir) {
		if strings.Contains(name, ".tmp") {
			t.Fatalf("temporary file %s left behind", name)
		}
	}
}

func TestAbortLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "keep.bin")
	if err := WriteFile(p, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}

	af, err := Create(p, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	af.Abort()
	af.Abort() // idempotent

	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("content after abort = %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("directory holds %v, want only keep.bin", names)
	}
}

func TestCommitTwiceFails(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x")
	af, err := Create(p, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err == nil {
		t.Fatal("second Commit succeeded")
	}
	af.Abort() // no-op after commit; must not remove the target
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("target missing after post-commit Abort: %v", err)
	}
}

func TestAtomicFileStreamed(t *testing.T) {
	p := filepath.Join(t.TempDir(), "big")
	af, err := Create(p, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Abort()
	for i := 0; i < 100; i++ {
		if _, err := af.File().Write(bytes.Repeat([]byte{byte(i)}, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 100000 {
		t.Fatalf("size = %d", st.Size())
	}
	if runtimePerm := st.Mode().Perm(); runtimePerm != 0o600 {
		t.Fatalf("perm = %o", runtimePerm)
	}
}

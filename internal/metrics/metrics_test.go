package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", L("op", "bfs"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("reqs_total", "requests", L("op", "bfs")) != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("reqs_total", "requests", L("op", "wcc"))
	if c2 == c || c2.Value() != 0 {
		t.Fatal("label set not distinguished")
	}

	g := r.Gauge("in_flight", "in-flight requests")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed the series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 0.005 and 0.01 both fall in the le="0.01" bucket (le is inclusive).
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", L("kind", `qu"ote`)).Add(2)
	r.Gauge("a_gauge", "an a").Set(-4)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Families render sorted by name, with HELP/TYPE headers.
	ai := strings.Index(out, "# HELP a_gauge an a")
	bi := strings.Index(out, "# HELP b_total bees")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("family order/headers wrong:\n%s", out)
	}
	if !strings.Contains(out, `b_total{kind="qu\"ote"} 2`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "a_gauge -4\n") {
		t.Fatalf("unlabeled gauge wrong:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}

	rec2 := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec2, httptest.NewRequest("POST", "/metrics", nil))
	if rec2.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec2.Code)
	}
}

// TestConcurrent hammers one registry from many goroutines; run with
// -race it verifies the lock-free hot path.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", DefBuckets).Observe(float64(j) / 1000)
				if n == 0 && j%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "", DefBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestWriteEvent(t *testing.T) {
	var b strings.Builder
	WriteEvent(&b, "iteration",
		KV{"algo", "bfs"},
		KV{"iter", 3},
		KV{"read_bytes", int64(4096)},
		KV{"iowait", 1500 * time.Microsecond},
		KV{"note", "two words"},
	)
	got := b.String()
	want := "event=iteration algo=bfs iter=3 read_bytes=4096 iowait=1.5ms note=\"two words\"\n"
	if got != want {
		t.Fatalf("event line:\n got %q\nwant %q", got, want)
	}
	// nil writer must not panic.
	WriteEvent(nil, "noop", KV{"k", "v"})
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	fg := r.FloatGauge("imbalance", "max/mean worker busy", L("graph", "g"))
	fg.Set(1.25)
	if v := fg.Value(); v != 1.25 {
		t.Fatalf("FloatGauge = %v, want 1.25", v)
	}
	if r.FloatGauge("imbalance", "max/mean worker busy", L("graph", "g")) != fg {
		t.Fatal("re-registration returned a different FloatGauge")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Renders as a Prometheus gauge with the float value verbatim.
	if !strings.Contains(out, "# TYPE imbalance gauge\n") {
		t.Fatalf("missing gauge TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `imbalance{graph="g"} 1.25`+"\n") {
		t.Fatalf("missing float sample line:\n%s", out)
	}

	// A name is one type forever: requesting it as an int Gauge panics.
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge() on a FloatGauge name did not panic")
		}
	}()
	r.Gauge("imbalance", "wrong type")
}

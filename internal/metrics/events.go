package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// KV is one field of a structured event.
type KV struct {
	Key   string
	Value interface{}
}

// WriteEvent writes one structured line to w:
//
//	event=<name> key=value key=value ...\n
//
// Values render compactly: durations with time.Duration formatting,
// integers in decimal, strings quoted only when they contain whitespace
// or '='. A nil writer is a no-op, so callers can emit unconditionally.
// Each call writes the line with a single Write so concurrent emitters
// never interleave mid-line.
func WriteEvent(w io.Writer, event string, kvs ...KV) {
	if w == nil {
		return
	}
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(event)
	for _, kv := range kvs {
		b.WriteByte(' ')
		b.WriteString(kv.Key)
		b.WriteByte('=')
		b.WriteString(formatValue(kv.Value))
	}
	b.WriteByte('\n')
	_, _ = io.WriteString(w, b.String())
}

func formatValue(v interface{}) string {
	switch t := v.(type) {
	case time.Duration:
		return t.String()
	case string:
		if strings.ContainsAny(t, " \t=\"\n") {
			return strconv.Quote(t)
		}
		if t == "" {
			return `""`
		}
		return t
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case uint32:
		return strconv.FormatUint(uint64(t), 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	default:
		s := fmt.Sprint(v)
		if strings.ContainsAny(s, " \t=\"\n") {
			return strconv.Quote(s)
		}
		return s
	}
}

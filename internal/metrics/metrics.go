// Package metrics is a dependency-free observability layer for the
// serving path: atomic counters, gauges, and fixed-bucket latency
// histograms collected in a Registry that renders the Prometheus text
// exposition format, plus a structured key=value event writer used for
// engine iteration traces.
//
// The package is stdlib-only by design (the container bakes no
// third-party deps); the exposition format is the stable v0.0.4 text
// format every Prometheus-compatible scraper understands.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric instance.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds, chosen to resolve both sub-millisecond cache-pool hits and
// multi-second semi-external runs.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Counter is a monotonically increasing metric. Set exists for mirroring
// counters maintained elsewhere (e.g. an engine's cumulative byte totals
// republished after every run) and must only be used with values that
// never decrease.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter with an externally tracked cumulative value.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative d decreases it).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 (e.g. a ratio like the
// engine's compute-imbalance reading). It renders as a Prometheus gauge.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set overwrites the gauge.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds; an implicit +Inf bucket always exists. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds a per-bucket count delta and sum delta into the
// histogram, for republishing histograms maintained elsewhere (e.g. a
// storage backend's read-latency buckets captured per run). bucketCounts
// must use this histogram's bounds; entries beyond len(bounds)+1 are
// folded into +Inf, missing trailing entries count as zero.
func (h *Histogram) Merge(bucketCounts []int64, sum float64) {
	var total int64
	for i, c := range bucketCounts {
		if c == 0 {
			continue
		}
		j := i
		if j >= len(h.counts) {
			j = len(h.counts) - 1
		}
		h.counts[j].Add(c)
		total += c
	}
	h.count.Add(total)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

const (
	typeCounter    = "counter"
	typeGauge      = "gauge"
	typeFloatGauge = "floatgauge" // rendered as "gauge"; distinct for type checks
	typeHistogram  = "histogram"
)

// expoType maps an internal family type to its exposition TYPE keyword.
func expoType(typ string) string {
	if typ == typeFloatGauge {
		return typeGauge
	}
	return typ
}

// instance is one labeled time series of a family.
type instance struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// family is every instance sharing one metric name.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	insts           map[string]*instance
	order           []string // deterministic exposition order
}

// Registry collects metric families and renders them. All methods are
// safe for concurrent use; metric lookups on the hot path take one
// RWMutex read-lock plus map lookups.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter with the given name and labels, creating
// it on first use. Registering the same name with a different metric
// type panics (a programming error, like prometheus.MustRegister).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.instance(name, help, typeCounter, nil, labels)
	return inst.c
}

// Gauge returns the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.instance(name, help, typeGauge, nil, labels)
	return inst.g
}

// FloatGauge returns the float-valued gauge with the given name and
// labels. A name is either an integer Gauge or a FloatGauge, never both.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	inst := r.instance(name, help, typeFloatGauge, nil, labels)
	return inst.fg
}

// Histogram returns the histogram with the given name, bucket bounds and
// labels. The bounds must be sorted ascending; they are captured on
// first registration of the family and shared by every instance.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	inst := r.instance(name, help, typeHistogram, buckets, labels)
	return inst.h
}

func (r *Registry) instance(name, help, typ string, buckets []float64, labels []Label) *instance {
	key := renderLabels(labels)
	r.mu.RLock()
	f := r.fams[name]
	if f != nil {
		if inst := f.insts[key]; inst != nil {
			ok := f.typ == typ
			r.mu.RUnlock()
			if !ok {
				panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, f.typ, typ))
			}
			return inst
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, insts: make(map[string]*instance)}
		if typ == typeHistogram {
			f.buckets = append([]float64(nil), buckets...)
		}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, f.typ, typ))
	}
	inst := f.insts[key]
	if inst == nil {
		inst = &instance{labels: key}
		switch typ {
		case typeCounter:
			inst.c = &Counter{}
		case typeGauge:
			inst.g = &Gauge{}
		case typeFloatGauge:
			inst.fg = &FloatGauge{}
		case typeHistogram:
			h := &Histogram{bounds: f.buckets}
			h.counts = make([]atomic.Int64, len(f.buckets)+1)
			inst.h = h
		}
		f.insts[key] = inst
		f.order = append(f.order, key)
	}
	return inst
}

// renderLabels serializes labels sorted by name into `{k="v",...}`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, instances in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot family/instance pointers under the lock; the atomic reads
	// below need no lock.
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		r.mu.RLock()
		order := append([]string(nil), f.order...)
		insts := make([]*instance, len(order))
		for i, k := range order {
			insts[i] = f.insts[k]
		}
		r.mu.RUnlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, expoType(f.typ))
		for _, inst := range insts {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, inst.labels, inst.c.Value())
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, inst.labels, inst.g.Value())
			case typeFloatGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, inst.labels,
					strconv.FormatFloat(inst.fg.Value(), 'g', -1, 64))
			case typeHistogram:
				writeHistogram(&b, f.name, inst)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket/_sum/_count series.
func writeHistogram(b *strings.Builder, name string, inst *instance) {
	h := inst.h
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			withLE(inst.labels, formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(inst.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, inst.labels,
		strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, inst.labels, h.Count())
}

// withLE splices the le label into an already-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Package qcache is the bounded result cache in front of the
// personalized-query path: repeated queries for the same (graph, codec
// digest, algorithm, params, root) are answered from memory instead of
// re-running a traversal over the tile store.
//
// Three properties make it safe to put in front of a mutable graph:
//
//   - Generation checking. Every entry records the delta-store
//     generation (the last applied WAL sequence number) observed when it
//     was filled. A lookup presents the current generation; a mismatch
//     means mutations landed since the fill, so the entry is discarded
//     and recomputed — invalidation is hooked to generation bumps
//     without the write path knowing the cache exists.
//   - Single-flight dedup. Identical in-flight queries (same key, same
//     generation) share one computation: followers block on the
//     leader's result instead of submitting duplicate runs.
//   - Bounded memory with TTL. Entries carry a caller-declared byte
//     cost; inserts evict least-recently-used entries past the byte
//     budget, and entries older than the TTL are dropped on access.
package qcache

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// Outcome classifies how one Do call was satisfied.
type Outcome int

const (
	// Hit: served from a live cache entry, no computation ran.
	Hit Outcome = iota
	// Miss: this call ran the computation (and filled the cache).
	Miss
	// Join: an identical computation was already in flight; this call
	// waited for it (single-flight dedup).
	Join
	// Bypass: the cache was disabled for this call.
	Bypass
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Join:
		return "join"
	default:
		return "bypass"
	}
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Joins     int64
	Expired   int64 // entries dropped by TTL on access
	Stale     int64 // entries invalidated by a generation mismatch
	Evictions int64 // entries evicted to stay under the byte budget
	Entries   int64
	Bytes     int64
}

type entry struct {
	key     string
	val     interface{}
	bytes   int64
	gen     uint64
	expires time.Time
	ele     *list.Element
}

// flight is one in-progress fill; followers wait on done.
type flight struct {
	done chan struct{}
	val  interface{}
	err  error
}

// Cache is safe for concurrent use.
type Cache struct {
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests

	mu      sync.Mutex
	entries map[string]*entry
	flights map[string]*flight // keyed by key@generation
	lru     *list.List         // front = most recently used
	bytes   int64
	stats   Stats
}

// New returns a cache bounded to maxBytes of declared entry cost with
// the given per-entry TTL. maxBytes must be positive (callers that want
// the cache off should not construct one); ttl <= 0 means entries never
// expire by age.
func New(maxBytes int64, ttl time.Duration) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		entries:  map[string]*entry{},
		flights:  map[string]*flight{},
		lru:      list.New(),
	}
}

// Do returns the cached value for key at generation gen, or runs fill
// to produce it. fill returns (value, byte cost, error); errors are
// returned but never cached. Concurrent Do calls with the same key and
// generation share one fill. A ctx canceled while waiting on another
// call's fill returns ctx.Err() (the leader's fill is unaffected).
func (c *Cache) Do(ctx context.Context, key string, gen uint64, fill func() (interface{}, int64, error)) (interface{}, Outcome, error) {
	fk := flightKey(key, gen)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		switch {
		case e.gen != gen:
			c.stats.Stale++
			c.removeLocked(e)
		case c.ttl > 0 && c.now().After(e.expires):
			c.stats.Expired++
			c.removeLocked(e)
		default:
			c.stats.Hits++
			c.lru.MoveToFront(e.ele)
			val := e.val
			c.mu.Unlock()
			return val, Hit, nil
		}
	}
	if f, ok := c.flights[fk]; ok {
		c.stats.Joins++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Join, f.err
		case <-ctx.Done():
			return nil, Join, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[fk] = f
	c.stats.Misses++
	c.mu.Unlock()

	val, cost, err := fill()
	f.val, f.err = val, err

	c.mu.Lock()
	delete(c.flights, fk)
	if err == nil && cost <= c.maxBytes {
		if old, ok := c.entries[key]; ok {
			c.removeLocked(old)
		}
		e := &entry{key: key, val: val, bytes: cost, gen: gen, expires: c.now().Add(c.ttl)}
		e.ele = c.lru.PushFront(e)
		c.entries[key] = e
		c.bytes += cost
		for c.bytes > c.maxBytes {
			oldest := c.lru.Back()
			if oldest == nil {
				break
			}
			c.stats.Evictions++
			c.removeLocked(oldest.Value.(*entry))
		}
	}
	c.mu.Unlock()
	close(f.done)
	return val, Miss, err
}

// removeLocked unlinks e from the map, the LRU list, and the byte
// accounting. Callers hold c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.ele)
	c.bytes -= e.bytes
}

// Stats returns a snapshot of the counters and current occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = int64(len(c.entries))
	st.Bytes = c.bytes
	return st
}

func flightKey(key string, gen uint64) string {
	// Generation is part of the in-flight identity: a query arriving
	// after a mutation must not join a pre-mutation fill.
	const hex = "0123456789abcdef"
	buf := make([]byte, 0, len(key)+17)
	buf = append(buf, key...)
	buf = append(buf, '@')
	for shift := 60; shift >= 0; shift -= 4 {
		buf = append(buf, hex[(gen>>uint(shift))&0xf])
	}
	return string(buf)
}

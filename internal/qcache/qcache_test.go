package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fillConst(v interface{}, cost int64) func() (interface{}, int64, error) {
	return func() (interface{}, int64, error) { return v, cost, nil }
}

func mustDo(t *testing.T, c *Cache, key string, gen uint64, fill func() (interface{}, int64, error)) (interface{}, Outcome) {
	t.Helper()
	v, o, err := c.Do(context.Background(), key, gen, fill)
	if err != nil {
		t.Fatalf("Do(%q, gen %d): %v", key, gen, err)
	}
	return v, o
}

func TestHitMiss(t *testing.T) {
	c := New(1<<20, time.Minute)
	v, o := mustDo(t, c, "k", 1, fillConst("a", 10))
	if o != Miss || v != "a" {
		t.Fatalf("first Do = (%v, %v), want (a, Miss)", v, o)
	}
	v, o = mustDo(t, c, "k", 1, fillConst("WRONG", 10))
	if o != Hit || v != "a" {
		t.Fatalf("second Do = (%v, %v), want cached (a, Hit)", v, o)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New(1<<20, time.Minute)
	mustDo(t, c, "k", 1, fillConst("old", 10))
	v, o := mustDo(t, c, "k", 2, fillConst("new", 10))
	if o != Miss || v != "new" {
		t.Fatalf("Do at gen 2 = (%v, %v), want recomputed (new, Miss)", v, o)
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("Stale = %d, want 1", st.Stale)
	}
	// The new entry is pinned to gen 2 now.
	if _, o := mustDo(t, c, "k", 2, fillConst("WRONG", 10)); o != Hit {
		t.Fatalf("re-read at gen 2 = %v, want Hit", o)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(1<<20, time.Minute)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	mustDo(t, c, "k", 1, fillConst("a", 10))
	clock = clock.Add(59 * time.Second)
	if _, o := mustDo(t, c, "k", 1, fillConst("b", 10)); o != Hit {
		t.Fatalf("within TTL = %v, want Hit", o)
	}
	clock = clock.Add(2 * time.Second) // 61s past the fill
	v, o := mustDo(t, c, "k", 1, fillConst("b", 10))
	if o != Miss || v != "b" {
		t.Fatalf("past TTL = (%v, %v), want recomputed (b, Miss)", v, o)
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	c := New(1<<20, 0)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	mustDo(t, c, "k", 1, fillConst("a", 10))
	clock = clock.Add(1000 * time.Hour)
	if _, o := mustDo(t, c, "k", 1, fillConst("b", 10)); o != Hit {
		t.Fatalf("ttl=0 lookup = %v, want Hit", o)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(100, time.Minute)
	for i := 0; i < 4; i++ {
		mustDo(t, c, fmt.Sprintf("k%d", i), 1, fillConst(i, 30)) // 4*30 > 100
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 90 {
		t.Fatalf("stats = %+v, want 1 eviction leaving 3 entries / 90 bytes", st)
	}
	// k0 was least recently used and must be the one gone.
	if _, o := mustDo(t, c, "k0", 1, fillConst(0, 30)); o != Miss {
		t.Fatalf("k0 = %v, want Miss (evicted)", o)
	}
	// k3 survived.
	if _, o := mustDo(t, c, "k3", 1, fillConst(3, 30)); o != Hit {
		t.Fatalf("k3 = %v, want Hit", o)
	}
}

func TestLRUOrderFollowsAccess(t *testing.T) {
	c := New(60, time.Minute)
	mustDo(t, c, "a", 1, fillConst("a", 30))
	mustDo(t, c, "b", 1, fillConst("b", 30))
	mustDo(t, c, "a", 1, fillConst("a", 30)) // touch a: b is now LRU
	mustDo(t, c, "c", 1, fillConst("c", 30)) // evicts b
	if _, o := mustDo(t, c, "a", 1, fillConst("a", 30)); o != Hit {
		t.Fatalf("a = %v, want Hit (recently touched)", o)
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(100, time.Minute)
	mustDo(t, c, "big", 1, fillConst("x", 101))
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry cached: %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1<<20, time.Minute)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", 1, func() (interface{}, int64, error) {
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, o := mustDo(t, c, "k", 1, fillConst("ok", 10)); o != Miss {
		t.Fatalf("after error = %v, want Miss (errors must not cache)", o)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1<<20, time.Minute)
	const followers = 8
	var fills atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	leaderFill := func() (interface{}, int64, error) {
		close(started)
		<-release
		fills.Add(1)
		return "shared", 10, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, o := mustDo(t, c, "k", 1, leaderFill); o != Miss || v != "shared" {
			t.Errorf("leader = (%v, %v), want (shared, Miss)", v, o)
		}
	}()
	<-started

	joins := make([]Outcome, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, o, err := c.Do(context.Background(), "k", 1, func() (interface{}, int64, error) {
				fills.Add(1)
				return "DUPLICATE", 10, nil
			})
			if err != nil || v != "shared" {
				t.Errorf("follower %d = (%v, %v)", i, v, err)
			}
			joins[i] = o
		}(i)
	}
	// Let the followers reach the flight before the leader finishes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1 (single-flight)", n)
	}
	st := c.Stats()
	joined := 0
	for _, o := range joins {
		if o == Join {
			joined++
		}
	}
	// Followers that arrived before the leader finished joined; any that
	// raced in after the insert hit the fresh entry instead. Both are
	// correct; what matters is zero duplicate fills.
	if int(st.Joins) != joined {
		t.Fatalf("stats.Joins = %d, observed %d join outcomes", st.Joins, joined)
	}
}

func TestNoJoinAcrossGenerations(t *testing.T) {
	c := New(1<<20, time.Minute)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustDo(t, c, "k", 1, func() (interface{}, int64, error) {
			close(started)
			<-release
			return "pre-mutation", 10, nil
		})
	}()
	<-started
	// A query at generation 2 (post-mutation) must NOT join the gen-1
	// fill still in flight — it would get a stale answer.
	var newFill atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, o := mustDo(t, c, "k", 2, func() (interface{}, int64, error) {
			newFill.Add(1)
			return "post-mutation", 10, nil
		})
		if o != Miss || v != "post-mutation" {
			t.Errorf("gen-2 query = (%v, %v), want own fill (post-mutation, Miss)", v, o)
		}
	}()
	select {
	case <-done: // completed without waiting on the gen-1 flight
	case <-time.After(5 * time.Second):
		t.Fatal("gen-2 query joined the gen-1 in-flight fill")
	}
	close(release)
	wg.Wait()
	if newFill.Load() != 1 {
		t.Fatalf("gen-2 fill ran %d times, want 1", newFill.Load())
	}
}

func TestJoinCancel(t *testing.T) {
	c := New(1<<20, time.Minute)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustDo(t, c, "k", 1, func() (interface{}, int64, error) {
			close(started)
			<-release
			return "slow", 10, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, o, err := c.Do(ctx, "k", 1, fillConst("x", 10))
	if o != Join || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled join = (%v, %v), want (Join, context.Canceled)", o, err)
	}
	close(release)
	wg.Wait()
	// The leader's fill was unaffected.
	if v, o := mustDo(t, c, "k", 1, fillConst("x", 10)); o != Hit || v != "slow" {
		t.Fatalf("after canceled join = (%v, %v), want (slow, Hit)", v, o)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(1<<10, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%7)
				gen := uint64(j % 3)
				_, _, err := c.Do(context.Background(), key, gen, fillConst(key, 64))
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 1<<10 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	if st.Hits+st.Misses+st.Joins != 16*200 {
		t.Fatalf("outcome counts don't sum: %+v", st)
	}
}

// Package gen produces the synthetic graphs used throughout the paper's
// evaluation: Kronecker/RMAT power-law graphs (the Kron-N-M and Rmat-N-M
// rows of Table II, and Graph500-style inputs) and uniform random graphs
// (the Random-27-32 row). Real-world downloads (Twitter, Friendster,
// Subdomain) are substituted with seeded RMAT graphs whose skew matches
// their degree distributions; see DESIGN.md §2.
package gen

import (
	"fmt"

	"github.com/gwu-systems/gstore/internal/graph"
)

// Kind selects the generator family.
type Kind int

const (
	// Kronecker is the Graph500 Kronecker generator (equivalent to RMAT
	// with A=0.57, B=C=0.19, D=0.05).
	Kronecker Kind = iota
	// RMAT is the recursive matrix generator with explicit quadrant
	// probabilities.
	RMAT
	// Uniform samples endpoints independently and uniformly (an
	// Erdős–Rényi-style G(n, m) graph).
	Uniform
)

func (k Kind) String() string {
	switch k {
	case Kronecker:
		return "kron"
	case RMAT:
		return "rmat"
	case Uniform:
		return "random"
	default:
		return fmt.Sprintf("gen.Kind(%d)", int(k))
	}
}

// Config describes a synthetic graph. NumVertices = 2^Scale and
// NumEdges = EdgeFactor * NumVertices, matching the paper's
// "<family>-<scale>-<edgefactor>" naming (e.g. Kron-28-16).
type Config struct {
	Kind       Kind
	Scale      uint
	EdgeFactor int
	A, B, C    float64 // RMAT quadrant probabilities; D = 1-A-B-C
	Seed       uint64
	Directed   bool
	// DropSelfLoops removes self loops after generation (duplicates are
	// kept: real RMAT streams contain them, and the converters must cope).
	DropSelfLoops bool
}

// Graph500Config returns the standard Kronecker configuration for the
// given scale and edge factor.
func Graph500Config(scale uint, edgeFactor int, seed uint64) Config {
	return Config{
		Kind: Kronecker, Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19, Seed: seed,
	}
}

// TwitterLikeConfig returns an RMAT configuration whose degree skew mimics
// the Twitter follower graph used in the paper (a heavily skewed power law
// with a few very large-degree vertices and ~40% empty tiles at the
// paper's tile width).
func TwitterLikeConfig(scale uint, edgeFactor int, seed uint64) Config {
	return Config{
		Kind: RMAT, Scale: scale, EdgeFactor: edgeFactor,
		A: 0.65, B: 0.15, C: 0.15, Seed: seed, Directed: true,
	}
}

// UniformConfig returns a uniform random graph configuration (the paper's
// Random-27-32).
func UniformConfig(scale uint, edgeFactor int, seed uint64) Config {
	return Config{Kind: Uniform, Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
}

// Name returns the paper-style name of the configuration, e.g.
// "kron-20-16".
func (c Config) Name() string {
	return fmt.Sprintf("%s-%d-%d", c.Kind, c.Scale, c.EdgeFactor)
}

// NumVertices returns 2^Scale.
func (c Config) NumVertices() uint32 {
	if c.Scale >= 32 {
		panic("gen: scale must be < 32 for 32-bit vertex IDs")
	}
	return uint32(1) << c.Scale
}

// NumEdges returns EdgeFactor * NumVertices.
func (c Config) NumEdges() int64 {
	return int64(c.EdgeFactor) << c.Scale
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scale == 0 || c.Scale >= 32 {
		return fmt.Errorf("gen: scale %d out of range [1,31]", c.Scale)
	}
	if c.EdgeFactor <= 0 {
		return fmt.Errorf("gen: edge factor %d must be positive", c.EdgeFactor)
	}
	if c.Kind == RMAT || c.Kind == Kronecker {
		a, b, cc := c.A, c.B, c.C
		if c.Kind == Kronecker && a == 0 && b == 0 && cc == 0 {
			a, b, cc = 0.57, 0.19, 0.19
		}
		if a < 0 || b < 0 || cc < 0 || a+b+cc > 1 {
			return fmt.Errorf("gen: invalid RMAT probabilities a=%v b=%v c=%v", a, b, cc)
		}
	}
	return nil
}

// Generate materializes the full edge list. For large scales prefer
// Stream, which avoids holding the slice.
func Generate(c Config) (*graph.EdgeList, error) {
	el := &graph.EdgeList{
		NumVertices: c.NumVertices(),
		Directed:    c.Directed,
		Edges:       make([]graph.Edge, 0, c.NumEdges()),
	}
	err := Stream(c, func(e graph.Edge) error {
		el.Edges = append(el.Edges, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !c.Directed {
		el.Canonicalize()
	}
	return el, nil
}

// Stream invokes emit for every generated edge in a deterministic order
// given the seed. Undirected configurations emit canonicalized tuples.
func Stream(c Config, emit func(graph.Edge) error) error {
	if err := c.Validate(); err != nil {
		return err
	}
	rng := NewRNG(c.Seed)
	n := c.NumEdges()
	switch c.Kind {
	case Uniform:
		mask := uint64(c.NumVertices() - 1)
		for i := int64(0); i < n; i++ {
			e := graph.Edge{
				Src: uint32(rng.Next() & mask),
				Dst: uint32(rng.Next() & mask),
			}
			if c.DropSelfLoops && e.Src == e.Dst {
				i--
				continue
			}
			if !c.Directed {
				e = e.Canon()
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	case RMAT, Kronecker:
		a, b, cc := c.A, c.B, c.C
		if c.Kind == Kronecker && a == 0 && b == 0 && cc == 0 {
			a, b, cc = 0.57, 0.19, 0.19
		}
		r := rmat{a: a, b: b, c: cc, scale: c.Scale, rng: rng}
		for i := int64(0); i < n; i++ {
			e := r.edge()
			if c.DropSelfLoops && e.Src == e.Dst {
				i--
				continue
			}
			if !c.Directed {
				e = e.Canon()
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("gen: unknown kind %v", c.Kind)
	}
}

type rmat struct {
	a, b, c float64
	scale   uint
	rng     *RNG
}

// edge draws one RMAT edge by descending the 2^scale × 2^scale adjacency
// matrix, picking a quadrant per level with probabilities (a, b, c, d) and
// a small per-level noise term so the distribution is not perfectly
// self-similar (as in the Graph500 reference implementation).
func (r *rmat) edge() graph.Edge {
	var src, dst uint32
	for bit := int(r.scale) - 1; bit >= 0; bit-- {
		p := r.rng.Float64()
		// ±5% multiplicative noise keeps the generated graphs from having
		// pathological exact self-similarity.
		noise := 0.95 + 0.1*r.rng.Float64()
		a := r.a * noise
		b := r.b * noise
		c := r.c * noise
		sum := a + b + c + (1 - r.a - r.b - r.c)
		a, b, c = a/sum, b/sum, c/sum
		switch {
		case p < a:
			// top-left: nothing set
		case p < a+b:
			dst |= 1 << uint(bit)
		case p < a+b+c:
			src |= 1 << uint(bit)
		default:
			src |= 1 << uint(bit)
			dst |= 1 << uint(bit)
		}
	}
	return graph.Edge{Src: src, Dst: dst}
}

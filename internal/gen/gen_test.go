package gen

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gwu-systems/gstore/internal/graph"
)

func TestConfigNaming(t *testing.T) {
	c := Graph500Config(28, 16, 1)
	if c.Name() != "kron-28-16" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.NumVertices() != 1<<28 {
		t.Fatalf("NumVertices = %d", c.NumVertices())
	}
	if c.NumEdges() != 16<<28 {
		t.Fatalf("NumEdges = %d", c.NumEdges())
	}
	u := UniformConfig(27, 32, 1)
	if u.Name() != "random-27-32" {
		t.Fatalf("Name = %q", u.Name())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Graph500Config(20, 16, 1), true},
		{Config{Kind: RMAT, Scale: 0, EdgeFactor: 16}, false},
		{Config{Kind: RMAT, Scale: 32, EdgeFactor: 16}, false},
		{Config{Kind: RMAT, Scale: 10, EdgeFactor: 0}, false},
		{Config{Kind: RMAT, Scale: 10, EdgeFactor: 4, A: 0.9, B: 0.2, C: 0.2}, false},
		{UniformConfig(10, 4, 3), true},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() err=%v, ok=%v", i, err, tc.ok)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Graph500Config(10, 8, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatal("same seed produced different graphs")
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateCounts(t *testing.T) {
	for _, cfg := range []Config{
		Graph500Config(10, 8, 7),
		UniformConfig(10, 8, 7),
		TwitterLikeConfig(10, 8, 7),
	} {
		el, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if int64(len(el.Edges)) != cfg.NumEdges() {
			t.Fatalf("%s: %d edges, want %d", cfg.Name(), len(el.Edges), cfg.NumEdges())
		}
		if el.NumVertices != cfg.NumVertices() {
			t.Fatalf("%s: %d vertices", cfg.Name(), el.NumVertices)
		}
		if err := el.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
	}
}

func TestGenerateUndirectedCanonical(t *testing.T) {
	cfg := Graph500Config(8, 8, 5)
	el, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range el.Edges {
		if e.Src > e.Dst {
			t.Fatalf("non-canonical undirected edge %v", e)
		}
	}
}

func TestDropSelfLoops(t *testing.T) {
	cfg := UniformConfig(4, 32, 9)
	cfg.DropSelfLoops = true
	el, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(el.Edges)) != cfg.NumEdges() {
		t.Fatalf("self-loop replacement changed edge count: %d", len(el.Edges))
	}
	for _, e := range el.Edges {
		if e.Src == e.Dst {
			t.Fatalf("self loop survived: %v", e)
		}
	}
}

// RMAT graphs must be substantially more skewed than uniform graphs:
// compare the maximum degree of both at the same size.
func TestRMATSkewExceedsUniform(t *testing.T) {
	rm, err := Generate(TwitterLikeConfig(12, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	un, err := Generate(UniformConfig(12, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(el *graph.EdgeList) uint32 {
		var m uint32
		for _, d := range el.OutDegrees() {
			if d > m {
				m = d
			}
		}
		return m
	}
	mr, mu := maxDeg(rm), maxDeg(un)
	if mr < 4*mu {
		t.Fatalf("rmat max degree %d not >> uniform %d", mr, mu)
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	el, err := Generate(UniformConfig(8, 64, 11))
	if err != nil {
		t.Fatal(err)
	}
	deg := el.OutDegrees()
	mean := 0.0
	for _, d := range deg {
		mean += float64(d)
	}
	mean /= float64(len(deg))
	// Expected degree = 2*EdgeFactor = 128. Allow generous slack.
	if math.Abs(mean-128) > 8 {
		t.Fatalf("mean degree %v far from 128", mean)
	}
}

func TestStreamEmitError(t *testing.T) {
	cfg := UniformConfig(6, 4, 1)
	calls := 0
	err := Stream(cfg, func(graph.Edge) error {
		calls++
		if calls == 5 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if calls != 5 {
		t.Fatalf("emit called %d times after error", calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(7)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Next()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("RNG produced %d distinct values of 1000", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGUint32n(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Uint32n(10)]++
	}
	sort.Ints(counts)
	if counts[0] < 8000 || counts[9] > 12000 {
		t.Fatalf("Uint32n(10) badly skewed: %v", counts)
	}
}

// Property: generated edges always lie in [0, 2^scale).
func TestQuickEdgesInRange(t *testing.T) {
	f := func(seed uint64, rawScale, rawEF uint8) bool {
		scale := uint(rawScale)%10 + 2
		ef := int(rawEF)%8 + 1
		cfg := Graph500Config(scale, ef, seed)
		n := cfg.NumVertices()
		ok := true
		err := Stream(cfg, func(e graph.Edge) error {
			if e.Src >= n || e.Dst >= n {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

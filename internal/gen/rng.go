package gen

// RNG is a small, fast, seedable pseudo-random generator
// (xoshiro256** seeded via splitmix64). The generators must be
// deterministic across runs and Go versions so that every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit; math/rand's stream is not
// guaranteed stable, hence a self-contained implementation.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A zero state would be absorbing; splitmix64 cannot produce all-zero
	// output for four consecutive calls, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) * (1.0 / (1 << 53))
}

// Uint32n returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	return uint32((r.Next() >> 32) * uint64(n) >> 32)
}

// Int63n returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	return int64(r.Next() % uint64(n))
}

package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openW(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return f
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	f := openW(t, OS, p)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := OS.CrashPoint("anything"); err != nil {
		t.Fatalf("OS CrashPoint must be a no-op, got %v", err)
	}
	if Default(nil) != OS {
		t.Fatal("Default(nil) != OS")
	}
}

func TestWriteErrorRuleFiresOnceAtAfterN(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpWrite, AfterN: 3})
	f := openW(t, fs, filepath.Join(dir, "a"))
	defer f.Close()
	for i := 1; i <= 5; i++ {
		_, err := f.Write([]byte("x"))
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: want ErrInjected, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestEveryRuleIsPersistent(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpSync, Every: true})
	f := openW(t, fs, filepath.Join(dir, "a"))
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: want ErrInjected, got %v", i, err)
		}
	}
}

func TestPathContainsSelectsTargets(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpWrite, PathContains: "victim", Every: true})
	v := openW(t, fs, filepath.Join(dir, "victim.dat"))
	o := openW(t, fs, filepath.Join(dir, "other.dat"))
	defer v.Close()
	defer o.Close()
	if _, err := v.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("victim write: want ErrInjected, got %v", err)
	}
	if _, err := o.Write([]byte("x")); err != nil {
		t.Fatalf("other write: %v", err)
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpWrite, ShortBytes: 3})
	p := filepath.Join(dir, "a")
	f := openW(t, fs, p)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 3, ErrInjected", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(p)
	if string(data) != "abc" {
		t.Fatalf("file = %q, want the 3-byte prefix", data)
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.SetWriteBudget(5)
	p := filepath.Join(dir, "a")
	f := openW(t, fs, p)
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write: n=%d err=%v, want 2, ENOSPC", n, err)
	}
	// The disk stays full until space is freed.
	if _, err := f.Write([]byte("h")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want sticky ENOSPC, got %v", err)
	}
	fs.SetWriteBudget(-1)
	if _, err := f.Write([]byte("h")); err != nil {
		t.Fatalf("after freeing space: %v", err)
	}
	f.Close()
}

func TestCrashDropsUnsyncedSuffixDeterministically(t *testing.T) {
	run := func(seed int64) string {
		dir := t.TempDir()
		fs := New(seed)
		p := filepath.Join(dir, "a")
		f := openW(t, fs, p)
		if _, err := f.Write([]byte("synced!")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("UNSYNCED")); err != nil {
			t.Fatal(err)
		}
		fs.CrashNow()
		if !fs.Crashed() {
			t.Fatal("Crashed() = false after CrashNow")
		}
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash write: want ErrCrashed, got %v", err)
		}
		if _, err := fs.ReadFile(p); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash ReadFile: want ErrCrashed, got %v", err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different tear: %q vs %q", a, b)
	}
	if len(a) < len("synced!") || a[:7] != "synced!" {
		t.Fatalf("synced prefix lost: %q", a)
	}
	if len(a) > len("synced!UNSYNCED") {
		t.Fatalf("file grew? %q", a)
	}
	// Some seed must produce a partial tear (not all-or-nothing).
	partial := false
	for seed := int64(0); seed < 32; seed++ {
		got := run(seed)
		if len(got) > 7 && len(got) < 15 {
			partial = true
			break
		}
	}
	if !partial {
		t.Fatal("no seed in [0,32) produced a partial (torn) tail")
	}
}

func TestCrashPointRuleKillsProcess(t *testing.T) {
	fs := New(7)
	fs.Arm(Rule{Op: OpCrashPoint, PathContains: "wal.rotate", Crash: true})
	if err := fs.CrashPoint("delta.flush.after-snapshot"); err != nil {
		t.Fatalf("unrelated point: %v", err)
	}
	if err := fs.CrashPoint("wal.rotate.after-sync"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed point: want ErrCrashed, got %v", err)
	}
	if err := fs.CrashPoint("delta.flush.after-snapshot"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("after crash every point fails: got %v", err)
	}
	pts := fs.Points()
	if pts["wal.rotate.after-sync"] != 1 || pts["delta.flush.after-snapshot"] != 1 {
		t.Fatalf("Points() = %v", pts)
	}
}

func TestRenameRemoveMkdirSyncDirRules(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpRename, Every: true})
	fs.Arm(Rule{Op: OpRemove, Every: true})
	fs.Arm(Rule{Op: OpMkdir, Every: true})
	fs.Arm(Rule{Op: OpSyncDir, Every: true})
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(p, p+"2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.Remove(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("Remove: %v", err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, ErrInjected) {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("SyncDir: %v", err)
	}
	// All failed before touching the real filesystem.
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("original file gone: %v", err)
	}
	if _, err := os.Stat(p + "2"); !os.IsNotExist(err) {
		t.Fatalf("rename happened despite injection")
	}
}

func TestTruncateUpdatesSyncedState(t *testing.T) {
	dir := t.TempDir()
	fs := New(3)
	p := filepath.Join(dir, "a")
	f := openW(t, fs, p)
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	fs.CrashNow()
	data, _ := os.ReadFile(p)
	if string(data) != "0123" {
		t.Fatalf("after truncate+crash: %q, want %q", data, "0123")
	}
}

func TestCreateTempRule(t *testing.T) {
	dir := t.TempDir()
	fs := New(1)
	fs.Arm(Rule{Op: OpCreate, PathContains: ".tmp", Every: true})
	if _, err := fs.CreateTemp(dir, "x.tmp*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("CreateTemp: want ErrInjected, got %v", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("temp file created despite injection: %v", ents)
	}
}

// Package faultfs makes filesystem failure a first-class, testable
// input of the persistence stack. Every byte G-Store writes durably —
// fsutil atomic files, WAL segments, delta snapshots, converted tiles —
// goes through the FS interface here; production code uses the
// passthrough OS implementation, while tests and the chaos harness
// substitute a FaultFS that injects write errors, short writes, fsync
// failures, ENOSPC after a byte budget, and whole-process crash
// simulations at named protocol points.
//
// A FaultFS is seeded and deterministic: the same rules over the same
// operation sequence inject the same faults, so every chaos schedule is
// replayable. A simulated crash models the first-order kernel contract
// the write path is built on: bytes written but not yet fsynced may
// vanish (each open file is truncated back to a seeded point between its
// last-synced and current length), and after the crash every operation
// fails with ErrCrashed until the "process" restarts by reopening state
// from disk with a fresh FS.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// File is the subset of *os.File the write path uses. Reads are
// included so recovery code can share the interface, but fault
// injection targets the write-side methods.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Chmod(mode os.FileMode) error
	Name() string
}

// FS abstracts the filesystem operations of the persistence stack.
// Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile mirrors os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename mirrors os.Rename.
	Rename(oldpath, newpath string) error
	// Remove mirrors os.Remove.
	Remove(name string) error
	// MkdirAll mirrors os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir mirrors os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile mirrors os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory, making completed renames and creations
	// within it durable.
	SyncDir(dir string) error
	// CrashPoint marks a named point in a persistence protocol (e.g.
	// "delta.flush.after-rotate"). The OS implementation returns nil; a
	// FaultFS armed to crash there returns ErrCrashed, which the caller
	// must propagate like any other write failure.
	CrashPoint(name string) error
}

// OS is the passthrough production filesystem.
var OS FS = osFS{}

// Default returns fsys, or OS when fsys is nil — so an FS field in an
// options struct costs callers nothing.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error  { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)    { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (osFS) CrashPoint(string) error                       { return nil }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("faultfs: sync dir %s: %w", dir, serr)
	}
	return cerr
}

// Injected faults and crash are distinguishable error values so tests
// and the chaos harness can classify what they provoked.
var (
	// ErrInjected is the default error of a fired rule.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation after a simulated crash.
	ErrCrashed = errors.New("faultfs: simulated crash (process dead until restart)")
	// ErrNoSpace is the injected ENOSPC (wraps syscall.ENOSPC so
	// errors.Is(err, syscall.ENOSPC) holds).
	ErrNoSpace = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)
)

// Op names a class of filesystem operation a Rule can match.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpCreate // OpenFile with O_CREATE, and CreateTemp
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpSyncDir
	OpCrashPoint
)

var opNames = [...]string{"write", "sync", "create", "rename", "remove", "truncate", "mkdir", "syncdir", "crashpoint"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Rule arms one fault. A rule fires on the AfterN-th operation matching
// (Op, PathContains); once fired it is spent unless Every is set.
type Rule struct {
	// Op selects the operation class.
	Op Op
	// PathContains restricts the rule to paths containing this substring
	// (for OpCrashPoint: point names). Empty matches everything.
	PathContains string
	// AfterN fires the rule on the Nth match (1-based; 0 means 1).
	AfterN int
	// Every keeps the rule firing on every match from AfterN on —
	// a persistent failure (e.g. a dead disk's fsync) instead of a
	// transient one.
	Every bool
	// Err is the injected error; nil selects ErrInjected.
	Err error
	// ShortBytes, for OpWrite, writes only that many bytes of the buffer
	// before failing — a short write with a durable prefix.
	ShortBytes int
	// Crash escalates the fault to a simulated process crash: unsynced
	// bytes of every open file are (partially) dropped and every
	// subsequent operation fails with ErrCrashed.
	Crash bool
}

type armedRule struct {
	Rule
	seen  int
	spent bool
}

// matches reports whether the rule fires for this occurrence.
func (r *armedRule) matches(op Op, path string) bool {
	if r.spent || r.Op != op {
		return false
	}
	if r.PathContains != "" && !contains(path, r.PathContains) {
		return false
	}
	r.seen++
	n := r.AfterN
	if n <= 0 {
		n = 1
	}
	if r.seen < n {
		return false
	}
	if !r.Every {
		r.spent = true
	}
	return true
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// FaultFS wraps the real filesystem with seeded, deterministic fault
// injection. The zero value is not usable; call New.
type FaultFS struct {
	mu       sync.Mutex
	rngState uint64
	rules    []*armedRule
	budget   int64 // bytes writable before ENOSPC; <0 = unlimited
	crashed  bool
	open     map[*faultFile]struct{}
	injected int
	points   map[string]int
}

// New returns a FaultFS whose crash tear points are derived from seed.
func New(seed int64) *FaultFS {
	return &FaultFS{
		rngState: uint64(seed)*0x9E3779B97F4A7C15 + 1,
		budget:   -1,
		open:     make(map[*faultFile]struct{}),
		points:   make(map[string]int),
	}
}

// Arm installs a rule. Safe to call between operations.
func (f *FaultFS) Arm(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &armedRule{Rule: r})
}

// SetWriteBudget allows n more bytes of writes before every further
// write fails with ErrNoSpace (a short write at the boundary). Negative
// n removes the limit — "space was freed".
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// Injected reports how many faults (including ENOSPC hits and crashes)
// have fired.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether the simulated process is dead.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Points returns how often each named crash point was passed — the
// chaos harness uses it to confirm protocol coverage.
func (f *FaultFS) Points() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.points))
	for k, v := range f.points {
		out[k] = v
	}
	return out
}

// CrashNow simulates an immediate process crash (see Rule.Crash).
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

func (f *FaultFS) rngLocked() uint64 {
	// splitmix64: deterministic, cheap, and good enough for tear points.
	f.rngState += 0x9E3779B97F4A7C15
	z := f.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// crashLocked kills the simulated process: every open file loses a
// seeded-random suffix of its unsynced bytes (possibly none, possibly
// all — torn writes included), and the FS goes dead.
func (f *FaultFS) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	f.injected++
	for ff := range f.open {
		ff.tear(f.rngLocked())
	}
}

// check runs the rule engine for one operation occurrence. It returns
// the rule that fired (nil for none) and the error to inject.
func (f *FaultFS) check(op Op, path string) (*armedRule, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	if op == OpCrashPoint {
		f.points[path]++
	}
	for _, r := range f.rules {
		if !r.matches(op, path) {
			continue
		}
		f.injected++
		if r.Crash {
			f.crashLocked()
			return r, ErrCrashed
		}
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return r, fmt.Errorf("%s %s: %w", op, path, err)
	}
	return nil, nil
}

// chargeWrite debits n bytes against the budget, returning how many are
// allowed and whether the write runs out of space.
func (f *FaultFS) chargeWrite(n int) (allowed int, full bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget < 0 {
		return n, false
	}
	if int64(n) <= f.budget {
		f.budget -= int64(n)
		return n, false
	}
	allowed = int(f.budget)
	f.budget = 0
	f.injected++
	return allowed, true
}

func (f *FaultFS) forget(ff *faultFile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.open, ff)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpCreate
	if flag&os.O_CREATE == 0 {
		// Opening an existing file is a read-path concern; still honor
		// crash death but no creation rules.
		f.mu.Lock()
		dead := f.crashed
		f.mu.Unlock()
		if dead {
			return nil, ErrCrashed
		}
	} else if _, err := f.check(op, name); err != nil {
		return nil, err
	}
	real, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.track(real)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.check(OpCreate, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	real, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f.track(real)
}

func (f *FaultFS) track(real *os.File) (File, error) {
	size := int64(0)
	if st, err := real.Stat(); err == nil {
		size = st.Size()
	}
	ff := &faultFile{fs: f, f: real, pos: size, size: size, synced: size}
	// New files opened O_WRONLY|O_CREATE|O_EXCL and temp files start
	// empty; reopened files start at offset 0 despite size>0.
	if pos, err := real.Seek(0, io.SeekCurrent); err == nil {
		ff.pos = pos
	}
	f.mu.Lock()
	f.open[ff] = struct{}{}
	f.mu.Unlock()
	return ff, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.check(OpRemove, name); err != nil {
		return err
	}
	return os.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.check(OpMkdir, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return os.ReadDir(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return os.ReadFile(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return OS.SyncDir(dir)
}

func (f *FaultFS) CrashPoint(name string) error {
	_, err := f.check(OpCrashPoint, name)
	return err
}

// faultFile tracks the synced/unsynced split of one open file so a
// simulated crash can drop the unsynced suffix.
type faultFile struct {
	fs *FaultFS
	f  *os.File

	fmu    sync.Mutex
	pos    int64 // current write cursor
	size   int64 // high-water mark of written bytes
	synced int64 // size as of the last successful Sync
	torn   bool  // the crash already truncated this file
}

// tear implements the crash: keep the synced prefix plus a seeded
// portion of the unsynced suffix (rnd chooses the cut, so torn tails —
// partial records, partial pages — occur naturally).
func (ff *faultFile) tear(rnd uint64) {
	ff.fmu.Lock()
	defer ff.fmu.Unlock()
	ff.torn = true
	if ff.size <= ff.synced {
		return
	}
	unsynced := ff.size - ff.synced
	keep := ff.synced + int64(rnd%uint64(unsynced+1))
	_ = ff.f.Truncate(keep)
	_ = ff.f.Close()
}

func (ff *faultFile) dead() bool {
	ff.fmu.Lock()
	defer ff.fmu.Unlock()
	return ff.torn
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.dead() {
		return 0, ErrCrashed
	}
	rule, err := ff.fs.check(OpWrite, ff.f.Name())
	if err != nil {
		if rule != nil && rule.ShortBytes > 0 && rule.ShortBytes < len(p) && !errors.Is(err, ErrCrashed) {
			n, werr := ff.write(p[:rule.ShortBytes])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	allowed, full := ff.fs.chargeWrite(len(p))
	if full {
		n := 0
		if allowed > 0 {
			n, _ = ff.write(p[:allowed])
		}
		return n, fmt.Errorf("write %s: %w", ff.f.Name(), ErrNoSpace)
	}
	return ff.write(p)
}

func (ff *faultFile) write(p []byte) (int, error) {
	n, err := ff.f.Write(p)
	ff.fmu.Lock()
	ff.pos += int64(n)
	if ff.pos > ff.size {
		ff.size = ff.pos
	}
	ff.fmu.Unlock()
	return n, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.dead() {
		return 0, ErrCrashed
	}
	n, err := ff.f.Read(p)
	ff.fmu.Lock()
	ff.pos += int64(n)
	ff.fmu.Unlock()
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.dead() {
		return 0, ErrCrashed
	}
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.fmu.Lock()
		ff.pos = pos
		ff.fmu.Unlock()
	}
	return pos, err
}

func (ff *faultFile) Sync() error {
	if ff.dead() {
		return ErrCrashed
	}
	if _, err := ff.fs.check(OpSync, ff.f.Name()); err != nil {
		return err
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.fmu.Lock()
	ff.synced = ff.size
	ff.fmu.Unlock()
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	if ff.dead() {
		return ErrCrashed
	}
	if _, err := ff.fs.check(OpTruncate, ff.f.Name()); err != nil {
		return err
	}
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	ff.fmu.Lock()
	if size < ff.size {
		ff.size = size
	}
	if size < ff.synced {
		ff.synced = size
	}
	ff.fmu.Unlock()
	return nil
}

func (ff *faultFile) Chmod(mode os.FileMode) error {
	if ff.dead() {
		return ErrCrashed
	}
	return ff.f.Chmod(mode)
}

func (ff *faultFile) Name() string { return ff.f.Name() }

func (ff *faultFile) Close() error {
	ff.fs.forget(ff)
	if ff.dead() {
		return ErrCrashed // the crash already closed the descriptor
	}
	return ff.f.Close()
}

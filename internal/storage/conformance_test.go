package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The conformance suite pins the Device contract every backend must
// satisfy identically: completion-per-request regardless of submit
// order, Array's EOF semantics for short reads, zero-length requests,
// ReadSync correctness, stats monotonicity, and deadlock-free Close
// with requests in flight.

const confSize = 1 << 20

func confData() []byte {
	data := make([]byte, confSize)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	return data
}

// confFile writes the shared test pattern to a real file once per test.
func confFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conf.tiles")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// confBackends returns a factory per backend so destructive subtests
// (Close during inflight) get their own instance.
func confBackends(t *testing.T, data []byte) map[string]func(t *testing.T) Device {
	t.Helper()
	return map[string]func(t *testing.T) Device{
		"array": func(t *testing.T) Device {
			a, err := NewArray(bytes.NewReader(data), Options{NumDisks: 4, StripeSize: 4096})
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"file": func(t *testing.T) Device {
			d, err := NewFileDevice(confFile(t, data), FileOptions{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"file-direct": func(t *testing.T) Device {
			// Direct mode either works or transparently falls back to
			// buffered reads (tmpfs); the contract holds either way.
			d, err := NewFileDevice(confFile(t, data), FileOptions{Workers: 2, Direct: true})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"fault-wrapped-file": func(t *testing.T) Device {
			inner, err := NewFileDevice(confFile(t, data), FileOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFaultDevice(inner, FaultConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"fault-wrapped-array": func(t *testing.T) Device {
			inner, err := NewArray(bytes.NewReader(data), Options{NumDisks: 2, StripeSize: 8192})
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFaultDevice(inner, FaultConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"tiered": func(t *testing.T) Device {
			fast, err := NewFileDevice(confFile(t, data), FileOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := NewArray(bytes.NewReader(data), Options{NumDisks: 2, StripeSize: 4096})
			if err != nil {
				t.Fatal(err)
			}
			ti, err := NewTiered(fast, slow, confSize/2)
			if err != nil {
				t.Fatal(err)
			}
			return ti
		},
	}
}

func TestDeviceConformance(t *testing.T) {
	data := confData()
	for name, mk := range confBackends(t, data) {
		t.Run(name, func(t *testing.T) {
			t.Run("SubmitWaitAllTags", func(t *testing.T) {
				d := mk(t)
				defer d.Close()
				confSubmitWait(t, d, data)
			})
			t.Run("ShortReadAtEOF", func(t *testing.T) {
				d := mk(t)
				defer d.Close()
				confShortAtEOF(t, d, data)
			})
			t.Run("ZeroLength", func(t *testing.T) {
				d := mk(t)
				defer d.Close()
				confZeroLength(t, d)
			})
			t.Run("ReadSync", func(t *testing.T) {
				d := mk(t)
				defer d.Close()
				confReadSync(t, d, data)
			})
			t.Run("StatsMonotone", func(t *testing.T) {
				d := mk(t)
				defer d.Close()
				confStatsMonotone(t, d, data)
			})
			t.Run("CloseDuringInflight", func(t *testing.T) {
				confCloseInflight(t, mk(t))
			})
			t.Run("SubmitAfterClose", func(t *testing.T) {
				d := mk(t)
				d.Close()
				buf := make([]byte, 16)
				if err := d.Submit([]*Request{{Offset: 0, Buf: buf, Tag: 1}}); err == nil {
					t.Fatal("Submit on a closed device should error")
				}
				if err := d.ReadSync(0, buf); err == nil {
					t.Fatal("ReadSync on a closed device should error")
				}
			})
		})
	}
}

// confSubmitWait submits a shuffled batch of in-bounds reads and checks
// exactly one completion per tag with the right bytes, regardless of
// submission or completion order.
func confSubmitWait(t *testing.T, d Device, data []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const n = 64
	reqs := make([]*Request, 0, n)
	bufs := make(map[int64][]byte, n)
	offs := make(map[int64]int64, n)
	for tag := int64(0); tag < n; tag++ {
		size := 1 + rng.Intn(16<<10)
		off := rng.Int63n(confSize - int64(size))
		buf := make([]byte, size)
		bufs[tag] = buf
		offs[tag] = off
		reqs = append(reqs, &Request{Offset: off, Buf: buf, Tag: tag})
	}
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	comps := d.Wait(n, nil)
	if len(comps) != n {
		t.Fatalf("got %d completions, want %d", len(comps), n)
	}
	seen := make(map[int64]bool, n)
	for _, c := range comps {
		if seen[c.Tag] {
			t.Fatalf("tag %d completed twice", c.Tag)
		}
		seen[c.Tag] = true
		if c.Err != nil {
			t.Fatalf("tag %d: unexpected error %v", c.Tag, c.Err)
		}
		buf := bufs[c.Tag]
		if c.N != len(buf) {
			t.Fatalf("tag %d: N=%d want %d", c.Tag, c.N, len(buf))
		}
		off := offs[c.Tag]
		if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
			t.Fatalf("tag %d: wrong bytes at offset %d", c.Tag, off)
		}
	}
}

// confShortAtEOF checks the Array EOF contract: a request straddling
// the end of the data completes with N = available bytes and io.EOF; a
// request entirely past the end completes with N=0 and io.EOF.
func confShortAtEOF(t *testing.T, d Device, data []byte) {
	t.Helper()
	straddle := make([]byte, 4096)
	past := make([]byte, 512)
	reqs := []*Request{
		{Offset: confSize - 1000, Buf: straddle, Tag: 1},
		{Offset: confSize + 4096, Buf: past, Tag: 2},
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Wait(2, nil) {
		switch c.Tag {
		case 1:
			if c.N != 1000 || !errors.Is(c.Err, io.EOF) {
				t.Fatalf("straddling read: N=%d err=%v, want N=1000 io.EOF", c.N, c.Err)
			}
			if !bytes.Equal(straddle[:1000], data[confSize-1000:]) {
				t.Fatal("straddling read returned wrong bytes")
			}
		case 2:
			if c.N != 0 || !errors.Is(c.Err, io.EOF) {
				t.Fatalf("past-EOF read: N=%d err=%v, want N=0 io.EOF", c.N, c.Err)
			}
		default:
			t.Fatalf("unexpected tag %d", c.Tag)
		}
	}
}

func confZeroLength(t *testing.T, d Device) {
	t.Helper()
	if err := d.Submit([]*Request{{Offset: 128, Tag: 9}}); err != nil {
		t.Fatal(err)
	}
	comps := d.Wait(1, nil)
	if len(comps) != 1 || comps[0].Tag != 9 || comps[0].N != 0 || comps[0].Err != nil {
		t.Fatalf("zero-length request: got %+v", comps)
	}
	if err := d.ReadSync(128, nil); err != nil {
		t.Fatalf("zero-length ReadSync: %v", err)
	}
}

func confReadSync(t *testing.T, d Device, data []byte) {
	t.Helper()
	buf := make([]byte, 8192)
	if err := d.ReadSync(12345, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[12345:12345+8192]) {
		t.Fatal("ReadSync returned wrong bytes")
	}
	if err := d.ReadSync(confSize-10, make([]byte, 100)); err == nil {
		t.Fatal("ReadSync past EOF should error")
	}
}

// confStatsMonotone checks that counters never decrease and that a
// round of reads is reflected in Requests and BytesRead.
func confStatsMonotone(t *testing.T, d Device, data []byte) {
	t.Helper()
	prev := d.Stats()
	for round := 0; round < 3; round++ {
		var reqs []*Request
		total := 0
		for i := 0; i < 8; i++ {
			buf := make([]byte, 2048)
			total += len(buf)
			reqs = append(reqs, &Request{Offset: int64(i) * 4096, Buf: buf, Tag: int64(i)})
		}
		if err := d.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		d.Wait(len(reqs), nil)
		cur := d.Stats()
		if cur.Requests < prev.Requests+int64(len(reqs)) {
			t.Fatalf("round %d: Requests %d did not grow by %d from %d",
				round, cur.Requests, len(reqs), prev.Requests)
		}
		if cur.BytesRead < prev.BytesRead+int64(total) {
			t.Fatalf("round %d: BytesRead %d did not grow by %d from %d",
				round, cur.BytesRead, total, prev.BytesRead)
		}
		if cur.Chunks < prev.Chunks {
			t.Fatalf("round %d: Chunks decreased %d -> %d", round, prev.Chunks, cur.Chunks)
		}
		prev = cur
	}
	if es, ok := ExtStatsOf(d); ok {
		if es.QueueDepth != 0 || es.Inflight != 0 {
			t.Fatalf("idle device reports queue depth %d inflight %d", es.QueueDepth, es.Inflight)
		}
		if es.Latency.Count <= 0 {
			t.Fatal("extended stats recorded no read latencies")
		}
	}
}

// confCloseInflight submits a batch and immediately closes: Close must
// not deadlock, and a concurrent Wait must return (possibly short).
func confCloseInflight(t *testing.T, d Device) {
	t.Helper()
	var reqs []*Request
	for i := 0; i < 32; i++ {
		reqs = append(reqs, &Request{Offset: int64(i) * 8192, Buf: make([]byte, 8192), Tag: int64(i)})
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	waited := make(chan int, 1)
	go func() { waited <- len(d.Wait(len(reqs), nil)) }()
	closed := make(chan struct{})
	go func() { d.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked with requests in flight")
	}
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after Close")
	}
}

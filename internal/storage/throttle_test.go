package storage

import (
	"sync"
	"testing"
	"time"
)

func TestThrottleDisabled(t *testing.T) {
	var th Throttle // zero bandwidth: no-op
	begin := time.Now()
	th.Charge(1 << 30)
	if time.Since(begin) > 50*time.Millisecond {
		t.Fatal("disabled throttle slept")
	}
	if th.BusyTime() != 0 {
		t.Fatalf("BusyTime = %v", th.BusyTime())
	}
	var nilTh *Throttle
	nilTh.Charge(100) // must not panic
	if nilTh.BusyTime() != 0 {
		t.Fatal("nil throttle busy")
	}
}

func TestThrottleCharges(t *testing.T) {
	th := &Throttle{Bandwidth: 10 << 20} // 10 MB/s
	begin := time.Now()
	th.Charge(1 << 20) // 1 MB => ~100ms
	elapsed := time.Since(begin)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("1MB at 10MB/s took only %v", elapsed)
	}
	if th.BusyTime() < 90*time.Millisecond {
		t.Fatalf("BusyTime = %v", th.BusyTime())
	}
}

func TestThrottleSerializesConcurrentCharges(t *testing.T) {
	th := &Throttle{Bandwidth: 20 << 20}
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th.Charge(1 << 20) // 4 x 1MB at 20MB/s => >= 200ms total
		}()
	}
	wg.Wait()
	if elapsed := time.Since(begin); elapsed < 150*time.Millisecond {
		t.Fatalf("concurrent charges not serialized: %v", elapsed)
	}
}

func TestThrottleLatencyOnly(t *testing.T) {
	th := &Throttle{Latency: 20 * time.Millisecond}
	begin := time.Now()
	th.Charge(1)
	th.Charge(1)
	if elapsed := time.Since(begin); elapsed < 30*time.Millisecond {
		t.Fatalf("latency not charged: %v", elapsed)
	}
}

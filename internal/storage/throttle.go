package storage

import (
	"sync"
	"time"
)

// Throttle charges byte traffic against an aggregate bandwidth/latency
// budget by sleeping, modelling a disk array for sequential streams that
// do not go through an Array (e.g. the update files the X-Stream baseline
// writes and re-reads every iteration). A zero bandwidth disables it.
type Throttle struct {
	// Bandwidth is the aggregate sustained throughput in bytes/second.
	Bandwidth float64
	// Latency is charged once per Charge call.
	Latency time.Duration

	mu        sync.Mutex
	busyUntil time.Time
	busyTotal time.Duration
}

// Charge books the service time for n bytes and sleeps until the virtual
// disk would have completed the transfer.
func (t *Throttle) Charge(n int64) {
	if t == nil || (t.Bandwidth <= 0 && t.Latency <= 0) {
		return
	}
	service := t.Latency
	if t.Bandwidth > 0 {
		service += time.Duration(float64(n) / t.Bandwidth * float64(time.Second))
	}
	t.mu.Lock()
	now := time.Now()
	if t.busyUntil.Before(now) {
		t.busyUntil = now
	}
	t.busyUntil = t.busyUntil.Add(service)
	t.busyTotal += service
	wake := t.busyUntil
	t.mu.Unlock()
	if d := time.Until(wake); d > 0 {
		time.Sleep(d)
	}
}

// BusyTime returns the total service time charged so far.
func (t *Throttle) BusyTime() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busyTotal
}

package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func submitN(t *testing.T, d Device, n, size int) []Completion {
	t.Helper()
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{Offset: int64(i * size), Buf: make([]byte, size), Tag: int64(i)}
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	comps := make([]Completion, 0, n)
	for len(comps) < n {
		comps = d.Wait(1, comps)
	}
	return comps
}

func newFault(t *testing.T, src *memSource, cfg FaultConfig) *FaultDevice {
	t.Helper()
	inner, err := NewArray(src, Options{NumDisks: 2, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaultDevice(inner, cfg)
	if err != nil {
		inner.Close()
		t.Fatal(err)
	}
	return f
}

func TestFaultConfigValidation(t *testing.T) {
	src := newMemSource(1024)
	inner, err := NewArray(src, Options{NumDisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := NewFaultDevice(inner, FaultConfig{ErrorRate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := NewFaultDevice(inner, FaultConfig{SlowDelay: -time.Second}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestFaultDeviceNoFaultsIsTransparent(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 1})
	defer f.Close()
	reqs := []*Request{{Offset: 100, Buf: make([]byte, 5000), Tag: 9}}
	if err := f.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	comps := f.Wait(1, nil)
	if len(comps) != 1 || comps[0].Tag != 9 || comps[0].Err != nil || comps[0].N != 5000 {
		t.Fatalf("completions = %+v", comps)
	}
	if !bytes.Equal(reqs[0].Buf, src.data[100:5100]) {
		t.Fatal("data mismatch through fault device")
	}
	if st := f.FaultStats(); st.Requests != 1 || st.Errors+st.Shorts+st.Slows != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultDeviceErrorRateOne(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 2, ErrorRate: 1})
	defer f.Close()
	comps := submitN(t, f, 10, 512)
	for _, c := range comps {
		if !errors.Is(c.Err, ErrInjected) {
			t.Fatalf("completion %+v not an injected error", c)
		}
	}
	if st := f.FaultStats(); st.Errors != 10 {
		t.Fatalf("Errors = %d, want 10", st.Errors)
	}
}

func TestFaultDeviceShortReads(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 3, ShortRate: 1})
	defer f.Close()
	comps := submitN(t, f, 10, 512)
	for _, c := range comps {
		if c.Err != nil {
			t.Fatalf("short read surfaced as error: %+v", c)
		}
		if c.N <= 0 || c.N >= 512 {
			t.Fatalf("short read N = %d, want in (0,512)", c.N)
		}
	}
	if st := f.FaultStats(); st.Shorts != 10 {
		t.Fatalf("Shorts = %d, want 10", st.Shorts)
	}
}

func TestFaultDeviceSlowdowns(t *testing.T) {
	src := newMemSource(1 << 16)
	const delay = 20 * time.Millisecond
	f := newFault(t, src, FaultConfig{Seed: 4, SlowRate: 1, SlowDelay: delay})
	defer f.Close()
	begin := time.Now()
	comps := submitN(t, f, 3, 512)
	if elapsed := time.Since(begin); elapsed < 3*delay {
		t.Fatalf("3 slow completions took %v, want >= %v", elapsed, 3*delay)
	}
	for _, c := range comps {
		if c.Err != nil || c.N != 512 {
			t.Fatalf("slow completion corrupted: %+v", c)
		}
	}
	if st := f.FaultStats(); st.Slows != 3 {
		t.Fatalf("Slows = %d, want 3", st.Slows)
	}
}

// Same seed and workload must produce the identical fault sequence.
func TestFaultDeviceDeterministic(t *testing.T) {
	outcome := func() []bool {
		src := newMemSource(1 << 16)
		f := newFault(t, src, FaultConfig{Seed: 42, ErrorRate: 0.3, ShortRate: 0.3})
		defer f.Close()
		comps := submitN(t, f, 64, 256)
		res := make([]bool, 64)
		for _, c := range comps {
			res[c.Tag] = c.Err != nil || c.N < 256
		}
		return res
	}
	a, b := outcome(), outcome()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fault decision differs between identical runs", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == 64 {
		t.Fatalf("fault mix degenerate: %d/64", faults)
	}
}

func TestFaultDeviceReadSync(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 5, ErrorRate: 1})
	defer f.Close()
	if err := f.ReadSync(0, make([]byte, 100)); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadSync error = %v, want ErrInjected", err)
	}

	src2 := newMemSource(1 << 16)
	g := newFault(t, src2, FaultConfig{Seed: 6, ShortRate: 1})
	defer g.Close()
	if err := g.ReadSync(0, make([]byte, 100)); !errors.Is(err, ErrInjected) {
		t.Fatalf("short ReadSync error = %v, want wrapped ErrInjected", err)
	}
}

func TestFaultDeviceCorruption(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 11, CorruptRate: 1, CorruptBytes: 3})
	defer f.Close()
	reqs := []*Request{{Offset: 0, Buf: make([]byte, 512), Tag: 1}}
	if err := f.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	comps := f.Wait(1, nil)
	if len(comps) != 1 || comps[0].Err != nil || comps[0].N != 512 {
		t.Fatalf("corrupted read must still report success: %+v", comps)
	}
	if bytes.Equal(reqs[0].Buf, src.data[:512]) {
		t.Fatal("buffer not corrupted at CorruptRate 1")
	}
	diff := 0
	for i := range reqs[0].Buf {
		if reqs[0].Buf[i] != src.data[i] {
			diff++
		}
	}
	if diff > 3 {
		t.Fatalf("%d bytes differ, want at most CorruptBytes=3", diff)
	}
	if st := f.FaultStats(); st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
}

func TestFaultDeviceCorruptionReadSync(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 12, CorruptRate: 1})
	defer f.Close()
	buf := make([]byte, 256)
	if err := f.ReadSync(0, buf); err != nil {
		t.Fatalf("corrupted ReadSync must report success: %v", err)
	}
	if bytes.Equal(buf, src.data[:256]) {
		t.Fatal("ReadSync buffer not corrupted at CorruptRate 1")
	}
	if st := f.FaultStats(); st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
}

// CorruptMax=1 corrupts exactly the first read; the second read of the
// same range is clean. This is the deterministic recovery scenario the
// engine's re-read path relies on.
func TestFaultDeviceCorruptMax(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 13, CorruptRate: 1, CorruptMax: 1})
	defer f.Close()
	buf := make([]byte, 256)
	if err := f.ReadSync(0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, src.data[:256]) {
		t.Fatal("first read not corrupted")
	}
	if err := f.ReadSync(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, src.data[:256]) {
		t.Fatal("second read corrupted despite CorruptMax=1")
	}
	if st := f.FaultStats(); st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
}

// Corruption decisions must be deterministic for a fixed seed: two
// identical runs flip identical bytes.
func TestFaultDeviceCorruptionDeterministic(t *testing.T) {
	run := func() []byte {
		src := newMemSource(1 << 16)
		f := newFault(t, src, FaultConfig{Seed: 21, CorruptRate: 0.5, CorruptBytes: 2})
		defer f.Close()
		out := make([]byte, 0, 16*64)
		for i := 0; i < 16; i++ {
			buf := make([]byte, 64)
			if err := f.ReadSync(int64(i*64), buf); err != nil {
				t.Fatal(err)
			}
			out = append(out, buf...)
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("corruption pattern differs between identical seeded runs")
	}
}

func TestFaultConfigCorruptValidation(t *testing.T) {
	src := newMemSource(1024)
	inner, err := NewArray(src, Options{NumDisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := NewFaultDevice(inner, FaultConfig{CorruptRate: -0.1}); err == nil {
		t.Fatal("negative CorruptRate accepted")
	}
	if _, err := NewFaultDevice(inner, FaultConfig{CorruptBytes: -1}); err == nil {
		t.Fatal("negative CorruptBytes accepted")
	}
	if _, err := NewFaultDevice(inner, FaultConfig{CorruptMax: -1}); err == nil {
		t.Fatal("negative CorruptMax accepted")
	}
}

func TestFaultDeviceSetConfig(t *testing.T) {
	src := newMemSource(1 << 16)
	f := newFault(t, src, FaultConfig{Seed: 7, ErrorRate: 1})
	defer f.Close()
	if err := f.ReadSync(0, make([]byte, 64)); err == nil {
		t.Fatal("fault device with ErrorRate 1 did not fail")
	}
	if err := f.SetConfig(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := f.ReadSync(0, buf); err != nil {
		t.Fatalf("fault-free read failed after SetConfig: %v", err)
	}
	if !bytes.Equal(buf, src.data[:64]) {
		t.Fatal("data mismatch after SetConfig")
	}
	if err := f.SetConfig(FaultConfig{ErrorRate: 2}); err == nil {
		t.Fatal("SetConfig accepted invalid rate")
	}
}

// Closing a fault device with undrained completions (including injected
// ones) must not deadlock.
func TestFaultDeviceCloseWithPending(t *testing.T) {
	src := newMemSource(1 << 20)
	f := newFault(t, src, FaultConfig{Seed: 8, ErrorRate: 0.5})
	var reqs []*Request
	for i := 0; i < 6000; i++ {
		reqs = append(reqs, &Request{Offset: int64(i * 16), Buf: make([]byte, 16), Tag: int64(i)})
	}
	if err := f.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		f.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with undrained completions")
	}
	if err := f.Submit(reqs[:1]); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}

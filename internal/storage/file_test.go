package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func fileDeviceOver(t *testing.T, data []byte, opts FileOptions) *FileDevice {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.tiles")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewFileDevice(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestCoalesceOutOfOrderTags is the fix-path guard for the demux
// accounting: a batch of adjacent requests submitted with tags out of
// offset order must merge into one span read and still complete each
// tag with exactly its own byte count and bytes. (PR 1 fixed the
// equivalent per-chunk accounting bug in Array.finishChunk; this pins
// the split-completion side of coalescing against the same mistake.)
func TestCoalesceOutOfOrderTags(t *testing.T) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	d := fileDeviceOver(t, data, FileOptions{Workers: 1})

	// Three adjacent ranges with different sizes, tagged out of order.
	sizes := []int{1000, 3000, 500}
	offs := []int64{4096, 5096, 8096}
	tags := []int64{30, 10, 20}
	bufs := make([][]byte, len(sizes))
	var reqs []*Request
	for i := range sizes {
		bufs[i] = make([]byte, sizes[i])
		reqs = append(reqs, &Request{Offset: offs[i], Buf: bufs[i], Tag: tags[i]})
	}
	// Submit in tag order 30, 20, 10 — neither offset- nor tag-sorted.
	if err := d.Submit([]*Request{reqs[0], reqs[2], reqs[1]}); err != nil {
		t.Fatal(err)
	}
	comps := d.Wait(3, nil)
	if len(comps) != 3 {
		t.Fatalf("got %d completions, want 3", len(comps))
	}
	for _, c := range comps {
		var i int
		switch c.Tag {
		case 30:
			i = 0
		case 10:
			i = 1
		case 20:
			i = 2
		default:
			t.Fatalf("unexpected tag %d", c.Tag)
		}
		if c.Err != nil {
			t.Fatalf("tag %d: %v", c.Tag, c.Err)
		}
		if c.N != sizes[i] {
			t.Fatalf("tag %d: N=%d, want exactly %d", c.Tag, c.N, sizes[i])
		}
		if !bytes.Equal(bufs[i], data[offs[i]:offs[i]+int64(sizes[i])]) {
			t.Fatalf("tag %d: wrong bytes", c.Tag)
		}
	}
	es := d.ExtStats()
	if es.Spans != 1 {
		t.Fatalf("adjacent batch issued %d span reads, want 1", es.Spans)
	}
	if es.Coalesced != 2 {
		t.Fatalf("Coalesced=%d, want 2 (two requests absorbed)", es.Coalesced)
	}
	if st := d.Stats(); st.BytesRead != int64(1000+3000+500) {
		t.Fatalf("BytesRead=%d counts more than delivered bytes", st.BytesRead)
	}
}

// TestCoalesceGapBridging: requests with a small hole between them
// merge into one read, the hole's bytes are counted as gap overhead,
// and per-tag byte counts stay exact.
func TestCoalesceGapBridging(t *testing.T) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(4)).Read(data)
	d := fileDeviceOver(t, data, FileOptions{Workers: 1, CoalesceGap: 4096})

	a := make([]byte, 1024)
	b := make([]byte, 1024)
	reqs := []*Request{
		{Offset: 0, Buf: a, Tag: 1},
		{Offset: 3072, Buf: b, Tag: 2}, // 2048-byte hole
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Wait(2, nil) {
		if c.Err != nil || c.N != 1024 {
			t.Fatalf("tag %d: N=%d err=%v", c.Tag, c.N, c.Err)
		}
	}
	if !bytes.Equal(a, data[:1024]) || !bytes.Equal(b, data[3072:4096]) {
		t.Fatal("gap-bridged reads returned wrong bytes")
	}
	es := d.ExtStats()
	if es.Spans != 1 || es.Coalesced != 1 {
		t.Fatalf("Spans=%d Coalesced=%d, want 1/1", es.Spans, es.Coalesced)
	}
	if es.GapBytes != 2048 {
		t.Fatalf("GapBytes=%d, want 2048", es.GapBytes)
	}
	if st := d.Stats(); st.BytesRead != 2048 {
		t.Fatalf("BytesRead=%d must exclude gap bytes", st.BytesRead)
	}
}

// TestCoalesceEOFDemux: a coalesced span truncated by EOF must give
// each member its exact available byte count.
func TestCoalesceEOFDemux(t *testing.T) {
	data := make([]byte, 10000)
	rand.New(rand.NewSource(5)).Read(data)
	d := fileDeviceOver(t, data, FileOptions{Workers: 1})

	full := make([]byte, 2000)  // fully inside
	part := make([]byte, 2000)  // truncated to 1000
	empty := make([]byte, 2000) // entirely past EOF
	reqs := []*Request{
		{Offset: 7000, Buf: full, Tag: 1},
		{Offset: 9000, Buf: part, Tag: 2},
		{Offset: 11000, Buf: empty, Tag: 3},
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Wait(3, nil) {
		switch c.Tag {
		case 1:
			if c.N != 2000 || c.Err != nil {
				t.Fatalf("inside read: N=%d err=%v", c.N, c.Err)
			}
			if !bytes.Equal(full, data[7000:9000]) {
				t.Fatal("inside read: wrong bytes")
			}
		case 2:
			if c.N != 1000 || !errors.Is(c.Err, io.EOF) {
				t.Fatalf("truncated read: N=%d err=%v, want 1000/io.EOF", c.N, c.Err)
			}
			if !bytes.Equal(part[:1000], data[9000:]) {
				t.Fatal("truncated read: wrong bytes")
			}
		case 3:
			if c.N != 0 || !errors.Is(c.Err, io.EOF) {
				t.Fatalf("past-EOF read: N=%d err=%v, want 0/io.EOF", c.N, c.Err)
			}
		}
	}
	if es := d.ExtStats(); es.Spans != 1 {
		t.Fatalf("Spans=%d, want 1", es.Spans)
	}
}

// TestFileDeviceSpanLimits: coalescing respects MaxSpanBytes and a
// negative CoalesceGap disables merging entirely.
func TestFileDeviceSpanLimits(t *testing.T) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(6)).Read(data)

	t.Run("MaxSpanBytes", func(t *testing.T) {
		d := fileDeviceOver(t, data, FileOptions{Workers: 1, MaxSpanBytes: 4096})
		var reqs []*Request
		for i := 0; i < 4; i++ {
			reqs = append(reqs, &Request{Offset: int64(i) * 4096, Buf: make([]byte, 4096), Tag: int64(i)})
		}
		if err := d.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		d.Wait(4, nil)
		if es := d.ExtStats(); es.Spans != 4 || es.Coalesced != 0 {
			t.Fatalf("Spans=%d Coalesced=%d, want 4/0 under a one-request span cap", es.Spans, es.Coalesced)
		}
	})
	t.Run("CoalesceDisabled", func(t *testing.T) {
		d := fileDeviceOver(t, data, FileOptions{Workers: 1, CoalesceGap: -1})
		reqs := []*Request{
			{Offset: 0, Buf: make([]byte, 1024), Tag: 1},
			{Offset: 1024, Buf: make([]byte, 1024), Tag: 2},
		}
		if err := d.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		d.Wait(2, nil)
		if es := d.ExtStats(); es.Spans != 2 {
			t.Fatalf("Spans=%d, want 2 with coalescing disabled", es.Spans)
		}
	})
}

// TestFileDeviceDirectFallback: requesting direct I/O must never break
// correctness — on filesystems that refuse O_DIRECT (tmpdirs are often
// tmpfs) the device falls back to buffered reads transparently.
func TestFileDeviceDirectFallback(t *testing.T) {
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(7)).Read(data)
	d := fileDeviceOver(t, data, FileOptions{Workers: 2, Direct: true})

	var reqs []*Request
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 5000) // deliberately unaligned length
		reqs = append(reqs, &Request{Offset: int64(i)*7000 + 3, Buf: bufs[i], Tag: int64(i)})
	}
	if err := d.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	comps := d.Wait(len(reqs), nil)
	if len(comps) != len(reqs) {
		t.Fatalf("got %d completions, want %d", len(comps), len(reqs))
	}
	for _, c := range comps {
		if c.Err != nil || c.N != 5000 {
			t.Fatalf("tag %d: N=%d err=%v", c.Tag, c.N, c.Err)
		}
		off := c.Tag*7000 + 3
		if !bytes.Equal(bufs[c.Tag], data[off:off+5000]) {
			t.Fatalf("tag %d: wrong bytes (mode=%s)", c.Tag, d.ExtStats().Mode)
		}
	}
}

// TestFileDeviceReadahead: hints are accepted and counted, and reads
// after a hint still return correct data.
func TestFileDeviceReadahead(t *testing.T) {
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(8)).Read(data)
	d := fileDeviceOver(t, data, FileOptions{Workers: 2})

	d.Readahead(0, 64<<10)
	d.Readahead(64<<10, 64<<10)
	buf := make([]byte, 32<<10)
	if err := d.ReadSync(1000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[1000:1000+32<<10]) {
		t.Fatal("read after readahead returned wrong bytes")
	}
	es := d.ExtStats()
	if es.ReadaheadHints != 2 || es.ReadaheadBytes != 128<<10 {
		t.Fatalf("ReadaheadHints=%d ReadaheadBytes=%d, want 2/%d",
			es.ReadaheadHints, es.ReadaheadBytes, 128<<10)
	}
}

// TestAlignedBuf pins the pooled-buffer alignment guarantee O_DIRECT
// depends on.
func TestAlignedBuf(t *testing.T) {
	for _, align := range []int{512, 4096} {
		for _, n := range []int{1, 511, 4096, 1 << 20} {
			b := alignedBuf(n, align)
			if len(b) != n {
				t.Fatalf("alignedBuf(%d,%d): len %d", n, align, len(b))
			}
			if rem := uintptrOf(b) % uintptr(align); rem != 0 {
				t.Fatalf("alignedBuf(%d,%d): base address misaligned by %d", n, align, rem)
			}
		}
	}
}

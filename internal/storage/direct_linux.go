//go:build linux

package storage

import (
	"os"
	"syscall"
)

// openDirect opens path with O_DIRECT for page-cache-bypassing reads.
// Filesystems without direct I/O support (tmpfs, some overlays) fail
// here or on the first read; FileDevice falls back to buffered mode in
// both cases.
func openDirect(path string) (*os.File, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_DIRECT|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, err
	}
	return os.NewFile(uintptr(fd), path), nil
}

package storage

import (
	"sort"
	"sync/atomic"
	"time"
)

// Device is the asynchronous block-device interface the engine consumes.
// Array implements it over the simulated SSD model; FileDevice implements
// it with real positional reads against the tiles file; Tiered composes
// two of them; FaultDevice and the throttle wrap any of them.
type Device interface {
	// Submit enqueues a batch of read requests.
	Submit(reqs []*Request) error
	// Wait blocks for at least min further completions and drains what
	// else is ready.
	Wait(min int, out []Completion) []Completion
	// ReadSync performs one synchronous read.
	ReadSync(offset int64, buf []byte) error
	// Stats snapshots the device counters.
	Stats() Stats
	// Close releases the device.
	Close()
}

var _ Device = (*Array)(nil)

// Readaheader is the optional hint interface a Device may implement:
// Readahead advises the device that the byte range [offset, offset+n)
// is likely to be read soon (the engine derives these hints from the
// union of NeedTileNextIter across the batch's live runs). Hints are
// advisory — a device may drop them — and must never block the caller
// for the duration of the prefetch itself.
type Readaheader interface {
	Readahead(offset, n int64)
}

// ExtStatser is the optional extended-statistics interface: backends
// that track queue depth, in-flight reads, request coalescing, and a
// read-latency histogram expose them here, and wrappers (FaultDevice,
// Tiered) forward or merge their inner devices' readings.
type ExtStatser interface {
	ExtStats() ExtStats
}

// ExtStatsOf returns d's extended statistics when the device (or, for
// wrappers, its inner device) maintains them.
func ExtStatsOf(d Device) (ExtStats, bool) {
	if es, ok := d.(ExtStatser); ok {
		s := es.ExtStats()
		if s.Backend != "" {
			return s, true
		}
	}
	return ExtStats{}, false
}

// ReadLatencySeconds are the bucket upper bounds (seconds) of every
// device read-latency histogram, chosen to resolve page-cache hits
// (tens of microseconds) through seek-bound spinning-disk reads.
var ReadLatencySeconds = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 0.1, 0.25, 1,
}

// LatencyStats is a snapshot of a device's read-latency histogram.
// Counts has len(ReadLatencySeconds)+1 entries (the last is +Inf).
type LatencyStats struct {
	Counts  []int64
	SumNano int64
	Count   int64
}

// SumSeconds returns the summed latency in seconds.
func (l LatencyStats) SumSeconds() float64 { return float64(l.SumNano) / 1e9 }

// Sub returns the per-bucket deltas since an earlier snapshot.
func (l LatencyStats) Sub(prev LatencyStats) LatencyStats {
	out := LatencyStats{
		SumNano: l.SumNano - prev.SumNano,
		Count:   l.Count - prev.Count,
		Counts:  make([]int64, len(l.Counts)),
	}
	for i := range l.Counts {
		out.Counts[i] = l.Counts[i]
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

// Quantile estimates the q-quantile (0..1) of the recorded latencies in
// seconds, attributing each observation to its bucket's upper bound
// (the +Inf bucket reports the largest finite bound).
func (l LatencyStats) Quantile(q float64) float64 {
	if l.Count == 0 || len(l.Counts) == 0 {
		return 0
	}
	rank := int64(q * float64(l.Count-1))
	var cum int64
	for i, c := range l.Counts {
		cum += c
		if cum > rank {
			if i < len(ReadLatencySeconds) {
				return ReadLatencySeconds[i]
			}
			return ReadLatencySeconds[len(ReadLatencySeconds)-1]
		}
	}
	return ReadLatencySeconds[len(ReadLatencySeconds)-1]
}

// ExtStats are the extended per-backend counters the serving path
// exports at /metrics. Queue depth and inflight are instantaneous
// gauges; everything else is a total since device creation.
type ExtStats struct {
	// Backend identifies the implementation: "sim" or "file" (wrappers
	// forward their inner backend's name; Tiered joins both).
	Backend string
	// Mode distinguishes the file backend's read path: "buffered" or
	// "direct" (O_DIRECT). Empty for the simulator.
	Mode string
	// QueueDepth is the number of submitted requests not yet being read.
	QueueDepth int64
	// Inflight is the number of requests currently being read.
	Inflight int64
	// Spans counts physical reads issued (the simulator's per-disk
	// chunks; the file backend's coalesced preads).
	Spans int64
	// Coalesced counts requests absorbed into a shared span read — a
	// batch of k adjacent requests served by one pread contributes k-1.
	Coalesced int64
	// GapBytes counts bytes read only to bridge small gaps between
	// coalesced requests (never delivered to a caller).
	GapBytes int64
	// PadBytes counts bytes read only for O_DIRECT alignment padding.
	PadBytes int64
	// DirectReads counts span reads served through the O_DIRECT
	// descriptor.
	DirectReads int64
	// ReadaheadHints / ReadaheadBytes count accepted readahead hints.
	ReadaheadHints int64
	ReadaheadBytes int64
	// Latency is the read-latency histogram over span reads.
	Latency LatencyStats
}

// Sub returns the counter deltas since an earlier snapshot. The
// instantaneous gauges (QueueDepth, Inflight) and identity fields keep
// the receiver's values.
func (s ExtStats) Sub(prev ExtStats) ExtStats {
	out := s
	out.Spans -= prev.Spans
	out.Coalesced -= prev.Coalesced
	out.GapBytes -= prev.GapBytes
	out.PadBytes -= prev.PadBytes
	out.DirectReads -= prev.DirectReads
	out.ReadaheadHints -= prev.ReadaheadHints
	out.ReadaheadBytes -= prev.ReadaheadBytes
	out.Latency = s.Latency.Sub(prev.Latency)
	return out
}

// latencyHist is the lock-free histogram backing LatencyStats.
type latencyHist struct {
	counts  []atomic.Int64 // len(ReadLatencySeconds)+1
	sumNano atomic.Int64
	count   atomic.Int64
}

func newLatencyHist() *latencyHist {
	return &latencyHist{counts: make([]atomic.Int64, len(ReadLatencySeconds)+1)}
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(ReadLatencySeconds, s)
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.count.Add(1)
}

func (h *latencyHist) snapshot() LatencyStats {
	out := LatencyStats{
		Counts:  make([]int64, len(h.counts)),
		SumNano: h.sumNano.Load(),
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

//go:build linux && (amd64 || arm64)

package storage

import (
	"os"
	"syscall"
)

// fadviseSupported selects the kernel readahead path: on Linux the
// WILLNEED advice starts asynchronous population of the page cache,
// which is exactly the proactive-fetch hint SCR wants for the next
// iteration's tile set.
const fadviseSupported = true

const posixFadvWillNeed = 3

func fadviseWillNeed(f *os.File, off, n int64) {
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(),
		uintptr(off), uintptr(n), posixFadvWillNeed, 0, 0)
}

package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// memSource is an in-memory ReaderAt with optional fault injection.
type memSource struct {
	data      []byte
	mu        sync.Mutex
	failAt    int64 // offset whose reads fail; -1 disables
	reads     int
	errInject error
}

func newMemSource(n int) *memSource {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 7)
	}
	return &memSource{data: data, failAt: -1}
}

func (m *memSource) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	m.reads++
	fail := m.failAt >= 0 && off <= m.failAt && m.failAt < off+int64(len(p))
	m.mu.Unlock()
	if fail {
		return 0, m.errInject
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func TestOptionsValidation(t *testing.T) {
	src := newMemSource(1024)
	if _, err := NewArray(src, Options{NumDisks: 0}); err == nil {
		t.Fatal("zero disks accepted")
	}
	if _, err := NewArray(src, Options{NumDisks: 2, Bandwidth: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	a, err := NewArray(src, Options{NumDisks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.opts.StripeSize != DefaultStripeSize {
		t.Fatalf("stripe defaulted to %d", a.opts.StripeSize)
	}
}

func TestSingleRead(t *testing.T) {
	src := newMemSource(1 << 20)
	a, err := NewArray(src, Options{NumDisks: 4, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	buf := make([]byte, 10000) // crosses several stripes
	if err := a.Submit([]*Request{{Offset: 1234, Buf: buf, Tag: 7}}); err != nil {
		t.Fatal(err)
	}
	comps := a.Wait(1, make([]Completion, 0, 4))
	if len(comps) != 1 || comps[0].Tag != 7 || comps[0].Err != nil {
		t.Fatalf("completions = %+v", comps)
	}
	if comps[0].N != len(buf) {
		t.Fatalf("N = %d, want %d", comps[0].N, len(buf))
	}
	if !bytes.Equal(buf, src.data[1234:1234+10000]) {
		t.Fatal("data mismatch")
	}
}

func TestBatchedSubmit(t *testing.T) {
	src := newMemSource(1 << 20)
	a, err := NewArray(src, Options{NumDisks: 8, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 50
	reqs := make([]*Request, n)
	bufs := make([][]byte, n)
	for i := range reqs {
		bufs[i] = make([]byte, 3000+i)
		reqs[i] = &Request{Offset: int64(i * 5000), Buf: bufs[i], Tag: int64(i)}
	}
	if err := a.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var comps []Completion
	for len(comps) < n {
		comps = a.Wait(1, comps)
	}
	seen := map[int64]bool{}
	for _, c := range comps {
		if c.Err != nil {
			t.Fatalf("tag %d failed: %v", c.Tag, c.Err)
		}
		seen[c.Tag] = true
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct tags", len(seen))
	}
	for i, b := range bufs {
		if !bytes.Equal(b, src.data[i*5000:i*5000+len(b)]) {
			t.Fatalf("request %d data mismatch", i)
		}
	}
	st := a.Stats()
	if st.Requests != n {
		t.Fatalf("Requests = %d", st.Requests)
	}
	wantBytes := int64(0)
	for _, b := range bufs {
		wantBytes += int64(len(b))
	}
	if st.BytesRead != wantBytes {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, wantBytes)
	}
}

func TestZeroLengthRequest(t *testing.T) {
	src := newMemSource(100)
	a, err := NewArray(src, Options{NumDisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Submit([]*Request{{Offset: 10, Buf: nil, Tag: 3}}); err != nil {
		t.Fatal(err)
	}
	comps := a.Wait(1, make([]Completion, 0, 1))
	if len(comps) != 1 || comps[0].Tag != 3 || comps[0].N != 0 || comps[0].Err != nil {
		t.Fatalf("completions = %+v", comps)
	}
}

func TestReadError(t *testing.T) {
	src := newMemSource(1 << 16)
	src.failAt = 5000
	src.errInject = errors.New("injected disk error")
	a, err := NewArray(src, Options{NumDisks: 2, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	buf := make([]byte, 8192)
	if err := a.Submit([]*Request{{Offset: 0, Buf: buf, Tag: 1}}); err != nil {
		t.Fatal(err)
	}
	comps := a.Wait(1, make([]Completion, 0, 1))
	if len(comps) != 1 || comps[0].Err == nil {
		t.Fatalf("expected error completion, got %+v", comps)
	}
}

func TestReadSync(t *testing.T) {
	src := newMemSource(1 << 16)
	a, err := NewArray(src, Options{NumDisks: 2, StripeSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	buf := make([]byte, 2000)
	if err := a.ReadSync(100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, src.data[100:2100]) {
		t.Fatal("ReadSync data mismatch")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	src := newMemSource(100)
	a, err := NewArray(src, Options{NumDisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := a.Submit([]*Request{{Offset: 0, Buf: make([]byte, 1)}}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	a.Close() // double close must be safe
}

// A failed or short chunk must not inflate the completion's byte count:
// N and Stats.BytesRead report what ReadAt actually returned.
func TestShortReadAccounting(t *testing.T) {
	src := newMemSource(1000) // reads past 1000 come back short with io.EOF
	a, err := NewArray(src, Options{NumDisks: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	buf := make([]byte, 300)
	if err := a.Submit([]*Request{{Offset: 900, Buf: buf, Tag: 1}}); err != nil {
		t.Fatal(err)
	}
	comps := a.Wait(1, nil)
	if len(comps) != 1 {
		t.Fatalf("completions = %+v", comps)
	}
	if comps[0].Err == nil {
		t.Fatal("EOF-truncated read completed without error")
	}
	if comps[0].N != 100 {
		t.Fatalf("N = %d, want the 100 bytes actually read", comps[0].N)
	}
	if st := a.Stats(); st.BytesRead != 100 {
		t.Fatalf("BytesRead = %d, want 100", st.BytesRead)
	}
}

// A read ending exactly at EOF is complete, even if the source reports
// io.EOF alongside the full byte count.
func TestFullReadAtEOF(t *testing.T) {
	src := &eofSource{data: make([]byte, 256)}
	a, err := NewArray(src, Options{NumDisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.ReadSync(128, make([]byte, 128)); err != nil {
		t.Fatalf("full read at EOF failed: %v", err)
	}
}

// eofSource returns (n, io.EOF) whenever a read reaches the end of the
// data, as io.ReaderAt explicitly permits.
type eofSource struct{ data []byte }

func (s *eofSource) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(s.data)) {
		return 0, io.EOF
	}
	n := copy(p, s.data[off:])
	if off+int64(n) == int64(len(s.data)) {
		return n, io.EOF
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close must return even when the completion channel is full and nobody
// is draining it — disk goroutines blocked in finishChunk used to keep
// wg.Wait from ever returning.
func TestCloseWithUndrainedCompletions(t *testing.T) {
	src := newMemSource(1 << 20)
	a, err := NewArray(src, Options{NumDisks: 1, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// More chunks than the 4096-completion channel holds, but few enough
	// that Submit itself can finish (disk queue + channel + one in hand).
	var reqs []*Request
	for i := 0; i < 5000; i++ {
		reqs = append(reqs, &Request{Offset: int64(i * 16), Buf: make([]byte, 16), Tag: int64(i)})
	}
	if err := a.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with undrained completions")
	}
}

// Throughput through the throttle model must scale with the number of
// disks: reading the same data on 4 disks should take roughly a quarter
// of 1 disk (this is the mechanism behind Figure 15).
func TestThrottleScaling(t *testing.T) {
	src := newMemSource(1 << 20)
	elapsed := func(disks int) time.Duration {
		a, err := NewArray(src, Options{
			NumDisks:   disks,
			StripeSize: 4096,
			Bandwidth:  100 << 20, // 100 MB/s per disk
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		begin := time.Now()
		var reqs []*Request
		for off := int64(0); off < 1<<20; off += 65536 {
			reqs = append(reqs, &Request{Offset: off, Buf: make([]byte, 65536), Tag: off})
		}
		if err := a.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		comps := make([]Completion, 0, len(reqs))
		for len(comps) < len(reqs) {
			comps = a.Wait(len(reqs), comps)
		}
		return time.Since(begin)
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	if t4 >= t1*2/3 {
		t.Fatalf("4 disks (%v) not meaningfully faster than 1 (%v)", t4, t1)
	}
}

// Property: any (offset, length) read within the source returns exactly
// the source bytes, for random stripe sizes and disk counts.
func TestQuickReadCorrectness(t *testing.T) {
	src := newMemSource(1 << 18)
	f := func(rawOff uint32, rawLen uint16, rawDisks, rawStripe uint8) bool {
		off := int64(rawOff) % (1 << 17)
		length := int(rawLen)%(1<<14) + 1
		disks := int(rawDisks)%8 + 1
		stripe := int64(rawStripe)%2048 + 64
		a, err := NewArray(src, Options{NumDisks: disks, StripeSize: stripe})
		if err != nil {
			return false
		}
		defer a.Close()
		buf := make([]byte, length)
		if err := a.ReadSync(off, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, src.data[off:off+int64(length)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAID-0 chunking is a partition — chunk count equals the
// number of stripe boundaries crossed plus one.
func TestQuickChunking(t *testing.T) {
	src := newMemSource(1)
	f := func(rawOff uint32, rawLen uint16, rawStripe uint8) bool {
		stripe := int64(rawStripe)%4096 + 16
		a, err := NewArray(src, Options{NumDisks: 3, StripeSize: stripe})
		if err != nil {
			return false
		}
		defer a.Close()
		off := int64(rawOff) % (1 << 20)
		length := int64(rawLen) + 1
		st := &reqState{}
		chunks := a.split(st, &Request{Offset: off, Buf: make([]byte, length)})
		firstStripe := off / stripe
		lastStripe := (off + length - 1) / stripe
		if int64(len(chunks)) != lastStripe-firstStripe+1 {
			return false
		}
		// Chunks must be contiguous and cover [off, off+length).
		pos := off
		total := int64(0)
		for _, c := range chunks {
			if c.offset != pos {
				return false
			}
			pos += int64(len(c.buf))
			total += int64(len(c.buf))
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitBatching(t *testing.T) {
	src := newMemSource(1 << 16)
	a, err := NewArray(src, Options{NumDisks: 2, StripeSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var reqs []*Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, &Request{Offset: int64(i * 100), Buf: make([]byte, 100), Tag: int64(i)})
	}
	if err := a.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	// Wait(3) must return at least 3 completions.
	comps := a.Wait(3, nil)
	if len(comps) < 3 {
		t.Fatalf("Wait(3) returned %d", len(comps))
	}
	for len(comps) < 10 {
		comps = a.Wait(1, comps)
	}
	if len(comps) != 10 {
		t.Fatalf("received %d completions, want 10", len(comps))
	}
}

func ExampleArray() {
	src := bytes.NewReader([]byte("hello, tile data"))
	a, _ := NewArray(src, Options{NumDisks: 2, StripeSize: 4})
	defer a.Close()
	buf := make([]byte, 5)
	_ = a.ReadSync(7, buf)
	fmt.Println(string(buf))
	// Output: tile
}

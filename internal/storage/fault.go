package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error injected read faults surface. Callers can
// errors.Is against it to distinguish injected faults from real ones.
var ErrInjected = errors.New("storage: injected read fault")

// FaultConfig configures a FaultDevice. All probabilities are in [0,1]
// and are drawn from a generator seeded with Seed, in request submission
// order, so a fixed workload sees a reproducible fault sequence.
type FaultConfig struct {
	// Seed seeds the deterministic fault generator.
	Seed int64
	// ErrorRate is the probability that a read request fails outright
	// with ErrInjected.
	ErrorRate float64
	// ShortRate is the probability that a read returns fewer bytes than
	// requested (at least one, at most all but one).
	ShortRate float64
	// SlowRate is the probability that a request's completion is delayed
	// by SlowDelay — a latency spike. Spikes stall the completion pump,
	// so like a real device hiccup they can delay later completions too.
	SlowRate float64
	// SlowDelay is the length of one latency spike.
	SlowDelay time.Duration
	// CorruptRate is the probability that a read succeeds but returns
	// silently corrupted data: CorruptBytes bytes of the buffer are
	// XOR-flipped with nonzero masks at seeded positions — the media
	// bit-rot the checksummed tile format exists to catch. The read
	// itself reports success, so only checksum verification can detect
	// the damage.
	CorruptRate float64
	// CorruptBytes is how many bytes each corrupted buffer has flipped
	// (default 1, capped at the buffer length).
	CorruptBytes int
	// CorruptMax, when positive, caps the total number of corrupted
	// reads the device will inject. A test that sets CorruptRate=1,
	// CorruptMax=1 corrupts exactly the first read: the engine's one
	// re-read then sees clean data, exercising the recovery path
	// deterministically.
	CorruptMax int64
}

func (c *FaultConfig) validate() error {
	for _, p := range []float64{c.ErrorRate, c.ShortRate, c.SlowRate, c.CorruptRate} {
		if p < 0 || p > 1 {
			return fmt.Errorf("storage: fault probability %v outside [0,1]", p)
		}
	}
	if c.SlowDelay < 0 {
		return errors.New("storage: negative fault slow delay")
	}
	if c.CorruptBytes < 0 || c.CorruptMax < 0 {
		return errors.New("storage: negative corruption parameter")
	}
	return nil
}

// FaultStats counts injected faults since the device was created.
type FaultStats struct {
	// Requests is the number of read requests that passed through the
	// device (including ReadSync calls).
	Requests int64
	// Errors counts requests failed outright with ErrInjected.
	Errors int64
	// Shorts counts requests truncated to a short read.
	Shorts int64
	// Slows counts latency spikes injected.
	Slows int64
	// Corruptions counts reads whose buffers were silently bit-flipped.
	Corruptions int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s FaultStats) Sub(prev FaultStats) FaultStats {
	return FaultStats{
		Requests:    s.Requests - prev.Requests,
		Errors:      s.Errors - prev.Errors,
		Shorts:      s.Shorts - prev.Shorts,
		Slows:       s.Slows - prev.Slows,
		Corruptions: s.Corruptions - prev.Corruptions,
	}
}

// FaultDevice wraps a Device and injects read errors, short reads, and
// latency spikes according to a FaultConfig. Fault decisions are made at
// submission time under a lock, so a serial submitter (like the engine's
// slide loop) gets a fully deterministic fault sequence for a given seed.
//
// Like Tiered, the device remaps caller tags to internal ids so a pump
// goroutine can merge injected completions with forwarded ones; every
// submitted request produces exactly one completion.
type FaultDevice struct {
	inner Device

	mu    sync.Mutex
	cfg   FaultConfig
	rng   *rand.Rand
	stats FaultStats

	completions chan Completion
	pending     sync.Map // internal id -> faultPending
	nextID      atomic.Int64
	pump        sync.WaitGroup
	closed      atomic.Bool
}

var _ Device = (*FaultDevice)(nil)

type faultPending struct {
	tag   int64
	delay time.Duration
	// buf and flips describe a silent-corruption injection: once the
	// inner read lands, buf[flips[i].off] is XORed with the (nonzero)
	// mask, guaranteeing the returned data differs from the media.
	buf   []byte
	flips []flip
}

type flip struct {
	off  int
	mask byte
}

// drawFlips decides one request's corruption. Caller holds f.mu.
func (f *FaultDevice) drawFlips(buf []byte) []flip {
	if len(buf) == 0 || !f.roll(f.cfg.CorruptRate) {
		return nil
	}
	if f.cfg.CorruptMax > 0 && f.stats.Corruptions >= f.cfg.CorruptMax {
		return nil
	}
	f.stats.Corruptions++
	nb := f.cfg.CorruptBytes
	if nb <= 0 {
		nb = 1
	}
	if nb > len(buf) {
		nb = len(buf)
	}
	flips := make([]flip, nb)
	for i := range flips {
		flips[i] = flip{off: f.rng.Intn(len(buf)), mask: byte(1 + f.rng.Intn(255))}
	}
	return flips
}

func applyFlips(buf []byte, flips []flip, n int) {
	for _, fl := range flips {
		if fl.off < n {
			buf[fl.off] ^= fl.mask
		}
	}
}

// NewFaultDevice wraps inner. It takes ownership: Close closes inner.
func NewFaultDevice(inner Device, cfg FaultConfig) (*FaultDevice, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &FaultDevice{
		inner:       inner,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		completions: make(chan Completion, 4096),
	}
	f.pump.Add(1)
	go f.run()
	return f, nil
}

// SetConfig replaces the fault configuration and reseeds the generator,
// so a caller can change rates (or turn faults off) between runs.
func (f *FaultDevice) SetConfig(cfg FaultConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	f.mu.Lock()
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.mu.Unlock()
	return nil
}

// FaultStats returns a snapshot of the injection counters.
func (f *FaultDevice) FaultStats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// roll draws one fault decision. Caller holds f.mu.
func (f *FaultDevice) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

// run forwards inner completions, restoring caller tags and applying
// injected latency spikes.
func (f *FaultDevice) run() {
	defer f.pump.Done()
	for {
		comps := f.inner.Wait(1, nil)
		if len(comps) == 0 {
			return // inner device closed
		}
		for _, c := range comps {
			v, ok := f.pending.Load(c.Tag)
			if !ok {
				continue
			}
			f.pending.Delete(c.Tag)
			p := v.(faultPending)
			if p.delay > 0 {
				time.Sleep(p.delay)
			}
			if c.Err == nil {
				applyFlips(p.buf, p.flips, c.N)
			}
			f.completions <- Completion{Tag: p.tag, N: c.N, Err: c.Err}
		}
	}
}

// Submit implements Device. Requests chosen for an injected error are not
// forwarded; their failure completions arrive through Wait like any other.
func (f *FaultDevice) Submit(reqs []*Request) error {
	if f.closed.Load() {
		return errors.New("storage: submit on closed fault device")
	}
	var fwd []*Request
	var injected []Completion
	f.mu.Lock()
	for _, r := range reqs {
		f.stats.Requests++
		if f.roll(f.cfg.ErrorRate) {
			f.stats.Errors++
			injected = append(injected, Completion{Tag: r.Tag, Err: ErrInjected})
			continue
		}
		buf := r.Buf
		if len(buf) > 1 && f.roll(f.cfg.ShortRate) {
			f.stats.Shorts++
			buf = buf[:1+f.rng.Intn(len(buf)-1)]
		}
		var delay time.Duration
		if f.roll(f.cfg.SlowRate) {
			f.stats.Slows++
			delay = f.cfg.SlowDelay
		}
		flips := f.drawFlips(buf)
		id := f.nextID.Add(1)
		f.pending.Store(id, faultPending{tag: r.Tag, delay: delay, buf: buf, flips: flips})
		fwd = append(fwd, &Request{Offset: r.Offset, Buf: buf, Tag: id})
	}
	f.mu.Unlock()
	for _, c := range injected {
		f.completions <- c
	}
	if len(fwd) > 0 {
		return f.inner.Submit(fwd)
	}
	return nil
}

// Wait implements Device with the usual min-then-drain semantics.
func (f *FaultDevice) Wait(min int, out []Completion) []Completion {
	received := 0
	for received < min {
		c, ok := <-f.completions
		if !ok {
			return out
		}
		out = append(out, c)
		received++
	}
	for {
		select {
		case c, ok := <-f.completions:
			if !ok {
				return out
			}
			out = append(out, c)
		default:
			return out
		}
	}
}

// ReadSync implements Device. A short read performs the truncated read
// and then reports it as an error (a synchronous caller cannot observe a
// byte count), wrapping ErrInjected.
func (f *FaultDevice) ReadSync(offset int64, buf []byte) error {
	if f.closed.Load() {
		return errors.New("storage: read on closed fault device")
	}
	f.mu.Lock()
	f.stats.Requests++
	fail := f.roll(f.cfg.ErrorRate)
	short := 0
	if !fail && len(buf) > 1 && f.roll(f.cfg.ShortRate) {
		f.stats.Shorts++
		short = 1 + f.rng.Intn(len(buf)-1)
	}
	var delay time.Duration
	if !fail && f.roll(f.cfg.SlowRate) {
		f.stats.Slows++
		delay = f.cfg.SlowDelay
	}
	var flips []flip
	if !fail && short == 0 {
		flips = f.drawFlips(buf)
	}
	if fail {
		f.stats.Errors++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if short > 0 {
		if err := f.inner.ReadSync(offset, buf[:short]); err != nil {
			return err
		}
		return fmt.Errorf("storage: injected short read (%d of %d bytes): %w",
			short, len(buf), ErrInjected)
	}
	if err := f.inner.ReadSync(offset, buf); err != nil {
		return err
	}
	applyFlips(buf, flips, len(buf))
	return nil
}

// Stats implements Device, forwarding the inner device's counters.
func (f *FaultDevice) Stats() Stats { return f.inner.Stats() }

// ExtStats implements ExtStatser, forwarding the inner device's
// extended counters (fault injection does not change them).
func (f *FaultDevice) ExtStats() ExtStats {
	s, _ := ExtStatsOf(f.inner)
	return s
}

// Readahead implements Readaheader, forwarding the hint when the inner
// device accepts hints. Faults are never injected into readahead — it
// is advisory and carries no data.
func (f *FaultDevice) Readahead(offset, n int64) {
	if ra, ok := f.inner.(Readaheader); ok {
		ra.Readahead(offset, n)
	}
}

// Close implements Device. Pending completions no one will read are
// dropped so the pump can exit even when the channel is full.
func (f *FaultDevice) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.inner.Close()
	done := make(chan struct{})
	go func() {
		f.pump.Wait()
		close(done)
	}()
	for {
		select {
		case <-f.completions:
		case <-done:
			close(f.completions)
			return
		}
	}
}

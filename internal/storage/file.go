package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FileDevice serves the Device interface with real positional reads
// against a file — the backend that turns the simulator's bandwidth
// model into a hardware measurement. A fixed pool of submitter
// goroutines issues preads (FlashGraph-style user-space async I/O over
// a thread pool); adjacent requests in a submitted batch are coalesced
// into one large read and their completions split back per tag; on
// Linux an optional O_DIRECT descriptor bypasses the page cache using
// sector-aligned pooled buffers, falling back cleanly to buffered reads
// when the filesystem refuses direct I/O (tmpfs, overlayfs, macOS).
type FileDevice struct {
	f      *os.File // buffered descriptor, always open
	df     *os.File // O_DIRECT descriptor, nil unless direct mode is active
	direct atomic.Bool
	opts   FileOptions

	throttle *Throttle

	spans       chan *fileSpan
	completions chan Completion
	wg          sync.WaitGroup
	closed      atomic.Bool

	// ra feeds the portable readahead worker (nil when fadvise-based
	// readahead is available or readahead is disabled).
	ra     chan raHint
	raWG   sync.WaitGroup
	raStop chan struct{}

	bufPool sync.Pool // *[]byte span scratch, capacity-capped

	requests    atomic.Int64
	spanCount   atomic.Int64
	coalesced   atomic.Int64
	bytesRead   atomic.Int64
	gapBytes    atomic.Int64
	padBytes    atomic.Int64
	directReads atomic.Int64
	raHints     atomic.Int64
	raBytes     atomic.Int64
	queued      atomic.Int64
	inflight    atomic.Int64
	lat         *latencyHist
}

// FileOptions configures a FileDevice.
type FileOptions struct {
	// Workers is the submitter goroutine pool size — the effective queue
	// depth against the kernel. Default 4.
	Workers int
	// Direct requests O_DIRECT reads (Linux). When the open or the first
	// read fails with an alignment/support error the device falls back
	// to buffered reads permanently and keeps serving.
	Direct bool
	// Align is the alignment unit for direct I/O offsets, lengths, and
	// buffers. Default 4096.
	Align int64
	// MaxSpanBytes caps one coalesced read. Default 1 MiB.
	MaxSpanBytes int64
	// CoalesceGap is the largest byte gap between two requests still
	// merged into one span (the gap bytes are read and discarded, which
	// beats a second seek for small holes). Default 16 KiB; negative
	// disables coalescing entirely.
	CoalesceGap int64
	// Bandwidth/Latency, when set, charge an aggregate throttle before
	// each span read so the file backend can also model slower media.
	Bandwidth float64
	Latency   time.Duration
}

func (o *FileOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Align <= 0 {
		o.Align = 4096
	}
	if o.MaxSpanBytes <= 0 {
		o.MaxSpanBytes = 1 << 20
	}
	if o.CoalesceGap == 0 {
		o.CoalesceGap = 16 << 10
	}
}

// spanPart is one caller request inside a coalesced span.
type spanPart struct {
	tag int64
	off int64
	buf []byte
	// done, when non-nil, receives this part's completion instead of the
	// device's shared channel (ReadSync).
	done chan Completion
}

// fileSpan is one physical read: [off, off+length) covering parts.
type fileSpan struct {
	off    int64
	length int64
	parts  []spanPart
}

type raHint struct {
	off int64
	n   int64
}

// NewFileDevice opens path for asynchronous reads.
func NewFileDevice(path string, opts FileOptions) (*FileDevice, error) {
	opts.normalize()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open file backend: %w", err)
	}
	d := &FileDevice{
		f:           f,
		opts:        opts,
		spans:       make(chan *fileSpan, 1024),
		completions: make(chan Completion, 4096),
		raStop:      make(chan struct{}),
		lat:         newLatencyHist(),
	}
	// Span scratch is sized so a MaxSpanBytes span still fits after both
	// ends are expanded to direct-I/O alignment.
	d.bufPool.New = func() any {
		b := alignedBuf(int(opts.MaxSpanBytes+2*opts.Align), int(opts.Align))
		return &b
	}
	if opts.Bandwidth > 0 || opts.Latency > 0 {
		d.throttle = &Throttle{Bandwidth: opts.Bandwidth, Latency: opts.Latency}
	}
	if opts.Direct {
		if df, derr := openDirect(path); derr == nil {
			d.df = df
			d.direct.Store(true)
		}
		// Open failure (unsupported OS/filesystem) silently degrades to
		// buffered mode; ExtStats.Mode reports which path is live.
	}
	if !fadviseSupported {
		d.ra = make(chan raHint, 64)
		d.raWG.Add(1)
		go d.readaheadWorker()
	}
	for i := 0; i < opts.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// alignedBuf returns a length-n slice whose base address is a multiple
// of align, as O_DIRECT requires of user buffers.
func alignedBuf(n, align int) []byte {
	b := make([]byte, n+align)
	shift := 0
	if r := int(uintptrOf(b) % uintptr(align)); r != 0 {
		shift = align - r
	}
	return b[shift : shift+n : shift+n]
}

// Submit implements Device: the batch is sorted by offset, merged into
// coalesced spans, and queued to the worker pool.
func (d *FileDevice) Submit(reqs []*Request) error {
	if d.closed.Load() {
		return errors.New("storage: submit on closed file device")
	}
	parts := make([]spanPart, 0, len(reqs))
	for _, r := range reqs {
		d.requests.Add(1)
		if len(r.Buf) == 0 {
			d.completions <- Completion{Tag: r.Tag}
			continue
		}
		parts = append(parts, spanPart{tag: r.Tag, off: r.Offset, buf: r.Buf})
	}
	for _, s := range d.coalesce(parts) {
		d.queued.Add(int64(len(s.parts)))
		d.spans <- s
	}
	return nil
}

// coalesce sorts parts by offset and greedily merges neighbours whose
// gap is at most CoalesceGap, keeping each span under MaxSpanBytes.
// Requests tagged out of order still land in offset-ordered spans; the
// demux in serve restores per-tag accounting.
func (d *FileDevice) coalesce(parts []spanPart) []*fileSpan {
	if len(parts) == 0 {
		return nil
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].off < parts[j].off })
	var out []*fileSpan
	cur := &fileSpan{off: parts[0].off, length: int64(len(parts[0].buf)), parts: parts[0:1:1]}
	for _, p := range parts[1:] {
		end := cur.off + cur.length
		grown := p.off + int64(len(p.buf)) - cur.off
		if grown < cur.length {
			grown = cur.length // p nested inside the current span
		}
		if d.opts.CoalesceGap >= 0 && p.off <= end+d.opts.CoalesceGap && grown <= d.opts.MaxSpanBytes {
			if p.off > end {
				d.gapBytes.Add(p.off - end)
			}
			cur.length = grown
			cur.parts = append(cur.parts, p)
			d.coalesced.Add(1)
			continue
		}
		out = append(out, cur)
		cur = &fileSpan{off: p.off, length: int64(len(p.buf)), parts: []spanPart{p}}
	}
	return append(out, cur)
}

func (d *FileDevice) worker() {
	defer d.wg.Done()
	var comps []Completion
	for s := range d.spans {
		n := int64(len(s.parts))
		d.queued.Add(-n)
		d.inflight.Add(n)
		d.throttle.Charge(s.length)
		start := time.Now()
		comps = d.serve(s, comps[:0])
		d.lat.observe(time.Since(start))
		// Decrement inflight before delivery so a caller observing its
		// completion never sees its own request still counted.
		d.inflight.Add(-n)
		for i, c := range comps {
			d.deliver(s.parts[i], c)
		}
	}
}

// serve performs the span's physical read and demultiplexes the bytes
// back to each part's buffer, appending one completion per part (in
// part order) to out.
func (d *FileDevice) serve(s *fileSpan, out []Completion) []Completion {
	d.spanCount.Add(1)
	// Single buffered request: read straight into the caller's buffer.
	if len(s.parts) == 1 && !d.direct.Load() {
		p := s.parts[0]
		n, err := d.f.ReadAt(p.buf, p.off)
		d.bytesRead.Add(int64(n))
		return append(out, Completion{Tag: p.tag, N: n, Err: normalizeEOF(n, len(p.buf), err)})
	}
	bp := d.bufPool.Get().(*[]byte)
	data, n, err := d.readSpan(s.off, s.length, *bp)
	for _, p := range s.parts {
		rel := p.off - s.off
		got := n - rel
		if got < 0 {
			got = 0
		}
		if got > int64(len(p.buf)) {
			got = int64(len(p.buf))
		}
		copy(p.buf[:got], data[rel:rel+got])
		d.bytesRead.Add(got)
		perr := err
		if got == int64(len(p.buf)) {
			// Fully delivered parts succeed even when the span's tail hit
			// EOF or an error — same semantics as an uncoalesced read.
			perr = nil
		} else if perr == nil {
			perr = io.ErrUnexpectedEOF
		}
		out = append(out, Completion{Tag: p.tag, N: int(got), Err: perr})
	}
	if cap(*bp) <= int(d.opts.MaxSpanBytes+2*d.opts.Align) {
		d.bufPool.Put(bp)
	}
	return out
}

// readSpan reads length bytes at off into scratch, honouring direct
// mode: offsets and lengths are expanded to alignment, read through the
// O_DIRECT descriptor, and the view narrowed back. It returns the data
// view, the byte count actually available for the requested range, and
// the read error (io.EOF for short reads at end of file).
func (d *FileDevice) readSpan(off, length int64, scratch []byte) ([]byte, int64, error) {
	if d.direct.Load() {
		align := d.opts.Align
		aoff := off &^ (align - 1)
		aend := (off + length + align - 1) &^ (align - 1)
		if alen := aend - aoff; alen <= int64(len(scratch)) {
			m, err := d.df.ReadAt(scratch[:alen], aoff)
			if err != nil && !errors.Is(err, io.EOF) {
				// Filesystem refused the direct read (EINVAL on tmpfs and
				// friends): permanently fall back to buffered mode.
				d.direct.Store(false)
			} else {
				d.directReads.Add(1)
				d.padBytes.Add(alen - length)
				avail := int64(m) - (off - aoff)
				if avail < 0 {
					avail = 0
				}
				if avail > length {
					avail = length
				}
				return scratch[off-aoff:], avail, normalizeEOF64(avail, length, err)
			}
		}
	}
	m, err := d.f.ReadAt(scratch[:length], off)
	return scratch, int64(m), normalizeEOF(m, int(length), err)
}

func normalizeEOF(n, want int, err error) error {
	if err == io.EOF && n == want {
		return nil
	}
	return err
}

func normalizeEOF64(n, want int64, err error) error {
	if errors.Is(err, io.EOF) && n < want {
		return io.EOF
	}
	if n == want {
		return nil
	}
	return err
}

func (d *FileDevice) deliver(p spanPart, c Completion) {
	if p.done != nil {
		p.done <- c
		return
	}
	d.completions <- c
}

// Wait implements Device with the same min-then-drain contract as Array.
func (d *FileDevice) Wait(min int, out []Completion) []Completion {
	received := 0
	for received < min {
		c, ok := <-d.completions
		if !ok {
			return out
		}
		out = append(out, c)
		received++
	}
	for {
		select {
		case c, ok := <-d.completions:
			if !ok {
				return out
			}
			out = append(out, c)
		default:
			return out
		}
	}
}

// ReadSync implements Device: one synchronous read through the worker
// pool (so it respects the throttle and counters) without consuming
// asynchronous completions.
func (d *FileDevice) ReadSync(offset int64, buf []byte) error {
	if d.closed.Load() {
		return errors.New("storage: read on closed file device")
	}
	if len(buf) == 0 {
		return nil
	}
	d.requests.Add(1)
	done := make(chan Completion, 1)
	d.queued.Add(1)
	d.spans <- &fileSpan{off: offset, length: int64(len(buf)),
		parts: []spanPart{{tag: -1, off: offset, buf: buf, done: done}}}
	return (<-done).Err
}

// Readahead implements Readaheader: it advises the kernel (fadvise
// WILLNEED on Linux) or schedules a background warm read elsewhere.
// Direct mode drops hints — there is no cache to warm.
func (d *FileDevice) Readahead(offset, n int64) {
	if n <= 0 || d.closed.Load() || d.direct.Load() {
		return
	}
	d.raHints.Add(1)
	d.raBytes.Add(n)
	if fadviseSupported {
		fadviseWillNeed(d.f, offset, n)
		return
	}
	select {
	case d.ra <- raHint{off: offset, n: n}:
	default: // drop when the warm-read worker is saturated
	}
}

// readaheadWorker is the portable fallback: it pulls the hinted ranges
// through the page cache with discarded sequential reads.
func (d *FileDevice) readaheadWorker() {
	defer d.raWG.Done()
	buf := make([]byte, 256<<10)
	for {
		select {
		case <-d.raStop:
			return
		case h := <-d.ra:
			for h.n > 0 {
				step := int64(len(buf))
				if step > h.n {
					step = h.n
				}
				if _, err := d.f.ReadAt(buf[:step], h.off); err != nil {
					break
				}
				h.off += step
				h.n -= step
			}
		}
	}
}

// Stats implements Device. Chunks counts physical span reads so the
// coalescing ratio is Requests/Chunks, mirroring the simulator's
// request-to-chunk fan-out in the opposite direction.
func (d *FileDevice) Stats() Stats {
	return Stats{
		Requests:  d.requests.Load(),
		Chunks:    d.spanCount.Load(),
		BytesRead: d.bytesRead.Load(),
		BusyTime:  d.throttle.BusyTime(),
	}
}

// ExtStats implements ExtStatser.
func (d *FileDevice) ExtStats() ExtStats {
	mode := "buffered"
	if d.direct.Load() {
		mode = "direct"
	}
	return ExtStats{
		Backend:        "file",
		Mode:           mode,
		QueueDepth:     d.queued.Load(),
		Inflight:       d.inflight.Load(),
		Spans:          d.spanCount.Load(),
		Coalesced:      d.coalesced.Load(),
		GapBytes:       d.gapBytes.Load(),
		PadBytes:       d.padBytes.Load(),
		DirectReads:    d.directReads.Load(),
		ReadaheadHints: d.raHints.Load(),
		ReadaheadBytes: d.raBytes.Load(),
		Latency:        d.lat.snapshot(),
	}
}

// Close implements Device with Array's contract: queued spans are
// served, undrained completions dropped, then the completion channel is
// closed so a blocked Wait returns what it has.
func (d *FileDevice) Close() {
	if d.closed.Swap(true) {
		return
	}
	close(d.spans)
	close(d.raStop)
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		d.raWG.Wait()
		close(done)
	}()
	for {
		select {
		case <-d.completions:
		case <-done:
			close(d.completions)
			d.f.Close()
			if d.df != nil {
				d.df.Close()
			}
			return
		}
	}
}

package storage

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Tiered is the tiered store of the paper's future work (§IX): bytes
// below Boundary live on a fast device (the SSD array), bytes at or above
// it on a slow one (a set of hard drives). Requests spanning the boundary
// are split and their completions merged.
type Tiered struct {
	fast, slow Device
	boundary   int64

	completions chan Completion
	pumps       sync.WaitGroup
	nextID      atomic.Int64
	pending     sync.Map // internal id -> *tieredReq
	closed      atomic.Bool
}

type tieredReq struct {
	tag       int64
	remaining int32
	n         int32
	err       atomic.Value
}

// NewTiered builds a tiered device. It takes ownership of fast and slow:
// Close closes both.
func NewTiered(fast, slow Device, boundary int64) (*Tiered, error) {
	if boundary < 0 {
		return nil, errors.New("storage: negative tier boundary")
	}
	t := &Tiered{fast: fast, slow: slow, boundary: boundary,
		completions: make(chan Completion, 4096)}
	for _, d := range []Device{fast, slow} {
		t.pumps.Add(1)
		go t.pump(d)
	}
	return t, nil
}

// pump forwards one sub-device's completions into the merged channel.
func (t *Tiered) pump(d Device) {
	defer t.pumps.Done()
	for {
		comps := d.Wait(1, nil)
		if len(comps) == 0 {
			return // device closed
		}
		for _, c := range comps {
			v, ok := t.pending.Load(c.Tag)
			if !ok {
				continue
			}
			req := v.(*tieredReq)
			if c.Err != nil {
				req.err.CompareAndSwap(nil, c.Err)
			}
			atomic.AddInt32(&req.n, int32(c.N))
			if atomic.AddInt32(&req.remaining, -1) == 0 {
				t.pending.Delete(c.Tag)
				out := Completion{Tag: req.tag, N: int(atomic.LoadInt32(&req.n))}
				if e, ok := req.err.Load().(error); ok {
					out.Err = e
				}
				t.completions <- out
			}
		}
	}
}

// split cuts a request at the tier boundary.
func (t *Tiered) split(r *Request) (fast, slow *Request) {
	end := r.Offset + int64(len(r.Buf))
	switch {
	case end <= t.boundary:
		return r, nil
	case r.Offset >= t.boundary:
		return nil, r
	default:
		cut := t.boundary - r.Offset
		return &Request{Offset: r.Offset, Buf: r.Buf[:cut]},
			&Request{Offset: t.boundary, Buf: r.Buf[cut:]}
	}
}

// Submit implements Device.
func (t *Tiered) Submit(reqs []*Request) error {
	if t.closed.Load() {
		return errors.New("storage: submit on closed tiered device")
	}
	var toFast, toSlow []*Request
	for _, r := range reqs {
		f, s := t.split(r)
		parts := 0
		if f != nil {
			parts++
		}
		if s != nil {
			parts++
		}
		if parts == 0 {
			t.completions <- Completion{Tag: r.Tag}
			continue
		}
		st := &tieredReq{tag: r.Tag, remaining: int32(parts)}
		if f != nil {
			id := t.nextID.Add(1)
			t.pending.Store(id, st)
			toFast = append(toFast, &Request{Offset: f.Offset, Buf: f.Buf, Tag: id})
		}
		if s != nil {
			id := t.nextID.Add(1)
			t.pending.Store(id, st)
			toSlow = append(toSlow, &Request{Offset: s.Offset, Buf: s.Buf, Tag: id})
		}
	}
	if len(toFast) > 0 {
		if err := t.fast.Submit(toFast); err != nil {
			return err
		}
	}
	if len(toSlow) > 0 {
		if err := t.slow.Submit(toSlow); err != nil {
			return err
		}
	}
	return nil
}

// Wait implements Device.
func (t *Tiered) Wait(min int, out []Completion) []Completion {
	received := 0
	for received < min {
		c, ok := <-t.completions
		if !ok {
			return out
		}
		out = append(out, c)
		received++
	}
	for {
		select {
		case c, ok := <-t.completions:
			if !ok {
				return out
			}
			out = append(out, c)
		default:
			return out
		}
	}
}

// ReadSync implements Device.
func (t *Tiered) ReadSync(offset int64, buf []byte) error {
	f, s := t.split(&Request{Offset: offset, Buf: buf})
	if f != nil {
		if err := t.fast.ReadSync(f.Offset, f.Buf); err != nil {
			return err
		}
	}
	if s != nil {
		return t.slow.ReadSync(s.Offset, s.Buf)
	}
	return nil
}

// Stats implements Device, summing both tiers.
func (t *Tiered) Stats() Stats {
	fs, ss := t.fast.Stats(), t.slow.Stats()
	return Stats{
		Requests:  fs.Requests + ss.Requests,
		Chunks:    fs.Chunks + ss.Chunks,
		BytesRead: fs.BytesRead + ss.BytesRead,
		BusyTime:  fs.BusyTime + ss.BusyTime,
	}
}

// TierStats returns the per-tier counters.
func (t *Tiered) TierStats() (fast, slow Stats) {
	return t.fast.Stats(), t.slow.Stats()
}

// ExtStats implements ExtStatser, merging whichever tiers track
// extended counters.
func (t *Tiered) ExtStats() ExtStats {
	fs, fok := ExtStatsOf(t.fast)
	ss, sok := ExtStatsOf(t.slow)
	switch {
	case fok && sok:
		out := fs
		out.Backend = fs.Backend + "+" + ss.Backend
		if ss.Mode != "" && ss.Mode != fs.Mode {
			out.Mode = fs.Mode + "+" + ss.Mode
		}
		out.QueueDepth += ss.QueueDepth
		out.Inflight += ss.Inflight
		out.Spans += ss.Spans
		out.Coalesced += ss.Coalesced
		out.GapBytes += ss.GapBytes
		out.PadBytes += ss.PadBytes
		out.DirectReads += ss.DirectReads
		out.ReadaheadHints += ss.ReadaheadHints
		out.ReadaheadBytes += ss.ReadaheadBytes
		out.Latency = addLatency(fs.Latency, ss.Latency)
		return out
	case fok:
		return fs
	case sok:
		return ss
	}
	return ExtStats{}
}

func addLatency(a, b LatencyStats) LatencyStats {
	out := LatencyStats{
		SumNano: a.SumNano + b.SumNano,
		Count:   a.Count + b.Count,
	}
	n := len(a.Counts)
	if len(b.Counts) > n {
		n = len(b.Counts)
	}
	out.Counts = make([]int64, n)
	for i := range out.Counts {
		if i < len(a.Counts) {
			out.Counts[i] += a.Counts[i]
		}
		if i < len(b.Counts) {
			out.Counts[i] += b.Counts[i]
		}
	}
	return out
}

// Readahead implements Readaheader, forwarding the hinted range to the
// tier(s) that own it.
func (t *Tiered) Readahead(offset, n int64) {
	end := offset + n
	if offset < t.boundary {
		fe := end
		if fe > t.boundary {
			fe = t.boundary
		}
		if ra, ok := t.fast.(Readaheader); ok {
			ra.Readahead(offset, fe-offset)
		}
	}
	if end > t.boundary {
		so := offset
		if so < t.boundary {
			so = t.boundary
		}
		if ra, ok := t.slow.(Readaheader); ok {
			ra.Readahead(so, end-so)
		}
	}
}

// Close implements Device. As with Array.Close, pending merged
// completions are dropped if no one is draining them, so a pump blocked
// on a full channel cannot deadlock shutdown.
func (t *Tiered) Close() {
	if t.closed.Swap(true) {
		return
	}
	t.fast.Close()
	t.slow.Close()
	done := make(chan struct{})
	go func() {
		t.pumps.Wait()
		close(done)
	}()
	for {
		select {
		case <-t.completions:
		case <-done:
			close(t.completions)
			return
		}
	}
}

// Package storage provides the I/O substrate of the reproduction: a
// software-RAID-0 array of simulated SSDs with an asynchronous, batched
// submission interface shaped like Linux AIO (io_submit / io_getevents),
// which is what G-Store uses to saturate its disk array (§V-B).
//
// The paper's testbed is eight SATA SSDs behind an HBA with 64 KB RAID-0
// striping. Here each simulated disk is a goroutine that serves
// stripe-sized chunks from a shared io.ReaderAt (a real file), optionally
// throttled by a per-disk bandwidth/latency model. The throttle makes
// disk-count scaling (Figure 15) and compute/I/O overlap (the SCR
// pipeline) behave as they do on hardware while keeping experiment
// runtimes in seconds. With Bandwidth == 0 the array is an unthrottled
// asynchronous reader over the page cache.
package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStripeSize matches the paper's 64 KB software-RAID stripe.
const DefaultStripeSize = 64 << 10

// Options configures an Array.
type Options struct {
	// NumDisks is the number of simulated SSDs (the paper sweeps 1–8).
	NumDisks int
	// StripeSize is the RAID-0 stripe unit in bytes.
	StripeSize int64
	// Bandwidth is the sustained read bandwidth of one disk in bytes per
	// second. Zero disables throttling.
	Bandwidth float64
	// Latency is the fixed per-chunk service latency of one disk.
	Latency time.Duration
}

// DefaultOptions returns an unthrottled single-file array resembling the
// paper's 8-SSD testbed topology.
func DefaultOptions() Options {
	return Options{NumDisks: 8, StripeSize: DefaultStripeSize}
}

func (o *Options) normalize() error {
	if o.NumDisks <= 0 {
		return fmt.Errorf("storage: NumDisks %d must be positive", o.NumDisks)
	}
	if o.StripeSize <= 0 {
		o.StripeSize = DefaultStripeSize
	}
	if o.Bandwidth < 0 || o.Latency < 0 {
		return errors.New("storage: negative bandwidth or latency")
	}
	return nil
}

// Request is one read to be served by the array. The caller provides the
// destination buffer; Tag identifies the request in its Completion.
type Request struct {
	Offset int64
	Buf    []byte
	Tag    int64
}

// Completion reports one finished Request.
type Completion struct {
	Tag int64
	N   int
	Err error
}

// Stats aggregates array counters. All fields are totals since creation.
type Stats struct {
	Requests  int64
	Chunks    int64
	BytesRead int64
	// BusyTime is the summed service time the throttle model charged
	// across all disks (zero when unthrottled).
	BusyTime time.Duration
}

type chunk struct {
	req    *reqState
	offset int64 // offset into the source
	buf    []byte
}

type reqState struct {
	tag       int64
	remaining int32
	n         int32
	err       atomic.Value // error
	// done, when non-nil, receives the completion instead of the array's
	// shared channel (used by ReadSync so it cannot steal async events).
	done chan Completion
}

// Array is a simulated SSD array. Submit and Wait may be used
// concurrently from multiple goroutines.
type Array struct {
	src  io.ReaderAt
	opts Options

	queues      []chan chunk
	completions chan Completion
	wg          sync.WaitGroup
	closed      atomic.Bool

	requests  atomic.Int64
	chunks    atomic.Int64
	bytesRead atomic.Int64
	busyNanos atomic.Int64
	queued    atomic.Int64
	inflight  atomic.Int64
	lat       *latencyHist
}

// NewArray creates an array reading from src.
func NewArray(src io.ReaderAt, opts Options) (*Array, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	a := &Array{
		src:         src,
		opts:        opts,
		queues:      make([]chan chunk, opts.NumDisks),
		completions: make(chan Completion, 4096),
		lat:         newLatencyHist(),
	}
	for i := range a.queues {
		a.queues[i] = make(chan chunk, 1024)
		a.wg.Add(1)
		go a.disk(i)
	}
	return a, nil
}

// disk serves one simulated SSD's queue in order, applying the bandwidth
// and latency model before each chunk's data is delivered.
func (a *Array) disk(i int) {
	defer a.wg.Done()
	var busyUntil time.Time
	for c := range a.queues[i] {
		a.queued.Add(-1)
		a.inflight.Add(1)
		start := time.Now()
		if a.opts.Bandwidth > 0 || a.opts.Latency > 0 {
			service := a.opts.Latency
			if a.opts.Bandwidth > 0 {
				service += time.Duration(float64(len(c.buf)) / a.opts.Bandwidth * float64(time.Second))
			}
			now := time.Now()
			if busyUntil.Before(now) {
				busyUntil = now
			}
			busyUntil = busyUntil.Add(service)
			a.busyNanos.Add(int64(service))
			if d := time.Until(busyUntil); d > 0 {
				time.Sleep(d)
			}
		}
		var n int
		var err error
		if len(c.buf) > 0 {
			n, err = a.src.ReadAt(c.buf, c.offset)
			if err == io.EOF && n == len(c.buf) {
				// ReaderAt may report EOF alongside a complete read.
				err = nil
			}
		}
		a.chunks.Add(1)
		a.bytesRead.Add(int64(n))
		a.lat.observe(time.Since(start))
		a.inflight.Add(-1)
		a.finishChunk(c, n, err)
	}
}

func (a *Array) finishChunk(c chunk, n int, err error) {
	if err != nil {
		c.req.err.CompareAndSwap(nil, err)
	}
	atomic.AddInt32(&c.req.n, int32(n))
	if atomic.AddInt32(&c.req.remaining, -1) == 0 {
		comp := Completion{Tag: c.req.tag, N: int(atomic.LoadInt32(&c.req.n))}
		if e, ok := c.req.err.Load().(error); ok {
			comp.Err = e
		}
		if c.req.done != nil {
			c.req.done <- comp
			return
		}
		a.completions <- comp
	}
}

// Submit enqueues a batch of requests, the counterpart of one io_submit
// call batching many I/Os (§V-B). It returns after queuing; results arrive
// via Wait.
func (a *Array) Submit(reqs []*Request) error {
	if a.closed.Load() {
		return errors.New("storage: submit on closed array")
	}
	for _, r := range reqs {
		a.requests.Add(1)
		st := &reqState{tag: r.Tag}
		chunks := a.split(st, r)
		if len(chunks) == 0 {
			// Zero-length read completes immediately.
			a.completions <- Completion{Tag: r.Tag}
			continue
		}
		atomic.StoreInt32(&st.remaining, int32(len(chunks)))
		a.queued.Add(int64(len(chunks)))
		for _, c := range chunks {
			a.queues[a.diskOf(c.offset)] <- c
		}
	}
	return nil
}

// split cuts a request at stripe boundaries so each chunk maps to exactly
// one disk.
func (a *Array) split(st *reqState, r *Request) []chunk {
	var out []chunk
	off := r.Offset
	buf := r.Buf
	for len(buf) > 0 {
		inStripe := a.opts.StripeSize - off%a.opts.StripeSize
		n := int64(len(buf))
		if n > inStripe {
			n = inStripe
		}
		out = append(out, chunk{req: st, offset: off, buf: buf[:n]})
		off += n
		buf = buf[n:]
	}
	return out
}

// diskOf maps a byte offset to its RAID-0 disk.
func (a *Array) diskOf(offset int64) int {
	return int((offset / a.opts.StripeSize) % int64(a.opts.NumDisks))
}

// Wait blocks until at least min further completions arrive (or the array
// is closed), appends them to out, then drains whatever else is already
// available without blocking — io_getevents-style batching. It returns
// the extended slice.
func (a *Array) Wait(min int, out []Completion) []Completion {
	received := 0
	for received < min {
		c, ok := <-a.completions
		if !ok {
			return out
		}
		out = append(out, c)
		received++
	}
	for {
		select {
		case c, ok := <-a.completions:
			if !ok {
				return out
			}
			out = append(out, c)
		default:
			return out
		}
	}
}

// ReadSync performs one synchronous read through the array: the
// "direct and synchronous POSIX I/O" mode the paper contrasts AIO with.
// It does not consume asynchronous completions.
func (a *Array) ReadSync(offset int64, buf []byte) error {
	if a.closed.Load() {
		return errors.New("storage: read on closed array")
	}
	if len(buf) == 0 {
		return nil
	}
	a.requests.Add(1)
	st := &reqState{tag: -1, done: make(chan Completion, 1)}
	chunks := a.split(st, &Request{Offset: offset, Buf: buf, Tag: -1})
	atomic.StoreInt32(&st.remaining, int32(len(chunks)))
	a.queued.Add(int64(len(chunks)))
	for _, c := range chunks {
		a.queues[a.diskOf(c.offset)] <- c
	}
	return (<-st.done).Err
}

// Stats returns a snapshot of the counters.
func (a *Array) Stats() Stats {
	return Stats{
		Requests:  a.requests.Load(),
		Chunks:    a.chunks.Load(),
		BytesRead: a.bytesRead.Load(),
		BusyTime:  time.Duration(a.busyNanos.Load()),
	}
}

// ExtStats implements ExtStatser. The simulator issues one physical
// read per stripe chunk, so Spans counts chunks and Coalesced stays
// zero; latency includes the bandwidth model's service time, which is
// the point of comparing it against the file backend.
func (a *Array) ExtStats() ExtStats {
	return ExtStats{
		Backend:    "sim",
		QueueDepth: a.queued.Load(),
		Inflight:   a.inflight.Load(),
		Spans:      a.chunks.Load(),
		Latency:    a.lat.snapshot(),
	}
}

// Close shuts the disk goroutines down. Pending requests are served
// before Close returns, but their completions are dropped if no one is
// draining them — a disk goroutine blocked on a full completion channel
// must not deadlock shutdown. The completion channel is then closed; any
// blocked Wait returns what it has.
func (a *Array) Close() {
	if a.closed.Swap(true) {
		return
	}
	for _, q := range a.queues {
		close(q)
	}
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-a.completions:
		case <-done:
			close(a.completions)
			return
		}
	}
}

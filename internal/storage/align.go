package storage

import "unsafe"

// uintptrOf returns the base address of a non-empty slice, used to
// shift pooled buffers onto O_DIRECT alignment boundaries.
func uintptrOf(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }

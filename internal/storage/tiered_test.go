package storage

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func newTiered(t *testing.T, src *memSource, boundary int64, slowBW float64) *Tiered {
	t.Helper()
	fast, err := NewArray(src, Options{NumDisks: 4, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewArray(src, Options{NumDisks: 1, StripeSize: 1024, Bandwidth: slowBW})
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTiered(fast, slow, boundary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(td.Close)
	return td
}

func TestTieredValidation(t *testing.T) {
	src := newMemSource(1024)
	fast, _ := NewArray(src, Options{NumDisks: 1})
	slow, _ := NewArray(src, Options{NumDisks: 1})
	if _, err := NewTiered(fast, slow, -1); err == nil {
		t.Fatal("negative boundary accepted")
	}
	fast.Close()
	slow.Close()
}

func TestTieredReadBothSides(t *testing.T) {
	src := newMemSource(1 << 16)
	td := newTiered(t, src, 1<<15, 0)

	for _, tc := range []struct {
		name string
		off  int64
		n    int
	}{
		{"fast only", 100, 1000},
		{"slow only", 1<<15 + 100, 1000},
		{"spanning", 1<<15 - 500, 1000},
		{"at boundary", 1 << 15, 512},
	} {
		buf := make([]byte, tc.n)
		if err := td.ReadSync(tc.off, buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(buf, src.data[tc.off:tc.off+int64(tc.n)]) {
			t.Fatalf("%s: data mismatch", tc.name)
		}
	}
}

func TestTieredAsyncSpanning(t *testing.T) {
	src := newMemSource(1 << 16)
	td := newTiered(t, src, 1<<15, 0)

	var reqs []*Request
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 3000)
		off := int64(i)*4000 + (1 << 15) - 16000 // some fast, some spanning, some slow
		reqs = append(reqs, &Request{Offset: off, Buf: bufs[i], Tag: int64(i)})
	}
	if err := td.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var comps []Completion
	for len(comps) < len(reqs) {
		comps = td.Wait(1, comps)
	}
	for _, c := range comps {
		if c.Err != nil {
			t.Fatalf("tag %d: %v", c.Tag, c.Err)
		}
		if c.N != 3000 {
			t.Fatalf("tag %d: N = %d", c.Tag, c.N)
		}
	}
	for i, b := range bufs {
		off := reqs[i].Offset
		if !bytes.Equal(b, src.data[off:off+3000]) {
			t.Fatalf("request %d data mismatch", i)
		}
	}
	st := td.Stats()
	if st.BytesRead != 8*3000 {
		t.Fatalf("BytesRead = %d", st.BytesRead)
	}
	fs, ss := td.TierStats()
	if fs.BytesRead == 0 || ss.BytesRead == 0 {
		t.Fatalf("tier split missing: fast=%d slow=%d", fs.BytesRead, ss.BytesRead)
	}
}

func TestTieredZeroLength(t *testing.T) {
	src := newMemSource(1024)
	td := newTiered(t, src, 512, 0)
	if err := td.Submit([]*Request{{Offset: 10, Tag: 5}}); err != nil {
		t.Fatal(err)
	}
	comps := td.Wait(1, nil)
	if len(comps) != 1 || comps[0].Tag != 5 {
		t.Fatalf("completions = %+v", comps)
	}
}

func TestTieredSlowTierIsSlower(t *testing.T) {
	src := newMemSource(1 << 20)
	// Slow tier at 4 MB/s.
	td := newTiered(t, src, 1<<19, 4<<20)
	buf := make([]byte, 1<<18)

	begin := time.Now()
	if err := td.ReadSync(0, buf); err != nil {
		t.Fatal(err)
	}
	fastT := time.Since(begin)

	begin = time.Now()
	if err := td.ReadSync(1<<19, buf); err != nil {
		t.Fatal(err)
	}
	slowT := time.Since(begin)
	if slowT < 4*fastT {
		t.Fatalf("slow tier (%v) not meaningfully slower than fast (%v)", slowT, fastT)
	}
}

func TestTieredSubmitAfterClose(t *testing.T) {
	src := newMemSource(1024)
	fast, _ := NewArray(src, Options{NumDisks: 1})
	slow, _ := NewArray(src, Options{NumDisks: 1})
	td, err := NewTiered(fast, slow, 512)
	if err != nil {
		t.Fatal(err)
	}
	td.Close()
	if err := td.Submit([]*Request{{Offset: 0, Buf: make([]byte, 1)}}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	td.Close() // idempotent
}

// Property: tiered reads equal direct reads for any offset/length/boundary.
func TestQuickTieredCorrectness(t *testing.T) {
	src := newMemSource(1 << 16)
	f := func(rawOff, rawBound uint16, rawLen uint16) bool {
		off := int64(rawOff) % (1 << 15)
		n := int(rawLen)%4096 + 1
		bound := int64(rawBound)
		fast, err := NewArray(src, Options{NumDisks: 2, StripeSize: 512})
		if err != nil {
			return false
		}
		slow, err := NewArray(src, Options{NumDisks: 1, StripeSize: 512})
		if err != nil {
			return false
		}
		td, err := NewTiered(fast, slow, bound)
		if err != nil {
			return false
		}
		defer td.Close()
		buf := make([]byte, n)
		if err := td.ReadSync(off, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, src.data[off:off+int64(n)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Tiered.Close must return even when its merged completion channel is
// full and nobody is draining — the pump goroutines must not wedge
// shutdown (same hazard as Array.Close).
func TestTieredCloseWithUndrainedCompletions(t *testing.T) {
	src := newMemSource(1 << 20)
	fast, err := NewArray(src, Options{NumDisks: 2, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewArray(src, Options{NumDisks: 1, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTiered(fast, slow, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*Request
	for i := 0; i < 5000; i++ {
		reqs = append(reqs, &Request{Offset: int64(i * 16), Buf: make([]byte, 16), Tag: int64(i)})
	}
	if err := td.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		td.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Tiered.Close deadlocked with undrained completions")
	}
}

//go:build !linux || (!amd64 && !arm64)

package storage

import "os"

// Without fadvise the FileDevice warms the page cache itself with a
// background read goroutine (see readaheadWorker).
const fadviseSupported = false

func fadviseWillNeed(f *os.File, off, n int64) {}

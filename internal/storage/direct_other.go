//go:build !linux

package storage

import (
	"errors"
	"os"
)

func openDirect(path string) (*os.File, error) {
	return nil, errors.New("storage: O_DIRECT unsupported on this platform")
}

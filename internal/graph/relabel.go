package graph

import "sort"

// Vertex relabeling is the standard locality preprocessing for 2D
// partitioned stores (the paper's physical grouping draws on
// locality-aware placement [34]; systems like GridGraph ship a
// degree-sort pass): renumbering vertices by descending degree clusters
// the hubs of a power-law graph into the lowest IDs, which concentrates
// edges into the top-left tiles of the grid — fewer, denser tiles with
// better metadata locality.

// Permutation maps old vertex IDs to new ones.
type Permutation []VertexID

// Inverse returns the inverse permutation (new ID -> old ID).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = VertexID(old)
	}
	return inv
}

// Valid reports whether p is a bijection over its index space.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, nw := range p {
		if int(nw) >= len(p) || seen[nw] {
			return false
		}
		seen[nw] = true
	}
	return true
}

// RelabelByDegree renumbers el's vertices by descending degree (ties by
// original ID) and returns the rewritten edge list plus the permutation
// (old ID -> new ID). The input is not modified.
func RelabelByDegree(el *EdgeList) (*EdgeList, Permutation) {
	deg := el.OutDegrees()
	order := make([]VertexID, el.NumVertices)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := deg[order[a]], deg[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make(Permutation, el.NumVertices)
	for newID, oldID := range order {
		perm[oldID] = VertexID(newID)
	}
	return ApplyPermutation(el, perm), perm
}

// ApplyPermutation rewrites el's endpoints through perm (old -> new).
// Undirected outputs are re-canonicalized.
func ApplyPermutation(el *EdgeList, perm Permutation) *EdgeList {
	out := &EdgeList{
		NumVertices: el.NumVertices,
		Directed:    el.Directed,
		Edges:       make([]Edge, len(el.Edges)),
	}
	for i, e := range el.Edges {
		ne := Edge{Src: perm[e.Src], Dst: perm[e.Dst]}
		if !el.Directed {
			ne = ne.Canon()
		}
		out.Edges[i] = ne
	}
	return out
}

// PermuteInt32 translates a per-vertex result computed on the relabeled
// graph back to original vertex order: out[oldID] = in[perm[oldID]].
func PermuteInt32(in []int32, perm Permutation) []int32 {
	out := make([]int32, len(in))
	for old, nw := range perm {
		out[old] = in[nw]
	}
	return out
}

// PermuteFloat64 is PermuteInt32 for float64 results.
func PermuteFloat64(in []float64, perm Permutation) []float64 {
	out := make([]float64, len(in))
	for old, nw := range perm {
		out[old] = in[nw]
	}
	return out
}

// PermuteLabels translates component labels back to original vertex
// order, including the label values themselves (labels are vertex IDs).
func PermuteLabels(in []VertexID, perm Permutation) []VertexID {
	inv := perm.Inverse()
	out := make([]VertexID, len(in))
	for old, nw := range perm {
		out[old] = inv[in[nw]]
	}
	return out
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestBitMatrixPaperFigure1(t *testing.T) {
	// Figure 1(d)'s bitwise matrix for the example graph.
	el := paperGraph()
	m, err := NewBitMatrix(el)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the figure's ones and zeros (undirected: symmetric).
	for _, e := range el.Edges {
		if !m.Has(e.Src, e.Dst) || !m.Has(e.Dst, e.Src) {
			t.Fatalf("edge (%d,%d) missing", e.Src, e.Dst)
		}
	}
	if m.Has(0, 2) || m.Has(7, 0) || m.Has(3, 3) {
		t.Fatal("phantom edges present")
	}
	if m.OutDegree(4) != 4 {
		t.Fatalf("OutDegree(4) = %d, want 4", m.OutDegree(4))
	}
	// 8 vertices -> 64 bits -> 8 bytes.
	if m.SizeBytes() != 8 {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestBitMatrixDirected(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Directed: true, Edges: []Edge{{Src: 0, Dst: 3}}}
	m, err := NewBitMatrix(el)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(0, 3) || m.Has(3, 0) {
		t.Fatal("directed bit handling wrong")
	}
	if m.Has(99, 0) || m.Has(0, 99) {
		t.Fatal("out-of-range Has returned true")
	}
}

func TestBitMatrixTooBig(t *testing.T) {
	el := &EdgeList{NumVertices: MaxBitMatrixVertices + 1}
	if _, err := NewBitMatrix(el); err == nil {
		t.Fatal("oversized matrix accepted")
	}
}

// Property: the bit matrix agrees with CSR adjacency for random graphs.
func TestQuickBitMatrixAgreesWithCSR(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%48 + 1
		el := &EdgeList{NumVertices: n}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				Edge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n})
		}
		m, err := NewBitMatrix(el)
		if err != nil {
			return false
		}
		csr := NewCSR(el, false)
		for v := uint32(0); v < n; v++ {
			for _, w := range csr.Neighbors(v) {
				if !m.Has(v, w) {
					return false
				}
			}
		}
		// Count parity: matrix bits == distinct adjacency pairs.
		bits := 0
		for s := uint32(0); s < n; s++ {
			bits += m.OutDegree(s)
		}
		seen := map[Edge]bool{}
		for v := uint32(0); v < n; v++ {
			for _, w := range csr.Neighbors(v) {
				seen[Edge{Src: v, Dst: w}] = true
			}
		}
		return bits == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

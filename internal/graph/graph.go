// Package graph provides the in-memory graph substrate shared by every
// engine in this repository: edge lists, CSR construction, degree counting
// and single-threaded reference implementations of the three algorithms the
// paper evaluates (BFS, PageRank, Connected Components). The reference
// implementations are the ground truth that the out-of-core engines are
// tested against.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. The paper's engine targets graphs with up
// to 2^33 vertices; this reproduction, like the paper's small-graph path,
// uses 32-bit IDs (tiles re-compress them to 16 bits internally).
type VertexID = uint32

// Edge is a single directed edge tuple (src, dst). Undirected graphs are
// represented as a set of canonicalized tuples with Src <= Dst plus the
// interpretation that each tuple stands for both directions.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Canon returns the canonical (undirected) form of e with Src <= Dst.
func (e Edge) Canon() Edge {
	if e.Src > e.Dst {
		return Edge{e.Dst, e.Src}
	}
	return e
}

// EdgeList is a slice of edges together with the vertex-space size.
type EdgeList struct {
	NumVertices uint32
	Edges       []Edge
	Directed    bool
}

// Validate checks that every endpoint is inside the vertex space.
func (el *EdgeList) Validate() error {
	if el.NumVertices == 0 && len(el.Edges) > 0 {
		return errors.New("graph: edge list with zero vertices")
	}
	for i, e := range el.Edges {
		if e.Src >= el.NumVertices || e.Dst >= el.NumVertices {
			return fmt.Errorf("graph: edge %d (%d,%d) outside vertex space %d",
				i, e.Src, e.Dst, el.NumVertices)
		}
	}
	return nil
}

// Canonicalize rewrites every edge of an undirected edge list into the
// canonical Src <= Dst form. It is a no-op for directed lists.
func (el *EdgeList) Canonicalize() {
	if el.Directed {
		return
	}
	for i, e := range el.Edges {
		el.Edges[i] = e.Canon()
	}
}

// Dedup sorts the edges and removes duplicates (and, optionally, self
// loops). It returns the number of edges removed.
func (el *EdgeList) Dedup(dropSelfLoops bool) int {
	es := el.Edges
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	out := es[:0]
	var prev Edge
	first := true
	for _, e := range es {
		if dropSelfLoops && e.Src == e.Dst {
			continue
		}
		if !first && e == prev {
			continue
		}
		out = append(out, e)
		prev = e
		first = false
	}
	removed := len(es) - len(out)
	el.Edges = out
	return removed
}

// OutDegrees returns the out-degree of every vertex. For undirected edge
// lists each canonical tuple counts toward both endpoints (a self loop
// counts once).
func (el *EdgeList) OutDegrees() []uint32 {
	deg := make([]uint32, el.NumVertices)
	for _, e := range el.Edges {
		deg[e.Src]++
		if !el.Directed && e.Src != e.Dst {
			deg[e.Dst]++
		}
	}
	return deg
}

// InDegrees returns the in-degree of every vertex. For undirected lists it
// equals OutDegrees.
func (el *EdgeList) InDegrees() []uint32 {
	if !el.Directed {
		return el.OutDegrees()
	}
	deg := make([]uint32, el.NumVertices)
	for _, e := range el.Edges {
		deg[e.Dst]++
	}
	return deg
}

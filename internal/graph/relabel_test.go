package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func relabelTestGraph() *EdgeList {
	return &EdgeList{
		NumVertices: 6,
		Edges: []Edge{
			{Src: 0, Dst: 5}, {Src: 1, Dst: 5}, {Src: 2, Dst: 5},
			{Src: 3, Dst: 4},
		},
	}
}

func TestRelabelByDegreeOrdersHubsFirst(t *testing.T) {
	el := relabelTestGraph()
	out, perm := RelabelByDegree(el)
	if !perm.Valid() {
		t.Fatalf("invalid permutation %v", perm)
	}
	// Vertex 5 has degree 3 and must become vertex 0.
	if perm[5] != 0 {
		t.Fatalf("hub got new ID %d, want 0", perm[5])
	}
	deg := out.OutDegrees()
	for v := 0; v+1 < len(deg); v++ {
		if deg[v] < deg[v+1] {
			t.Fatalf("degrees not descending: %v", deg)
		}
	}
	// The input must be untouched.
	if !reflect.DeepEqual(el, relabelTestGraph()) {
		t.Fatal("input mutated")
	}
}

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	inv := p.Inverse()
	want := Permutation{1, 2, 0}
	if !reflect.DeepEqual(inv, want) {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
	if !p.Valid() {
		t.Fatal("valid permutation rejected")
	}
	if (Permutation{0, 0, 1}).Valid() {
		t.Fatal("duplicate accepted")
	}
	if (Permutation{0, 3}).Valid() {
		t.Fatal("out-of-range accepted")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	el := relabelTestGraph()
	out, perm := RelabelByDegree(el)

	// BFS from old vertex 0 == BFS from its new ID, translated back.
	csrOld := NewCSR(el, false)
	csrNew := NewCSR(out, false)
	wantDepth := RefBFS(csrOld, 0)
	gotDepth := PermuteInt32(RefBFS(csrNew, perm[0]), perm)
	if !reflect.DeepEqual(gotDepth, wantDepth) {
		t.Fatalf("BFS depths differ after relabeling:\n got %v\nwant %v", gotDepth, wantDepth)
	}

	// Components must induce the same partition.
	wantComp := RefWCC(el)
	gotComp := PermuteLabels(RefWCC(out), perm)
	if !samePartition(wantComp, gotComp) {
		t.Fatalf("WCC partition differs:\n got %v\nwant %v", gotComp, wantComp)
	}
}

func samePartition(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[VertexID]VertexID{}
	seen := map[VertexID]bool{}
	for i := range a {
		if mapped, ok := m[a[i]]; ok {
			if mapped != b[i] {
				return false
			}
			continue
		}
		if seen[b[i]] {
			return false
		}
		m[a[i]] = b[i]
		seen[b[i]] = true
	}
	return true
}

func TestPermuteFloat64(t *testing.T) {
	perm := Permutation{2, 0, 1}
	in := []float64{10, 20, 30} // indexed by new IDs
	out := PermuteFloat64(in, perm)
	// old 0 -> new 2 -> 30; old 1 -> new 0 -> 10; old 2 -> new 1 -> 20
	want := []float64{30, 10, 20}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("PermuteFloat64 = %v, want %v", out, want)
	}
}

// Property: relabeling is structure-preserving for random graphs — BFS
// from every vertex matches after translation.
func TestQuickRelabelIsomorphism(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%32 + 2
		el := &EdgeList{NumVertices: n}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				Edge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n}.Canon())
		}
		out, perm := RelabelByDegree(el)
		if !perm.Valid() {
			return false
		}
		csrOld := NewCSR(el, false)
		csrNew := NewCSR(out, false)
		for root := VertexID(0); root < n; root += 3 {
			want := RefBFS(csrOld, root)
			got := PermuteInt32(RefBFS(csrNew, perm[root]), perm)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

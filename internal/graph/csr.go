package graph

// CSR is the Compressed Sparse Row representation described in §II-A of the
// paper: a begin-position array indexed by vertex and a flat adjacency
// array. For an undirected edge list the adjacency contains both directions
// of every canonical tuple, matching how existing engines (FlashGraph,
// GraphChi) materialize undirected graphs — which is exactly the redundancy
// the tile format removes.
type CSR struct {
	NumVertices uint32
	BegPos      []int64 // len = NumVertices+1
	Adj         []VertexID
}

// NewCSR builds a CSR from an edge list. For directed lists it stores
// out-edges; pass inEdges=true to store in-edges instead (the transpose).
// For undirected lists both directions are stored regardless of inEdges.
func NewCSR(el *EdgeList, inEdges bool) *CSR {
	n := el.NumVertices
	deg := make([]int64, n+1)
	count := func(v VertexID) { deg[v+1]++ }
	for _, e := range el.Edges {
		switch {
		case !el.Directed:
			count(e.Src)
			if e.Src != e.Dst {
				count(e.Dst)
			}
		case inEdges:
			count(e.Dst)
		default:
			count(e.Src)
		}
	}
	for i := uint32(0); i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]VertexID, deg[n])
	next := make([]int64, n)
	copy(next, deg[:n])
	place := func(v, w VertexID) {
		adj[next[v]] = w
		next[v]++
	}
	for _, e := range el.Edges {
		switch {
		case !el.Directed:
			place(e.Src, e.Dst)
			if e.Src != e.Dst {
				place(e.Dst, e.Src)
			}
		case inEdges:
			place(e.Dst, e.Src)
		default:
			place(e.Src, e.Dst)
		}
	}
	return &CSR{NumVertices: n, BegPos: deg, Adj: adj}
}

// Neighbors returns the adjacency slice of v. The slice aliases the CSR's
// internal storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) []VertexID {
	return c.Adj[c.BegPos[v]:c.BegPos[v+1]]
}

// Degree returns the number of neighbors stored for v.
func (c *CSR) Degree(v VertexID) int64 {
	return c.BegPos[v+1] - c.BegPos[v]
}

// NumEdges returns the number of stored adjacency entries.
func (c *CSR) NumEdges() int64 { return int64(len(c.Adj)) }

// SizeBytes reports the in-memory/on-disk size of the CSR representation
// using the paper's accounting (§II-A): |E| adjacency entries of 4 bytes
// plus |V|+1 begin positions of 8 bytes.
func (c *CSR) SizeBytes() int64 {
	return int64(len(c.Adj))*4 + int64(len(c.BegPos))*8
}

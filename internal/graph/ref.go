package graph

// Reference implementations of the paper's three algorithms (§II-B).
// These are deliberately simple, single-threaded, in-memory versions used
// as ground truth in tests; the out-of-core engines must produce identical
// results (BFS depths, WCC labels) or numerically close results (PageRank).

// InfDepth marks an unreached vertex in BFS results.
const InfDepth = int32(-1)

// RefBFS runs a level-synchronous breadth-first search from root over the
// CSR and returns the depth of every vertex (InfDepth if unreachable).
func RefBFS(c *CSR, root VertexID) []int32 {
	depth := make([]int32, c.NumVertices)
	for i := range depth {
		depth[i] = InfDepth
	}
	if root >= c.NumVertices {
		return depth
	}
	depth[root] = 0
	frontier := []VertexID{root}
	for level := int32(0); len(frontier) > 0; level++ {
		var next []VertexID
		for _, v := range frontier {
			for _, w := range c.Neighbors(v) {
				if depth[w] == InfDepth {
					depth[w] = level + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return depth
}

// PageRankOptions configures the reference PageRank.
type PageRankOptions struct {
	Damping    float64 // typically 0.85
	Iterations int     // fixed iteration count (paper runs fixed iterations)
}

// DefaultPageRank matches the configuration used throughout the paper's
// evaluation: damping 0.85.
func DefaultPageRank(iters int) PageRankOptions {
	return PageRankOptions{Damping: 0.85, Iterations: iters}
}

// RefPageRank runs the classic synchronous PageRank over out-edge CSR
// adjacency. Each vertex divides its rank by its out-degree and transmits
// it along out-edges (§II-B). Dangling mass is redistributed uniformly so
// ranks stay a probability distribution.
func RefPageRank(c *CSR, opt PageRankOptions) []float64 {
	n := int(c.NumVertices)
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	for it := 0; it < opt.Iterations; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			d := c.Degree(VertexID(v))
			if d == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(d)
			for _, w := range c.Neighbors(VertexID(v)) {
				next[w] += share
			}
		}
		base := (1-opt.Damping)*inv + opt.Damping*dangling*inv
		for v := 0; v < n; v++ {
			next[v] = base + opt.Damping*next[v]
		}
		rank, next = next, rank
		for i := range next {
			next[i] = 0
		}
	}
	return rank
}

// RefPersonalizedPageRank runs synchronous personalized PageRank over
// out-edge CSR adjacency: the teleport distribution is a point mass at
// root, and dangling mass restarts at root as well, so ranks stay a
// probability distribution concentrated around the query vertex.
func RefPersonalizedPageRank(c *CSR, root VertexID, opt PageRankOptions) []float64 {
	n := int(c.NumVertices)
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[root] = 1
	for it := 0; it < opt.Iterations; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			d := c.Degree(VertexID(v))
			if d == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(d)
			for _, w := range c.Neighbors(VertexID(v)) {
				next[w] += share
			}
		}
		for v := 0; v < n; v++ {
			next[v] = opt.Damping * next[v]
		}
		next[root] += (1 - opt.Damping) + opt.Damping*dangling
		rank, next = next, rank
		for i := range next {
			next[i] = 0
		}
	}
	return rank
}

// RefWCC computes weakly connected components with a union-find and
// returns, for every vertex, the smallest vertex ID in its component —
// the same fixed point the label-propagation algorithm (Algorithm 2)
// converges to.
func RefWCC(el *EdgeList) []VertexID {
	parent := make([]VertexID, el.NumVertices)
	for i := range parent {
		parent[i] = VertexID(i)
	}
	var find func(VertexID) VertexID
	find = func(x VertexID) VertexID {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range el.Edges {
		union(e.Src, e.Dst)
	}
	labels := make([]VertexID, el.NumVertices)
	for i := range labels {
		labels[i] = find(VertexID(i))
	}
	// The union order above does not guarantee the root is the minimum of
	// the component, so normalize: a second pass mapping roots to the
	// minimum member seen.
	minOf := make(map[VertexID]VertexID)
	for v, r := range labels {
		if m, ok := minOf[r]; !ok || VertexID(v) < m {
			minOf[r] = VertexID(v)
		}
	}
	for v, r := range labels {
		labels[v] = minOf[r]
	}
	return labels
}

// ComponentCount returns the number of distinct labels.
func ComponentCount(labels []VertexID) int {
	seen := make(map[VertexID]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

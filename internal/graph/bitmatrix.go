package graph

import "fmt"

// BitMatrix is the bitwise adjacency-matrix representation of §II-A
// Figure 1(d): one bit per (src, dst) pair. Its size is |V|²/8 bytes
// regardless of density, which is why no out-of-core engine uses it for
// sparse graphs — it is included to complete the paper's catalogue of
// representations and as ground truth for membership queries in tests.
type BitMatrix struct {
	NumVertices uint32
	words       []uint64
	directed    bool
}

// MaxBitMatrixVertices bounds the representation to ~512 MB of bits.
const MaxBitMatrixVertices = 1 << 16

// NewBitMatrix materializes el as a bit matrix. Undirected edge lists set
// both mirror bits.
func NewBitMatrix(el *EdgeList) (*BitMatrix, error) {
	if el.NumVertices > MaxBitMatrixVertices {
		return nil, fmt.Errorf("graph: %d vertices too many for a bit matrix (max %d)",
			el.NumVertices, MaxBitMatrixVertices)
	}
	n := uint64(el.NumVertices)
	m := &BitMatrix{
		NumVertices: el.NumVertices,
		words:       make([]uint64, (n*n+63)/64),
		directed:    el.Directed,
	}
	for _, e := range el.Edges {
		m.set(e.Src, e.Dst)
		if !el.Directed {
			m.set(e.Dst, e.Src)
		}
	}
	return m, nil
}

func (m *BitMatrix) set(s, d uint32) {
	i := uint64(s)*uint64(m.NumVertices) + uint64(d)
	m.words[i>>6] |= 1 << (i & 63)
}

// Has reports whether the edge (s, d) exists.
func (m *BitMatrix) Has(s, d uint32) bool {
	if s >= m.NumVertices || d >= m.NumVertices {
		return false
	}
	i := uint64(s)*uint64(m.NumVertices) + uint64(d)
	return m.words[i>>6]&(1<<(i&63)) != 0
}

// OutDegree counts the set bits of row s.
func (m *BitMatrix) OutDegree(s uint32) int {
	n := 0
	for d := uint32(0); d < m.NumVertices; d++ {
		if m.Has(s, d) {
			n++
		}
	}
	return n
}

// SizeBytes is the |V|²/8 storage cost (Table II-style accounting).
func (m *BitMatrix) SizeBytes() int64 { return int64(len(m.words)) * 8 }

package graph

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// paperGraph returns the 8-vertex example graph from Figure 1 of the paper.
func paperGraph() *EdgeList {
	return &EdgeList{
		NumVertices: 8,
		Directed:    false,
		Edges: []Edge{
			{0, 1}, {0, 3}, {0, 4}, {1, 2}, {1, 4}, {2, 4},
			{4, 5}, {5, 6}, {5, 7},
		},
	}
}

func TestCanon(t *testing.T) {
	if (Edge{5, 2}).Canon() != (Edge{2, 5}) {
		t.Fatalf("Canon(5,2) = %v", (Edge{5, 2}).Canon())
	}
	if (Edge{2, 5}).Canon() != (Edge{2, 5}) {
		t.Fatalf("Canon(2,5) changed an already-canonical edge")
	}
	if (Edge{3, 3}).Canon() != (Edge{3, 3}) {
		t.Fatalf("Canon(3,3) changed a self loop")
	}
}

func TestValidate(t *testing.T) {
	el := paperGraph()
	if err := el.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	el.Edges = append(el.Edges, Edge{7, 8})
	if err := el.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	bad := &EdgeList{NumVertices: 0, Edges: []Edge{{0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-vertex graph with edges accepted")
	}
}

func TestDedup(t *testing.T) {
	el := &EdgeList{
		NumVertices: 4,
		Edges:       []Edge{{1, 2}, {0, 1}, {1, 2}, {2, 2}, {0, 1}, {3, 0}},
	}
	removed := el.Dedup(true)
	if removed != 3 {
		t.Fatalf("Dedup removed %d edges, want 3", removed)
	}
	want := []Edge{{0, 1}, {1, 2}, {3, 0}}
	if !reflect.DeepEqual(el.Edges, want) {
		t.Fatalf("Dedup result %v, want %v", el.Edges, want)
	}
}

func TestDedupKeepSelfLoops(t *testing.T) {
	el := &EdgeList{NumVertices: 3, Edges: []Edge{{2, 2}, {2, 2}, {1, 0}}}
	removed := el.Dedup(false)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	want := []Edge{{1, 0}, {2, 2}}
	if !reflect.DeepEqual(el.Edges, want) {
		t.Fatalf("got %v want %v", el.Edges, want)
	}
}

func TestDegrees(t *testing.T) {
	el := paperGraph()
	deg := el.OutDegrees()
	// Figure 1(e)'s partitions give adjacency sizes 3,3,2,1,4,3,1,1.
	want := []uint32{3, 3, 2, 1, 4, 3, 1, 1}
	if !reflect.DeepEqual(deg, want) {
		t.Fatalf("undirected degrees = %v, want %v", deg, want)
	}

	dir := &EdgeList{NumVertices: 3, Directed: true,
		Edges: []Edge{{0, 1}, {0, 2}, {1, 2}}}
	if got := dir.OutDegrees(); !reflect.DeepEqual(got, []uint32{2, 1, 0}) {
		t.Fatalf("out degrees = %v", got)
	}
	if got := dir.InDegrees(); !reflect.DeepEqual(got, []uint32{0, 1, 2}) {
		t.Fatalf("in degrees = %v", got)
	}
}

func TestCSRMatchesPaperFigure1(t *testing.T) {
	c := NewCSR(paperGraph(), false)
	// 18 adjacency entries (both directions of 9 canonical edges).
	wantBeg := []int64{0, 3, 6, 8, 9, 13, 16, 17, 18}
	if !reflect.DeepEqual(c.BegPos, wantBeg) {
		t.Fatalf("BegPos = %v, want %v", c.BegPos, wantBeg)
	}
	if got := c.Neighbors(4); len(got) != 4 {
		t.Fatalf("vertex 4 neighbors = %v, want 4 entries", got)
	}
	if c.Degree(3) != 1 || c.Degree(0) != 3 {
		t.Fatalf("degrees wrong: deg(3)=%d deg(0)=%d", c.Degree(3), c.Degree(0))
	}
}

func TestCSRDirectedInOut(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Directed: true,
		Edges: []Edge{{0, 1}, {0, 2}, {3, 2}, {1, 3}}}
	out := NewCSR(el, false)
	in := NewCSR(el, true)
	if out.NumEdges() != 4 || in.NumEdges() != 4 {
		t.Fatalf("edge counts: out=%d in=%d", out.NumEdges(), in.NumEdges())
	}
	if got := out.Neighbors(0); len(got) != 2 {
		t.Fatalf("out neighbors of 0 = %v", got)
	}
	if got := in.Neighbors(2); len(got) != 2 {
		t.Fatalf("in neighbors of 2 = %v", got)
	}
	if got := in.Neighbors(0); len(got) != 0 {
		t.Fatalf("in neighbors of 0 = %v, want none", got)
	}
}

func TestRefBFSPaperGraph(t *testing.T) {
	c := NewCSR(paperGraph(), false)
	depth := RefBFS(c, 0)
	want := []int32{0, 1, 2, 1, 1, 2, 3, 3}
	if !reflect.DeepEqual(depth, want) {
		t.Fatalf("BFS depths = %v, want %v", depth, want)
	}
}

func TestRefBFSUnreachable(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{0, 1}}}
	c := NewCSR(el, false)
	depth := RefBFS(c, 0)
	if depth[2] != InfDepth || depth[3] != InfDepth {
		t.Fatalf("isolated vertices reached: %v", depth)
	}
	if depth[1] != 1 {
		t.Fatalf("depth[1] = %d", depth[1])
	}
}

func TestRefBFSRootOutOfRange(t *testing.T) {
	el := &EdgeList{NumVertices: 2, Edges: []Edge{{0, 1}}}
	c := NewCSR(el, false)
	depth := RefBFS(c, 99)
	for v, d := range depth {
		if d != InfDepth {
			t.Fatalf("vertex %d reached from out-of-range root", v)
		}
	}
}

func TestRefPageRankSumsToOne(t *testing.T) {
	c := NewCSR(paperGraph(), false)
	rank := RefPageRank(c, DefaultPageRank(20))
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
	// Vertex 4 has the largest degree and must have the largest rank.
	for v, r := range rank {
		if v != 4 && r >= rank[4] {
			t.Fatalf("rank[%d]=%v >= rank[4]=%v", v, r, rank[4])
		}
	}
}

func TestRefPageRankDangling(t *testing.T) {
	// 0 -> 1, 1 has no out-edges: dangling mass must be redistributed,
	// keeping the sum at 1.
	el := &EdgeList{NumVertices: 2, Directed: true, Edges: []Edge{{0, 1}}}
	c := NewCSR(el, false)
	rank := RefPageRank(c, DefaultPageRank(30))
	sum := rank[0] + rank[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("dangling sum = %v", sum)
	}
	if rank[1] <= rank[0] {
		t.Fatalf("sink should outrank source: %v", rank)
	}
}

func TestRefWCC(t *testing.T) {
	el := paperGraph()
	labels := RefWCC(el)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d, want 0 (single component)", v, l)
		}
	}

	two := &EdgeList{NumVertices: 6, Edges: []Edge{{0, 1}, {1, 2}, {4, 5}}}
	labels = RefWCC(two)
	want := []VertexID{0, 0, 0, 3, 4, 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	if ComponentCount(labels) != 3 {
		t.Fatalf("components = %d, want 3", ComponentCount(labels))
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	el := paperGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(el.Edges)*EdgeTupleBytes {
		t.Fatalf("wrote %d bytes, want %d", buf.Len(), len(el.Edges)*EdgeTupleBytes)
	}
	got, err := ReadEdgeList(&buf, el.NumVertices, el.Directed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Edges, el.Edges) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Edges, el.Edges)
	}
}

func TestReadEdgeListTruncated(t *testing.T) {
	raw := bytes.Repeat([]byte{1}, EdgeTupleBytes+3) // one full tuple + junk
	_, err := ReadEdgeList(bytes.NewReader(raw), 1<<20, true)
	if err == nil {
		t.Fatal("truncated edge list accepted")
	}
}

func TestEdgeListSizeBytes(t *testing.T) {
	if got := EdgeListSizeBytes(100, true); got != 800 {
		t.Fatalf("directed size = %d", got)
	}
	if got := EdgeListSizeBytes(100, false); got != 1600 {
		t.Fatalf("undirected size = %d", got)
	}
}

// Property: WCC labels are idempotent under canonicalization and edge
// duplication — duplicating edges or flipping their direction must not
// change components.
func TestQuickWCCInvariance(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%64 + 2
		el := &EdgeList{NumVertices: n}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				Edge{uint32(raw[i]) % n, uint32(raw[i+1]) % n})
		}
		base := RefWCC(el)
		flipped := &EdgeList{NumVertices: n}
		for _, e := range el.Edges {
			flipped.Edges = append(flipped.Edges, Edge{e.Dst, e.Src})
			flipped.Edges = append(flipped.Edges, e) // duplicate
		}
		return reflect.DeepEqual(base, RefWCC(flipped))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS depths satisfy the triangle property — adjacent vertices'
// depths differ by at most one, and every reached non-root vertex has a
// neighbor one level above it.
func TestQuickBFSDepthConsistency(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%64 + 2
		el := &EdgeList{NumVertices: n}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				Edge{uint32(raw[i]) % n, uint32(raw[i+1]) % n})
		}
		c := NewCSR(el, false)
		depth := RefBFS(c, 0)
		for v := VertexID(0); v < n; v++ {
			for _, w := range c.Neighbors(v) {
				dv, dw := depth[v], depth[w]
				if dv == InfDepth != (dw == InfDepth) {
					return false // one side reached, other not
				}
				if dv != InfDepth && dw-dv > 1 {
					return false
				}
			}
			if depth[v] > 0 {
				ok := false
				for _, w := range c.Neighbors(v) {
					if depth[w] == depth[v]-1 {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR preserves the multiset of edges.
func TestQuickCSREdgeCount(t *testing.T) {
	f := func(raw []uint16, nv uint8) bool {
		n := uint32(nv)%128 + 1
		el := &EdgeList{NumVertices: n, Directed: true}
		for i := 0; i+1 < len(raw); i += 2 {
			el.Edges = append(el.Edges,
				Edge{uint32(raw[i]) % n, uint32(raw[i+1]) % n})
		}
		c := NewCSR(el, false)
		return c.NumEdges() == int64(len(el.Edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary edge-list files use the same layout as the datasets in the paper's
// Table II: a flat sequence of (src, dst) little-endian uint32 pairs,
// 8 bytes per edge. This is the "Edge List" format whose size the tile
// format is compared against.

// EdgeTupleBytes is the on-disk size of one edge in the traditional edge
// list format for graphs with < 2^32 vertices.
const EdgeTupleBytes = 8

// WriteEdgeList writes el.Edges to w in binary edge-list format.
func WriteEdgeList(w io.Writer, el *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var buf [EdgeTupleBytes]byte
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint32(buf[0:4], e.Src)
		binary.LittleEndian.PutUint32(buf[4:8], e.Dst)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes el to path.
func WriteEdgeListFile(path string, el *EdgeList) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, el); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEdgeList reads a binary edge list from r. numVertices and directed
// describe the graph; they are not stored in the file itself.
func ReadEdgeList(r io.Reader, numVertices uint32, directed bool) (*EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	el := &EdgeList{NumVertices: numVertices, Directed: directed}
	var buf [EdgeTupleBytes]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("graph: truncated edge list (partial tuple)")
		}
		if err != nil {
			return nil, err
		}
		el.Edges = append(el.Edges, Edge{
			Src: binary.LittleEndian.Uint32(buf[0:4]),
			Dst: binary.LittleEndian.Uint32(buf[4:8]),
		})
	}
	return el, nil
}

// ReadEdgeListFile reads the binary edge list at path.
func ReadEdgeListFile(path string, numVertices uint32, directed bool) (*EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, numVertices, directed)
}

// EdgeListSizeBytes reports the on-disk size of the traditional edge list
// representation (Table II accounting): |E| tuples of 8 bytes, where an
// undirected graph stores every edge twice.
func EdgeListSizeBytes(numEdges int64, directed bool) int64 {
	if directed {
		return numEdges * EdgeTupleBytes
	}
	return 2 * numEdges * EdgeTupleBytes
}

package graph

// RefSCC computes strongly connected components of a directed edge list
// with an iterative Tarjan algorithm and returns, for every vertex, the
// smallest vertex ID in its SCC. It is the ground truth for the
// tile-based SCC kernel (the algorithm the paper's §IV-A singles out as
// needing both in- and out-edges, which tiles provide for free).
func RefSCC(el *EdgeList) []VertexID {
	n := el.NumVertices
	csr := NewCSR(el, false) // out-edges
	const undef = int32(-1)

	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]VertexID, n)
	for i := range index {
		index[i] = undef
		comp[i] = VertexID(i)
	}

	var stack []VertexID
	next := int32(0)

	// Explicit DFS stack: (vertex, next-edge-offset) frames.
	type frame struct {
		v   VertexID
		ei  int64
		end int64
	}
	var dfs []frame

	push := func(v VertexID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		dfs = append(dfs, frame{v: v, ei: csr.BegPos[v], end: csr.BegPos[v+1]})
	}

	for root := VertexID(0); root < n; root++ {
		if index[root] != undef {
			continue
		}
		push(root)
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			advanced := false
			for f.ei < f.end {
				w := csr.Adj[f.ei]
				f.ei++
				if index[w] == undef {
					push(w)
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is an SCC root: pop its component and label with the
				// minimum member.
				min := v
				start := len(stack)
				for {
					start--
					w := stack[start]
					if w < min {
						min = w
					}
					if w == v {
						break
					}
				}
				for _, w := range stack[start:] {
					onStack[w] = false
					comp[w] = min
				}
				stack = stack[:start]
			}
		}
	}
	return comp
}

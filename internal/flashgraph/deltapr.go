package flashgraph

import (
	"math"
	"sync/atomic"
)

// DeltaPageRank is the PageRank flavor FlashGraph implements (Zhang et
// al.'s Maiter, the paper's [38], noted in §VII-B): instead of re-sending
// full rank shares every iteration, a vertex propagates only the *change*
// of its rank since it last broadcast, and only vertices with enough
// accumulated change stay active. On converged regions the active set
// collapses, which is what makes the variant a good fit for FlashGraph's
// selective I/O.
//
// Accumulative formulation: every vertex keeps
//
//	rank(v)    — the mass folded in so far,
//	pending(v) — mass received but not yet folded/propagated.
//
// Processing v folds pending into rank and pushes d*delta/deg(v) to each
// neighbor's pending. The fixed point satisfies
// rank = base + d * Aᵀ D⁻¹ rank — PageRank without dangling
// redistribution; Normalized() rescales for comparison.
type DeltaPageRank struct {
	// Threshold: vertices whose pending mass (times |V|) is below this
	// stay inactive. Smaller = more accurate, more iterations.
	Threshold float64
	// MaxIterations caps the run (0 = until quiescent).
	MaxIterations int

	rank    []uint64 // float64 bits, atomic
	pending []uint64 // float64 bits, atomic
	active  []uint32
}

// NewDeltaPageRank builds the program.
func NewDeltaPageRank(threshold float64, maxIterations int) *DeltaPageRank {
	return &DeltaPageRank{Threshold: threshold, MaxIterations: maxIterations}
}

// Name implements VertexProgram.
func (p *DeltaPageRank) Name() string { return "delta-pagerank" }

// Init implements VertexProgram: the whole base mass starts pending, so
// the first pass broadcasts it.
func (p *DeltaPageRank) Init(n uint32) {
	p.rank = make([]uint64, n)
	p.pending = make([]uint64, n)
	base := (1 - 0.85) / float64(n)
	for v := range p.pending {
		p.pending[v] = math.Float64bits(base)
	}
}

// Ranks returns the raw accumulated ranks.
func (p *DeltaPageRank) Ranks() []float64 {
	out := make([]float64, len(p.rank))
	for v := range p.rank {
		out[v] = math.Float64frombits(atomic.LoadUint64(&p.rank[v]))
	}
	return out
}

// Normalized returns ranks rescaled to sum to one.
func (p *DeltaPageRank) Normalized() []float64 {
	out := p.Ranks()
	sum := 0.0
	for _, r := range out {
		sum += r
	}
	if sum == 0 {
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// BeforeIteration implements VertexProgram.
func (p *DeltaPageRank) BeforeIteration(iter int) ([]uint32, bool) {
	if iter == 0 {
		return nil, true
	}
	active := p.active
	p.active = nil
	return active, false
}

// Process implements VertexProgram: fold the pending delta into the rank
// and push the damped, degree-divided share onward.
func (p *DeltaPageRank) Process(v uint32, neighbors []uint32) {
	delta := math.Float64frombits(atomic.SwapUint64(&p.pending[v], 0))
	if delta == 0 {
		return
	}
	addFloat(&p.rank[v], delta)
	if len(neighbors) == 0 {
		return // dangling: mass retained in rank, not redistributed
	}
	share := 0.85 * delta / float64(len(neighbors))
	for _, w := range neighbors {
		addFloat(&p.pending[w], share)
	}
}

// AfterIteration implements VertexProgram: next active set = vertices
// whose pending mass is above the threshold.
func (p *DeltaPageRank) AfterIteration(iter int) bool {
	thr := p.Threshold / float64(len(p.rank))
	p.active = p.active[:0]
	for v := range p.pending {
		if math.Abs(math.Float64frombits(atomic.LoadUint64(&p.pending[v]))) > thr {
			p.active = append(p.active, uint32(v))
		}
	}
	if len(p.active) == 0 {
		return true
	}
	return p.MaxIterations > 0 && iter+1 >= p.MaxIterations
}

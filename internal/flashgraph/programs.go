package flashgraph

import (
	"math"
	"sync/atomic"
)

// BFS is frontier-driven vertex-centric BFS: active (frontier) vertices
// push depth to their neighbors. This is the access pattern FlashGraph
// serves well — only frontier adjacency lists are fetched — which is why
// the paper measures the smallest G-Store advantage here.
type BFS struct {
	Root  uint32
	depth []int32
	level int32
	next  []uint32
	mu    chan struct{} // 1-token semaphore guarding next
}

// NewBFS returns a BFS program rooted at root.
func NewBFS(root uint32) *BFS { return &BFS{Root: root} }

// Name implements VertexProgram.
func (b *BFS) Name() string { return "bfs" }

// Init implements VertexProgram.
func (b *BFS) Init(n uint32) {
	b.depth = make([]int32, n)
	for i := range b.depth {
		b.depth[i] = -1
	}
	b.mu = make(chan struct{}, 1)
	if b.Root < n {
		b.depth[b.Root] = 0
		b.next = []uint32{b.Root}
	}
}

// Depths returns the result.
func (b *BFS) Depths() []int32 { return b.depth }

// BeforeIteration implements VertexProgram.
func (b *BFS) BeforeIteration(iter int) ([]uint32, bool) {
	b.level = int32(iter)
	frontier := b.next
	b.next = nil
	return frontier, false
}

// Process implements VertexProgram.
func (b *BFS) Process(v uint32, neighbors []uint32) {
	var local []uint32
	for _, w := range neighbors {
		if atomic.LoadInt32(&b.depth[w]) == -1 &&
			atomic.CompareAndSwapInt32(&b.depth[w], -1, b.level+1) {
			local = append(local, w)
		}
	}
	if len(local) > 0 {
		b.mu <- struct{}{}
		b.next = append(b.next, local...)
		<-b.mu
	}
}

// AfterIteration implements VertexProgram.
func (b *BFS) AfterIteration(int) bool { return len(b.next) == 0 }

// PageRank is the vertex-centric push PageRank over out-edges.
type PageRank struct {
	Iterations int
	rank       []float64
	accum      []uint64
	share      []float64
	degrees    []uint32
	dangling   float64
}

// NewPageRank builds the program; degrees are the per-vertex out-degrees.
func NewPageRank(iterations int, degrees []uint32) *PageRank {
	return &PageRank{Iterations: iterations, degrees: degrees}
}

// Name implements VertexProgram.
func (p *PageRank) Name() string { return "pagerank" }

// Init implements VertexProgram.
func (p *PageRank) Init(n uint32) {
	p.rank = make([]float64, n)
	p.accum = make([]uint64, n)
	p.share = make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range p.rank {
		p.rank[i] = inv
	}
}

// Ranks returns the rank vector.
func (p *PageRank) Ranks() []float64 { return p.rank }

// BeforeIteration implements VertexProgram.
func (p *PageRank) BeforeIteration(int) ([]uint32, bool) {
	p.dangling = 0
	for v := range p.share {
		d := p.degrees[v]
		if d == 0 {
			p.dangling += p.rank[v]
			p.share[v] = 0
			continue
		}
		p.share[v] = p.rank[v] / float64(d)
	}
	for i := range p.accum {
		p.accum[i] = 0
	}
	return nil, true // all vertices active
}

// Process implements VertexProgram.
func (p *PageRank) Process(v uint32, neighbors []uint32) {
	s := p.share[v]
	if s == 0 {
		return
	}
	for _, w := range neighbors {
		addFloat(&p.accum[w], s)
	}
}

func addFloat(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, next) {
			return
		}
	}
}

// AfterIteration implements VertexProgram.
func (p *PageRank) AfterIteration(iter int) bool {
	n := float64(len(p.rank))
	base := (1-0.85)/n + 0.85*p.dangling/n
	for v := range p.rank {
		p.rank[v] = base + 0.85*math.Float64frombits(p.accum[v])
	}
	return iter+1 >= p.Iterations
}

// WCC is vertex-centric min-label propagation: active vertices push their
// label to neighbors; vertices whose label dropped become active.
type WCC struct {
	labels []uint32
	active []uint32
	mu     chan struct{}
	seen   []int32 // whether v is already queued for the next iteration
}

// NewWCC returns the connected-components program.
func NewWCC() *WCC { return &WCC{} }

// Name implements VertexProgram.
func (w *WCC) Name() string { return "wcc" }

// Init implements VertexProgram.
func (w *WCC) Init(n uint32) {
	w.labels = make([]uint32, n)
	w.seen = make([]int32, n)
	w.mu = make(chan struct{}, 1)
	for i := range w.labels {
		w.labels[i] = uint32(i)
	}
}

// Labels returns the labels after the run.
func (w *WCC) Labels() []uint32 { return w.labels }

// BeforeIteration implements VertexProgram.
func (w *WCC) BeforeIteration(iter int) ([]uint32, bool) {
	if iter == 0 {
		return nil, true
	}
	active := w.active
	w.active = nil
	for i := range w.seen {
		w.seen[i] = 0
	}
	return active, false
}

// Process implements VertexProgram.
func (w *WCC) Process(v uint32, neighbors []uint32) {
	lv := atomic.LoadUint32(&w.labels[v])
	var local []uint32
	for _, n := range neighbors {
		ln := atomic.LoadUint32(&w.labels[n])
		switch {
		case lv < ln:
			if lowerTo(&w.labels[n], lv) && atomic.CompareAndSwapInt32(&w.seen[n], 0, 1) {
				local = append(local, n)
			}
		case ln < lv:
			if lowerTo(&w.labels[v], ln) && atomic.CompareAndSwapInt32(&w.seen[v], 0, 1) {
				local = append(local, v)
			}
			lv = atomic.LoadUint32(&w.labels[v])
		}
	}
	if len(local) > 0 {
		w.mu <- struct{}{}
		w.active = append(w.active, local...)
		<-w.mu
	}
}

func lowerTo(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// AfterIteration implements VertexProgram.
func (w *WCC) AfterIteration(int) bool { return len(w.active) == 0 }

package flashgraph

import (
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

func testOpts() Options {
	o := DefaultOptions()
	o.CacheBytes = 1 << 20
	o.PageSize = 512
	o.Threads = 4
	o.Disks = 2
	return o
}

func build(t *testing.T, el *graph.EdgeList, opts Options) *Engine {
	t.Helper()
	e, err := Build(el, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func kron(t *testing.T, scale uint, ef int, seed uint64) *graph.EdgeList {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return el
}

func TestOptionsValidation(t *testing.T) {
	el := kron(t, 6, 4, 1)
	bad := testOpts()
	bad.CacheBytes = 100
	bad.PageSize = 512
	if _, err := Build(el, t.TempDir(), bad); err == nil {
		t.Fatal("cache smaller than a page accepted")
	}
}

func TestAdjBytes(t *testing.T) {
	el := kron(t, 8, 4, 2)
	el.Dedup(true)
	e := build(t, el, testOpts())
	selfLoops := int64(0)
	for _, ed := range el.Edges {
		if ed.Src == ed.Dst {
			selfLoops++
		}
	}
	want := (2*int64(len(el.Edges)) - selfLoops) * 4
	if e.AdjBytes() != want {
		t.Fatalf("AdjBytes = %d, want %d", e.AdjBytes(), want)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	el := kron(t, 10, 8, 3)
	e := build(t, el, testOpts())
	b := NewBFS(0)
	st, err := e.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if st.BytesRead == 0 || st.CacheMisses == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	el := kron(t, 9, 8, 4)
	e := build(t, el, testOpts())
	iters := 10
	p := NewPageRank(iters, el.OutDegrees())
	st, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != iters {
		t.Fatalf("iterations = %d", st.Iterations)
	}
	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(iters))
	for v, r := range p.Ranks() {
		if math.Abs(r-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, want[v])
		}
	}
}

func TestWCCMatchesReference(t *testing.T) {
	el := kron(t, 10, 2, 5)
	e := build(t, el, testOpts())
	w := NewWCC()
	if _, err := e.Run(w); err != nil {
		t.Fatal(err)
	}
	want := graph.RefWCC(el)
	for v, l := range w.Labels() {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}

func TestDirectedBFS(t *testing.T) {
	el, err := gen.Generate(gen.TwitterLikeConfig(9, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	e := build(t, el, testOpts())
	b := NewBFS(0)
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	want := graph.RefBFS(graph.NewCSR(el, false), 0)
	for v, d := range b.Depths() {
		if d != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d, want[v])
		}
	}
}

// A cache big enough for the whole adjacency must make iterations 2..n of
// PageRank free of disk reads.
func TestWarmCacheStopsIO(t *testing.T) {
	el := kron(t, 9, 8, 7)
	opts := testOpts()
	opts.CacheBytes = 32 << 20
	e := build(t, el, opts)
	p := NewPageRank(5, el.OutDegrees())
	st, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesRead > 2*e.AdjBytes() {
		t.Fatalf("warm cache still read %d bytes (adjacency is %d)", st.BytesRead, e.AdjBytes())
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits")
	}
}

// A tiny cache must thrash on PageRank (the Observation-3 pathology).
func TestColdCacheThrashes(t *testing.T) {
	el := kron(t, 9, 8, 7)
	opts := testOpts()
	opts.PageSize = 512
	opts.CacheBytes = 2048 // 4 pages
	e := build(t, el, opts)
	p := NewPageRank(3, el.OutDegrees())
	st, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesRead < 2*e.AdjBytes() {
		t.Fatalf("tiny cache read only %d bytes over 3 iterations (adjacency %d)",
			st.BytesRead, e.AdjBytes())
	}
}

func TestIsolatedVerticesBFS(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 16, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	e := build(t, el, testOpts())
	b := NewBFS(0)
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	d := b.Depths()
	if d[0] != 0 || d[1] != 1 {
		t.Fatalf("depths = %v", d[:2])
	}
	for v := 2; v < 16; v++ {
		if d[v] != -1 {
			t.Fatalf("isolated vertex %d reached", v)
		}
	}
}

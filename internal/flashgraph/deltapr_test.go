package flashgraph

import (
	"math"
	"testing"

	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
)

// ringKron returns a kron graph plus a ring so that every vertex has
// degree >= 1: delta-PR and synchronous PR then agree after
// normalization (no dangling mass to redistribute differently).
func ringKron(t *testing.T, scale uint, seed uint64) *graph.EdgeList {
	t.Helper()
	el, err := gen.Generate(gen.Graph500Config(scale, 4, seed))
	if err != nil {
		t.Fatal(err)
	}
	n := el.NumVertices
	for v := uint32(0); v < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: v, Dst: (v + 1) % n}.Canon())
	}
	return el
}

func TestDeltaPageRankMatchesSynchronous(t *testing.T) {
	el := ringKron(t, 8, 61)
	e := build(t, el, testOpts())

	dp := NewDeltaPageRank(1e-10, 0)
	st, err := e.Run(dp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations < 3 {
		t.Fatalf("suspiciously quick: %d iterations", st.Iterations)
	}

	want := graph.RefPageRank(graph.NewCSR(el, false), graph.DefaultPageRank(100))
	got := dp.Normalized()
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDeltaPageRankActiveSetShrinks(t *testing.T) {
	el := ringKron(t, 9, 62)
	e := build(t, el, testOpts())
	dp := NewDeltaPageRank(1e-6, 0)
	if _, err := e.Run(dp); err != nil {
		t.Fatal(err)
	}
	// After convergence the active set must be empty.
	if len(dp.active) != 0 {
		t.Fatalf("converged with %d active vertices", len(dp.active))
	}
}

func TestDeltaPageRankMaxIterations(t *testing.T) {
	el := ringKron(t, 8, 63)
	e := build(t, el, testOpts())
	dp := NewDeltaPageRank(1e-12, 3)
	st, err := e.Run(dp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", st.Iterations)
	}
}

func TestDeltaPageRankCoarseThresholdIsCheaper(t *testing.T) {
	el := ringKron(t, 9, 64)
	e := build(t, el, testOpts())
	fine := NewDeltaPageRank(1e-10, 0)
	fs, err := e.Run(fine)
	if err != nil {
		t.Fatal(err)
	}
	coarse := NewDeltaPageRank(1e-3, 0)
	cs, err := e.Run(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if cs.VerticesRun >= fs.VerticesRun {
		t.Fatalf("coarse threshold ran %d vertices, fine %d", cs.VerticesRun, fs.VerticesRun)
	}
	// Still roughly the right answer.
	f, c := fine.Normalized(), coarse.Normalized()
	for v := range f {
		if math.Abs(f[v]-c[v]) > 1e-2 {
			t.Fatalf("coarse rank[%d] = %v, fine %v", v, c[v], f[v])
		}
	}
}

package flashgraph

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/gwu-systems/gstore/internal/storage"
)

// pageCache is an LRU cache of fixed-size pages over the adjacency file —
// the caching design the paper contrasts with proactive tile caching
// (§III Observation 3: "the likelihood of the same data being used in the
// same iteration is negligible").
//
// Pages are individually allocated so a reader holding a page slice stays
// valid after eviction (the garbage collector retires the buffer once the
// last reader drops it). Concurrent misses on the same page are
// deduplicated.
type pageCache struct {
	capacity  int64
	pageSize  int64
	fileSize  int64
	readahead int64 // pages fetched per miss (aligned window)
	arr       *storage.Array

	mu      sync.Mutex
	entries map[int64]*list.Element
	order   *list.List // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type pageEntry struct {
	page  int64
	data  []byte
	ready chan struct{}
	err   error
}

func newPageCache(capacityPages, pageSize, fileSize, readahead int64, arr *storage.Array) *pageCache {
	if capacityPages < 1 {
		capacityPages = 1
	}
	if readahead < 1 {
		readahead = 1
	}
	if readahead > capacityPages {
		readahead = capacityPages
	}
	return &pageCache{
		capacity:  capacityPages,
		pageSize:  pageSize,
		fileSize:  fileSize,
		readahead: readahead,
		arr:       arr,
		entries:   make(map[int64]*list.Element),
		order:     list.New(),
	}
}

// get returns the contents of the given page, fetching it on a miss. The
// returned slice must be treated as read-only.
func (c *pageCache) get(page int64) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.entries[page]; ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*pageEntry)
		c.mu.Unlock()
		<-ent.ready
		if ent.err != nil {
			return nil, ent.err
		}
		c.hits.Add(1)
		return ent.data, nil
	}
	// Miss: install pending entries for the whole readahead window (one
	// merged I/O, like FlashGraph's request merging), evict as needed,
	// read outside the lock.
	winStart := page - page%c.readahead
	winEnd := winStart + c.readahead
	if maxPage := (c.fileSize + c.pageSize - 1) / c.pageSize; winEnd > maxPage {
		winEnd = maxPage
	}
	var ents []*pageEntry
	for p := winStart; p < winEnd; p++ {
		if _, ok := c.entries[p]; ok && p != page {
			continue // already cached or in flight; don't refetch
		}
		ent := &pageEntry{page: p, ready: make(chan struct{})}
		el := c.order.PushFront(ent)
		c.entries[p] = el
		ents = append(ents, ent)
	}
	for int64(c.order.Len()) > c.capacity {
		back := c.order.Back()
		victim := back.Value.(*pageEntry)
		c.order.Remove(back)
		delete(c.entries, victim.page)
	}
	c.mu.Unlock()

	c.misses.Add(int64(len(ents)))
	// One merged read covering the window; slice it into pages.
	lo := ents[0].page
	hi := ents[len(ents)-1].page + 1
	n := hi*c.pageSize - lo*c.pageSize
	if rem := c.fileSize - lo*c.pageSize; rem < n {
		n = rem
	}
	win := make([]byte, (hi-lo)*c.pageSize)
	var err error
	if n > 0 {
		err = c.arr.ReadSync(lo*c.pageSize, win[:n])
	}
	var out []byte
	for _, ent := range ents {
		off := (ent.page - lo) * c.pageSize
		ent.data = win[off : off+c.pageSize]
		ent.err = err
		close(ent.ready)
		if ent.page == page {
			out = ent.data
		}
	}
	if err != nil {
		c.mu.Lock()
		for _, ent := range ents {
			if cur, ok := c.entries[ent.page]; ok && cur.Value.(*pageEntry) == ent {
				c.order.Remove(cur)
				delete(c.entries, ent.page)
			}
		}
		c.mu.Unlock()
		return nil, err
	}
	return out, nil
}

func (c *pageCache) counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Package flashgraph re-implements the FlashGraph baseline (Zheng et al.,
// FAST 2015) the paper compares against: a semi-external, vertex-centric
// engine that keeps algorithmic state and the CSR index in memory while
// adjacency lists live on SSD, fetched page-wise through an LRU page
// cache.
//
// The contrasts that matter for the comparison with G-Store:
//   - FlashGraph stores the full CSR (both directions for undirected
//     graphs; no symmetry saving) with 4-byte neighbor IDs — 2–4× the tile
//     format's footprint;
//   - its cache is a plain LRU over pages, with no knowledge of what the
//     algorithm needs next iteration (§III Observation 3);
//   - it performs selective I/O at vertex granularity, which serves BFS
//     well (the paper measures G-Store only ~1.4× faster there) but cannot
//     exploit tile-level locality for PageRank and CC.
package flashgraph

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/storage"
)

// Options configures the engine.
type Options struct {
	// PageSize is the cache page size in bytes (FlashGraph uses 4 KB).
	PageSize int64
	// CacheBytes is the page cache capacity.
	CacheBytes int64
	// ReadaheadPages fetches this many aligned pages per miss, modelling
	// FlashGraph's merging of adjacent I/O requests (0 = default 16).
	ReadaheadPages int64
	// Threads processes active vertices concurrently.
	Threads int
	// Storage simulation parameters shared with the other engines.
	Disks      int
	StripeSize int64
	Bandwidth  float64
	Latency    time.Duration
	// MaxIterations bounds the run.
	MaxIterations int
}

// DefaultOptions returns a configuration scaled like the reproduction's
// G-Store default.
func DefaultOptions() Options {
	return Options{
		PageSize:      4096,
		CacheBytes:    32 << 20,
		Threads:       4,
		Disks:         8,
		StripeSize:    storage.DefaultStripeSize,
		MaxIterations: 1 << 20,
	}
}

func (o *Options) normalize() error {
	if o.PageSize <= 0 {
		o.PageSize = 4096
	}
	if o.ReadaheadPages <= 0 {
		o.ReadaheadPages = 16
	}
	if o.CacheBytes < o.PageSize {
		return fmt.Errorf("flashgraph: cache %d smaller than one %d-byte page", o.CacheBytes, o.PageSize)
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Disks <= 0 {
		o.Disks = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1 << 20
	}
	return nil
}

// VertexProgram is a vertex-centric algorithm: each iteration the engine
// fetches the adjacency list of every active vertex and hands it to
// Process.
type VertexProgram interface {
	// Name identifies the program.
	Name() string
	// Init allocates vertex state.
	Init(numVertices uint32)
	// BeforeIteration resets per-iteration state and returns the active
	// vertices of this iteration (nil means "all vertices").
	BeforeIteration(iter int) (active []uint32, all bool)
	// Process handles one active vertex and its neighbors. Called
	// concurrently for distinct vertices.
	Process(v uint32, neighbors []uint32)
	// AfterIteration reports convergence.
	AfterIteration(iter int) bool
}

// Stats reports one run.
type Stats struct {
	Iterations  int
	Elapsed     time.Duration
	BytesRead   int64
	CacheHits   int64
	CacheMisses int64
	VerticesRun int64
}

// Engine is a built FlashGraph instance over one graph.
type Engine struct {
	opts        Options
	numVertices uint32
	begPos      []int64 // in-memory CSR index (utilizes 8 B per vertex)
	adjPath     string
	adjF        *os.File
	array       *storage.Array
	cache       *pageCache
}

// Build materializes el's CSR under dir: the begin-position index stays in
// memory, the adjacency array goes to disk. Undirected graphs store both
// directions, as FlashGraph does.
func Build(el *graph.EdgeList, dir string, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := el.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	csr := graph.NewCSR(el, false)
	buf := make([]byte, int64(len(csr.Adj))*4)
	for i, w := range csr.Adj {
		binary.LittleEndian.PutUint32(buf[i*4:], w)
	}
	adjPath := filepath.Join(dir, "flashgraph.adj")
	if err := os.WriteFile(adjPath, buf, 0o644); err != nil {
		return nil, err
	}
	f, err := os.Open(adjPath)
	if err != nil {
		return nil, err
	}
	arr, err := storage.NewArray(f, storage.Options{
		NumDisks:   opts.Disks,
		StripeSize: opts.StripeSize,
		Bandwidth:  opts.Bandwidth,
		Latency:    opts.Latency,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	e := &Engine{
		opts:        opts,
		numVertices: el.NumVertices,
		begPos:      csr.BegPos,
		adjPath:     adjPath,
		adjF:        f,
		array:       arr,
	}
	e.cache = newPageCache(opts.CacheBytes/opts.PageSize, opts.PageSize, int64(len(buf)), opts.ReadaheadPages, arr)
	return e, nil
}

// Close releases the engine's resources.
func (e *Engine) Close() {
	if e.array != nil {
		e.array.Close()
		e.array = nil
	}
	if e.adjF != nil {
		e.adjF.Close()
		e.adjF = nil
	}
}

// AdjBytes returns the on-disk adjacency size (Table II's CSR column is
// this plus the index).
func (e *Engine) AdjBytes() int64 { return e.begPos[e.numVertices] * 4 }

// Run executes p until convergence.
func (e *Engine) Run(p VertexProgram) (*Stats, error) {
	p.Init(e.numVertices)
	stats := &Stats{}
	start := e.array.Stats()
	begin := time.Now()

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		active, all := p.BeforeIteration(iter)
		var runErr error
		var mu sync.Mutex
		process := func(v uint32) {
			nbrs, err := e.neighbors(v)
			if err != nil {
				mu.Lock()
				if runErr == nil {
					runErr = err
				}
				mu.Unlock()
				return
			}
			p.Process(v, nbrs)
		}
		if all {
			var wg sync.WaitGroup
			per := (int(e.numVertices) + e.opts.Threads - 1) / e.opts.Threads
			for t := 0; t < e.opts.Threads; t++ {
				lo := t * per
				hi := lo + per
				if hi > int(e.numVertices) {
					hi = int(e.numVertices)
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						process(uint32(v))
					}
				}(lo, hi)
			}
			wg.Wait()
			stats.VerticesRun += int64(e.numVertices)
		} else {
			// FlashGraph processes active vertices in ID order within
			// each partition, which clusters page accesses; preserve that
			// locality (it is what makes its selective I/O competitive).
			sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
			var wg sync.WaitGroup
			work := make(chan uint32, 1024)
			for t := 0; t < e.opts.Threads; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for v := range work {
						process(v)
					}
				}()
			}
			for _, v := range active {
				work <- v
			}
			close(work)
			wg.Wait()
			stats.VerticesRun += int64(len(active))
		}
		if runErr != nil {
			return nil, runErr
		}
		stats.Iterations = iter + 1
		if p.AfterIteration(iter) {
			break
		}
	}

	stats.Elapsed = time.Since(begin)
	end := e.array.Stats()
	stats.BytesRead = end.BytesRead - start.BytesRead
	stats.CacheHits, stats.CacheMisses = e.cache.counters()
	return stats, nil
}

// neighbors fetches v's adjacency list through the page cache. The
// returned slice is freshly allocated (pages may be evicted concurrently).
func (e *Engine) neighbors(v uint32) ([]uint32, error) {
	lo := e.begPos[v] * 4
	hi := e.begPos[v+1] * 4
	if lo == hi {
		return nil, nil
	}
	out := make([]uint32, 0, (hi-lo)/4)
	var scratch [4]byte
	pos := lo
	for pos < hi {
		page := pos / e.opts.PageSize
		data, err := e.cache.get(page)
		if err != nil {
			return nil, err
		}
		off := pos - page*e.opts.PageSize
		for off+4 <= e.opts.PageSize && pos < hi {
			copy(scratch[:], data[off:off+4])
			out = append(out, binary.LittleEndian.Uint32(scratch[:]))
			off += 4
			pos += 4
		}
	}
	return out, nil
}

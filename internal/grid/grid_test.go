package grid

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 1, false); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := New(100, 0, 1, false); err == nil {
		t.Fatal("zero tile bits accepted")
	}
	if _, err := New(100, 17, 1, false); err == nil {
		t.Fatal("tile bits > 16 accepted")
	}
	if _, err := New(1<<30, 2, 1, false); err == nil {
		t.Fatal("absurd tile count accepted")
	}
}

func TestPaperExampleLayout(t *testing.T) {
	// Figure 1(e)/4(a): 8 vertices, 2 partitions per side (tile width 4),
	// undirected upper-triangle storage keeps tiles [0,0], [0,1], [1,1].
	l, err := New(8, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if l.P != 2 {
		t.Fatalf("P = %d, want 2", l.P)
	}
	if l.NumTiles() != 3 {
		t.Fatalf("NumTiles = %d, want 3", l.NumTiles())
	}
	wantOrder := []Coord{{0, 0}, {0, 1}, {1, 1}}
	for i, want := range wantOrder {
		if got := l.CoordAt(i); got != want {
			t.Fatalf("tile %d = %v, want %v", i, got, want)
		}
	}
	if l.DiskIndex(1, 0) != -1 {
		t.Fatal("lower-triangle tile [1,0] should not be stored")
	}
	if got := l.StoredCoord(1, 0); got != (Coord{0, 1}) {
		t.Fatalf("StoredCoord(1,0) = %v", got)
	}
}

func TestFullLayoutStoresAllTiles(t *testing.T) {
	l, err := New(256, 4, 2, false) // 16 tiles/side, 2x2 groups
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTiles() != 16*16 {
		t.Fatalf("NumTiles = %d", l.NumTiles())
	}
	seen := map[Coord]bool{}
	for i := 0; i < l.NumTiles(); i++ {
		c := l.CoordAt(i)
		if seen[c] {
			t.Fatalf("tile %v appears twice", c)
		}
		seen[c] = true
		if l.DiskIndex(c.Row, c.Col) != i {
			t.Fatalf("DiskIndex(%v) = %d, want %d", c, l.DiskIndex(c.Row, c.Col), i)
		}
	}
}

func TestGroupContiguity(t *testing.T) {
	// Disk order must keep each group's tiles contiguous.
	for _, half := range []bool{false, true} {
		l, err := New(1<<10, 6, 4, half) // P=16, Q=4 -> 4x4 groups
		if err != nil {
			t.Fatal(err)
		}
		g := l.NumGroups()
		covered := 0
		for gi := uint32(0); gi < g; gi++ {
			for gj := uint32(0); gj < g; gj++ {
				lo, hi := l.GroupRange(gi, gj)
				if half && gj < gi {
					if lo != hi {
						t.Fatalf("half=%v: group [%d,%d] should be empty", half, gi, gj)
					}
					continue
				}
				for i := lo; i < hi; i++ {
					c := l.CoordAt(i)
					wi, wj := l.GroupOf(c.Row, c.Col)
					if wi != gi || wj != gj {
						t.Fatalf("half=%v: tile %v at %d leaked into group [%d,%d]",
							half, c, i, gi, gj)
					}
				}
				covered += hi - lo
			}
		}
		if covered != l.NumTiles() {
			t.Fatalf("half=%v: group ranges cover %d tiles of %d", half, covered, l.NumTiles())
		}
	}
}

func TestHalfTileCount(t *testing.T) {
	l, err := New(1<<9, 5, 2, true) // P = 16
	if err != nil {
		t.Fatal(err)
	}
	want := 16 * 17 / 2
	if l.NumTiles() != want {
		t.Fatalf("NumTiles = %d, want %d", l.NumTiles(), want)
	}
}

func TestVertexMath(t *testing.T) {
	l, err := New(1<<12, 8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if l.TileWidth() != 256 {
		t.Fatalf("TileWidth = %d", l.TileWidth())
	}
	if l.TileOf(257) != 1 || l.TileOf(255) != 0 {
		t.Fatal("TileOf wrong")
	}
	if l.InTileOffset(257) != 1 {
		t.Fatalf("InTileOffset(257) = %d", l.InTileOffset(257))
	}
	lo, hi := l.VertexRange(3)
	if lo != 768 || hi != 1024 {
		t.Fatalf("VertexRange(3) = [%d,%d)", lo, hi)
	}
}

func TestRaggedEdge(t *testing.T) {
	// Vertex count not a multiple of tile width: last tile is partial but
	// still addressable.
	l, err := New(1000, 8, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if l.P != 4 {
		t.Fatalf("P = %d, want 4 (ceil(1000/256))", l.P)
	}
	if l.DiskIndex(3, 3) < 0 {
		t.Fatal("last tile unaddressable")
	}
	if l.DiskIndex(4, 4) != -1 {
		t.Fatal("out-of-range tile addressable")
	}
}

func TestQClamping(t *testing.T) {
	l, err := New(1<<8, 4, 999, false) // q > P clamps to P
	if err != nil {
		t.Fatal(err)
	}
	if l.Q != l.P {
		t.Fatalf("Q = %d, want clamped to P = %d", l.Q, l.P)
	}
	if l.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d", l.NumGroups())
	}
	l2, err := New(1<<8, 4, 0, false) // q=0 becomes 1
	if err != nil {
		t.Fatal(err)
	}
	if l2.Q != 1 {
		t.Fatalf("Q = %d, want 1", l2.Q)
	}
}

// Property: DiskIndex and CoordAt are inverse bijections over stored
// tiles, for any layout shape.
func TestQuickIndexBijection(t *testing.T) {
	f := func(rawV uint32, rawBits, rawQ uint8, half bool) bool {
		v := rawV%(1<<12) + 1
		bits := uint(rawBits)%5 + 4
		q := uint32(rawQ)%8 + 1
		l, err := New(v, bits, q, half)
		if err != nil {
			return true // rejected configs are fine
		}
		for i := 0; i < l.NumTiles(); i++ {
			c := l.CoordAt(i)
			if l.DiskIndex(c.Row, c.Col) != i {
				return false
			}
			if half && c.Row > c.Col {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every (row,col) in range maps to a stored coordinate whose
// disk index is valid.
func TestQuickStoredCoordTotal(t *testing.T) {
	f := func(rawV uint32, rawBits uint8, r, c uint16) bool {
		v := rawV%(1<<12) + 1
		bits := uint(rawBits)%5 + 4
		l, err := New(v, bits, 2, true)
		if err != nil {
			return true
		}
		row, col := uint32(r)%l.P, uint32(c)%l.P
		sc := l.StoredCoord(row, col)
		return sc.Row <= sc.Col && l.DiskIndex(sc.Row, sc.Col) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package grid implements the 2D tile partitioning and on-disk physical
// grouping of G-Store (§IV–§V of the paper).
//
// The adjacency matrix of a graph with V vertices is cut into P×P tiles of
// 2^TileBits vertices per side (the paper fixes TileBits=16 so in-tile
// vertex offsets fit in two bytes; tests use smaller widths). Tiles are
// aggregated into Q×Q physical groups that are laid out contiguously on
// disk so that one group's algorithmic metadata fits in the last-level
// cache (Figure 6).
//
// On-disk order: physical groups in row-major order over the group grid;
// inside a group, tiles in row-major order. For undirected graphs only the
// upper triangle (row <= col) is stored — the symmetry saving of §IV-A.
package grid

import "fmt"

// MaxTileBits bounds the tile width so in-tile offsets fit in uint16,
// which is what the smallest-number-of-bits tuple encoding requires.
const MaxTileBits = 16

// Coord addresses one tile by its row and column in the tile grid.
type Coord struct {
	Row, Col uint32
}

// Layout describes the tile grid and its physical grouping.
type Layout struct {
	TileBits uint   // log2 of the tile width
	P        uint32 // tiles per side
	Q        uint32 // group width, in tiles
	Half     bool   // store only the upper triangle (undirected graphs)

	diskIndex []int32 // (row*P+col) -> disk-ordered tile index, -1 if unstored
	tiles     []Coord // disk-ordered tile index -> coordinates
}

// New builds a layout for numVertices vertices. q is the physical group
// width in tiles (clamped to [1, P]); half selects upper-triangle storage.
func New(numVertices uint32, tileBits uint, q uint32, half bool) (*Layout, error) {
	if tileBits == 0 || tileBits > MaxTileBits {
		return nil, fmt.Errorf("grid: tile bits %d out of range [1,%d]", tileBits, MaxTileBits)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("grid: zero vertices")
	}
	width := uint32(1) << tileBits
	p := (numVertices + width - 1) / width
	const maxP = 1 << 14
	if p > maxP {
		return nil, fmt.Errorf("grid: %d tiles per side exceeds limit %d; increase tile bits", p, maxP)
	}
	if q == 0 {
		q = 1
	}
	if q > p {
		q = p
	}
	l := &Layout{TileBits: tileBits, P: p, Q: q, Half: half}
	l.buildIndex()
	return l, nil
}

func (l *Layout) buildIndex() {
	p := int(l.P)
	l.diskIndex = make([]int32, p*p)
	for i := range l.diskIndex {
		l.diskIndex[i] = -1
	}
	idx := int32(0)
	l.forEachDiskOrder(func(row, col uint32) {
		l.diskIndex[int(row)*p+int(col)] = idx
		l.tiles = append(l.tiles, Coord{row, col})
		idx++
	})
}

// forEachDiskOrder visits stored tiles in on-disk order.
func (l *Layout) forEachDiskOrder(visit func(row, col uint32)) {
	g := (l.P + l.Q - 1) / l.Q
	for gi := uint32(0); gi < g; gi++ {
		for gj := uint32(0); gj < g; gj++ {
			if l.Half && gj < gi {
				continue // entire group below the diagonal
			}
			rEnd := min32((gi+1)*l.Q, l.P)
			cEnd := min32((gj+1)*l.Q, l.P)
			for r := gi * l.Q; r < rEnd; r++ {
				for c := gj * l.Q; c < cEnd; c++ {
					if l.Half && c < r {
						continue
					}
					visit(r, c)
				}
			}
		}
	}
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// TileWidth returns the number of vertices per tile side.
func (l *Layout) TileWidth() uint32 { return 1 << l.TileBits }

// TileOf returns the tile-grid coordinate of vertex v along either axis.
func (l *Layout) TileOf(v uint32) uint32 { return v >> l.TileBits }

// InTileOffset returns v's offset within its tile (the low TileBits bits —
// the part that the SNB encoding stores).
func (l *Layout) InTileOffset(v uint32) uint16 {
	return uint16(v & (l.TileWidth() - 1))
}

// NumTiles returns the number of stored tiles.
func (l *Layout) NumTiles() int { return len(l.tiles) }

// NumGroups returns the number of physical groups per side of the group
// grid.
func (l *Layout) NumGroups() uint32 { return (l.P + l.Q - 1) / l.Q }

// DiskIndex returns the on-disk position of tile (row, col), or -1 if that
// tile is not stored (lower triangle of a half layout, or out of range).
func (l *Layout) DiskIndex(row, col uint32) int {
	if row >= l.P || col >= l.P {
		return -1
	}
	return int(l.diskIndex[int(row)*int(l.P)+int(col)])
}

// CoordAt returns the coordinates of the tile at disk index i.
func (l *Layout) CoordAt(i int) Coord { return l.tiles[i] }

// Tiles returns all stored tile coordinates in disk order. The slice is
// shared; callers must not modify it.
func (l *Layout) Tiles() []Coord { return l.tiles }

// GroupOf returns the group-grid coordinates of tile (row, col).
func (l *Layout) GroupOf(row, col uint32) (gi, gj uint32) {
	return row / l.Q, col / l.Q
}

// GroupRange returns the half-open disk-index range [lo, hi) of the tiles
// in group (gi, gj). Tiles of one group are always contiguous on disk.
func (l *Layout) GroupRange(gi, gj uint32) (lo, hi int) {
	rEnd := min32((gi+1)*l.Q, l.P)
	cEnd := min32((gj+1)*l.Q, l.P)
	lo = -1
	for r := gi * l.Q; r < rEnd; r++ {
		for c := gj * l.Q; c < cEnd; c++ {
			if l.Half && c < r {
				continue
			}
			di := l.DiskIndex(r, c)
			if di < 0 {
				continue
			}
			if lo < 0 || di < lo {
				lo = di
			}
			if di+1 > hi {
				hi = di + 1
			}
		}
	}
	if lo < 0 {
		return 0, 0
	}
	return lo, hi
}

// StoredCoord maps an arbitrary (row, col) to the coordinate under which
// the tile is physically stored: in a half layout an edge that logically
// belongs to (row, col) with row > col is stored mirrored at (col, row).
func (l *Layout) StoredCoord(row, col uint32) Coord {
	if l.Half && row > col {
		return Coord{col, row}
	}
	return Coord{row, col}
}

// VertexRange returns the half-open vertex range [lo, hi) covered along
// one axis by tile index t (row or column).
func (l *Layout) VertexRange(t uint32) (lo, hi uint32) {
	lo = t << l.TileBits
	return lo, lo + l.TileWidth()
}

package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/delta"
	"github.com/gwu-systems/gstore/internal/faultfs"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/report"
	"github.com/gwu-systems/gstore/internal/server"
	"github.com/gwu-systems/gstore/internal/tile"
	"github.com/gwu-systems/gstore/internal/wal"
)

// chaosReport is the CHAOS artifact: a whole-system crash/chaos torture
// run over the write path. Each seeded schedule interleaves ingest
// batches, snapshot flushes, and injected faults (transient write
// errors, fsync failures, ENOSPC, simulated crashes at the named crash
// points), then restarts from the on-disk state and verifies the
// recovery invariant: every acked mutation present exactly, unacked
// batches absent or whole, fsck clean, no temp litter, and query
// results bit-identical (PageRank within 1e-9) to a fresh conversion of
// the reference edge set. Findings must be empty.
type chaosReport struct {
	Schedules       int      `json:"schedules"`
	Scale           uint     `json:"scale"`
	Seed            uint64   `json:"seed"`
	Batches         int64    `json:"batches"`
	AckedBatches    int64    `json:"acked_batches"`
	Mutations       int64    `json:"acked_mutations"`
	Flushes         int64    `json:"flushes"`
	Crashes         int      `json:"crashes"`
	FsyncFailures   int      `json:"fsync_failures"`
	TransientFaults int      `json:"transient_faults"`
	NoSpaceFaults   int      `json:"enospc_faults"`
	WholeUnacked    int      `json:"whole_unacked_batches"`
	Recoveries      int      `json:"recoveries"`
	QueriesCompared int      `json:"queries_compared"`
	ServerScenarios int      `json:"server_scenarios"`
	Findings        []string `json:"findings"`
	Sec             float64  `json:"seconds"`
}

// chaosPoints are the named crash points the schedule generator arms.
// tile.convert.before-meta is exercised separately (conversion happens
// once, before faults arm).
var chaosPoints = []string{
	"wal.append.after-write",
	"wal.rotate.after-sync",
	"wal.truncate.after-remove",
	"fsutil.commit.after-sync",
	"fsutil.commit.after-rename",
	"delta.flush.after-snapshot",
	"delta.flush.after-rotate",
	"delta.flush.after-truncate",
}

// Chaos runs the torture harness: Quick runs a CI-sized sample, the
// full run covers ChaosSchedules seeded schedules. A non-empty findings
// list is an error — every finding is a broken durability promise.
func Chaos(c *Config) error {
	schedules := 200
	if c.Quick {
		schedules = 25
	}
	rep, err := chaosRun(c, schedules)
	if err != nil {
		return err
	}
	printChaosReport(c.Out, rep)
	if c.BenchOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "wrote %s\n", c.BenchOut)
	}
	if len(rep.Findings) > 0 {
		return fmt.Errorf("chaos: %d invariant violations (first: %s)", len(rep.Findings), rep.Findings[0])
	}
	return nil
}

// chaosRun executes the given number of seeded schedules and the
// server-level degraded-mode scenario. It is also the entry point of
// the TestChaosShort CI gate.
func chaosRun(c *Config, schedules int) (*chaosReport, error) {
	begin := time.Now()
	// Correctness harness: small graphs keep hundreds of schedules (each
	// with its own recovery and fresh reference conversion) fast, while
	// still spanning many tiles, WAL rotations, and snapshot generations.
	scale := c.Scale
	if scale > 9 {
		scale = 9
	}
	ef := c.EdgeFactor
	if ef > 8 {
		ef = 8
	}
	rep := &chaosReport{Schedules: schedules, Scale: scale, Seed: c.Seed}

	dir, err := tempWorkDir(c, "chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	el, err := gen.Generate(gen.Graph500Config(scale, ef, c.Seed))
	if err != nil {
		return nil, err
	}
	topts := tile.ConvertOptions{TileBits: scale - 4, GroupQ: 2, Symmetry: true, SNB: true, Degrees: true}
	pristine := filepath.Join(dir, "pristine")
	if err := os.MkdirAll(pristine, 0o755); err != nil {
		return nil, err
	}
	pg, err := tile.Convert(el, pristine, "chaos", topts)
	if err != nil {
		return nil, err
	}
	pg.Close()

	// The reference model's base occurrences, canonicalized like the
	// symmetric store's tuples.
	baseCanon := make([]graph.Edge, len(el.Edges))
	for i, e := range el.Edges {
		baseCanon[i] = e.Canon()
	}

	for i := 0; i < schedules; i++ {
		runChaosSchedule(c, rep, dir, pristine, topts, el.NumVertices, baseCanon, i)
	}
	if err := chaosServerScenario(c, rep, dir, el, topts); err != nil {
		return nil, err
	}
	rep.Sec = time.Since(begin).Seconds()
	return rep, nil
}

// splitmix64 advances the schedule generator's state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const (
	chaosClean = iota // full run, clean Close, reopen
	chaosCrash        // simulated crash at a named crash point
	chaosFsync        // injected fsync failure: sticky degraded mode
	chaosWrite        // transient write error: rollback, retry succeeds
	chaosNoSpace      // ENOSPC after a byte budget, then space freed
	chaosAbandon      // process killed with no fault: pure WAL replay
	chaosScenarios
)

// runChaosSchedule plays one seeded schedule and appends any invariant
// violation to rep.Findings.
func runChaosSchedule(c *Config, rep *chaosReport, dir, pristine string, topts tile.ConvertOptions, nv uint32, baseCanon []graph.Edge, idx int) {
	state := c.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15
	rng := func(n uint64) uint64 { return splitmix64(&state) % n }
	label := fmt.Sprintf("schedule %d", idx)
	fail := func(format string, args ...interface{}) {
		rep.Findings = append(rep.Findings, fmt.Sprintf("%s: ", label)+fmt.Sprintf(format, args...))
	}

	sdir := filepath.Join(dir, fmt.Sprintf("s%04d", idx))
	if err := copyFlatDir(pristine, sdir); err != nil {
		fail("copy pristine: %v", err)
		return
	}
	base := tile.BasePath(sdir, "chaos")
	tg, err := tile.Open(base)
	if err != nil {
		fail("open base: %v", err)
		return
	}
	fs := faultfs.New(int64(c.Seed) + int64(idx)*7919)
	ds, err := delta.Open(tg, base, delta.Options{FS: fs, WALSegmentBytes: 512})
	if err != nil {
		tg.Close()
		fail("open store: %v", err)
		return
	}

	scenario := int(rng(chaosScenarios))
	switch scenario {
	case chaosCrash:
		pt := chaosPoints[rng(uint64(len(chaosPoints)))]
		fs.Arm(faultfs.Rule{Op: faultfs.OpCrashPoint, PathContains: pt, Crash: true, AfterN: int(1 + rng(3))})
	case chaosFsync:
		fs.Arm(faultfs.Rule{Op: faultfs.OpSync, PathContains: ".wal", AfterN: int(1 + rng(10))})
	case chaosWrite:
		fs.Arm(faultfs.Rule{Op: faultfs.OpWrite, PathContains: ".wal", AfterN: int(1 + rng(16))})
	case chaosNoSpace:
		fs.SetWriteBudget(int64(256 + rng(1024)))
	}

	// The reference model: presence overrides on top of the base
	// occurrences, folded batch by batch — only once the batch is acked.
	ov := map[uint64]bool{}
	fold := func(ops []delta.Op) {
		for _, op := range ops {
			a, b := op.Src, op.Dst
			if a > b {
				a, b = b, a
			}
			ov[uint64(a)<<32|uint64(b)] = !op.Del
		}
	}
	var insertedPool []delta.Op
	newBatch := func() []delta.Op {
		ops := make([]delta.Op, 0, 2+rng(6))
		for len(ops) < cap(ops) {
			if rng(4) == 0 && len(insertedPool) > 0 {
				victim := insertedPool[rng(uint64(len(insertedPool)))]
				ops = append(ops, delta.Op{Del: true, Src: victim.Src, Dst: victim.Dst})
				continue
			}
			op := delta.Op{Src: uint32(rng(uint64(nv))), Dst: uint32(rng(uint64(nv)))}
			ops = append(ops, op)
		}
		return ops
	}

	acked := 0
	var inflight []delta.Op // the batch in flight when the fault hit, if any
	dead := false           // writer "process" is gone (crashed or degraded)
	nBatches := int(3 + rng(5))
	for b := 0; b < nBatches && !dead; b++ {
		ops := newBatch()
		rep.Batches++
		_, err := ds.Apply(ops)
		if err != nil {
			switch scenario {
			case chaosCrash:
				rep.Crashes++
				inflight = ops
				dead = true
				continue
			case chaosFsync:
				if !errors.Is(err, wal.ErrFailed) {
					fail("fsync-failure apply error %v, want wal.ErrFailed", err)
				}
				if _, err2 := ds.Apply(ops); !errors.Is(err2, wal.ErrFailed) {
					fail("poisoned store accepted a retry: %v", err2)
				}
				rep.FsyncFailures++
				inflight = ops
				dead = true
				continue
			case chaosWrite:
				rep.TransientFaults++
				if errors.Is(err, wal.ErrFailed) {
					fail("transient write error poisoned the WAL: %v", err)
					dead = true
					continue
				}
			case chaosNoSpace:
				rep.NoSpaceFaults++
				if !errors.Is(err, faultfs.ErrNoSpace) {
					fail("budget scenario failed with %v, want ENOSPC", err)
				}
				fs.SetWriteBudget(-1) // space freed
			default:
				fail("unexpected apply error: %v", err)
				dead = true
				continue
			}
			// Transient scenarios retry the identical batch: the failed
			// append was rolled back, so the retry must succeed.
			if _, err := ds.Apply(ops); err != nil {
				fail("retry after transient fault failed: %v", err)
				dead = true
				continue
			}
		}
		acked++
		rep.AckedBatches++
		rep.Mutations += int64(len(ops))
		fold(ops)
		for _, op := range ops {
			if !op.Del {
				insertedPool = append(insertedPool, op)
			}
		}
		if rng(4) == 0 {
			if err := ds.Flush(); err != nil {
				switch {
				case scenario == chaosCrash:
					rep.Crashes++
					dead = true
				case scenario == chaosFsync:
					rep.FsyncFailures++
					dead = true
				case scenario == chaosNoSpace && errors.Is(err, faultfs.ErrNoSpace):
					rep.NoSpaceFaults++
					fs.SetWriteBudget(-1)
					if err := ds.Flush(); err != nil {
						fail("flush retry after freed space: %v", err)
						dead = true
					}
				default:
					fail("flush: %v", err)
					dead = true
				}
			} else {
				rep.Flushes++
			}
		}
	}
	switch {
	case !dead && scenario == chaosAbandon:
		// Killed with everything acked: the WAL alone must recover it.
	case !dead:
		if scenario == chaosNoSpace {
			// The budget may not have emptied mid-schedule; free it so the
			// shutdown flush is not the first place it bites.
			fs.SetWriteBudget(-1)
		}
		if err := ds.Close(); err != nil {
			if scenario == chaosCrash && fs.Crashed() {
				rep.Crashes++ // the armed point fired inside Close's flush
			} else if scenario != chaosFsync {
				fail("clean close: %v", err)
			}
		}
	case scenario == chaosFsync:
		// Degraded-mode shutdown: Close flushes the acked view and
		// releases the WAL; the poisoned rotate error is expected.
		ds.Close()
	}
	tg.Close()

	// ---- restart: recover from the on-disk state and verify ----
	rep.Recoveries++
	if findings, _ := delta.Fsck(base); len(findings) != 0 {
		fail("fsck after restart: %v", findings)
		return
	}
	g2, err := tile.Open(base)
	if err != nil {
		fail("reopen base: %v", err)
		return
	}
	defer g2.Close()
	ds2, err := delta.Open(g2, base, delta.Options{})
	if err != nil {
		fail("recovery open: %v", err)
		return
	}
	defer ds2.Close()
	ents, err := os.ReadDir(sdir)
	if err != nil {
		fail("readdir: %v", err)
		return
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			fail("temp litter %q after recovery", e.Name())
		}
	}

	// Acked exactly; the in-flight batch either vanished or landed whole.
	seq := ds2.Stats().Seq
	switch {
	case seq == uint64(acked):
	case inflight != nil && seq == uint64(acked)+1:
		fold(inflight)
		rep.WholeUnacked++
	default:
		fail("recovered seq %d, want %d acked (in-flight batch: %v)", seq, acked, inflight != nil)
		return
	}

	// The recovered store accepts writes; the probe joins the reference.
	probe := []delta.Op{{Src: uint32(rng(uint64(nv))), Dst: uint32(rng(uint64(nv)))}}
	if _, err := ds2.Apply(probe); err != nil {
		fail("write after recovery: %v", err)
		return
	}
	fold(probe)

	// Fresh-convert the reference edge set and compare query results.
	refEl := &graph.EdgeList{NumVertices: nv, Edges: make([]graph.Edge, 0, len(baseCanon))}
	for _, e := range baseCanon {
		if _, overridden := ov[uint64(e.Src)<<32|uint64(e.Dst)]; !overridden {
			refEl.Edges = append(refEl.Edges, e)
		}
	}
	for k, present := range ov {
		if present {
			refEl.Edges = append(refEl.Edges, graph.Edge{Src: uint32(k >> 32), Dst: uint32(k)})
		}
	}
	refDir := filepath.Join(sdir, "ref")
	rg, err := tile.Convert(refEl, refDir, "ref", topts)
	if err != nil {
		fail("reference conversion: %v", err)
		return
	}
	defer rg.Close()

	root := uint32(rng(uint64(nv)))
	for _, f := range compareQueries(g2, ds2, rg, root, idx%2 == 0) {
		fail("%s", f)
	}
	rep.QueriesCompared++
}

// chaosEngineOpts returns small unthrottled engine options for the
// correctness comparisons.
func chaosEngineOpts() core.Options {
	o := core.DefaultOptions()
	o.Threads = 2
	o.MemoryBytes = 2 << 20
	o.SegmentSize = 64 << 10
	return o
}

// compareQueries runs BFS (exact), PageRank (<=1e-9), and optionally
// PPR (<=1e-9) on the recovered store and on the fresh reference
// conversion, returning a description of every divergence.
func compareQueries(tg *tile.Graph, ds *delta.Store, ref *tile.Graph, root uint32, withPPR bool) []string {
	var findings []string
	es, err := core.NewEngine(tg, chaosEngineOpts())
	if err != nil {
		return []string{fmt.Sprintf("store engine: %v", err)}
	}
	defer es.Close()
	es.SetDeltaStore(ds)
	er, err := core.NewEngine(ref, chaosEngineOpts())
	if err != nil {
		return []string{fmt.Sprintf("reference engine: %v", err)}
	}
	defer er.Close()
	ctx := context.Background()

	sb, rb := algo.NewBFS(root), algo.NewBFS(root)
	if _, err := es.Run(ctx, sb); err != nil {
		return append(findings, fmt.Sprintf("store bfs: %v", err))
	}
	if _, err := er.Run(ctx, rb); err != nil {
		return append(findings, fmt.Sprintf("reference bfs: %v", err))
	}
	sd, rd := sb.Depths(), rb.Depths()
	for v := range sd {
		if sd[v] != rd[v] {
			findings = append(findings, fmt.Sprintf("bfs root %d: depth[%d] = %d, reference %d", root, v, sd[v], rd[v]))
			break
		}
	}

	sp, rp := algo.NewPageRank(4), algo.NewPageRank(4)
	if _, err := es.Run(ctx, sp); err != nil {
		return append(findings, fmt.Sprintf("store pagerank: %v", err))
	}
	if _, err := er.Run(ctx, rp); err != nil {
		return append(findings, fmt.Sprintf("reference pagerank: %v", err))
	}
	sr, rr := sp.Ranks(), rp.Ranks()
	for v := range sr {
		if math.Abs(sr[v]-rr[v]) > 1e-9 {
			findings = append(findings, fmt.Sprintf("pagerank: |rank[%d] - reference| = %g > 1e-9", v, math.Abs(sr[v]-rr[v])))
			break
		}
	}

	if withPPR {
		sq, rq := algo.NewPPR(root, 4), algo.NewPPR(root, 4)
		if _, err := es.Run(ctx, sq); err != nil {
			return append(findings, fmt.Sprintf("store ppr: %v", err))
		}
		if _, err := er.Run(ctx, rq); err != nil {
			return append(findings, fmt.Sprintf("reference ppr: %v", err))
		}
		sv, rv := sq.Ranks(), rq.Ranks()
		for v := range sv {
			if math.Abs(sv[v]-rv[v]) > 1e-9 {
				findings = append(findings, fmt.Sprintf("ppr root %d: |rank[%d] - reference| = %g > 1e-9", root, v, math.Abs(sv[v]-rv[v])))
				break
			}
		}
	}
	return findings
}

// chaosServerScenario drives the whole stack through degraded mode: a
// server whose WAL fsyncs always fail must reject ingest with 503
// status="wal_failed", keep serving queries, and fail readiness.
func chaosServerScenario(c *Config, rep *chaosReport, dir string, el *graph.EdgeList, topts tile.ConvertOptions) error {
	sdir := filepath.Join(dir, "server")
	tg, err := tile.Convert(el, sdir, "chaos", topts)
	if err != nil {
		return err
	}
	tg.Close()

	fs := faultfs.New(int64(c.Seed) ^ 0x5eed)
	fs.Arm(faultfs.Rule{Op: faultfs.OpSync, PathContains: ".wal", Every: true})
	srv := server.New()
	srv.DeltaFS = fs
	defer srv.Close()
	if err := srv.AddGraph("chaos", tile.BasePath(sdir, "chaos"), chaosEngineOpts()); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fail := func(format string, args ...interface{}) {
		rep.Findings = append(rep.Findings, "server scenario: "+fmt.Sprintf(format, args...))
	}

	code, body, err := httpJSON(http.MethodPost, ts.URL+"/graphs/chaos/edges",
		`{"edges":[{"src":1,"dst":2}]}`)
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable || body["status"] != "wal_failed" {
		fail("ingest under failed fsync = %d %v, want 503 wal_failed", code, body)
	}
	code, _, err = httpJSON(http.MethodPost, ts.URL+"/graphs/chaos/bfs", `{"root":0}`)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		fail("bfs on degraded graph = %d, want 200", code)
	}
	code, body, err = httpJSON(http.MethodGet, ts.URL+"/readyz", "")
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable || body["status"] != "wal_failed" {
		fail("/readyz on degraded server = %d %v, want 503 wal_failed", code, body)
	}
	rep.ServerScenarios++
	return nil
}

// httpJSON fires one request and decodes the JSON object response.
func httpJSON(method, url, payload string) (int, map[string]interface{}, error) {
	var rdr io.Reader
	if payload != "" {
		rdr = bytes.NewReader([]byte(payload))
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out := map[string]interface{}{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("decoding %s %s response: %w", method, url, err)
	}
	return resp.StatusCode, out, nil
}

// copyFlatDir copies every regular file of src into dst (created fresh).
func copyFlatDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printChaosReport(out io.Writer, rep *chaosReport) {
	tb := report.New(fmt.Sprintf("chaos: %d seeded crash/fault schedules (scale %d, seed %d)",
		rep.Schedules, rep.Scale, rep.Seed), "metric", "value")
	tb.Row("batches applied", rep.Batches)
	tb.Row("batches acked", rep.AckedBatches)
	tb.Row("mutations acked", rep.Mutations)
	tb.Row("snapshot flushes", rep.Flushes)
	tb.Row("simulated crashes", rep.Crashes)
	tb.Row("fsync failures (sticky degraded)", rep.FsyncFailures)
	tb.Row("transient write faults (retried)", rep.TransientFaults)
	tb.Row("ENOSPC faults (freed + retried)", rep.NoSpaceFaults)
	tb.Row("in-flight batches recovered whole", rep.WholeUnacked)
	tb.Row("recoveries verified", rep.Recoveries)
	tb.Row("query comparisons vs fresh conversion", rep.QueriesCompared)
	tb.Row("server degraded-mode scenarios", rep.ServerScenarios)
	tb.Row("invariant violations", len(rep.Findings))
	tb.Row("elapsed", fmt.Sprintf("%.1fs", rep.Sec))
	tb.Fprint(out)
	for i, f := range rep.Findings {
		if i == 10 {
			fmt.Fprintf(out, "  ... %d more findings\n", len(rep.Findings)-10)
			break
		}
		fmt.Fprintf(out, "  FINDING: %s\n", f)
	}
}

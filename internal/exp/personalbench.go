package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/report"
	"github.com/gwu-systems/gstore/internal/server"
	"github.com/gwu-systems/gstore/internal/tile"
)

// personalResult is one closed-loop personalized-serving phase.
type personalResult struct {
	Mode           string  `json:"mode"`
	Clients        int     `json:"clients"`
	DurationSec    float64 `json:"duration_seconds"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	QPS            float64 `json:"qps"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	BytesRead      int64   `json:"bytes_read"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheJoins     int64   `json:"cache_joins"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CoalescedRuns  int64   `json:"coalesced_runs"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
}

// personalBenchReport is the BENCH_pr8.json artifact: the PR 5
// one-root-per-slot path vs the fused path (msbfs coalescing + result
// cache) under the same Zipf-with-bursts root mix.
type personalBenchReport struct {
	Baseline   *personalResult `json:"baseline"`
	Personal   *personalResult `json:"personal"`
	SpeedupQPS float64         `json:"speedup_qps"`
	BytesRatio float64         `json:"bytes_ratio"`
}

// ServePersonal drives the personalized-query serving path with a
// closed loop of clients firing GET /bfs?root= queries whose roots
// follow a Zipf distribution with bursts (every client occasionally
// repeats its current root back to back, the way a recommendation
// refresh re-queries the same user). Two phases over the same graph:
//
//   - baseline: batch window 0, cache off — every query is a solo BFS
//     occupying its own run slot (the PR 5 path).
//   - personal: coalescing window on, result cache on — concurrent
//     roots fuse into one msbfs run and repeats hit the cache.
//
// The report carries QPS, p50/p99 latency, bytes/query, cache hit
// rate, coalesced-run count, and the p99 scheduler admission wait
// scraped from the gstore_run_queue_wait_seconds histogram.
func ServePersonal(c *Config) error {
	clients := c.BenchClients
	if clients <= 0 {
		clients = 32
	}
	dur := c.BenchDuration
	if dur <= 0 {
		dur = 5 * time.Second
		if c.Quick {
			dur = 2 * time.Second
		}
	}
	window := c.BatchWindow
	if window <= 0 {
		window = 2 * time.Millisecond
	}

	tg, err := c.tileGraph("servepersonal", c.kronCfg(), c.stdTileOpts())
	if err != nil {
		return err
	}
	vertices := tg.Meta.NumVertices
	tg.Close()
	base := tile.BasePath(c.WorkDir, "servepersonal")

	reopen := func() (core.Options, error) {
		g, err := tile.Open(base)
		if err != nil {
			return core.Options{}, err
		}
		defer g.Close()
		return c.diskOpts(g), nil
	}
	opts, err := reopen()
	if err != nil {
		return err
	}
	maxRuns := clients
	if maxRuns > 64 {
		maxRuns = 64
	}

	baseline, err := personalPhase(base, opts, personalPhaseConfig{
		mode: "one-root-per-slot", maxRuns: maxRuns,
	}, clients, dur, vertices, c.Seed)
	if err != nil {
		return err
	}
	personal, err := personalPhase(base, opts, personalPhaseConfig{
		mode: "fused+cache", maxRuns: maxRuns,
		window: window, cacheBytes: 32 << 20, cacheTTL: 5 * time.Minute,
	}, clients, dur, vertices, c.Seed)
	if err != nil {
		return err
	}

	rep := &personalBenchReport{Baseline: baseline, Personal: personal}
	if baseline.QPS > 0 {
		rep.SpeedupQPS = personal.QPS / baseline.QPS
	}
	if baseline.BytesPerQuery > 0 {
		rep.BytesRatio = personal.BytesPerQuery / baseline.BytesPerQuery
	}
	printPersonalReport(c.Out, clients, rep)

	if c.BenchOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "wrote %s\n", c.BenchOut)
	}
	return nil
}

func printPersonalReport(out io.Writer, clients int, rep *personalBenchReport) {
	tb := report.New(fmt.Sprintf("personalized serving, %d clients (Zipf BFS roots with bursts)", clients),
		"mode", "queries", "QPS", "p50 ms", "p99 ms", "KB/query", "hit rate", "coalesced", "qwait p99 ms", "errors")
	for _, r := range []*personalResult{rep.Baseline, rep.Personal} {
		if r == nil {
			continue
		}
		tb.Row(r.Mode, r.Queries, fmt.Sprintf("%.1f", r.QPS),
			fmt.Sprintf("%.2f", r.P50Ms), fmt.Sprintf("%.2f", r.P99Ms),
			fmt.Sprintf("%.1f", r.BytesPerQuery/(1<<10)),
			fmt.Sprintf("%.2f", r.CacheHitRate),
			r.CoalescedRuns,
			fmt.Sprintf("%.2f", r.QueueWaitP99Ms),
			r.Errors)
	}
	tb.Fprint(out)
	if rep.SpeedupQPS > 0 {
		fmt.Fprintf(out, "speedup %.2fx QPS, %.2fx bytes/query\n",
			rep.SpeedupQPS, rep.BytesRatio)
	}
}

type personalPhaseConfig struct {
	mode       string
	maxRuns    int
	window     time.Duration
	cacheBytes int64
	cacheTTL   time.Duration
}

// personalPhase serves the graph in-process under one configuration and
// runs the closed loop against it.
func personalPhase(basePath string, opts core.Options, pc personalPhaseConfig, clients int, dur time.Duration, vertices uint32, seed uint64) (*personalResult, error) {
	opts.MaxConcurrentRuns = pc.maxRuns
	opts.MaxQueuedRuns = 4 * clients // closed loop must queue, not bounce
	opts.BatchWindow = pc.window
	srv := server.New()
	srv.ReadOnly = true // serving benchmark; no mutations in the loop
	srv.QCacheBytes = pc.cacheBytes
	srv.QCacheTTL = pc.cacheTTL
	defer srv.Close()
	if err := srv.AddGraph("bench", basePath, opts); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	return personalLoop(ts.URL, "bench", pc.mode, clients, dur, vertices, seed)
}

// personalLoop is the closed loop: every client draws Zipf-distributed
// roots and GETs the personalized BFS fast path, re-querying its
// current root in short bursts.
func personalLoop(baseURL, graph, mode string, clients int, dur time.Duration, vertices uint32, seed uint64) (*personalResult, error) {
	url := strings.TrimRight(baseURL, "/") + "/graphs/" + graph + "/bfs?root="
	startBytes, err := scrapeCounter(baseURL, "gstore_storage_bytes_read_total", graph)
	if err != nil {
		return nil, fmt.Errorf("scraping %s/metrics before the loop: %w", baseURL, err)
	}

	const burst = 4 // queries per drawn root: the repeat factor of a refresh burst
	var (
		wg       sync.WaitGroup
		errCount atomic.Int64
		lats     = make([][]int64, clients)
	)
	begin := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(ci)*7919))
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(vertices-1))
			for time.Since(begin) < dur {
				root := uint32(zipf.Uint64())
				for q := 0; q < burst && time.Since(begin) < dur; q++ {
					qb := time.Now()
					resp, err := http.Get(url + strconv.FormatUint(uint64(root), 10))
					if err != nil {
						errCount.Add(1)
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCount.Add(1)
						continue
					}
					lats[ci] = append(lats[ci], int64(time.Since(qb)))
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	endBytes, err := scrapeCounter(baseURL, "gstore_storage_bytes_read_total", graph)
	if err != nil {
		return nil, fmt.Errorf("scraping %s/metrics after the loop: %w", baseURL, err)
	}
	hits, _ := scrapeUnlabeled(baseURL, "gstore_qcache_hits_total")
	misses, _ := scrapeUnlabeled(baseURL, "gstore_qcache_misses_total")
	joins, _ := scrapeUnlabeled(baseURL, "gstore_qcache_joins_total")
	coalesced, _ := scrapeCounter(baseURL, "gstore_personal_coalesced_runs_total", graph)
	qwaitP99, _ := scrapeHistogramP99(baseURL, "gstore_run_queue_wait_seconds", graph)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sorted := sortedCopy(all)
	n := int64(len(all))
	res := &personalResult{
		Mode:           mode,
		Clients:        clients,
		DurationSec:    elapsed.Seconds(),
		Queries:        n,
		Errors:         errCount.Load(),
		QPS:            float64(n) / elapsed.Seconds(),
		P50Ms:          float64(percentile(sorted, 0.50)) / 1e6,
		P99Ms:          float64(percentile(sorted, 0.99)) / 1e6,
		BytesRead:      endBytes - startBytes,
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheJoins:     joins,
		CoalescedRuns:  coalesced,
		QueueWaitP99Ms: qwaitP99 * 1e3,
	}
	if n > 0 {
		res.BytesPerQuery = float64(res.BytesRead) / float64(n)
		res.CacheHitRate = float64(hits) / float64(n)
	}
	return res, nil
}

// scrapeUnlabeled reads an unlabeled series (the server-wide qcache
// counters) from /metrics; 0 when absent.
func scrapeUnlabeled(baseURL, name string) (int64, error) {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %q: %w", line, err)
		}
		return int64(v), nil
	}
	return 0, nil
}

// scrapeHistogramP99 estimates the 99th percentile of a Prometheus
// histogram from its cumulative _bucket series (the upper bound of the
// first bucket covering 99% of observations; the +Inf bucket reports
// the largest finite bound, a floor on the true value).
func scrapeHistogramP99(baseURL, name, graph string) (float64, error) {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	type bucket struct {
		le  float64
		inf bool
		cum int64
	}
	var buckets []bucket
	prefix := name + "_bucket{"
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, prefix) || !strings.Contains(line, fmt.Sprintf("graph=%q", graph)) {
			continue
		}
		li := strings.Index(line, `le="`)
		if li < 0 {
			continue
		}
		rest := line[li+4:]
		ri := strings.Index(rest, `"`)
		fields := strings.Fields(line)
		cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			continue
		}
		b := bucket{cum: cum}
		if le := rest[:ri]; le == "+Inf" {
			b.inf = true
		} else if b.le, err = strconv.ParseFloat(le, 64); err != nil {
			continue
		}
		buckets = append(buckets, b)
	}
	if len(buckets) == 0 {
		return 0, nil
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].inf != buckets[j].inf {
			return buckets[j].inf
		}
		return buckets[i].le < buckets[j].le
	})
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, nil
	}
	want := int64(float64(total)*0.99 + 0.5)
	for _, b := range buckets {
		if b.cum >= want {
			if b.inf {
				break
			}
			return b.le, nil
		}
	}
	// Everything past the largest finite bound: report that bound.
	for i := len(buckets) - 1; i >= 0; i-- {
		if !buckets[i].inf {
			return buckets[i].le, nil
		}
	}
	return 0, nil
}

package exp

import (
	"fmt"
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/gen"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/report"
	"github.com/gwu-systems/gstore/internal/tile"
)

// workloads returns the named graph configurations standing in for the
// paper's datasets (Table II).
func (c *Config) workloads() []struct {
	Name string
	Cfg  gen.Config
} {
	return []struct {
		Name string
		Cfg  gen.Config
	}{
		{"twitter-like", c.twitterCfg()},
		{"friendster-like", c.friendsterCfg()},
		{"kron", c.kronCfg()},
		{"random", c.uniformCfg()},
	}
}

// Table1 reproduces Table I: conversion time to CSR vs to the G-Store
// tile format. The tile conversion is usually faster (same two-pass
// structure, half the output); heavy skew (twitter-like) slows the tile
// side, as the paper observes.
func Table1(c *Config) error {
	c.Defaults()
	tb := report.New("Table I: conversion time",
		"graph", "edges", "CSR", "G-Store", "ratio CSR/G-Store")
	for _, w := range c.workloads() {
		el, err := c.edgeList(w.Cfg)
		if err != nil {
			return err
		}
		csrStart := time.Now()
		csr := graph.NewCSR(el, false)
		csrTime := time.Since(csrStart)
		_ = csr

		dir, err := tempWorkDir(c, "table1")
		if err != nil {
			return err
		}
		opts := c.stdTileOpts()
		opts.TileBits = c.tileBits()
		opts.GroupQ = 8
		gsStart := time.Now()
		tg, err := tile.Convert(el, dir, w.Name, opts)
		gsTime := time.Since(gsStart)
		if err != nil {
			return err
		}
		tg.Close()
		tb.Row(w.Name, len(el.Edges), csrTime, gsTime, report.Speedup(csrTime, gsTime))
	}
	tb.Fprint(c.Out)
	return nil
}

// Table2 reproduces Table II: on-disk sizes of the edge list, CSR, and
// G-Store representations, with the space savings the tile format
// provides (2x from symmetry on undirected graphs, 2x from SNB vs CSR's
// 4-byte IDs, 4-8x vs raw edge lists).
func Table2(c *Config) error {
	c.Defaults()
	tb := report.New("Table II: graph sizes and space savings",
		"graph", "type", "vertices", "edges", "edge list", "CSR", "G-Store",
		"vs edge list", "vs CSR")
	add := func(name string, cfg gen.Config) error {
		el, err := c.edgeList(cfg)
		if err != nil {
			return err
		}
		csr := graph.NewCSR(el, false)
		dir, err := tempWorkDir(c, "table2")
		if err != nil {
			return err
		}
		opts := c.stdTileOpts()
		opts.TileBits = c.tileBits()
		opts.GroupQ = 8
		tg, err := tile.Convert(el, dir, name, opts)
		if err != nil {
			return err
		}
		defer tg.Close()
		elBytes := graph.EdgeListSizeBytes(int64(len(el.Edges)), el.Directed)
		csrBytes := csr.SizeBytes()
		gsBytes := tg.DataBytes()
		kind := "undirected"
		if el.Directed {
			kind = "directed"
		}
		tb.Row(name, kind, el.NumVertices, len(el.Edges),
			report.Bytes(elBytes), report.Bytes(csrBytes), report.Bytes(gsBytes),
			report.Ratio(float64(elBytes), float64(gsBytes)),
			report.Ratio(float64(csrBytes), float64(gsBytes)))
		return nil
	}
	for _, w := range c.workloads() {
		if err := add(w.Name, w.Cfg); err != nil {
			return err
		}
	}
	// One extra scale step stands in for the paper's Kron-30/31/33 rows.
	big := gen.Graph500Config(c.Scale+1, c.EdgeFactor, c.Seed+9)
	if err := add(fmt.Sprintf("kron-%d-%d", c.Scale+1, c.EdgeFactor), big); err != nil {
		return err
	}
	tb.Fprint(c.Out)
	return nil
}

// Table3 reproduces Table III: end-to-end runtimes of BFS, PageRank (one
// full run) and WCC on the largest graph the reproduction machine
// comfortably holds, with the BFS MTEPS figure the paper reports for the
// trillion-edge runs.
func Table3(c *Config) error {
	c.Defaults()
	scale := c.Scale + 2
	if c.Quick {
		scale = c.Scale
	}
	cfg := gen.Graph500Config(scale, c.EdgeFactor, c.Seed+10)
	name := fmt.Sprintf("kron-%d-%d-big", scale, c.EdgeFactor)
	opts := c.stdTileOpts()
	opts.TileBits = scale - 6
	opts.GroupQ = 8
	tg, err := c.tileGraph(name, cfg, opts)
	if err != nil {
		return err
	}
	defer tg.Close()

	tb := report.New(fmt.Sprintf("Table III: runtimes on %s (%d vertices, %d edges)",
		cfg.Name(), cfg.NumVertices(), cfg.NumEdges()),
		"algorithm", "time", "iterations", "MTEPS", "metadata", "bytes read")
	o := c.diskOpts(tg)

	bfs := algo.NewBFS(0)
	st, err := runEngine(tg, o, bfs)
	if err != nil {
		return err
	}
	tb.Row("BFS", st.Elapsed, st.Iterations,
		st.MTEPS(2*tg.Meta.NumOriginal), report.Bytes(st.MetadataBytes), report.Bytes(st.BytesRead))

	pr := algo.NewPageRank(5)
	st, err = runEngine(tg, o, pr)
	if err != nil {
		return err
	}
	tb.Row("PageRank(5)", st.Elapsed, st.Iterations, "-",
		report.Bytes(st.MetadataBytes), report.Bytes(st.BytesRead))

	wcc := algo.NewWCC()
	st, err = runEngine(tg, o, wcc)
	if err != nil {
		return err
	}
	tb.Row("WCC", st.Elapsed, st.Iterations, "-",
		report.Bytes(st.MetadataBytes), report.Bytes(st.BytesRead))
	tb.Fprint(c.Out)
	return nil
}

package exp

import (
	"time"

	"github.com/gwu-systems/gstore/internal/algo"
	"github.com/gwu-systems/gstore/internal/core"
	"github.com/gwu-systems/gstore/internal/graph"
	"github.com/gwu-systems/gstore/internal/report"
	"github.com/gwu-systems/gstore/internal/tile"
)

// ExtTiered exercises the paper's future-work tiered store (§IX): part of
// the tiles file is served by simulated hard drives. Performance should
// degrade gracefully — not cliff — as the HDD share grows, because the
// cache pool preferentially absorbs re-reads.
func ExtTiered(c *Config) error {
	c.Defaults()
	tg, err := c.tileGraph("kron-main", c.kronCfg(), c.stdTileOpts())
	if err != nil {
		return err
	}
	defer tg.Close()
	tb := report.New("Extension: tiered SSD+HDD store ("+c.kronCfg().Name()+")",
		"HDD share", "PageRank", "slowdown vs all-SSD")
	var base time.Duration
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		o := c.diskOpts(tg)
		if frac > 0 {
			o.HDD = &core.HDDTier{
				Fraction:  frac,
				Disks:     2,
				Bandwidth: 8 << 20, // ~HDD sequential share per spindle
				Latency:   2 * time.Millisecond,
			}
		}
		st, err := runEngine(tg, o, algo.NewPageRank(3))
		if err != nil {
			return err
		}
		if base == 0 {
			base = st.Elapsed
		}
		tb.Row(int(frac*100), st.Elapsed, report.Ratio(float64(st.Elapsed), float64(base)))
	}
	tb.Fprint(c.Out)
	return nil
}

// ExtRelabel measures degree-sorted vertex relabeling, the locality
// preprocessing 2D-partitioned stores ship (cf. the locality-aware
// placement the paper's grouping draws on, [34]): hubs renumber into the
// lowest IDs, concentrating edges into fewer, denser tiles.
func ExtRelabel(c *Config) error {
	c.Defaults()
	el, err := c.edgeList(c.twitterCfg())
	if err != nil {
		return err
	}
	relabeled, _ := graph.RelabelByDegree(el)

	stats := func(label string, e *graph.EdgeList) (rowVals []interface{}, err error) {
		dir, err := tempWorkDir(c, "relabel")
		if err != nil {
			return nil, err
		}
		opts := c.stdTileOpts()
		opts.TileBits = c.tileBits()
		opts.GroupQ = 8
		tg, err := tile.Convert(e, dir, "g", opts)
		if err != nil {
			return nil, err
		}
		defer tg.Close()
		empty, over1k := 0, 0
		var maxTile, maxTileBytes int64
		for i := 0; i < tg.Layout.NumTiles(); i++ {
			n := tg.TupleCount(i)
			switch {
			case n == 0:
				empty++
			case n >= 1000:
				over1k++
			}
			if n > maxTile {
				maxTile = n
			}
			if _, b := tg.TileByteRange(i); b > maxTileBytes {
				maxTileBytes = b
			}
		}
		o := c.diskOpts(tg)
		// Relabeling concentrates hubs into one giant tile; keep the
		// budget able to double-buffer it.
		if o.MemoryBytes < 3*maxTileBytes {
			o.MemoryBytes = 3 * maxTileBytes
		}
		st, err := runEngine(tg, o, algo.NewPageRank(3))
		if err != nil {
			return nil, err
		}
		return []interface{}{label, empty, over1k, maxTile, st.Elapsed}, nil
	}

	tb := report.New("Extension: degree-sorted relabeling ("+c.twitterCfg().Name()+")",
		"layout", "empty tiles", "tiles >= 1000 edges", "max tile", "PageRank(3)")
	row, err := stats("original", el)
	if err != nil {
		return err
	}
	tb.Row(row...)
	row, err = stats("degree-sorted", relabeled)
	if err != nil {
		return err
	}
	tb.Row(row...)
	tb.Fprint(c.Out)
	return nil
}

// ExtMSBFS measures the I/O sharing of concurrent multi-source BFS (the
// paper's [22]): one tile stream serves many traversals, so the bytes
// read stay near a single BFS while serving 16 sources.
func ExtMSBFS(c *Config) error {
	c.Defaults()
	tg, err := c.tileGraph("kron-main", c.kronCfg(), c.stdTileOpts())
	if err != nil {
		return err
	}
	defer tg.Close()
	o := c.diskOpts(tg)

	roots := make([]uint32, 16)
	for i := range roots {
		roots[i] = uint32(i*1023) % tg.Meta.NumVertices
	}
	shared, err := runEngine(tg, o, algo.NewMSBFS(roots))
	if err != nil {
		return err
	}
	var indTime time.Duration
	var indBytes int64
	for _, r := range roots {
		st, err := runEngine(tg, o, algo.NewBFS(r))
		if err != nil {
			return err
		}
		indTime += st.Elapsed
		indBytes += st.BytesRead
	}
	tb := report.New("Extension: multi-source BFS I/O sharing ("+c.kronCfg().Name()+", 16 roots)",
		"mode", "time", "bytes read", "speedup")
	tb.Row("16 separate BFS", indTime, report.Bytes(indBytes), "1.00x")
	tb.Row("one MSBFS", shared.Elapsed, report.Bytes(shared.BytesRead),
		report.Speedup(indTime, shared.Elapsed))
	tb.Fprint(c.Out)
	return nil
}

// ExtSCC runs strongly connected components — the algorithm §IV-A singles
// out as needing both edge directions — on the directed twitter-like
// graph and reports components against WCC's weak components.
func ExtSCC(c *Config) error {
	c.Defaults()
	tg, err := c.tileGraph("twitter-main", c.twitterCfg(), c.stdTileOpts())
	if err != nil {
		return err
	}
	defer tg.Close()
	o := c.diskOpts(tg)
	s := algo.NewSCC()
	sst, err := runEngine(tg, o, s)
	if err != nil {
		return err
	}
	w := algo.NewWCC()
	wst, err := runEngine(tg, o, w)
	if err != nil {
		return err
	}
	count := func(labels []uint32) (comps int, largest int) {
		m := map[uint32]int{}
		for _, l := range labels {
			m[l]++
		}
		for _, n := range m {
			if n > largest {
				largest = n
			}
		}
		return len(m), largest
	}
	sc, sl := count(s.Labels())
	wc, wl := count(w.Labels())
	tb := report.New("Extension: SCC vs WCC ("+c.twitterCfg().Name()+")",
		"algorithm", "components", "largest", "iterations", "time", "bytes read")
	tb.Row("SCC", sc, sl, sst.Iterations, sst.Elapsed, report.Bytes(sst.BytesRead))
	tb.Row("WCC", wc, wl, wst.Iterations, wst.Elapsed, report.Bytes(wst.BytesRead))
	tb.Fprint(c.Out)
	return nil
}

// ExtAsyncBFS compares level-synchronous BFS with the asynchronous
// (label-correcting) variant the paper cites ([26]): fewer full passes at
// more per-pass work, a win when passes are I/O-priced.
func ExtAsyncBFS(c *Config) error {
	c.Defaults()
	tb := report.New("Extension: synchronous vs asynchronous BFS",
		"graph", "variant", "iterations", "time", "bytes read", "speedup")
	for _, w := range c.workloads()[:3] {
		tg, err := c.tileGraph("async-"+w.Name, w.Cfg, c.stdTileOpts())
		if err != nil {
			return err
		}
		o := c.diskOpts(tg)
		sst, err := runEngine(tg, o, algo.NewBFS(0))
		if err != nil {
			return err
		}
		ast, err := runEngine(tg, o, algo.NewAsyncBFS(0))
		if err != nil {
			return err
		}
		tb.Row(w.Name, "sync", sst.Iterations, sst.Elapsed, report.Bytes(sst.BytesRead), "1.00x")
		tb.Row(w.Name, "async", ast.Iterations, ast.Elapsed, report.Bytes(ast.BytesRead),
			report.Speedup(sst.Elapsed, ast.Elapsed))
		tg.Close()
	}
	tb.Fprint(c.Out)
	return nil
}
